// AdviceVerifier: eBPF-verifier-style static analysis of one advice program.
//
// Advice is already structurally safe — straight-line, loop-free, bounded
// working set — but nothing in the execution engine rejects programs that are
// *semantically* broken: expressions that read columns no op ever produces,
// string operands fed to numeric arithmetic (which the total evaluator
// silently nulls out), unpacks of bags nobody packs, emits aimed at a foreign
// query, sample rates outside (0, 1]. The verifier abstract-interprets the op
// list once, tracking the set of live columns and a static type per column
// (the null/int/double/string/unknown lattice below), and reports structured
// PTxxx diagnostics (docs/ANALYSIS.md). Like an eBPF verifier it runs before
// anything is woven: the query compiler rejects its own output if verification
// fails, and agents re-verify advice decoded from untrusted wire bytes before
// handing it to TracepointRegistry::WeaveQuery.

#ifndef PIVOT_SRC_ANALYSIS_ADVICE_VERIFIER_H_
#define PIVOT_SRC_ANALYSIS_ADVICE_VERIFIER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/diagnostics.h"
#include "src/core/advice.h"
#include "src/core/baggage.h"
#include "src/core/plan.h"
#include "src/core/tracepoint.h"

namespace pivot {
namespace analysis {

// The static type lattice. kUnknown is top (could be any runtime type);
// kNull is the type of columns that are statically always null (missing
// exports, failed arithmetic). There is deliberately no bottom: advice never
// branches, so every column has exactly one abstract value.
enum class StaticType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
  kUnknown = 4,
};

// "null" / "int" / "double" / "string" / "unknown".
const char* StaticTypeName(StaticType t);

// Least upper bound: equal types join to themselves, int⊔double = double
// (numeric promotion), null joins to the other side (null coerces at
// runtime), everything else joins to unknown.
StaticType JoinStaticTypes(StaticType a, StaticType b);

// What the verifier knows statically about one bag packed upstream.
struct BagColumns {
  BagSpec spec;
  // Column name -> static type of the tuples a matching Unpack yields. For
  // kAggregate bags these are the group fields plus the aggregate state
  // columns (AggSpec::StateColumns).
  std::map<std::string, StaticType> columns;
  // True when the bag was packed with an empty projection (pack everything):
  // the unpacked column set is then open-ended and reads from it cannot be
  // checked.
  bool open_columns = false;
};

// Everything the verifier may know about the context an advice program runs
// in. All members are optional: absent knowledge skips the corresponding
// checks (the verifier never guesses).
struct VerifyContext {
  // Owning query: Emit ops must target it (PT201). 0 = unknown, skip.
  uint64_t query_id = 0;

  // The tracepoint the advice is woven at. Non-null enables the
  // Observe-source check (PT105) against def()->exports plus the built-in
  // default exports (host, timestamp, time, procid, procname, tracepoint).
  const TracepointDef* tracepoint = nullptr;

  // Bags packed by causally-earlier stages of the same query, keyed by bag.
  // Non-null enables the unpack-before-pack check (PT106) and gives unpacked
  // columns their packing-stage types; null types every unpacked read as an
  // unchecked open column set.
  const std::map<BagKey, BagColumns>* bags = nullptr;
};

struct VerifyResult {
  Report report;

  // Live columns (and their types) after the last op — the working set a
  // trailing Pack/Emit would see. Feeds the linter's cross-stage propagation.
  std::map<std::string, StaticType> columns;

  // Bags this program packs, with the statically-known packed column set.
  std::map<BagKey, BagColumns> packed;

  // True when some op emitted with an empty projection (emit everything).
  bool emits_all = false;
  // Columns explicitly emitted (union over Emit ops with projections).
  std::vector<std::string> emitted_columns;
};

class AdviceVerifier {
 public:
  AdviceVerifier() = default;
  explicit AdviceVerifier(VerifyContext ctx) : ctx_(std::move(ctx)) {}

  // Verifies one program. Never fails hard: broken programs produce error
  // diagnostics, and the abstract state degrades to kUnknown so later ops are
  // still checked.
  VerifyResult Verify(const Advice& advice) const;

  // Verifies a pre-resolved plan by analyzing the advice it was compiled
  // from. Plans carry their source program precisely so static analysis can
  // run on already-woven state (e.g. re-verifying what an agent has live).
  VerifyResult Verify(const AdvicePlan& plan) const;

 private:
  VerifyContext ctx_;
};

// Infers the static type of `e` over the column environment `env`, appending
// type-confusion (PT103), unknown-column (PT102) and division-by-literal-zero
// (PT110) diagnostics to `report`. Exposed for the linter's result-plan
// checks and for tests.
StaticType InferExprType(const Expr& e, const std::map<std::string, StaticType>& env,
                         Report* report, const std::string& tracepoint, int op_index);

}  // namespace analysis
}  // namespace pivot

#endif  // PIVOT_SRC_ANALYSIS_ADVICE_VERIFIER_H_
