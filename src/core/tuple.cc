#include "src/core/tuple.h"

namespace pivot {

void Tuple::Set(std::string_view name, Value value) {
  for (auto& f : fields_) {
    if (f.name == name) {
      f.value = std::move(value);
      return;
    }
  }
  fields_.push_back(Field{std::string(name), std::move(value)});
}

Value Tuple::Get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) {
      return f.value;
    }
  }
  return Value();
}

bool Tuple::Has(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name == name) {
      return true;
    }
  }
  return false;
}

Tuple Tuple::Concat(const Tuple& other) const {
  Tuple out = *this;
  out.fields_.reserve(fields_.size() + other.fields_.size());
  for (const auto& f : other.fields_) {
    out.fields_.push_back(f);
  }
  return out;
}

Tuple Tuple::Project(const std::vector<std::string>& names) const {
  Tuple out;
  for (const auto& n : names) {
    out.Append(n, Get(n));
  }
  return out;
}

uint64_t Tuple::HashFields(const std::vector<std::string>& names) const {
  uint64_t h = 0x84222325CBF29CE4ULL;
  for (const auto& n : names) {
    h = h * 0x100000001B3ULL + Get(n).Hash();
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += fields_[i].name;
    out += "=";
    out += fields_[i].value.ToString();
  }
  out += ")";
  return out;
}

}  // namespace pivot
