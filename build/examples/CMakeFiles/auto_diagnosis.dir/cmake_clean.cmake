file(REMOVE_RECURSE
  "CMakeFiles/auto_diagnosis.dir/auto_diagnosis.cpp.o"
  "CMakeFiles/auto_diagnosis.dir/auto_diagnosis.cpp.o.d"
  "auto_diagnosis"
  "auto_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auto_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
