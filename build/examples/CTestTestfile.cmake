# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cross_tier "/root/repo/build/examples/cross_tier_analysis")
set_tests_properties(example_cross_tier PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replica_debugging "/root/repo/build/examples/replica_selection_debugging")
set_tests_properties(example_replica_debugging PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_latency_diagnosis "/root/repo/build/examples/latency_diagnosis")
set_tests_properties(example_latency_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pivot_shell "sh" "-c" "printf 'install From incr In DataNodeMetrics.incrBytesRead GroupBy incr.host Select incr.host, SUM(incr.delta)\\nadvance 3\\nresults 1\\nquit\\n' | /root/repo/build/examples/pivot_shell")
set_tests_properties(example_pivot_shell PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_auto_diagnosis "/root/repo/build/examples/auto_diagnosis")
set_tests_properties(example_auto_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
