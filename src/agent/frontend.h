// Frontend: the client-facing entry point of Pivot Tracing (Fig 2 ①②⑦⑧).
//
// Users hand the frontend query text; it parses, optimizes and compiles the
// query to advice, publishes a weave command to every agent, and merges the
// streaming partial results the agents report back — per reporting interval
// (for time-series views like Fig 1a) and cumulatively (for totals).

#ifndef PIVOT_SRC_AGENT_FRONTEND_H_
#define PIVOT_SRC_AGENT_FRONTEND_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/agent/protocol.h"
#include "src/bus/message_bus.h"
#include "src/common/status.h"
#include "src/core/tracepoint.h"
#include "src/query/compiler.h"

namespace pivot {

// One agent's view of one query, as the frontend knows it (from weave acks,
// reports, and kStats heartbeats). Key: "host/process_name".
struct AgentQueryView {
  int64_t ack_micros = -1;             // Weave acknowledged; -1 if never.
  int64_t last_report_micros = -1;     // Last non-empty report; -1 if never.
  int64_t last_heartbeat_micros = -1;  // Last kStats heartbeat; -1 if never.
  uint64_t reports = 0;                // Non-empty reports received.
  uint64_t tuples = 0;                 // Tuples received in those reports.
  uint64_t reports_suppressed = 0;     // From the latest heartbeat.
};

class Frontend {
 public:
  // `schema` is a registry holding every tracepoint definition in the system,
  // used to validate queries at compile time (nullable to skip validation).
  Frontend(MessageBus* bus, const TracepointRegistry* schema);
  ~Frontend();

  Frontend(const Frontend&) = delete;
  Frontend& operator=(const Frontend&) = delete;

  // Clock used to timestamp query lifecycle events (install/first-tuple/
  // uninstall). Defaults to the wall clock; the simulator installs simulated
  // time so StatusReport lines up with agent report timestamps.
  void set_now_micros(std::function<int64_t()> now_micros);

  // Named-query registry for subquery joins (register Q8, then install Q9).
  Status RegisterNamedQuery(const std::string& name, std::string_view text);

  // Deployment propagation graph (src/analysis/causality_graph.h) consulted
  // by the install gate's reachability passes (PT301/PT302/PT303/PT305).
  // Null (the default) skips those passes. Not owned; must outlive the
  // frontend. The simulator wires the SimWorld's registry here.
  void set_propagation(const analysis::PropagationRegistry* propagation);
  const analysis::PropagationRegistry* propagation() const;

  // Install-time policy knobs. The static analyzer (src/analysis) gates every
  // install: error-severity findings always reject, warning-severity findings
  // reject unless `force` is set (the --force escape hatch), infos never
  // block.
  struct InstallOptions {
    QueryCompiler::Options compiler;
    // Accept the query despite warning-severity diagnostics.
    bool force = false;
    // When false, the dead-packed-column heuristic (PT207) is skipped — used
    // for Explain counting shadows, whose packs intentionally keep the
    // original query's columns while consuming only "$stage".
    bool lint_projection = true;
    // PT305 worst-case baggage growth budget (tuple-cells per request).
    // Exceeding it is error-severity: force does NOT override it.
    size_t baggage_budget = analysis::kDefaultBaggageBudget;
  };

  // Parses, compiles and installs a query; returns its id. `options` toggles
  // the §4 optimizations (used by the ablation benches).
  Result<uint64_t> Install(std::string_view text);
  Result<uint64_t> Install(std::string_view text, const QueryCompiler::Options& options);
  Result<uint64_t> Install(std::string_view text, const InstallOptions& options);

  // Compiles `text` and runs the whole-query linter against the current
  // install state (bag-collision checks include active queries) WITHOUT
  // installing anything. Returns the full structured report — including
  // error-severity findings, which Install would fold into a Status.
  Result<analysis::QueryLintResult> Lint(std::string_view text) const;
  Result<analysis::QueryLintResult> Lint(std::string_view text,
                                         const QueryCompiler::Options& options) const;

  // Installs the §4 "explain" form of a query: the same tracepoints, joins
  // and packing, but every stage counts tuples instead of computing the
  // final aggregation. Results(id) rows are ($stage, COUNT) — a live preview
  // of what the real query would pack and emit, per tracepoint.
  Result<uint64_t> InstallExplain(std::string_view text);

  // Installs an externally-built compiled query (advanced; the query id
  // inside `compiled` is replaced with a fresh one and returned). Subject to
  // the same static-analysis gate as text installs.
  Result<uint64_t> InstallCompiled(CompiledQuery compiled);
  Result<uint64_t> InstallCompiled(CompiledQuery compiled, const InstallOptions& options);

  // Removes the query's advice everywhere and stops collecting its results.
  // Accumulated results remain readable.
  Status Uninstall(uint64_t query_id);

  const CompiledQuery* compiled(uint64_t query_id) const;

  // ---- Results ----

  // Cumulative results since installation: finalized aggregates (group fields
  // + aggregate columns) or all streamed rows.
  std::vector<Tuple> Results(uint64_t query_id) const;

  // Per-interval results keyed by the agents' report timestamp (micros) —
  // the data behind the paper's time-series plots.
  std::map<int64_t, std::vector<Tuple>> Series(uint64_t query_id) const;

  // Streaming consumption: `listener` is invoked for every agent report that
  // arrives for the query, with the report's interval timestamp and its
  // finalized rows ("returning a streaming dataset of results", §1). Called
  // on the reporting thread; keep it cheap. One listener per query.
  using ResultListener = std::function<void(int64_t timestamp_micros,
                                            const std::vector<Tuple>& rows)>;
  Status SetResultListener(uint64_t query_id, ResultListener listener);

  // Drops per-interval results older than `before_micros` for one query (or
  // for all queries when query_id is 0). Cumulative totals are unaffected.
  // Standing queries otherwise accumulate one interval entry per second
  // forever; long-running monitors should trim periodically.
  void TrimSeriesBefore(uint64_t query_id, int64_t before_micros);

  // ---- Statistics ----

  uint64_t reports_received() const;
  uint64_t tuples_received() const;

  // Query lifecycle + per-agent health snapshot (docs/OBSERVABILITY.md).
  struct QueryStatus {
    uint64_t query_id = 0;
    bool active = true;
    bool aggregated = false;
    std::vector<std::string> tracepoints;  // Advice targets, sorted unique.
    int64_t installed_micros = -1;
    int64_t first_ack_micros = -1;     // First agent weave ack.
    int64_t first_tuple_micros = -1;   // First report carrying tuples.
    int64_t last_report_micros = -1;   // Most recent non-empty report.
    int64_t uninstalled_micros = -1;
    uint64_t reports = 0;
    uint64_t tuples = 0;
    std::map<std::string, AgentQueryView> agents;  // "host/process" -> view.
  };
  std::vector<QueryStatus> QueryStatuses() const;

  // Human-readable operational dump: per-query lifecycle and agent health
  // (quiet vs dead), bus topic traffic, and the global telemetry registry.
  // The JSON form carries the same data for machine consumption.
  std::string StatusReport() const;
  std::string StatusReportJson() const;

 private:
  struct QueryResults {
    CompiledQuery compiled;
    bool active = true;
    ResultListener listener;
    Aggregator total{{}, {}};
    std::vector<Tuple> total_rows;                      // Streaming queries.
    std::map<int64_t, Aggregator> interval_aggs;        // Aggregated queries.
    std::map<int64_t, std::vector<Tuple>> interval_rows;  // Streaming queries.
    // Lifecycle (frontend clock; agent report timestamps for report events).
    int64_t installed_micros = -1;
    int64_t first_ack_micros = -1;
    int64_t first_tuple_micros = -1;
    int64_t last_report_micros = -1;
    int64_t uninstalled_micros = -1;
    std::map<std::string, AgentQueryView> agents;
  };

  void HandleReport(const BusMessage& msg);
  // One report's worth of merging + listener dispatch; kBatch frames feed
  // every contained report/heartbeat through these same paths, so batched
  // and single-frame delivery are observationally identical.
  void HandleSingleReport(const AgentReport& report);
  void HandleStats(const AgentStats& stats);
  int64_t NowMicros() const;

  // Bags packed by active queries, bag -> owning query id (callers hold mu_).
  // Context for the linter's cross-query collision check (PT203).
  std::map<BagKey, uint64_t> InstalledBagsLocked() const;

  MessageBus* bus_;
  const TracepointRegistry* schema_;
  const analysis::PropagationRegistry* propagation_ = nullptr;  // Guarded by mu_.
  QueryRegistry named_queries_;
  MessageBus::SubscriberId subscription_ = 0;

  mutable std::mutex mu_;
  std::function<int64_t()> now_micros_;  // Guarded by mu_ (set once at setup).
  uint64_t next_query_id_ = 1;
  std::map<uint64_t, QueryResults> queries_;
  uint64_t reports_received_ = 0;
  uint64_t tuples_received_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_SRC_AGENT_FRONTEND_H_
