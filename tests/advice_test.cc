#include <gtest/gtest.h>

#include "src/core/advice.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

class AdviceTest : public ::testing::Test {
 protected:
  AdviceTest() : proc_("A", "DataNode", &clock_), ctx_(&proc_.runtime) {}

  ManualClock clock_;
  FakeProcess proc_;
  ExecutionContext ctx_;
};

TEST_F(AdviceTest, PaperQ2AdvicePair) {
  // The exact advice the paper derives for Q2 (§3):
  //   A1: OBSERVE procName; PACK-FIRST procName
  //   A2: OBSERVE delta; UNPACK procName; EMIT procName, SUM(delta)
  // (aggregation of the emit happens in the agent; A2 emits joined tuples).
  Advice::Ptr a1 = AdviceBuilder()
                       .Observe({{"procName", "cl.procName"}})
                       .Pack(100, BagSpec::First(1), {"cl.procName"})
                       .Build();
  Advice::Ptr a2 = AdviceBuilder()
                       .Observe({{"delta", "incr.delta"}})
                       .Unpack(100)
                       .Emit(1, {})
                       .Build();

  // First tracepoint invocation (ClientProtocols).
  a1->Execute(&ctx_, Tuple{{"procName", Value("FSread4m")}});
  // Later invocations of incrBytesRead in the same request.
  a2->Execute(&ctx_, Tuple{{"delta", Value(int64_t{4096})}});
  a2->Execute(&ctx_, Tuple{{"delta", Value(int64_t{8192})}});

  const auto& emitted = proc_.sink.emitted(1);
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[0].Get("incr.delta").int_value(), 4096);
  EXPECT_EQ(emitted[0].Get("cl.procName").string_value(), "FSread4m");
  EXPECT_EQ(emitted[1].Get("incr.delta").int_value(), 8192);
  EXPECT_EQ(emitted[1].Get("cl.procName").string_value(), "FSread4m");
}

TEST_F(AdviceTest, PackFirstIgnoresSubsequent) {
  Advice::Ptr a = AdviceBuilder()
                      .Observe({{"v", "p.v"}})
                      .Pack(5, BagSpec::First(1), {"p.v"})
                      .Build();
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{1})}});
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{2})}});
  auto tuples = ctx_.baggage().Unpack(5);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Get("p.v").int_value(), 1);
}

TEST_F(AdviceTest, UnpackEmptyBagProducesNothing) {
  // Inner-join semantics: no packed tuples -> nothing emitted downstream.
  Advice::Ptr a = AdviceBuilder().Observe({{"v", "q.v"}}).Unpack(999).Emit(1, {}).Build();
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{1})}});
  EXPECT_EQ(proc_.sink.total(), 0u);
}

TEST_F(AdviceTest, UnpackJoinsAllCombinations) {
  // "if t_o is observed and t_u1 and t_u2 are unpacked, the resulting tuples
  // are t_o·t_u1 and t_o·t_u2" (§3).
  ctx_.baggage().Pack(5, BagSpec::All(), Tuple{{"p.v", Value(int64_t{1})}});
  ctx_.baggage().Pack(5, BagSpec::All(), Tuple{{"p.v", Value(int64_t{2})}});
  Advice::Ptr a = AdviceBuilder().Observe({{"v", "q.v"}}).Unpack(5).Emit(1, {}).Build();
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{10})}});
  const auto& emitted = proc_.sink.emitted(1);
  ASSERT_EQ(emitted.size(), 2u);
  EXPECT_EQ(emitted[0].Get("q.v").int_value(), 10);
  EXPECT_EQ(emitted[0].Get("p.v").int_value(), 1);
  EXPECT_EQ(emitted[1].Get("p.v").int_value(), 2);
}

TEST_F(AdviceTest, DoubleUnpackIsCartesian) {
  ctx_.baggage().Pack(1, BagSpec::All(), Tuple{{"a.v", Value(int64_t{1})}});
  ctx_.baggage().Pack(1, BagSpec::All(), Tuple{{"a.v", Value(int64_t{2})}});
  ctx_.baggage().Pack(2, BagSpec::All(), Tuple{{"b.v", Value(int64_t{3})}});
  Advice::Ptr a = AdviceBuilder().Observe({}).Unpack(1).Unpack(2).Emit(1, {}).Build();
  a->Execute(&ctx_, Tuple());
  EXPECT_EQ(proc_.sink.emitted(1).size(), 2u);  // 2 x 1 combinations.
}

TEST_F(AdviceTest, FilterDropsNonMatching) {
  Advice::Ptr a =
      AdviceBuilder()
          .Observe({{"v", "q.v"}})
          .Filter(Expr::Binary(ExprOp::kGt, Expr::Field("q.v"), Expr::Literal(Value(int64_t{5}))))
          .Emit(1, {})
          .Build();
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{3})}});
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{7})}});
  ASSERT_EQ(proc_.sink.emitted(1).size(), 1u);
  EXPECT_EQ(proc_.sink.emitted(1)[0].Get("q.v").int_value(), 7);
}

TEST_F(AdviceTest, LetComputesDerivedColumn) {
  // Q8's `response.time - request.time` lowering.
  ctx_.baggage().Pack(1, BagSpec::Recent(1), Tuple{{"request.time", Value(int64_t{100})}});
  Advice::Ptr a = AdviceBuilder()
                      .Observe({{"time", "response.time"}})
                      .Unpack(1)
                      .Let("latency", Expr::Binary(ExprOp::kSub, Expr::Field("response.time"),
                                                   Expr::Field("request.time")))
                      .Emit(1, {"latency"})
                      .Build();
  a->Execute(&ctx_, Tuple{{"time", Value(int64_t{250})}});
  ASSERT_EQ(proc_.sink.emitted(1).size(), 1u);
  const Tuple& out = proc_.sink.emitted(1)[0];
  EXPECT_EQ(out.size(), 1u);  // Projection applied.
  EXPECT_EQ(out.Get("latency").int_value(), 150);
}

TEST_F(AdviceTest, PackProjectsFields) {
  Advice::Ptr a = AdviceBuilder()
                      .Observe({{"v", "p.v"}, {"w", "p.w"}})
                      .Pack(5, BagSpec::All(), {"p.v"})
                      .Build();
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{1})}, {"w", Value(int64_t{2})}});
  auto tuples = ctx_.baggage().Unpack(5);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_TRUE(tuples[0].Has("p.v"));
  EXPECT_FALSE(tuples[0].Has("p.w"));
}

TEST_F(AdviceTest, AggregatedPackKeepsStateBounded) {
  BagSpec spec = BagSpec::Aggregated({"p.g"}, {{AggFn::kSum, "p.v", "SUM(p.v)", false}});
  Advice::Ptr a =
      AdviceBuilder().Observe({{"g", "p.g"}, {"v", "p.v"}}).Pack(5, spec, {}).Build();
  for (int i = 0; i < 100; ++i) {
    a->Execute(&ctx_, Tuple{{"g", Value(i % 2 == 0 ? "even" : "odd")},
                            {"v", Value(int64_t{i})}});
  }
  auto tuples = ctx_.baggage().Unpack(5);
  ASSERT_EQ(tuples.size(), 2u);  // Bounded by group count, not invocation count.
  EXPECT_EQ(ctx_.baggage().TupleCount(), 2u);
}

TEST_F(AdviceTest, WorkingSetExplosionTruncates) {
  // Two kAll bags with many tuples each: the cartesian unpack would
  // materialize size1 * size2 tuples; the guard caps it.
  constexpr int64_t kPerBag = 1000;  // 1000 * 1000 > kMaxWorkingSet.
  for (int64_t i = 0; i < kPerBag; ++i) {
    ctx_.baggage().Pack(1, BagSpec::All(), Tuple{{"a.v", Value(i)}});
    ctx_.baggage().Pack(2, BagSpec::All(), Tuple{{"b.v", Value(i)}});
  }
  uint64_t before = Advice::truncation_count();
  Advice::Ptr a = AdviceBuilder().Observe({}).Unpack(1).Unpack(2).Emit(1, {}).Build();
  a->Execute(&ctx_, Tuple());
  EXPECT_EQ(proc_.sink.emitted(1).size(), Advice::kMaxWorkingSet);
  EXPECT_EQ(Advice::truncation_count(), before + 1);
}

TEST_F(AdviceTest, NullContextIsSafe) {
  Advice::Ptr a = AdviceBuilder().Observe({{"v", "q.v"}}).Emit(1, {}).Build();
  a->Execute(nullptr, Tuple{{"v", Value(int64_t{1})}});  // Must not crash.
}

TEST_F(AdviceTest, MissingExportObservesNull) {
  Advice::Ptr a = AdviceBuilder().Observe({{"nope", "q.nope"}}).Emit(1, {}).Build();
  a->Execute(&ctx_, Tuple{{"v", Value(int64_t{1})}});
  ASSERT_EQ(proc_.sink.emitted(1).size(), 1u);
  EXPECT_TRUE(proc_.sink.emitted(1)[0].Get("q.nope").is_null());
}

TEST(AdviceToStringTest, RendersProgram) {
  Advice::Ptr a = AdviceBuilder()
                      .Observe({{"procName", "cl.procName"}})
                      .Pack(100, BagSpec::First(1), {"cl.procName"})
                      .Build();
  std::string listing = a->ToString();
  EXPECT_NE(listing.find("OBSERVE procName AS cl.procName"), std::string::npos);
  EXPECT_NE(listing.find("PACK-FIRST"), std::string::npos);
}

}  // namespace
}  // namespace pivot
