# Empty dependencies file for pivot_hadoop.
# This may be replaced when dependencies are built.
