// ExecutionContext: the per-request state that travels with an execution.
//
// The paper's prototype stores baggage in a JVM thread-local and relies on
// AspectJ-instrumented Thread/Runnable/Queue classes to carry it across
// execution boundaries (§5, §6 "Hadoop Instrumentation"). Here the same role
// is played by ExecutionContext: it owns the request's Baggage, identifies
// the process the request is currently executing in, provides the timestamp
// source, and (optionally) records the happened-before DAG for ground-truth
// evaluation.
//
// Two propagation styles are supported:
//  * explicit: the simulator hands contexts from task to task and across
//    simulated RPCs (serializing the baggage on the wire);
//  * thread-local: real multi-threaded applications install a context with
//    ScopedContext and fork/join it across std::thread boundaries, mirroring
//    Table 4's static API.

#ifndef PIVOT_SRC_CORE_CONTEXT_H_
#define PIVOT_SRC_CORE_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "src/core/baggage.h"
#include "src/core/trace_graph.h"

namespace pivot {

// Sink for tuples emitted by advice (the process-local PT agent implements
// this; §5 "Tuples emitted by advice are accumulated by the local agent").
class EmitSink {
 public:
  virtual ~EmitSink() = default;
  virtual void EmitTuple(uint64_t query_id, const Tuple& t) = 0;
};

// Identity of the process an execution is currently running in. These back
// the default tracepoint exports: host, procname, procid (§3).
struct ProcessInfo {
  std::string host;
  std::string process_name;
  int64_t process_id = 0;
};

class Tracepoint;

// Per-process handles to the self-telemetry meta-tracepoints — ordinary
// tracepoints whose events are the tracing system's own activity, so Pivot
// Tracing queries can run over Pivot Tracing itself (telemetry/self_trace.h,
// docs/OBSERVABILITY.md). Null members simply never fire.
struct MetaTracepoints {
  const Tracepoint* baggage_serialize = nullptr;  // exports queryId, bytes, tuples, instances
  const Tracepoint* agent_flush = nullptr;        // exports queryId, tuples, bytes, suppressed
};

// Per-process runtime wiring shared by all requests executing in the process.
// Lifetime: outlives every ExecutionContext that points at it.
struct ProcessRuntime {
  ProcessInfo info;
  // Timestamp source in microseconds; defaults to the wall clock, the
  // simulator installs simulated time.
  std::function<int64_t()> now_micros;
  // Destination for Emit ops; null drops emitted tuples (tracepoints woven
  // with no agent attached).
  EmitSink* sink = nullptr;
  // Self-telemetry tracepoints of this process (telemetry::DefineSelfTracepoints).
  MetaTracepoints meta;

  int64_t NowMicros() const;
};

// The per-request execution context. Move-only: there is exactly one context
// per branch of an execution; branching and rejoining go through Fork/Join so
// that baggage versioning stays correct.
class ExecutionContext {
 public:
  ExecutionContext() = default;
  explicit ExecutionContext(ProcessRuntime* runtime) : runtime_(runtime) {}

  ExecutionContext(ExecutionContext&&) = default;
  ExecutionContext& operator=(ExecutionContext&&) = default;
  ExecutionContext(const ExecutionContext&) = delete;
  ExecutionContext& operator=(const ExecutionContext&) = delete;

  ProcessRuntime* runtime() const { return runtime_; }
  void set_runtime(ProcessRuntime* runtime) { runtime_ = runtime; }

  Baggage& baggage() { return baggage_; }
  const Baggage& baggage() const { return baggage_; }
  void set_baggage(Baggage b) { baggage_ = std::move(b); }

  // ---- Ground-truth trace recording (optional; see trace_graph.h) ----

  // Attaches this context to a recorder, starting a fresh trace.
  void StartTrace(TraceRecorder* recorder);
  // Attaches to an existing trace (e.g. server side of an RPC).
  void AttachTrace(TraceRecorder* recorder, uint64_t trace_id, EventId current);

  TraceRecorder* recorder() const { return recorder_; }
  uint64_t trace_id() const { return trace_id_; }
  EventId current_event() const { return current_event_; }

  // Appends an event caused by the current one and advances; no-op without a
  // recorder. Tracepoint::Invoke calls this once per invocation.
  EventId AdvanceEvent();

  // ---- Branching ----

  // Forks this context for a branching execution: baggage splits (§5), and if
  // recording, both sides get fresh events with the current event as parent.
  // `this` becomes one branch; the returned context is the other.
  ExecutionContext Fork();

  // Merges a completed branch back into this one: baggage joins, and if
  // recording, a join event with both branches as parents is appended.
  void Join(ExecutionContext&& other);

 private:
  ProcessRuntime* runtime_ = nullptr;
  Baggage baggage_;
  TraceRecorder* recorder_ = nullptr;
  uint64_t trace_id_ = 0;
  EventId current_event_ = kNoEvent;
};

// Serializes `ctx`'s baggage and, when the process defines a woven
// `Baggage.Serialize` meta-tracepoint, fires it with the serialization's
// byte/tuple accounting: one invocation per query contributing bags plus a
// `queryId = 0` invocation carrying the framing bytes, so SUM(bytes) over the
// invocations equals the serialized size. Equivalent to
// `ctx->baggage().Serialize()` when the meta-tracepoint is absent or unwoven
// (the stats pass is skipped entirely). Wire crossings should use this
// instead of calling Serialize directly.
std::vector<uint8_t> SerializeBaggageWithMeta(ExecutionContext* ctx);

// ---- Thread-local current context (the paper's thread-local baggage) ----

// Returns the context installed on this thread, or nullptr.
ExecutionContext* CurrentContext();

// RAII installation of a context on the current thread. Non-owning: the
// context must outlive the scope. Nests; restores the previous context.
class ScopedContext {
 public:
  explicit ScopedContext(ExecutionContext* ctx);
  ~ScopedContext();

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  ExecutionContext* previous_;
};

// Static baggage API over the current thread's context, mirroring Table 4:
// pack / unpack / serialize / deserialize / split / join. All methods are
// no-ops / return empty when no context is installed.
struct ThreadBaggage {
  static void Pack(BagKey key, const BagSpec& spec, const Tuple& t);
  static std::vector<Tuple> Unpack(BagKey key);
  static std::vector<uint8_t> Serialize();
  static void Deserialize(const std::vector<uint8_t>& bytes);

  // Table 4's split(): divides the current baggage for a branching execution.
  // The calling thread keeps one half; the returned bytes are the other
  // half, ready to hand to the branch (deserialize there).
  static std::vector<uint8_t> Split();

  // Table 4's join(b1, b2): merges a completed branch's serialized baggage
  // back into the current thread's half.
  static void Join(const std::vector<uint8_t>& branch_bytes);
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_CONTEXT_H_
