// Topic-based publish/subscribe message bus (Fig 2's "message bus").
//
// The frontend publishes weave/unweave commands on a command topic that every
// PT agent subscribes to; agents publish partial query results on a report
// topic the frontend subscribes to. Delivery is synchronous and in
// subscription order, which keeps the simulator deterministic; the bus is
// nevertheless thread-safe so real multi-threaded deployments can share one.

#ifndef PIVOT_SRC_BUS_MESSAGE_BUS_H_
#define PIVOT_SRC_BUS_MESSAGE_BUS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace pivot {

struct BusMessage {
  std::string topic;
  std::vector<uint8_t> payload;
};

// Well-known topics used by the Pivot Tracing control plane.
inline constexpr char kCommandTopic[] = "pivottracing/commands";
inline constexpr char kReportTopic[] = "pivottracing/reports";

class MessageBus {
 public:
  using SubscriberId = uint64_t;
  using Callback = std::function<void(const BusMessage&)>;

  MessageBus() = default;
  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  // Registers `callback` for messages on `topic`. The returned id cancels the
  // subscription via Unsubscribe.
  SubscriberId Subscribe(std::string topic, Callback callback);
  void Unsubscribe(SubscriberId id);

  // Delivers `msg` synchronously to every current subscriber of its topic, in
  // subscription order. Callbacks run without the bus lock held, so they may
  // publish or (un)subscribe reentrantly.
  void Publish(BusMessage msg);

  // Diagnostics.
  uint64_t published_count() const;
  uint64_t delivered_count() const;

 private:
  struct Subscriber {
    SubscriberId id;
    std::shared_ptr<Callback> callback;
  };

  mutable std::mutex mu_;
  SubscriberId next_id_ = 1;
  std::map<std::string, std::vector<Subscriber>> topics_;
  uint64_t published_ = 0;
  uint64_t delivered_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_SRC_BUS_MESSAGE_BUS_H_
