// Abstract syntax of the Pivot Tracing query language (Table 1).
//
// Queries are LINQ-like text such as Q2 from the paper:
//
//   From incr In DataNodeMetrics.incrBytesRead
//   Join cl In First(ClientProtocols) On cl -> incr
//   GroupBy cl.procName
//   Select cl.procName, SUM(incr.delta)
//
// The parser (parser.h) produces this AST; the compiler (compiler.h) lowers
// it to advice.

#ifndef PIVOT_SRC_QUERY_AST_H_
#define PIVOT_SRC_QUERY_AST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/aggregation.h"
#include "src/core/expr.h"

namespace pivot {

// Temporal filters restrict which of a source's tuples participate in a
// happened-before join (Table 1: First, FirstN, MostRecent, MostRecentN).
enum class TemporalFilter : uint8_t {
  kAll = 0,
  kFirst,
  kFirstN,
  kMostRecent,
  kMostRecentN,
};

// One data source: a set of tracepoints (>1 means Union, Table 1) or a named
// subquery (Q9 joins the output of Q8), optionally wrapped in a temporal
// filter.
struct SourceRef {
  std::string alias;                       // The In-scope name, e.g. "incr".
  std::vector<std::string> tracepoints;    // Union of tracepoint names...
  std::string subquery;                    // ...or a registered query's name.
  TemporalFilter temporal = TemporalFilter::kAll;
  uint32_t n = 1;                          // For kFirstN / kMostRecentN.

  // Advice-level sampling (§8): the source's advice proceeds for this
  // fraction of invocations. Written `Sample(10, X)` (integer = percent) or
  // `Sample(0.1, X)` (fraction); composable with temporal filters, e.g.
  // `Sample(5, First(X))`.
  double sample_rate = 1.0;

  bool is_subquery() const { return !subquery.empty(); }
};

// `Join <source.alias> In <source> On <left> -> <right>`: every tuple of
// `left` joined must happen-before the `right` tuple (Lamport ≺, §3).
struct JoinClause {
  SourceRef source;
  std::string left;   // Alias that happens earlier.
  std::string right;  // Alias that happens later.
};

// One item of the Select clause: either a plain expression (projection,
// possibly computed — Q8's `response.time - request.time`) or an aggregate
// over an expression (COUNT takes no argument).
struct SelectItem {
  bool is_aggregate = false;
  AggFn fn = AggFn::kCount;  // Valid when is_aggregate.
  Expr::Ptr expr;            // Aggregate argument / projected expression. Null for COUNT.
  std::string display;       // Output column name ("SUM(incr.delta)" or the As-alias).

  bool has_explicit_alias = false;
};

// A parsed query.
struct Query {
  SourceRef from;
  std::vector<JoinClause> joins;
  std::vector<Expr::Ptr> where;        // Conjunction of Where clauses.
  std::vector<std::string> group_by;   // Qualified field names ("cl.procName").
  std::vector<SelectItem> select;      // Empty Select = project all observed.
  std::string text;                    // Original query text (diagnostics).

  bool has_aggregates() const {
    for (const auto& s : select) {
      if (s.is_aggregate) {
        return true;
      }
    }
    return false;
  }
};

// Canonical re-rendering of the AST (round-trip tested against the parser).
std::string QueryToString(const Query& q);

}  // namespace pivot

#endif  // PIVOT_SRC_QUERY_AST_H_
