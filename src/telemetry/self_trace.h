// Meta-tracing: Pivot Tracing instruments itself.
//
// The telemetry subsystem's own events are exposed as ordinary
// pivot::Tracepoints, so users can run ordinary Pivot Tracing queries *over
// Pivot Tracing* — e.g.
//
//   From b In Baggage.Serialize
//   GroupBy b.queryId
//   Select b.queryId, SUM(b.bytes)
//
// reproduces Fig 10 (baggage bytes on the wire, attributed per query) live,
// from inside the system, and
//
//   From f In PTAgent.Flush GroupBy f.host Select f.host, SUM(f.tuples)
//
// reproduces the §6 tuple-traffic accounting. The meta-tracepoints obey the
// same contract as application tracepoints: unwoven they cost one relaxed
// load + branch (the fire sites additionally gate on Tracepoint::enabled()
// so that export materialization is skipped entirely), and advice can be
// woven/unwoven at any time.
//
// Fire sites:
//   Baggage.Serialize — wire crossings (sim RPC) and ThreadBaggage's Table 4
//     static API, via SerializeBaggageWithMeta (context.h). One invocation
//     per query contributing bags, plus one `queryId = 0` invocation carrying
//     the framing bytes (instance ids, counts), so SUM(b.bytes) equals the
//     actual serialized size.
//   PTAgent.Flush — once per (query, flush) in PTAgent::Flush, whether or not
//     the query had anything to report (`suppressed` marks quiet intervals).

#ifndef PIVOT_SRC_TELEMETRY_SELF_TRACE_H_
#define PIVOT_SRC_TELEMETRY_SELF_TRACE_H_

#include <vector>

#include "src/core/context.h"
#include "src/core/tracepoint.h"

namespace pivot {
namespace telemetry {

// Meta-tracepoint names (query-facing vocabulary).
inline constexpr char kTpBaggageSerialize[] = "Baggage.Serialize";
inline constexpr char kTpAgentFlush[] = "PTAgent.Flush";

// Definition builders.
TracepointDef BaggageSerializeDef();  // exports queryId, bytes, tuples, instances
TracepointDef AgentFlushDef();        // exports queryId, tuples, bytes, suppressed

// All meta-tracepoint definitions.
std::vector<TracepointDef> SelfTracepointDefs();

// Defines every meta-tracepoint in `registry` (skipping names already
// defined) and points `meta` at the instances. Per-process setups that
// mirror definitions elsewhere can instead define SelfTracepointDefs()
// themselves and call BindMetaTracepoints.
void DefineSelfTracepoints(TracepointRegistry* registry, MetaTracepoints* meta);

// Looks up the meta-tracepoints by name in an already-populated registry.
// Missing names leave the corresponding member null.
void BindMetaTracepoints(const TracepointRegistry& registry, MetaTracepoints* meta);

// Schema-only registration for query validation (mirrors the pattern of
// RegisterHadoopTracepointDefs).
void RegisterSelfTracepointDefs(TracepointRegistry* schema);

}  // namespace telemetry
}  // namespace pivot

#endif  // PIVOT_SRC_TELEMETRY_SELF_TRACE_H_
