// Cost of the static-analysis gate (src/analysis/) on the install path.
//
// Verification runs once per install — never per tracepoint invocation — so
// it cannot affect the Table 5 numbers. This bench quantifies the one-shot
// cost anyway: compile-without-verify vs compile-with-verify vs the linter
// alone, over the paper's Q2-style join (the deepest advice chain the
// examples install) and the agent-side re-verification of a decoded weave.
// Expect the whole gate in the microseconds; parsing dominates compilation.

#include <benchmark/benchmark.h>

#include "src/analysis/query_linter.h"
#include "src/query/compiler.h"
#include "src/query/parser.h"

namespace pivot {
namespace {

constexpr const char* kQ2 =
    "From incr In DataNodeMetrics.incrBytesRead "
    "Join cl In First(ClientProtocols) On cl -> incr "
    "GroupBy cl.procName Select cl.procName, SUM(incr.delta)";

TracepointRegistry* Schema() {
  static TracepointRegistry* schema = [] {
    auto* s = new TracepointRegistry();
    TracepointDef client;
    client.name = "ClientProtocols";
    client.exports = {"procName"};
    (void)s->Define(client);
    TracepointDef incr;
    incr.name = "DataNodeMetrics.incrBytesRead";
    incr.exports = {"delta"};
    (void)s->Define(incr);
    return s;
  }();
  return schema;
}

void BM_CompileNoVerify(benchmark::State& state) {
  Query q = *ParseQuery(kQ2);
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(Schema(), nullptr, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(q, 1));
  }
}
BENCHMARK(BM_CompileNoVerify);

void BM_CompileWithVerify(benchmark::State& state) {
  Query q = *ParseQuery(kQ2);
  QueryCompiler compiler(Schema(), nullptr);  // verify defaults on.
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(q, 1));
  }
}
BENCHMARK(BM_CompileWithVerify);

void BM_LintAlone(benchmark::State& state) {
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(Schema(), nullptr, options);
  CompiledQuery compiled = *compiler.Compile(*ParseQuery(kQ2), 1);
  analysis::LintOptions lint_options;
  lint_options.schema = Schema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LintCompiledQuery(compiled, lint_options));
  }
}
BENCHMARK(BM_LintAlone);

void BM_AgentReverify(benchmark::State& state) {
  // What every agent pays per weave command: schema-less, no dead-column
  // heuristics (mirrors PTAgent::HandleCommand).
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(Schema(), nullptr, options);
  CompiledQuery compiled = *compiler.Compile(*ParseQuery(kQ2), 1);
  analysis::LintOptions lint_options;
  lint_options.assume_projection_pushdown = false;
  analysis::LintPlan plan;
  plan.aggregated = compiled.aggregated;
  plan.group_fields = compiled.group_fields;
  plan.aggs = compiled.aggs;
  plan.output_columns = compiled.output_columns;
  analysis::QueryLinter linter(lint_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linter.Lint(compiled.query_id, compiled.advice, plan));
  }
}
BENCHMARK(BM_AgentReverify);

}  // namespace
}  // namespace pivot

BENCHMARK_MAIN();
