#include <gtest/gtest.h>

#include "src/core/tracepoint.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

class TracepointTest : public ::testing::Test {
 protected:
  TracepointTest() : proc_("A", "DataNode", &clock_), ctx_(&proc_.runtime) {}

  ManualClock clock_;
  FakeProcess proc_;
  ExecutionContext ctx_;
  TracepointRegistry registry_;
};

TEST_F(TracepointTest, DefineAndFind) {
  auto tp = registry_.Define(Def("X", {"v"}));
  ASSERT_TRUE(tp.ok());
  EXPECT_EQ(registry_.Find("X"), *tp);
  EXPECT_EQ(registry_.Find("Y"), nullptr);
}

TEST_F(TracepointTest, DuplicateDefinitionRejected) {
  ASSERT_TRUE(registry_.Define(Def("X", {"v"})).ok());
  Result<Tracepoint*> dup = registry_.Define(Def("X", {"w"}));
  EXPECT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(TracepointTest, NamesSorted) {
  ASSERT_TRUE(registry_.Define(Def("B", {})).ok());
  ASSERT_TRUE(registry_.Define(Def("A", {})).ok());
  EXPECT_EQ(registry_.Names(), (std::vector<std::string>{"A", "B"}));
}

TEST_F(TracepointTest, UnwovenTracepointDoesNothing) {
  Tracepoint* tp = *registry_.Define(Def("X", {"v"}));
  EXPECT_FALSE(tp->enabled());
  tp->Invoke(&ctx_, {{"v", Value(int64_t{1})}});
  EXPECT_EQ(proc_.sink.total(), 0u);
  EXPECT_TRUE(ctx_.baggage().IsTrivial());
}

TEST_F(TracepointTest, WeaveRunsAdviceWithDefaultExports) {
  Tracepoint* tp = *registry_.Define(Def("X", {"v"}));
  Advice::Ptr advice = AdviceBuilder()
                           .Observe({{"v", "x.v"},
                                     {"host", "x.host"},
                                     {"procname", "x.procname"},
                                     {"time", "x.time"},
                                     {"tracepoint", "x.tracepoint"}})
                           .Emit(1, {})
                           .Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"X", advice}}).ok());
  EXPECT_TRUE(tp->enabled());

  clock_.now = 777;
  tp->Invoke(&ctx_, {{"v", Value(int64_t{5})}});
  ASSERT_EQ(proc_.sink.emitted(1).size(), 1u);
  const Tuple& t = proc_.sink.emitted(1)[0];
  EXPECT_EQ(t.Get("x.v").int_value(), 5);
  EXPECT_EQ(t.Get("x.host").string_value(), "A");
  EXPECT_EQ(t.Get("x.procname").string_value(), "DataNode");
  EXPECT_EQ(t.Get("x.time").int_value(), 777);
  EXPECT_EQ(t.Get("x.tracepoint").string_value(), "X");
}

TEST_F(TracepointTest, UnweaveDisables) {
  Tracepoint* tp = *registry_.Define(Def("X", {"v"}));
  Advice::Ptr advice = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"X", advice}}).ok());
  tp->Invoke(&ctx_, {{"v", Value(int64_t{1})}});
  EXPECT_EQ(proc_.sink.total(), 1u);

  registry_.UnweaveQuery(1);
  EXPECT_FALSE(tp->enabled());
  tp->Invoke(&ctx_, {{"v", Value(int64_t{2})}});
  EXPECT_EQ(proc_.sink.total(), 1u);  // Unchanged.
}

TEST_F(TracepointTest, UnweaveUnknownQueryIsIdempotent) {
  registry_.UnweaveQuery(12345);  // No crash, no effect.
}

TEST_F(TracepointTest, MultipleQueriesShareTracepoint) {
  Tracepoint* tp = *registry_.Define(Def("X", {"v"}));
  Advice::Ptr a1 = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  Advice::Ptr a2 = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(2, {}).Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"X", a1}}).ok());
  ASSERT_TRUE(registry_.WeaveQuery(2, {{"X", a2}}).ok());
  EXPECT_EQ(registry_.WovenQueries(), (std::vector<uint64_t>{1, 2}));

  tp->Invoke(&ctx_, {{"v", Value(int64_t{9})}});
  EXPECT_EQ(proc_.sink.emitted(1).size(), 1u);
  EXPECT_EQ(proc_.sink.emitted(2).size(), 1u);

  registry_.UnweaveQuery(1);
  tp->Invoke(&ctx_, {{"v", Value(int64_t{10})}});
  EXPECT_EQ(proc_.sink.emitted(1).size(), 1u);
  EXPECT_EQ(proc_.sink.emitted(2).size(), 2u);
}

TEST_F(TracepointTest, NullAdviceFailsAtomically) {
  ASSERT_TRUE(registry_.Define(Def("X", {"v"})).ok());
  Advice::Ptr advice = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  Status s = registry_.WeaveQuery(1, {{"X", advice}, {"Y", nullptr}});
  EXPECT_FALSE(s.ok());
  // Nothing was woven.
  EXPECT_FALSE(registry_.Find("X")->enabled());
  EXPECT_TRUE(registry_.WovenQueries().empty());
}

TEST_F(TracepointTest, DeferredWeavingAppliesOnLateDefinition) {
  // A standing query can name a tracepoint whose subsystem has not
  // initialized yet; the advice weaves the moment the tracepoint is defined.
  Advice::Ptr advice = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"LATER", advice}}).ok());
  Tracepoint* tp = *registry_.Define(Def("LATER", {"v"}));
  EXPECT_TRUE(tp->enabled());
  tp->Invoke(&ctx_, {{"v", Value(int64_t{1})}});
  EXPECT_EQ(proc_.sink.emitted(1).size(), 1u);
}

TEST_F(TracepointTest, DuplicateQueryIdRejected) {
  ASSERT_TRUE(registry_.Define(Def("X", {"v"})).ok());
  Advice::Ptr advice = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"X", advice}}).ok());
  EXPECT_FALSE(registry_.WeaveQuery(1, {{"X", advice}}).ok());
}

TEST_F(TracepointTest, SameQueryWeavesMultipleTracepoints) {
  ASSERT_TRUE(registry_.Define(Def("X", {"v"})).ok());
  ASSERT_TRUE(registry_.Define(Def("Y", {"w"})).ok());
  Advice::Ptr pack = AdviceBuilder()
                         .Observe({{"v", "a.v"}})
                         .Pack(100, BagSpec::First(1), {"a.v"})
                         .Build();
  Advice::Ptr emit = AdviceBuilder().Observe({{"w", "b.w"}}).Unpack(100).Emit(1, {}).Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"X", pack}, {"Y", emit}}).ok());

  registry_.Find("X")->Invoke(&ctx_, {{"v", Value(int64_t{3})}});
  registry_.Find("Y")->Invoke(&ctx_, {{"w", Value(int64_t{4})}});
  ASSERT_EQ(proc_.sink.emitted(1).size(), 1u);
  EXPECT_EQ(proc_.sink.emitted(1)[0].Get("a.v").int_value(), 3);
  EXPECT_EQ(proc_.sink.emitted(1)[0].Get("b.w").int_value(), 4);
}

TEST_F(TracepointTest, InvokeWithNullContextIsSafe) {
  Tracepoint* tp = *registry_.Define(Def("X", {"v"}));
  Advice::Ptr advice = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  ASSERT_TRUE(registry_.WeaveQuery(1, {{"X", advice}}).ok());
  tp->Invoke(nullptr, {{"v", Value(int64_t{1})}});  // Advice runs but no-ops.
  EXPECT_EQ(proc_.sink.total(), 0u);
}

TEST_F(TracepointTest, RecordingCapturesObservations) {
  Tracepoint* tp = *registry_.Define(Def("X", {"v"}));
  TraceRecorder recorder;
  ctx_.StartTrace(&recorder);
  tp->Invoke(&ctx_, {{"v", Value(int64_t{1})}});
  tp->Invoke(&ctx_, {{"v", Value(int64_t{2})}});
  ASSERT_EQ(recorder.observed().size(), 2u);
  EXPECT_EQ(recorder.observed()[0].tracepoint, "X");
  EXPECT_EQ(recorder.observed()[0].exports.Get("v").int_value(), 1);
  // Events are causally ordered within the request.
  EXPECT_TRUE(recorder.graph(0)->HappenedBefore(recorder.observed()[0].event,
                                                recorder.observed()[1].event));
}

}  // namespace
}  // namespace pivot
