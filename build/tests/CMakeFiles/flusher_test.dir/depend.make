# Empty dependencies file for flusher_test.
# This may be replaced when dependencies are built.
