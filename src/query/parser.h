// Recursive-descent parser for the Pivot Tracing query language.
//
// Grammar (keywords case-insensitive):
//
//   query    := "From" ident "In" sources
//               ("Join" ident "In" sources "On" ident "->" ident)*
//               ("Where" expr)*
//               ("GroupBy" field ("," field)*)?
//               ("Select" selitem ("," selitem)*)?
//   sources  := source ("," source)*            // >1 = Union (From only)
//   source   := dotted
//             | ("First"|"MostRecent") "(" dotted ")"
//             | ("FirstN"|"MostRecentN") "(" int "," dotted ")"
//   selitem  := "COUNT"
//             | aggfn "(" expr ")" ("As" ident)?
//             | expr ("As" ident)?
//   aggfn    := "SUM" | "MIN" | "MAX" | "AVERAGE" | "AVG" | "COUNT"
//   expr     := usual precedence: || , && , ==/!= , < <= > >= , + - , * / % ,
//               unary ! - , primary (number | string | field | "(" expr ")")
//   field    := ident ("." ident)*
//   dotted   := ident ("." ident)*

#ifndef PIVOT_SRC_QUERY_PARSER_H_
#define PIVOT_SRC_QUERY_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/query/ast.h"

namespace pivot {

// Parses a query; error messages include the byte offset of the problem.
Result<Query> ParseQuery(std::string_view text);

}  // namespace pivot

#endif  // PIVOT_SRC_QUERY_PARSER_H_
