# Empty dependencies file for latency_diagnosis.
# This may be replaced when dependencies are built.
