file(REMOVE_RECURSE
  "CMakeFiles/flusher_test.dir/flusher_test.cc.o"
  "CMakeFiles/flusher_test.dir/flusher_test.cc.o.d"
  "flusher_test"
  "flusher_test.pdb"
  "flusher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flusher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
