// Canonical tracepoint definitions for the simulated Hadoop stack.
//
// Tracepoint definitions "are defined by someone with knowledge of the
// system ... and define the vocabulary for queries" (§2.2). This header is
// that someone: one source of truth for every tracepoint name and export
// list, shared by the system code that fires them and by the docs/benches
// that query them.

#ifndef PIVOT_SRC_HADOOP_TRACEPOINTS_H_
#define PIVOT_SRC_HADOOP_TRACEPOINTS_H_

#include "src/core/tracepoint.h"
#include "src/simsys/sim_world.h"

namespace pivot {

// Names (query-facing vocabulary).
inline constexpr char kTpClientProtocols[] = "ClientProtocols";
inline constexpr char kTpNnGetBlockLocations[] = "NN.GetBlockLocations";
inline constexpr char kTpNnClientProtocol[] = "NN.ClientProtocol";
inline constexpr char kTpNnClientProtocolDone[] = "NN.ClientProtocol.done";
inline constexpr char kTpDnDataTransferProtocol[] = "DN.DataTransferProtocol";
inline constexpr char kTpDnTransferDone[] = "DN.DataTransferProtocol.done";
inline constexpr char kTpIncrBytesRead[] = "DataNodeMetrics.incrBytesRead";
inline constexpr char kTpIncrBytesWritten[] = "DataNodeMetrics.incrBytesWritten";
inline constexpr char kTpFileInputStreamRead[] = "FileInputStream.read";
inline constexpr char kTpFileOutputStreamWrite[] = "FileOutputStream.write";
inline constexpr char kTpStressTestDoNextOp[] = "StressTest.DoNextOp";
inline constexpr char kTpHbaseClientService[] = "HBase.ClientService";
inline constexpr char kTpRsQueueDone[] = "RS.QueueDone";
inline constexpr char kTpRsProcessDone[] = "RS.ProcessDone";
inline constexpr char kTpRsMemstoreFlush[] = "RS.MemstoreFlush";
inline constexpr char kTpHbaseRequestSent[] = "HBase.RequestSent";
inline constexpr char kTpHbaseResponseReceived[] = "HBase.ResponseReceived";
inline constexpr char kTpMrAppClientProtocol[] = "MR.ApplicationClientProtocol";
inline constexpr char kTpJobComplete[] = "MR.JobComplete";
inline constexpr char kTpYarnContainerStart[] = "YARN.ContainerStart";
inline constexpr char kTpMapTaskDone[] = "MR.MapTaskDone";
inline constexpr char kTpReduceTaskDone[] = "MR.ReduceTaskDone";

// Returns the process-local tracepoint with `def`'s name, defining it if this
// process has not yet (several subsystems embedded in one process may share
// tracepoints, e.g. ClientProtocols).
Tracepoint* GetOrDefineTracepoint(SimProcess* proc, TracepointDef def);

// Registers the whole Hadoop tracepoint vocabulary into `schema` (skipping
// names already present). Tracepoint definitions exist independently of live
// processes — "they can be defined and installed at any point in time, and
// can be shared and disseminated" (§2.2) — so the cluster registers them all
// upfront and queries validate even before the firing process starts.
void RegisterHadoopTracepointDefs(TracepointRegistry* schema);

// Definition builders (name + exports + descriptive location metadata).
TracepointDef ClientProtocolsDef();           // exports procName, system
TracepointDef NnGetBlockLocationsDef();       // exports src, replicas
TracepointDef NnClientProtocolDef();          // exports op, src
TracepointDef NnClientProtocolDoneDef();      // exports op, lockwait
TracepointDef DnDataTransferProtocolDef();    // exports op, src
TracepointDef DnTransferDoneDef();            // exports op, transfer, blocked, gc
TracepointDef IncrBytesReadDef();             // exports delta
TracepointDef IncrBytesWrittenDef();          // exports delta
TracepointDef FileInputStreamReadDef();       // exports delta, category
TracepointDef FileOutputStreamWriteDef();     // exports delta, category
TracepointDef StressTestDoNextOpDef();        // exports op
TracepointDef HbaseClientServiceDef();        // exports op, row
TracepointDef RsQueueDoneDef();               // exports queue
TracepointDef RsProcessDoneDef();             // exports process
TracepointDef RsMemstoreFlushDef();           // exports bytes
TracepointDef HbaseRequestSentDef();          // exports op
TracepointDef HbaseResponseReceivedDef();     // exports op
TracepointDef MrAppClientProtocolDef();       // exports op, job
TracepointDef JobCompleteDef();               // exports id
TracepointDef YarnContainerStartDef();        // exports container, job
TracepointDef MapTaskDoneDef();               // exports job, task
TracepointDef ReduceTaskDoneDef();            // exports job, task

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_TRACEPOINTS_H_
