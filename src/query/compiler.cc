#include "src/query/compiler.h"

#include <algorithm>
#include <functional>
#include <set>

#include "src/common/strings.h"
#include "src/query/flatten.h"

namespace pivot {

// ---------------------------------------------------------------------------
// QueryRegistry

Status QueryRegistry::Register(std::string name, Query q) {
  if (queries_.count(name) != 0) {
    return AlreadyExistsError("query already registered: " + name);
  }
  queries_.emplace(std::move(name), std::move(q));
  return Status::Ok();
}

const Query* QueryRegistry::Find(std::string_view name) const {
  auto it = queries_.find(name);
  return it == queries_.end() ? nullptr : &it->second;
}

std::vector<std::string> QueryRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(queries_.size());
  for (const auto& [name, q] : queries_) {
    names.push_back(name);
  }
  return names;
}

bool TracepointPatternMatch(std::string_view pattern, std::string_view name) {
  // Iterative glob match with backtracking ('*' any run, '?' any one char).
  size_t p = 0;
  size_t n = 0;
  size_t star = std::string_view::npos;
  size_t star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') {
    ++p;
  }
  return p == pattern.size();
}

namespace {

// ---------------------------------------------------------------------------
// Stage model

constexpr const char* kDefaultExports[] = {"host",   "timestamp",  "time",
                                           "procid", "procname", "tracepoint"};

bool IsDefaultExport(std::string_view name) {
  for (const char* d : kDefaultExports) {
    if (name == d) {
      return true;
    }
  }
  return false;
}

struct Stage {
  SourceRef source;
  std::vector<size_t> preds;
  std::vector<size_t> succs;
  std::vector<LetBinding> lets;        // In binding order.
  std::vector<std::string> observe;    // Qualified fields observed here.
  std::vector<Expr::Ptr> filters;      // Where clauses evaluated here.
  std::vector<std::string> available;  // All fields visible at/after this stage.
  std::vector<std::string> pack_fields;
  BagSpec pack_spec;
  BagKey bag = 0;
  bool is_final = false;
  bool agg_pushed = false;
  std::vector<AggSpec> pushed_aggs;    // Pack-side aggregate specs when pushed.
  std::vector<LetBinding> agg_lets;    // Lets materializing pushed agg inputs.
};

void AddUnique(std::vector<std::string>* v, const std::string& s) {
  if (std::find(v->begin(), v->end(), s) == v->end()) {
    v->push_back(s);
  }
}

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

// ---------------------------------------------------------------------------
// QueryCompiler

QueryCompiler::QueryCompiler(const TracepointRegistry* registry,
                             const QueryRegistry* named_queries, Options options)
    : registry_(registry), named_queries_(named_queries), options_(options) {}

Result<CompiledQuery> QueryCompiler::Compile(const Query& q, uint64_t query_id) const {
  // ---- 1. Inline subqueries into a flat source DAG. ----
  FlatQuery flat;
  PIVOT_RETURN_IF_ERROR(FlattenQuery(q, named_queries_, &flat));

  // ---- 1b. Expand glob tracepoint patterns against the schema registry. ----
  auto expand_patterns = [&](SourceRef* src) -> Status {
    std::vector<std::string> expanded;
    for (const auto& name : src->tracepoints) {
      if (name.find('*') == std::string::npos && name.find('?') == std::string::npos) {
        expanded.push_back(name);
        continue;
      }
      if (registry_ == nullptr) {
        return InvalidArgumentError("tracepoint patterns require a schema registry: " + name);
      }
      bool matched = false;
      for (const auto& candidate : registry_->Names()) {
        if (TracepointPatternMatch(name, candidate)) {
          AddUnique(&expanded, candidate);
          matched = true;
        }
      }
      if (!matched) {
        return NotFoundError("no tracepoints match pattern: " + name);
      }
    }
    src->tracepoints = std::move(expanded);
    return Status::Ok();
  };
  PIVOT_RETURN_IF_ERROR(expand_patterns(&flat.from));
  for (auto& j : flat.joins) {
    PIVOT_RETURN_IF_ERROR(expand_patterns(&j.source));
  }

  // ---- 2. Stages and alias resolution. ----
  std::vector<Stage> stages;
  std::map<std::string, size_t> alias_to_stage;
  auto add_stage = [&](const SourceRef& src) -> Status {
    if (alias_to_stage.count(src.alias) != 0) {
      return InvalidArgumentError("duplicate alias: " + src.alias);
    }
    alias_to_stage[src.alias] = stages.size();
    Stage st;
    st.source = src;
    stages.push_back(std::move(st));
    return Status::Ok();
  };
  for (const auto& j : flat.joins) {
    PIVOT_RETURN_IF_ERROR(add_stage(j.source));
  }
  if (flat.from.temporal != TemporalFilter::kAll) {
    // Temporal filters select which packed tuples join; the From source never
    // packs, so a filter there would be silently meaningless.
    return InvalidArgumentError("temporal filters cannot apply to the From source: " +
                                flat.from.alias);
  }
  PIVOT_RETURN_IF_ERROR(add_stage(flat.from));
  size_t final_idx = stages.size() - 1;
  stages[final_idx].is_final = true;

  // Happened-before edges (left ≺ right).
  for (const auto& j : flat.joins) {
    auto li = alias_to_stage.find(j.left);
    auto ri = alias_to_stage.find(j.right);
    if (li == alias_to_stage.end() || ri == alias_to_stage.end()) {
      return InvalidArgumentError("On clause references unknown alias: " + j.left + " -> " +
                                  j.right);
    }
    if (li->second == ri->second) {
      return InvalidArgumentError("source cannot happen before itself: " + j.left);
    }
    stages[li->second].succs.push_back(ri->second);
    stages[ri->second].preds.push_back(li->second);
  }

  // Topological order (Kahn). The From stage must come last and every other
  // stage must feed into some later stage.
  std::vector<size_t> topo;
  {
    std::vector<size_t> indeg(stages.size(), 0);
    for (const auto& st : stages) {
      for (size_t s : st.succs) {
        ++indeg[s];
      }
    }
    std::vector<size_t> ready;
    for (size_t i = 0; i < stages.size(); ++i) {
      if (indeg[i] == 0) {
        ready.push_back(i);
      }
    }
    while (!ready.empty()) {
      size_t i = ready.back();
      ready.pop_back();
      topo.push_back(i);
      for (size_t s : stages[i].succs) {
        if (--indeg[s] == 0) {
          ready.push_back(s);
        }
      }
    }
    if (topo.size() != stages.size()) {
      return InvalidArgumentError("happened-before constraints form a cycle");
    }
  }
  if (!stages[final_idx].succs.empty()) {
    return InvalidArgumentError("the From source must not happen before a joined source");
  }
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i != final_idx && stages[i].succs.empty()) {
      return InvalidArgumentError("joined source '" + stages[i].source.alias +
                                  "' is not ordered before any other source (missing On clause)");
    }
  }
  // Move the final stage to the end of the topological order.
  topo.erase(std::remove(topo.begin(), topo.end(), final_idx), topo.end());
  topo.push_back(final_idx);

  // Assign bag keys to packing stages.
  for (size_t i = 0; i < stages.size(); ++i) {
    stages[i].bag = query_id * kBagKeysPerQuery + i;
  }

  // Attach lets to their stages (in declaration order).
  std::map<std::string, size_t> let_to_stage;  // let name -> stage
  for (const auto& let : flat.lets) {
    auto it = alias_to_stage.find(let.alias);
    if (it == alias_to_stage.end()) {
      return InternalError("let bound to unknown alias: " + let.alias);
    }
    stages[it->second].lets.push_back(let);
    let_to_stage[let.name] = it->second;
  }

  // ---- 3. Validate tracepoints and resolve field attribution. ----
  for (const auto& st : stages) {
    for (const auto& tp_name : st.source.tracepoints) {
      if (registry_ != nullptr && registry_->Find(tp_name) == nullptr) {
        return NotFoundError("unknown tracepoint: " + tp_name);
      }
    }
  }

  // Resolves a qualified field to its stage, or returns an error.
  auto stage_of_field = [&](const std::string& field) -> Result<size_t> {
    auto let_it = let_to_stage.find(field);
    if (let_it != let_to_stage.end()) {
      return let_it->second;
    }
    size_t dot = field.find('.');
    if (dot == std::string::npos) {
      return InvalidArgumentError("unknown field: " + field);
    }
    // Aliases of inlined subqueries contain '$' and their fields two dots
    // never appear at the user level; attribution is by longest alias prefix.
    std::string alias = field.substr(0, dot);
    auto it = alias_to_stage.find(alias);
    if (it == alias_to_stage.end()) {
      return InvalidArgumentError("field references unknown alias: " + field);
    }
    std::string member = field.substr(dot + 1);
    if (!IsDefaultExport(member) && registry_ != nullptr) {
      for (const auto& tp_name : stages[it->second].source.tracepoints) {
        const Tracepoint* tp = registry_->Find(tp_name);
        if (tp != nullptr && !Contains(tp->def().exports, member)) {
          return InvalidArgumentError("tracepoint " + tp_name + " does not export '" + member +
                                      "' (referenced as " + field + ")");
        }
      }
    }
    return it->second;
  };

  // ---- 4. Collect referenced fields and attribute them. ----
  std::vector<std::string> all_fields;
  auto collect_expr = [&](const Expr::Ptr& e) {
    std::vector<std::string> fs;
    e->CollectFields(&fs);
    for (auto& f : fs) {
      AddUnique(&all_fields, f);
    }
  };
  for (const auto& w : flat.where) {
    collect_expr(w);
  }
  for (const auto& g : flat.group_by) {
    AddUnique(&all_fields, g);
  }
  for (const auto& s : flat.select) {
    if (s.expr != nullptr) {
      collect_expr(s.expr);
    }
  }
  for (const auto& st : stages) {
    for (const auto& let : st.lets) {
      collect_expr(let.expr);
    }
  }

  for (const auto& f : all_fields) {
    Result<size_t> owner = stage_of_field(f);
    if (!owner.ok()) {
      return owner.status();
    }
    // Let outputs are produced by Lets, not observed from exports.
    if (let_to_stage.count(f) != 0) {
      continue;
    }
    AddUnique(&stages[*owner].observe, f);
  }

  // Without projection pushdown (ablation baseline), every stage observes all
  // of its tracepoints' exports plus the defaults — Π is not pushed toward
  // the source, so whole tuples flow through packs and emits.
  if (!options_.push_projection && registry_ != nullptr) {
    for (Stage& st : stages) {
      for (const auto& tp_name : st.source.tracepoints) {
        const Tracepoint* tp = registry_->Find(tp_name);
        if (tp == nullptr) {
          continue;
        }
        for (const auto& e : tp->def().exports) {
          AddUnique(&st.observe, st.source.alias + "." + e);
        }
      }
      for (const char* d : kDefaultExports) {
        AddUnique(&st.observe, st.source.alias + "." + d);
      }
    }
  }

  // ---- 5. Availability (assuming full pass-through) and selection pushdown. ----
  for (size_t idx : topo) {
    Stage& st = stages[idx];
    st.available = st.observe;
    for (size_t p : st.preds) {
      for (const auto& f : stages[p].available) {
        AddUnique(&st.available, f);
      }
    }
    for (const auto& let : st.lets) {
      AddUnique(&st.available, let.name);
    }
  }

  // Each Where clause runs at the earliest stage (topo order) where all its
  // fields are available; without selection pushdown everything runs at the
  // final stage (whose availability is a superset by construction).
  for (const auto& w : flat.where) {
    bool placed = false;
    if (options_.push_selection) {
      for (size_t idx : topo) {
        if (w->FieldsSubsetOf(stages[idx].available)) {
          stages[idx].filters.push_back(w);
          placed = true;
          break;
        }
      }
    } else if (w->FieldsSubsetOf(stages[final_idx].available)) {
      stages[final_idx].filters.push_back(w);
      placed = true;
    }
    if (!placed) {
      return InvalidArgumentError("Where clause references unavailable fields: " + w->ToString());
    }
  }

  // ---- 6. Select / GroupBy consistency. ----
  const bool has_aggs = [&] {
    for (const auto& s : flat.select) {
      if (s.is_aggregate) {
        return true;
      }
    }
    return false;
  }();
  const bool aggregated = has_aggs || !flat.group_by.empty();

  for (const auto& g : flat.group_by) {
    if (!Contains(stages[final_idx].available, g)) {
      return InvalidArgumentError("GroupBy field not available: " + g);
    }
  }
  if (aggregated) {
    for (const auto& s : flat.select) {
      if (s.is_aggregate) {
        continue;
      }
      if (s.expr->op() != ExprOp::kField || !Contains(flat.group_by, s.expr->field_name())) {
        return InvalidArgumentError(
            "non-aggregate Select item must be a GroupBy field in an aggregating query: " +
            s.display);
      }
    }
  }
  for (const auto& s : flat.select) {
    if (s.expr != nullptr && !s.expr->FieldsSubsetOf(stages[final_idx].available)) {
      return InvalidArgumentError("Select item references unavailable fields: " + s.display);
    }
  }

  // ---- 7. Aggregation pushdown (Table 3 A/GA rules). ----
  // Strict, always-correct rule: push iff (a) every select aggregate's inputs
  // are fully available at one shared non-final stage `s`, (b) `s` feeds the
  // final stage directly and nothing else, (c) no COUNT (its multiplicity
  // depends on the un-collapsed join), (d) s's temporal filter is kAll, and
  // (e) every field of `s`'s subtree needed downstream is a group-by field.
  size_t pushed_stage = SIZE_MAX;
  if (options_.push_aggregation && has_aggs) {
    bool eligible = true;
    size_t candidate = SIZE_MAX;
    for (const auto& s : flat.select) {
      if (!s.is_aggregate) {
        continue;
      }
      if (s.fn == AggFn::kCount && s.expr == nullptr) {
        eligible = false;  // (c)
        break;
      }
      // Earliest stage whose availability covers the aggregate's inputs.
      size_t origin = SIZE_MAX;
      for (size_t idx : topo) {
        if (s.expr->FieldsSubsetOf(stages[idx].available)) {
          origin = idx;
          break;
        }
      }
      if (origin == SIZE_MAX || origin == final_idx) {
        eligible = false;
        break;
      }
      if (candidate == SIZE_MAX) {
        candidate = origin;
      } else if (candidate != origin) {
        eligible = false;  // (a): all aggregates at one stage.
        break;
      }
    }
    if (eligible && candidate != SIZE_MAX) {
      const Stage& st = stages[candidate];
      if (st.succs.size() != 1 || st.succs[0] != final_idx ||
          st.source.temporal != TemporalFilter::kAll) {
        eligible = false;  // (b), (d)
      }
    }
    if (eligible && candidate != SIZE_MAX) {
      // (e): fields from this stage's subtree needed downstream, excluding
      // aggregate inputs, must all be group-by fields.
      std::set<std::string> downstream_needs;
      auto note_expr = [&](const Expr::Ptr& e) {
        std::vector<std::string> fs;
        e->CollectFields(&fs);
        for (auto& f : fs) {
          downstream_needs.insert(std::move(f));
        }
      };
      for (size_t idx : topo) {
        // Only stages after `candidate` matter; approximate with "not in
        // candidate's ancestry" by checking topo position.
        if (idx == candidate) {
          continue;
        }
        bool is_after = std::find(topo.begin(), topo.end(), idx) >
                        std::find(topo.begin(), topo.end(), candidate);
        if (!is_after) {
          continue;
        }
        for (const auto& f : stages[idx].filters) {
          note_expr(f);
        }
        for (const auto& let : stages[idx].lets) {
          note_expr(let.expr);
        }
      }
      // Group-by fields are exempt: an aggregated bag keeps them as groups.
      for (const auto& s : flat.select) {
        if (!s.is_aggregate && s.expr != nullptr) {
          note_expr(s.expr);
        }
      }
      for (const auto& f : downstream_needs) {
        if (Contains(stages[candidate].available, f) && !Contains(flat.group_by, f)) {
          eligible = false;
          break;
        }
      }
      if (eligible) {
        pushed_stage = candidate;
      }
    }
  }

  if (pushed_stage != SIZE_MAX) {
    Stage& st = stages[pushed_stage];
    st.agg_pushed = true;
    std::vector<std::string> bag_groups;
    for (const auto& g : flat.group_by) {
      if (Contains(st.available, g)) {
        bag_groups.push_back(g);
      }
    }
    int let_counter = 0;
    for (const auto& s : flat.select) {
      if (!s.is_aggregate) {
        continue;
      }
      std::string input;
      if (s.expr->op() == ExprOp::kField) {
        input = s.expr->field_name();
      } else {
        input = "$agg" + std::to_string(let_counter++);
        st.agg_lets.push_back(LetBinding{st.source.alias, input, s.expr});
      }
      st.pushed_aggs.push_back(AggSpec{s.fn, input, s.display, /*from_state=*/false});
    }
    st.pack_spec = BagSpec::Aggregated(std::move(bag_groups), st.pushed_aggs);
  }

  // ---- 8. Projection pushdown: pack only what later stages need. ----
  // needed_after(i): fields consumed strictly after stage i.
  {
    // Fields the final emit consumes.
    std::vector<std::string> emit_needs;
    for (const auto& g : flat.group_by) {
      AddUnique(&emit_needs, g);
    }
    for (const auto& s : flat.select) {
      if (s.expr != nullptr) {
        std::vector<std::string> fs;
        s.expr->CollectFields(&fs);
        for (auto& f : fs) {
          AddUnique(&emit_needs, f);
        }
      }
    }
    const bool emit_needs_everything = flat.select.empty() && flat.group_by.empty();

    for (size_t pos = 0; pos < topo.size(); ++pos) {
      size_t idx = topo[pos];
      Stage& st = stages[idx];
      if (st.is_final || st.agg_pushed) {
        continue;
      }
      if (!options_.push_projection || emit_needs_everything) {
        st.pack_fields = st.available;
      } else {
        std::vector<std::string> needed_after = emit_needs;
        for (size_t later = pos + 1; later < topo.size(); ++later) {
          const Stage& lst = stages[topo[later]];
          for (const auto& f : lst.filters) {
            std::vector<std::string> fs;
            f->CollectFields(&fs);
            for (auto& x : fs) {
              AddUnique(&needed_after, x);
            }
          }
          for (const auto& let : lst.lets) {
            std::vector<std::string> fs;
            let.expr->CollectFields(&fs);
            for (auto& x : fs) {
              AddUnique(&needed_after, x);
            }
          }
          // A later pushed-aggregation stage consumes its raw inputs.
          for (const auto& let : lst.agg_lets) {
            std::vector<std::string> fs;
            let.expr->CollectFields(&fs);
            for (auto& x : fs) {
              AddUnique(&needed_after, x);
            }
          }
          for (const auto& spec : lst.pushed_aggs) {
            if (!spec.input.empty()) {
              AddUnique(&needed_after, spec.input);
            }
          }
        }
        for (const auto& f : st.available) {
          if (Contains(needed_after, f)) {
            st.pack_fields.push_back(f);
          }
        }
      }
      // Retention semantics from the source's temporal filter.
      switch (st.source.temporal) {
        case TemporalFilter::kAll:
          st.pack_spec = BagSpec::All();
          break;
        case TemporalFilter::kFirst:
          st.pack_spec = BagSpec::First(1);
          break;
        case TemporalFilter::kFirstN:
          st.pack_spec = BagSpec::First(st.source.n);
          break;
        case TemporalFilter::kMostRecent:
          st.pack_spec = BagSpec::Recent(1);
          break;
        case TemporalFilter::kMostRecentN:
          st.pack_spec = BagSpec::Recent(st.source.n);
          break;
      }
    }
  }

  // ---- 9. Generate advice. ----
  CompiledQuery out;
  out.query_id = query_id;
  out.ast = q;
  out.aggregated = aggregated;
  out.group_fields = flat.group_by;

  int emit_let_counter = 0;
  std::vector<LetBinding> emit_lets;  // Select-expression columns at the final stage.

  for (const auto& s : flat.select) {
    if (s.is_aggregate) {
      if (pushed_stage != SIZE_MAX) {
        out.aggs.push_back(AggSpec{s.fn, s.display, s.display, /*from_state=*/true});
      } else if (s.fn == AggFn::kCount && s.expr == nullptr) {
        out.aggs.push_back(AggSpec{AggFn::kCount, "", s.display, false});
      } else if (s.expr->op() == ExprOp::kField) {
        out.aggs.push_back(AggSpec{s.fn, s.expr->field_name(), s.display, false});
      } else {
        std::string name = "$emit" + std::to_string(emit_let_counter++);
        emit_lets.push_back(LetBinding{flat.from.alias, name, s.expr});
        out.aggs.push_back(AggSpec{s.fn, name, s.display, false});
      }
    } else if (!aggregated && s.expr->op() != ExprOp::kField) {
      emit_lets.push_back(LetBinding{flat.from.alias, s.display, s.expr});
    }
    out.output_columns.push_back(s.is_aggregate
                                     ? s.display
                                     : (s.expr->op() == ExprOp::kField && !s.has_explicit_alias
                                            ? s.expr->field_name()
                                            : s.display));
  }
  if (flat.select.empty() && aggregated) {
    out.output_columns = flat.group_by;
  }

  for (size_t idx : topo) {
    Stage& st = stages[idx];

    AdviceBuilder builder;
    if (st.source.sample_rate < 1.0) {
      builder.Sample(st.source.sample_rate);
    }
    std::vector<std::pair<std::string, std::string>> observe_pairs;
    for (const auto& f : st.observe) {
      size_t dot = f.find('.');
      observe_pairs.emplace_back(f.substr(dot + 1), f);
    }
    builder.Observe(std::move(observe_pairs));
    for (size_t p : st.preds) {
      builder.Unpack(stages[p].bag);
    }
    for (const auto& let : st.lets) {
      builder.Let(let.name, let.expr);
    }
    for (const auto& f : st.filters) {
      builder.Filter(f);
    }
    if (st.is_final) {
      for (const auto& let : emit_lets) {
        builder.Let(let.name, let.expr);
      }
      std::vector<std::string> emit_fields;
      if (!aggregated) {
        // Streaming query: project to the Select outputs (all columns when no
        // Select was given).
        for (const auto& s : flat.select) {
          emit_fields.push_back(s.expr->op() == ExprOp::kField && !s.has_explicit_alias
                                    ? s.expr->field_name()
                                    : s.display);
        }
      }
      builder.Emit(query_id, std::move(emit_fields));
    } else {
      for (const auto& let : st.agg_lets) {
        builder.Let(let.name, let.expr);
      }
      builder.Pack(st.bag, st.pack_spec, st.pack_fields);
    }
    Advice::Ptr advice = builder.Build();
    // Pre-bind every expression's field references to interned SymbolIds at
    // compile time, so weaving (AdvicePlan::Compile) and first execution never
    // pay the name->id resolution — the agent hot path sees bound exprs only.
    for (const Advice::Op& op : advice->ops()) {
      if (op.expr != nullptr) {
        op.expr->Bind();
      }
    }
    for (const auto& tp_name : st.source.tracepoints) {
      out.advice.emplace_back(tp_name, advice);
    }
  }

  // Rename streaming output columns: a plain-field select keeps its qualified
  // name; nothing else to do (Lets already used display names).

  // ---- 6. Static verification (src/analysis): reject our own output if the
  // verifier finds error-severity defects. Warnings and infos pass through;
  // the frontend decides the install-time policy for those. ----
  if (options_.verify) {
    analysis::LintOptions lint_options;
    lint_options.schema = registry_;
    lint_options.assume_projection_pushdown = options_.push_projection;
    lint_options.propagation = options_.propagation;
    lint_options.baggage_budget = options_.baggage_budget;
    analysis::QueryLintResult lint = LintCompiledQuery(out, lint_options);
    if (lint.report.has_errors()) {
      return InvalidArgumentError("query fails static verification:\n" +
                                  lint.report.ToString());
    }
  }
  return out;
}

analysis::QueryLintResult LintCompiledQuery(const CompiledQuery& compiled,
                                            const analysis::LintOptions& options) {
  analysis::LintPlan plan;
  plan.aggregated = compiled.aggregated;
  plan.group_fields = compiled.group_fields;
  plan.aggs = compiled.aggs;
  plan.output_columns = compiled.output_columns;
  return analysis::QueryLinter(options).Lint(compiled.query_id, compiled.advice, plan);
}

std::vector<CompiledQuery::PackCost> CompiledQuery::EstimatePackCosts() const {
  std::vector<PackCost> out;
  for (const auto& [tp, adv] : advice) {
    for (const Advice::Op& op : adv->ops()) {
      if (op.kind != Advice::OpKind::kPack) {
        continue;
      }
      PackCost cost;
      cost.tracepoint = tp;
      cost.bag = op.bag;
      cost.fields = op.fields.size();
      switch (op.bag_spec.semantics) {
        case PackSemantics::kFirstN:
          cost.bound = op.bag_spec.limit == 1
                           ? "1 (FIRST)"
                           : "<= " + std::to_string(op.bag_spec.limit) + " (FIRSTN)";
          break;
        case PackSemantics::kRecentN:
          cost.bound = op.bag_spec.limit == 1
                           ? "1 (RECENT)"
                           : "<= " + std::to_string(op.bag_spec.limit) + " (RECENTN)";
          break;
        case PackSemantics::kAggregate:
          cost.bound = op.bag_spec.group_fields.empty()
                           ? "1 aggregate state"
                           : "#groups of " + std::to_string(op.bag_spec.group_fields.size()) +
                                 " field(s)";
          cost.fields = 0;
          break;
        case PackSemantics::kAll:
          cost.bound = "unbounded (one per invocation)";
          cost.unbounded = true;
          break;
      }
      out.push_back(std::move(cost));
    }
  }
  return out;
}

CompiledQuery MakeCountingQuery(const CompiledQuery& original, uint64_t shadow_id) {
  CompiledQuery out;
  out.query_id = shadow_id;
  out.ast = original.ast;
  out.aggregated = true;
  out.group_fields = {"$stage"};
  out.aggs = {AggSpec{AggFn::kCount, "", "COUNT", false}};
  out.output_columns = {"$stage", "COUNT"};

  auto remap_bag = [shadow_id](BagKey bag) {
    return shadow_id * kBagKeysPerQuery + bag % kBagKeysPerQuery;
  };

  for (const auto& [tp, adv] : original.advice) {
    std::vector<Advice::Op> ops;
    for (const Advice::Op& op : adv->ops()) {
      Advice::Op copy = op;
      switch (op.kind) {
        case Advice::OpKind::kUnpack:
        case Advice::OpKind::kPack:
          copy.bag = remap_bag(op.bag);
          break;
        case Advice::OpKind::kEmit: {
          // The final stage reports one count row per would-be emitted tuple.
          Advice::Op let;
          let.kind = Advice::OpKind::kLet;
          let.let_name = "$stage";
          let.expr = Expr::Literal(Value("emit@" + tp));
          ops.push_back(std::move(let));
          copy.query_id = shadow_id;
          copy.fields = {"$stage"};
          ops.push_back(std::move(copy));
          continue;
        }
        default:
          break;
      }
      bool was_pack = op.kind == Advice::OpKind::kPack;
      ops.push_back(std::move(copy));
      if (was_pack) {
        // Count each tuple entering the baggage at this stage.
        Advice::Op let;
        let.kind = Advice::OpKind::kLet;
        let.let_name = "$stage";
        let.expr = Expr::Literal(Value("pack@" + tp));
        ops.push_back(std::move(let));
        Advice::Op emit;
        emit.kind = Advice::OpKind::kEmit;
        emit.query_id = shadow_id;
        emit.fields = {"$stage"};
        ops.push_back(std::move(emit));
      }
    }
    out.advice.emplace_back(tp, std::make_shared<const Advice>(std::move(ops)));
  }
  return out;
}

std::string CompiledQuery::Explain() const {
  std::string out = "Query " + std::to_string(query_id) + ":\n";
  for (const auto& [tp, adv] : advice) {
    out += "  at " + tp + ":\n";
    std::string listing = adv->ToString();
    // Indent each line.
    size_t start = 0;
    while (start < listing.size()) {
      size_t end = listing.find('\n', start);
      if (end == std::string::npos) {
        end = listing.size();
      }
      out += "    " + listing.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  if (aggregated) {
    out += "  result: group by [";
    for (size_t i = 0; i < group_fields.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += group_fields[i];
    }
    out += "], aggregates [";
    for (size_t i = 0; i < aggs.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += aggs[i].output;
      if (aggs[i].from_state) {
        out += " (combined from packed state)";
      }
    }
    out += "]\n";
  } else {
    out += "  result: streaming tuples\n";
  }
  return out;
}

}  // namespace pivot
