#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/core/tracepoint.h"
#include "src/telemetry/metrics.h"

namespace pivot {
namespace telemetry {
namespace {

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  // Registry counters use fetch_add: unlike the tracepoint fire counter
  // (lossy by design), these must not lose counts under contention.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.Increment();
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, CountSumAndBuckets) {
  Histogram h;
  h.Observe(0);
  h.Observe(1);
  h.Observe(100);
  h.Observe(1000);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1101u);
}

TEST(HistogramTest, QuantileUpperBound) {
  Histogram h;
  for (int i = 0; i < 99; ++i) {
    h.Observe(10);  // Bucket upper bound 15 (2^4 - 1).
  }
  h.Observe(100000);
  // p50 falls in the bucket holding the 10s; the bound is the bucket's top.
  EXPECT_EQ(h.QuantileUpperBound(0.5), 15u);
  // The max lands in the outlier's bucket (rank = floor(q * count), so only
  // q=1 is guaranteed to reach the last observation).
  EXPECT_GE(h.QuantileUpperBound(1.0), 100000u);
}

TEST(HistogramTest, EmptyQuantileIsZero) {
  Histogram h;
  EXPECT_EQ(h.QuantileUpperBound(0.5), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, ConcurrentObserves) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<uint64_t>(t) * 100 + 1);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, ReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("x");
  Counter& b = registry.GetCounter("x");
  EXPECT_EQ(&a, &b);
  a.Increment();
  EXPECT_EQ(b.value(), 1u);
  Histogram& h1 = registry.GetHistogram("y");
  Histogram& h2 = registry.GetHistogram("y");
  EXPECT_EQ(&h1, &h2);
}

TEST(MetricsRegistryTest, SnapshotsAndRender) {
  MetricsRegistry registry;
  registry.GetCounter("alpha").Increment(3);
  registry.GetHistogram("beta").Observe(7);
  auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].name, "alpha");
  EXPECT_EQ(counters[0].value, 3u);
  auto hists = registry.Histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].name, "beta");
  EXPECT_EQ(hists[0].count, 1u);
  EXPECT_EQ(hists[0].sum, 7u);

  std::string text = registry.RenderText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("beta"), std::string::npos);
  std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);

  registry.ResetAll();
  EXPECT_EQ(registry.Counters()[0].value, 0u);
  EXPECT_EQ(registry.Histograms()[0].count, 0u);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&Metrics(), &MetricsRegistry::Global());
}

TEST(TracepointStatsTest, CountsFiresWovenAndUnwoven) {
  TracepointRegistry registry;
  TracepointDef def;
  def.name = "T";
  def.exports = {"v"};
  Result<Tracepoint*> tp = registry.Define(std::move(def));
  ASSERT_TRUE(tp.ok());

  // Single-threaded, so the lossy fire counter is exact.
  for (int i = 0; i < 5; ++i) {
    (*tp)->Invoke(nullptr, {});
  }
  EXPECT_EQ((*tp)->fires(), 5u);
  EXPECT_EQ((*tp)->woven_fires(), 0u);
  EXPECT_EQ((*tp)->unwoven_fires(), 5u);
  EXPECT_EQ((*tp)->advice_nanos(), 0u);

  // Weave trivial (empty-program) advice: woven fires start counting.
  Advice::Ptr advice = std::make_shared<Advice>(std::vector<Advice::Op>{});
  ASSERT_TRUE(registry.WeaveQuery(1, {{"T", advice}}).ok());
  for (int i = 0; i < 3; ++i) {
    (*tp)->Invoke(nullptr, {});
  }
  EXPECT_EQ((*tp)->fires(), 8u);
  EXPECT_EQ((*tp)->woven_fires(), 3u);
  EXPECT_EQ((*tp)->unwoven_fires(), 5u);

  auto rows = registry.StatsSnapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].name, "T");
  EXPECT_EQ(rows[0].fires, 8u);
  EXPECT_EQ(rows[0].woven_fires, 3u);

  registry.UnweaveQuery(1);
  (*tp)->Invoke(nullptr, {});
  EXPECT_EQ((*tp)->fires(), 9u);
  EXPECT_EQ((*tp)->woven_fires(), 3u);
}

TEST(TracepointStatsTest, ConcurrentFiresDoNotTearOrCrash) {
  TracepointRegistry registry;
  TracepointDef def;
  def.name = "T";
  Result<Tracepoint*> tp = registry.Define(std::move(def));
  ASSERT_TRUE(tp.ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tp] {
      for (int i = 0; i < kPerThread; ++i) {
        (*tp)->Invoke(nullptr, {});
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  // The fire counter is deliberately lossy under contention (plain relaxed
  // increment, see tracepoint.h) but must stay within the issued total and
  // make real progress.
  EXPECT_LE((*tp)->fires(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_GE((*tp)->fires(), static_cast<uint64_t>(kPerThread));
}

}  // namespace
}  // namespace telemetry
}  // namespace pivot
