#include <gtest/gtest.h>

#include <vector>

#include "src/common/rand.h"
#include "src/core/itc.h"

namespace pivot {
namespace {

TEST(ItcTest, DefaultIsZero) {
  ItcId id;
  EXPECT_TRUE(id.IsZero());
  EXPECT_FALSE(id.IsOne());
}

TEST(ItcTest, SeedOwnsEverything) {
  ItcId seed = ItcId::Seed();
  EXPECT_TRUE(seed.IsOne());
  EXPECT_FALSE(seed.IsZero());
}

TEST(ItcTest, SplitSeedMatchesPaper) {
  // split(1) = ((1,0), (0,1)) from the ITC paper.
  auto [l, r] = ItcId::Seed().Split();
  EXPECT_EQ(l.ToString(), "(1, 0)");
  EXPECT_EQ(r.ToString(), "(0, 1)");
}

TEST(ItcTest, SplitHalvesAreDisjoint) {
  auto [l, r] = ItcId::Seed().Split();
  EXPECT_FALSE(ItcId::Overlaps(l, r));
}

TEST(ItcTest, SplitHalvesJoinBackToOriginal) {
  auto [l, r] = ItcId::Seed().Split();
  EXPECT_EQ(ItcId::Join(l, r), ItcId::Seed());
}

TEST(ItcTest, NestedSplitJoinNormalizes) {
  auto [l, r] = ItcId::Seed().Split();
  auto [ll, lr] = l.Split();
  // Rejoining in a different grouping still recovers the seed.
  ItcId joined = ItcId::Join(ItcId::Join(lr, r), ll);
  EXPECT_EQ(joined, ItcId::Seed());
}

TEST(ItcTest, JoinWithZeroIsIdentity) {
  auto [l, r] = ItcId::Seed().Split();
  EXPECT_EQ(ItcId::Join(l, ItcId()), l);
  EXPECT_EQ(ItcId::Join(ItcId(), r), r);
}

TEST(ItcTest, OverlapDetection) {
  ItcId seed = ItcId::Seed();
  auto [l, r] = seed.Split();
  EXPECT_TRUE(ItcId::Overlaps(seed, l));
  EXPECT_TRUE(ItcId::Overlaps(l, l));
  EXPECT_FALSE(ItcId::Overlaps(l, r));
  EXPECT_FALSE(ItcId::Overlaps(ItcId(), seed));
}

TEST(ItcTest, EncodeDecodeRoundTrip) {
  auto [l, r] = ItcId::Seed().Split();
  auto [ll, lr] = l.Split();
  for (const ItcId& id : {ItcId(), ItcId::Seed(), l, r, ll, lr}) {
    std::vector<uint8_t> buf;
    id.Encode(&buf);
    size_t pos = 0;
    ItcId decoded;
    ASSERT_TRUE(ItcId::Decode(buf.data(), buf.size(), &pos, &decoded));
    EXPECT_EQ(decoded, id);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(ItcTest, DecodeRejectsTruncated) {
  std::vector<uint8_t> buf;
  ItcId::Seed().Split().first.Encode(&buf);
  buf.pop_back();
  size_t pos = 0;
  ItcId decoded;
  EXPECT_FALSE(ItcId::Decode(buf.data(), buf.size(), &pos, &decoded));
}

TEST(ItcTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> buf = {0x07};
  size_t pos = 0;
  ItcId decoded;
  EXPECT_FALSE(ItcId::Decode(buf.data(), buf.size(), &pos, &decoded));
}

TEST(ItcTest, DecodeRejectsDeepNesting) {
  // 600 interior-node tags with no leaves exhausts the depth cap, not the
  // stack.
  std::vector<uint8_t> buf(600, 0x02);
  size_t pos = 0;
  ItcId decoded;
  EXPECT_FALSE(ItcId::Decode(buf.data(), buf.size(), &pos, &decoded));
}

TEST(ItcTest, OrderingIsTotalOnDistinctIds) {
  auto [l, r] = ItcId::Seed().Split();
  EXPECT_TRUE((l < r) != (r < l));
  EXPECT_FALSE(l < l);
}

// Property test: arbitrary split/join trees preserve the two ITC invariants
// the baggage layer depends on — concurrently-held IDs are pairwise disjoint,
// and joining everything back recovers the seed.
class ItcPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ItcPropertyTest, RandomSplitJoinSequences) {
  Rng rng(GetParam());
  std::vector<ItcId> held = {ItcId::Seed()};
  for (int step = 0; step < 200; ++step) {
    if (held.size() == 1 || (held.size() < 12 && rng.NextBool())) {
      // Split a random held id (non-zero ones only).
      size_t i = rng.NextBelow(held.size());
      if (held[i].IsZero()) {
        continue;
      }
      auto [l, r] = held[i].Split();
      held[i] = l;
      held.push_back(r);
    } else {
      // Join two random distinct held ids.
      size_t i = rng.NextBelow(held.size());
      size_t j = rng.NextBelow(held.size());
      if (i == j) {
        continue;
      }
      held[i] = ItcId::Join(held[i], held[j]);
      held.erase(held.begin() + static_cast<ptrdiff_t>(j));
    }
    // Invariant 1: pairwise disjoint.
    for (size_t a = 0; a < held.size(); ++a) {
      for (size_t b = a + 1; b < held.size(); ++b) {
        ASSERT_FALSE(ItcId::Overlaps(held[a], held[b]))
            << held[a].ToString() << " overlaps " << held[b].ToString();
      }
    }
  }
  // Invariant 2: joining everything recovers the seed.
  ItcId all;
  for (const auto& id : held) {
    all = ItcId::Join(all, id);
  }
  EXPECT_EQ(all, ItcId::Seed());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItcPropertyTest, ::testing::Range(uint64_t{1}, uint64_t{21}));

}  // namespace
}  // namespace pivot
