// Simulated Hadoop MapReduce on YARN (§6): a job fans out map tasks over
// containers, shuffles intermediate data across the network, reduces, and
// writes output back to HDFS.
//
// Baggage flows exactly as in the paper's deployment: the job client packs
// its identity at the ClientProtocols tracepoint; submission, container
// launch, task IO and shuffle all carry (forked) baggage, so a Q2-style query
// attributes every byte of DataNode and direct-disk traffic to the top-level
// job (Fig 1b/1c). Task contexts rejoin the job context at completion,
// exercising Baggage::Join at scale.
//
// Disk traffic fires FileInputStream.read / FileOutputStream.write with a
// `category` export of "Map", "Shuffle" or "Reduce" (DataNode-side HDFS
// traffic uses "HDFS"), which is the column dimension of Fig 1c.

#ifndef PIVOT_SRC_HADOOP_MAPREDUCE_H_
#define PIVOT_SRC_HADOOP_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/hadoop/hdfs.h"
#include "src/hadoop/yarn.h"
#include "src/simsys/sim_world.h"

namespace pivot {

struct MrConfig {
  uint64_t split_bytes = 128ull << 20;   // One map task per split.
  double map_selectivity = 1.0;          // Map output / input ratio (1.0 for sort).
  int reducers = 8;
  int64_t cpu_micros_per_mb = 500;       // Task compute cost per MB processed.
  int containers_per_node = 4;
};

// Per-host task executor: a long-lived "MRTask" process per NodeManager host
// (a reused container JVM) embedding an HDFS client.
class MrTaskRuntime {
 public:
  MrTaskRuntime(SimProcess* proc, HdfsNameNode* namenode, uint64_t seed);

  SimProcess* process() { return proc_; }
  HdfsClient* hdfs() { return &hdfs_; }
  Tracepoint* tp_fis() { return tp_fis_; }
  Tracepoint* tp_fos() { return tp_fos_; }
  Tracepoint* tp_map_done() { return tp_map_done_; }
  Tracepoint* tp_reduce_done() { return tp_reduce_done_; }

 private:
  SimProcess* proc_;
  HdfsClient hdfs_;
  Tracepoint* tp_fis_;
  Tracepoint* tp_fos_;
  Tracepoint* tp_map_done_;
  Tracepoint* tp_reduce_done_;
};

class MapReduceRuntime {
 public:
  // One runtime per cluster: binds YARN + HDFS and creates the per-host task
  // processes.
  MapReduceRuntime(SimWorld* world, YarnResourceManager* rm, HdfsNameNode* namenode,
                   uint64_t seed);

  // Runs a job named `name` over `input_bytes` of the pre-created dataset.
  // `client` is the submitting process (its name is the job's identity, e.g.
  // "MRsort10g"); `on_complete` receives the rejoined job context.
  void SubmitJob(SimProcess* client, CtxPtr ctx, const std::string& name, uint64_t input_bytes,
                 const MrConfig& config, std::function<void(CtxPtr)> on_complete);

 private:
  struct JobState;

  MrTaskRuntime* RuntimeOn(SimHost* host);
  void RunMapTask(const std::shared_ptr<JobState>& job, int task_index, MrTaskRuntime* rt,
                  CtxPtr ctx, std::function<void()> release);
  void MaybeStartReduce(const std::shared_ptr<JobState>& job);
  void RunReduceTask(const std::shared_ptr<JobState>& job, int task_index, MrTaskRuntime* rt,
                     CtxPtr ctx, std::function<void()> release);
  void MaybeComplete(const std::shared_ptr<JobState>& job);

  SimWorld* world_;
  YarnResourceManager* rm_;
  HdfsNameNode* namenode_;
  Rng rng_;
  std::vector<std::unique_ptr<MrTaskRuntime>> task_runtimes_;  // One per NM host.
};

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_MAPREDUCE_H_
