// Property test: random query ASTs render to text that reparses to the same
// rendering (QueryToString ∘ ParseQuery is a fixpoint), and the parser never
// crashes on mutated query text.

#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/query/parser.h"

namespace pivot {
namespace {

class AstGenerator {
 public:
  explicit AstGenerator(uint64_t seed) : rng_(seed) {}

  Query RandomQuery() {
    Query q;
    alias_counter_ = 0;
    q.from = RandomSource(/*allow_union=*/true, /*allow_temporal=*/false);
    int joins = static_cast<int>(rng_.NextBelow(3));
    std::vector<std::string> earlier_aliases = {q.from.alias};
    for (int i = 0; i < joins; ++i) {
      JoinClause j;
      j.source = RandomSource(false, true);
      j.left = j.source.alias;
      // Order before a random already-present alias (keeps the DAG valid
      // with the From source as sink).
      j.right = earlier_aliases[rng_.NextBelow(earlier_aliases.size())];
      earlier_aliases.push_back(j.source.alias);
      q.joins.push_back(std::move(j));
    }
    int wheres = static_cast<int>(rng_.NextBelow(3));
    for (int i = 0; i < wheres; ++i) {
      q.where.push_back(RandomExpr(earlier_aliases, 2));
    }
    // Aggregated or streaming select.
    if (rng_.NextBool()) {
      int groups = static_cast<int>(1 + rng_.NextBelow(2));
      for (int g = 0; g < groups; ++g) {
        std::string field = RandomField(earlier_aliases);
        q.group_by.push_back(field);
        SelectItem item;
        item.expr = Expr::Field(field);
        item.display = field;
        q.select.push_back(std::move(item));
      }
      SelectItem agg;
      agg.is_aggregate = true;
      agg.fn = static_cast<AggFn>(rng_.NextBelow(5));
      if (agg.fn == AggFn::kCount) {
        agg.display = "COUNT";
      } else {
        agg.expr = Expr::Field(RandomField(earlier_aliases));
        agg.display = std::string(AggFnName(agg.fn)) + "(" + agg.expr->ToString() + ")";
      }
      q.select.push_back(std::move(agg));
    } else {
      int items = static_cast<int>(1 + rng_.NextBelow(3));
      for (int i = 0; i < items; ++i) {
        SelectItem item;
        item.expr = RandomExpr(earlier_aliases, 2);
        if (item.expr->op() == ExprOp::kField) {
          item.display = item.expr->field_name();
        } else if (rng_.NextBool()) {
          item.display = "col" + std::to_string(i);
          item.has_explicit_alias = true;
        } else {
          // Display must match the parser's derived name: expression text
          // with outer parens stripped.
          std::string text = item.expr->ToString();
          if (text.size() >= 2 && text.front() == '(' && text.back() == ')') {
            text = text.substr(1, text.size() - 2);
          }
          item.display = text;
        }
        q.select.push_back(std::move(item));
      }
    }
    return q;
  }

  std::string MutateText(const std::string& text) {
    std::string out = text;
    int edits = static_cast<int>(1 + rng_.NextBelow(4));
    for (int i = 0; i < edits && !out.empty(); ++i) {
      size_t at = rng_.NextBelow(out.size());
      switch (rng_.NextBelow(3)) {
        case 0:
          out[at] = static_cast<char>(32 + rng_.NextBelow(95));
          break;
        case 1:
          out.erase(at, 1);
          break;
        default:
          out.insert(at, 1, static_cast<char>(32 + rng_.NextBelow(95)));
          break;
      }
    }
    return out;
  }

 private:
  std::string NewAlias() { return "s" + std::to_string(alias_counter_++); }

  SourceRef RandomSource(bool allow_union, bool allow_temporal) {
    SourceRef src;
    src.alias = NewAlias();
    int names = allow_union && rng_.NextBool(0.2) ? 2 : 1;
    static const char* kNames[] = {"A", "B.C", "Tp.Method.done", "DN.DataTransferProtocol"};
    for (int i = 0; i < names; ++i) {
      src.tracepoints.emplace_back(kNames[rng_.NextBelow(4)]);
    }
    if (allow_temporal && rng_.NextBool(0.5)) {
      src.temporal = static_cast<TemporalFilter>(1 + rng_.NextBelow(4));
      src.n = static_cast<uint32_t>(1 + rng_.NextBelow(5));
    }
    if (rng_.NextBool(0.2)) {
      src.sample_rate = 0.25;
    }
    return src;
  }

  std::string RandomField(const std::vector<std::string>& aliases) {
    static const char* kFields[] = {"x", "y", "host", "delta"};
    return aliases[rng_.NextBelow(aliases.size())] + "." + kFields[rng_.NextBelow(4)];
  }

  Expr::Ptr RandomExpr(const std::vector<std::string>& aliases, int depth) {
    if (depth == 0 || rng_.NextBool(0.4)) {
      switch (rng_.NextBelow(3)) {
        case 0:
          return Expr::Field(RandomField(aliases));
        case 1:
          return Expr::Literal(Value(rng_.NextInt(-100, 100)));
        default:
          return Expr::Literal(Value("str" + std::to_string(rng_.NextBelow(5))));
      }
    }
    static const ExprOp kOps[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul, ExprOp::kDiv,
                                  ExprOp::kEq,  ExprOp::kNe,  ExprOp::kLt,  ExprOp::kGe,
                                  ExprOp::kAnd, ExprOp::kOr};
    return Expr::Binary(kOps[rng_.NextBelow(10)], RandomExpr(aliases, depth - 1),
                        RandomExpr(aliases, depth - 1));
  }

  Rng rng_;
  int alias_counter_ = 0;
};

class ParserRoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripFuzz, RenderedAstReparsesToSameRendering) {
  AstGenerator gen(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Query q = gen.RandomQuery();
    std::string rendered = QueryToString(q);
    Result<Query> reparsed = ParseQuery(rendered);
    ASSERT_TRUE(reparsed.ok()) << rendered << "\n" << reparsed.status().ToString();
    EXPECT_EQ(QueryToString(*reparsed), rendered) << "original:\n" << rendered;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripFuzz, ::testing::Range(uint64_t{1}, uint64_t{9}));

class ParserMutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserMutationFuzz, MutatedTextNeverCrashes) {
  AstGenerator gen(GetParam() * 1337);
  for (int trial = 0; trial < 200; ++trial) {
    Query q = gen.RandomQuery();
    std::string mutated = gen.MutateText(QueryToString(q));
    // Parse result is irrelevant; it must not crash or hang.
    Result<Query> result = ParseQuery(mutated);
    if (result.ok()) {
      QueryToString(*result);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserMutationFuzz, ::testing::Range(uint64_t{1}, uint64_t{6}));

}  // namespace
}  // namespace pivot
