# Empty compiler generated dependencies file for advice_io_test.
# This may be replaced when dependencies are built.
