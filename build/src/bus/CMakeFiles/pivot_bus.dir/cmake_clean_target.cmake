file(REMOVE_RECURSE
  "libpivot_bus.a"
)
