#include "src/core/aggregation.h"

#include <cassert>
#include <cstring>

#include "src/telemetry/metrics.h"

namespace pivot {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAverage:
      return "AVERAGE";
  }
  return "?";
}

std::vector<std::string> AggSpec::StateColumns() const {
  if (fn == AggFn::kAverage) {
    return {output, output + "#n"};
  }
  return {output};
}

Aggregator::Aggregator(std::vector<std::string> group_fields, std::vector<AggSpec> specs)
    : group_fields_(std::move(group_fields)), specs_(std::move(specs)) {
  group_ids_ = InternSymbols(group_fields_);
  spec_ids_.reserve(specs_.size());
  for (const AggSpec& spec : specs_) {
    SpecIds ids;
    ids.input = InternSymbol(spec.input);
    ids.input_n = InternSymbol(spec.input + "#n");
    ids.output = InternSymbol(spec.output);
    ids.output_n = InternSymbol(spec.output + "#n");
    spec_ids_.push_back(ids);
  }
}

namespace {

// Index probes performed across all aggregators in the process (one count per
// slot inspected, hit or miss) — the observable cost of the hashed group
// index (docs/OBSERVABILITY.md).
telemetry::Counter& GroupProbeCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agg.group_probe_count");
  return c;
}

// Type-tagged FNV-1a over the projected group values. Must stay consistent
// with GroupValueEquals below: bit-identical values hash identically. The
// type tag keeps int 1 / double 1.0 / string "1" in distinct buckets (they
// are distinct groups), unlike Value::Hash which deliberately collapses
// numerically-equal ints and doubles.
constexpr uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

uint64_t HashBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * kFnvPrime;
  }
  return h;
}

uint64_t GroupKeyHash(const Tuple& t, const std::vector<SymbolId>& fields) {
  uint64_t h = kFnvOffset;
  for (SymbolId f : fields) {
    Value v = t.Get(f);
    h = (h ^ static_cast<uint8_t>(v.type())) * kFnvPrime;
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInt: {
        int64_t i = v.int_value();
        h = HashBytes(h, &i, sizeof(i));
        break;
      }
      case ValueType::kDouble: {
        double d = v.double_value();
        h = HashBytes(h, &d, sizeof(d));
        break;
      }
      case ValueType::kString:
        h = HashBytes(h, v.string_value().data(), v.string_value().size());
        break;
    }
  }
  return h;
}

// Group-key equality: same type and exactly the same value. Doubles compare
// bitwise (consistent with hashing their raw bytes), NOT through
// Value::Compare's cross-type numeric ordering.
bool GroupValueEquals(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    return false;
  }
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt:
      return a.int_value() == b.int_value();
    case ValueType::kDouble: {
      double da = a.double_value();
      double db = b.double_value();
      return std::memcmp(&da, &db, sizeof(da)) == 0;
    }
    case ValueType::kString:
      return a.string_value() == b.string_value();
  }
  return false;
}

// `key` holds the candidate group's projected key tuple (group_fields_ order,
// missing fields projected to null), `t` the incoming tuple.
bool GroupKeyEquals(const Tuple& key, const Tuple& t, const std::vector<SymbolId>& fields) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (!GroupValueEquals(key.field(i).value, t.Get(fields[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

Aggregator::Group& Aggregator::GroupFor(const Tuple& t) {
  if (slots_.empty()) {
    slots_.resize(16);
  }
  const uint64_t hash = GroupKeyHash(t, group_ids_);
  const size_t mask = slots_.size() - 1;
  size_t i = static_cast<size_t>(hash) & mask;
  uint64_t probes = 1;
  while (slots_[i].group != kEmptySlot) {
    if (slots_[i].hash == hash &&
        GroupKeyEquals(groups_[slots_[i].group].key_tuple, t, group_ids_)) {
      GroupProbeCounter().Increment(probes);
      return groups_[slots_[i].group];
    }
    i = (i + 1) & mask;
    ++probes;
  }
  GroupProbeCounter().Increment(probes);
  slots_[i] = IndexSlot{hash, groups_.size()};
  Group g;
  g.key_tuple = t.Project(group_ids_);
  g.accums.resize(specs_.size());
  groups_.push_back(std::move(g));
  if ((groups_.size() + 1) * 8 > slots_.size() * 7) {
    GrowIndex();
  }
  return groups_.back();
}

void Aggregator::GrowIndex() {
  std::vector<IndexSlot> old = std::move(slots_);
  slots_.assign(old.size() * 2, IndexSlot{});
  const size_t mask = slots_.size() - 1;
  for (const IndexSlot& slot : old) {
    if (slot.group == kEmptySlot) {
      continue;
    }
    size_t i = static_cast<size_t>(slot.hash) & mask;
    while (slots_[i].group != kEmptySlot) {
      i = (i + 1) & mask;
    }
    slots_[i] = slot;
  }
}

namespace {

// Combine-style accumulation: `v` is a partial aggregate of `fn` and `n` its
// companion count (Average only). Shared by AddState and from_state inputs.
void CombineInto(Aggregator::AccumRef a, AggFn fn, const Value& v, int64_t n) {
  if (v.is_null()) {
    return;
  }
  switch (fn) {
    case AggFn::kCount:  // Combiner for Count is Sum (Table 3).
    case AggFn::kSum:
      a.value = a.has_value ? ValueAdd(a.value, v) : v;
      a.has_value = true;
      break;
    case AggFn::kMin:
      if (!a.has_value || v.Compare(a.value) < 0) {
        a.value = v;
      }
      a.has_value = true;
      break;
    case AggFn::kMax:
      if (!a.has_value || v.Compare(a.value) > 0) {
        a.value = v;
      }
      a.has_value = true;
      break;
    case AggFn::kAverage:
      a.value = a.has_value ? ValueAdd(a.value, v) : v;
      a.count += n;
      a.has_value = true;
      break;
  }
}

}  // namespace

void Aggregator::AddInput(const Tuple& t) {
  Group& g = GroupFor(t);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const AggSpec& spec = specs_[i];
    const SpecIds& ids = spec_ids_[i];
    Accum& a = g.accums[i];
    if (spec.from_state) {
      Value n = t.Get(ids.input_n);
      CombineInto(AccumRef{a.has_value, a.value, a.count}, spec.fn, t.Get(ids.input),
                  n.is_null() ? 0 : n.int_value());
      continue;
    }
    switch (spec.fn) {
      case AggFn::kCount:
        a.value = a.has_value ? ValueAdd(a.value, Value(int64_t{1})) : Value(int64_t{1});
        a.has_value = true;
        break;
      case AggFn::kSum: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;  // Nulls do not contribute to sums.
        }
        a.value = a.has_value ? ValueAdd(a.value, v) : v;
        a.has_value = true;
        break;
      }
      case AggFn::kMin: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;
        }
        if (!a.has_value || v.Compare(a.value) < 0) {
          a.value = v;
        }
        a.has_value = true;
        break;
      }
      case AggFn::kMax: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;
        }
        if (!a.has_value || v.Compare(a.value) > 0) {
          a.value = v;
        }
        a.has_value = true;
        break;
      }
      case AggFn::kAverage: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;
        }
        a.value = a.has_value ? ValueAdd(a.value, v) : v;
        a.count += 1;
        a.has_value = true;
        break;
      }
    }
  }
}

void Aggregator::AddState(const Tuple& t) {
  Group& g = GroupFor(t);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const AggSpec& spec = specs_[i];
    const SpecIds& ids = spec_ids_[i];
    Accum& a = g.accums[i];
    Value n = t.Get(ids.output_n);
    CombineInto(AccumRef{a.has_value, a.value, a.count}, spec.fn, t.Get(ids.output),
                n.is_null() ? 0 : n.int_value());
  }
}

std::vector<Tuple> Aggregator::StateTuples() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) {
    Tuple t = g.key_tuple;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AggSpec& spec = specs_[i];
      const SpecIds& ids = spec_ids_[i];
      const Accum& a = g.accums[i];
      t.Append(ids.output, a.has_value ? a.value : Value());
      if (spec.fn == AggFn::kAverage) {
        t.Append(ids.output_n, Value(a.count));
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tuple> Aggregator::Finalize() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) {
    Tuple t = g.key_tuple;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AggSpec& spec = specs_[i];
      const Accum& a = g.accums[i];
      if (!a.has_value) {
        // COUNT of an empty group is 0; other aggregates of nothing are null.
        t.Append(spec.output, spec.fn == AggFn::kCount ? Value(int64_t{0}) : Value());
        continue;
      }
      if (spec.fn == AggFn::kAverage) {
        t.Append(spec.output,
                 a.count == 0 ? Value() : Value(a.value.AsDouble() / static_cast<double>(a.count)));
      } else {
        t.Append(spec.output, a.value);
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

void Aggregator::Clear() {
  groups_.clear();
  slots_.clear();
}

}  // namespace pivot
