#include "src/core/wire.h"

#include <cstring>

namespace pivot {

void PutString(std::vector<uint8_t>* out, std::string_view s) {
  PutVarint64(out, s.size());
  out->insert(out->end(), s.begin(), s.end());
}

bool GetString(const uint8_t* data, size_t size, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!GetVarint64(data, size, pos, &len)) {
    return false;
  }
  if (len > size - *pos) {
    return false;
  }
  s->assign(reinterpret_cast<const char*>(data + *pos), len);
  *pos += len;
  return true;
}

void PutValue(std::vector<uint8_t>* out, const Value& v) {
  out->push_back(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      PutVarintSigned64(out, v.int_value());
      break;
    case ValueType::kDouble: {
      // Raw little-endian IEEE754; all supported platforms are LE.
      double d = v.double_value();
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      for (int i = 0; i < 8; ++i) {
        out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
      }
      break;
    }
    case ValueType::kString:
      PutString(out, v.string_value());
      break;
  }
}

bool GetValue(const uint8_t* data, size_t size, size_t* pos, Value* v) {
  if (*pos >= size) {
    return false;
  }
  uint8_t tag = data[(*pos)++];
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value();
      return true;
    case ValueType::kInt: {
      int64_t i = 0;
      if (!GetVarintSigned64(data, size, pos, &i)) {
        return false;
      }
      *v = Value(i);
      return true;
    }
    case ValueType::kDouble: {
      if (size - *pos < 8) {
        return false;
      }
      uint64_t bits = 0;
      for (int i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(data[*pos + static_cast<size_t>(i)]) << (8 * i);
      }
      *pos += 8;
      double d;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!GetString(data, size, pos, &s)) {
        return false;
      }
      *v = Value(std::move(s));
      return true;
    }
    default:
      return false;
  }
}

void PutTuple(std::vector<uint8_t>* out, const Tuple& t) {
  PutVarint64(out, t.size());
  for (const auto& f : t.fields()) {
    PutString(out, f.name());
    PutValue(out, f.value);
  }
}

bool GetTuple(const uint8_t* data, size_t size, size_t* pos, Tuple* t) {
  uint64_t n = 0;
  if (!GetVarint64(data, size, pos, &n)) {
    return false;
  }
  // Each field costs at least 2 bytes on the wire; reject absurd counts early
  // so malformed input cannot trigger huge allocations.
  if (n > (size - *pos)) {
    return false;
  }
  std::vector<Tuple::Field> fields;
  fields.reserve(n);
  std::string name;
  for (uint64_t i = 0; i < n; ++i) {
    Tuple::Field f;
    if (!GetString(data, size, pos, &name) || !GetValue(data, size, pos, &f.value)) {
      return false;
    }
    f.id = InternSymbol(name);
    fields.push_back(std::move(f));
  }
  *t = Tuple(std::move(fields));
  return true;
}

}  // namespace pivot
