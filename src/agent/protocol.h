// Control-plane protocol between the Pivot Tracing frontend and PT agents.
//
// Three message kinds flow over the bus (Fig 2):
//   Weave    frontend → agents: query id, per-tracepoint advice, result plan
//   Unweave  frontend → agents: query id
//   Report   agent → frontend: one interval's partial results for one query
//
// Reports and heartbeats normally travel inside a ReportBatch (kBatch): one
// frame per agent flush carrying every query's report, so bus traffic scales
// with flushes, not active queries. Single-report frames (kReport/kStats)
// remain decodable for compatibility and tests.
//
// Everything is byte-encoded with the wire codec so the protocol crosses
// (simulated) process boundaries the same way a real deployment would.

#ifndef PIVOT_SRC_AGENT_PROTOCOL_H_
#define PIVOT_SRC_AGENT_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/advice.h"
#include "src/core/aggregation.h"
#include "src/core/tuple.h"

namespace pivot {

// How agents and the frontend process a query's emitted tuples.
struct ResultPlan {
  bool aggregated = false;
  std::vector<std::string> group_fields;
  std::vector<AggSpec> aggs;                // from_state marks pushed-down aggregates.
  std::vector<std::string> output_columns;  // Final column order (may be empty).
};

struct WeaveCommand {
  uint64_t query_id = 0;
  std::vector<std::pair<std::string, Advice::Ptr>> advice;  // (tracepoint, advice).
  ResultPlan plan;
};

struct AgentReport {
  uint64_t query_id = 0;
  std::string host;
  std::string process_name;
  int64_t timestamp_micros = 0;  // Interval this report covers (its end).
  bool aggregated = false;
  // Aggregate state tuples (combinable) or raw streamed rows.
  std::vector<Tuple> tuples;
};

// Agent -> frontend: acknowledges that a weave command was applied locally.
// Lets the frontend timestamp the install -> woven-everywhere transition in
// StatusReport() instead of inferring it from the first report.
struct WeaveAck {
  uint64_t query_id = 0;
  std::string host;
  std::string process_name;
  int64_t timestamp_micros = 0;
};

// Agent -> frontend heartbeat for a quiet query: the agent has data-free
// flushes to report (suppressed reports), so the frontend can distinguish
// "query matched nothing" from "agent stopped flushing" (docs/OBSERVABILITY.md).
struct AgentStats {
  uint64_t query_id = 0;
  std::string host;
  std::string process_name;
  int64_t timestamp_micros = 0;       // When this heartbeat was produced.
  int64_t last_report_micros = -1;    // Last non-empty report, -1 if never.
  uint64_t reports_suppressed = 0;    // Empty flushes since weave.
  uint64_t tuples_emitted = 0;        // Tuples this query emitted here, ever.
};

// Agent -> frontend: everything one Flush produced, in a single frame. The
// agent identity and interval timestamp are hoisted into the batch header
// (every report/heartbeat of one flush shares them), so the wire cost of a
// flush is one bus publish regardless of how many queries reported. Decode
// re-hydrates full AgentReport/AgentStats values — header fields copied into
// each — so batch consumers reuse the single-report handling unchanged.
struct ReportBatch {
  std::string host;
  std::string process_name;
  int64_t timestamp_micros = 0;
  // Per-entry host/process_name/timestamp_micros are ignored on encode (the
  // header wins) and filled from the header on decode.
  std::vector<AgentReport> reports;
  std::vector<AgentStats> heartbeats;
};

enum class ControlMessageType : uint8_t {
  kWeave = 1,
  kUnweave = 2,
  kReport = 3,
  // Agent startup announcement (agent -> frontend): prompts the frontend to
  // re-publish the weave commands of all active queries, so processes that
  // start *after* a query was installed still weave it ("standing queries
  // for long-running system monitoring", §1).
  kHello = 4,
  kWeaveAck = 5,
  kStats = 6,
  kBatch = 7,
};

std::vector<uint8_t> EncodeWeave(const WeaveCommand& cmd);
std::vector<uint8_t> EncodeUnweave(uint64_t query_id);
std::vector<uint8_t> EncodeReport(const AgentReport& report);
std::vector<uint8_t> EncodeHello();
std::vector<uint8_t> EncodeWeaveAck(const WeaveAck& ack);
std::vector<uint8_t> EncodeAgentStats(const AgentStats& stats);
// If `report_bytes` is non-null it receives, per batch.reports entry, the
// number of encoded bytes that report contributed to the frame (the
// per-query cost exported by the PTAgent.Flush meta-tracepoint).
std::vector<uint8_t> EncodeReportBatch(const ReportBatch& batch,
                                       std::vector<size_t>* report_bytes = nullptr);

// Decoded union; `type` selects the valid member.
struct ControlMessage {
  ControlMessageType type = ControlMessageType::kWeave;
  WeaveCommand weave;
  uint64_t unweave_query_id = 0;
  AgentReport report;
  WeaveAck weave_ack;
  AgentStats stats;
  ReportBatch batch;
};

Result<ControlMessage> DecodeControlMessage(const std::vector<uint8_t>& payload);

}  // namespace pivot

#endif  // PIVOT_SRC_AGENT_PROTOCOL_H_
