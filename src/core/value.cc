#include "src/core/value.h"

#include <cmath>

#include "src/common/strings.h"

namespace pivot {
namespace {

// FNV-1a over raw bytes.
uint64_t HashBytes(const void* data, size_t n, uint64_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = seed ^ 0xCBF29CE484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

double Value::AsDouble() const {
  switch (type()) {
    case ValueType::kNull:
      return 0.0;
    case ValueType::kInt:
      return static_cast<double>(int_value());
    case ValueType::kDouble:
      return double_value();
    case ValueType::kString:
      return 0.0;
  }
  return 0.0;
}

bool Value::AsBool() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return int_value() != 0;
    case ValueType::kDouble:
      return double_value() != 0.0;
    case ValueType::kString:
      return !string_value().empty();
  }
  return false;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt:
      return std::to_string(int_value());
    case ValueType::kDouble: {
      double d = double_value();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        return StrFormat("%.1f", d);
      }
      return StrFormat("%g", d);
    }
    case ValueType::kString:
      return string_value();
  }
  return "?";
}

int Value::Compare(const Value& other) const {
  // Numeric types compare cross-type; otherwise order by type rank.
  if (is_numeric() && other.is_numeric()) {
    if (is_int() && other.is_int()) {
      int64_t a = int_value();
      int64_t b = other.int_value();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble();
    double b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  auto rank = [](ValueType t) {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
    }
    return 3;
  };
  int ra = rank(type());
  int rb = rank(other.type());
  if (ra != rb) {
    return ra < rb ? -1 : 1;
  }
  if (is_string()) {
    int c = string_value().compare(other.string_value());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  return 0;  // Both null.
}

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9E3779B97F4A7C15ULL;
    case ValueType::kInt: {
      int64_t v = int_value();
      return HashBytes(&v, sizeof(v), 1);
    }
    case ValueType::kDouble: {
      // Hash doubles that hold integral values identically to the int, so that
      // group keys are stable across numeric promotion.
      double d = double_value();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 9.2e18) {
        int64_t v = static_cast<int64_t>(d);
        return HashBytes(&v, sizeof(v), 1);
      }
      return HashBytes(&d, sizeof(d), 2);
    }
    case ValueType::kString:
      return HashBytes(string_value().data(), string_value().size(), 3);
  }
  return 0;
}

namespace {

enum class NumKind { kBothInt, kMixed, kNonNumeric };

NumKind Classify(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return NumKind::kNonNumeric;
  }
  return (a.is_int() && b.is_int()) ? NumKind::kBothInt : NumKind::kMixed;
}

}  // namespace

Value ValueAdd(const Value& a, const Value& b) {
  if (a.is_string() && b.is_string()) {
    return Value(a.string_value() + b.string_value());
  }
  switch (Classify(a, b)) {
    case NumKind::kBothInt:
      return Value(a.int_value() + b.int_value());
    case NumKind::kMixed:
      return Value(a.AsDouble() + b.AsDouble());
    case NumKind::kNonNumeric:
      return Value();
  }
  return Value();
}

Value ValueSub(const Value& a, const Value& b) {
  switch (Classify(a, b)) {
    case NumKind::kBothInt:
      return Value(a.int_value() - b.int_value());
    case NumKind::kMixed:
      return Value(a.AsDouble() - b.AsDouble());
    case NumKind::kNonNumeric:
      return Value();
  }
  return Value();
}

Value ValueMul(const Value& a, const Value& b) {
  switch (Classify(a, b)) {
    case NumKind::kBothInt:
      return Value(a.int_value() * b.int_value());
    case NumKind::kMixed:
      return Value(a.AsDouble() * b.AsDouble());
    case NumKind::kNonNumeric:
      return Value();
  }
  return Value();
}

Value ValueDiv(const Value& a, const Value& b) {
  if (!a.is_numeric() || !b.is_numeric()) {
    return Value();
  }
  if (a.is_int() && b.is_int()) {
    if (b.int_value() == 0) {
      return Value();
    }
    // Integer division truncates, matching LINQ/C semantics.
    return Value(a.int_value() / b.int_value());
  }
  double denom = b.AsDouble();
  if (denom == 0.0) {
    return Value();
  }
  return Value(a.AsDouble() / denom);
}

Value ValueMod(const Value& a, const Value& b) {
  if (!a.is_int() || !b.is_int() || b.int_value() == 0) {
    return Value();
  }
  return Value(a.int_value() % b.int_value());
}

}  // namespace pivot
