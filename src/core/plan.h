// AdvicePlan: the weave-time compiled form of an advice program.
//
// Advice::Execute (src/core/advice.cc) resolves every column name by string
// on every tracepoint fire. An AdvicePlan lowers the same straight-line
// program once, when the advice is woven: observe (export, output) pairs,
// pack/emit projections, Let output columns, and every Expr field reference
// are bound to dense SymbolIds, and execution reuses a per-thread working-set
// buffer instead of constructing fresh vectors per invocation.
//
// Execute is semantically identical to Advice::Execute — same op order, same
// kMaxWorkingSet truncation, same deterministic sampling sequence (shared via
// advice_internal) — which the fuzz equivalence suite asserts byte-for-byte.

#ifndef PIVOT_SRC_CORE_PLAN_H_
#define PIVOT_SRC_CORE_PLAN_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/advice.h"
#include "src/core/baggage.h"
#include "src/core/context.h"
#include "src/core/expr.h"
#include "src/core/symbol.h"
#include "src/core/tuple.h"

namespace pivot {

class AdvicePlan {
 public:
  using Ptr = std::shared_ptr<const AdvicePlan>;

  // Lowers `advice` into an executable plan. Interns all column names and
  // binds expression trees; counted by the `plan.bind_count` telemetry
  // counter. Returns nullptr only for null input.
  static Ptr Compile(Advice::Ptr advice);

  // Runs the compiled program against one tracepoint invocation. Same
  // contract as Advice::Execute. Reentrancy-safe: meta-tracepoints fired
  // during Pack/Emit may re-enter Execute on the same thread (each depth gets
  // its own scratch buffer).
  void Execute(ExecutionContext* ctx, const Tuple& exports) const;

  // The advice this plan was compiled from (for verification, rendering, and
  // the reference execution path).
  const Advice::Ptr& source() const { return source_; }

  size_t step_count() const { return steps_.size(); }

 private:
  struct Step {
    Advice::OpKind kind;

    // kObserve: (exported variable, output column) ids.
    std::vector<std::pair<SymbolId, SymbolId>> observe;

    // kUnpack / kPack: which bag; kPack: its semantics.
    BagKey bag = 0;
    BagSpec bag_spec;

    // kPack / kEmit: projection columns; `project` precomputes whether the
    // projection applies (non-empty and, for Pack, not an aggregate bag).
    std::vector<SymbolId> fields;
    bool project = false;

    // kLet: output column; kLet/kFilter: bound expression.
    SymbolId let_id = kInvalidSymbol;
    Expr::Ptr expr;

    // kEmit: destination query.
    uint64_t query_id = 0;

    // kSample: accept probability.
    double sample_rate = 1.0;
  };

  AdvicePlan() = default;

  Advice::Ptr source_;
  std::vector<Step> steps_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_PLAN_H_
