#include <gtest/gtest.h>

#include <map>

#include "src/common/strings.h"
#include "src/hadoop/cluster.h"
#include "src/hadoop/tracepoints.h"

namespace pivot {
namespace {

HadoopClusterConfig SmallConfig() {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 64;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  return config;
}

TEST(HdfsTest, ReadCompletesAndReportsDataNode) {
  HadoopCluster cluster(SmallConfig());
  SimProcess* client = cluster.AddClient(cluster.worker(0), "tester");
  HdfsClient hdfs(client, cluster.namenode(), 1);

  bool done = false;
  CtxPtr ctx = cluster.world()->NewRequest(client);
  hdfs.Read(ctx, 0, 4096, [&](CtxPtr, HdfsClient::ReadResult result) {
    done = true;
    EXPECT_GT(result.latency_micros, 0);
    EXPECT_FALSE(result.datanode_host.empty());
  });
  cluster.world()->env()->RunAll();
  EXPECT_TRUE(done);
}

TEST(HdfsTest, ReadMovesBytesThroughDiskAndNetwork) {
  HadoopCluster cluster(SmallConfig());
  SimProcess* client = cluster.AddClient(cluster.worker(0), "tester");
  HdfsClient hdfs(client, cluster.namenode(), 1);

  constexpr uint64_t kBytes = 4 << 20;
  std::string dn_host;
  CtxPtr ctx = cluster.world()->NewRequest(client);
  hdfs.Read(ctx, 3, kBytes,
            [&](CtxPtr, HdfsClient::ReadResult result) { dn_host = result.datanode_host; });
  cluster.world()->env()->RunAll();

  ASSERT_FALSE(dn_host.empty());
  SimHost* dn = cluster.world()->FindHost(dn_host);
  ASSERT_NE(dn, nullptr);
  EXPECT_GE(dn->disk().total_bytes(), kBytes);
  if (dn_host != "A") {
    // Remote read: the payload crossed the DataNode's outbound link.
    EXPECT_GE(dn->nic_out().total_bytes(), kBytes);
  }
}

TEST(HdfsTest, MultiBlockFilesReadAcrossBlocks) {
  HadoopClusterConfig config = SmallConfig();
  config.hdfs.block_bytes = 4 << 20;  // 4 MB blocks.
  HadoopCluster cluster(config);
  // Recreate the dataset with 12 MB files -> 3 blocks each.
  cluster.namenode()->CreateFiles(16, 12 << 20);
  ASSERT_EQ(cluster.namenode()->file(0).blocks.size(), 3u);

  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From r In DataNodeMetrics.incrBytesRead Select SUM(r.delta), COUNT");
  ASSERT_TRUE(q.ok());

  SimProcess* client = cluster.AddClient(cluster.worker(0), "reader");
  HdfsClient hdfs(client, cluster.namenode(), 1);
  bool done = false;
  hdfs.Read(cluster.world()->NewRequest(client), 0, 12 << 20,
            [&](CtxPtr, HdfsClient::ReadResult result) {
              done = true;
              EXPECT_FALSE(result.datanode_host.empty());
            });
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();
  ASSERT_TRUE(done);

  // Three DataNode reads of 4 MB each.
  auto rows = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("COUNT").int_value(), 3);
  EXPECT_EQ(rows[0].Get("SUM(r.delta)").int_value(), 12 << 20);
}

TEST(HdfsTest, PartialReadTouchesOnlyNeededBlocks) {
  HadoopClusterConfig config = SmallConfig();
  config.hdfs.block_bytes = 4 << 20;
  HadoopCluster cluster(config);
  cluster.namenode()->CreateFiles(4, 12 << 20);

  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From r In DataNodeMetrics.incrBytesRead Select SUM(r.delta), COUNT");
  ASSERT_TRUE(q.ok());
  SimProcess* client = cluster.AddClient(cluster.worker(1), "reader");
  HdfsClient hdfs(client, cluster.namenode(), 1);
  hdfs.Read(cluster.world()->NewRequest(client), 0, 5 << 20,
            [](CtxPtr, HdfsClient::ReadResult) {});
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  // 5 MB over 4 MB blocks: one full block + 1 MB of the second.
  auto rows = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("COUNT").int_value(), 2);
  EXPECT_EQ(rows[0].Get("SUM(r.delta)").int_value(), 5 << 20);
}

TEST(HdfsTest, WritePipelineReplicatesToThreeDataNodes) {
  HadoopCluster cluster(SmallConfig());
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From w In DataNodeMetrics.incrBytesWritten GroupBy w.host "
      "Select w.host, SUM(w.delta), COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SimProcess* client = cluster.AddClient(cluster.worker(0), "writer");
  HdfsClient hdfs(client, cluster.namenode(), 1);
  constexpr uint64_t kBytes = 1 << 20;
  bool done = false;
  hdfs.Write(cluster.world()->NewRequest(client), kBytes, [&](CtxPtr) { done = true; });
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();
  ASSERT_TRUE(done);

  // Replication 3: three distinct DataNodes each wrote the block once, and
  // the head of the pipeline is local to the client (host A).
  auto rows = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(rows.size(), 3u);
  int64_t total = 0;
  bool saw_local = false;
  for (const Tuple& row : rows) {
    EXPECT_EQ(row.Get("COUNT").int_value(), 1);
    EXPECT_EQ(row.Get("SUM(w.delta)").int_value(), static_cast<int64_t>(kBytes));
    total += row.Get("SUM(w.delta)").int_value();
    saw_local |= row.Get("w.host").string_value() == "A";
  }
  EXPECT_EQ(total, static_cast<int64_t>(3 * kBytes));
  EXPECT_TRUE(saw_local);
}

TEST(HdfsTest, WriteLockWaitObservableViaQuery) {
  HadoopCluster cluster(SmallConfig());
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From d In NN.ClientProtocol.done GroupBy d.op Select d.op, MAX(d.lockwait), COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Two concurrent creates serialize on the namespace lock; the second waits.
  SimProcess* client = cluster.AddClient(cluster.worker(1), "writer");
  HdfsClient hdfs(client, cluster.namenode(), 1);
  int completed = 0;
  hdfs.MetadataOp(cluster.world()->NewRequest(client), "create", [&](CtxPtr) { ++completed; });
  hdfs.MetadataOp(cluster.world()->NewRequest(client), "create", [&](CtxPtr) { ++completed; });
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_EQ(completed, 2);
  for (const Tuple& row : cluster.world()->frontend()->Results(*q)) {
    if (row.Get("d.op").string_value() == "create") {
      EXPECT_EQ(row.Get("COUNT").int_value(), 2);
      EXPECT_GE(row.Get("MAX(d.lockwait)").int_value(),
                cluster.config().hdfs.namenode_write_lock_micros / 2);
    }
  }
}

TEST(HdfsTest, WriteAndMetadataOpsComplete) {
  HadoopCluster cluster(SmallConfig());
  SimProcess* client = cluster.AddClient(cluster.worker(1), "tester");
  HdfsClient hdfs(client, cluster.namenode(), 1);

  int completed = 0;
  hdfs.Write(cluster.world()->NewRequest(client), 1 << 20, [&](CtxPtr) { ++completed; });
  for (const char* op : {"open", "create", "rename"}) {
    hdfs.MetadataOp(cluster.world()->NewRequest(client), op, [&](CtxPtr) { ++completed; });
  }
  cluster.world()->env()->RunAll();
  EXPECT_EQ(completed, 4);
}

TEST(HdfsTest, ReplicationPlacesDistinctDataNodes) {
  HadoopCluster cluster(SmallConfig());
  // Exercise the NameNode's placement directly via a read of each file and
  // the exported replicas string.
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From getloc In NN.GetBlockLocations GroupBy getloc.replicas "
      "Select getloc.replicas, COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SimProcess* client = cluster.AddClient(cluster.worker(2), "tester");
  HdfsClient hdfs(client, cluster.namenode(), 1);
  for (uint64_t f = 0; f < 20; ++f) {
    hdfs.Read(cluster.world()->NewRequest(client), f, 1024, [](CtxPtr, HdfsClient::ReadResult) {});
  }
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  for (const Tuple& row : cluster.world()->frontend()->Results(*q)) {
    std::string replicas = row.Get("getloc.replicas").string_value();
    auto parts = StrSplit(replicas, ',');
    EXPECT_EQ(parts.size(), 3u) << replicas;
    EXPECT_NE(parts[0], parts[1]);
    EXPECT_NE(parts[1], parts[2]);
    EXPECT_NE(parts[0], parts[2]);
  }
}

// The §6.1 bug: with the buggy replica selection, DataNode load is heavily
// skewed; with the fix, it is near-uniform.
double SelectionSkew(bool buggy) {
  HadoopClusterConfig config;
  config.worker_hosts = 8;
  config.dataset_files = 256;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  config.hdfs.namenode_static_replica_order = buggy;
  config.hdfs.client_selects_first_location = buggy;
  HadoopCluster cluster(config);

  // One remote-only client per host (placed on the host but reading random
  // files; locals happen ~3/8 of the time as in the paper).
  std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  for (int i = 0; i < 8; ++i) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(i)), "StressTest");
    clients.push_back(std::make_unique<HdfsReadWorkload>(
        proc, cluster.namenode(), 8 << 10, 2000, /*stress_test=*/true, 1000 + static_cast<uint64_t>(i)));
    clients.back()->Start(2 * kMicrosPerSecond);
  }

  // Count selections per DataNode with a Q6-style query.
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From DNop In DN.DataTransferProtocol GroupBy DNop.host Select DNop.host, COUNT");
  EXPECT_TRUE(q.ok());
  cluster.world()->StartAgentFlushLoop(3 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  std::map<std::string, int64_t> counts;
  for (const Tuple& row : cluster.world()->frontend()->Results(*q)) {
    counts[row.Get("DNop.host").string_value()] = row.Get("COUNT").int_value();
  }
  int64_t max_count = 0;
  int64_t min_count = INT64_MAX;
  for (char h = 'A'; h < 'A' + 8; ++h) {
    int64_t c = counts[std::string(1, h)];
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  EXPECT_GT(max_count, 0);
  return static_cast<double>(max_count) / static_cast<double>(std::max<int64_t>(1, min_count));
}

TEST(HdfsReplicaBugTest, BuggySelectionSkewsLoad) {
  // Paper: host A averaged ~150 ops/s while host H saw ~25 ops/s (6x).
  EXPECT_GT(SelectionSkew(true), 3.0);
}

TEST(HdfsReplicaBugTest, FixedSelectionIsBalanced) {
  EXPECT_LT(SelectionSkew(false), 2.0);
}

TEST(HdfsTest, BaggageRidesEveryRpc) {
  HadoopCluster cluster(SmallConfig());
  RpcStats::Reset();

  // Install a Q2-style query so ClientProtocols packs the process name.
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SimProcess* client = cluster.AddClient(cluster.worker(0), "FSread4m");
  HdfsClient hdfs(client, cluster.namenode(), 1);
  hdfs.Read(cluster.world()->NewRequest(client), 1, 4 << 20, [](CtxPtr, HdfsClient::ReadResult) {});
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(60 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_GE(RpcStats::total_calls, 2u);           // NN + DN.
  EXPECT_GT(RpcStats::total_baggage_bytes, 0u);   // procName rode along.

  auto results = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].Get("cl.procName").string_value(), "FSread4m");
  EXPECT_EQ(results[0].Get("SUM(incr.delta)").int_value(), 4 << 20);
}

}  // namespace
}  // namespace pivot
