// Self-telemetry primitives: the monitoring system monitors itself.
//
// The paper's evaluation quantifies Pivot Tracing's own cost — tracepoint
// overhead (Table 5), baggage bytes on the wire (Fig 10), tuple traffic (§6)
// — but only via external benches. This registry gives the running system the
// same numbers from the inside: monotonic counters and fixed-bucket
// histograms behind relaxed atomics, cheap enough to leave on everywhere.
//
// Hot-path contract:
//  * Counter::Increment / Histogram::Observe are lock-free relaxed RMWs and
//    never allocate.
//  * Registration (GetCounter / GetHistogram) takes a mutex and may allocate;
//    call it once at startup (or via a function-local static) and cache the
//    returned reference — it is stable for the registry's lifetime.
//
// Values race benignly across threads: a snapshot taken mid-increment may be
// off by in-flight operations, which is the standard monitoring trade.

#ifndef PIVOT_SRC_TELEMETRY_METRICS_H_
#define PIVOT_SRC_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pivot {
namespace telemetry {

// Monotonic event counter. Exact under concurrency (fetch_add).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Latency/size histogram with fixed power-of-two buckets: bucket i counts
// observations v with bit_width(v) == i (bucket 0 is v == 0). 65 buckets
// cover the full uint64 range, so there is no configuration and no
// allocation — one Observe is three relaxed fetch_adds.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(uint64_t v) {
    buckets_[BucketOf(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }

  // Upper bound of bucket i's value range (inclusive): 0, 1, 3, 7, ...
  static uint64_t BucketUpperBound(int i);
  static int BucketOf(uint64_t v);

  // Estimated quantile (q in [0,1]): the upper bound of the bucket containing
  // the q-th observation. Coarse by design (factor-of-two resolution).
  uint64_t QuantileUpperBound(double q) const;

  void Reset();

 private:
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

// Point-in-time copies for reporting.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;   // QuantileUpperBound(0.5).
  uint64_t p99 = 0;   // QuantileUpperBound(0.99).
};

// Named metric registry. One per OS process (Global()); tests may construct
// private instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Returns the metric named `name`, creating it on first use. References
  // remain valid (and hot-path safe) for the registry's lifetime.
  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  std::vector<CounterSnapshot> Counters() const;
  std::vector<HistogramSnapshot> Histograms() const;

  // Human-readable dump (one metric per line) / JSON object.
  std::string RenderText() const;
  std::string RenderJson() const;

  // Zeroes every metric without invalidating cached references. Intended for
  // tests and benches sharing the global registry.
  void ResetAll();

  // The process-wide registry every subsystem reports into.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  // Node-based maps: values never move, so references stay valid.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Shorthand for MetricsRegistry::Global().
MetricsRegistry& Metrics();

}  // namespace telemetry
}  // namespace pivot

#endif  // PIVOT_SRC_TELEMETRY_METRICS_H_
