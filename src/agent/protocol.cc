#include "src/agent/protocol.h"

#include "src/common/varint.h"
#include "src/core/advice_io.h"
#include "src/core/baggage.h"
#include "src/core/wire.h"

namespace pivot {

namespace {

void PutStringList(std::vector<uint8_t>* out, const std::vector<std::string>& v) {
  PutVarint64(out, v.size());
  for (const auto& s : v) {
    PutString(out, s);
  }
}

bool GetStringList(const uint8_t* data, size_t size, size_t* pos, std::vector<std::string>* v) {
  uint64_t n = 0;
  if (!GetVarint64(data, size, pos, &n) || n > size) {
    return false;
  }
  v->clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!GetString(data, size, pos, &s)) {
      return false;
    }
    v->push_back(std::move(s));
  }
  return true;
}

void PutPlan(std::vector<uint8_t>* out, const ResultPlan& plan) {
  out->push_back(plan.aggregated ? 1 : 0);
  PutStringList(out, plan.group_fields);
  PutVarint64(out, plan.aggs.size());
  for (const auto& a : plan.aggs) {
    out->push_back(static_cast<uint8_t>(a.fn));
    out->push_back(a.from_state ? 1 : 0);
    PutString(out, a.input);
    PutString(out, a.output);
  }
  PutStringList(out, plan.output_columns);
}

bool GetPlan(const uint8_t* data, size_t size, size_t* pos, ResultPlan* plan) {
  if (*pos >= size) {
    return false;
  }
  plan->aggregated = data[(*pos)++] != 0;
  if (!GetStringList(data, size, pos, &plan->group_fields)) {
    return false;
  }
  uint64_t naggs = 0;
  if (!GetVarint64(data, size, pos, &naggs) || naggs > size) {
    return false;
  }
  plan->aggs.clear();
  for (uint64_t i = 0; i < naggs; ++i) {
    if (size - *pos < 2) {
      return false;
    }
    AggSpec a;
    uint8_t fn = data[(*pos)++];
    if (fn > static_cast<uint8_t>(AggFn::kAverage)) {
      return false;
    }
    a.fn = static_cast<AggFn>(fn);
    a.from_state = data[(*pos)++] != 0;
    if (!GetString(data, size, pos, &a.input) || !GetString(data, size, pos, &a.output)) {
      return false;
    }
    plan->aggs.push_back(std::move(a));
  }
  return GetStringList(data, size, pos, &plan->output_columns);
}

}  // namespace

std::vector<uint8_t> EncodeWeave(const WeaveCommand& cmd) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(ControlMessageType::kWeave));
  PutVarint64(&out, cmd.query_id);
  PutVarint64(&out, cmd.advice.size());
  for (const auto& [tp, adv] : cmd.advice) {
    PutString(&out, tp);
    EncodeAdvice(&out, *adv);
  }
  PutPlan(&out, cmd.plan);
  return out;
}

std::vector<uint8_t> EncodeUnweave(uint64_t query_id) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(ControlMessageType::kUnweave));
  PutVarint64(&out, query_id);
  return out;
}

std::vector<uint8_t> EncodeReport(const AgentReport& report) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(ControlMessageType::kReport));
  PutVarint64(&out, report.query_id);
  PutString(&out, report.host);
  PutString(&out, report.process_name);
  PutVarintSigned64(&out, report.timestamp_micros);
  out.push_back(report.aggregated ? 1 : 0);
  PutVarint64(&out, report.tuples.size());
  for (const auto& t : report.tuples) {
    PutTuple(&out, t);
  }
  return out;
}

std::vector<uint8_t> EncodeHello() {
  return {static_cast<uint8_t>(ControlMessageType::kHello)};
}

std::vector<uint8_t> EncodeWeaveAck(const WeaveAck& ack) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(ControlMessageType::kWeaveAck));
  PutVarint64(&out, ack.query_id);
  PutString(&out, ack.host);
  PutString(&out, ack.process_name);
  PutVarintSigned64(&out, ack.timestamp_micros);
  return out;
}

std::vector<uint8_t> EncodeAgentStats(const AgentStats& stats) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(ControlMessageType::kStats));
  PutVarint64(&out, stats.query_id);
  PutString(&out, stats.host);
  PutString(&out, stats.process_name);
  PutVarintSigned64(&out, stats.timestamp_micros);
  PutVarintSigned64(&out, stats.last_report_micros);
  PutVarint64(&out, stats.reports_suppressed);
  PutVarint64(&out, stats.tuples_emitted);
  return out;
}

std::vector<uint8_t> EncodeReportBatch(const ReportBatch& batch, std::vector<size_t>* report_bytes) {
  std::vector<uint8_t> out;
  out.push_back(static_cast<uint8_t>(ControlMessageType::kBatch));
  PutString(&out, batch.host);
  PutString(&out, batch.process_name);
  PutVarintSigned64(&out, batch.timestamp_micros);
  PutVarint64(&out, batch.reports.size());
  if (report_bytes != nullptr) {
    report_bytes->clear();
    report_bytes->reserve(batch.reports.size());
  }
  for (const auto& r : batch.reports) {
    size_t start = out.size();
    PutVarint64(&out, r.query_id);
    out.push_back(r.aggregated ? 1 : 0);
    PutVarint64(&out, r.tuples.size());
    for (const auto& t : r.tuples) {
      PutTuple(&out, t);
    }
    if (report_bytes != nullptr) {
      report_bytes->push_back(out.size() - start);
    }
  }
  PutVarint64(&out, batch.heartbeats.size());
  for (const auto& hb : batch.heartbeats) {
    PutVarint64(&out, hb.query_id);
    PutVarintSigned64(&out, hb.last_report_micros);
    PutVarint64(&out, hb.reports_suppressed);
    PutVarint64(&out, hb.tuples_emitted);
  }
  return out;
}

Result<ControlMessage> DecodeControlMessage(const std::vector<uint8_t>& payload) {
  const uint8_t* data = payload.data();
  size_t size = payload.size();
  size_t pos = 0;
  if (size == 0) {
    return DataLossError("empty control message");
  }
  ControlMessage msg;
  uint8_t type = data[pos++];
  switch (static_cast<ControlMessageType>(type)) {
    case ControlMessageType::kWeave: {
      msg.type = ControlMessageType::kWeave;
      uint64_t nadvice = 0;
      if (!GetVarint64(data, size, &pos, &msg.weave.query_id) ||
          !GetVarint64(data, size, &pos, &nadvice) || nadvice > size) {
        return DataLossError("bad weave command");
      }
      for (uint64_t i = 0; i < nadvice; ++i) {
        std::string tp;
        Advice::Ptr adv;
        if (!GetString(data, size, &pos, &tp) || !DecodeAdvice(data, size, &pos, &adv)) {
          return DataLossError("bad weave advice");
        }
        msg.weave.advice.emplace_back(std::move(tp), std::move(adv));
      }
      if (!GetPlan(data, size, &pos, &msg.weave.plan)) {
        return DataLossError("bad weave plan");
      }
      return msg;
    }
    case ControlMessageType::kUnweave: {
      msg.type = ControlMessageType::kUnweave;
      if (!GetVarint64(data, size, &pos, &msg.unweave_query_id)) {
        return DataLossError("bad unweave command");
      }
      return msg;
    }
    case ControlMessageType::kReport: {
      msg.type = ControlMessageType::kReport;
      AgentReport& r = msg.report;
      uint64_t ntuples = 0;
      if (!GetVarint64(data, size, &pos, &r.query_id) || !GetString(data, size, &pos, &r.host) ||
          !GetString(data, size, &pos, &r.process_name) ||
          !GetVarintSigned64(data, size, &pos, &r.timestamp_micros) || pos >= size) {
        return DataLossError("bad report header");
      }
      r.aggregated = data[pos++] != 0;
      if (!GetVarint64(data, size, &pos, &ntuples) || ntuples > size) {
        return DataLossError("bad report tuple count");
      }
      for (uint64_t i = 0; i < ntuples; ++i) {
        Tuple t;
        if (!GetTuple(data, size, &pos, &t)) {
          return DataLossError("bad report tuple");
        }
        r.tuples.push_back(std::move(t));
      }
      return msg;
    }
    case ControlMessageType::kHello:
      msg.type = ControlMessageType::kHello;
      return msg;
    case ControlMessageType::kWeaveAck: {
      msg.type = ControlMessageType::kWeaveAck;
      WeaveAck& a = msg.weave_ack;
      if (!GetVarint64(data, size, &pos, &a.query_id) || !GetString(data, size, &pos, &a.host) ||
          !GetString(data, size, &pos, &a.process_name) ||
          !GetVarintSigned64(data, size, &pos, &a.timestamp_micros)) {
        return DataLossError("bad weave ack");
      }
      return msg;
    }
    case ControlMessageType::kStats: {
      msg.type = ControlMessageType::kStats;
      AgentStats& s = msg.stats;
      if (!GetVarint64(data, size, &pos, &s.query_id) || !GetString(data, size, &pos, &s.host) ||
          !GetString(data, size, &pos, &s.process_name) ||
          !GetVarintSigned64(data, size, &pos, &s.timestamp_micros) ||
          !GetVarintSigned64(data, size, &pos, &s.last_report_micros) ||
          !GetVarint64(data, size, &pos, &s.reports_suppressed) ||
          !GetVarint64(data, size, &pos, &s.tuples_emitted)) {
        return DataLossError("bad agent stats");
      }
      return msg;
    }
    case ControlMessageType::kBatch: {
      msg.type = ControlMessageType::kBatch;
      ReportBatch& b = msg.batch;
      uint64_t nreports = 0;
      if (!GetString(data, size, &pos, &b.host) || !GetString(data, size, &pos, &b.process_name) ||
          !GetVarintSigned64(data, size, &pos, &b.timestamp_micros) ||
          !GetVarint64(data, size, &pos, &nreports) || nreports > size) {
        return DataLossError("bad batch header");
      }
      for (uint64_t i = 0; i < nreports; ++i) {
        AgentReport r;
        r.host = b.host;
        r.process_name = b.process_name;
        r.timestamp_micros = b.timestamp_micros;
        uint64_t ntuples = 0;
        if (!GetVarint64(data, size, &pos, &r.query_id) || pos >= size) {
          return DataLossError("bad batch report header");
        }
        r.aggregated = data[pos++] != 0;
        if (!GetVarint64(data, size, &pos, &ntuples) || ntuples > size) {
          return DataLossError("bad batch report tuple count");
        }
        for (uint64_t j = 0; j < ntuples; ++j) {
          Tuple t;
          if (!GetTuple(data, size, &pos, &t)) {
            return DataLossError("bad batch report tuple");
          }
          r.tuples.push_back(std::move(t));
        }
        b.reports.push_back(std::move(r));
      }
      uint64_t nstats = 0;
      if (!GetVarint64(data, size, &pos, &nstats) || nstats > size) {
        return DataLossError("bad batch heartbeat count");
      }
      for (uint64_t i = 0; i < nstats; ++i) {
        AgentStats s;
        s.host = b.host;
        s.process_name = b.process_name;
        s.timestamp_micros = b.timestamp_micros;
        if (!GetVarint64(data, size, &pos, &s.query_id) ||
            !GetVarintSigned64(data, size, &pos, &s.last_report_micros) ||
            !GetVarint64(data, size, &pos, &s.reports_suppressed) ||
            !GetVarint64(data, size, &pos, &s.tuples_emitted)) {
          return DataLossError("bad batch heartbeat");
        }
        b.heartbeats.push_back(std::move(s));
      }
      return msg;
    }
    default:
      return DataLossError("unknown control message type");
  }
}

}  // namespace pivot
