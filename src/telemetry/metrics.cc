#include "src/telemetry/metrics.h"

#include <bit>
#include <cstdio>

namespace pivot {
namespace telemetry {

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) {
    return 0;
  }
  if (i >= 64) {
    return UINT64_MAX;
  }
  return (uint64_t{1} << i) - 1;
}

int Histogram::BucketOf(uint64_t v) { return std::bit_width(v); }

uint64_t Histogram::QuantileUpperBound(double q) const {
  uint64_t total = count();
  if (total == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  // Rank of the target observation, 1-based.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += bucket(i);
    if (seen >= rank) {
      return BucketUpperBound(i);
    }
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

std::vector<CounterSnapshot> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.push_back({name, c->value()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, h->count(), h->sum(), h->QuantileUpperBound(0.5),
                   h->QuantileUpperBound(0.99)});
  }
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::string out;
  char line[256];
  for (const auto& c : Counters()) {
    snprintf(line, sizeof(line), "%-44s %llu\n", c.name.c_str(),
             static_cast<unsigned long long>(c.value));
    out += line;
  }
  for (const auto& h : Histograms()) {
    snprintf(line, sizeof(line), "%-44s count=%llu sum=%llu p50<=%llu p99<=%llu\n",
             h.name.c_str(), static_cast<unsigned long long>(h.count),
             static_cast<unsigned long long>(h.sum), static_cast<unsigned long long>(h.p50),
             static_cast<unsigned long long>(h.p99));
    out += line;
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::string out = "{\"counters\":{";
  char buf[192];
  bool first = true;
  for (const auto& c : Counters()) {
    snprintf(buf, sizeof(buf), "%s\"%s\":%llu", first ? "" : ",", c.name.c_str(),
             static_cast<unsigned long long>(c.value));
    out += buf;
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : Histograms()) {
    snprintf(buf, sizeof(buf),
             "%s\"%s\":{\"count\":%llu,\"sum\":%llu,\"p50\":%llu,\"p99\":%llu}",
             first ? "" : ",", h.name.c_str(), static_cast<unsigned long long>(h.count),
             static_cast<unsigned long long>(h.sum), static_cast<unsigned long long>(h.p50),
             static_cast<unsigned long long>(h.p99));
    out += buf;
    first = false;
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

}  // namespace telemetry
}  // namespace pivot
