file(REMOVE_RECURSE
  "CMakeFiles/itc_stamp_test.dir/itc_stamp_test.cc.o"
  "CMakeFiles/itc_stamp_test.dir/itc_stamp_test.cc.o.d"
  "itc_stamp_test"
  "itc_stamp_test.pdb"
  "itc_stamp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itc_stamp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
