# Empty compiler generated dependencies file for pivot_hadoop.
# This may be replaced when dependencies are built.
