# Empty dependencies file for advice_test.
# This may be replaced when dependencies are built.
