// Happened-before reachability over the propagation graph.
//
// Pure algorithms over PropagationRegistry snapshots, plus the whole-topology
// audit pass (PT302/PT303/PT304). The per-query passes (PT301 join
// reachability, PT305 path-aware baggage growth) live in the QueryLinter and
// call these primitives; keeping the graph algorithms here keeps the linter
// readable and lets the shell `topology` report reuse the audit.

#ifndef PIVOT_SRC_ANALYSIS_REACHABILITY_H_
#define PIVOT_SRC_ANALYSIS_REACHABILITY_H_

#include <cstddef>
#include <string>

#include "src/analysis/causality_graph.h"
#include "src/analysis/diagnostics.h"

namespace pivot {
namespace analysis {

// True if `to` is reachable from `from` over baggage-forwarding edges only.
// Reflexive: a component always reaches itself (baggage flows within one
// process without crossing a boundary).
bool ForwardingReachable(const PropagationRegistry& registry, const std::string& from,
                         const std::string& to);

// Like ForwardingReachable, but follows every declared edge regardless of
// baggage disposition. Used to distinguish "no causal path at all" (PT301
// alone) from "a path exists but some boundary drops the baggage" (PT301
// accompanied by PT302).
bool AnyReachable(const PropagationRegistry& registry, const std::string& from,
                  const std::string& to);

// True if `component` is reachable from some client-entry component over any
// declared edge (or is itself an entry). False when no entry components are
// declared at all — callers treat that as "model incomplete" and skip PT303.
bool ReachableFromEntry(const PropagationRegistry& registry, const std::string& component);

// True if the registry declares at least one client-entry component.
bool HasClientEntry(const PropagationRegistry& registry);

// Edge count of the longest *simple* baggage-forwarding path starting at
// `from` (0 if the component has no outgoing forwarding edges). The graph is
// a handful of components, so exhaustive DFS is fine. This bounds how many
// boundary crossings an All-semantics bag packed at `from` can ride through,
// which is the multiplier in the PT305 worst-case growth bound.
size_t LongestForwardingPathFrom(const PropagationRegistry& registry, const std::string& from);

// Whole-topology audit (shell `topology`, pivot_lint --topology):
//   PT302 (warning)  declared boundary drops baggage.
//   PT303 (warning)  anchored tracepoint's component unreachable from every
//                    client entry point.
//   PT304 (warning)  boundary observed at runtime with no declaration — the
//                    §6 "manually extended the protocol definitions" smell.
Report AuditTopology(const PropagationRegistry& registry);

}  // namespace analysis
}  // namespace pivot

#endif  // PIVOT_SRC_ANALYSIS_REACHABILITY_H_
