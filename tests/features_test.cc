// Tests for the extension features: tracepoint glob patterns (§5 pointcuts),
// the §4 "explain" tuple-counting mode, and advice-level sampling (§8).

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "src/query/compiler.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

// ---------------------------------------------------------------------------
// Glob matching

TEST(PatternMatchTest, Basics) {
  EXPECT_TRUE(TracepointPatternMatch("DN.*", "DN.DataTransferProtocol"));
  EXPECT_TRUE(TracepointPatternMatch("DN.*", "DN.DataTransferProtocol.done"));
  EXPECT_FALSE(TracepointPatternMatch("DN.*", "NN.GetBlockLocations"));
  EXPECT_TRUE(TracepointPatternMatch("*.incrBytesRead", "DataNodeMetrics.incrBytesRead"));
  EXPECT_TRUE(TracepointPatternMatch("*", "anything.at.all"));
  EXPECT_TRUE(TracepointPatternMatch("a*c", "abc"));
  EXPECT_TRUE(TracepointPatternMatch("a*c", "ac"));
  EXPECT_FALSE(TracepointPatternMatch("a*c", "acb"));
  EXPECT_TRUE(TracepointPatternMatch("a?c", "abc"));
  EXPECT_FALSE(TracepointPatternMatch("a?c", "ac"));
  EXPECT_TRUE(TracepointPatternMatch("exact", "exact"));
  EXPECT_FALSE(TracepointPatternMatch("exact", "exactly"));
  EXPECT_TRUE(TracepointPatternMatch("**", ""));
}

// ---------------------------------------------------------------------------
// Shared harness

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

struct MiniProcess {
  TracepointRegistry registry;
  ProcessRuntime runtime;
  std::unique_ptr<PTAgent> agent;

  MiniProcess(MessageBus* bus, ManualClock* clock) {
    runtime.info.host = "H";
    runtime.info.process_name = "proc";
    runtime.now_micros = [clock] { return clock->now; };
    agent = std::make_unique<PTAgent>(bus, &registry, runtime.info);
    runtime.sink = agent.get();
  }
};

class FeaturesTest : public ::testing::Test {
 protected:
  FeaturesTest() : proc_(&bus_, &clock_), frontend_(&bus_, &schema_) {
    for (const auto& [name, exports] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"DN.Read", {"delta"}},
             {"DN.Write", {"delta"}},
             {"NN.Lookup", {"src"}},
             {"Client.Start", {"user"}}}) {
      EXPECT_TRUE(schema_.Define(Def(name, exports)).ok());
      tps_[name] = *proc_.registry.Define(Def(name, exports));
    }
  }

  void Fire(const std::string& tp, ExecutionContext* ctx, int64_t delta) {
    clock_.Tick(10);
    tps_[tp]->Invoke(ctx, {{"delta", Value(delta)}, {"user", Value("u")}, {"src", Value("f")}});
  }

  ManualClock clock_;
  MessageBus bus_;
  TracepointRegistry schema_;
  MiniProcess proc_;
  Frontend frontend_;
  std::map<std::string, Tracepoint*> tps_;
};

// ---------------------------------------------------------------------------
// Glob patterns in queries

TEST_F(FeaturesTest, GlobSourceExpandsToUnion) {
  Result<uint64_t> q = frontend_.Install(
      "From e In DN.* GroupBy e.tracepoint Select e.tracepoint, SUM(e.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  ExecutionContext ctx(&proc_.runtime);
  Fire("DN.Read", &ctx, 5);
  Fire("DN.Write", &ctx, 7);
  Fire("NN.Lookup", &ctx, 100);  // Must NOT match.
  proc_.agent->Flush(clock_.Tick(1'000'000));

  EXPECT_EQ(CanonicalTuples(frontend_.Results(*q)),
            (std::vector<std::string>{"(e.tracepoint=DN.Read, SUM(e.delta)=5)",
                                      "(e.tracepoint=DN.Write, SUM(e.delta)=7)"}));
}

TEST_F(FeaturesTest, GlobInJoinSource) {
  Result<uint64_t> q = frontend_.Install(
      "From n In NN.Lookup Join d In First(Client.*) On d -> n Select COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ExecutionContext ctx(&proc_.runtime);
  Fire("Client.Start", &ctx, 1);
  Fire("NN.Lookup", &ctx, 1);
  proc_.agent->Flush(clock_.Tick(1'000'000));
  ASSERT_EQ(frontend_.Results(*q).size(), 1u);
  EXPECT_EQ(frontend_.Results(*q)[0].Get("COUNT").int_value(), 1);
}

TEST_F(FeaturesTest, GlobWithNoMatchesRejected) {
  Result<uint64_t> q = frontend_.Install("From e In ZZZ.* Select COUNT");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kNotFound);
}

TEST(PatternParserTest, StarSegmentsParse) {
  Result<Query> q = ParseQuery("From e In DN.* Select COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->from.tracepoints[0], "DN.*");
  Result<Query> q2 = ParseQuery("From e In *.incrBytesRead Select COUNT");
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q2->from.tracepoints[0], "*.incrBytesRead");
}

// ---------------------------------------------------------------------------
// Explain / tuple counting (§4)

TEST_F(FeaturesTest, ExplainCountsPackAndEmitTuples) {
  Result<uint64_t> q = frontend_.InstallExplain(
      "From d In DN.Read Join c In First(Client.Start) On c -> d "
      "GroupBy c.user Select c.user, SUM(d.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  for (int r = 0; r < 3; ++r) {
    ExecutionContext ctx(&proc_.runtime);
    Fire("Client.Start", &ctx, 0);
    Fire("Client.Start", &ctx, 0);  // FIRST: second pack attempt still counted.
    Fire("DN.Read", &ctx, 10);
    Fire("DN.Read", &ctx, 20);
  }
  proc_.agent->Flush(clock_.Tick(1'000'000));

  std::map<std::string, int64_t> counts;
  for (const Tuple& row : frontend_.Results(*q)) {
    counts[row.Get("$stage").string_value()] = row.Get("COUNT").int_value();
  }
  // Pack counts the tuples *offered* to the bag (6 = 2 per request), emit the
  // joined tuples reaching the final stage (6 = 2 reads x 1 FIRST tuple).
  EXPECT_EQ(counts["pack@Client.Start"], 6);
  EXPECT_EQ(counts["emit@DN.Read"], 6);
}

TEST_F(FeaturesTest, ExplainShadowCoexistsWithRealQuery) {
  std::string text =
      "From d In DN.Read Join c In First(Client.Start) On c -> d "
      "GroupBy c.user Select c.user, SUM(d.delta)";
  Result<uint64_t> real = frontend_.Install(text);
  Result<uint64_t> shadow = frontend_.InstallExplain(text);
  ASSERT_TRUE(real.ok());
  ASSERT_TRUE(shadow.ok());

  ExecutionContext ctx(&proc_.runtime);
  Fire("Client.Start", &ctx, 0);
  Fire("DN.Read", &ctx, 10);
  proc_.agent->Flush(clock_.Tick(1'000'000));

  // The real query's answer is unaffected by the shadow's parallel packing.
  auto rows = frontend_.Results(*real);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("SUM(d.delta)").int_value(), 10);
  EXPECT_FALSE(frontend_.Results(*shadow).empty());
}

TEST(PackCostTest, ClassifiesBounds) {
  TracepointRegistry registry;
  ASSERT_TRUE(registry.Define(Def("A", {"x"})).ok());
  ASSERT_TRUE(registry.Define(Def("B", {"y"})).ok());
  QueryCompiler compiler(&registry, nullptr);

  auto compile = [&](const char* text) {
    Result<Query> q = ParseQuery(text);
    EXPECT_TRUE(q.ok());
    Result<CompiledQuery> cq = compiler.Compile(*q, 1);
    EXPECT_TRUE(cq.ok()) << cq.status().ToString();
    return std::move(cq).value();
  };

  auto first = compile("From b In B Join a In First(A) On a -> b Select a.x, b.y");
  ASSERT_EQ(first.EstimatePackCosts().size(), 1u);
  EXPECT_EQ(first.EstimatePackCosts()[0].bound, "1 (FIRST)");
  EXPECT_FALSE(first.EstimatePackCosts()[0].unbounded);

  auto recent = compile("From b In B Join a In MostRecentN(3, A) On a -> b Select a.x, b.y");
  EXPECT_EQ(recent.EstimatePackCosts()[0].bound, "<= 3 (RECENTN)");

  auto agg = compile("From b In B Join a In A On a -> b Select SUM(a.x)");
  EXPECT_EQ(agg.EstimatePackCosts()[0].bound, "1 aggregate state");

  auto unbounded = compile("From b In B Join a In A On a -> b Select a.x, b.y");
  EXPECT_TRUE(unbounded.EstimatePackCosts()[0].unbounded);
}

// ---------------------------------------------------------------------------
// Sampling (§8)

TEST(SampleParserTest, IntIsPercentDoubleIsFraction) {
  Result<Query> q = ParseQuery("From e In Sample(10, X) Select COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_DOUBLE_EQ(q->from.sample_rate, 0.10);

  Result<Query> q2 = ParseQuery("From e In Sample(0.25, X) Select COUNT");
  ASSERT_TRUE(q2.ok());
  EXPECT_DOUBLE_EQ(q2->from.sample_rate, 0.25);

  // Composes with temporal wrappers.
  Result<Query> q3 = ParseQuery("From b In Y Join a In Sample(5, First(X)) On a -> b Select COUNT");
  ASSERT_TRUE(q3.ok()) << q3.status().ToString();
  EXPECT_DOUBLE_EQ(q3->joins[0].source.sample_rate, 0.05);
  EXPECT_EQ(q3->joins[0].source.temporal, TemporalFilter::kFirst);
}

TEST(SampleParserTest, RoundTrips) {
  Result<Query> q = ParseQuery("From e In Sample(0.25, MostRecent(X)) Select e.host");
  ASSERT_TRUE(q.ok());
  std::string rendered = QueryToString(*q);
  Result<Query> again = ParseQuery(rendered);
  ASSERT_TRUE(again.ok()) << rendered;
  EXPECT_DOUBLE_EQ(again->from.sample_rate, 0.25);
}

TEST(SampleParserTest, BadRatesRejected) {
  EXPECT_FALSE(ParseQuery("From e In Sample(0.0, X) Select COUNT").ok());
  EXPECT_FALSE(ParseQuery("From e In Sample(150, X) Select COUNT").ok());
  EXPECT_FALSE(ParseQuery("From e In Sample(X) Select COUNT").ok());
}

TEST_F(FeaturesTest, SamplingReducesEmittedTuples) {
  Result<uint64_t> q = frontend_.Install("From d In Sample(20, DN.Read) Select COUNT");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  constexpr int kInvocations = 5000;
  ExecutionContext ctx(&proc_.runtime);
  for (int i = 0; i < kInvocations; ++i) {
    Fire("DN.Read", &ctx, 1);
  }
  proc_.agent->Flush(clock_.Tick(1'000'000));

  auto rows = frontend_.Results(*q);
  ASSERT_EQ(rows.size(), 1u);
  int64_t count = rows[0].Get("COUNT").int_value();
  // 20% of 5000 = 1000; allow generous tolerance.
  EXPECT_GT(count, 700);
  EXPECT_LT(count, 1300);
}

TEST_F(FeaturesTest, SampledAdviceListsSampleOp) {
  Result<uint64_t> q = frontend_.Install("From d In Sample(0.5, DN.Read) Select COUNT");
  ASSERT_TRUE(q.ok());
  const CompiledQuery* cq = frontend_.compiled(*q);
  ASSERT_NE(cq, nullptr);
  EXPECT_NE(cq->advice[0].second->ToString().find("SAMPLE 0.5"), std::string::npos);
}

TEST(SampleAdviceTest, RateOneNeverDrops) {
  // sample_rate == 1.0 compiles to no Sample op at all.
  TracepointRegistry registry;
  ASSERT_TRUE(registry.Define(Def("X", {"v"})).ok());
  QueryCompiler compiler(&registry, nullptr);
  Result<Query> q = ParseQuery("From e In Sample(100, X) Select COUNT");
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> cq = compiler.Compile(*q, 1);
  ASSERT_TRUE(cq.ok());
  for (const auto& op : cq->advice[0].second->ops()) {
    EXPECT_NE(op.kind, Advice::OpKind::kSample);
  }
}

}  // namespace
}  // namespace pivot
