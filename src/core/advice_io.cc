#include "src/core/advice_io.h"

#include "src/common/varint.h"
#include "src/core/wire.h"

namespace pivot {

namespace {

constexpr int kMaxExprDepth = 128;

bool DecodeExprImpl(const uint8_t* data, size_t size, size_t* pos, Expr::Ptr* out, int depth) {
  if (depth > kMaxExprDepth || *pos >= size) {
    return false;
  }
  uint8_t op_byte = data[(*pos)++];
  if (op_byte > static_cast<uint8_t>(ExprOp::kNeg)) {
    return false;
  }
  ExprOp op = static_cast<ExprOp>(op_byte);
  switch (op) {
    case ExprOp::kLiteral: {
      Value v;
      if (!GetValue(data, size, pos, &v)) {
        return false;
      }
      *out = Expr::Literal(std::move(v));
      return true;
    }
    case ExprOp::kField: {
      std::string name;
      if (!GetString(data, size, pos, &name)) {
        return false;
      }
      *out = Expr::Field(std::move(name));
      return true;
    }
    case ExprOp::kNot:
    case ExprOp::kNeg: {
      Expr::Ptr operand;
      if (!DecodeExprImpl(data, size, pos, &operand, depth + 1)) {
        return false;
      }
      *out = Expr::Unary(op, std::move(operand));
      return true;
    }
    default: {
      Expr::Ptr lhs;
      Expr::Ptr rhs;
      if (!DecodeExprImpl(data, size, pos, &lhs, depth + 1) ||
          !DecodeExprImpl(data, size, pos, &rhs, depth + 1)) {
        return false;
      }
      *out = Expr::Binary(op, std::move(lhs), std::move(rhs));
      return true;
    }
  }
}

void PutStringList(std::vector<uint8_t>* out, const std::vector<std::string>& v) {
  PutVarint64(out, v.size());
  for (const auto& s : v) {
    PutString(out, s);
  }
}

bool GetStringList(const uint8_t* data, size_t size, size_t* pos, std::vector<std::string>* v) {
  uint64_t n = 0;
  if (!GetVarint64(data, size, pos, &n) || n > size) {
    return false;
  }
  v->clear();
  for (uint64_t i = 0; i < n; ++i) {
    std::string s;
    if (!GetString(data, size, pos, &s)) {
      return false;
    }
    v->push_back(std::move(s));
  }
  return true;
}

}  // namespace

void EncodeExpr(std::vector<uint8_t>* out, const Expr::Ptr& e) {
  out->push_back(static_cast<uint8_t>(e->op()));
  switch (e->op()) {
    case ExprOp::kLiteral:
      PutValue(out, e->literal());
      break;
    case ExprOp::kField:
      PutString(out, e->field_name());
      break;
    case ExprOp::kNot:
    case ExprOp::kNeg:
      EncodeExpr(out, e->lhs());
      break;
    default:
      EncodeExpr(out, e->lhs());
      EncodeExpr(out, e->rhs());
      break;
  }
}

bool DecodeExpr(const uint8_t* data, size_t size, size_t* pos, Expr::Ptr* out) {
  return DecodeExprImpl(data, size, pos, out, 0);
}

void EncodeAdvice(std::vector<uint8_t>* out, const Advice& advice) {
  PutVarint64(out, advice.ops().size());
  for (const Advice::Op& op : advice.ops()) {
    out->push_back(static_cast<uint8_t>(op.kind));
    switch (op.kind) {
      case Advice::OpKind::kObserve:
        PutVarint64(out, op.observe.size());
        for (const auto& [from, to] : op.observe) {
          PutString(out, from);
          PutString(out, to);
        }
        break;
      case Advice::OpKind::kUnpack:
        PutVarint64(out, op.bag);
        break;
      case Advice::OpKind::kLet:
        PutString(out, op.let_name);
        EncodeExpr(out, op.expr);
        break;
      case Advice::OpKind::kFilter:
        EncodeExpr(out, op.expr);
        break;
      case Advice::OpKind::kPack:
        PutVarint64(out, op.bag);
        PutBagSpec(out, op.bag_spec);
        PutStringList(out, op.fields);
        break;
      case Advice::OpKind::kEmit:
        PutVarint64(out, op.query_id);
        PutStringList(out, op.fields);
        break;
      case Advice::OpKind::kSample:
        PutValue(out, Value(op.sample_rate));
        break;
    }
  }
}

bool DecodeAdvice(const uint8_t* data, size_t size, size_t* pos, Advice::Ptr* out) {
  uint64_t n = 0;
  if (!GetVarint64(data, size, pos, &n) || n > size) {
    return false;
  }
  std::vector<Advice::Op> ops;
  ops.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (*pos >= size) {
      return false;
    }
    uint8_t kind_byte = data[(*pos)++];
    if (kind_byte > static_cast<uint8_t>(Advice::OpKind::kSample)) {
      return false;
    }
    Advice::Op op;
    op.kind = static_cast<Advice::OpKind>(kind_byte);
    switch (op.kind) {
      case Advice::OpKind::kObserve: {
        uint64_t pairs = 0;
        if (!GetVarint64(data, size, pos, &pairs) || pairs > size) {
          return false;
        }
        for (uint64_t p = 0; p < pairs; ++p) {
          std::string from;
          std::string to;
          if (!GetString(data, size, pos, &from) || !GetString(data, size, pos, &to)) {
            return false;
          }
          op.observe.emplace_back(std::move(from), std::move(to));
        }
        break;
      }
      case Advice::OpKind::kUnpack:
        if (!GetVarint64(data, size, pos, &op.bag)) {
          return false;
        }
        break;
      case Advice::OpKind::kLet:
        if (!GetString(data, size, pos, &op.let_name) ||
            !DecodeExpr(data, size, pos, &op.expr)) {
          return false;
        }
        break;
      case Advice::OpKind::kFilter:
        if (!DecodeExpr(data, size, pos, &op.expr)) {
          return false;
        }
        break;
      case Advice::OpKind::kPack:
        if (!GetVarint64(data, size, pos, &op.bag) ||
            !GetBagSpec(data, size, pos, &op.bag_spec) ||
            !GetStringList(data, size, pos, &op.fields)) {
          return false;
        }
        break;
      case Advice::OpKind::kEmit:
        if (!GetVarint64(data, size, pos, &op.query_id) ||
            !GetStringList(data, size, pos, &op.fields)) {
          return false;
        }
        break;
      case Advice::OpKind::kSample: {
        Value rate;
        if (!GetValue(data, size, pos, &rate) || !rate.is_double()) {
          return false;
        }
        op.sample_rate = rate.double_value();
        break;
      }
    }
    ops.push_back(std::move(op));
  }
  *out = std::make_shared<const Advice>(std::move(ops));
  return true;
}

}  // namespace pivot
