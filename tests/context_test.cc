#include <gtest/gtest.h>

#include <thread>

#include "src/core/context.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TEST(ContextTest, RuntimeClockAndIdentity) {
  ManualClock clock;
  FakeProcess proc("A", "DataNode", &clock);
  clock.now = 42;
  EXPECT_EQ(proc.runtime.NowMicros(), 42);
  EXPECT_EQ(proc.runtime.info.host, "A");
}

TEST(ContextTest, DefaultClockIsWallClock) {
  ProcessRuntime rt;
  int64_t a = rt.NowMicros();
  int64_t b = rt.NowMicros();
  EXPECT_GE(b, a);
}

TEST(ContextTest, ForkSplitsBaggage) {
  ManualClock clock;
  FakeProcess proc("A", "p", &clock);
  ExecutionContext ctx(&proc.runtime);
  ctx.baggage().Pack(1, BagSpec::All(), Tuple{{"x", Value(int64_t{1})}});

  ExecutionContext other = ctx.Fork();
  ctx.baggage().Pack(1, BagSpec::All(), Tuple{{"x", Value(int64_t{2})}});
  other.baggage().Pack(1, BagSpec::All(), Tuple{{"x", Value(int64_t{3})}});

  EXPECT_EQ(CanonicalTuples(ctx.baggage().Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=2)"}));
  EXPECT_EQ(CanonicalTuples(other.baggage().Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=3)"}));

  ctx.Join(std::move(other));
  EXPECT_EQ(CanonicalTuples(ctx.baggage().Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=2)", "(x=3)"}));
}

TEST(ContextTest, TraceRecordingAdvancesEvents) {
  TraceRecorder recorder;
  ExecutionContext ctx;
  ctx.StartTrace(&recorder);
  EventId root = ctx.current_event();
  EventId e1 = ctx.AdvanceEvent();
  EventId e2 = ctx.AdvanceEvent();
  const TraceGraph& g = *recorder.graph(ctx.trace_id());
  EXPECT_TRUE(g.HappenedBefore(root, e1));
  EXPECT_TRUE(g.HappenedBefore(e1, e2));
  EXPECT_TRUE(g.HappenedBefore(root, e2));
  EXPECT_FALSE(g.HappenedBefore(e2, e1));
}

TEST(ContextTest, ForkCreatesConcurrentEvents) {
  TraceRecorder recorder;
  ExecutionContext ctx;
  ctx.StartTrace(&recorder);
  ExecutionContext other = ctx.Fork();
  EventId a = ctx.AdvanceEvent();
  EventId b = other.AdvanceEvent();
  const TraceGraph& g = *recorder.graph(ctx.trace_id());
  EXPECT_FALSE(g.HappenedBefore(a, b));
  EXPECT_FALSE(g.HappenedBefore(b, a));

  EventId before_join_a = ctx.current_event();
  ctx.Join(std::move(other));
  EventId joined = ctx.current_event();
  EXPECT_TRUE(g.HappenedBefore(before_join_a, joined));
  EXPECT_TRUE(g.HappenedBefore(b, joined));
}

TEST(ContextTest, ScopedContextInstallsAndRestores) {
  EXPECT_EQ(CurrentContext(), nullptr);
  ExecutionContext outer;
  {
    ScopedContext scope(&outer);
    EXPECT_EQ(CurrentContext(), &outer);
    ExecutionContext inner;
    {
      ScopedContext nested(&inner);
      EXPECT_EQ(CurrentContext(), &inner);
    }
    EXPECT_EQ(CurrentContext(), &outer);
  }
  EXPECT_EQ(CurrentContext(), nullptr);
}

TEST(ContextTest, ThreadBaggageNoopsWithoutContext) {
  EXPECT_TRUE(ThreadBaggage::Unpack(1).empty());
  EXPECT_TRUE(ThreadBaggage::Serialize().empty());
  ThreadBaggage::Pack(1, BagSpec::All(), Tuple{{"x", Value(int64_t{1})}});  // No crash.
}

TEST(ContextTest, ThreadBaggageTable4Api) {
  ExecutionContext ctx;
  ScopedContext scope(&ctx);
  ThreadBaggage::Pack(5, BagSpec::First(1), Tuple{{"procName", Value("HGET")}});
  auto tuples = ThreadBaggage::Unpack(5);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Get("procName").string_value(), "HGET");

  std::vector<uint8_t> bytes = ThreadBaggage::Serialize();
  EXPECT_FALSE(bytes.empty());

  ExecutionContext ctx2;
  ScopedContext scope2(&ctx2);
  EXPECT_TRUE(ThreadBaggage::Unpack(5).empty());
  ThreadBaggage::Deserialize(bytes);
  EXPECT_EQ(ThreadBaggage::Unpack(5).size(), 1u);
}

TEST(ContextTest, BaggagePropagatesAcrossRealThreads) {
  // The real-thread analogue of the paper's instrumented Thread/Runnable:
  // serialize on the parent, deserialize on the child, join the halves.
  ExecutionContext parent;
  parent.baggage().Pack(1, BagSpec::All(), Tuple{{"x", Value(int64_t{1})}});
  ExecutionContext child_ctx = parent.Fork();
  std::vector<uint8_t> child_bytes = child_ctx.baggage().Serialize();

  std::vector<uint8_t> returned;
  std::thread worker([&child_bytes, &returned] {
    ExecutionContext ctx;
    ScopedContext scope(&ctx);
    ThreadBaggage::Deserialize(child_bytes);
    ThreadBaggage::Pack(1, BagSpec::All(), Tuple{{"x", Value(int64_t{99})}});
    returned = ThreadBaggage::Serialize();
  });
  worker.join();

  Result<Baggage> child_result = Baggage::Deserialize(returned);
  ASSERT_TRUE(child_result.ok());
  child_ctx.set_baggage(std::move(child_result).value());
  parent.Join(std::move(child_ctx));
  EXPECT_EQ(CanonicalTuples(parent.baggage().Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=99)"}));
}

TEST(ContextTest, ConcurrentThreadsHaveIndependentCurrentContext) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<int> ok(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i, &ok] {
      ExecutionContext ctx;
      ScopedContext scope(&ctx);
      ThreadBaggage::Pack(1, BagSpec::All(), Tuple{{"i", Value(int64_t{i})}});
      auto tuples = ThreadBaggage::Unpack(1);
      ok[i] = tuples.size() == 1 && tuples[0].Get("i").int_value() == i;
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_TRUE(ok[i]) << "thread " << i;
  }
}

}  // namespace
}  // namespace pivot
