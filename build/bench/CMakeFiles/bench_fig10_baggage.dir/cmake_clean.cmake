file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_baggage.dir/bench_fig10_baggage.cc.o"
  "CMakeFiles/bench_fig10_baggage.dir/bench_fig10_baggage.cc.o.d"
  "bench_fig10_baggage"
  "bench_fig10_baggage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_baggage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
