// Simulated YARN: ResourceManager + per-host NodeManagers (§6 "YARN is a
// container manager to run user-provided processes across the cluster").
//
// MapReduce tasks request containers from the ResourceManager; each
// NodeManager runs a bounded number of concurrent containers and queues the
// rest, so task parallelism (and therefore MapReduce phase overlap in Fig 1)
// is governed here.

#ifndef PIVOT_SRC_HADOOP_YARN_H_
#define PIVOT_SRC_HADOOP_YARN_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/simsys/sim_world.h"

namespace pivot {

class YarnNodeManager {
 public:
  YarnNodeManager(SimProcess* proc, int max_containers);

  SimProcess* process() { return proc_; }
  int running() const { return running_; }

  // Runs `body` in a container as soon as capacity allows. `body` receives a
  // completion callback it must invoke when the containerized work finishes.
  // `ctx` is the requesting execution's context (nullable): the
  // ContainerStart tracepoint fires within it, so container launches are
  // causally attributable to the submitting job.
  void LaunchContainer(const std::string& job, CtxPtr ctx,
                       std::function<void(std::function<void()>)> body);

 private:
  struct PendingContainer {
    std::string job;
    CtxPtr ctx;
    std::function<void(std::function<void()>)> body;
  };

  void MaybeStartNext();

  SimProcess* proc_;
  int max_containers_;
  int running_ = 0;
  int64_t next_container_id_ = 1;
  std::deque<PendingContainer> queue_;
  Tracepoint* tp_container_start_;
};

class YarnResourceManager {
 public:
  explicit YarnResourceManager(SimProcess* proc);

  SimProcess* process() { return proc_; }
  void RegisterNodeManager(YarnNodeManager* nm) { node_managers_.push_back(nm); }
  const std::vector<YarnNodeManager*>& node_managers() const { return node_managers_; }

  // Round-robin container placement across NodeManagers.
  YarnNodeManager* NextNodeManager();

 private:
  SimProcess* proc_;
  std::vector<YarnNodeManager*> node_managers_;
  size_t next_ = 0;
};

// Builds an RM on `rm_host` and one NM per listed host.
struct YarnDeployment {
  std::unique_ptr<YarnResourceManager> resource_manager;
  std::vector<std::unique_ptr<YarnNodeManager>> node_managers;

  static YarnDeployment Create(SimWorld* world, SimHost* rm_host,
                               const std::vector<SimHost*>& nm_hosts, int containers_per_node);
};

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_YARN_H_
