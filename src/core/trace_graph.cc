#include "src/core/trace_graph.h"

#include <algorithm>
#include <cassert>

namespace pivot {

EventId TraceGraph::AddEvent(std::vector<EventId> parents) {
  parents.erase(std::remove(parents.begin(), parents.end(), kNoEvent), parents.end());
#ifndef NDEBUG
  for (EventId p : parents) {
    assert(p < parents_.size() && "parent must already exist");
  }
#endif
  parents_.push_back(std::move(parents));
  return static_cast<EventId>(parents_.size() - 1);
}

bool TraceGraph::HappenedBefore(EventId a, EventId b) const {
  if (a >= parents_.size() || b >= parents_.size() || a == b) {
    return false;
  }
  // Ids are topologically ordered, so an ancestor always has a smaller id;
  // walk b's ancestry backwards, pruning ids below a.
  if (a > b) {
    return false;
  }
  std::vector<EventId> stack = parents_[b];
  std::vector<bool> seen(b, false);
  while (!stack.empty()) {
    EventId e = stack.back();
    stack.pop_back();
    if (e == a) {
      return true;
    }
    if (e < a || seen[e]) {
      continue;
    }
    seen[e] = true;
    for (EventId p : parents_[e]) {
      stack.push_back(p);
    }
  }
  return false;
}

uint64_t TraceRecorder::NewTrace() {
  graphs_.emplace_back();
  return graphs_.size() - 1;
}

void TraceRecorder::Clear() {
  graphs_.clear();
  observed_.clear();
}

}  // namespace pivot
