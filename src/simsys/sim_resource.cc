#include "src/simsys/sim_resource.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace pivot {

double TimeSeries::total() const {
  double sum = 0;
  for (const auto& [sec, v] : buckets_) {
    sum += v;
  }
  return sum;
}

double TimeSeries::SumRange(int64_t from_sec, int64_t to_sec) const {
  double sum = 0;
  for (auto it = buckets_.lower_bound(from_sec); it != buckets_.end() && it->first < to_sec;
       ++it) {
    sum += it->second;
  }
  return sum;
}

SimResource::SimResource(SimEnvironment* env, std::string name, double bytes_per_sec)
    : env_(env), name_(std::move(name)), bytes_per_sec_(bytes_per_sec), throughput_(env) {
  assert(bytes_per_sec_ > 0);
}

int64_t SimResource::QueueDelay() const {
  return std::max<int64_t>(0, free_at_ - env_->now_micros());
}

void SimResource::Transfer(uint64_t bytes, std::function<void(int64_t, int64_t)> done) {
  int64_t now = env_->now_micros();
  int64_t start = std::max(now, free_at_);
  auto service = static_cast<int64_t>(
      std::llround(static_cast<double>(bytes) / bytes_per_sec_ * kMicrosPerSecond));
  if (service < 1 && bytes > 0) {
    service = 1;  // Sub-microsecond transfers still occupy the device.
  }
  int64_t finish = start + service;
  free_at_ = finish;
  total_bytes_ += bytes;

  // Attribute bytes to the completion second. Transfers spanning multiple
  // seconds are spread proportionally so throughput plots stay smooth.
  int64_t start_sec = start / kMicrosPerSecond;
  int64_t finish_sec = finish / kMicrosPerSecond;
  if (finish_sec == start_sec || service == 0) {
    throughput_.AddAt(finish, static_cast<double>(bytes));
  } else {
    for (int64_t sec = start_sec; sec <= finish_sec; ++sec) {
      int64_t span_begin = std::max(start, sec * kMicrosPerSecond);
      int64_t span_end = std::min(finish, (sec + 1) * kMicrosPerSecond);
      double fraction = static_cast<double>(span_end - span_begin) / static_cast<double>(service);
      throughput_.AddAt(sec * kMicrosPerSecond, static_cast<double>(bytes) * fraction);
    }
  }

  int64_t queued = start - now;
  env_->ScheduleAt(finish, [done = std::move(done), queued, service] { done(queued, service); });
}

void SimResource::Transfer(uint64_t bytes, std::function<void()> done) {
  Transfer(bytes, [done = std::move(done)](int64_t, int64_t) { done(); });
}

void SimResource::Occupy(int64_t service_micros, std::function<void(int64_t)> done) {
  assert(service_micros >= 0);
  int64_t now = env_->now_micros();
  int64_t start = std::max(now, free_at_);
  int64_t finish = start + service_micros;
  free_at_ = finish;
  int64_t queued = start - now;
  env_->ScheduleAt(finish, [done = std::move(done), queued] { done(queued); });
}

}  // namespace pivot
