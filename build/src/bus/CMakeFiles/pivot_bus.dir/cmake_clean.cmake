file(REMOVE_RECURSE
  "CMakeFiles/pivot_bus.dir/message_bus.cc.o"
  "CMakeFiles/pivot_bus.dir/message_bus.cc.o.d"
  "libpivot_bus.a"
  "libpivot_bus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_bus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
