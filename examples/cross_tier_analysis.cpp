// Cross-tier analysis (§2.1 / Fig 1b): attributing low-level HDFS DataNode
// traffic to the high-level client applications that caused it, across the
// HBase and MapReduce tiers.
//
// "HDFS only has visibility of its direct clients, and thus an aggregate view
// of all HBase and all MapReduce clients." The happened-before join fixes
// that: the client's identity is packed once at the first ClientProtocols
// invocation and unpacked wherever bytes are counted.
//
// Build & run:  ./build/examples/cross_tier_analysis

#include <cstdio>
#include <memory>

#include "src/hadoop/cluster.h"

using namespace pivot;

int main() {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 200;
  config.seed = 7;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  // What HDFS can tell you natively: bytes by *direct* client process name.
  uint64_t q_direct = *world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "GroupBy incr.procname\n"
      "Select incr.procname, SUM(incr.delta)");
  // Note: incr.procname is the DataNode itself — HDFS's own view is even
  // coarser. The nearest native equivalent is "which process called us",
  // which for HBase gets is always "RegionServer" and for MapReduce "MRTask".

  // What Pivot Tracing adds: bytes by the top-level application (Q2).
  uint64_t q2 = *world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "Join cl In First(ClientProtocols) On cl -> incr\n"
      "GroupBy cl.procName\n"
      "Select cl.procName, SUM(incr.delta)");

  // Which *system* each request entered through (the union tracepoint also
  // exports the protocol family).
  uint64_t q_system = *world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "Join cl In First(ClientProtocols) On cl -> incr\n"
      "GroupBy cl.system\n"
      "Select cl.system, SUM(incr.delta), COUNT");

  // ---- Mixed workload: two HBase apps, one MapReduce job, one raw client ----
  SimProcess* hget = cluster.AddClient(cluster.worker(0), "web-frontend");
  HbaseWorkload hbase_app(hget, cluster.hbase().servers(), /*scan=*/false,
                          5 * kMicrosPerMilli, 1);
  hbase_app.Start(10 * kMicrosPerSecond);

  SimProcess* analytics = cluster.AddClient(cluster.worker(1), "analytics-scans");
  HbaseWorkload scan_app(analytics, cluster.hbase().servers(), /*scan=*/true,
                         20 * kMicrosPerMilli, 2);
  scan_app.Start(10 * kMicrosPerSecond);

  SimProcess* backup = cluster.AddClient(cluster.worker(2), "nightly-backup");
  HdfsReadWorkload raw_reader(backup, cluster.namenode(), 16 << 20, 50 * kMicrosPerMilli,
                              /*stress_test=*/false, 3);
  raw_reader.Start(10 * kMicrosPerSecond);

  SimProcess* etl = cluster.AddClient(cluster.master_host(), "etl-job");
  MapReduceWorkload mr(etl, cluster.mapreduce(), "etl-job", 64 << 20, config.mapreduce);
  mr.Start(10 * kMicrosPerSecond);

  world->StartAgentFlushLoop(12 * kMicrosPerSecond);
  world->env()->RunAll();

  printf("HDFS's native view — bytes by the process that read them:\n");
  for (const Tuple& row : world->frontend()->Results(q_direct)) {
    printf("  %s\n", row.ToString().c_str());
  }
  printf("\nPivot Tracing's view — the same bytes by top-level application (Q2):\n");
  for (const Tuple& row : world->frontend()->Results(q2)) {
    printf("  %s\n", row.ToString().c_str());
  }
  printf("\n...and by entry protocol family:\n");
  for (const Tuple& row : world->frontend()->Results(q_system)) {
    printf("  %s\n", row.ToString().c_str());
  }
  printf("\nThe per-application rows are invisible to HDFS alone: the identity crossed\n"
         "the HBase/YARN/MapReduce tiers in the request baggage.\n");
  return 0;
}
