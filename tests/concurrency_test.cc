// Real-thread concurrency stress: tracepoints fire from many threads while
// queries weave and unweave concurrently. Exercises the registry's atomic
// advice publication, the bus's locking, and the agent's mutex — under TSAN
// or plain execution this must be race-free and crash-free.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

TEST(ConcurrencyTest, InvokeWhileWeavingAndUnweaving) {
  MessageBus bus;
  TracepointRegistry schema;
  ASSERT_TRUE(schema.Define(Def("X", {"v"})).ok());

  TracepointRegistry registry;
  ProcessRuntime runtime;
  runtime.info = {"A", "proc", 1};
  PTAgent agent(&bus, &registry, runtime.info);
  runtime.sink = &agent;
  Tracepoint* tp = *registry.Define(Def("X", {"v"}));

  Frontend frontend(&bus, &schema);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> invocations{0};

  // Worker threads hammer the tracepoint with per-thread contexts.
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      ExecutionContext ctx(&runtime);
      while (!stop.load(std::memory_order_relaxed)) {
        tp->Invoke(&ctx, {{"v", Value(int64_t{t})}});
        invocations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // The control thread installs and uninstalls queries continuously.
  int churns = 0;
  for (int i = 0; i < 200; ++i) {
    Result<uint64_t> q = frontend.Install("From e In X GroupBy e.v Select e.v, COUNT");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    std::this_thread::yield();
    agent.Flush(i * 1000);
    ASSERT_TRUE(frontend.Uninstall(*q).ok());
    ++churns;
  }
  stop.store(true);
  for (auto& w : workers) {
    w.join();
  }

  EXPECT_EQ(churns, 200);
  EXPECT_GT(invocations.load(), 1000u);
  // After the last uninstall the tracepoint is quiescent again.
  EXPECT_FALSE(tp->enabled());
}

TEST(ConcurrencyTest, ConcurrentEmittersIntoOneAgent) {
  MessageBus bus;
  TracepointRegistry schema;
  ASSERT_TRUE(schema.Define(Def("X", {"v"})).ok());
  TracepointRegistry registry;
  ProcessRuntime runtime;
  runtime.info = {"A", "proc", 1};
  PTAgent agent(&bus, &registry, runtime.info);
  runtime.sink = &agent;
  Tracepoint* tp = *registry.Define(Def("X", {"v"}));
  Frontend frontend(&bus, &schema);

  Result<uint64_t> q = frontend.Install("From e In X Select COUNT");
  ASSERT_TRUE(q.ok());

  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      ExecutionContext ctx(&runtime);
      for (int i = 0; i < kPerThread; ++i) {
        tp->Invoke(&ctx, {{"v", Value(int64_t{i})}});
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  agent.Flush(1'000'000);

  auto rows = frontend.Results(*q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("COUNT").int_value(), kThreads * kPerThread);
}

TEST(ConcurrencyTest, FlusherRacesEmittersAndQueryChurn) {
  // The sharded intake's full concurrent surface at once: 4 emitter threads
  // hammer EmitTuple through a woven tracepoint, a dedicated flusher thread
  // drains shards and publishes batches, and the control thread weaves and
  // unweaves continuously. TSan cleanliness is the primary assertion
  // (.github/workflows/ci.yml tsan job).
  MessageBus bus;
  TracepointRegistry schema;
  ASSERT_TRUE(schema.Define(Def("X", {"v"})).ok());
  TracepointRegistry registry;
  ProcessRuntime runtime;
  runtime.info = {"A", "proc", 1};
  PTAgent agent(&bus, &registry, runtime.info, /*shard_count=*/4);
  runtime.sink = &agent;
  Tracepoint* tp = *registry.Define(Def("X", {"v"}));
  Frontend frontend(&bus, &schema);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> invocations{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      ExecutionContext ctx(&runtime);
      while (!stop.load(std::memory_order_relaxed)) {
        tp->Invoke(&ctx, {{"v", Value(int64_t{t % 3})}});
        invocations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread flusher([&] {
    int64_t now = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      agent.Flush(now += 1000);
      std::this_thread::yield();
    }
  });

  for (int i = 0; i < 100; ++i) {
    Result<uint64_t> q =
        frontend.Install("From e In X GroupBy e.v Select e.v, COUNT, SUM(e.v)");
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    std::this_thread::yield();
    ASSERT_TRUE(frontend.Uninstall(*q).ok());
  }
  stop.store(true);
  flusher.join();
  for (auto& w : workers) {
    w.join();
  }

  EXPECT_GT(invocations.load(), 0u);
  EXPECT_FALSE(tp->enabled());  // Last unweave left the tracepoint quiescent.
  // Nothing woven survives, so a final flush publishes nothing new.
  uint64_t reports_before = agent.reports_published();
  agent.Flush(1'000'000'000);
  EXPECT_EQ(agent.reports_published(), reports_before);
}

}  // namespace
}  // namespace pivot
