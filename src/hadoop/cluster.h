// HadoopCluster: assembles the paper's evaluation testbed (Fig 7) in the
// simulator — 8 worker hosts each running a DataNode (and optionally a
// RegionServer, NodeManager and MRTask runtime), plus a master host running
// the NameNode, HBase Master and ResourceManager.
//
// Fault injection knobs reproduce the evaluation's two case studies:
//   * HDFS-6268 replica-selection bug (§6.1) via HdfsConfig;
//   * network limplock (§6.2 / Fig 9) via DowngradeNic;
//   * rogue GC via InjectGcPauses.

#ifndef PIVOT_SRC_HADOOP_CLUSTER_H_
#define PIVOT_SRC_HADOOP_CLUSTER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/hadoop/hbase.h"
#include "src/hadoop/hdfs.h"
#include "src/hadoop/mapreduce.h"
#include "src/hadoop/workloads.h"
#include "src/hadoop/yarn.h"
#include "src/simsys/sim_world.h"

namespace pivot {

struct HadoopClusterConfig {
  int worker_hosts = 8;                  // Named "A".."H".
  double disk_bytes_per_sec = 200e6;     // 200 MB/s disks.
  double nic_bytes_per_sec = 125e6;      // 1 Gbit links.
  HdfsConfig hdfs;
  HbaseConfig hbase;
  MrConfig mapreduce;
  size_t dataset_files = 500;            // Pre-created HDFS files.
  bool deploy_hbase = true;
  bool deploy_mapreduce = true;
  uint64_t seed = 42;
};

class HadoopCluster {
 public:
  explicit HadoopCluster(HadoopClusterConfig config);

  SimWorld* world() { return &world_; }
  const HadoopClusterConfig& config() const { return config_; }

  SimHost* master_host() { return master_host_; }
  const std::vector<SimHost*>& worker_hosts() const { return worker_hosts_; }
  SimHost* worker(size_t i) { return worker_hosts_[i]; }

  HdfsNameNode* namenode() { return hdfs_.namenode; }
  HbaseDeployment& hbase() { return hbase_; }
  MapReduceRuntime* mapreduce() { return mapreduce_.get(); }

  // Adds a client application process named `name` on `host` (its procname
  // is what Q2-style queries group by).
  SimProcess* AddClient(SimHost* host, std::string name);

  // ---- Fault injection ----

  // Downgrades both link directions of `host` (Fig 9: 1 Gbit -> 100 Mbit).
  void DowngradeNic(SimHost* host, double bytes_per_sec);

  // Schedules periodic GC pauses on `proc`: every `period` simulated micros,
  // pause for `duration`, until `until`.
  void InjectGcPauses(SimProcess* proc, int64_t period_micros, int64_t duration_micros,
                      int64_t until_micros);

 private:
  HadoopClusterConfig config_;
  SimWorld world_;
  SimHost* master_host_ = nullptr;
  std::vector<SimHost*> worker_hosts_;
  HdfsDeployment hdfs_;
  HbaseDeployment hbase_;
  YarnDeployment yarn_;
  std::unique_ptr<MapReduceRuntime> mapreduce_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_CLUSTER_H_
