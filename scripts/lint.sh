#!/bin/sh
# clang-tidy over the sources (.clang-tidy selects bugprone-*, performance-*,
# concurrency-*). Degrades gracefully: the CI container only ships gcc, so a
# missing clang-tidy is a skip, not a failure.
#
# Usage: scripts/lint.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found; skipping lint (install clang-tools to enable)."
  exit 0
fi

# The compilation database is written by any CMake configure
# (CMAKE_EXPORT_COMPILE_COMMANDS is on in the top-level CMakeLists.txt).
if [ ! -f "$build_dir/compile_commands.json" ]; then
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
fi

find "$repo_root/src" -name '*.cc' -print | sort |
  xargs clang-tidy -p "$build_dir" --quiet
