# Empty dependencies file for simsys_test.
# This may be replaced when dependencies are built.
