#include "src/agent/flusher.h"

namespace pivot {

void AgentFlusher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      if (thread_.joinable()) {
        thread_.join();
      }
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) {
    thread_.join();
  }
}

void AgentFlusher::Run() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
      break;
    }
    lock.unlock();
    agent_->Flush(NowMicros());
    flushes_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  lock.unlock();
  // Final flush on shutdown.
  agent_->Flush(NowMicros());
  flushes_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace pivot
