#include <gtest/gtest.h>

#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

HadoopClusterConfig HbaseConfig4() {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 64;
  config.deploy_hbase = true;
  config.deploy_mapreduce = false;
  return config;
}

TEST(HbaseTest, GetAndScanComplete) {
  HadoopCluster cluster(HbaseConfig4());
  SimProcess* proc = cluster.AddClient(cluster.worker(0), "Hget");
  HbaseClient client(proc, cluster.hbase().servers(), 5);

  int completed = 0;
  int64_t get_latency = 0;
  int64_t scan_latency = 0;
  client.Get(cluster.world()->NewRequest(proc), [&](CtxPtr, HbaseClient::RequestResult r) {
    ++completed;
    get_latency = r.latency_micros;
  });
  client.Scan(cluster.world()->NewRequest(proc), [&](CtxPtr, HbaseClient::RequestResult r) {
    ++completed;
    scan_latency = r.latency_micros;
  });
  cluster.world()->env()->RunAll();
  EXPECT_EQ(completed, 2);
  EXPECT_GT(get_latency, 0);
  // Scans move 4 MB vs 10 kB: substantially slower.
  EXPECT_GT(scan_latency, get_latency);
}

TEST(HbaseTest, RequestsReachHdfsUnderneath) {
  // Cross-tier visibility: HBase gets are served by HDFS reads, and a
  // Q2-style query attributes DataNode bytes to the HBase client app.
  HadoopCluster cluster(HbaseConfig4());
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SimProcess* proc = cluster.AddClient(cluster.worker(1), "Hget");
  HbaseClient client(proc, cluster.hbase().servers(), 5);
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    client.Get(cluster.world()->NewRequest(proc),
               [&](CtxPtr, HbaseClient::RequestResult) { ++completed; });
  }
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(120 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_EQ(completed, 5);
  auto results = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(results.size(), 1u);
  // The DataNode bytes are attributed to "Hget" even though the RegionServer
  // issued the HDFS reads — the happened-before join crossed the tier.
  EXPECT_EQ(results[0].Get("cl.procName").string_value(), "Hget");
  EXPECT_EQ(results[0].Get("SUM(incr.delta)").int_value(), 5 * (10 << 10));
}

TEST(HbaseTest, HandlerPoolQueuesExcessRequests) {
  HadoopClusterConfig config = HbaseConfig4();
  config.hbase.handler_threads = 1;
  config.hbase.scan_cpu_micros = 50'000;
  HadoopCluster cluster(config);

  SimProcess* proc = cluster.AddClient(cluster.worker(0), "Hscan");
  HbaseClient client(proc, cluster.hbase().servers(), 5);

  // Install a queue-time query.
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From rs In RS.QueueDone Select MAX(rs.queue)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  // Two scans against (likely) the same RegionServer: with one handler the
  // second queues. Pin determinism by issuing many.
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    client.Scan(cluster.world()->NewRequest(proc),
                [&](CtxPtr, HbaseClient::RequestResult) { ++completed; });
  }
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(600 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_EQ(completed, 8);
  auto results = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].Get("MAX(rs.queue)").int_value(), 0);
}

TEST(HbaseTest, PutAccumulatesInMemstore) {
  HadoopCluster cluster(HbaseConfig4());
  SimProcess* proc = cluster.AddClient(cluster.worker(0), "Hput");
  HbaseClient client(proc, cluster.hbase().servers(), 5);

  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    client.Put(cluster.world()->NewRequest(proc),
               [&](CtxPtr, HbaseClient::RequestResult) { ++completed; });
  }
  cluster.world()->env()->RunAll();
  EXPECT_EQ(completed, 20);
  uint64_t total_memstore = 0;
  for (const auto& rs : cluster.hbase().region_servers) {
    total_memstore += rs->memstore_bytes();
  }
  EXPECT_EQ(total_memstore, 20u * cluster.config().hbase.put_bytes);
}

TEST(HbaseTest, MemstoreFlushAttributedToTriggeringClient) {
  // The write-side analogue of Fig 1b: the HDFS bytes of a memstore flush
  // are attributed (via baggage through the flush branch) to the HBase
  // client whose put crossed the threshold.
  HadoopClusterConfig config = HbaseConfig4();
  config.hbase.memstore_flush_bytes = 8 << 10;  // Flush every 8 puts.
  HadoopCluster cluster(config);

  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From w In DataNodeMetrics.incrBytesWritten "
      "Join cl In First(ClientProtocols) On cl -> w "
      "GroupBy cl.procName Select cl.procName, SUM(w.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  Result<uint64_t> q_flush = cluster.world()->frontend()->Install(
      "From f In RS.MemstoreFlush Select SUM(f.bytes), COUNT");
  ASSERT_TRUE(q_flush.ok());

  SimProcess* proc = cluster.AddClient(cluster.worker(0), "Hput");
  HbaseClient client(proc, cluster.hbase().servers(), 5);
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    client.Put(cluster.world()->NewRequest(proc),
               [&](CtxPtr, HbaseClient::RequestResult) { ++completed; });
  }
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_EQ(completed, 64);
  int total_flushes = 0;
  for (const auto& rs : cluster.hbase().region_servers) {
    total_flushes += rs->flushes();
  }
  EXPECT_GE(total_flushes, 1);

  auto rows = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("cl.procName").string_value(), "Hput");
  // Each flush writes through the 3-replica pipeline.
  auto flush_rows = cluster.world()->frontend()->Results(*q_flush);
  ASSERT_EQ(flush_rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("SUM(w.delta)").int_value(),
            3 * flush_rows[0].Get("SUM(f.bytes)").int_value());
}

TEST(HbaseTest, GcPauseInflatesLatency) {
  HadoopClusterConfig config = HbaseConfig4();
  HadoopCluster cluster(config);
  SimProcess* proc = cluster.AddClient(cluster.worker(0), "Hget");
  HbaseClient client(proc, cluster.hbase().servers(), 5);

  // Baseline get latency.
  int64_t baseline = 0;
  client.Get(cluster.world()->NewRequest(proc),
             [&](CtxPtr, HbaseClient::RequestResult r) { baseline = r.latency_micros; });
  cluster.world()->env()->RunAll();

  // Pause every RegionServer for 300 ms starting now.
  for (const auto& rs : cluster.hbase().region_servers) {
    rs->process()->PauseUntil(cluster.world()->env()->now_micros() + 300 * kMicrosPerMilli);
  }
  int64_t paused = 0;
  client.Get(cluster.world()->NewRequest(proc),
             [&](CtxPtr, HbaseClient::RequestResult r) { paused = r.latency_micros; });
  cluster.world()->env()->RunAll();

  EXPECT_GT(baseline, 0);
  EXPECT_GT(paused, baseline + 250 * kMicrosPerMilli);
}

}  // namespace
}  // namespace pivot
