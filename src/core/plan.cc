#include "src/core/plan.h"

#include <algorithm>

#include "src/telemetry/metrics.h"

namespace pivot {

namespace {

// Per-thread working-set buffers, reused across invocations so plan execution
// does no vector allocation in steady state. Indexed by re-entrancy depth:
// meta-tracepoints (e.g. Baggage.Serialize fired from an agent flush) can
// re-enter Execute on the same thread, and each nesting level needs its own
// buffers.
struct Scratch {
  std::vector<Tuple> working;
  std::vector<Tuple> spare;
};

Scratch& AcquireScratch(size_t depth) {
  thread_local std::vector<std::unique_ptr<Scratch>> pool;
  while (pool.size() <= depth) {
    pool.push_back(std::make_unique<Scratch>());
  }
  return *pool[depth];
}

struct DepthGuard {
  static size_t& Depth() {
    thread_local size_t depth = 0;
    return depth;
  }
  DepthGuard() : depth(Depth()++) {}
  ~DepthGuard() { --Depth(); }
  size_t depth;
};

}  // namespace

AdvicePlan::Ptr AdvicePlan::Compile(Advice::Ptr advice) {
  if (advice == nullptr) {
    return nullptr;
  }
  auto plan = std::shared_ptr<AdvicePlan>(new AdvicePlan());
  plan->source_ = advice;
  plan->steps_.reserve(advice->ops().size());
  for (const Advice::Op& op : advice->ops()) {
    Step step;
    step.kind = op.kind;
    step.bag = op.bag;
    step.bag_spec = op.bag_spec;
    step.query_id = op.query_id;
    step.sample_rate = op.sample_rate;
    step.observe.reserve(op.observe.size());
    for (const auto& [from, to] : op.observe) {
      step.observe.emplace_back(InternSymbol(from), InternSymbol(to));
    }
    step.fields.reserve(op.fields.size());
    for (const auto& f : op.fields) {
      step.fields.push_back(InternSymbol(f));
    }
    switch (op.kind) {
      case Advice::OpKind::kPack:
        step.project = !op.fields.empty() &&
                       op.bag_spec.semantics != PackSemantics::kAggregate;
        break;
      case Advice::OpKind::kEmit:
        step.project = !op.fields.empty();
        break;
      default:
        break;
    }
    if (!op.let_name.empty()) {
      step.let_id = InternSymbol(op.let_name);
    }
    if (op.expr != nullptr) {
      op.expr->Bind();
      step.expr = op.expr;
    }
    plan->steps_.push_back(std::move(step));
  }
  static telemetry::Counter& binds = telemetry::Metrics().GetCounter("plan.bind_count");
  binds.Increment();
  return plan;
}

void AdvicePlan::Execute(ExecutionContext* ctx, const Tuple& exports) const {
  if (ctx == nullptr) {
    return;
  }
  DepthGuard guard;
  Scratch& scratch = AcquireScratch(guard.depth);
  std::vector<Tuple>& working = scratch.working;
  working.clear();
  // Starts as one empty tuple so a leading Observe replaces it and degenerate
  // programs still behave sensibly (mirrors Advice::Execute).
  working.emplace_back();

  for (const Step& step : steps_) {
    switch (step.kind) {
      case Advice::OpKind::kSample: {
        if (!advice_internal::SampleAccept(step.sample_rate)) {
          return;
        }
        break;
      }
      case Advice::OpKind::kObserve: {
        Tuple observed;
        for (const auto& [from, to] : step.observe) {
          observed.Append(to, exports.Get(from));
        }
        for (auto& w : working) {
          w = w.Concat(observed);
        }
        break;
      }
      case Advice::OpKind::kUnpack: {
        std::vector<Tuple> unpacked = ctx->baggage().Unpack(step.bag);
        std::vector<Tuple>& joined = scratch.spare;
        joined.clear();
        joined.reserve(
            std::min(working.size() * unpacked.size(), Advice::kMaxWorkingSet));
        bool truncated = false;
        for (const auto& w : working) {
          for (const auto& u : unpacked) {
            if (joined.size() >= Advice::kMaxWorkingSet) {
              truncated = true;
              break;
            }
            joined.push_back(w.Concat(u));
          }
          if (truncated) {
            break;
          }
        }
        if (truncated) {
          advice_internal::CountTruncation();
        }
        working.swap(joined);
        break;
      }
      case Advice::OpKind::kLet: {
        for (auto& w : working) {
          w.Append(step.let_id, step.expr->Eval(w));
        }
        break;
      }
      case Advice::OpKind::kFilter: {
        std::vector<Tuple>& kept = scratch.spare;
        kept.clear();
        kept.reserve(working.size());
        for (auto& w : working) {
          if (step.expr->Eval(w).AsBool()) {
            kept.push_back(std::move(w));
          }
        }
        working.swap(kept);
        break;
      }
      case Advice::OpKind::kPack: {
        for (const auto& w : working) {
          if (step.project) {
            ctx->baggage().Pack(step.bag, step.bag_spec, w.Project(step.fields));
          } else {
            ctx->baggage().Pack(step.bag, step.bag_spec, w);
          }
        }
        break;
      }
      case Advice::OpKind::kEmit: {
        EmitSink* sink = ctx->runtime() != nullptr ? ctx->runtime()->sink : nullptr;
        if (sink == nullptr) {
          break;
        }
        for (const auto& w : working) {
          if (step.project) {
            sink->EmitTuple(step.query_id, w.Project(step.fields));
          } else {
            sink->EmitTuple(step.query_id, w);
          }
        }
        break;
      }
    }
    if (working.empty()) {
      return;
    }
  }
}

}  // namespace pivot
