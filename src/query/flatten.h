// Internal: subquery inlining shared by the compiler and the naive evaluator.
//
// A joined subquery (Q9 joining Q8) is flattened into the outer query: the
// subquery's sources/joins/wheres are spliced in under renamed aliases
// ("<outer>$<inner>"), and its Select outputs become computed columns
// (LetBindings) at the subquery's From stage, named after the outer alias.

#ifndef PIVOT_SRC_QUERY_FLATTEN_H_
#define PIVOT_SRC_QUERY_FLATTEN_H_

#include <functional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/query/ast.h"

namespace pivot {

class QueryRegistry;

// A computed column bound to one source's stage.
struct LetBinding {
  std::string alias;  // Stage the column is computed at.
  std::string name;   // Output column name (e.g. "latencyMeasurement").
  Expr::Ptr expr;
};

// Query with subqueries inlined; the compiler-internal form.
struct FlatQuery {
  SourceRef from;
  std::vector<JoinClause> joins;
  std::vector<Expr::Ptr> where;
  std::vector<std::string> group_by;
  std::vector<SelectItem> select;
  std::vector<LetBinding> lets;
};

// Rebuilds `e` with every field reference renamed through `rename`.
Expr::Ptr RewriteFieldRefs(const Expr::Ptr& e,
                           const std::function<std::string(const std::string&)>& rename);

// Flattens `q`, resolving subquery joins against `named_queries` (nullable
// when `q` has no subquery joins).
Status FlattenQuery(const Query& q, const QueryRegistry* named_queries, FlatQuery* out);

}  // namespace pivot

#endif  // PIVOT_SRC_QUERY_FLATTEN_H_
