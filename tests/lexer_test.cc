#include <gtest/gtest.h>

#include "src/query/lexer.h"

namespace pivot {
namespace {

std::vector<TokenKind> Kinds(const std::string& text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenKind> kinds;
  for (const auto& t : *tokens) {
    kinds.push_back(t.kind);
  }
  return kinds;
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  EXPECT_EQ(Kinds(""), (std::vector<TokenKind>{TokenKind::kEnd}));
  EXPECT_EQ(Kinds("   \n\t "), (std::vector<TokenKind>{TokenKind::kEnd}));
}

TEST(LexerTest, IdentifiersAndDots) {
  EXPECT_EQ(Kinds("DN.DataTransferProtocol"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kDot, TokenKind::kIdent,
                                    TokenKind::kEnd}));
  Result<std::vector<Token>> tokens = Tokenize("incr_Bytes2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "incr_Bytes2");
}

TEST(LexerTest, NumbersIntAndDouble) {
  Result<std::vector<Token>> tokens = Tokenize("42 4.5 0.001");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDouble);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 4.5);
  EXPECT_DOUBLE_EQ((*tokens)[2].double_value, 0.001);
}

TEST(LexerTest, NumberFollowedByDotIdentIsNotADouble) {
  // "1.x" must lex as int, dot, ident — not a malformed double.
  EXPECT_EQ(Kinds("1.x"), (std::vector<TokenKind>{TokenKind::kInt, TokenKind::kDot,
                                                  TokenKind::kIdent, TokenKind::kEnd}));
}

TEST(LexerTest, Strings) {
  Result<std::vector<Token>> tokens = Tokenize("\"hello world\" 'single'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
  EXPECT_EQ((*tokens)[1].text, "single");
}

TEST(LexerTest, StringEscapes) {
  Result<std::vector<Token>> tokens = Tokenize(R"("a\"b")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "a\"b");
}

TEST(LexerTest, OperatorsAndArrow) {
  EXPECT_EQ(Kinds("-> - == != <= >= < > && || ! + * / %"),
            (std::vector<TokenKind>{TokenKind::kArrow, TokenKind::kMinus, TokenKind::kEq,
                                    TokenKind::kNe, TokenKind::kLe, TokenKind::kGe,
                                    TokenKind::kLt, TokenKind::kGt, TokenKind::kAnd,
                                    TokenKind::kOr, TokenKind::kBang, TokenKind::kPlus,
                                    TokenKind::kStar, TokenKind::kSlash, TokenKind::kPercent,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, OffsetsPointAtTokens) {
  Result<std::vector<Token>> tokens = Tokenize("ab  ->");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 4u);
}

TEST(LexerTest, Utf8MathMinus) {
  EXPECT_EQ(Kinds("a \xE2\x88\x92 b"),
            (std::vector<TokenKind>{TokenKind::kIdent, TokenKind::kMinus, TokenKind::kIdent,
                                    TokenKind::kEnd}));
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("a = b").ok());    // Single '=' invalid.
  EXPECT_FALSE(Tokenize("a & b").ok());    // Single '&'.
  EXPECT_FALSE(Tokenize("a | b").ok());    // Single '|'.
  EXPECT_FALSE(Tokenize("a # b").ok());    // Unknown character.
  EXPECT_FALSE(Tokenize("caf\xC3\xA9").ok());  // Non-ASCII identifier.
}

}  // namespace
}  // namespace pivot
