file(REMOVE_RECURSE
  "CMakeFiles/pivot_common.dir/rand.cc.o"
  "CMakeFiles/pivot_common.dir/rand.cc.o.d"
  "CMakeFiles/pivot_common.dir/status.cc.o"
  "CMakeFiles/pivot_common.dir/status.cc.o.d"
  "CMakeFiles/pivot_common.dir/strings.cc.o"
  "CMakeFiles/pivot_common.dir/strings.cc.o.d"
  "CMakeFiles/pivot_common.dir/varint.cc.o"
  "CMakeFiles/pivot_common.dir/varint.cc.o.d"
  "libpivot_common.a"
  "libpivot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
