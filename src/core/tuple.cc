#include "src/core/tuple.h"

namespace pivot {

void Tuple::Set(SymbolId id, Value value) {
  for (auto& f : fields_) {
    if (f.id == id) {
      f.value = std::move(value);
      return;
    }
  }
  fields_.push_back(Field{id, std::move(value)});
}

Value Tuple::Get(SymbolId id) const {
  for (const auto& f : fields_) {
    if (f.id == id) {
      return f.value;
    }
  }
  return Value();
}

Value Tuple::Get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name() == name) {
      return f.value;
    }
  }
  return Value();
}

bool Tuple::Has(SymbolId id) const {
  if (id == kInvalidSymbol) return false;
  for (const auto& f : fields_) {
    if (f.id == id) {
      return true;
    }
  }
  return false;
}

bool Tuple::Has(std::string_view name) const {
  for (const auto& f : fields_) {
    if (f.name() == name) {
      return true;
    }
  }
  return false;
}

Tuple Tuple::Concat(const Tuple& other) const {
  Tuple out = *this;
  out.fields_.reserve(fields_.size() + other.fields_.size());
  for (const auto& f : other.fields_) {
    out.fields_.push_back(f);
  }
  return out;
}

Tuple Tuple::Project(const std::vector<SymbolId>& ids) const {
  Tuple out;
  out.fields_.reserve(ids.size());
  for (SymbolId id : ids) {
    out.Append(id, Get(id));
  }
  return out;
}

Tuple Tuple::Project(const std::vector<std::string>& names) const {
  return Project(InternSymbols(names));
}

Tuple Tuple::Project(std::initializer_list<std::string_view> names) const {
  Tuple out;
  for (std::string_view n : names) {
    SymbolId id = InternSymbol(n);
    out.Append(id, Get(id));
  }
  return out;
}

uint64_t Tuple::HashFields(const std::vector<SymbolId>& ids) const {
  uint64_t h = 0x84222325CBF29CE4ULL;
  for (SymbolId id : ids) {
    h = h * 0x100000001B3ULL + Get(id).Hash();
  }
  return h;
}

uint64_t Tuple::HashFields(const std::vector<std::string>& names) const {
  return HashFields(InternSymbols(names));
}

uint64_t Tuple::HashFields(std::initializer_list<std::string_view> names) const {
  uint64_t h = 0x84222325CBF29CE4ULL;
  for (std::string_view n : names) {
    h = h * 0x100000001B3ULL + Get(InternSymbol(n)).Hash();
  }
  return h;
}

std::string Tuple::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += fields_[i].name();
    out += "=";
    out += fields_[i].value.ToString();
  }
  out += ")";
  return out;
}

std::vector<SymbolId> InternSymbols(const std::vector<std::string>& names) {
  std::vector<SymbolId> ids;
  ids.reserve(names.size());
  for (const auto& n : names) {
    ids.push_back(InternSymbol(n));
  }
  return ids;
}

}  // namespace pivot
