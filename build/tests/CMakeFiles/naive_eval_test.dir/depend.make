# Empty dependencies file for naive_eval_test.
# This may be replaced when dependencies are built.
