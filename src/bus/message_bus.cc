#include "src/bus/message_bus.h"

#include <chrono>

#include "src/telemetry/metrics.h"

namespace pivot {

namespace {

// Global-registry mirrors of the bus counters, so StatusReport and the
// telemetry dump see bus traffic without holding a bus pointer.
telemetry::Counter& PublishCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("bus.publish.count");
  return c;
}

telemetry::Counter& PublishBytesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("bus.publish.bytes");
  return c;
}

telemetry::Counter& NoSubscriberCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("bus.publish.no_subscriber");
  return c;
}

telemetry::Histogram& CallbackNanosHistogram() {
  static telemetry::Histogram& h = telemetry::Metrics().GetHistogram("bus.callback_nanos");
  return h;
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

MessageBus::SubscriberId MessageBus::Subscribe(std::string topic, Callback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  SubscriberId id = next_id_++;
  subscriber_topics_.emplace(id, topic);
  topics_[std::move(topic)].push_back(
      Subscriber{id, std::make_shared<Callback>(std::move(callback))});
  return id;
}

void MessageBus::Unsubscribe(SubscriberId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto rec = subscriber_topics_.find(id);
  if (rec == subscriber_topics_.end()) {
    return;  // Unknown or already-cancelled id.
  }
  auto topic_it = topics_.find(rec->second);
  subscriber_topics_.erase(rec);
  if (topic_it == topics_.end()) {
    return;
  }
  std::vector<Subscriber>& subs = topic_it->second;
  for (auto it = subs.begin(); it != subs.end(); ++it) {
    if (it->id == id) {
      subs.erase(it);
      return;
    }
  }
}

void MessageBus::Publish(BusMessage msg) {
  // Snapshot subscribers so callbacks can mutate subscriptions reentrantly.
  std::vector<std::shared_ptr<Callback>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++published_;
    TopicCounters& tc = counters_[msg.topic];
    ++tc.published;
    tc.bytes += msg.payload.size();
    auto it = topics_.find(msg.topic);
    if (it != topics_.end() && !it->second.empty()) {
      callbacks.reserve(it->second.size());
      for (const auto& sub : it->second) {
        callbacks.push_back(sub.callback);
      }
    } else {
      // Nobody listening: the message is silently lost. Count it — on a
      // control topic this is the signature of a dead agent or frontend.
      ++dropped_;
      ++tc.no_subscriber;
      NoSubscriberCounter().Increment();
    }
  }
  PublishCounter().Increment();
  PublishBytesCounter().Increment(msg.payload.size());
  uint64_t deliveries = 0;
  for (const auto& cb : callbacks) {
    int64_t start = MonotonicNanos();
    (*cb)(msg);
    CallbackNanosHistogram().Observe(static_cast<uint64_t>(MonotonicNanos() - start));
    ++deliveries;
  }
  if (deliveries > 0) {
    // One lock acquisition for the whole fan-out, not one per callback.
    std::lock_guard<std::mutex> lock(mu_);
    delivered_ += deliveries;
    counters_[msg.topic].delivered += deliveries;
  }
}

uint64_t MessageBus::published_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

uint64_t MessageBus::delivered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t MessageBus::dropped_publishes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<TopicStats> MessageBus::TopicSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TopicStats> out;
  out.reserve(counters_.size());
  for (const auto& [topic, tc] : counters_) {
    TopicStats row;
    row.topic = topic;
    row.published = tc.published;
    row.delivered = tc.delivered;
    row.bytes = tc.bytes;
    row.no_subscriber = tc.no_subscriber;
    auto it = topics_.find(topic);
    row.subscribers = it == topics_.end() ? 0 : it->second.size();
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace pivot
