// Closed-loop workload generators: the client applications of the paper's
// evaluation (§2.1, §6.1):
//
//   FSread4m / FSread64m   random closed-loop 4 MB / 64 MB HDFS reads
//   Hget                   10 kB row lookups in a large HBase table
//   Hscan                  4 MB table scans of a large HBase table
//   MRsort10g / MRsort100g MapReduce sort jobs
//   StressTest             closed-loop random 8 kB reads (the §6.1 clients),
//                          firing the StressTest.DoNextOp tracepoint
//
// Each workload is a closed loop: the next operation issues when the previous
// completes (plus think time). Stats record per-second op counts and
// individual latencies, backing Figs 8a and 9a.

#ifndef PIVOT_SRC_HADOOP_WORKLOADS_H_
#define PIVOT_SRC_HADOOP_WORKLOADS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rand.h"
#include "src/hadoop/hbase.h"
#include "src/hadoop/hdfs.h"
#include "src/hadoop/mapreduce.h"
#include "src/simsys/sim_world.h"

namespace pivot {

class WorkloadStats {
 public:
  explicit WorkloadStats(const SimEnvironment* env) : ops_(env) {}

  void Record(int64_t now_micros, int64_t latency_micros) {
    ops_.AddAt(now_micros, 1.0);
    latencies_.emplace_back(now_micros, latency_micros);
    ++total_ops_;
  }

  // Completed operations per second.
  const TimeSeries& ops() const { return ops_; }
  // (completion time µs, latency µs) per operation.
  const std::vector<std::pair<int64_t, int64_t>>& latencies() const { return latencies_; }
  uint64_t total_ops() const { return total_ops_; }

 private:
  TimeSeries ops_;
  std::vector<std::pair<int64_t, int64_t>> latencies_;
  uint64_t total_ops_ = 0;
};

// Closed-loop HDFS reader (FSread4m, FSread64m and — with the DoNextOp
// tracepoint enabled — the §6.1 StressTest clients).
class HdfsReadWorkload {
 public:
  // `proc` should be named after the client application (its procname is the
  // Q2 group key). `stress_test` additionally fires StressTest.DoNextOp
  // before each op.
  HdfsReadWorkload(SimProcess* proc, HdfsNameNode* namenode, uint64_t read_bytes,
                   int64_t think_micros, bool stress_test, uint64_t seed);

  void Start(int64_t stop_at_micros);
  const WorkloadStats& stats() const { return stats_; }
  SimProcess* process() { return proc_; }

 private:
  void DoOp();

  SimProcess* proc_;
  HdfsClient client_;
  uint64_t read_bytes_;
  int64_t think_micros_;
  Rng rng_;
  int64_t stop_at_ = 0;
  WorkloadStats stats_;
  Tracepoint* tp_do_next_op_ = nullptr;
};

// Closed-loop HBase client (Hget / Hscan / Hput).
class HbaseWorkload {
 public:
  enum class Op { kGet, kScan, kPut };

  HbaseWorkload(SimProcess* proc, std::vector<HbaseRegionServer*> servers, Op op,
                int64_t think_micros, uint64_t seed);

  // Back-compat convenience: scan=false -> gets, scan=true -> scans.
  HbaseWorkload(SimProcess* proc, std::vector<HbaseRegionServer*> servers, bool scan,
                int64_t think_micros, uint64_t seed)
      : HbaseWorkload(proc, std::move(servers), scan ? Op::kScan : Op::kGet, think_micros,
                      seed) {}

  void Start(int64_t stop_at_micros);
  const WorkloadStats& stats() const { return stats_; }

 private:
  void DoOp();

  SimProcess* proc_;
  HbaseClient client_;
  Op op_;
  int64_t think_micros_;
  Rng rng_;
  int64_t stop_at_ = 0;
  WorkloadStats stats_;
};

// Submits MapReduce jobs back-to-back (MRsort10g / MRsort100g).
class MapReduceWorkload {
 public:
  MapReduceWorkload(SimProcess* client, MapReduceRuntime* runtime, std::string job_name,
                    uint64_t input_bytes, MrConfig config);

  void Start(int64_t stop_at_micros);
  const WorkloadStats& stats() const { return stats_; }
  int jobs_completed() const { return jobs_completed_; }

 private:
  void SubmitNext();

  SimProcess* client_;
  MapReduceRuntime* runtime_;
  std::string job_name_;
  uint64_t input_bytes_;
  MrConfig config_;
  int64_t stop_at_ = 0;
  int jobs_completed_ = 0;
  WorkloadStats stats_;
};

// NNBench-style metadata workload (Table 5's Open/Create/Rename).
class MetadataWorkload {
 public:
  MetadataWorkload(SimProcess* proc, HdfsNameNode* namenode, std::string op,
                   int64_t think_micros, uint64_t seed);

  void Start(int64_t stop_at_micros);
  const WorkloadStats& stats() const { return stats_; }

 private:
  void DoOp();

  SimProcess* proc_;
  HdfsClient client_;
  std::string op_;
  int64_t think_micros_;
  int64_t stop_at_ = 0;
  WorkloadStats stats_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_WORKLOADS_H_
