// End-to-end control-plane integration: frontend -> bus -> agents -> woven
// tracepoints -> emitted tuples -> interval reports -> merged results.

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/agent/protocol.h"
#include "src/bus/message_bus.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

// One "process": its own tracepoint registry + PT agent wired as the sink.
struct MiniProcess {
  TracepointRegistry registry;
  ProcessRuntime runtime;
  std::unique_ptr<PTAgent> agent;

  MiniProcess(MessageBus* bus, ManualClock* clock, std::string host, std::string name) {
    runtime.info.host = std::move(host);
    runtime.info.process_name = std::move(name);
    runtime.info.process_id = 7;
    runtime.now_micros = [clock] { return clock->now; };
    agent = std::make_unique<PTAgent>(bus, &registry, runtime.info);
    runtime.sink = agent.get();
  }

  Tracepoint* Define(const std::string& name, std::vector<std::string> exports) {
    auto tp = registry.Define(Def(name, std::move(exports)));
    EXPECT_TRUE(tp.ok());
    return *tp;
  }
};

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest()
      : client_(&bus_, &clock_, "A", "FSread4m"),
        datanode_b_(&bus_, &clock_, "B", "DataNode"),
        datanode_c_(&bus_, &clock_, "C", "DataNode"),
        frontend_(&bus_, &schema_) {
    // Schema registry holds all definitions for query validation.
    EXPECT_TRUE(schema_.Define(Def("ClientProtocols", {"procName"})).ok());
    EXPECT_TRUE(schema_.Define(Def("DataNodeMetrics.incrBytesRead", {"delta"})).ok());

    tp_client_ = client_.Define("ClientProtocols", {"procName"});
    tp_incr_b_ = datanode_b_.Define("DataNodeMetrics.incrBytesRead", {"delta"});
    tp_incr_c_ = datanode_c_.Define("DataNodeMetrics.incrBytesRead", {"delta"});
  }

  // Simulates one request: ClientProtocols at the client, then reads at the
  // given DataNodes; baggage crosses "process boundaries" through the wire
  // format exactly as an RPC layer would carry it.
  void RunRequest(const std::vector<std::pair<MiniProcess*, int64_t>>& reads) {
    ExecutionContext ctx(&client_.runtime);
    tp_client_->Invoke(&ctx, {{"procName", Value(client_.runtime.info.process_name)}});
    std::vector<uint8_t> wire = ctx.baggage().Serialize();
    for (auto& [proc, delta] : reads) {
      ExecutionContext server_ctx(&proc->runtime);
      Result<Baggage> baggage = Baggage::Deserialize(wire);
      ASSERT_TRUE(baggage.ok());
      server_ctx.set_baggage(std::move(baggage).value());
      Tracepoint* tp = proc == &datanode_b_ ? tp_incr_b_ : tp_incr_c_;
      tp->Invoke(&server_ctx, {{"delta", Value(delta)}});
      wire = server_ctx.baggage().Serialize();
    }
  }

  void FlushAll() {
    clock_.Tick(kFlushInterval);
    client_.agent->Flush(clock_.now);
    datanode_b_.agent->Flush(clock_.now);
    datanode_c_.agent->Flush(clock_.now);
  }

  static constexpr int64_t kFlushInterval = 1'000'000;

  ManualClock clock_;
  MessageBus bus_;
  TracepointRegistry schema_;
  MiniProcess client_;
  MiniProcess datanode_b_;
  MiniProcess datanode_c_;
  Frontend frontend_;
  Tracepoint* tp_client_;
  Tracepoint* tp_incr_b_;
  Tracepoint* tp_incr_c_;
};

TEST_F(FrontendTest, Q1StyleLocalAggregation) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead GroupBy incr.host "
      "Select incr.host, SUM(incr.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  RunRequest({{&datanode_b_, 100}, {&datanode_c_, 50}});
  RunRequest({{&datanode_b_, 200}});
  FlushAll();

  EXPECT_EQ(CanonicalTuples(frontend_.Results(*q)),
            (std::vector<std::string>{"(incr.host=B, SUM(incr.delta)=300)",
                                      "(incr.host=C, SUM(incr.delta)=50)"}));
}

TEST_F(FrontendTest, Q2StyleHappenedBeforeJoinAcrossProcesses) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  RunRequest({{&datanode_b_, 100}, {&datanode_c_, 50}});
  FlushAll();

  EXPECT_EQ(CanonicalTuples(frontend_.Results(*q)),
            (std::vector<std::string>{"(cl.procName=FSread4m, SUM(incr.delta)=150)"}));
}

TEST_F(FrontendTest, SeriesSeparatesIntervals) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select SUM(incr.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  RunRequest({{&datanode_b_, 10}});
  FlushAll();
  RunRequest({{&datanode_b_, 20}});
  FlushAll();

  auto series = frontend_.Series(*q);
  ASSERT_EQ(series.size(), 2u);
  auto it = series.begin();
  EXPECT_EQ(it->second[0].Get("SUM(incr.delta)").int_value(), 10);
  ++it;
  EXPECT_EQ(it->second[0].Get("SUM(incr.delta)").int_value(), 20);
  // Totals merge the intervals.
  EXPECT_EQ(frontend_.Results(*q)[0].Get("SUM(incr.delta)").int_value(), 30);
}

TEST_F(FrontendTest, StreamingQueryDeliversRows) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select incr.delta");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  RunRequest({{&datanode_b_, 5}, {&datanode_b_, 6}});
  FlushAll();
  EXPECT_EQ(CanonicalTuples(frontend_.Results(*q)),
            (std::vector<std::string>{"(incr.delta=5)", "(incr.delta=6)"}));
}

TEST_F(FrontendTest, UninstallStopsCollection) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select COUNT");
  ASSERT_TRUE(q.ok());
  RunRequest({{&datanode_b_, 1}});
  FlushAll();
  EXPECT_EQ(frontend_.Results(*q)[0].Get("COUNT").int_value(), 1);

  ASSERT_TRUE(frontend_.Uninstall(*q).ok());
  EXPECT_FALSE(tp_incr_b_->enabled());
  RunRequest({{&datanode_b_, 1}});
  FlushAll();
  // Results frozen at the pre-uninstall state.
  EXPECT_EQ(frontend_.Results(*q)[0].Get("COUNT").int_value(), 1);
}

TEST_F(FrontendTest, QueriesImposeNoOverheadWhenUninstalled) {
  // "Pivot Tracing queries impose truly no overhead when disabled" — the
  // tracepoint fast path stays disabled until a weave arrives.
  EXPECT_FALSE(tp_client_->enabled());
  EXPECT_FALSE(tp_incr_b_->enabled());
  RunRequest({{&datanode_b_, 100}});
  EXPECT_EQ(client_.agent->emitted_tuples(), 0u);
  EXPECT_EQ(datanode_b_.agent->emitted_tuples(), 0u);
}

TEST_F(FrontendTest, TwoQueriesRunIndependently) {
  Result<uint64_t> q1 = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select COUNT");
  Result<uint64_t> q2 = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select SUM(incr.delta)");
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  RunRequest({{&datanode_b_, 10}, {&datanode_c_, 20}});
  FlushAll();
  EXPECT_EQ(frontend_.Results(*q1)[0].Get("COUNT").int_value(), 2);
  EXPECT_EQ(frontend_.Results(*q2)[0].Get("SUM(incr.delta)").int_value(), 30);

  ASSERT_TRUE(frontend_.Uninstall(*q1).ok());
  RunRequest({{&datanode_b_, 5}});
  FlushAll();
  EXPECT_EQ(frontend_.Results(*q2)[0].Get("SUM(incr.delta)").int_value(), 35);
}

TEST_F(FrontendTest, PartialAggregationReducesReportedTuples) {
  // §4 "Tuple Aggregation": many emitted tuples per interval collapse into
  // one state tuple per (process, group).
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select SUM(incr.delta)");
  ASSERT_TRUE(q.ok());
  for (int i = 0; i < 50; ++i) {
    RunRequest({{&datanode_b_, 1}});
  }
  FlushAll();
  EXPECT_EQ(datanode_b_.agent->emitted_tuples(), 50u);
  EXPECT_EQ(datanode_b_.agent->reported_tuples(), 1u);
  EXPECT_EQ(frontend_.Results(*q)[0].Get("SUM(incr.delta)").int_value(), 50);
}

TEST_F(FrontendTest, InstallRejectsBadQueries) {
  EXPECT_FALSE(frontend_.Install("not a query").ok());
  EXPECT_FALSE(frontend_.Install("From e In NoSuchTracepoint Select e.host").ok());
  EXPECT_FALSE(frontend_.Uninstall(999).ok());
}

TEST_F(FrontendTest, NamedQueryRegistration) {
  ASSERT_TRUE(frontend_
                  .RegisterNamedQuery("QLat",
                                      "From incr In DataNodeMetrics.incrBytesRead "
                                      "Select incr.delta")
                  .ok());
  // Duplicate name rejected.
  EXPECT_FALSE(frontend_.RegisterNamedQuery("QLat", "From e In ClientProtocols").ok());
  // Unparsable rejected.
  EXPECT_FALSE(frontend_.RegisterNamedQuery("Bad", "garbage").ok());
}

TEST_F(FrontendTest, TrimSeriesDropsOldIntervalsOnly) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select SUM(incr.delta)");
  ASSERT_TRUE(q.ok());
  RunRequest({{&datanode_b_, 10}});
  FlushAll();
  int64_t first_interval = clock_.now;
  RunRequest({{&datanode_b_, 20}});
  FlushAll();

  ASSERT_EQ(frontend_.Series(*q).size(), 2u);
  frontend_.TrimSeriesBefore(*q, first_interval + 1);
  auto series = frontend_.Series(*q);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series.begin()->second[0].Get("SUM(incr.delta)").int_value(), 20);
  // Cumulative totals are untouched.
  EXPECT_EQ(frontend_.Results(*q)[0].Get("SUM(incr.delta)").int_value(), 30);

  // query_id 0 trims everything.
  frontend_.TrimSeriesBefore(0, clock_.now + 1);
  EXPECT_TRUE(frontend_.Series(*q).empty());
}

TEST_F(FrontendTest, InstallGateRejectsWarningsUnlessForced) {
  // Division by a literal zero is PT110 — warning severity: the install gate
  // refuses it by default but --force overrides (errors never override).
  const std::string text =
      "From incr In DataNodeMetrics.incrBytesRead Select incr.delta / 0";
  Result<uint64_t> rejected = frontend_.Install(text);
  ASSERT_FALSE(rejected.ok());
  EXPECT_NE(rejected.status().ToString().find("PT110"), std::string::npos)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().ToString().find("force"), std::string::npos);

  Frontend::InstallOptions force;
  force.force = true;
  Result<uint64_t> accepted = frontend_.Install(text, force);
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  // The forced query is live end to end.
  RunRequest({{&datanode_b_, 10}});
  FlushAll();
  EXPECT_FALSE(frontend_.Results(*accepted).empty());
}

TEST_F(FrontendTest, LintReportsWithoutInstalling) {
  Result<analysis::QueryLintResult> lint = frontend_.Lint(
      "From incr In DataNodeMetrics.incrBytesRead Select incr.delta / 0");
  ASSERT_TRUE(lint.ok()) << lint.status().ToString();
  EXPECT_TRUE(lint->report.Has("PT110")) << lint->report.ToString();
  EXPECT_FALSE(lint->report.has_errors());
  // Nothing woven, nothing installed.
  EXPECT_FALSE(tp_incr_b_->enabled());
  EXPECT_TRUE(datanode_b_.registry.WovenQueries().empty());
}

TEST_F(FrontendTest, AgentsRefuseTamperedWireAdvice) {
  // A weave command straight onto the bus, bypassing the frontend's install
  // gate — the advice emits to a foreign query (PT201), the sort of tampering
  // the agent-side re-verification exists to stop.
  WeaveCommand cmd;
  cmd.query_id = 41;
  cmd.advice.emplace_back("DataNodeMetrics.incrBytesRead",
                          AdviceBuilder()
                              .Observe({{"delta", "incr.delta"}})
                              .Emit(99, {"incr.delta"})
                              .Build());
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(cmd)});

  for (MiniProcess* proc : {&client_, &datanode_b_, &datanode_c_}) {
    EXPECT_TRUE(proc->registry.WovenQueries().empty());
    EXPECT_EQ(proc->agent->weaves_refused(), 1u);
  }
  // Nothing fires, nothing is emitted.
  RunRequest({{&datanode_b_, 10}});
  FlushAll();
  EXPECT_EQ(datanode_b_.agent->emitted_tuples(), 0u);
  EXPECT_EQ(frontend_.reports_received(), 0u);

  // A well-formed weave on the same bus still goes through: refusal is
  // per-program, not a poisoned state.
  WeaveCommand good;
  good.query_id = 42;
  good.advice.emplace_back("DataNodeMetrics.incrBytesRead",
                           AdviceBuilder()
                               .Observe({{"delta", "incr.delta"}})
                               .Emit(42, {"incr.delta"})
                               .Build());
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(good)});
  for (MiniProcess* proc : {&client_, &datanode_b_, &datanode_c_}) {
    EXPECT_EQ(proc->registry.WovenQueries(), std::vector<uint64_t>{42});
    EXPECT_EQ(proc->agent->weaves_refused(), 1u);
  }
}

TEST_F(FrontendTest, AgentsRefuseEmptyAdviceWeave) {
  // Garbage that *decodes* (an advice list with an empty program) must still
  // be refused: decode success is not verification.
  WeaveCommand cmd;
  cmd.query_id = 43;
  cmd.advice.emplace_back("DataNodeMetrics.incrBytesRead", AdviceBuilder().Build());
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(cmd)});
  for (MiniProcess* proc : {&client_, &datanode_b_, &datanode_c_}) {
    EXPECT_TRUE(proc->registry.WovenQueries().empty());
    EXPECT_EQ(proc->agent->weaves_refused(), 1u);
  }
}

TEST_F(FrontendTest, EmptyIntervalsPublishNothing) {
  Result<uint64_t> q = frontend_.Install(
      "From incr In DataNodeMetrics.incrBytesRead Select COUNT");
  ASSERT_TRUE(q.ok());
  FlushAll();  // Nothing happened.
  EXPECT_EQ(frontend_.reports_received(), 0u);
  EXPECT_TRUE(frontend_.Series(*q).empty());
}

}  // namespace
}  // namespace pivot
