// Table 5: application-level latency overhead of Pivot Tracing.
//
// The paper stress-tests HDFS with NNBench-derived requests — Read8k (a
// DataNode op), Open / Create / Rename (NameNode ops) — and compares
// end-to-end latency of unmodified HDFS against HDFS with:
//   1. Pivot Tracing enabled (no queries),
//   2. baggage containing 1 tuple, no advice installed,
//   3. baggage containing 60 tuples (~1 kB), no advice installed,
//   4. the §6.1 queries installed,
//   5. the §6.2 queries installed.
// Paper result: <= 0.3% with PT enabled; the worst case is ~16% for Open
// with 60 tuples of baggage (a short CPU-bound request).
//
// This bench measures *real wall-clock* cost (unlike the figure benches,
// which run on simulated time): a miniature in-process HDFS request loop
// performs each op's tracepoint invocations and baggage wire crossings, and
// we report ns/op and % overhead vs. the unmodified loop. The substitution
// for JVM bytecode weaving is runtime advice attachment (DESIGN.md §1), so
// "unmodified" has no tracepoint sites at all, while "PT enabled" has sites
// but no advice — the difference is the probe effect.

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "src/core/tracepoint.h"

namespace pivot {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Simulated application work per op (spin, to mimic a short CPU-bound
// request the way NNBench ops are). Spin counts are calibrated at startup so
// ops take realistic durations — Read8k ~400 µs (DataNode path), metadata
// ops ~100 µs (NameNode lookup) — which is what makes the overhead
// *percentages* comparable to the paper's.
void ApplicationWork(int spins) {
  volatile uint64_t acc = 0;
  for (int i = 0; i < spins; ++i) {
    acc = acc + static_cast<uint64_t>(i) * 2654435761u;
  }
}

int g_read_spins = 0;
int g_meta_spins = 0;

void CalibrateWork() {
  constexpr int kProbe = 2'000'000;
  double best = 1e18;
  // Warm the core and take the fastest of several probes.
  for (int pass = 0; pass < 5; ++pass) {
    int64_t start = NowNanos();
    ApplicationWork(kProbe);
    best = std::min(best, static_cast<double>(NowNanos() - start) / kProbe);
  }
  g_read_spins = static_cast<int>(400'000.0 / best);   // ~400 µs.
  g_meta_spins = static_cast<int>(100'000.0 / best);   // ~100 µs.
}

struct MiniHdfs {
  TracepointRegistry client_registry;
  TracepointRegistry server_registry;
  ProcessRuntime client_rt;
  ProcessRuntime server_rt;
  std::unique_ptr<PTAgent> client_agent;
  std::unique_ptr<PTAgent> server_agent;

  Tracepoint* tp_client_protocols;
  Tracepoint* tp_do_next_op;
  Tracepoint* tp_nn_op;
  Tracepoint* tp_dtp;
  Tracepoint* tp_incr_read;
  Tracepoint* tp_send_response;
  Tracepoint* tp_receive_request;

  explicit MiniHdfs(MessageBus* bus) {
    client_rt.info = {"client-host", "StressTest", 1};
    server_rt.info = {"server-host", "NameNode+DataNode", 2};
    client_agent = std::make_unique<PTAgent>(bus, &client_registry, client_rt.info);
    server_agent = std::make_unique<PTAgent>(bus, &server_registry, server_rt.info);
    client_rt.sink = client_agent.get();
    server_rt.sink = server_agent.get();

    auto define = [](TracepointRegistry* reg, const char* name,
                     std::vector<std::string> exports) {
      TracepointDef def;
      def.name = name;
      def.exports = std::move(exports);
      Result<Tracepoint*> tp = reg->Define(std::move(def));
      return *tp;
    };
    tp_client_protocols = define(&client_registry, "ClientProtocols", {"procName"});
    tp_do_next_op = define(&client_registry, "StressTest.DoNextOp", {"op"});
    tp_receive_request = define(&server_registry, "ReceiveRequest", {"op"});
    tp_nn_op = define(&server_registry, "NN.ClientProtocol", {"op", "src"});
    tp_dtp = define(&server_registry, "DN.DataTransferProtocol", {"op", "src"});
    tp_incr_read = define(&server_registry, "DataNodeMetrics.incrBytesRead", {"delta"});
    tp_send_response = define(&server_registry, "SendResponse", {"op"});
  }

  // One request: client side fires its tracepoints, baggage crosses the wire
  // to the server, the server fires its tracepoints, baggage returns.
  void RunOp(const std::string& op, const Baggage& initial_baggage) {
    ExecutionContext client_ctx(&client_rt);
    client_ctx.set_baggage(initial_baggage);

    tp_client_protocols->Invoke(&client_ctx, {{"procName", Value("StressTest")}});
    tp_do_next_op->Invoke(&client_ctx, {{"op", Value(op)}});
    std::vector<uint8_t> wire = client_ctx.baggage().Serialize();

    ExecutionContext server_ctx(&server_rt);
    if (!wire.empty()) {
      Result<Baggage> baggage = Baggage::Deserialize(wire);
      if (baggage.ok()) {
        server_ctx.set_baggage(std::move(baggage).value());
      }
    }
    tp_receive_request->Invoke(&server_ctx, {{"op", Value(op)}});
    if (op == "read8k") {
      tp_dtp->Invoke(&server_ctx, {{"op", Value("READ")}, {"src", Value("f")}});
      ApplicationWork(g_read_spins);  // Disk-path work.
      tp_incr_read->Invoke(&server_ctx, {{"delta", Value(int64_t{8192})}});
    } else {
      tp_nn_op->Invoke(&server_ctx, {{"op", Value(op)}, {"src", Value("/bench/f")}});
      ApplicationWork(g_meta_spins);  // Short metadata op.
    }
    tp_send_response->Invoke(&server_ctx, {{"op", Value(op)}});
    std::vector<uint8_t> response_wire = server_ctx.baggage().Serialize();

    // Client resumes with the returned baggage.
    if (!response_wire.empty()) {
      Result<Baggage> back = Baggage::Deserialize(response_wire);
      if (back.ok()) {
        client_ctx.set_baggage(std::move(back).value());
      }
    }
  }

  // The "unmodified" loop: same application work, no tracepoint sites, no
  // contexts, no baggage.
  static void RunOpUnmodified(const std::string& op) {
    if (op == "read8k") {
      ApplicationWork(g_read_spins);
    } else {
      ApplicationWork(g_meta_spins);
    }
  }
};

double MeasureNsPerOp(const std::function<void()>& op, int iterations) {
  // Warmup.
  for (int i = 0; i < iterations / 20 + 1; ++i) {
    op();
  }
  int64_t best = INT64_MAX;
  // Two passes; keep the fastest (reduces scheduler noise).
  for (int pass = 0; pass < 2; ++pass) {
    int64_t start = NowNanos();
    for (int i = 0; i < iterations; ++i) {
      op();
    }
    best = std::min(best, NowNanos() - start);
  }
  return static_cast<double>(best) / iterations;
}

// Measures baseline and variant in short interleaved passes, taking the
// fastest pass of each: frequency scaling and scheduler noise hit both sides
// equally and the minima are comparable.
std::pair<double, double> MeasureInterleaved(const std::function<void()>& base,
                                             const std::function<void()>& variant,
                                             int iterations_per_pass, int passes) {
  for (int i = 0; i < iterations_per_pass; ++i) {
    base();
    variant();
  }
  int64_t best_base = INT64_MAX;
  int64_t best_variant = INT64_MAX;
  for (int pass = 0; pass < passes; ++pass) {
    int64_t start = NowNanos();
    for (int i = 0; i < iterations_per_pass; ++i) {
      base();
    }
    best_base = std::min(best_base, NowNanos() - start);
    start = NowNanos();
    for (int i = 0; i < iterations_per_pass; ++i) {
      variant();
    }
    best_variant = std::min(best_variant, NowNanos() - start);
  }
  return {static_cast<double>(best_base) / iterations_per_pass,
          static_cast<double>(best_variant) / iterations_per_pass};
}

Baggage BaggageWithTuples(int n) {
  Baggage baggage;
  for (int i = 0; i < n; ++i) {
    baggage.Pack(900, BagSpec::All(),
                 Tuple{{"v" + std::to_string(i), Value(static_cast<int64_t>(i))}});
  }
  return baggage;
}

}  // namespace
}  // namespace pivot

int main() {
  using namespace pivot;

  CalibrateWork();
  constexpr int kIterations = 3000;
  const std::vector<std::string> kOps = {"read8k", "open", "create", "rename"};

  // ---- Configurations ----
  MessageBus bus;
  TracepointRegistry schema;  // Shared schema for query validation.
  {
    for (const char* name : {"ClientProtocols", "StressTest.DoNextOp", "ReceiveRequest",
                             "NN.ClientProtocol", "DN.DataTransferProtocol",
                             "DataNodeMetrics.incrBytesRead", "SendResponse"}) {
      TracepointDef def;
      def.name = name;
      def.exports = {"op", "src", "delta", "procName"};
      Result<Tracepoint*> tp = schema.Define(std::move(def));
      (void)tp;
    }
  }
  Frontend frontend(&bus, &schema);
  MiniHdfs hdfs(&bus);

  struct Variant {
    std::string name;
    Baggage baggage;
  };
  std::vector<Variant> variants;
  variants.push_back({"PivotTracing enabled", Baggage()});
  variants.push_back({"Baggage - 1 tuple", BaggageWithTuples(1)});
  variants.push_back({"Baggage - 60 tuples", BaggageWithTuples(60)});

  printf("Table 5: latency overheads for an HDFS-style stress test (real wall clock)\n");
  printf("  %d iterations per cell; mini in-process request loop; see bench source.\n\n",
         kIterations);

  auto iterations_for = [&](const std::string& op) {
    return op == "read8k" ? kIterations / 10 : kIterations / 3;
  };

  // Print reference baselines once, for context.
  printf("%-28s", "variant \\ op");
  for (const auto& op : kOps) {
    printf("%12s", op.c_str());
  }
  printf("\n%-28s", "Unmodified [ns/op]");
  for (const auto& op : kOps) {
    printf("%12.0f",
           MeasureNsPerOp([&] { MiniHdfs::RunOpUnmodified(op); }, iterations_for(op)));
  }
  printf("\n");

  BenchJson json("table5_overhead");

  // Every cell measures baseline and instrumented loops in interleaved short
  // passes (best-of-N each), so CPU frequency / thermal drift cancels.
  auto run_variant = [&](const Variant& v) {
    printf("%-28s", v.name.c_str());
    for (const auto& op : kOps) {
      int iters = iterations_for(op);
      auto [base, ns] = MeasureInterleaved([&] { MiniHdfs::RunOpUnmodified(op); },
                                           [&] { hdfs.RunOp(op, v.baggage); }, iters, 12);
      double overhead = (ns - base) / base * 100.0;
      json.Report(v.name + "/" + op, overhead, "pct_overhead");
      printf("%11.1f%%", overhead);
    }
    printf("\n");
  };

  // Control row: unmodified measured against itself — anything within this
  // band is measurement noise on this host.
  {
    printf("%-28s", "(noise floor: self vs self)");
    for (const auto& op : kOps) {
      auto [a, b] = MeasureInterleaved([&] { MiniHdfs::RunOpUnmodified(op); },
                                       [&] { MiniHdfs::RunOpUnmodified(op); },
                                       iterations_for(op), 12);
      printf("%11.1f%%", (b - a) / a * 100.0);
    }
    printf("\n");
  }

  for (const auto& v : variants) {
    run_variant(v);
  }

  // ---- §6.1 queries (replica-selection diagnosis: Q3 and Q6 analogues) ----
  {
    auto q3 = frontend.Install(
        "From dnop In DN.DataTransferProtocol GroupBy dnop.host Select dnop.host, COUNT");
    auto q6 = frontend.Install(
        "From DNop In DN.DataTransferProtocol "
        "Join st In First(StressTest.DoNextOp) On st -> DNop "
        "GroupBy st.host, DNop.host Select st.host, DNop.host, COUNT");
    if (q3.ok() && q6.ok()) {
      run_variant({"Queries - 6.1 (Q3+Q6)", Baggage()});
      (void)frontend.Uninstall(*q3);
      (void)frontend.Uninstall(*q6);
    }
  }

  // ---- §6.2 queries (latency decomposition: Q8 analogue) ----
  {
    auto q8 = frontend.Install(
        "From response In SendResponse "
        "Join request In MostRecent(ReceiveRequest) On request -> response "
        "Select response.time - request.time");
    auto q2 = frontend.Install(
        "From incr In DataNodeMetrics.incrBytesRead "
        "Join cl In First(ClientProtocols) On cl -> incr "
        "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
    if (q8.ok() && q2.ok()) {
      run_variant({"Queries - 6.2 (Q8+Q2)", Baggage()});
      (void)frontend.Uninstall(*q8);
      (void)frontend.Uninstall(*q2);
    }
  }

  printf(
      "\nPaper (Table 5) reference: PT enabled <=0.3%%; 60-tuple baggage up to ~16%% on the\n"
      "shortest CPU-bound op; installed queries 0.3%%-14%%. Expect the same ordering here:\n"
      "near-zero when idle, largest for big baggage / join queries on short ops.\n");
  return 0;
}
