// Property tests for the wire → verifier path: DecodeAdvice must never crash
// on mutated or garbage bytes, and whatever it does accept must survive
// AdviceVerifier/QueryLinter without crashing — the exact invariant the agent
// relies on when it re-verifies advice off the bus before weaving. Run under
// the sanitizer build (scripts/check.sh --sanitize=address) this doubles as
// the memory-safety proof for the decoder and the analyzer.

#include <gtest/gtest.h>

#include "src/analysis/advice_verifier.h"
#include "src/analysis/query_linter.h"
#include "src/common/rand.h"
#include "src/core/advice.h"
#include "src/core/advice_io.h"
#include "src/core/context.h"
#include "src/core/plan.h"

namespace pivot {
namespace {

using analysis::AdviceVerifier;
using analysis::LintPlan;
using analysis::QueryLinter;

// Builds a random (structurally valid) advice program. Field names are drawn
// from a small pool so some programs read columns they produced and others
// read columns they did not — both sides of the PT102 check get exercised.
class AdviceGenerator {
 public:
  explicit AdviceGenerator(uint64_t seed) : rng_(seed) {}

  // `deterministic_sampling` restricts Sample rates to {0, >=1}, which decide
  // without consuming the shared sampling counter — required when the same
  // program runs down two execution paths that must agree tuple-for-tuple.
  Advice::Ptr Random(bool deterministic_sampling = false) {
    AdviceBuilder b;
    if (rng_.NextBool(0.3)) {
      b.Sample(deterministic_sampling
                   ? (rng_.NextBool(0.85) ? 1.5 : 0.0)
                   : rng_.NextDouble() * 1.5);  // Sometimes out of range: PT104 food.
    }
    int ops = static_cast<int>(1 + rng_.NextBelow(6));
    for (int i = 0; i < ops; ++i) {
      switch (rng_.NextBelow(6)) {
        case 0: {
          std::vector<std::pair<std::string, std::string>> vars;
          int n = static_cast<int>(1 + rng_.NextBelow(3));
          for (int v = 0; v < n; ++v) {
            vars.emplace_back(Name(), "t." + Name());
          }
          b.Observe(std::move(vars));
          break;
        }
        case 1:
          b.Unpack(rng_.NextBelow(4 * kBagKeysPerQuery));
          break;
        case 2:
          b.Let(Name(), RandomExpr(2));
          break;
        case 3:
          b.Filter(RandomExpr(2));
          break;
        case 4:
          b.Pack(rng_.NextBelow(4 * kBagKeysPerQuery), RandomSpec(), RandomFields());
          break;
        default:
          b.Emit(rng_.NextBelow(4), RandomFields());
          break;
      }
    }
    return b.Build();
  }

  std::vector<uint8_t> Mutate(std::vector<uint8_t> bytes) {
    int edits = static_cast<int>(1 + rng_.NextBelow(8));
    for (int i = 0; i < edits && !bytes.empty(); ++i) {
      size_t at = rng_.NextBelow(bytes.size());
      switch (rng_.NextBelow(3)) {
        case 0:
          bytes[at] = static_cast<uint8_t>(rng_.NextBelow(256));
          break;
        case 1:
          bytes.erase(bytes.begin() + static_cast<ptrdiff_t>(at));
          break;
        default:
          bytes.insert(bytes.begin() + static_cast<ptrdiff_t>(at),
                       static_cast<uint8_t>(rng_.NextBelow(256)));
          break;
      }
    }
    return bytes;
  }

  std::vector<uint8_t> Garbage() {
    std::vector<uint8_t> bytes(rng_.NextBelow(200));
    for (auto& byte : bytes) {
      byte = static_cast<uint8_t>(rng_.NextBelow(256));
    }
    return bytes;
  }

  Rng* rng() { return &rng_; }

 private:
  std::string Name() {
    static const char* kNames[] = {"x", "y", "host", "delta", "q"};
    return kNames[rng_.NextBelow(5)];
  }

  std::vector<std::string> RandomFields() {
    std::vector<std::string> fields;
    int n = static_cast<int>(rng_.NextBelow(3));
    for (int i = 0; i < n; ++i) {
      fields.push_back("t." + Name());
    }
    return fields;
  }

  BagSpec RandomSpec() {
    switch (rng_.NextBelow(4)) {
      case 0:
        return BagSpec::All();
      case 1:
        return BagSpec::First(static_cast<uint32_t>(1 + rng_.NextBelow(4)));
      case 2:
        return BagSpec::Recent(static_cast<uint32_t>(1 + rng_.NextBelow(4)));
      default:
        return BagSpec::Aggregated(
            {"t." + Name()}, {AggSpec{AggFn::kSum, "t." + Name(), "SUM", false}});
    }
  }

  Expr::Ptr RandomExpr(int depth) {
    if (depth == 0 || rng_.NextBool(0.4)) {
      switch (rng_.NextBelow(3)) {
        case 0:
          return Expr::Field("t." + Name());
        case 1:
          return Expr::Literal(Value(rng_.NextInt(-10, 10)));
        default:
          return Expr::Literal(Value("s" + std::to_string(rng_.NextBelow(3))));
      }
    }
    static const ExprOp kOps[] = {ExprOp::kAdd, ExprOp::kSub, ExprOp::kMul,
                                  ExprOp::kDiv, ExprOp::kMod, ExprOp::kEq,
                                  ExprOp::kLt,  ExprOp::kAnd, ExprOp::kOr};
    return Expr::Binary(kOps[rng_.NextBelow(9)], RandomExpr(depth - 1),
                        RandomExpr(depth - 1));
  }

  Rng rng_;
};

// Decode + analyze without crashing, whatever the bytes were.
void DecodeAndAnalyze(const std::vector<uint8_t>& bytes) {
  size_t pos = 0;
  Advice::Ptr advice;
  if (!DecodeAdvice(bytes.data(), bytes.size(), &pos, &advice)) {
    return;  // Rejecting is always fine; crashing is not.
  }
  ASSERT_LE(pos, bytes.size());
  ASSERT_NE(advice, nullptr);
  (void)AdviceVerifier().Verify(*advice);
  // And through the whole-query path the agent uses before weaving.
  std::vector<std::pair<std::string, Advice::Ptr>> stages;
  stages.emplace_back("fuzz.tp", advice);
  (void)QueryLinter().Lint(1, stages, LintPlan{});
}

class AdviceRoundTripFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdviceRoundTripFuzz, EncodedAdviceDecodesAndVerifiesCleanly) {
  AdviceGenerator gen(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    Advice::Ptr advice = gen.Random();
    std::vector<uint8_t> bytes;
    EncodeAdvice(&bytes, *advice);
    size_t pos = 0;
    Advice::Ptr decoded;
    ASSERT_TRUE(DecodeAdvice(bytes.data(), bytes.size(), &pos, &decoded));
    ASSERT_EQ(pos, bytes.size());
    ASSERT_EQ(decoded->ops().size(), advice->ops().size());
    // The analyzer must accept the program as *analyzable* (diagnostics are
    // expected — these are random programs — but no crash, and the report is
    // deterministic across the round trip).
    std::string before = AdviceVerifier().Verify(*advice).report.ToString();
    std::string after = AdviceVerifier().Verify(*decoded).report.ToString();
    EXPECT_EQ(before, after);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdviceRoundTripFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

class AdviceMutationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdviceMutationFuzz, MutatedBytesNeverCrashDecoderOrVerifier) {
  AdviceGenerator gen(GetParam() * 7919);
  for (int trial = 0; trial < 200; ++trial) {
    Advice::Ptr advice = gen.Random();
    std::vector<uint8_t> bytes;
    EncodeAdvice(&bytes, *advice);
    DecodeAndAnalyze(gen.Mutate(bytes));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdviceMutationFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

class AdviceGarbageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdviceGarbageFuzz, GarbageBytesAreRejectedOrAnalyzedWithoutCrash) {
  AdviceGenerator gen(GetParam() * 104729);
  for (int trial = 0; trial < 500; ++trial) {
    DecodeAndAnalyze(gen.Garbage());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdviceGarbageFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

// ---- Compiled-plan equivalence (docs/PERFORMANCE.md) ----
//
// AdvicePlan::Compile lowers advice into pre-resolved steps; Execute must be
// observationally identical to the reference interpreter Advice::Execute:
// same emitted (query, tuple) sequence, byte-identical serialized baggage,
// and the bytes must survive a Deserialize/Serialize round trip under the
// copy-on-write instance representation. Sampling in (0,1) draws from a
// shared process-global counter, so programs here use only rates that decide
// without consuming it (the probabilistic branch is the same shared
// advice_internal::SampleAccept on both paths).

class CollectSink : public EmitSink {
 public:
  void EmitTuple(uint64_t query_id, const Tuple& t) override {
    emitted.emplace_back(query_id, t);
  }
  std::vector<std::pair<uint64_t, Tuple>> emitted;
};

class PlanEquivalenceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PlanEquivalenceFuzz, PlanMatchesReferenceInterpreter) {
  AdviceGenerator gen(GetParam() * 31337);
  Rng* rng = gen.rng();
  for (int trial = 0; trial < 60; ++trial) {
    Advice::Ptr advice = gen.Random(/*deterministic_sampling=*/true);
    AdvicePlan::Ptr plan = AdvicePlan::Compile(advice);
    ASSERT_NE(plan, nullptr);
    ASSERT_EQ(plan->step_count(), advice->ops().size());

    // Identical starting state on both sides: a baggage with a few packed
    // tuples (copied, so the two contexts cannot influence each other).
    Baggage seed_baggage;
    int packs = static_cast<int>(rng->NextBelow(4));
    for (int i = 0; i < packs; ++i) {
      seed_baggage.Pack(rng->NextBelow(4 * kBagKeysPerQuery), BagSpec::All(),
                        Tuple{{"t.host", Value(rng->NextInt(0, 5))},
                              {"t.delta", Value(rng->NextInt(-100, 100))}});
    }
    Tuple exports{{"x", Value(rng->NextInt(-5, 5))},
                  {"host", Value("h" + std::to_string(rng->NextBelow(3)))},
                  {"delta", Value(rng->NextInt(0, 1000))}};

    CollectSink ref_sink, plan_sink;
    ProcessRuntime ref_rt, plan_rt;
    ref_rt.info = plan_rt.info = {"host", "fuzz", 1};
    ref_rt.sink = &ref_sink;
    plan_rt.sink = &plan_sink;
    ExecutionContext ref_ctx(&ref_rt), plan_ctx(&plan_rt);
    ref_ctx.set_baggage(seed_baggage);
    plan_ctx.set_baggage(seed_baggage);

    advice->Execute(&ref_ctx, exports);
    plan->Execute(&plan_ctx, exports);

    ASSERT_EQ(ref_sink.emitted.size(), plan_sink.emitted.size());
    for (size_t i = 0; i < ref_sink.emitted.size(); ++i) {
      EXPECT_EQ(ref_sink.emitted[i].first, plan_sink.emitted[i].first);
      EXPECT_EQ(ref_sink.emitted[i].second, plan_sink.emitted[i].second);
    }

    std::vector<uint8_t> ref_bytes = ref_ctx.baggage().Serialize();
    std::vector<uint8_t> plan_bytes = plan_ctx.baggage().Serialize();
    EXPECT_EQ(ref_bytes, plan_bytes);

    // Round trip under COW: deserializing seeds per-instance caches from the
    // wire, and re-serializing must reproduce the bytes exactly.
    Result<Baggage> round = Baggage::Deserialize(plan_bytes);
    ASSERT_TRUE(round.ok());
    EXPECT_EQ((*round).Serialize(), plan_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanEquivalenceFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

TEST(AdviceVerifierGate, VerifierRejectsDegenerateDecodes) {
  // The one guarantee the fuzzers cannot assert generically: a decode that
  // yields an *empty* program (the most common "successful" garbage decode)
  // must be rejected by analysis, never woven.
  Advice::Ptr empty = AdviceBuilder().Build();
  std::vector<std::pair<std::string, Advice::Ptr>> stages;
  stages.emplace_back("tp", empty);
  auto lint = QueryLinter().Lint(1, stages, LintPlan{});
  EXPECT_TRUE(lint.report.Has("PT101"));
  EXPECT_TRUE(lint.report.has_errors());

  // Null advice (a stage that failed to decode at all) is likewise fatal.
  std::vector<std::pair<std::string, Advice::Ptr>> null_stage;
  null_stage.emplace_back("tp", nullptr);
  auto null_lint = QueryLinter().Lint(1, null_stage, LintPlan{});
  EXPECT_TRUE(null_lint.report.Has("PT101"));
  EXPECT_TRUE(null_lint.report.has_errors());
}

}  // namespace
}  // namespace pivot
