# Empty dependencies file for pivot_shell.
# This may be replaced when dependencies are built.
