// Binary wire codec for values, tuples and baggage building blocks.
//
// The paper's prototype serialized baggage with protocol buffers; this repo
// substitutes a hand-rolled varint + length-prefix codec with the same
// properties (compact, platform-independent, linear in payload size). See
// DESIGN.md §1. All Get* functions are safe on untrusted input: they return
// false on truncated or malformed bytes and never read past `size`.

#ifndef PIVOT_SRC_CORE_WIRE_H_
#define PIVOT_SRC_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/varint.h"
#include "src/core/tuple.h"
#include "src/core/value.h"

namespace pivot {

// Length-prefixed UTF-8/byte string.
void PutString(std::vector<uint8_t>* out, std::string_view s);
bool GetString(const uint8_t* data, size_t size, size_t* pos, std::string* s);

// Value: 1-byte type tag + payload (zig-zag varint / raw IEEE754 LE / string).
void PutValue(std::vector<uint8_t>* out, const Value& v);
bool GetValue(const uint8_t* data, size_t size, size_t* pos, Value* v);

// Tuple: field count + (name, value) pairs. Symbol ids are process-local, so
// the wire carries names; decode re-interns through the global SymbolTable.
void PutTuple(std::vector<uint8_t>* out, const Tuple& t);
bool GetTuple(const uint8_t* data, size_t size, size_t* pos, Tuple* t);

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_WIRE_H_
