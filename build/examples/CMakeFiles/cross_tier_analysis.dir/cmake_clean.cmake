file(REMOVE_RECURSE
  "CMakeFiles/cross_tier_analysis.dir/cross_tier_analysis.cpp.o"
  "CMakeFiles/cross_tier_analysis.dir/cross_tier_analysis.cpp.o.d"
  "cross_tier_analysis"
  "cross_tier_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_tier_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
