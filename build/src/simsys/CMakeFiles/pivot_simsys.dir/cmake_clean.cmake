file(REMOVE_RECURSE
  "CMakeFiles/pivot_simsys.dir/sim_env.cc.o"
  "CMakeFiles/pivot_simsys.dir/sim_env.cc.o.d"
  "CMakeFiles/pivot_simsys.dir/sim_resource.cc.o"
  "CMakeFiles/pivot_simsys.dir/sim_resource.cc.o.d"
  "CMakeFiles/pivot_simsys.dir/sim_rpc.cc.o"
  "CMakeFiles/pivot_simsys.dir/sim_rpc.cc.o.d"
  "CMakeFiles/pivot_simsys.dir/sim_world.cc.o"
  "CMakeFiles/pivot_simsys.dir/sim_world.cc.o.d"
  "libpivot_simsys.a"
  "libpivot_simsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_simsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
