// SimEnvironment: a deterministic discrete-event simulation kernel.
//
// This is the substrate that stands in for the paper's 8-node cluster (see
// DESIGN.md §1): simulated time in microseconds, an event queue ordered by
// (time, insertion sequence), and helpers to run the clock forward. All of
// the Hadoop-stack simulation and every figure-reproducing bench execute on
// top of it, which makes each experiment exactly repeatable.

#ifndef PIVOT_SRC_SIMSYS_SIM_ENV_H_
#define PIVOT_SRC_SIMSYS_SIM_ENV_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace pivot {

inline constexpr int64_t kMicrosPerSecond = 1'000'000;
inline constexpr int64_t kMicrosPerMilli = 1'000;

class SimEnvironment {
 public:
  SimEnvironment() = default;
  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  int64_t now_micros() const { return now_; }

  // Schedules `fn` to run `delay_micros` from now (clamped to now).
  void Schedule(int64_t delay_micros, std::function<void()> fn) {
    ScheduleAt(now_ + (delay_micros < 0 ? 0 : delay_micros), std::move(fn));
  }

  // Schedules `fn` at an absolute simulated time (clamped to now).
  void ScheduleAt(int64_t time_micros, std::function<void()> fn);

  // Runs one event; returns false if the queue is empty.
  bool Step();

  // Runs events until simulated time would exceed `time_micros` (events at
  // exactly `time_micros` still run) or the queue drains.
  void RunUntil(int64_t time_micros);

  // Runs every pending event (including newly scheduled ones) to quiescence.
  void RunAll();

  size_t pending_events() const { return queue_.size(); }
  uint64_t executed_events() const { return executed_; }

 private:
  struct Event {
    int64_t time;
    uint64_t seq;  // FIFO tie-break for determinism.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  int64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_SIMSYS_SIM_ENV_H_
