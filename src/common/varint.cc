#include "src/common/varint.h"

namespace pivot {

void PutVarint64(std::vector<uint8_t>* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<uint8_t>(value) | 0x80);
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

void PutVarintSigned64(std::vector<uint8_t>* out, int64_t value) {
  PutVarint64(out, ZigZagEncode(value));
}

bool GetVarint64(const uint8_t* data, size_t size, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  size_t p = *pos;
  while (p < size && shift <= 63) {
    uint8_t byte = data[p++];
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *value = result;
      *pos = p;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool GetVarintSigned64(const uint8_t* data, size_t size, size_t* pos, int64_t* value) {
  uint64_t raw = 0;
  if (!GetVarint64(data, size, pos, &raw)) {
    return false;
  }
  *value = ZigZagDecode(raw);
  return true;
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

}  // namespace pivot
