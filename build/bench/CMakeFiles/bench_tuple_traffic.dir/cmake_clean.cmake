file(REMOVE_RECURSE
  "CMakeFiles/bench_tuple_traffic.dir/bench_tuple_traffic.cc.o"
  "CMakeFiles/bench_tuple_traffic.dir/bench_tuple_traffic.cc.o.d"
  "bench_tuple_traffic"
  "bench_tuple_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuple_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
