#include "src/core/tracepoint.h"

#include <algorithm>
#include <chrono>

namespace pivot {

namespace {

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

namespace {

// Pre-interned ids of the default export columns, so the per-fire appends
// below skip the interner's hash lookup.
struct DefaultExportSymbols {
  SymbolId host = InternSymbol("host");
  SymbolId procname = InternSymbol("procname");
  SymbolId procid = InternSymbol("procid");
  SymbolId timestamp = InternSymbol("timestamp");
  SymbolId time = InternSymbol("time");
  SymbolId tracepoint = InternSymbol("tracepoint");
};

}  // namespace

void Tracepoint::InvokeSlow(ExecutionContext* ctx, const AdviceSet* set,
                            std::vector<Tuple::Field> exports) const {
  static const DefaultExportSymbols sym;
  // Default exports (§3): host, timestamp, process id, process name, and the
  // tracepoint definition. "time" aliases "timestamp" — §6.2 queries use the
  // built-in `time` variable.
  int64_t now = 0;
  if (ctx != nullptr && ctx->runtime() != nullptr) {
    const ProcessRuntime& rt = *ctx->runtime();
    now = rt.NowMicros();
    exports.push_back({sym.host, Value(rt.info.host)});
    exports.push_back({sym.procname, Value(rt.info.process_name)});
    exports.push_back({sym.procid, Value(rt.info.process_id)});
  }
  exports.push_back({sym.timestamp, Value(now)});
  exports.push_back({sym.time, Value(now)});
  exports.push_back({sym.tracepoint, Value(def_.name)});
  Tuple tuple(std::move(exports));

  if (ctx != nullptr && ctx->recorder() != nullptr) {
    EventId ev = ctx->AdvanceEvent();
    ctx->recorder()->Record(ObservedEvent{ctx->trace_id(), ev, def_.name, tuple});
  }

  if (set != nullptr) {
    woven_fires_.fetch_add(1, std::memory_order_relaxed);
    // Advice execution time is real wall clock even under simulated time:
    // it is the probe effect on the host, the quantity Table 5 bounds.
    int64_t start = MonotonicNanos();
    for (const WovenEntry& entry : set->advice) {
      entry.plan->Execute(ctx, tuple);
    }
    advice_nanos_.fetch_add(static_cast<uint64_t>(MonotonicNanos() - start),
                            std::memory_order_relaxed);
  }
}

TracepointRegistry::~TracepointRegistry() = default;

Result<Tracepoint*> TracepointRegistry::Define(TracepointDef def) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracepoints_.find(def.name);
  if (it != tracepoints_.end()) {
    return AlreadyExistsError("tracepoint already defined: " + def.name);
  }
  auto tp = std::make_unique<Tracepoint>(std::move(def));
  Tracepoint* raw = tp.get();
  tracepoints_.emplace(raw->name(), std::move(tp));
  // Deferred weaving: advice targeting this name may already be registered
  // (a standing query installed before this subsystem initialized).
  RebuildLocked(raw);
  return raw;
}

Tracepoint* TracepointRegistry::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tracepoints_.find(name);
  return it == tracepoints_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TracepointRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tracepoints_.size());
  for (const auto& [name, tp] : tracepoints_) {
    names.push_back(name);
  }
  return names;
}

Status TracepointRegistry::WeaveQuery(
    uint64_t query_id, const std::vector<std::pair<std::string, Advice::Ptr>>& advice) {
  std::lock_guard<std::mutex> lock(mu_);
  if (woven_.count(query_id) != 0) {
    return AlreadyExistsError("query already woven: " + std::to_string(query_id));
  }
  // Validate everything before changing anything.
  for (const auto& [tp_name, adv] : advice) {
    if (adv == nullptr) {
      return InvalidArgumentError("null advice for tracepoint: " + tp_name);
    }
  }
  // Advice naming tracepoints this registry does not (yet) define is kept and
  // weaves when/if the tracepoint is defined later (deferred weaving): in a
  // distributed system every process receives the full weave command but
  // hosts only a subset of its tracepoints, and subsystems may initialize
  // after standing queries were installed. Compile-time validation against
  // the schema registry catches genuinely unknown names.
  woven_[query_id] = advice;
  for (const auto& [tp_name, adv] : advice) {
    auto it = tracepoints_.find(tp_name);
    if (it != tracepoints_.end()) {
      RebuildLocked(it->second.get());
    }
  }
  return Status::Ok();
}

void TracepointRegistry::UnweaveQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = woven_.find(query_id);
  if (it == woven_.end()) {
    return;
  }
  std::vector<std::string> affected;
  for (const auto& [tp_name, adv] : it->second) {
    affected.push_back(tp_name);
  }
  woven_.erase(it);
  for (const auto& tp_name : affected) {
    auto tp_it = tracepoints_.find(tp_name);
    if (tp_it != tracepoints_.end()) {
      RebuildLocked(tp_it->second.get());
    }
  }
}

std::vector<TracepointStatsRow> TracepointRegistry::StatsSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TracepointStatsRow> rows;
  rows.reserve(tracepoints_.size());
  for (const auto& [name, tp] : tracepoints_) {
    rows.push_back({name, tp->fires(), tp->woven_fires(), tp->advice_nanos()});
  }
  return rows;
}

std::vector<uint64_t> TracepointRegistry::WovenQueries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(woven_.size());
  for (const auto& [id, advice] : woven_) {
    ids.push_back(id);
  }
  return ids;
}

void TracepointRegistry::RebuildLocked(Tracepoint* tp) {
  auto set = std::make_unique<AdviceSet>();
  for (const auto& [query_id, advice_list] : woven_) {
    for (const auto& [tp_name, adv] : advice_list) {
      if (tp_name == tp->name()) {
        // Weave-time plan compilation: all name resolution happens here, once,
        // off the fire path.
        set->advice.push_back(WovenEntry{query_id, adv, AdvicePlan::Compile(adv)});
      }
    }
  }
  const AdviceSet* next = set->advice.empty() ? nullptr : set.get();
  const AdviceSet* prev = tp->advice_.exchange(next, std::memory_order_acq_rel);
  if (next != nullptr) {
    live_.push_back(std::move(set));
  }
  // Move the displaced set to the graveyard: in-flight invocations may still
  // be reading it (see class comment on the quiescence shortcut).
  if (prev != nullptr) {
    for (auto it = live_.begin(); it != live_.end(); ++it) {
      if (it->get() == prev) {
        retired_.push_back(std::move(*it));
        live_.erase(it);
        break;
      }
    }
  }
}

}  // namespace pivot
