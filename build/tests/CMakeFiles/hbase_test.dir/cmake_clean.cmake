file(REMOVE_RECURSE
  "CMakeFiles/hbase_test.dir/hbase_test.cc.o"
  "CMakeFiles/hbase_test.dir/hbase_test.cc.o.d"
  "hbase_test"
  "hbase_test.pdb"
  "hbase_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbase_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
