// Fig 10: baggage micro-benchmarks.
//
// "Latency micro-benchmark results for packing, unpacking, serializing, and
// deserializing randomly-generated 8-byte tuples", for baggage already
// containing 1..256 tuples. The paper reports (approximately):
//   (a) pack 1 tuple:      ~0.5 µs  ->  ~4.5 µs at 256 tuples
//   (b) unpack all tuples: ~0.3 µs  ->  ~0.9 µs
//   (c) serialize:         ~0.4 µs  ->  ~13 µs
//   (d) deserialize:       ~1 µs    ->  ~20 µs
// The reproduction target is the *shape*: near-constant-per-tuple costs,
// (de)serialization linear in tuple count, deserialize > serialize.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "src/common/rand.h"
#include "src/core/baggage.h"
#include "src/core/tracepoint.h"

namespace pivot {
namespace {

constexpr BagKey kBag = 7;

// One 8-byte tuple: a single int64 column, matching the paper's setup.
Tuple RandomTuple(Rng* rng) {
  return Tuple{{"v", Value(static_cast<int64_t>(rng->NextUint64()))}};
}

Baggage MakeBaggage(int tuples, Rng* rng) {
  Baggage baggage;
  for (int i = 0; i < tuples; ++i) {
    baggage.Pack(kBag, BagSpec::All(), RandomTuple(rng));
  }
  return baggage;
}

void BM_Pack1Tuple(benchmark::State& state) {
  Rng rng(1);
  Baggage baggage = MakeBaggage(static_cast<int>(state.range(0)), &rng);
  Tuple t = RandomTuple(&rng);
  // Manual timing: the baggage copy that keeps the tuple count fixed at N
  // across iterations is excluded from the measurement.
  for (auto _ : state) {
    Baggage copy = baggage;
    auto start = std::chrono::steady_clock::now();
    copy.Pack(kBag, BagSpec::All(), t);
    auto end = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(copy);
    state.SetIterationTime(std::chrono::duration<double>(end - start).count());
  }
}

void BM_UnpackAll(benchmark::State& state) {
  Rng rng(2);
  Baggage baggage = MakeBaggage(static_cast<int>(state.range(0)), &rng);
  for (auto _ : state) {
    auto tuples = baggage.Unpack(kBag);
    benchmark::DoNotOptimize(tuples);
  }
}

void BM_Serialize(benchmark::State& state) {
  Rng rng(3);
  Baggage baggage = MakeBaggage(static_cast<int>(state.range(0)), &rng);
  size_t bytes = baggage.Serialize().size();
  for (auto _ : state) {
    auto out = baggage.Serialize();
    benchmark::DoNotOptimize(out);
  }
  state.counters["serialized_bytes"] =
      benchmark::Counter(static_cast<double>(bytes), benchmark::Counter::kDefaults);
}

void BM_Deserialize(benchmark::State& state) {
  Rng rng(4);
  Baggage baggage = MakeBaggage(static_cast<int>(state.range(0)), &rng);
  std::vector<uint8_t> bytes = baggage.Serialize();
  for (auto _ : state) {
    Result<Baggage> decoded = Baggage::Deserialize(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}

// The §5 zero-probe-effect claim: an unwoven tracepoint costs one relaxed
// atomic load and a branch. (Our substitution for bytecode weaving makes
// this "near-zero" rather than literally zero; this measures the "near".)
void BM_DisabledTracepointInvoke(benchmark::State& state) {
  TracepointRegistry registry;
  TracepointDef def;
  def.name = "X";
  def.exports = {"v"};
  Tracepoint* tp = *registry.Define(std::move(def));
  ProcessRuntime runtime;
  runtime.info = {"host", "proc", 1};
  ExecutionContext ctx(&runtime);
  for (auto _ : state) {
    tp->Invoke(&ctx, {{"v", Value(int64_t{1})}});
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_DisabledTracepointInvoke);

void BM_EnabledTracepointCountQuery(benchmark::State& state) {
  // For contrast: a woven COUNT-style advice (observe + emit to a null sink).
  TracepointRegistry registry;
  TracepointDef def;
  def.name = "X";
  def.exports = {"v"};
  Tracepoint* tp = *registry.Define(std::move(def));
  Advice::Ptr advice = AdviceBuilder().Observe({{"v", "x.v"}}).Emit(1, {}).Build();
  Status weave_status = registry.WeaveQuery(1, {{"X", advice}});
  (void)weave_status;
  ProcessRuntime runtime;
  runtime.info = {"host", "proc", 1};
  ExecutionContext ctx(&runtime);
  for (auto _ : state) {
    tp->Invoke(&ctx, {{"v", Value(int64_t{1})}});
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_EnabledTracepointCountQuery);

void TupleRange(benchmark::internal::Benchmark* b) {
  for (int n : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    b->Arg(n);
  }
}

// Fixed iteration count: the untimed per-iteration baggage copy that keeps N
// constant would otherwise dominate wall-clock time at large N.
BENCHMARK(BM_Pack1Tuple)->Apply(TupleRange)->UseManualTime()->Iterations(20000);
BENCHMARK(BM_UnpackAll)->Apply(TupleRange);
BENCHMARK(BM_Serialize)->Apply(TupleRange);
BENCHMARK(BM_Deserialize)->Apply(TupleRange);

// Console reporter that also captures every run into a BenchJson, so
// check.sh/CI get BENCH_fig10_baggage.json alongside the usual table.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(BenchJson* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (!run.error_occurred) {
        json_->Report(run.benchmark_name(), run.GetAdjustedRealTime(),
                      benchmark::GetTimeUnitString(run.time_unit));
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  BenchJson* json_;
};

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  pivot::BenchJson json("fig10_baggage");
  pivot::JsonCaptureReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  json.Write();
  return 0;
}
