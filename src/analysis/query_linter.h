// QueryLinter: whole-query static analysis across advice programs.
//
// The AdviceVerifier checks one straight-line program; the linter checks the
// properties that only exist *between* programs and against the deployment:
// every Unpack'd bag is Pack'ed by a causally-earlier stage (PT106 via
// propagated bag knowledge, PT202 for pack/unpack cycles), bag keys stay
// inside the owning query's range (PT204) and don't collide with queries
// already installed (PT203), one bag isn't packed under conflicting specs
// (PT205), the result plan only consumes columns some advice emits (PT206),
// packed columns are actually consumed downstream (PT207), and the query's
// baggage cost is classified bounded / unbounded-but-sampled / unbounded
// (PT208/PT209, the §4 "full table scan" risk).
//
// When a propagation graph is supplied (LintOptions::propagation), the linter
// additionally checks the query against the *deployment*: every `->` join
// needs a baggage-forwarding path between its components (PT301, with PT302
// pointing at dropping boundaries), tracepoints should be reachable from a
// client entry point (PT303), and All-semantics packs get a path-aware
// worst-case growth bound checked against a budget (PT305).
//
// The linter deliberately takes primitives (query id + (tracepoint, advice)
// pairs + a LintPlan) instead of CompiledQuery so the analysis library
// depends only on core; the query layer adapts CompiledQuery to this API
// (compiler.h LintCompiledQuery), and agents adapt wire WeaveCommands.

#ifndef PIVOT_SRC_ANALYSIS_QUERY_LINTER_H_
#define PIVOT_SRC_ANALYSIS_QUERY_LINTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/advice_verifier.h"
#include "src/analysis/causality_graph.h"
#include "src/analysis/diagnostics.h"
#include "src/core/advice.h"
#include "src/core/aggregation.h"
#include "src/core/baggage.h"
#include "src/core/tracepoint.h"

namespace pivot {
namespace analysis {

// How much tuple traffic the query can put into the baggage (§4). Bounded
// means every Pack op retains a statically-bounded number of tuples
// (FIRST/RECENT/aggregate); unbounded means some kAll pack can retain one
// tuple per tracepoint invocation — the full-table-scan case — and
// kUnboundedSampled means every such pack sits behind advice-level sampling.
enum class BaggageCost : uint8_t {
  kBounded = 0,
  kUnboundedSampled = 1,
  kUnbounded = 2,
};

// "bounded" / "unbounded-sampled" / "unbounded".
const char* BaggageCostName(BaggageCost c);

// Default PT305 budget (tuple-cells of worst-case All-semantics growth per
// request). See LintOptions::baggage_budget.
inline constexpr size_t kDefaultBaggageBudget = 256;

// The result-side plan the linter checks emitted columns against — a
// core-layer mirror of the agent protocol's ResultPlan (the adapter copies
// fields across so analysis does not depend on the agent library).
struct LintPlan {
  bool aggregated = false;
  std::vector<std::string> group_fields;
  std::vector<AggSpec> aggs;                // from_state marks pushed-down aggs.
  std::vector<std::string> output_columns;  // Streaming queries.
};

struct LintOptions {
  // Tracepoint schema for Observe-source checking (PT105). Null skips: the
  // agent-side re-verify uses its local registry, the frontend the global one.
  const TracepointRegistry* schema = nullptr;

  // When false, dead-packed-column findings (PT207) are suppressed: the
  // compiler was asked not to push projections, so fat packs are intentional
  // (equivalence tests, Explain counting shadows).
  bool assume_projection_pushdown = true;

  // Bags of queries already installed, keyed by bag -> owning query id.
  // Enables the cross-query collision check (PT203).
  const std::map<BagKey, uint64_t>* installed_bags = nullptr;

  // The deployment's propagation graph (causality_graph.h). Null — or a
  // graph with no declared boundaries — disables the reachability passes
  // (PT301/PT302/PT303/PT305), conservatively: a missing model must never
  // reject a query. Tracepoints resolve to components via the schema's
  // TracepointDef::component first, then the registry's anchors; tracepoints
  // with no known component are skipped by every reachability check.
  const PropagationRegistry* propagation = nullptr;

  // PT305 budget: the worst-case All-semantics baggage growth bound
  // (forwarding boundary crossings × packed tuple width) above which the
  // query is an install-time error. Generous by default — the paper's own
  // queries bound out in the tens on the full Hadoop topology.
  size_t baggage_budget = kDefaultBaggageBudget;
};

struct QueryLintResult {
  Report report;
  BaggageCost cost = BaggageCost::kBounded;

  // Everything the query packs, with statically-known column sets (after
  // cross-stage propagation). Feeds Frontend install bookkeeping for PT203.
  std::map<BagKey, BagColumns> bags;
};

class QueryLinter {
 public:
  QueryLinter() = default;
  explicit QueryLinter(LintOptions options) : options_(std::move(options)) {}

  // Lints one query: `advice` is the (tracepoint name, advice) list that
  // would be woven, `plan` the result-side plan. Never fails hard — broken
  // queries produce error diagnostics.
  QueryLintResult Lint(uint64_t query_id,
                       const std::vector<std::pair<std::string, Advice::Ptr>>& advice,
                       const LintPlan& plan) const;

 private:
  LintOptions options_;
};

}  // namespace analysis
}  // namespace pivot

#endif  // PIVOT_SRC_ANALYSIS_QUERY_LINTER_H_
