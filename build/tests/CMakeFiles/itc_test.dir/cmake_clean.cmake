file(REMOVE_RECURSE
  "CMakeFiles/itc_test.dir/itc_test.cc.o"
  "CMakeFiles/itc_test.dir/itc_test.cc.o.d"
  "itc_test"
  "itc_test.pdb"
  "itc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/itc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
