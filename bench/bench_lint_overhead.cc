// Cost of the static-analysis gate (src/analysis/) on the install path.
//
// Verification runs once per install — never per tracepoint invocation — so
// it cannot affect the Table 5 numbers. This bench quantifies the one-shot
// cost anyway: compile-without-verify vs compile-with-verify vs the linter
// alone, over the paper's Q2-style join (the deepest advice chain the
// examples install) and the agent-side re-verification of a decoded weave.
// Expect the whole gate in the microseconds; parsing dominates compilation.
//
// The reachability passes (PT301/PT303/PT305) add graph searches over the
// system propagation graph, so this binary also runs as a regression gate:
// after the google-benchmark suite, it lints a corpus of paper queries
// against the *full* Hadoop topology (HDFS + HBase + YARN + MapReduce, every
// boundary declared) and fails if any single query's install-time analysis
// exceeds --max-lint-micros (default 1000, the ISSUE's 1 ms budget).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "src/analysis/query_linter.h"
#include "src/analysis/reachability.h"
#include "src/hadoop/cluster.h"
#include "src/query/compiler.h"
#include "src/query/parser.h"

namespace pivot {
namespace {

constexpr const char* kQ2 =
    "From incr In DataNodeMetrics.incrBytesRead "
    "Join cl In First(ClientProtocols) On cl -> incr "
    "GroupBy cl.procName Select cl.procName, SUM(incr.delta)";

TracepointRegistry* Schema() {
  static TracepointRegistry* schema = [] {
    auto* s = new TracepointRegistry();
    TracepointDef client;
    client.name = "ClientProtocols";
    client.exports = {"procName"};
    (void)s->Define(client);
    TracepointDef incr;
    incr.name = "DataNodeMetrics.incrBytesRead";
    incr.exports = {"delta"};
    (void)s->Define(incr);
    return s;
  }();
  return schema;
}

// The full simulated deployment: every component, every declared boundary.
// Shared by the reachability benchmarks and the gate in main().
HadoopCluster* Cluster() {
  static HadoopCluster* cluster = new HadoopCluster(HadoopClusterConfig{});
  return cluster;
}

void BM_CompileNoVerify(benchmark::State& state) {
  Query q = *ParseQuery(kQ2);
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(Schema(), nullptr, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(q, 1));
  }
}
BENCHMARK(BM_CompileNoVerify);

void BM_CompileWithVerify(benchmark::State& state) {
  Query q = *ParseQuery(kQ2);
  QueryCompiler compiler(Schema(), nullptr);  // verify defaults on.
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler.Compile(q, 1));
  }
}
BENCHMARK(BM_CompileWithVerify);

void BM_LintAlone(benchmark::State& state) {
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(Schema(), nullptr, options);
  CompiledQuery compiled = *compiler.Compile(*ParseQuery(kQ2), 1);
  analysis::LintOptions lint_options;
  lint_options.schema = Schema();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LintCompiledQuery(compiled, lint_options));
  }
}
BENCHMARK(BM_LintAlone);

void BM_LintWithReachability(benchmark::State& state) {
  // Same lint, plus the propagation graph of the full deployment: PT301 join
  // reachability, PT303 entry reachability, PT305 path-aware growth bounds.
  SimWorld* world = Cluster()->world();
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(world->schema(), nullptr, options);
  CompiledQuery compiled = *compiler.Compile(*ParseQuery(kQ2), 1);
  analysis::LintOptions lint_options;
  lint_options.schema = world->schema();
  lint_options.propagation = &world->propagation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(LintCompiledQuery(compiled, lint_options));
  }
}
BENCHMARK(BM_LintWithReachability);

void BM_AuditTopology(benchmark::State& state) {
  // The whole-topology audit behind the shell `topology` command.
  const analysis::PropagationRegistry& graph = Cluster()->world()->propagation();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::AuditTopology(graph));
  }
}
BENCHMARK(BM_AuditTopology);

void BM_AgentReverify(benchmark::State& state) {
  // What every agent pays per weave command: schema-less, no dead-column
  // heuristics (mirrors PTAgent::HandleCommand).
  QueryCompiler::Options options;
  options.verify = false;
  QueryCompiler compiler(Schema(), nullptr, options);
  CompiledQuery compiled = *compiler.Compile(*ParseQuery(kQ2), 1);
  analysis::LintOptions lint_options;
  lint_options.assume_projection_pushdown = false;
  analysis::LintPlan plan;
  plan.aggregated = compiled.aggregated;
  plan.group_fields = compiled.group_fields;
  plan.aggs = compiled.aggs;
  plan.output_columns = compiled.output_columns;
  analysis::QueryLinter linter(lint_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linter.Lint(compiled.query_id, compiled.advice, plan));
  }
}
BENCHMARK(BM_AgentReverify);

// ---- The ≤1 ms install-time analysis gate ----

// Paper-style queries spanning the deployment: plain aggregation, the Fig 1
// join, a three-stage HDFS join, and a cross-system MapReduce/YARN join —
// the widest reachability searches the corpus triggers.
constexpr const char* kGateCorpus[] = {
    kQ2,
    "From DNop In DN.DataTransferProtocol "
    "Join getloc In NN.GetBlockLocations On getloc -> DNop "
    "Join st In StressTest.DoNextOp On st -> getloc "
    "GroupBy DNop.host, getloc.replicas Select DNop.host, getloc.replicas, COUNT",
    "From d In MR.MapTaskDone "
    "Join c In MostRecent(YARN.ContainerStart) On c -> d "
    "Select d.time - c.time",
    "From response In HBase.ResponseReceived "
    "Join request In MostRecent(HBase.RequestSent) On request -> response "
    "Select response.time - request.time As latencyMicros",
};

int RunLintGate(double max_lint_micros) {
  SimWorld* world = Cluster()->world();
  analysis::LintOptions lint_options;
  lint_options.schema = world->schema();
  lint_options.propagation = &world->propagation();

  printf("\nInstall-time analysis gate: full Hadoop topology (%zu components, %zu boundaries)\n",
         world->propagation().Components().size(), world->propagation().Edges().size());
  constexpr int kIters = 200;
  constexpr int kPasses = 5;
  bool failed = false;
  for (const char* text : kGateCorpus) {
    QueryCompiler::Options options;
    options.verify = false;
    QueryCompiler compiler(world->schema(), nullptr, options);
    CompiledQuery compiled = *compiler.Compile(*ParseQuery(text), 1);
    double best_micros = 1e100;
    for (int pass = 0; pass < kPasses; ++pass) {
      auto start = std::chrono::steady_clock::now();
      for (int i = 0; i < kIters; ++i) {
        benchmark::DoNotOptimize(LintCompiledQuery(compiled, lint_options));
      }
      double micros = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      kIters;
      if (micros < best_micros) {
        best_micros = micros;
      }
    }
    bool over = best_micros > max_lint_micros;
    failed |= over;
    printf("  %8.1f us/query %s  %.60s...\n", best_micros, over ? "FAIL" : "ok  ", text);
  }
  if (failed) {
    printf("FAIL: install-time analysis exceeded %.0f us for at least one query\n",
           max_lint_micros);
    return 1;
  }
  printf("PASS: every query analyzed within %.0f us\n", max_lint_micros);
  return 0;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  double max_lint_micros = 1000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-lint-micros=", 18) == 0) {
      max_lint_micros = std::atof(argv[i] + 18);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return pivot::RunLintGate(max_lint_micros);
}
