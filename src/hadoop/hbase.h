// Simulated HBase (§6): RegionServers serving get/scan requests over HDFS.
//
// The request path is client -> RegionServer (ClientService) -> HDFS
// DataNode, with baggage throughout. RegionServers model a bounded handler
// pool, so requests queue (Fig 9b's "RS Queue" component); handler CPU time
// is "RS Process". GC pauses can be injected per RegionServer (the rogue-GC
// replication of §6.2).
//
// Tracepoints: HBase.ClientService (entry; op, row), RS.QueueDone (queue
// micros), RS.ProcessDone (process micros), and client-side
// HBase.RequestSent / HBase.ResponseReceived for Q8-style latency queries.

#ifndef PIVOT_SRC_HADOOP_HBASE_H_
#define PIVOT_SRC_HADOOP_HBASE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/hadoop/hdfs.h"
#include "src/simsys/sim_world.h"

namespace pivot {

struct HbaseConfig {
  int handler_threads = 8;          // Concurrent requests per RegionServer.
  int64_t get_cpu_micros = 500;     // Handler CPU for a get.
  int64_t scan_cpu_micros = 4000;   // Handler CPU for a scan.
  int64_t put_cpu_micros = 200;     // Handler CPU for a put (memstore insert).
  uint64_t get_hdfs_bytes = 10 << 10;    // 10 kB row lookups (Hget).
  uint64_t scan_hdfs_bytes = 4 << 20;    // 4 MB scans (Hscan).
  uint64_t put_bytes = 1 << 10;          // 1 kB row writes (Hput).
  // The memstore flushes to an HDFS file once it accumulates this much. The
  // flush is *causally attributed to the put that crossed the threshold*
  // (its baggage rides the flush IO) — the write-side analogue of Fig 1b's
  // attribution, and a classic hidden-cost diagnosis target.
  uint64_t memstore_flush_bytes = 1 << 20;
};

class HbaseRegionServer {
 public:
  HbaseRegionServer(SimProcess* proc, HdfsNameNode* namenode, const HbaseConfig* config,
                    uint64_t seed);

  SimProcess* process() { return proc_; }

  // Server side of ClientService: queue for a handler, run the op ("get" /
  // "scan": CPU + HDFS read; "put": CPU + memstore insert, possibly
  // triggering a flush), respond with the payload size.
  void HandleRequest(CtxPtr ctx, const std::string& op, uint64_t row, RpcRespond respond);

  uint64_t memstore_bytes() const { return memstore_bytes_; }
  int flushes() const { return flushes_; }

 private:
  struct PendingRequest {
    CtxPtr ctx;
    std::string op;
    uint64_t row;
    RpcRespond respond;
    int64_t enqueued_at;
  };

  void MaybeStartNext();
  void RunRequest(PendingRequest req);
  void RunPut(std::shared_ptr<PendingRequest> req, int64_t process_start);
  // Flushes the memstore to HDFS on a branch of `trigger`'s context.
  void FlushMemstore(const CtxPtr& trigger);

  SimProcess* proc_;
  HdfsClient hdfs_;
  const HbaseConfig* config_;
  Rng rng_;
  int busy_handlers_ = 0;
  std::deque<PendingRequest> queue_;
  uint64_t memstore_bytes_ = 0;
  int flushes_ = 0;
  Tracepoint* tp_client_service_;
  Tracepoint* tp_queue_done_;
  Tracepoint* tp_process_done_;
  Tracepoint* tp_memstore_flush_;
};

// Client library for HBase: routes each request to the RegionServer owning
// the row (rows are range-partitioned across RegionServers).
class HbaseClient {
 public:
  HbaseClient(SimProcess* proc, std::vector<HbaseRegionServer*> region_servers, uint64_t seed);

  struct RequestResult {
    int64_t latency_micros = 0;
    std::string region_server_host;
  };

  void Get(CtxPtr ctx, std::function<void(CtxPtr, RequestResult)> done);
  void Scan(CtxPtr ctx, std::function<void(CtxPtr, RequestResult)> done);
  void Put(CtxPtr ctx, std::function<void(CtxPtr, RequestResult)> done);

 private:
  void Request(CtxPtr ctx, const std::string& op, std::function<void(CtxPtr, RequestResult)> done);

  SimProcess* proc_;
  std::vector<HbaseRegionServer*> region_servers_;
  Rng rng_;
  Tracepoint* tp_client_protocols_;
  Tracepoint* tp_request_sent_;
  Tracepoint* tp_response_received_;
};

// Builds one RegionServer per listed host (plus a Master process for
// topology fidelity; the Master serves no requests in this model).
struct HbaseDeployment {
  SimProcess* master = nullptr;
  std::vector<std::unique_ptr<HbaseRegionServer>> region_servers;
  std::unique_ptr<HbaseConfig> config;

  std::vector<HbaseRegionServer*> servers() const;

  static HbaseDeployment Create(SimWorld* world, SimHost* master_host,
                                const std::vector<SimHost*>& rs_hosts, HdfsNameNode* namenode,
                                HbaseConfig config, uint64_t seed);
};

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_HBASE_H_
