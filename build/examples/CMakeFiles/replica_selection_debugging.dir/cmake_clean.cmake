file(REMOVE_RECURSE
  "CMakeFiles/replica_selection_debugging.dir/replica_selection_debugging.cpp.o"
  "CMakeFiles/replica_selection_debugging.dir/replica_selection_debugging.cpp.o.d"
  "replica_selection_debugging"
  "replica_selection_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_selection_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
