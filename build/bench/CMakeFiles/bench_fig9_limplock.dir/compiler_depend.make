# Empty compiler generated dependencies file for bench_fig9_limplock.
# This may be replaced when dependencies are built.
