// Tuple: a row of the streaming distributed dataset (§3).
//
// Tracepoint invocations produce tuples of named Values; happened-before joins
// concatenate tuples from causally-earlier advice. Field names are qualified
// by query alias ("incr.delta", "cl.procName") so joined tuples keep unambiguous
// column names, exactly like the paper's query examples.
//
// Names are stored interned: a Field holds a dense SymbolId (see
// src/core/symbol.h), so Get/Set/Project/HashFields compare integers instead
// of strings on the advice hot path. String-based accessors remain for
// compatibility and for cold paths (wire decode, rendering, tests); they
// intern or look up through the global SymbolTable.

#ifndef PIVOT_SRC_CORE_TUPLE_H_
#define PIVOT_SRC_CORE_TUPLE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/symbol.h"
#include "src/core/value.h"

namespace pivot {

class Tuple {
 public:
  struct Field {
    SymbolId id = kInvalidSymbol;
    Value value;

    Field() = default;
    Field(SymbolId id, Value value) : id(id), value(std::move(value)) {}
    // Interning constructor: keeps `Tuple{{"name", Value(...)}}` working.
    Field(std::string_view name, Value value)
        : id(InternSymbol(name)), value(std::move(value)) {}

    std::string_view name() const { return SymbolName(id); }

    bool operator==(const Field& other) const {
      return id == other.id && value == other.value;
    }
  };

  Tuple() = default;
  Tuple(std::initializer_list<Field> fields) : fields_(fields) {}
  explicit Tuple(std::vector<Field> fields) : fields_(std::move(fields)) {}

  size_t size() const { return fields_.size(); }
  bool empty() const { return fields_.empty(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  // Appends a field. Does not check for duplicates; Set() replaces instead.
  void Append(SymbolId id, Value value) {
    fields_.push_back(Field{id, std::move(value)});
  }
  void Append(std::string_view name, Value value) {
    Append(InternSymbol(name), std::move(value));
  }

  // Replaces the named field, or appends it if absent.
  void Set(SymbolId id, Value value);
  void Set(std::string_view name, Value value) {
    Set(InternSymbol(name), std::move(value));
  }

  // Returns the named field's value, or null if absent. The string overloads
  // compare against each field's interned name (lock-free; no table growth
  // for lookups of absent names).
  Value Get(SymbolId id) const;
  Value Get(std::string_view name) const;
  bool Has(SymbolId id) const;
  bool Has(std::string_view name) const;

  // Concatenation `t1 · t2`, the joined-tuple construction of §3: fields of
  // `this` followed by fields of `other`.
  Tuple Concat(const Tuple& other) const;

  // Projection Π: restricts to `names`, preserving the given order. Missing
  // fields project to null (the analyzer rejects unknown fields up front).
  // The initializer_list overload keeps braced calls like Project({"a", "b"})
  // unambiguous (a braced pair of string literals would otherwise match the
  // vector<SymbolId> iterator-pair constructor).
  Tuple Project(const std::vector<SymbolId>& ids) const;
  Tuple Project(const std::vector<std::string>& names) const;
  Tuple Project(std::initializer_list<std::string_view> names) const;

  // Key for group-by: hash + equality over the values of `names` in order.
  uint64_t HashFields(const std::vector<SymbolId>& ids) const;
  uint64_t HashFields(const std::vector<std::string>& names) const;
  uint64_t HashFields(std::initializer_list<std::string_view> names) const;

  // "(a=1, b=x)" rendering.
  std::string ToString() const;

  bool operator==(const Tuple& other) const { return fields_ == other.fields_; }

 private:
  std::vector<Field> fields_;
};

// Interns each name; for cold paths that still carry column names as strings.
std::vector<SymbolId> InternSymbols(const std::vector<std::string>& names);

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_TUPLE_H_
