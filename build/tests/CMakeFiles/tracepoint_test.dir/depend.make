# Empty dependencies file for tracepoint_test.
# This may be replaced when dependencies are built.
