file(REMOVE_RECURSE
  "libpivot_agent.a"
)
