#include "src/bus/message_bus.h"

namespace pivot {

MessageBus::SubscriberId MessageBus::Subscribe(std::string topic, Callback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  SubscriberId id = next_id_++;
  topics_[std::move(topic)].push_back(
      Subscriber{id, std::make_shared<Callback>(std::move(callback))});
  return id;
}

void MessageBus::Unsubscribe(SubscriberId id) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [topic, subs] : topics_) {
    for (auto it = subs.begin(); it != subs.end(); ++it) {
      if (it->id == id) {
        subs.erase(it);
        return;
      }
    }
  }
}

void MessageBus::Publish(BusMessage msg) {
  // Snapshot subscribers so callbacks can mutate subscriptions reentrantly.
  std::vector<std::shared_ptr<Callback>> callbacks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++published_;
    auto it = topics_.find(msg.topic);
    if (it != topics_.end()) {
      callbacks.reserve(it->second.size());
      for (const auto& sub : it->second) {
        callbacks.push_back(sub.callback);
      }
    }
  }
  for (const auto& cb : callbacks) {
    (*cb)(msg);
    std::lock_guard<std::mutex> lock(mu_);
    ++delivered_;
  }
}

uint64_t MessageBus::published_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

uint64_t MessageBus::delivered_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

}  // namespace pivot
