#include <gtest/gtest.h>

#include "src/query/parser.h"

namespace pivot {
namespace {

// ---------------------------------------------------------------------------
// The nine queries of the paper parse verbatim.

struct PaperQuery {
  const char* name;
  const char* text;
};

class PaperQueryTest : public ::testing::TestWithParam<PaperQuery> {};

TEST_P(PaperQueryTest, Parses) {
  Result<Query> q = ParseQuery(GetParam().text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Round trip: rendering the AST and reparsing yields the same rendering.
  std::string rendered = QueryToString(*q);
  Result<Query> again = ParseQuery(rendered);
  ASSERT_TRUE(again.ok()) << "re-parse of: " << rendered << "\n" << again.status().ToString();
  EXPECT_EQ(QueryToString(*again), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, PaperQueryTest,
    ::testing::Values(
        PaperQuery{"Q1",
                   "From incr In DataNodeMetrics.incrBytesRead\n"
                   "GroupBy incr.host\n"
                   "Select incr.host, SUM(incr.delta)"},
        PaperQuery{"Q2",
                   "From incr In DataNodeMetrics.incrBytesRead\n"
                   "Join cl In First(ClientProtocols) On cl -> incr\n"
                   "GroupBy cl.procName\n"
                   "Select cl.procName, SUM(incr.delta)"},
        PaperQuery{"Q3",
                   "From dnop In DN.DataTransferProtocol\n"
                   "GroupBy dnop.host\n"
                   "Select dnop.host, COUNT"},
        PaperQuery{"Q4",
                   "From getloc In NN.GetBlockLocations\n"
                   "Join st In StressTest.DoNextOp On st -> getloc\n"
                   "GroupBy st.host, getloc.src\n"
                   "Select st.host, getloc.src, COUNT"},
        PaperQuery{"Q5",
                   "From getloc In NN.GetBlockLocations\n"
                   "Join st In StressTest.DoNextOp On st -> getloc\n"
                   "GroupBy st.host, getloc.replicas\n"
                   "Select st.host, getloc.replicas, COUNT"},
        PaperQuery{"Q6",
                   "From DNop In DN.DataTransferProtocol\n"
                   "Join st In StressTest.DoNextOp On st -> DNop\n"
                   "GroupBy st.host, DNop.host\n"
                   "Select st.host, DNop.host, COUNT"},
        PaperQuery{"Q7",
                   "From DNop In DN.DataTransferProtocol\n"
                   "Join getloc In NN.GetBlockLocations On getloc -> DNop\n"
                   "Join st In StressTest.DoNextOp On st -> getloc\n"
                   "Where st.host != DNop.host\n"
                   "GroupBy DNop.host, getloc.replicas\n"
                   "Select DNop.host, getloc.replicas, COUNT"},
        PaperQuery{"Q8",
                   "From response In SendResponse\n"
                   "Join request In MostRecent(ReceiveRequest) On request -> response\n"
                   "Select response.time - request.time"},
        PaperQuery{"Q9",
                   "From job In JobComplete\n"
                   "Join latencyMeasurement In Q8 On latencyMeasurement -> job\n"
                   "GroupBy job.id\n"
                   "Select job.id, AVERAGE(latencyMeasurement)"}),
    [](const ::testing::TestParamInfo<PaperQuery>& info) { return info.param.name; });

// ---------------------------------------------------------------------------
// Structural checks

TEST(ParserTest, FromOnly) {
  Result<Query> q = ParseQuery("From e In RPCs");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from.alias, "e");
  EXPECT_EQ(q->from.tracepoints, (std::vector<std::string>{"RPCs"}));
  EXPECT_TRUE(q->joins.empty());
  EXPECT_TRUE(q->select.empty());
}

TEST(ParserTest, UnionSources) {
  // Table 1: "From e In DataRPCs, ControlRPCs".
  Result<Query> q = ParseQuery("From e In DataRPCs, ControlRPCs Select e.host");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from.tracepoints, (std::vector<std::string>{"DataRPCs", "ControlRPCs"}));
}

TEST(ParserTest, DottedTracepointNames) {
  Result<Query> q = ParseQuery("From x In DN.DataTransferProtocol.done");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->from.tracepoints[0], "DN.DataTransferProtocol.done");
}

TEST(ParserTest, TemporalFilters) {
  Result<Query> q = ParseQuery(
      "From a In X Join b In FirstN(3, Y) On b -> a Join c In MostRecentN(2, Z) On c -> a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->joins[0].source.temporal, TemporalFilter::kFirstN);
  EXPECT_EQ(q->joins[0].source.n, 3u);
  EXPECT_EQ(q->joins[1].source.temporal, TemporalFilter::kMostRecentN);
  EXPECT_EQ(q->joins[1].source.n, 2u);
}

TEST(ParserTest, JoinDirection) {
  Result<Query> q = ParseQuery("From b In B Join a In A On a -> b");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->joins[0].left, "a");
  EXPECT_EQ(q->joins[0].right, "b");
}

TEST(ParserTest, WhereExpression) {
  Result<Query> q = ParseQuery("From e In X Where e.size < 10 && e.host != \"A\"");
  ASSERT_TRUE(q.ok());
  ASSERT_EQ(q->where.size(), 1u);
  EXPECT_EQ(q->where[0]->ToString(), "((e.size < 10) && (e.host != \"A\"))");
}

TEST(ParserTest, MultipleWhereClausesConjoin) {
  Result<Query> q = ParseQuery("From e In X Where e.a == 1 Where e.b == 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.size(), 2u);
}

TEST(ParserTest, ArithmeticPrecedence) {
  Result<Query> q = ParseQuery("From e In X Select e.a + e.b * e.c - e.d / 2");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->ToString(), "((e.a + (e.b * e.c)) - (e.d / 2))");
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  Result<Query> q = ParseQuery("From e In X Select (e.a + e.b) * e.c");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->ToString(), "((e.a + e.b) * e.c)");
}

TEST(ParserTest, SelectAs) {
  Result<Query> q = ParseQuery("From e In X Select e.time - e.start As latency");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].display, "latency");
  EXPECT_TRUE(q->select[0].has_explicit_alias);
}

TEST(ParserTest, AggregateDisplayNames) {
  Result<Query> q = ParseQuery("From e In X Select SUM(e.delta), COUNT, AVG(e.lat)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].display, "SUM(e.delta)");
  EXPECT_EQ(q->select[1].display, "COUNT");
  EXPECT_EQ(q->select[2].display, "AVERAGE(e.lat)");
  EXPECT_TRUE(q->select[2].is_aggregate);
  EXPECT_EQ(q->select[2].fn, AggFn::kAverage);
}

TEST(ParserTest, CaseInsensitiveKeywords) {
  Result<Query> q = ParseQuery("FROM e IN X GROUPBY e.h SELECT e.h, count");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"e.h"}));
  EXPECT_TRUE(q->select[1].is_aggregate);
}

TEST(ParserTest, Utf8MinusAccepted) {
  // The paper's Q8 uses U+2212; both minus characters must parse.
  Result<Query> q = ParseQuery("From r In X Select r.time \xE2\x88\x92 r.start");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select[0].expr->ToString(), "(r.time - r.start)");
}

TEST(ParserTest, SubqueryJoinRecognized) {
  Result<Query> q = ParseQuery("From j In JobComplete Join m In Q8 On m -> j");
  ASSERT_TRUE(q.ok());
  // "Q8" is not a defined tracepoint name contextually; it stays a tracepoint
  // ref at parse time and becomes a subquery reference at compile time when
  // the name resolves in the QueryRegistry. The parser records it verbatim.
  EXPECT_EQ(q->joins[0].source.tracepoints[0], "Q8");
}

// ---------------------------------------------------------------------------
// Errors

struct BadQuery {
  const char* name;
  const char* text;
};

class ParserErrorTest : public ::testing::TestWithParam<BadQuery> {};

TEST_P(ParserErrorTest, Rejected) {
  Result<Query> q = ParseQuery(GetParam().text);
  EXPECT_FALSE(q.ok()) << "should have failed: " << GetParam().text;
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ParserErrorTest,
    ::testing::Values(BadQuery{"NoFrom", "Select e.x"},
                      BadQuery{"MissingIn", "From e X"},
                      BadQuery{"MissingOn", "From a In X Join b In Y b -> a"},
                      BadQuery{"MissingArrow", "From a In X Join b In Y On b a"},
                      BadQuery{"DanglingSelect", "From a In X Select"},
                      BadQuery{"UnterminatedString", "From a In X Where a.h == \"oops"},
                      BadQuery{"BadCharacter", "From a In X Where a.h # 1"},
                      BadQuery{"UnbalancedParen", "From a In X Select (a.x + 1"},
                      BadQuery{"SingleEquals", "From a In X Where a.h = 1"},
                      BadQuery{"FirstNNeedsCount", "From a In X Join b In FirstN(Y) On b -> a"},
                      BadQuery{"TrailingGarbage", "From a In X Select a.x ??"}),
    [](const ::testing::TestParamInfo<BadQuery>& info) { return info.param.name; });

}  // namespace
}  // namespace pivot
