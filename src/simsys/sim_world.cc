#include "src/simsys/sim_world.h"

#include <cassert>

#include "src/telemetry/self_trace.h"

namespace pivot {

SimHost::SimHost(SimEnvironment* env, std::string name, double disk_bytes_per_sec,
                 double nic_bytes_per_sec)
    : name_(std::move(name)),
      disk_(env, name_ + "/disk", disk_bytes_per_sec),
      nic_out_(env, name_ + "/nic-out", nic_bytes_per_sec),
      nic_in_(env, name_ + "/nic-in", nic_bytes_per_sec) {}

double SimHost::NetworkBytesInSecond(int64_t sec) const {
  double out_bytes = 0;
  double in_bytes = 0;
  auto it = nic_out_.throughput().buckets().find(sec);
  if (it != nic_out_.throughput().buckets().end()) {
    out_bytes = it->second;
  }
  it = nic_in_.throughput().buckets().find(sec);
  if (it != nic_in_.throughput().buckets().end()) {
    in_bytes = it->second;
  }
  return out_bytes + in_bytes;
}

SimProcess::SimProcess(SimWorld* world, SimHost* host, std::string process_name, int64_t pid,
                       std::string component)
    : world_(world), host_(host), component_(std::move(component)) {
  if (!component_.empty()) {
    world_->propagation().DeclareComponent(component_);
  }
  runtime_.info.host = host_->name();
  runtime_.info.process_name = std::move(process_name);
  runtime_.info.process_id = pid;
  SimEnvironment* env = world_->env();
  runtime_.now_micros = [env] { return env->now_micros(); };
  agent_ = std::make_unique<PTAgent>(world_->bus(), &registry_, runtime_.info);
  runtime_.sink = agent_.get();
  // Self-telemetry: every simulated process defines the meta-tracepoints
  // (mirrored into the schema via DefineTracepoint) so queries over Pivot
  // Tracing's own activity weave here like any other tracepoint.
  for (TracepointDef def : telemetry::SelfTracepointDefs()) {
    DefineTracepoint(std::move(def));
  }
  telemetry::BindMetaTracepoints(registry_, &runtime_.meta);
  agent_->set_runtime(&runtime_);
  agent_->set_propagation(&world_->propagation());
}

Tracepoint* SimProcess::DefineTracepoint(TracepointDef def) {
  // Anchor the tracepoint in the propagation graph (empty components are
  // ignored — multi-component tracepoints deliberately stay unanchored).
  world_->propagation().AnchorTracepoint(def.name, def.component);
  // Mirror the definition into the world's schema registry (first definition
  // wins; all processes of a system type share tracepoint definitions).
  if (world_->schema()->Find(def.name) == nullptr) {
    Result<Tracepoint*> schema_tp = world_->schema()->Define(def);
    assert(schema_tp.ok());
    (void)schema_tp;
  }
  Result<Tracepoint*> tp = registry_.Define(std::move(def));
  assert(tp.ok() && "duplicate tracepoint in process");
  return tp.value();
}

void SimProcess::PauseUntil(int64_t time_micros) {
  if (time_micros > paused_until_) {
    paused_until_ = time_micros;
  }
}

int64_t SimProcess::PauseDelay() const {
  int64_t now = world_->env()->now_micros();
  return paused_until_ > now ? paused_until_ - now : 0;
}

SimWorld::SimWorld() {
  frontend_ = std::make_unique<Frontend>(&bus_, &schema_);
  SimEnvironment* env = &env_;
  frontend_->set_now_micros([env] { return env->now_micros(); });
  frontend_->set_propagation(&propagation_);
}

SimHost* SimWorld::AddHost(std::string name, double disk_bytes_per_sec,
                           double nic_bytes_per_sec) {
  hosts_.push_back(
      std::make_unique<SimHost>(&env_, std::move(name), disk_bytes_per_sec, nic_bytes_per_sec));
  return hosts_.back().get();
}

SimProcess* SimWorld::AddProcess(SimHost* host, std::string process_name,
                                 std::string component) {
  processes_.push_back(std::make_unique<SimProcess>(this, host, std::move(process_name),
                                                    next_pid_++, std::move(component)));
  return processes_.back().get();
}

SimHost* SimWorld::FindHost(std::string_view name) {
  for (const auto& h : hosts_) {
    if (h->name() == name) {
      return h.get();
    }
  }
  return nullptr;
}

CtxPtr SimWorld::NewRequest(SimProcess* proc) {
  auto ctx = std::make_shared<ExecutionContext>(proc->runtime());
  if (recording_) {
    ctx->StartTrace(&recorder_);
  }
  return ctx;
}

void SimWorld::EnableRecording() { recording_ = true; }

void SimWorld::StartAgentFlushLoop(int64_t until_micros) {
  // Flush at every whole simulated second; agents that have nothing to report
  // stay silent.
  for (int64_t t = kMicrosPerSecond; t <= until_micros; t += kMicrosPerSecond) {
    env_.ScheduleAt(t, [this, t] {
      for (const auto& proc : processes_) {
        proc->agent()->Flush(t);
      }
    });
  }
}

}  // namespace pivot
