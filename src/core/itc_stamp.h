// Full interval tree clocks (Almeida, Baquero, Fonte — OPODIS 2008): stamps
// combining the ID component (itc.h) with the event component, supporting the
// complete fork-event-join model.
//
// Pivot Tracing's baggage only needs the ID half (instance versioning, §5);
// the full clock is provided as substrate completeness — it is the paper's
// cited mechanism [29] and is what a causality-checking deployment would use
// to compare arbitrary baggage snapshots. Property-tested against an exact
// causal-history oracle in tests/itc_stamp_test.cc.

#ifndef PIVOT_SRC_CORE_ITC_STAMP_H_
#define PIVOT_SRC_CORE_ITC_STAMP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/itc.h"

namespace pivot {

// The event component: a tree of non-negative counters over the unit
// interval. Leaf(n), or Node(n, l, r) meaning "n everywhere, plus l/r in the
// halves". Kept in normal form (children lifted so min(l, r) == 0).
class ItcEvent {
 public:
  ItcEvent();  // Leaf(0).
  static ItcEvent Leaf(uint64_t n);

  bool IsZero() const;

  // Partial order: true iff this event tree is pointwise <= other.
  static bool Leq(const ItcEvent& a, const ItcEvent& b);

  // Pointwise maximum (used by join).
  static ItcEvent Join(const ItcEvent& a, const ItcEvent& b);

  bool operator==(const ItcEvent& other) const;
  bool operator!=(const ItcEvent& other) const { return !(*this == other); }

  std::string ToString() const;

  void Encode(std::vector<uint8_t>* out) const;
  static bool Decode(const uint8_t* data, size_t size, size_t* pos, ItcEvent* out);

  struct Node;
  using NodePtr = std::shared_ptr<const Node>;
  explicit ItcEvent(NodePtr root) : root_(std::move(root)) {}
  const NodePtr& root() const { return root_; }

 private:
  NodePtr root_;
};

// A stamp (id, event). Value type with structural sharing.
class ItcStamp {
 public:
  // The seed stamp (1, 0): full ownership, no events.
  static ItcStamp Seed();

  const ItcId& id() const { return id_; }
  const ItcEvent& event() const { return event_; }

  // fork: splits the ID; both stamps keep the event component.
  std::pair<ItcStamp, ItcStamp> Fork() const;

  // event: inflates the event component somewhere this stamp's ID owns.
  // Requires a non-anonymous stamp (non-zero ID).
  ItcStamp Event() const;

  // join: merges IDs and takes the pointwise event maximum.
  static ItcStamp Join(const ItcStamp& a, const ItcStamp& b);

  // peek: an anonymous stamp (0, e) carrying only causal knowledge — what a
  // message would piggyback.
  ItcStamp Peek() const;

  // Causality: a ≤ b iff a's event component is pointwise <= b's.
  static bool Leq(const ItcStamp& a, const ItcStamp& b);
  // Strict happened-before: a ≤ b and not b ≤ a.
  static bool HappenedBefore(const ItcStamp& a, const ItcStamp& b) {
    return Leq(a, b) && !Leq(b, a);
  }
  static bool Concurrent(const ItcStamp& a, const ItcStamp& b) {
    return !Leq(a, b) && !Leq(b, a);
  }

  std::string ToString() const;

  void Encode(std::vector<uint8_t>* out) const;
  static bool Decode(const uint8_t* data, size_t size, size_t* pos, ItcStamp* out);

  ItcStamp(ItcId id, ItcEvent event) : id_(std::move(id)), event_(std::move(event)) {}

 private:
  ItcId id_;
  ItcEvent event_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_ITC_STAMP_H_
