# Empty compiler generated dependencies file for baggage_test.
# This may be replaced when dependencies are built.
