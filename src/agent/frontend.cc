#include "src/agent/frontend.h"

#include "src/query/parser.h"

namespace pivot {

Frontend::Frontend(MessageBus* bus, const TracepointRegistry* schema)
    : bus_(bus), schema_(schema) {
  subscription_ =
      bus_->Subscribe(kReportTopic, [this](const BusMessage& msg) { HandleReport(msg); });
}

Frontend::~Frontend() { bus_->Unsubscribe(subscription_); }

Status Frontend::RegisterNamedQuery(const std::string& name, std::string_view text) {
  Result<Query> q = ParseQuery(text);
  if (!q.ok()) {
    return q.status();
  }
  return named_queries_.Register(name, std::move(q).value());
}

Result<uint64_t> Frontend::Install(std::string_view text) {
  return Install(text, QueryCompiler::Options{});
}

Result<uint64_t> Frontend::Install(std::string_view text, const QueryCompiler::Options& options) {
  Result<Query> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  QueryCompiler compiler(schema_, &named_queries_, options);

  uint64_t query_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    query_id = next_query_id_++;
  }
  Result<CompiledQuery> compiled = compiler.Compile(parsed.value(), query_id);
  if (!compiled.ok()) {
    return compiled.status();
  }
  return InstallCompiled(std::move(compiled).value());
}

Result<uint64_t> Frontend::InstallExplain(std::string_view text) {
  Result<Query> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  QueryCompiler compiler(schema_, &named_queries_);
  uint64_t real_id;
  uint64_t shadow_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    real_id = next_query_id_++;
    shadow_id = next_query_id_++;
  }
  Result<CompiledQuery> compiled = compiler.Compile(parsed.value(), real_id);
  if (!compiled.ok()) {
    return compiled.status();
  }
  return InstallCompiled(MakeCountingQuery(*compiled, shadow_id));
}

Result<uint64_t> Frontend::InstallCompiled(CompiledQuery compiled) {
  // Take over the compiled query's id if it was minted by us; otherwise mint
  // a fresh one and require the caller to have used non-colliding bag keys.
  uint64_t query_id = compiled.query_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (query_id == 0 || queries_.count(query_id) != 0) {
      query_id = next_query_id_++;
      compiled.query_id = query_id;
    }
  }

  WeaveCommand cmd;
  cmd.query_id = query_id;
  cmd.advice = compiled.advice;
  cmd.plan.aggregated = compiled.aggregated;
  cmd.plan.group_fields = compiled.group_fields;
  cmd.plan.aggs = compiled.aggs;
  cmd.plan.output_columns = compiled.output_columns;

  {
    std::lock_guard<std::mutex> lock(mu_);
    QueryResults results;
    results.compiled = std::move(compiled);
    // The frontend's cumulative/interval aggregators combine *state tuples*
    // from agents, so every spec switches to the combiner path.
    std::vector<AggSpec> combine_specs = cmd.plan.aggs;
    for (auto& spec : combine_specs) {
      spec.input = spec.output;
      spec.from_state = true;
    }
    results.total = Aggregator(cmd.plan.group_fields, combine_specs);
    queries_.emplace(query_id, std::move(results));
  }

  bus_->Publish(BusMessage{kCommandTopic, EncodeWeave(cmd)});
  return query_id;
}

Status Frontend::Uninstall(uint64_t query_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return NotFoundError("unknown query: " + std::to_string(query_id));
    }
    it->second.active = false;
  }
  bus_->Publish(BusMessage{kCommandTopic, EncodeUnweave(query_id)});
  return Status::Ok();
}

const CompiledQuery* Frontend::compiled(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : &it->second.compiled;
}

void Frontend::HandleReport(const BusMessage& msg) {
  Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
  if (!decoded.ok()) {
    return;
  }
  if (decoded->type == ControlMessageType::kHello) {
    // A new agent came up: replay the weave commands of every active query so
    // late-starting processes participate in standing queries. Duplicate
    // weaves are ignored by agents that already have them.
    std::vector<std::vector<uint8_t>> replays;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, q] : queries_) {
        if (!q.active) {
          continue;
        }
        WeaveCommand cmd;
        cmd.query_id = id;
        cmd.advice = q.compiled.advice;
        cmd.plan.aggregated = q.compiled.aggregated;
        cmd.plan.group_fields = q.compiled.group_fields;
        cmd.plan.aggs = q.compiled.aggs;
        cmd.plan.output_columns = q.compiled.output_columns;
        replays.push_back(EncodeWeave(cmd));
      }
    }
    for (auto& payload : replays) {
      bus_->Publish(BusMessage{kCommandTopic, std::move(payload)});
    }
    return;
  }
  if (decoded->type != ControlMessageType::kReport) {
    return;
  }
  const AgentReport& report = decoded->report;

  ResultListener listener;
  std::vector<Tuple> listener_rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(report.query_id);
    if (it == queries_.end() || !it->second.active) {
      return;
    }
    QueryResults& q = it->second;
    ++reports_received_;
    tuples_received_ += report.tuples.size();

    if (q.compiled.aggregated) {
      auto [interval_it, inserted] = q.interval_aggs.try_emplace(
          report.timestamp_micros, q.total.group_fields(), q.total.specs());
      for (const auto& t : report.tuples) {
        q.total.AddState(t);
        interval_it->second.AddState(t);
      }
      if (q.listener) {
        // Finalize just this report's contribution for the listener.
        Aggregator just_this(q.total.group_fields(), q.total.specs());
        for (const auto& t : report.tuples) {
          just_this.AddState(t);
        }
        listener_rows = just_this.Finalize();
      }
    } else {
      auto& rows = q.interval_rows[report.timestamp_micros];
      for (const auto& t : report.tuples) {
        q.total_rows.push_back(t);
        rows.push_back(t);
      }
      listener_rows = report.tuples;
    }
    listener = q.listener;
  }
  // Invoke outside the lock so listeners may call back into the frontend.
  if (listener) {
    listener(report.timestamp_micros, listener_rows);
  }
}

Status Frontend::SetResultListener(uint64_t query_id, ResultListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return NotFoundError("unknown query: " + std::to_string(query_id));
  }
  it->second.listener = std::move(listener);
  return Status::Ok();
}

std::vector<Tuple> Frontend::Results(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return {};
  }
  if (it->second.compiled.aggregated) {
    return it->second.total.Finalize();
  }
  return it->second.total_rows;
}

std::map<int64_t, std::vector<Tuple>> Frontend::Series(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return {};
  }
  if (it->second.compiled.aggregated) {
    std::map<int64_t, std::vector<Tuple>> out;
    for (const auto& [ts, agg] : it->second.interval_aggs) {
      out.emplace(ts, agg.Finalize());
    }
    return out;
  }
  return it->second.interval_rows;
}

void Frontend::TrimSeriesBefore(uint64_t query_id, int64_t before_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto trim = [before_micros](QueryResults& q) {
    q.interval_aggs.erase(q.interval_aggs.begin(),
                          q.interval_aggs.lower_bound(before_micros));
    q.interval_rows.erase(q.interval_rows.begin(),
                          q.interval_rows.lower_bound(before_micros));
  };
  if (query_id == 0) {
    for (auto& [id, q] : queries_) {
      trim(q);
    }
    return;
  }
  auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    trim(it->second);
  }
}

uint64_t Frontend::reports_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_received_;
}

uint64_t Frontend::tuples_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuples_received_;
}

}  // namespace pivot
