file(REMOVE_RECURSE
  "CMakeFiles/baggage_test.dir/baggage_test.cc.o"
  "CMakeFiles/baggage_test.dir/baggage_test.cc.o.d"
  "baggage_test"
  "baggage_test.pdb"
  "baggage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baggage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
