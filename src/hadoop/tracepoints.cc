#include "src/hadoop/tracepoints.h"

#include "src/telemetry/self_trace.h"

namespace pivot {

Tracepoint* GetOrDefineTracepoint(SimProcess* proc, TracepointDef def) {
  if (Tracepoint* existing = proc->registry()->Find(def.name)) {
    return existing;
  }
  return proc->DefineTracepoint(std::move(def));
}

void RegisterHadoopTracepointDefs(TracepointRegistry* schema) {
  for (const TracepointDef& def :
       {ClientProtocolsDef(), NnGetBlockLocationsDef(), NnClientProtocolDef(),
        NnClientProtocolDoneDef(), DnDataTransferProtocolDef(), DnTransferDoneDef(),
        IncrBytesReadDef(),
        IncrBytesWrittenDef(), FileInputStreamReadDef(), FileOutputStreamWriteDef(),
        StressTestDoNextOpDef(), HbaseClientServiceDef(), RsQueueDoneDef(), RsProcessDoneDef(),
        RsMemstoreFlushDef(), HbaseRequestSentDef(), HbaseResponseReceivedDef(),
        MrAppClientProtocolDef(),
        JobCompleteDef(), YarnContainerStartDef(), MapTaskDoneDef(), ReduceTaskDoneDef()}) {
    if (schema->Find(def.name) == nullptr) {
      Result<Tracepoint*> result = schema->Define(def);
      (void)result;
    }
  }
  // The self-telemetry meta-tracepoints are part of the queryable vocabulary
  // wherever the Hadoop stack is (SimProcess defines them per process).
  telemetry::RegisterSelfTracepointDefs(schema);
}

namespace {

// `component` anchors the tracepoint in the propagation graph
// (docs/TRACEPOINTS.md); empty means the tracepoint fires in more than one
// component and stays unanchored (reachability passes skip it).
TracepointDef Make(const char* name, std::vector<std::string> exports, const char* class_name,
                   const char* method, TracepointSite site = TracepointSite::kEntry,
                   const char* component = "") {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  def.class_name = class_name;
  def.method_name = method;
  def.site = site;
  def.component = component;
  return def;
}

}  // namespace

TracepointDef ClientProtocolsDef() {
  // The union of the client protocol entry points of HDFS
  // (DataTransferProtocol), HBase (ClientService) and MapReduce
  // (ApplicationClientProtocol) — the pack site of Q2.
  return Make(kTpClientProtocols, {"procName", "system"}, "ClientProtocols", "*",
              TracepointSite::kEntry, "client");
}

TracepointDef NnGetBlockLocationsDef() {
  return Make(kTpNnGetBlockLocations, {"src", "replicas"}, "NameNodeRpcServer",
              "getBlockLocations", TracepointSite::kEntry, "NN");
}

TracepointDef NnClientProtocolDef() {
  return Make(kTpNnClientProtocol, {"op", "src"}, "NameNodeRpcServer", "*",
              TracepointSite::kEntry, "NN");
}

TracepointDef NnClientProtocolDoneDef() {
  return Make(kTpNnClientProtocolDone, {"op", "lockwait"}, "NameNodeRpcServer", "*",
              TracepointSite::kExit, "NN");
}

TracepointDef DnDataTransferProtocolDef() {
  return Make(kTpDnDataTransferProtocol, {"op", "src"}, "DataXceiver", "*",
              TracepointSite::kEntry, "DN");
}

TracepointDef DnTransferDoneDef() {
  return Make(kTpDnTransferDone, {"op", "transfer", "blocked", "gc"}, "DataXceiver", "*",
              TracepointSite::kExit, "DN");
}

TracepointDef IncrBytesReadDef() {
  return Make(kTpIncrBytesRead, {"delta"}, "DataNodeMetrics", "incrBytesRead",
              TracepointSite::kEntry, "DN");
}

TracepointDef IncrBytesWrittenDef() {
  return Make(kTpIncrBytesWritten, {"delta"}, "DataNodeMetrics", "incrBytesWritten",
              TracepointSite::kEntry, "DN");
}

TracepointDef FileInputStreamReadDef() {
  return Make(kTpFileInputStreamRead, {"delta", "category"}, "java.io.FileInputStream", "read",
              TracepointSite::kExit);
}

TracepointDef FileOutputStreamWriteDef() {
  return Make(kTpFileOutputStreamWrite, {"delta", "category"}, "java.io.FileOutputStream",
              "write", TracepointSite::kExit);
}

TracepointDef StressTestDoNextOpDef() {
  return Make(kTpStressTestDoNextOp, {"op"}, "StressTest", "doNextOp",
              TracepointSite::kEntry, "client");
}

TracepointDef HbaseClientServiceDef() {
  return Make(kTpHbaseClientService, {"op", "row"}, "RSRpcServices", "*",
              TracepointSite::kEntry, "RS");
}

TracepointDef RsQueueDoneDef() {
  return Make(kTpRsQueueDone, {"queue"}, "RpcExecutor", "dequeue", TracepointSite::kExit,
              "RS");
}

TracepointDef RsProcessDoneDef() {
  return Make(kTpRsProcessDone, {"process"}, "RSRpcServices", "*", TracepointSite::kExit,
              "RS");
}

TracepointDef RsMemstoreFlushDef() {
  return Make(kTpRsMemstoreFlush, {"bytes"}, "HRegion", "internalFlushcache",
              TracepointSite::kEntry, "RS");
}

TracepointDef HbaseRequestSentDef() {
  return Make(kTpHbaseRequestSent, {"op"}, "HTable", "*", TracepointSite::kEntry, "client");
}

TracepointDef HbaseResponseReceivedDef() {
  return Make(kTpHbaseResponseReceived, {"op"}, "HTable", "*", TracepointSite::kExit,
              "client");
}

TracepointDef MrAppClientProtocolDef() {
  return Make(kTpMrAppClientProtocol, {"op", "job"}, "MRClientService", "*",
              TracepointSite::kEntry, "client");
}

TracepointDef JobCompleteDef() {
  return Make(kTpJobComplete, {"id"}, "JobImpl", "completed", TracepointSite::kExit,
              "client");
}

TracepointDef YarnContainerStartDef() {
  return Make(kTpYarnContainerStart, {"container", "job"}, "ContainerManagerImpl",
              "startContainer", TracepointSite::kEntry, "NM");
}

TracepointDef MapTaskDoneDef() {
  return Make(kTpMapTaskDone, {"job", "task"}, "MapTask", "run", TracepointSite::kExit,
              "MRTask");
}

TracepointDef ReduceTaskDoneDef() {
  return Make(kTpReduceTaskDone, {"job", "task"}, "ReduceTask", "run", TracepointSite::kExit,
              "MRTask");
}

}  // namespace pivot
