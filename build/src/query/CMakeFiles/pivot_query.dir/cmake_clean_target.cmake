file(REMOVE_RECURSE
  "libpivot_query.a"
)
