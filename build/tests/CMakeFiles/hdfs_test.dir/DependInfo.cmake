
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/hdfs_test.cc" "tests/CMakeFiles/hdfs_test.dir/hdfs_test.cc.o" "gcc" "tests/CMakeFiles/hdfs_test.dir/hdfs_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hadoop/CMakeFiles/pivot_hadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/simsys/CMakeFiles/pivot_simsys.dir/DependInfo.cmake"
  "/root/repo/build/src/agent/CMakeFiles/pivot_agent.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/pivot_query.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bus/CMakeFiles/pivot_bus.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pivot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
