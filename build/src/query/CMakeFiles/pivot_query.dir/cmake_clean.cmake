file(REMOVE_RECURSE
  "CMakeFiles/pivot_query.dir/ast.cc.o"
  "CMakeFiles/pivot_query.dir/ast.cc.o.d"
  "CMakeFiles/pivot_query.dir/compiler.cc.o"
  "CMakeFiles/pivot_query.dir/compiler.cc.o.d"
  "CMakeFiles/pivot_query.dir/flatten.cc.o"
  "CMakeFiles/pivot_query.dir/flatten.cc.o.d"
  "CMakeFiles/pivot_query.dir/lexer.cc.o"
  "CMakeFiles/pivot_query.dir/lexer.cc.o.d"
  "CMakeFiles/pivot_query.dir/naive_eval.cc.o"
  "CMakeFiles/pivot_query.dir/naive_eval.cc.o.d"
  "CMakeFiles/pivot_query.dir/parser.cc.o"
  "CMakeFiles/pivot_query.dir/parser.cc.o.d"
  "libpivot_query.a"
  "libpivot_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
