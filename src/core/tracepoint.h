// Tracepoints and the dynamic-instrumentation registry (§3, §5).
//
// A tracepoint identifies a location in system code where Pivot Tracing can
// run instrumentation, and exports named variables. In the paper, advice is
// woven into JVM bytecode at runtime; C++ has no portable online method-body
// rewriting, so this implementation compiles invocation *sites* into the code
// and attaches advice at runtime behind a single atomic pointer load (see
// DESIGN.md §1). The paper's key property is preserved: an unwoven tracepoint
// costs one relaxed load + branch, and woven advice can be installed and
// removed at any time without restarting the system.

#ifndef PIVOT_SRC_CORE_TRACEPOINT_H_
#define PIVOT_SRC_CORE_TRACEPOINT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/advice.h"
#include "src/core/context.h"
#include "src/core/plan.h"
#include "src/core/symbol.h"
#include "src/core/tuple.h"

namespace pivot {

// Where in a method the tracepoint sits (Fig 5 / §5 "Our prototype supports
// tracepoints at the entry, exit, or exceptional return of any method ... or
// at specific line numbers"). Metadata only in this implementation.
enum class TracepointSite : uint8_t {
  kEntry = 0,
  kExit = 1,
  kException = 2,
  kLine = 3,
};

// The tracepoint specification: "Tracepoint definitions are not part of the
// system code, but are rather instructions on where and how to change the
// system to obtain the exported identifiers" (§2.2).
struct TracepointDef {
  std::string name;                   // e.g. "DataNodeMetrics.incrBytesRead".
  std::vector<std::string> exports;   // Declared exports, e.g. {"delta"}.

  // Descriptive location (class/method/signature), mirroring Fig 5.
  std::string class_name;
  std::string method_name;
  std::string signature;
  TracepointSite site = TracepointSite::kEntry;
  int line = 0;

  // Node in the propagation graph whose code this tracepoint fires in
  // (e.g. "NN", "DN", "client"). Empty means unanchored — tracepoints that
  // fire in several components stay empty and are skipped by the
  // reachability passes (src/analysis/causality_graph.h).
  std::string component;
};

// Immutable snapshot of the advice woven at one tracepoint. Swapped atomically
// by the registry; readers only ever see complete sets. Each entry carries the
// plan compiled at weave time (see src/core/plan.h), which is what Invoke
// actually executes; the source advice is kept for unweave bookkeeping,
// verification, and rendering.
struct WovenEntry {
  uint64_t query_id = 0;
  Advice::Ptr advice;
  AdvicePlan::Ptr plan;
};
struct AdviceSet {
  std::vector<WovenEntry> advice;
};

class TracepointRegistry;

// A tracepoint instance. Created and owned by a TracepointRegistry; system
// code holds stable `Tracepoint*` and calls Invoke at the instrumented site.
class Tracepoint {
 public:
  explicit Tracepoint(TracepointDef def) : def_(std::move(def)) {}

  const TracepointDef& def() const { return def_; }
  const std::string& name() const { return def_.name; }

  // True if any advice is currently woven.
  bool enabled() const { return advice_.load(std::memory_order_relaxed) != nullptr; }

  // Fires the tracepoint for the execution in `ctx` with the given exported
  // variables. Fast path (no advice, no trace recording): one atomic load and
  // a branch — the "zero-probe-effect" analogue measured in Table 5 — plus a
  // plain-increment fire counter (see below).
  //
  // The slow path appends the default exports (host, timestamp/time, procid,
  // procname, tracepoint; §3), advances the ground-truth trace if recording,
  // and executes each woven advice program.
  void Invoke(ExecutionContext* ctx, std::vector<Tuple::Field> exports) const {
    const AdviceSet* set = advice_.load(std::memory_order_acquire);
    // Self-telemetry fire counter. Deliberately a relaxed load+add+store
    // (plain increment) rather than fetch_add: no lock-prefixed RMW on the
    // fast path, so Table 5's probe-effect bound survives with telemetry
    // compiled in (bench_telemetry_overhead). Concurrent racing increments
    // may lose counts; monitoring tolerates that, correctness never reads it.
    // Sequenced after the advice load so the branch is never waiting on the
    // counter's store-to-load-forwarded dependency chain.
    fires_.store(fires_.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
    if (set == nullptr && (ctx == nullptr || ctx->recorder() == nullptr)) {
      return;
    }
    InvokeSlow(ctx, set, std::move(exports));
  }

  // Convenience overload using the thread-local current context.
  void Invoke(std::vector<Tuple::Field> exports) const {
    Invoke(CurrentContext(), std::move(exports));
  }

  // ---- Self-telemetry (docs/OBSERVABILITY.md) ----

  // Total invocations, woven or not. Lossy under write races (see Invoke).
  uint64_t fires() const { return fires_.load(std::memory_order_relaxed); }
  // Invocations that executed at least one woven advice program (exact).
  uint64_t woven_fires() const { return woven_fires_.load(std::memory_order_relaxed); }
  // Invocations that took the fast path or fired only for trace recording.
  uint64_t unwoven_fires() const {
    uint64_t f = fires();
    uint64_t w = woven_fires();
    return f > w ? f - w : 0;  // Racy reads may momentarily invert.
  }
  // Total wall-clock nanoseconds spent executing woven advice (exact;
  // measured on the slow path only, where advice cost dwarfs the clock read).
  uint64_t advice_nanos() const { return advice_nanos_.load(std::memory_order_relaxed); }

 private:
  friend class TracepointRegistry;

  void InvokeSlow(ExecutionContext* ctx, const AdviceSet* set,
                  std::vector<Tuple::Field> exports) const;

  TracepointDef def_;
  std::atomic<const AdviceSet*> advice_{nullptr};
  mutable std::atomic<uint64_t> fires_{0};
  mutable std::atomic<uint64_t> woven_fires_{0};
  mutable std::atomic<uint64_t> advice_nanos_{0};
};

// One row of TracepointRegistry::StatsSnapshot().
struct TracepointStatsRow {
  std::string name;
  uint64_t fires = 0;
  uint64_t woven_fires = 0;
  uint64_t advice_nanos = 0;
};

// Owns tracepoints and manages weaving. One registry per instrumented system
// (the simulated cluster shares one; a real process would own one).
//
// Thread-safe. Retired advice sets are kept until registry destruction rather
// than reference-counted, trading a small bounded leak for a single-load fast
// path (the standard quiescence shortcut; weaving is rare and human-driven).
class TracepointRegistry {
 public:
  TracepointRegistry() = default;
  ~TracepointRegistry();

  TracepointRegistry(const TracepointRegistry&) = delete;
  TracepointRegistry& operator=(const TracepointRegistry&) = delete;

  // Defines a new tracepoint ("they can be defined and installed at any point
  // in time", §2.2). Fails with kAlreadyExists if the name is taken.
  Result<Tracepoint*> Define(TracepointDef def);

  // Returns the named tracepoint or nullptr.
  Tracepoint* Find(std::string_view name) const;

  // All defined tracepoint names, sorted.
  std::vector<std::string> Names() const;

  // Weaves a query's advice: each element names a tracepoint and the advice
  // to install there. Advice naming tracepoints this registry does not (yet)
  // define is retained and weaves automatically when the tracepoint is
  // defined (deferred weaving — standing queries apply to subsystems that
  // initialize later). Fails atomically if the query id is already woven or
  // any advice is null.
  Status WeaveQuery(uint64_t query_id,
                    const std::vector<std::pair<std::string, Advice::Ptr>>& advice);

  // Removes all advice woven for `query_id`. Idempotent.
  void UnweaveQuery(uint64_t query_id);

  // Ids of currently-woven queries, sorted.
  std::vector<uint64_t> WovenQueries() const;

  // Per-tracepoint dispatch statistics (fire counts, advice time), sorted by
  // name — the data behind Table 5's per-tracepoint overhead accounting.
  std::vector<TracepointStatsRow> StatsSnapshot() const;

 private:
  void RebuildLocked(Tracepoint* tp);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Tracepoint>, std::less<>> tracepoints_;
  // query id -> tracepoints it wove advice into.
  std::map<uint64_t, std::vector<std::pair<std::string, Advice::Ptr>>> woven_;
  // Previously-published advice sets (see class comment).
  std::vector<std::unique_ptr<const AdviceSet>> retired_;
  std::vector<std::unique_ptr<const AdviceSet>> live_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_TRACEPOINT_H_
