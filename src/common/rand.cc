#include "src/common/rand.h"

#include <cmath>

namespace pivot {

double Rng::NextExponential(double mean) {
  assert(mean > 0);
  // Inverse transform; guard against log(0).
  double u = NextDouble();
  if (u <= 0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(1.0 - u);
}

size_t Rng::NextWeighted(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) {
    assert(w >= 0);
    total += w;
  }
  assert(total > 0);
  double target = NextDouble() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) {
      return i;
    }
  }
  return weights.size() - 1;  // Floating-point slop: fall back to the last bucket.
}

}  // namespace pivot
