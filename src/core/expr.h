// Side-effect-free expression trees evaluated over tuples.
//
// Where-clauses and Select arithmetic (e.g. Q8's `response.time - request.time`)
// compile to these trees. Evaluation is total (errors yield null) and the tree
// has no loops or calls, preserving the advice safety guarantee of §3: advice
// "has no jumps or recursion, and is guaranteed to terminate".

#ifndef PIVOT_SRC_CORE_EXPR_H_
#define PIVOT_SRC_CORE_EXPR_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "src/core/symbol.h"
#include "src/core/tuple.h"
#include "src/core/value.h"

namespace pivot {

enum class ExprOp {
  kLiteral,   // A constant value.
  kField,     // A (qualified) field reference, e.g. "st.host".
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
  kNeg,
};

// Immutable expression node. Built once at query-compile time, shared freely
// across advice instances (all members are const after construction).
class Expr {
 public:
  using Ptr = std::shared_ptr<const Expr>;

  static Ptr Literal(Value v);
  static Ptr Field(std::string name);
  static Ptr Binary(ExprOp op, Ptr lhs, Ptr rhs);
  static Ptr Unary(ExprOp op, Ptr operand);

  ExprOp op() const { return op_; }
  const Value& literal() const { return literal_; }
  const std::string& field_name() const { return field_; }
  const Ptr& lhs() const { return lhs_; }
  const Ptr& rhs() const { return rhs_; }

  // Evaluates against `t`; missing fields read as null, comparisons yield
  // int64 0/1, arithmetic type errors yield null.
  Value Eval(const Tuple& t) const;

  // Resolves every kField reference in the tree to a SymbolId through the
  // global interner, so Eval compares integers instead of strings. Plan
  // compilation calls this once at weave time; Eval also binds lazily on
  // first use, so an unbound tree is merely slower, never wrong.
  void Bind() const;

  // All field names referenced anywhere in the tree (for the optimizer's
  // projection pushdown).
  void CollectFields(std::vector<std::string>* out) const;

  // True if every field the tree references appears in `available`.
  bool FieldsSubsetOf(const std::vector<std::string>& available) const;

  // Parseable rendering, e.g. "(st.host != DNop.host)".
  std::string ToString() const;

 private:
  Expr() = default;

  // Cached interned id for kField nodes; kInvalidSymbol until bound. Atomic
  // because shared trees may be evaluated from several threads; the value is
  // write-once (interning is idempotent) so relaxed ordering suffices.
  SymbolId BoundFieldId() const {
    SymbolId id = field_id_.load(std::memory_order_relaxed);
    if (id == kInvalidSymbol) {
      id = InternSymbol(field_);
      field_id_.store(id, std::memory_order_relaxed);
    }
    return id;
  }

  ExprOp op_ = ExprOp::kLiteral;
  Value literal_;
  std::string field_;
  mutable std::atomic<SymbolId> field_id_{kInvalidSymbol};
  Ptr lhs_;
  Ptr rhs_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_EXPR_H_
