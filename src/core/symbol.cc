#include "src/core/symbol.h"

#include "src/telemetry/metrics.h"

namespace pivot {

SymbolId SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;

  uint32_t id = count_.load(std::memory_order_relaxed);
  size_t chunk_index = id >> kChunkBits;
  size_t slot = id & (kChunkSize - 1);
  if (chunk_index >= kMaxChunks) return kInvalidSymbol;  // Table full (4M names).

  Chunk* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    chunk = new Chunk();
    chunks_[chunk_index].store(chunk, std::memory_order_release);
  }
  (*chunk)[slot] = std::string(name);
  ids_.emplace(std::string_view((*chunk)[slot]), id);
  // Publish after the name is in place so lock-free NameOf readers racing with
  // this insert either see id >= size() or a fully-constructed string.
  count_.store(id + 1, std::memory_order_release);
  if (this == &Global()) {
    static telemetry::Counter& interned = telemetry::Metrics().GetCounter("symbols.interned");
    interned.Increment();
  }
  return id;
}

SymbolId SymbolTable::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(name);
  return it == ids_.end() ? kInvalidSymbol : it->second;
}

std::string_view SymbolTable::NameOf(SymbolId id) const {
  if (id >= count_.load(std::memory_order_acquire)) return {};
  const Chunk* chunk = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
  if (chunk == nullptr) return {};
  return (*chunk)[id & (kChunkSize - 1)];
}

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();  // Leaked: outlives all users.
  return *table;
}

}  // namespace pivot
