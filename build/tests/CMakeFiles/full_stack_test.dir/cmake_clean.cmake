file(REMOVE_RECURSE
  "CMakeFiles/full_stack_test.dir/full_stack_test.cc.o"
  "CMakeFiles/full_stack_test.dir/full_stack_test.cc.o.d"
  "full_stack_test"
  "full_stack_test.pdb"
  "full_stack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_stack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
