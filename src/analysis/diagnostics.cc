#include "src/analysis/diagnostics.h"

namespace pivot {
namespace analysis {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = SeverityName(severity);
  out += " ";
  out += code;
  if (!tracepoint.empty() || op_index >= 0) {
    out += " [";
    out += tracepoint;
    if (op_index >= 0) {
      if (!tracepoint.empty()) {
        out += " ";
      }
      out += "op#" + std::to_string(op_index);
    }
    out += "]";
  }
  out += ": " + message;
  return out;
}

void Report::Add(std::string code, Severity severity, std::string tracepoint, int op_index,
                 std::string message) {
  Diagnostic d;
  d.code = std::move(code);
  d.severity = severity;
  d.tracepoint = std::move(tracepoint);
  d.op_index = op_index;
  d.message = std::move(message);
  diags_.push_back(std::move(d));
}

size_t Report::error_count() const {
  size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::kError) {
      ++n;
    }
  }
  return n;
}

size_t Report::warning_count() const {
  size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == Severity::kWarning) {
      ++n;
    }
  }
  return n;
}

bool Report::Has(std::string_view code) const {
  for (const auto& d : diags_) {
    if (d.code == code) {
      return true;
    }
  }
  return false;
}

void Report::MergeFrom(const Report& other) {
  diags_.insert(diags_.end(), other.diags_.begin(), other.diags_.end());
}

std::string Report::ToString() const {
  std::string out;
  for (const auto& d : diags_) {
    if (!out.empty()) {
      out += "\n";
    }
    out += d.ToString();
  }
  return out;
}

}  // namespace analysis
}  // namespace pivot
