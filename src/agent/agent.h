// PTAgent: the per-process Pivot Tracing agent (§5 "Agent").
//
// "A Pivot Tracing agent thread runs in every Pivot Tracing-enabled process
// and awaits instruction via central pub/sub server to weave advice to
// tracepoints. Tuples emitted by advice are accumulated by the local Pivot
// Tracing agent, which performs partial aggregation of tuples according to
// their source query. Agents publish partial query results at a configurable
// interval — by default, one second."
//
// The agent implements EmitSink (wired into the process's ProcessRuntime), so
// advice Emit ops feed it directly in-process. Flush() publishes the interval
// report; the simulator calls it once per simulated second, a real deployment
// would drive it from a timer thread.

#ifndef PIVOT_SRC_AGENT_AGENT_H_
#define PIVOT_SRC_AGENT_AGENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/agent/protocol.h"
#include "src/bus/message_bus.h"
#include "src/core/aggregation.h"
#include "src/core/context.h"
#include "src/core/tracepoint.h"

namespace pivot {

namespace analysis {
class PropagationRegistry;
}  // namespace analysis

// After this many consecutive empty flushes for a query, the agent publishes
// a kStats heartbeat so the frontend can tell a quiet query from a dead
// agent, then restarts the count (docs/OBSERVABILITY.md).
inline constexpr uint64_t kFlushesPerSuppressedHeartbeat = 10;

// Per-query agent-side accounting row (PTAgent::QueryStats).
struct AgentQueryStats {
  uint64_t query_id = 0;
  uint64_t emitted = 0;             // Tuples advice handed the agent.
  int64_t last_report_micros = -1;  // Last non-empty report; -1 if never.
  uint64_t reports_suppressed = 0;  // Empty flushes since weave.
};

class PTAgent : public EmitSink {
 public:
  // `registry` is the process's tracepoint registry the agent weaves into;
  // `info` identifies the process in reports. The agent subscribes to the
  // command topic immediately.
  PTAgent(MessageBus* bus, TracepointRegistry* registry, ProcessInfo info);
  ~PTAgent() override;

  PTAgent(const PTAgent&) = delete;
  PTAgent& operator=(const PTAgent&) = delete;

  // Optional: the process runtime this agent serves. Enables self-telemetry —
  // weave-ack/heartbeat timestamps from the runtime clock, and firing the
  // `PTAgent.Flush` meta-tracepoint after each flush (runtime->meta).
  void set_runtime(ProcessRuntime* runtime) { runtime_ = runtime; }

  // Optional: the deployment's propagation graph, consulted by weave
  // re-verification (PT301/PT305 — an agent refuses advice whose joins the
  // topology cannot satisfy). Null skips those passes. Not owned.
  void set_propagation(const analysis::PropagationRegistry* propagation) {
    propagation_ = propagation;
  }

  // EmitSink: advice output lands here and is partially aggregated (or
  // buffered, for streaming queries) per source query.
  void EmitTuple(uint64_t query_id, const Tuple& t) override;

  // Publishes one report per active query covering the interval ending at
  // `now_micros`, then resets interval state. Queries with nothing to report
  // publish nothing (quiet processes stay quiet on the bus) but count the
  // suppression and heartbeat every kFlushesPerSuppressedHeartbeat.
  void Flush(int64_t now_micros);

  // ---- Statistics (used by the overhead/traffic benches) ----

  // Tuples handed to the agent by advice since construction.
  uint64_t emitted_tuples() const;
  // Tuples shipped to the frontend in reports (post partial aggregation).
  uint64_t reported_tuples() const;
  uint64_t reports_published() const;
  // Tuples emitted for queries this agent does not (or no longer) track.
  uint64_t dropped_tuples() const;
  // Weave commands refused because the decoded advice failed re-verification
  // (the eBPF rule: never weave what you didn't verify). Tampered or
  // corrupted wire bytes land here instead of in the tracepoint registry.
  uint64_t weaves_refused() const;

  // Per-query accounting, sorted by query id.
  std::vector<AgentQueryStats> QueryStats() const;

  const ProcessInfo& info() const { return info_; }

 private:
  void HandleCommand(const BusMessage& msg);

  struct QueryState {
    ResultPlan plan;
    Aggregator agg{{}, {}};        // Interval partial aggregation.
    std::vector<Tuple> buffered;   // Streaming rows for this interval.
    uint64_t emitted = 0;
    int64_t last_report_micros = -1;         // Last non-empty report.
    uint64_t reports_suppressed = 0;         // Empty flushes, total.
    uint64_t suppressed_since_heartbeat = 0; // Empty flushes since last kStats.
  };

  MessageBus* bus_;
  TracepointRegistry* registry_;
  ProcessInfo info_;
  ProcessRuntime* runtime_ = nullptr;
  const analysis::PropagationRegistry* propagation_ = nullptr;
  MessageBus::SubscriberId subscription_ = 0;

  mutable std::mutex mu_;
  std::map<uint64_t, QueryState> queries_;
  uint64_t emitted_total_ = 0;
  uint64_t reported_total_ = 0;
  uint64_t reports_published_ = 0;
  uint64_t dropped_total_ = 0;
  uint64_t weaves_refused_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_SRC_AGENT_AGENT_H_
