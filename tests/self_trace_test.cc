// End-to-end meta-tracing: Pivot Tracing queries over Pivot Tracing's own
// virtual tracepoints (Baggage.Serialize, PTAgent.Flush), plus the frontend's
// query-lifecycle / agent-health status reporting. docs/OBSERVABILITY.md.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/agent/agent.h"
#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

// A Q2-style happened-before join: packs at ClientProtocols, unpacks at the
// DataNode. This is the query whose baggage the meta-queries observe — a
// single-tracepoint query never packs anything, so Baggage.Serialize would
// stay silent without it.
constexpr char kPackingQuery[] =
    "From incr In DataNodeMetrics.incrBytesRead\n"
    "Join cl In First(ClientProtocols) On cl -> incr\n"
    "GroupBy cl.procName\nSelect cl.procName, SUM(incr.delta)";

constexpr char kBaggageMetaQuery[] =
    "From b In Baggage.Serialize\n"
    "GroupBy b.queryId\nSelect b.queryId, SUM(b.bytes), SUM(b.tuples)";

constexpr char kFlushMetaQuery[] =
    "From f In PTAgent.Flush\n"
    "GroupBy f.queryId\nSelect f.queryId, SUM(f.tuples), SUM(f.bytes)";

class SelfTraceTest : public ::testing::Test {
 protected:
  SelfTraceTest() {
    HadoopClusterConfig config;
    config.worker_hosts = 4;
    config.dataset_files = 50;
    config.seed = 7;
    cluster_ = std::make_unique<HadoopCluster>(config);
  }

  uint64_t Install(const char* text) {
    Result<uint64_t> q = cluster_->world()->frontend()->Install(text);
    EXPECT_TRUE(q.ok()) << text << "\n" << q.status().ToString();
    return q.ok() ? *q : 0;
  }

  // One client reading HDFS until `horizon_micros`, agents flushing every
  // second; runs the simulation dry.
  void RunWorkload(int64_t horizon_micros) {
    SimProcess* proc = cluster_->AddClient(cluster_->worker(0), "FSread");
    HdfsReadWorkload reader(proc, cluster_->namenode(), 64 << 10, 5 * kMicrosPerMilli, false,
                            42);
    reader.Start(horizon_micros);
    cluster_->world()->StartAgentFlushLoop(horizon_micros + 2 * kMicrosPerSecond);
    cluster_->world()->env()->RunAll();
  }

  std::unique_ptr<HadoopCluster> cluster_;
};

TEST_F(SelfTraceTest, MetaTracepointsAreInSchema) {
  // The virtual tracepoints are ordinary schema entries: queries over them
  // validate exactly like queries over Hadoop tracepoints.
  const TracepointRegistry* schema = cluster_->world()->schema();
  ASSERT_NE(schema->Find("Baggage.Serialize"), nullptr);
  ASSERT_NE(schema->Find("PTAgent.Flush"), nullptr);
  EXPECT_EQ(schema->Find("Baggage.Serialize")->def().exports.size(), 4u);
}

TEST_F(SelfTraceTest, BaggageSerializeQueryMeasuresQueryBytes) {
  uint64_t packing = Install(kPackingQuery);
  uint64_t meta = Install(kBaggageMetaQuery);
  RunWorkload(3 * kMicrosPerSecond);

  // The data query itself worked.
  EXPECT_FALSE(cluster_->world()->frontend()->Results(packing).empty());

  // The meta query attributes serialized baggage bytes per owning query:
  // a row for the packing query (nonzero bytes, nonzero tuples) and a
  // queryId=0 row carrying the framing overhead, so SUM over all rows equals
  // the wire size (the live Fig-10 readout).
  auto rows = cluster_->world()->frontend()->Results(meta);
  ASSERT_FALSE(rows.empty());
  bool saw_packing = false;
  bool saw_framing = false;
  for (const Tuple& row : rows) {
    int64_t qid = row.Get("b.queryId").int_value();
    int64_t bytes = static_cast<int64_t>(row.Get("SUM(b.bytes)").AsDouble());
    EXPECT_GT(bytes, 0) << "queryId " << qid;
    if (qid == static_cast<int64_t>(packing)) {
      saw_packing = true;
      EXPECT_GT(row.Get("SUM(b.tuples)").AsDouble(), 0);
    }
    if (qid == 0) {
      saw_framing = true;
    }
  }
  EXPECT_TRUE(saw_packing);
  EXPECT_TRUE(saw_framing);
}

TEST_F(SelfTraceTest, FlushQueryMeasuresAgentReports) {
  // PTAgent.Flush fires when an agent publishes a non-empty report, so the
  // meta query must be paired with a query that produces data; once reports
  // flow, the flush query's own tuples keep it fed (it observes itself).
  uint64_t packing = Install(kPackingQuery);
  uint64_t flush_meta = Install(kFlushMetaQuery);
  RunWorkload(3 * kMicrosPerSecond);

  auto rows = cluster_->world()->frontend()->Results(flush_meta);
  ASSERT_FALSE(rows.empty());
  bool saw_packing = false;
  for (const Tuple& row : rows) {
    EXPECT_GT(row.Get("SUM(f.bytes)").AsDouble(), 0);
    if (row.Get("f.queryId").int_value() == static_cast<int64_t>(packing)) {
      saw_packing = true;
      EXPECT_GT(row.Get("SUM(f.tuples)").AsDouble(), 0);
    }
  }
  EXPECT_TRUE(saw_packing);
}

TEST_F(SelfTraceTest, QueryStatusTracksLifecycleAndAgents) {
  uint64_t q = Install(kPackingQuery);
  RunWorkload(3 * kMicrosPerSecond);

  Frontend* frontend = cluster_->world()->frontend();
  auto statuses = frontend->QueryStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  const Frontend::QueryStatus& st = statuses[0];
  EXPECT_EQ(st.query_id, q);
  EXPECT_TRUE(st.active);
  // Lifecycle ordering: install -> weave ack -> first tuple -> last report.
  EXPECT_GE(st.installed_micros, 0);
  EXPECT_GE(st.first_ack_micros, st.installed_micros);
  EXPECT_GT(st.first_tuple_micros, 0);
  EXPECT_GE(st.last_report_micros, st.first_tuple_micros);
  EXPECT_EQ(st.uninstalled_micros, -1);
  EXPECT_GT(st.reports, 0u);
  EXPECT_GT(st.tuples, 0u);
  // Every simulated process acked the weave; at least one reported data.
  ASSERT_FALSE(st.agents.empty());
  uint64_t reporting_agents = 0;
  for (const auto& [key, view] : st.agents) {
    EXPECT_GE(view.ack_micros, 0) << key;
    if (view.last_report_micros >= 0) {
      ++reporting_agents;
    }
  }
  EXPECT_GT(reporting_agents, 0u);

  EXPECT_TRUE(frontend->Uninstall(q).ok());
  auto after = frontend->QueryStatuses();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].active);
  EXPECT_GE(after[0].uninstalled_micros, 0);
}

TEST_F(SelfTraceTest, QuietAgentsHeartbeatInsteadOfGoingDark) {
  // HBase.ClientService is defined in the schema but never fires under an
  // HDFS-only workload: the query stays woven yet produces nothing. Agents
  // must distinguish "quiet" from "dead" by publishing a suppression
  // heartbeat every kFlushesPerSuppressedHeartbeat empty flushes.
  uint64_t q = Install(
      "From r In HBase.ClientService\nGroupBy r.op\nSelect r.op, COUNT");
  RunWorkload(13 * kMicrosPerSecond);

  auto statuses = cluster_->world()->frontend()->QueryStatuses();
  ASSERT_EQ(statuses.size(), 1u);
  const Frontend::QueryStatus& st = statuses[0];
  EXPECT_EQ(st.query_id, q);
  EXPECT_EQ(st.first_tuple_micros, -1);  // Genuinely no data.
  EXPECT_EQ(st.reports, 0u);
  ASSERT_FALSE(st.agents.empty());
  bool saw_heartbeat = false;
  for (const auto& [key, view] : st.agents) {
    EXPECT_GE(view.ack_micros, 0) << key;
    EXPECT_EQ(view.last_report_micros, -1) << key;
    if (view.last_heartbeat_micros >= 0) {
      saw_heartbeat = true;
      EXPECT_GE(view.reports_suppressed, kFlushesPerSuppressedHeartbeat) << key;
    }
  }
  EXPECT_TRUE(saw_heartbeat);
}

TEST_F(SelfTraceTest, StatusReportRendersQueriesBusAndMetrics) {
  uint64_t packing = Install(kPackingQuery);
  (void)packing;
  RunWorkload(3 * kMicrosPerSecond);

  Frontend* frontend = cluster_->world()->frontend();
  std::string text = frontend->StatusReport();
  // Per-query lifecycle, per-agent health, bus topics, telemetry registry.
  EXPECT_NE(text.find("query 1"), std::string::npos) << text;
  EXPECT_NE(text.find("reporting"), std::string::npos) << text;
  EXPECT_NE(text.find("bus topics"), std::string::npos) << text;
  EXPECT_NE(text.find("telemetry"), std::string::npos) << text;
  EXPECT_NE(text.find("agent.reports"), std::string::npos) << text;
  EXPECT_NE(text.find("baggage.serialize.bytes"), std::string::npos) << text;

  std::string json = frontend->StatusReportJson();
  EXPECT_NE(json.find("\"queries\""), std::string::npos);
  EXPECT_NE(json.find("\"agents\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
}

}  // namespace
}  // namespace pivot
