// Fig 1: apportioning disk bandwidth usage across a cluster running HBase,
// MapReduce and direct HDFS clients simultaneously (§2.1).
//
//   Fig 1a — Q1: HDFS DataNode throughput per machine, from instrumented
//            DataNodeMetrics.incrBytesRead.
//   Fig 1b — Q2: the same metric grouped by the *top-level client
//            application*, via a happened-before join with the first
//            ClientProtocols invocation of each request.
//   Fig 1c — pivot table: per-host x per-category disk read/write throughput
//            attributed to MRsort10g, from Java FileInputStream /
//            FileOutputStream tracepoints joined with the client identity.
//
// Workloads (paper §2.1, scaled; see DESIGN.md): FSread4m, FSread64m, Hget,
// Hscan, MRsort10g, MRsort100g, with staggered start/stop times to produce
// the phased time series of the figure.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

constexpr int64_t kRunSeconds = 40;

int Main() {
  HadoopClusterConfig config;
  config.worker_hosts = 8;
  config.dataset_files = 400;
  config.seed = 20150406;
  // Scaled sort jobs: "10g" -> 256 MB, "100g" -> 1 GB (size ratio preserved
  // in spirit; absolute numbers are not the reproduction target).
  config.mapreduce.split_bytes = 32 << 20;
  config.mapreduce.reducers = 8;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  // ---- Queries ----
  Result<uint64_t> q1 = world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "GroupBy incr.host\n"
      "Select incr.host, SUM(incr.delta)");
  Result<uint64_t> q2 = world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "Join cl In First(ClientProtocols) On cl -> incr\n"
      "GroupBy cl.procName\n"
      "Select cl.procName, SUM(incr.delta)");
  Result<uint64_t> q_read = world->frontend()->Install(
      "From fis In FileInputStream.read\n"
      "Join cl In First(ClientProtocols) On cl -> fis\n"
      "Where cl.procName == \"MRsort10g\"\n"
      "GroupBy fis.host, fis.category\n"
      "Select fis.host, fis.category, SUM(fis.delta)");
  Result<uint64_t> q_write = world->frontend()->Install(
      "From fos In FileOutputStream.write\n"
      "Join cl In First(ClientProtocols) On cl -> fos\n"
      "Where cl.procName == \"MRsort10g\"\n"
      "GroupBy fos.host, fos.category\n"
      "Select fos.host, fos.category, SUM(fos.delta)");
  for (const auto* q : {&q1, &q2, &q_read, &q_write}) {
    if (!q->ok()) {
      fprintf(stderr, "query install failed: %s\n", q->status().ToString().c_str());
      return 1;
    }
  }

  // ---- Workloads ----
  std::vector<std::unique_ptr<HdfsReadWorkload>> hdfs_clients;
  auto add_fsread = [&](const char* name, int host, uint64_t bytes, int64_t think,
                        int64_t start_s, int64_t stop_s, uint64_t seed) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(host)), name);
    hdfs_clients.push_back(std::make_unique<HdfsReadWorkload>(
        proc, cluster.namenode(), bytes, think, /*stress_test=*/false, seed));
    HdfsReadWorkload* w = hdfs_clients.back().get();
    world->env()->ScheduleAt(start_s * kMicrosPerSecond,
                             [w, stop_s] { w->Start(stop_s * kMicrosPerSecond); });
  };
  add_fsread("FSread4m", 0, 4 << 20, 20 * kMicrosPerMilli, 0, kRunSeconds, 11);
  add_fsread("FSread4m", 4, 4 << 20, 20 * kMicrosPerMilli, 0, kRunSeconds, 12);
  add_fsread("FSread64m", 1, 64 << 20, 50 * kMicrosPerMilli, 5, kRunSeconds, 13);
  add_fsread("FSread64m", 5, 64 << 20, 50 * kMicrosPerMilli, 5, kRunSeconds, 14);

  std::vector<std::unique_ptr<HbaseWorkload>> hbase_clients;
  auto add_hbase = [&](const char* name, int host, bool scan, int64_t think, int64_t start_s,
                       int64_t stop_s, uint64_t seed) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(host)), name);
    hbase_clients.push_back(std::make_unique<HbaseWorkload>(proc, cluster.hbase().servers(),
                                                            scan, think, seed));
    HbaseWorkload* w = hbase_clients.back().get();
    world->env()->ScheduleAt(start_s * kMicrosPerSecond,
                             [w, stop_s] { w->Start(stop_s * kMicrosPerSecond); });
  };
  add_hbase("Hget", 2, false, 5 * kMicrosPerMilli, 0, kRunSeconds, 21);
  add_hbase("Hget", 6, false, 5 * kMicrosPerMilli, 0, kRunSeconds, 22);
  add_hbase("Hscan", 3, true, 30 * kMicrosPerMilli, 10, 30, 23);
  add_hbase("Hscan", 7, true, 30 * kMicrosPerMilli, 10, 30, 24);

  SimProcess* mr10_client = cluster.AddClient(cluster.master_host(), "MRsort10g");
  MapReduceWorkload mr10(mr10_client, cluster.mapreduce(), "MRsort10g", 256 << 20,
                         config.mapreduce);
  mr10.Start(kRunSeconds * kMicrosPerSecond);

  SimProcess* mr100_client = cluster.AddClient(cluster.master_host(), "MRsort100g");
  MapReduceWorkload mr100(mr100_client, cluster.mapreduce(), "MRsort100g", 1024u << 20,
                          config.mapreduce);
  world->env()->ScheduleAt(20 * kMicrosPerSecond,
                           [&] { mr100.Start(kRunSeconds * kMicrosPerSecond); });

  // ---- Run ----
  world->StartAgentFlushLoop((kRunSeconds + 10) * kMicrosPerSecond);
  world->env()->RunAll();

  // ---- Fig 1a ----
  std::vector<std::string> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.emplace_back(1, static_cast<char>('A' + i));
  }
  PrintSeriesTable("Fig 1a: HDFS DataNode throughput per machine (Q1)", "MB/s", hosts,
                   SeriesByKey(world->frontend()->Series(*q1), "incr.host", "SUM(incr.delta)"),
                   0, kRunSeconds, 5, 1.0 / (1 << 20), "fig1a");

  // ---- Fig 1b ----
  std::vector<std::string> apps = {"FSread4m", "FSread64m", "Hget",
                                   "Hscan",    "MRsort10g", "MRsort100g"};
  PrintSeriesTable("Fig 1b: HDFS DataNode throughput grouped by client application (Q2)",
                   "MB/s", apps,
                   SeriesByKey(world->frontend()->Series(*q2), "cl.procName", "SUM(incr.delta)"),
                   0, kRunSeconds, 5, 1.0 / (1 << 20), "fig1b");

  // ---- Fig 1c ----
  std::vector<std::string> categories = {"HDFS", "Map", "Shuffle", "Reduce"};
  auto pivot_cells = [&](uint64_t query, const char* host_col, const char* cat_col,
                         const char* val_col) {
    std::map<std::pair<std::string, std::string>, double> cells;
    for (const Tuple& row : world->frontend()->Results(query)) {
      cells[{row.Get(host_col).ToString(), row.Get(cat_col).ToString()}] =
          row.Get(val_col).AsDouble();
    }
    return cells;
  };
  PrintPivotTable("Fig 1c (left): disk READ bytes for MRsort10g, host x source category",
                  "MB total", hosts, categories,
                  pivot_cells(*q_read, "fis.host", "fis.category", "SUM(fis.delta)"),
                  1.0 / (1 << 20));
  PrintPivotTable("Fig 1c (right): disk WRITE bytes for MRsort10g, host x source category",
                  "MB total", hosts, categories,
                  pivot_cells(*q_write, "fos.host", "fos.category", "SUM(fos.delta)"),
                  1.0 / (1 << 20));

  printf("MRsort10g jobs completed: %d; MRsort100g jobs completed: %d\n", mr10.jobs_completed(),
         mr100.jobs_completed());
  printf("\nPaper reference: Fig 1a shows only aggregate per-host load; Fig 1b decomposes the\n"
         "same bytes by top-level application via the happened-before join; Fig 1c further\n"
         "pivots MRsort10g's direct disk IO by host x {HDFS, Map, Shuffle, Reduce}.\n");
  return 0;
}

}  // namespace
}  // namespace pivot

int main() { return pivot::Main(); }
