file(REMOVE_RECURSE
  "CMakeFiles/naive_eval_test.dir/naive_eval_test.cc.o"
  "CMakeFiles/naive_eval_test.dir/naive_eval_test.cc.o.d"
  "naive_eval_test"
  "naive_eval_test.pdb"
  "naive_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/naive_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
