file(REMOVE_RECURSE
  "CMakeFiles/tracepoint_test.dir/tracepoint_test.cc.o"
  "CMakeFiles/tracepoint_test.dir/tracepoint_test.cc.o.d"
  "tracepoint_test"
  "tracepoint_test.pdb"
  "tracepoint_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracepoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
