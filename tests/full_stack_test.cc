// Grand integration: all nine of the paper's queries (Q1–Q9) installed
// SIMULTANEOUSLY on the full 8-host Hadoop cluster with every workload class
// running — HDFS readers, a stress test, HBase gets/scans, a MapReduce job.
// Verifies the queries coexist (distinct bags, shared tracepoints), produce
// consistent answers, and that cross-query accounting lines up.

#include <gtest/gtest.h>

#include <memory>

#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

class FullStackTest : public ::testing::Test {
 protected:
  FullStackTest() {
    HadoopClusterConfig config;
    config.worker_hosts = 8;
    config.dataset_files = 200;
    config.seed = 99;
    config.mapreduce.split_bytes = 16 << 20;
    config.mapreduce.reducers = 4;
    cluster_ = std::make_unique<HadoopCluster>(config);
  }

  uint64_t Install(const char* text) {
    Result<uint64_t> q = cluster_->world()->frontend()->Install(text);
    EXPECT_TRUE(q.ok()) << text << "\n" << q.status().ToString();
    return q.ok() ? *q : 0;
  }

  std::vector<Tuple> Results(uint64_t id) {
    return cluster_->world()->frontend()->Results(id);
  }

  std::unique_ptr<HadoopCluster> cluster_;
};

TEST_F(FullStackTest, AllNinePaperQueriesCoexist) {
  Frontend* frontend = cluster_->world()->frontend();

  // Q8 is referenced by name from Q9.
  constexpr char kQ8[] =
      "From response In HBase.ResponseReceived\n"
      "Join request In MostRecent(HBase.RequestSent) On request -> response\n"
      "Select response.time - request.time As latencyMicros";
  ASSERT_TRUE(frontend
                  ->RegisterNamedQuery("Q8",
                                       "From d In MR.MapTaskDone\n"
                                       "Join c In MostRecent(YARN.ContainerStart) On c -> d\n"
                                       "Select d.time - c.time")
                  .ok());

  uint64_t q1 = Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "GroupBy incr.host\nSelect incr.host, SUM(incr.delta)");
  uint64_t q2 = Install(
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "Join cl In First(ClientProtocols) On cl -> incr\n"
      "GroupBy cl.procName\nSelect cl.procName, SUM(incr.delta)");
  uint64_t q3 = Install(
      "From dnop In DN.DataTransferProtocol\nGroupBy dnop.host\nSelect dnop.host, COUNT");
  uint64_t q4 = Install(
      "From getloc In NN.GetBlockLocations\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "GroupBy st.host, getloc.src\nSelect st.host, getloc.src, COUNT");
  uint64_t q5 = Install(
      "From getloc In NN.GetBlockLocations\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "GroupBy st.host, getloc.replicas\nSelect st.host, getloc.replicas, COUNT");
  uint64_t q6 = Install(
      "From DNop In DN.DataTransferProtocol\n"
      "Join st In StressTest.DoNextOp On st -> DNop\n"
      "GroupBy st.host, DNop.host\nSelect st.host, DNop.host, COUNT");
  uint64_t q7 = Install(
      "From DNop In DN.DataTransferProtocol\n"
      "Join getloc In NN.GetBlockLocations On getloc -> DNop\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "Where st.host != DNop.host\n"
      "GroupBy DNop.host, getloc.replicas\nSelect DNop.host, getloc.replicas, COUNT");
  uint64_t q8 = Install(kQ8);
  uint64_t q9 = Install(
      "From job In MR.JobComplete\n"
      "Join latencyMeasurement In Q8 On latencyMeasurement -> job\n"
      "GroupBy job.id\nSelect job.id, AVERAGE(latencyMeasurement), COUNT");

  // ---- Workloads ----
  std::vector<std::unique_ptr<HdfsReadWorkload>> readers;
  for (int h = 0; h < 8; h += 2) {
    SimProcess* proc =
        cluster_->AddClient(cluster_->worker(static_cast<size_t>(h)), "StressTest");
    readers.push_back(std::make_unique<HdfsReadWorkload>(proc, cluster_->namenode(), 8 << 10,
                                                         10 * kMicrosPerMilli, true,
                                                         500 + static_cast<uint64_t>(h)));
    readers.back()->Start(6 * kMicrosPerSecond);
  }
  SimProcess* fs_proc = cluster_->AddClient(cluster_->worker(1), "FSread4m");
  HdfsReadWorkload fsread(fs_proc, cluster_->namenode(), 4 << 20, 30 * kMicrosPerMilli, false,
                          601);
  fsread.Start(6 * kMicrosPerSecond);

  SimProcess* hget_proc = cluster_->AddClient(cluster_->worker(3), "Hget");
  HbaseWorkload hget(hget_proc, cluster_->hbase().servers(), false, 10 * kMicrosPerMilli, 602);
  hget.Start(6 * kMicrosPerSecond);
  SimProcess* hscan_proc = cluster_->AddClient(cluster_->worker(5), "Hscan");
  HbaseWorkload hscan(hscan_proc, cluster_->hbase().servers(), true, 40 * kMicrosPerMilli, 603);
  hscan.Start(6 * kMicrosPerSecond);

  SimProcess* mr_client = cluster_->AddClient(cluster_->master_host(), "MRsort10g");
  MapReduceWorkload mr(mr_client, cluster_->mapreduce(), "MRsort10g", 64 << 20,
                       cluster_->config().mapreduce);
  mr.Start(6 * kMicrosPerSecond);

  cluster_->world()->StartAgentFlushLoop(20 * kMicrosPerSecond);
  cluster_->world()->env()->RunAll();

  // ---- Cross-query consistency ----
  // Q1 (by host) and Q2 (by app) partition the same byte stream.
  double q1_total = 0;
  for (const Tuple& row : Results(q1)) {
    q1_total += row.Get("SUM(incr.delta)").AsDouble();
  }
  double q2_total = 0;
  std::set<std::string> apps;
  for (const Tuple& row : Results(q2)) {
    q2_total += row.Get("SUM(incr.delta)").AsDouble();
    apps.insert(row.Get("cl.procName").string_value());
  }
  EXPECT_GT(q1_total, 0);
  EXPECT_DOUBLE_EQ(q1_total, q2_total);
  // Every workload that touches HDFS shows up by name.
  for (const char* app : {"StressTest", "FSread4m", "Hget", "Hscan", "MRsort10g"}) {
    EXPECT_TRUE(apps.count(app) != 0) << app;
  }

  // Q3 counts every DataNode op; Q6 only the ops of StressTest requests.
  int64_t q3_total = 0;
  for (const Tuple& row : Results(q3)) {
    q3_total += row.Get("COUNT").int_value();
  }
  int64_t q6_total = 0;
  for (const Tuple& row : Results(q6)) {
    q6_total += row.Get("COUNT").int_value();
  }
  uint64_t stress_ops = 0;
  for (const auto& r : readers) {
    stress_ops += r->stats().total_ops();
  }
  EXPECT_GT(q3_total, q6_total);
  EXPECT_EQ(static_cast<uint64_t>(q6_total), stress_ops);

  // Q4 and Q5 count the same joined lookups under different groupings.
  int64_t q4_total = 0;
  for (const Tuple& row : Results(q4)) {
    q4_total += row.Get("COUNT").int_value();
  }
  int64_t q5_total = 0;
  for (const Tuple& row : Results(q5)) {
    q5_total += row.Get("COUNT").int_value();
  }
  EXPECT_EQ(q4_total, q5_total);
  EXPECT_EQ(static_cast<uint64_t>(q4_total), stress_ops);

  // Q7 counts only non-local StressTest reads: a strict subset of Q6.
  int64_t q7_total = 0;
  for (const Tuple& row : Results(q7)) {
    q7_total += row.Get("COUNT").int_value();
  }
  EXPECT_GT(q7_total, 0);
  EXPECT_LT(q7_total, q6_total);

  // Q8 streamed one latency row per HBase request.
  EXPECT_EQ(Results(q8).size(), hget.stats().total_ops() + hscan.stats().total_ops());

  // Q9: per-job average task latency, with one measurement per map task.
  auto q9_rows = Results(q9);
  ASSERT_GE(q9_rows.size(), 1u);
  EXPECT_EQ(q9_rows[0].Get("job.id").string_value(), "MRsort10g");
  EXPECT_GT(q9_rows[0].Get("AVERAGE(latencyMeasurement)").AsDouble(), 0);

  // Teardown: uninstalling everything returns every tracepoint to quiescence.
  for (uint64_t id : {q1, q2, q3, q4, q5, q6, q7, q8, q9}) {
    EXPECT_TRUE(frontend->Uninstall(id).ok());
  }
  for (const auto& proc : cluster_->world()->processes()) {
    for (const auto& name : proc->registry()->Names()) {
      EXPECT_FALSE(proc->registry()->Find(name)->enabled()) << name;
    }
  }
}

TEST_F(FullStackTest, TemporalFilterOnFromRejected) {
  Result<uint64_t> q = cluster_->world()->frontend()->Install(
      "From incr In First(DataNodeMetrics.incrBytesRead) Select COUNT");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace pivot
