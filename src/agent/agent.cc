#include "src/agent/agent.h"

#include <chrono>

#include "src/analysis/query_linter.h"
#include "src/telemetry/metrics.h"

namespace pivot {

namespace {

telemetry::Counter& ReportsCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.reports");
  return c;
}

telemetry::Counter& ReportBytesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.report_bytes");
  return c;
}

telemetry::Counter& DroppedTuplesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.tuples_dropped");
  return c;
}

telemetry::Counter& EmittedTuplesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.tuples_emitted");
  return c;
}

telemetry::Counter& WeavesRefusedCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.weaves_refused");
  return c;
}

telemetry::Histogram& FlushNanosHistogram() {
  static telemetry::Histogram& h = telemetry::Metrics().GetHistogram("agent.flush_nanos");
  return h;
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

PTAgent::PTAgent(MessageBus* bus, TracepointRegistry* registry, ProcessInfo info)
    : bus_(bus), registry_(registry), info_(std::move(info)) {
  subscription_ =
      bus_->Subscribe(kCommandTopic, [this](const BusMessage& msg) { HandleCommand(msg); });
  // Announce ourselves so the frontend replays any already-active queries
  // (processes can start after queries are installed).
  bus_->Publish(BusMessage{kReportTopic, EncodeHello()});
}

PTAgent::~PTAgent() { bus_->Unsubscribe(subscription_); }

void PTAgent::HandleCommand(const BusMessage& msg) {
  Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
  if (!decoded.ok()) {
    return;  // Malformed commands are dropped; agents must not crash hosts.
  }
  switch (decoded->type) {
    case ControlMessageType::kWeave: {
      const WeaveCommand& cmd = decoded->weave;
      // Re-verify before anything touches the registry (third verification
      // boundary): the bytes came off the wire, and a frontend that linted
      // them is an assumption, not a guarantee. Like an eBPF verifier, the
      // agent refuses to weave programs it cannot prove well-formed. No
      // schema here — tracepoints may be defined later (deferred weaving) —
      // and no dead-column heuristics; only error-severity defects refuse.
      {
        analysis::LintOptions lint_options;
        lint_options.assume_projection_pushdown = false;
        // Reachability against the deployment model, when wired: component
        // resolution falls back to the graph's tracepoint anchors since
        // there is no schema here.
        lint_options.propagation = propagation_;
        analysis::LintPlan plan;
        plan.aggregated = cmd.plan.aggregated;
        plan.group_fields = cmd.plan.group_fields;
        plan.aggs = cmd.plan.aggs;
        plan.output_columns = cmd.plan.output_columns;
        analysis::QueryLintResult lint =
            analysis::QueryLinter(lint_options).Lint(cmd.query_id, cmd.advice, plan);
        if (lint.report.has_errors()) {
          WeavesRefusedCounter().Increment();
          std::lock_guard<std::mutex> lock(mu_);
          ++weaves_refused_;
          return;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queries_.count(cmd.query_id) != 0) {
          return;  // Duplicate weave; ignore (no re-ack either).
        }
        QueryState state;
        state.plan = cmd.plan;
        state.agg = Aggregator(cmd.plan.group_fields, cmd.plan.aggs);
        queries_.emplace(cmd.query_id, std::move(state));
      }
      // Hand the registry the full advice list: tracepoints this process does
      // not define are woven lazily if/when they are defined (deferred
      // weaving), and foreign tracepoints simply never fire here.
      (void)registry_->WeaveQuery(cmd.query_id, cmd.advice);
      WeaveAck ack;
      ack.query_id = cmd.query_id;
      ack.host = info_.host;
      ack.process_name = info_.process_name;
      ack.timestamp_micros = runtime_ != nullptr ? runtime_->NowMicros() : 0;
      bus_->Publish(BusMessage{kReportTopic, EncodeWeaveAck(ack)});
      break;
    }
    case ControlMessageType::kUnweave: {
      registry_->UnweaveQuery(decoded->unweave_query_id);
      std::lock_guard<std::mutex> lock(mu_);
      queries_.erase(decoded->unweave_query_id);
      break;
    }
    case ControlMessageType::kReport:
    case ControlMessageType::kHello:
    case ControlMessageType::kWeaveAck:
    case ControlMessageType::kStats:
      break;  // Agents ignore other agents' traffic.
  }
}

void PTAgent::EmitTuple(uint64_t query_id, const Tuple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    ++dropped_total_;
    DroppedTuplesCounter().Increment();
    return;  // Query was unwoven concurrently; drop.
  }
  QueryState& state = it->second;
  ++state.emitted;
  ++emitted_total_;
  EmittedTuplesCounter().Increment();
  if (state.plan.aggregated) {
    state.agg.AddInput(t);
  } else {
    state.buffered.push_back(t);
  }
}

void PTAgent::Flush(int64_t now_micros) {
  int64_t flush_start = MonotonicNanos();
  std::vector<AgentReport> reports;
  std::vector<AgentStats> heartbeats;
  // queryId -> suppressed count, for the meta-tracepoint rows below.
  std::vector<std::pair<uint64_t, uint64_t>> flushed_meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [query_id, state] : queries_) {
      AgentReport report;
      report.query_id = query_id;
      report.host = info_.host;
      report.process_name = info_.process_name;
      report.timestamp_micros = now_micros;
      report.aggregated = state.plan.aggregated;
      bool empty = state.plan.aggregated ? state.agg.empty() : state.buffered.empty();
      if (empty) {
        // Quiet interval: publish nothing, but count the suppression and
        // heartbeat periodically so the frontend knows we are alive.
        ++state.reports_suppressed;
        if (++state.suppressed_since_heartbeat >= kFlushesPerSuppressedHeartbeat) {
          state.suppressed_since_heartbeat = 0;
          AgentStats hb;
          hb.query_id = query_id;
          hb.host = info_.host;
          hb.process_name = info_.process_name;
          hb.timestamp_micros = now_micros;
          hb.last_report_micros = state.last_report_micros;
          hb.reports_suppressed = state.reports_suppressed;
          hb.tuples_emitted = state.emitted;
          heartbeats.push_back(std::move(hb));
        }
        continue;
      }
      if (state.plan.aggregated) {
        report.tuples = state.agg.StateTuples();
        state.agg.Clear();
      } else {
        report.tuples = std::move(state.buffered);
        state.buffered.clear();
      }
      state.last_report_micros = now_micros;
      state.suppressed_since_heartbeat = 0;
      reported_total_ += report.tuples.size();
      ++reports_published_;
      flushed_meta.emplace_back(query_id, state.reports_suppressed);
      reports.push_back(std::move(report));
    }
  }
  // Publish and meta-fire outside the lock: advice woven at PTAgent.Flush
  // calls back into EmitTuple, which takes mu_. Tuples it emits land in the
  // *next* interval, so self-observation converges instead of recursing.
  const Tracepoint* flush_tp = runtime_ != nullptr ? runtime_->meta.agent_flush : nullptr;
  for (size_t i = 0; i < reports.size(); ++i) {
    std::vector<uint8_t> encoded = EncodeReport(reports[i]);
    ReportsCounter().Increment();
    ReportBytesCounter().Increment(encoded.size());
    size_t report_bytes = encoded.size();
    bus_->Publish(BusMessage{kReportTopic, std::move(encoded)});
    if (flush_tp != nullptr && flush_tp->enabled()) {
      ExecutionContext ctx(runtime_);
      flush_tp->Invoke(&ctx,
                       {{"queryId", Value(static_cast<int64_t>(flushed_meta[i].first))},
                        {"tuples", Value(static_cast<int64_t>(reports[i].tuples.size()))},
                        {"bytes", Value(static_cast<int64_t>(report_bytes))},
                        {"suppressed", Value(static_cast<int64_t>(flushed_meta[i].second))}});
    }
  }
  for (const auto& hb : heartbeats) {
    bus_->Publish(BusMessage{kReportTopic, EncodeAgentStats(hb)});
  }
  FlushNanosHistogram().Observe(static_cast<uint64_t>(MonotonicNanos() - flush_start));
}

uint64_t PTAgent::emitted_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_total_;
}

uint64_t PTAgent::reported_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reported_total_;
}

uint64_t PTAgent::reports_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_published_;
}

uint64_t PTAgent::dropped_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_total_;
}

uint64_t PTAgent::weaves_refused() const {
  std::lock_guard<std::mutex> lock(mu_);
  return weaves_refused_;
}

std::vector<AgentQueryStats> PTAgent::QueryStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AgentQueryStats> out;
  out.reserve(queries_.size());
  for (const auto& [query_id, state] : queries_) {
    out.push_back({query_id, state.emitted, state.last_report_micros, state.reports_suppressed});
  }
  return out;
}

}  // namespace pivot
