// Property-based equivalence: the optimized, baggage-based inline evaluation
// of happened-before joins (Fig 6b) must produce exactly the same results as
// naive global evaluation over the recorded execution DAG (Fig 6a), across
// randomized executions (linear and branching) and a pool of representative
// queries exercising joins, chains, temporal filters, Where clauses, and all
// the §4 rewrites (projection / selection / aggregation pushdown).

#include <gtest/gtest.h>

#include <memory>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "src/common/rand.h"
#include "src/query/compiler.h"
#include "src/query/naive_eval.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

constexpr const char* kTracepoints[] = {"A", "B", "C", "D"};

// Queries safe on branching executions (no temporal filters: FIRST/RECENT
// tie-breaking between concurrent branches is implementation-defined).
const char* kBranchSafeQueries[] = {
    "From b In B Join a In A On a -> b GroupBy a.x Select a.x, SUM(b.y)",
    "From b In B Join a In A On a -> b Select COUNT",
    "From c In C Join b In B On b -> c Join a In A On a -> b Where a.x != c.x "
    "GroupBy a.x, c.x Select a.x, c.x, COUNT",
    "From d In D Join a In A On a -> d Select SUM(a.x)",
    "From b In B Select b.x",
    "From b In B Join a In A On a -> b Where a.x == b.x Select COUNT",
    "From c In C Join a In A On a -> c Join b In B On b -> c "
    "GroupBy a.x, b.x Select a.x, b.x, COUNT",
    "From b In B, D Join a In A On a -> b GroupBy a.y Select a.y, COUNT",
    "From b In B Join a In A On a -> b GroupBy a.x, b.x Select a.x, b.x, AVERAGE(b.y)",
};

// Additional queries valid only on linear executions.
const char* kLinearOnlyQueries[] = {
    "From b In B Join a In First(A) On a -> b GroupBy a.y Select a.y, COUNT",
    "From b In B Join a In MostRecent(A) On a -> b Select a.x, b.x",
    "From c In C Join b In MostRecent(B) On b -> c Join a In First(A) On a -> b "
    "Select a.x, b.x, c.x",
    "From b In B Join a In FirstN(2, A) On a -> b Select COUNT",
    "From b In B Join a In MostRecentN(2, A) On a -> b GroupBy a.x Select a.x, COUNT",
};

TracepointDef Def(const std::string& name) {
  TracepointDef def;
  def.name = name;
  def.exports = {"x", "y"};
  return def;
}

struct MiniProcess {
  TracepointRegistry registry;
  ProcessRuntime runtime;
  std::unique_ptr<PTAgent> agent;

  MiniProcess(MessageBus* bus, ManualClock* clock, std::string host) {
    runtime.info.host = std::move(host);
    runtime.info.process_name = "proc-" + runtime.info.host;
    runtime.now_micros = [clock] { return clock->now; };
    agent = std::make_unique<PTAgent>(bus, &registry, runtime.info);
    runtime.sink = agent.get();
    for (const char* tp : kTracepoints) {
      EXPECT_TRUE(registry.Define(Def(tp)).ok());
    }
  }
};

class EquivalenceHarness {
 public:
  explicit EquivalenceHarness(uint64_t seed) : rng_(seed), frontend_(&bus_, &schema_) {
    for (const char* tp : kTracepoints) {
      EXPECT_TRUE(schema_.Define(Def(tp)).ok());
    }
    for (int i = 0; i < 3; ++i) {
      processes_.push_back(
          std::make_unique<MiniProcess>(&bus_, &clock_, std::string(1, static_cast<char>('P' + i))));
    }
  }

  Frontend& frontend() { return frontend_; }
  TraceRecorder& recorder() { return recorder_; }
  Rng& rng() { return rng_; }

  // Fires a random tracepoint in a random process. The context hops across
  // the process boundary through the serialized wire format.
  void RandomInvocation(ExecutionContext* ctx) {
    MiniProcess& proc = *processes_[rng_.NextBelow(processes_.size())];
    // Cross the boundary: serialize + deserialize the baggage.
    std::vector<uint8_t> wire = ctx->baggage().Serialize();
    Result<Baggage> baggage = Baggage::Deserialize(wire);
    ASSERT_TRUE(baggage.ok());
    // Wire-seeded encoding caches must reproduce the received bytes exactly:
    // serializing an untouched deserialized baggage is a cache copy, and the
    // canonical encoder guarantees it equals what arrived.
    EXPECT_EQ((*baggage).Serialize(), wire);
    ctx->set_baggage(std::move(baggage).value());
    ctx->set_runtime(&proc.runtime);

    clock_.Tick(1000);
    const char* tp_name = kTracepoints[rng_.NextBelow(4)];
    Tracepoint* tp = proc.registry.Find(tp_name);
    tp->Invoke(ctx, {{"x", Value(rng_.NextInt(0, 3))}, {"y", Value(rng_.NextInt(-5, 5))}});
  }

  // Runs a segment of a request; may fork sub-branches when allowed.
  void RunSegment(ExecutionContext* ctx, bool allow_branches, int depth) {
    int len = static_cast<int>(1 + rng_.NextBelow(6));
    for (int i = 0; i < len; ++i) {
      if (allow_branches && depth < 2 && rng_.NextBool(0.25)) {
        ExecutionContext branch = ctx->Fork();
        RunSegment(&branch, allow_branches, depth + 1);
        RunSegment(ctx, allow_branches, depth + 1);
        ctx->Join(std::move(branch));
      } else {
        RandomInvocation(ctx);
      }
    }
  }

  void RunRequests(int count, bool allow_branches) {
    for (int r = 0; r < count; ++r) {
      ExecutionContext ctx(&processes_[0]->runtime);
      ctx.StartTrace(&recorder_);
      RunSegment(&ctx, allow_branches, 0);
    }
  }

  void FlushAll() {
    clock_.Tick(1'000'000);
    for (auto& proc : processes_) {
      proc->agent->Flush(clock_.now);
    }
  }

 private:
  Rng rng_;
  ManualClock clock_;
  MessageBus bus_;
  TracepointRegistry schema_;
  TraceRecorder recorder_;
  Frontend frontend_;
  std::vector<std::unique_ptr<MiniProcess>> processes_;
};

void CheckEquivalence(uint64_t seed, bool allow_branches,
                      const std::vector<const char*>& query_pool) {
  EquivalenceHarness harness(seed);

  std::vector<std::pair<uint64_t, const char*>> installed;
  for (const char* text : query_pool) {
    Result<uint64_t> id = harness.frontend().Install(text);
    ASSERT_TRUE(id.ok()) << text << ": " << id.status().ToString();
    installed.emplace_back(*id, text);
  }

  harness.RunRequests(static_cast<int>(5 + harness.rng().NextBelow(15)), allow_branches);
  harness.FlushAll();

  for (const auto& [id, text] : installed) {
    Result<Query> ast = ParseQuery(text);
    ASSERT_TRUE(ast.ok());
    Result<NaiveResult> naive = EvaluateNaive(*ast, harness.recorder(), nullptr);
    ASSERT_TRUE(naive.ok()) << naive.status().ToString();

    std::vector<Tuple> runtime_rows = harness.frontend().Results(id);
    EXPECT_EQ(CanonicalTuples(runtime_rows), CanonicalTuples(naive->rows))
        << "seed=" << seed << " branches=" << allow_branches << "\nquery: " << text;
  }
}

class LinearEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinearEquivalenceTest, AllQueriesMatchNaive) {
  std::vector<const char*> pool(std::begin(kBranchSafeQueries), std::end(kBranchSafeQueries));
  pool.insert(pool.end(), std::begin(kLinearOnlyQueries), std::end(kLinearOnlyQueries));
  CheckEquivalence(GetParam(), /*allow_branches=*/false, pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearEquivalenceTest,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

class BranchingEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BranchingEquivalenceTest, BranchSafeQueriesMatchNaive) {
  std::vector<const char*> pool(std::begin(kBranchSafeQueries), std::end(kBranchSafeQueries));
  CheckEquivalence(GetParam(), /*allow_branches=*/true, pool);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BranchingEquivalenceTest,
                         ::testing::Range(uint64_t{100}, uint64_t{115}));

// Named-subquery joins (the Q9 shape) run through the full runtime and must
// match naive evaluation with the same registered subquery.
class SubqueryEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SubqueryEquivalenceTest, MatchesNaive) {
  EquivalenceHarness harness(GetParam());
  constexpr char kSub[] =
      "From b In B Join a In MostRecent(A) On a -> b Select b.y - a.y";
  constexpr char kOuter[] =
      "From d In D Join m In QSub On m -> d GroupBy d.x Select d.x, AVERAGE(m), COUNT";

  ASSERT_TRUE(harness.frontend().RegisterNamedQuery("QSub", kSub).ok());
  Result<uint64_t> id = harness.frontend().Install(kOuter);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  harness.RunRequests(12, /*allow_branches=*/false);
  harness.FlushAll();

  QueryRegistry named;
  ASSERT_TRUE(named.Register("QSub", *ParseQuery(kSub)).ok());
  Result<Query> outer_ast = ParseQuery(kOuter);
  ASSERT_TRUE(outer_ast.ok());
  Result<NaiveResult> naive = EvaluateNaive(*outer_ast, harness.recorder(), &named);
  ASSERT_TRUE(naive.ok()) << naive.status().ToString();

  EXPECT_EQ(CanonicalTuples(harness.frontend().Results(*id)), CanonicalTuples(naive->rows))
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubqueryEquivalenceTest,
                         ::testing::Range(uint64_t{300}, uint64_t{310}));

// The unoptimized compilation modes must also agree with ground truth: the
// §4 rewrites are pure optimizations, never semantic changes.
class AblationEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AblationEquivalenceTest, OptimizationsPreserveSemantics) {
  EquivalenceHarness harness(GetParam());
  QueryCompiler::Options no_opt;
  no_opt.push_projection = false;
  no_opt.push_selection = false;
  no_opt.push_aggregation = false;

  std::vector<std::pair<uint64_t, const char*>> installed;
  for (const char* text : kBranchSafeQueries) {
    Result<uint64_t> id = harness.frontend().Install(text, no_opt);
    ASSERT_TRUE(id.ok()) << text << ": " << id.status().ToString();
    installed.emplace_back(*id, text);
  }
  harness.RunRequests(10, /*allow_branches=*/true);
  harness.FlushAll();

  for (const auto& [id, text] : installed) {
    Result<Query> ast = ParseQuery(text);
    ASSERT_TRUE(ast.ok());
    Result<NaiveResult> naive = EvaluateNaive(*ast, harness.recorder(), nullptr);
    ASSERT_TRUE(naive.ok());
    EXPECT_EQ(CanonicalTuples(harness.frontend().Results(id)), CanonicalTuples(naive->rows))
        << "seed=" << GetParam() << "\nquery: " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AblationEquivalenceTest,
                         ::testing::Range(uint64_t{200}, uint64_t{210}));

}  // namespace
}  // namespace pivot
