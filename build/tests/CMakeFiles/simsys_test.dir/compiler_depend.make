# Empty compiler generated dependencies file for simsys_test.
# This may be replaced when dependencies are built.
