#include "src/common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace pivot {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += pieces[i];
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    char ca = a[i];
    char cb = b[i];
    if (ca >= 'A' && ca <= 'Z') {
      ca = static_cast<char>(ca - 'A' + 'a');
    }
    if (cb >= 'A' && cb <= 'Z') {
      cb = static_cast<char>(cb - 'A' + 'a');
    }
    if (ca != cb) {
      return false;
    }
  }
  return true;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace pivot
