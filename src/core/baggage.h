// Baggage: the per-request container for tuples that travels with a request
// across thread, process and machine boundaries (§4, §5, Table 4).
//
// Baggage is what makes the happened-before join cheap: advice at an earlier
// tracepoint Packs (projected, pre-aggregated) tuples; advice at a later
// tracepoint Unpacks them and joins in situ, so no global θ-join is needed
// (Fig 6b vs 6a).
//
// To preserve happened-before across branching executions, baggage maintains
// versioned *instances* identified by interval-tree-clock IDs: tuples packed
// on one branch are invisible to concurrent branches until the branches
// rejoin (§5 "Branches and Versioning").

#ifndef PIVOT_SRC_CORE_BAGGAGE_H_
#define PIVOT_SRC_CORE_BAGGAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/core/aggregation.h"
#include "src/core/itc.h"
#include "src/core/tuple.h"

namespace pivot {

// Identifies one bag within the baggage. Queries are assigned unique ids by
// the frontend; a query with k happened-before joins uses k distinct bags
// (one per packing stage), so keys are allocated per (query, stage).
using BagKey = uint64_t;

// Bag-key allocation convention (shared with the query compiler): key =
// query_id * kBagKeysPerQuery + stage. BagKeyQuery recovers the owning query,
// which the self-telemetry layer uses to attribute serialized baggage bytes
// per query (Fig 10's per-query accounting, live).
inline constexpr uint64_t kBagKeysPerQuery = 256;
inline constexpr uint64_t BagKeyQuery(BagKey key) { return key / kBagKeysPerQuery; }

// How a bag retains tuples (§3 "Pack also has the following special cases").
enum class PackSemantics : uint8_t {
  kAll = 0,        // Unbounded append. Risky (a "full table scan", §4); the
                   // compiler only produces it when a query demands it.
  kFirstN = 1,     // Keep the first `limit` tuples, ignore the rest (FIRST=1).
  kRecentN = 2,    // Keep the most recent `limit` tuples (RECENT=1).
  kAggregate = 3,  // Grouped/plain aggregation; bounded by #groups.
};

// Static description of a bag: semantics plus, for kAggregate, the grouping
// and aggregate columns. Pack-side and unpack-side advice compiled from the
// same query share the same spec.
struct BagSpec {
  PackSemantics semantics = PackSemantics::kAll;
  uint32_t limit = 1;                       // kFirstN / kRecentN.
  std::vector<std::string> group_fields;    // kAggregate.
  std::vector<AggSpec> aggs;                // kAggregate.

  bool operator==(const BagSpec& other) const;

  static BagSpec All() { return BagSpec{PackSemantics::kAll, 0, {}, {}}; }
  static BagSpec First(uint32_t n = 1) { return BagSpec{PackSemantics::kFirstN, n, {}, {}}; }
  static BagSpec Recent(uint32_t n = 1) { return BagSpec{PackSemantics::kRecentN, n, {}, {}}; }
  static BagSpec Aggregated(std::vector<std::string> groups, std::vector<AggSpec> aggs) {
    return BagSpec{PackSemantics::kAggregate, 0, std::move(groups), std::move(aggs)};
  }
};

// Wire codec for BagSpec (shared by baggage serialization and the agent
// command protocol).
void PutBagSpec(std::vector<uint8_t>* out, const BagSpec& spec);
bool GetBagSpec(const uint8_t* data, size_t size, size_t* pos, BagSpec* spec);

// Safety valve for kAll bags: §4 notes that an unrestricted pack "potentially
// accumulates a new tuple for every tracepoint invocation" — the baggage
// analogue of a full table scan. Beyond this many retained tuples further
// packs are dropped (and counted), bounding worst-case propagation cost.
inline constexpr size_t kMaxBagTuples = 4096;

// One bag: retained tuples under a BagSpec. For kAggregate the retained form
// is partial aggregate state (see Aggregator::StateTuples).
class TupleBag {
 public:
  TupleBag() = default;
  explicit TupleBag(BagSpec spec) : spec_(std::move(spec)) {}

  const BagSpec& spec() const { return spec_; }

  // Tuples rejected by the kMaxBagTuples safety valve.
  uint64_t dropped() const { return dropped_; }

  // Packs one tuple under the bag's semantics.
  void Add(const Tuple& t);

  // Merges another bag with the same spec (branch rejoin / multi-instance
  // unpack). `other` is treated as later/concurrent: for kFirstN this bag's
  // tuples win; for kRecentN the other's win.
  void MergeFrom(const TupleBag& other);

  // Absorbs one partial aggregate state tuple (kAggregate bags only; used
  // when reconstructing a bag from the wire).
  void AddState(const Tuple& state);

  // Wire-decode only: restores the dropped-tuple counter.
  void RestoreDropped(uint64_t n) { dropped_ = n; }

  // The externalized contents: retained tuples, or aggregate state tuples.
  std::vector<Tuple> Contents() const;

  size_t size() const;
  bool empty() const { return size() == 0; }

 private:
  // Lazily initializes the aggregator for kAggregate semantics.
  Aggregator& Agg();

  BagSpec spec_;
  std::vector<Tuple> tuples_;  // Non-aggregate semantics.
  uint64_t dropped_ = 0;       // kMaxBagTuples overflow count.
  bool agg_init_ = false;      // Aggregate semantics (Aggregator is copyable).
  Aggregator agg_{{}, {}};
};

// The baggage proper. Value type: copies are independent (copy-on-branch is
// exactly the paper's branch semantics).
class Baggage {
 public:
  Baggage() = default;

  // ---- Pack / Unpack (Table 4) ----

  // Packs `t` into bag `key` of the *active* instance, creating the bag with
  // `spec` on first use.
  void Pack(BagKey key, const BagSpec& spec, const Tuple& t);

  // Retrieves all tuples for `key`: unpacked from each instance (inactive
  // ones first — they are chronologically older) and combined according to
  // the bag's semantics.
  std::vector<Tuple> Unpack(BagKey key) const;

  // ---- Branching (§5) ----

  // Splits for a branching execution: returns the two sides' baggage. Each
  // side carries a copy of all existing tuples (as inactive instances) and a
  // fresh active instance owning half of this baggage's active ID.
  std::pair<Baggage, Baggage> Split() const;

  // Merges the baggage of two rejoining branches: active instances merge
  // bag-wise under a joined ID; inactive instances are deduplicated by ID.
  static Baggage Join(const Baggage& a, const Baggage& b);

  // ---- Serialization (Table 4) ----

  // Self-telemetry of one serialization: the numbers behind Fig 10 (baggage
  // bytes on the wire) attributed per owning query.
  struct SerializeStats {
    struct QueryShare {
      uint64_t bytes = 0;   // Encoded bag bytes (key + spec + tuples).
      uint64_t tuples = 0;  // Retained tuples in those bags.
    };
    uint64_t bytes = 0;      // Total serialized size.
    uint64_t tuples = 0;     // Retained tuples across all instances.
    uint64_t instances = 0;  // Active + inactive instances.
    // Keyed by BagKeyQuery(bag key); framing bytes (instance ids, counts)
    // are the remainder bytes - sum(shares.bytes).
    std::map<uint64_t, QueryShare> queries;
  };

  // A pristine baggage (seed ID, no tuples anywhere) serializes to 0 bytes,
  // matching the paper's "empty baggage with a serialized size of 0 bytes".
  // The stats overload additionally reports the byte/tuple accounting above
  // (only computed when requested — the plain overload stays allocation-lean).
  std::vector<uint8_t> Serialize() const { return Serialize(nullptr); }
  std::vector<uint8_t> Serialize(SerializeStats* stats) const;
  static Result<Baggage> Deserialize(const uint8_t* data, size_t size);
  static Result<Baggage> Deserialize(const std::vector<uint8_t>& bytes) {
    return Deserialize(bytes.data(), bytes.size());
  }

  // ---- Introspection ----

  const ItcId& active_id() const { return active_id_; }
  size_t instance_count() const { return 1 + inactive_.size(); }

  // Total retained tuples across all instances and bags (the paper's cost
  // metric for propagation overhead, §4).
  size_t TupleCount() const;

  // Total tuples rejected by the kMaxBagTuples safety valve, across all
  // instances and bags. Non-zero means a query hit the unbounded-pack guard.
  uint64_t DroppedTupleCount() const;

  bool IsTrivial() const;

  // Drops all tuples and versioning (end of request).
  void Clear();

 private:
  // Memoized wire encoding of one instance: the `[gen][id][bags...]` segment
  // Serialize emits, plus (optionally) the per-query byte/tuple attribution
  // computed while encoding. `has_shares` is false for caches seeded from the
  // wire at Deserialize, where the split per query is unknown without a
  // re-encode.
  struct InstanceCache {
    std::vector<uint8_t> bytes;
    std::map<uint64_t, SerializeStats::QueryShare> shares;
    bool has_shares = false;
  };

  struct Instance {
    // Instance identity is (id, gen): the interval-tree ID alone is not
    // globally unique over time because joining the two halves of a split
    // recreates the parent interval (split → join → split would reuse the
    // seed ID). The generation counter increases at every split/join, so
    // snapshots taken in different epochs never collide, while copies of the
    // *same* snapshot propagated along different branches still deduplicate.
    ItcId id;
    uint64_t gen = 0;
    std::map<BagKey, TupleBag> bags;

    bool has_tuples() const;

    // Ensures `cache` holds this instance's encoding, computing it at most
    // once — instances are immutable once frozen behind shared_ptr<const>,
    // so the bytes never invalidate. Deserialize seeds the cache from the
    // received wire slice instead (encoded=true before first EnsureEncoded).
    void EnsureEncoded() const;

    mutable std::once_flag encode_once;
    mutable std::atomic<bool> encoded{false};
    mutable InstanceCache cache;
  };
  using InstancePtr = std::shared_ptr<const Instance>;

  // Freezes the active instance (id/gen/bags snapshot) for retention on both
  // sides of a split; carries the active encoding cache along when valid.
  InstancePtr FreezeActive() const;

  // Encodes one instance's `[gen][id][bags...]` segment into `cache`,
  // computing per-query attribution alongside.
  static void EncodeInstance(uint64_t gen, const ItcId& id,
                             const std::map<BagKey, TupleBag>& bags, InstanceCache* cache);

  // The active instance's contents live directly in the Baggage object.
  ItcId active_id_ = ItcId::Seed();
  uint64_t active_gen_ = 0;
  std::map<BagKey, TupleBag> active_bags_;
  // Retained (immutable) instances, chronological order, oldest first.
  // Copy-on-write: Split/Join/copy share them instead of deep-copying.
  std::vector<InstancePtr> inactive_;

  // Memoized encoding of the active instance; invalidated by Pack (the only
  // mutation of active_bags_) and seeded by Deserialize, so serializing an
  // unchanged baggage — e.g. on the response leg of an RPC — is a copy of
  // cached bytes rather than a re-encode.
  mutable InstanceCache active_cache_;
  mutable bool active_cache_valid_ = false;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_BAGGAGE_H_
