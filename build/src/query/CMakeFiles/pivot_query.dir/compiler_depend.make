# Empty compiler generated dependencies file for pivot_query.
# This may be replaced when dependencies are built.
