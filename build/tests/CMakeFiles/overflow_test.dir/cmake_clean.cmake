file(REMOVE_RECURSE
  "CMakeFiles/overflow_test.dir/overflow_test.cc.o"
  "CMakeFiles/overflow_test.dir/overflow_test.cc.o.d"
  "overflow_test"
  "overflow_test.pdb"
  "overflow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overflow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
