file(REMOVE_RECURSE
  "CMakeFiles/pivot_agent.dir/agent.cc.o"
  "CMakeFiles/pivot_agent.dir/agent.cc.o.d"
  "CMakeFiles/pivot_agent.dir/flusher.cc.o"
  "CMakeFiles/pivot_agent.dir/flusher.cc.o.d"
  "CMakeFiles/pivot_agent.dir/frontend.cc.o"
  "CMakeFiles/pivot_agent.dir/frontend.cc.o.d"
  "CMakeFiles/pivot_agent.dir/protocol.cc.o"
  "CMakeFiles/pivot_agent.dir/protocol.cc.o.d"
  "libpivot_agent.a"
  "libpivot_agent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_agent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
