file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_limplock.dir/bench_fig9_limplock.cc.o"
  "CMakeFiles/bench_fig9_limplock.dir/bench_fig9_limplock.cc.o.d"
  "bench_fig9_limplock"
  "bench_fig9_limplock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_limplock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
