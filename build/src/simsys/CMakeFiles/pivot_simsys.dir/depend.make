# Empty dependencies file for pivot_simsys.
# This may be replaced when dependencies are built.
