// Grouped aggregation with combiner support (Tables 1 and 3).
//
// Pivot Tracing aggregates in three places with the same machinery:
//   1. Pack-side pre-aggregation in the baggage (Table 3's pushed-down A/GA);
//   2. process-local aggregation of emitted tuples in the PT agent (§5);
//   3. global merging of agent reports in the frontend.
// Stages 2 and 3 combine *partial* aggregates, so every aggregator carries a
// combiner ("for Count, the combiner is Sum"): partial state is externalized
// as plain state tuples which any other Aggregator can absorb with AddState().

#ifndef PIVOT_SRC_CORE_AGGREGATION_H_
#define PIVOT_SRC_CORE_AGGREGATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/symbol.h"
#include "src/core/tuple.h"
#include "src/core/value.h"

namespace pivot {

enum class AggFn : uint8_t {
  kCount = 0,
  kSum = 1,
  kMin = 2,
  kMax = 3,
  kAverage = 4,
};

// Returns "COUNT", "SUM", ... (the query-language spelling).
const char* AggFnName(AggFn fn);

// One aggregate column of a query: `fn(input)` emitted as column `output`.
// Count ignores `input`.
struct AggSpec {
  AggFn fn;
  std::string input;   // Source column (empty for Count).
  std::string output;  // Result column name, e.g. "SUM(incr.delta)".

  // When true, `input` already holds *partial aggregate state* produced by an
  // upstream (pushed-down) aggregation, and AddInput combines rather than
  // accumulates — the `Combine` of Table 3. For Average the companion count is
  // read from `input + "#n"`.
  bool from_state = false;

  bool operator==(const AggSpec& other) const {
    return fn == other.fn && input == other.input && output == other.output &&
           from_state == other.from_state;
  }

  // Names of the state columns this aggregate externalizes in a state tuple.
  // All functions use one column (named `output`) except Average, which keeps
  // (sum, count) in `output` and `output + "#n"`.
  std::vector<std::string> StateColumns() const;
};

// Streaming grouped aggregator. Group keys are the values of `group_fields`;
// with no group fields there is a single implicit group (plain Aggregate).
// Output order is group-insertion order, which keeps results deterministic.
//
// Group lookup is a hashed index over the projected group Values (hash probe
// with full type-aware equality confirmation) — no canonical string key is
// materialized on the per-tuple path. Keys are type-distinguishing: int 1,
// double 1.0 and string "1" land in three different groups; doubles compare
// bitwise (so -0.0 and 0.0 are distinct groups, and only bit-identical NaNs
// coalesce).
class Aggregator {
 public:
  Aggregator(std::vector<std::string> group_fields, std::vector<AggSpec> specs);

  const std::vector<std::string>& group_fields() const { return group_fields_; }
  const std::vector<AggSpec>& specs() const { return specs_; }

  // Accumulates one raw input tuple.
  void AddInput(const Tuple& t);

  // Combines one state tuple previously produced by StateTuples() on an
  // aggregator with the same configuration.
  void AddState(const Tuple& t);

  // Externalizes partial state: one tuple per group containing the group
  // fields plus each spec's state columns. Suitable for baggage packing and
  // agent→frontend reporting.
  std::vector<Tuple> StateTuples() const;

  // Final results: one tuple per group with group fields + each spec's
  // `output` column (Average divides here).
  std::vector<Tuple> Finalize() const;

  void Clear();
  bool empty() const { return groups_.empty(); }
  size_t group_count() const { return groups_.size(); }

  // Mutable view of one accumulator, used by the .cc's combine helper.
  struct AccumRef {
    bool& has_value;
    Value& value;
    int64_t& count;
  };

 private:
  struct Accum {
    bool has_value = false;
    Value value;       // Count: running count. Sum/Min/Max: value. Average: sum.
    int64_t count = 0;  // Average only.
  };

  struct Group {
    Tuple key_tuple;  // Group fields only, in group_fields_ order.
    std::vector<Accum> accums;
  };

  // Hashed group index: open-addressed linear probing over
  // (group-key hash, groups_ position). Power-of-two sized; rehash keeps the
  // stored hashes, so group keys are never re-hashed after insertion.
  struct IndexSlot {
    uint64_t hash = 0;
    size_t group = kEmptySlot;
  };
  static constexpr size_t kEmptySlot = static_cast<size_t>(-1);

  Group& GroupFor(const Tuple& t);
  void GrowIndex();

  // Column references resolved once at construction so the per-tuple
  // accumulate path (pack-side pre-aggregation fires on every tracepoint
  // invocation) reads tuples by SymbolId, not by string.
  struct SpecIds {
    SymbolId input = kInvalidSymbol;     // spec.input
    SymbolId input_n = kInvalidSymbol;   // spec.input + "#n" (from_state Average)
    SymbolId output = kInvalidSymbol;    // spec.output
    SymbolId output_n = kInvalidSymbol;  // spec.output + "#n" (Average state)
  };

  std::vector<std::string> group_fields_;
  std::vector<SymbolId> group_ids_;
  std::vector<AggSpec> specs_;
  std::vector<SpecIds> spec_ids_;
  std::vector<Group> groups_;
  std::vector<IndexSlot> slots_;  // Empty until the first group; 2^k sized.
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_AGGREGATION_H_
