// pivot_lint: the static-analysis front door — lint Pivot Tracing queries
// without installing anything (docs/ANALYSIS.md).
//
// Two modes:
//
//   ./build/examples/pivot_lint                    (demo)
//       Lints the paper's query corpus against the simulated Hadoop cluster's
//       tracepoint vocabulary (all clean), then walks a gallery of minimal
//       broken advice programs, one per diagnostic code — an executable
//       companion to the docs/ANALYSIS.md catalogue.
//
//   echo "From ..." | ./build/examples/pivot_lint -
//   ./build/examples/pivot_lint "From ..." ["From ..."]...
//       Lints each query (one per stdin line with '-', or one per argument)
//       and exits non-zero if any has error-severity findings — usable as a
//       pre-install gate in scripts.
//
//   ./build/examples/pivot_lint topology
//       Prints the cluster's system propagation graph (components, declared
//       causal boundaries, tracepoint anchors) and runs the whole-topology
//       audit (PT302/PT303/PT304). Exits non-zero on audit errors.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "src/analysis/query_linter.h"
#include "src/analysis/reachability.h"
#include "src/hadoop/cluster.h"
#include "src/query/compiler.h"

using namespace pivot;

namespace {

void PrintReport(const analysis::QueryLintResult& lint) {
  if (lint.report.empty()) {
    printf("  clean: no diagnostics\n");
  } else {
    for (const auto& d : lint.report.diagnostics()) {
      printf("  %s\n", d.ToString().c_str());
    }
  }
  printf("  baggage cost: %s\n", analysis::BaggageCostName(lint.cost));
}

// Returns 1 when the query has error-severity findings (the exit-code
// contract of the scripted mode).
int LintText(Frontend* frontend, const std::string& text) {
  printf("query: %s\n", text.c_str());
  Result<analysis::QueryLintResult> lint = frontend->Lint(text);
  if (!lint.ok()) {
    printf("  %s\n", lint.status().ToString().c_str());
    return 1;
  }
  PrintReport(*lint);
  return lint->report.has_errors() ? 1 : 0;
}

// ---- Demo part 2: the broken-advice gallery ----

// One minimal offender per diagnostic code, hand-built with AdviceBuilder
// (most of these cannot be written as query text: the query compiler's own
// semantic analysis stops them earlier — the verifier exists for advice that
// arrives without that provenance, e.g. off the wire).
void Gallery() {
  TracepointRegistry schema;
  TracepointDef demo_def;
  demo_def.name = "demo.tp";
  demo_def.exports = {"x", "s"};
  (void)schema.Define(demo_def);

  // PT30x diagnostics need a propagation graph: a front end ("FE", the client
  // entry) hands work to a back end ("BE") across a thread-pool queue that
  // drops baggage, and an "ISLAND" component no request ever reaches.
  analysis::PropagationRegistry graph;
  graph.DeclareComponent("FE", /*client_entry=*/true);
  graph.DeclareEdge(analysis::PropagationEdge{"FE", "BE", "queue", "thread pool",
                                              /*forwards_baggage=*/false});
  // A forwarding chain FE -> DB -> DW: the PT305 growth bound multiplies the
  // packed width by the longest forwarding path from the packer (2 hops here).
  graph.DeclareEdge(analysis::PropagationEdge{"FE", "DB", "rpc", "lookup",
                                              /*forwards_baggage=*/true});
  graph.DeclareEdge(analysis::PropagationEdge{"DB", "DW", "rpc", "archive",
                                              /*forwards_baggage=*/true});
  for (const auto& [name, component] : std::vector<std::pair<const char*, const char*>>{
           {"fe.tp", "FE"}, {"be.tp", "BE"}, {"island.tp", "ISLAND"}}) {
    TracepointDef def;
    def.name = name;
    def.exports = {"x"};
    def.component = component;
    (void)schema.Define(def);
  }

  struct Offender {
    const char* codes;
    const char* story;
    CompiledQuery query;
    size_t budget = analysis::kDefaultBaggageBudget;
  };
  const uint64_t kId = 7;
  const BagKey kBag = kId * kBagKeysPerQuery;  // Stage-0 bag of query 7.
  auto q = [&](std::vector<std::pair<std::string, Advice::Ptr>> advice) {
    CompiledQuery cq;
    cq.query_id = kId;
    cq.advice = std::move(advice);
    return cq;
  };

  std::vector<Offender> gallery;
  gallery.push_back({"PT101", "an empty advice program",
                     q({{"demo.tp", AdviceBuilder().Build()}})});
  gallery.push_back(
      {"PT102", "reads a column no op produces",
       q({{"demo.tp", AdviceBuilder()
                          .Observe({{"x", "t.x"}})
                          .Let("y", Expr::Binary(ExprOp::kAdd, Expr::Field("t.missing"),
                                                 Expr::Literal(Value(int64_t{1}))))
                          .Emit(kId, {"y"})
                          .Build()}})});
  gallery.push_back(
      {"PT103", "numeric arithmetic on a definitely-string column",
       q({{"demo.tp",
           AdviceBuilder()
               // procname is a default export with a statically-known string
               // type (declared exports like "s" type as unknown and pass).
               .Observe({{"procname", "t.name"}})
               .Let("twice", Expr::Binary(ExprOp::kMul, Expr::Field("t.name"),
                                          Expr::Literal(Value(int64_t{2}))))
               .Emit(kId, {"twice"})
               .Build()}})});
  gallery.push_back({"PT104", "sample rate outside (0, 1]",
                     q({{"demo.tp", AdviceBuilder()
                                        .Sample(1.5)
                                        .Observe({{"x", "t.x"}})
                                        .Emit(kId, {"t.x"})
                                        .Build()}})});
  gallery.push_back({"PT105", "observes a variable the tracepoint does not export",
                     q({{"demo.tp", AdviceBuilder()
                                        .Observe({{"nonexistent", "t.n"}})
                                        .Emit(kId, {"t.n"})
                                        .Build()}})});
  gallery.push_back({"PT106", "unpacks a bag no predecessor packs",
                     q({{"demo.tp", AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Unpack(kBag + 9)
                                        .Emit(kId, {"t.x"})
                                        .Build()}})});
  gallery.push_back({"PT201", "emits to a query it does not belong to",
                     q({{"demo.tp", AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Emit(kId + 1, {"t.x"})
                                        .Build()}})});
  gallery.push_back(
      {"PT202", "two stages whose packs/unpacks form a cycle",
       q({{"demo.tp", AdviceBuilder()
                          .Unpack(kBag + 1)
                          .Pack(kBag, BagSpec::First(), {})
                          .Build()},
          {"demo.tp", AdviceBuilder()
                          .Unpack(kBag)
                          .Pack(kBag + 1, BagSpec::First(), {})
                          .Build()}})});
  gallery.push_back(
      {"PT208 + PT209", "unbounded packs joined into a cartesian product",
       q({{"demo.tp",
           AdviceBuilder().Observe({{"x", "a.x"}}).Pack(kBag, BagSpec::All(), {"a.x"}).Build()},
          {"demo.tp",
           AdviceBuilder().Observe({{"x", "b.x"}}).Pack(kBag + 1, BagSpec::All(), {"b.x"}).Build()},
          {"demo.tp", AdviceBuilder()
                          .Unpack(kBag)
                          .Unpack(kBag + 1)
                          .Observe({{"x", "t.x"}})
                          .Emit(kId, {"a.x", "b.x", "t.x"})
                          .Build()}})});
  gallery.push_back(
      {"PT301 + PT302", "happened-before join across a baggage-dropping boundary",
       q({{"fe.tp", AdviceBuilder()
                        .Observe({{"x", "a.x"}})
                        .Pack(kBag, BagSpec::First(), {"a.x"})
                        .Build()},
          {"be.tp", AdviceBuilder()
                        .Unpack(kBag)
                        .Observe({{"x", "b.x"}})
                        .Emit(kId, {"a.x", "b.x"})
                        .Build()}})});
  gallery.push_back({"PT303", "tracepoint in a component no client entry can reach",
                     q({{"island.tp", AdviceBuilder()
                                          .Observe({{"x", "t.x"}})
                                          .Emit(kId, {"t.x"})
                                          .Build()}})});
  gallery.push_back(
      {"PT305 (+PT208)", "All-semantics pack whose worst-case growth exceeds the budget",
       q({{"fe.tp", AdviceBuilder()
                        .Observe({{"x", "a.x"}})
                        .Let("y", Expr::Field("a.x"))
                        .Let("z", Expr::Field("a.x"))
                        .Pack(kBag, BagSpec::All(), {"a.x", "y", "z"})
                        .Build()},
          {"fe.tp", AdviceBuilder().Unpack(kBag).Emit(kId, {"a.x", "y", "z"}).Build()}}),
       /*budget=*/4});

  printf("\n=== broken-advice gallery (one offender per diagnostic) ===\n");
  for (const auto& offender : gallery) {
    printf("\n[%s] %s\n", offender.codes, offender.story);
    analysis::LintOptions options;
    options.schema = &schema;
    options.propagation = &graph;
    options.baggage_budget = offender.budget;
    PrintReport(LintCompiledQuery(offender.query, options));
  }
}

constexpr const char* kPaperCorpus[] = {
    // Q1-style: per-host bytes read (§2.1).
    "From incr In DataNodeMetrics.incrBytesRead "
    "GroupBy incr.host Select incr.host, SUM(incr.delta)",
    // Q2-style happened-before join: bytes read per client process (Fig 1).
    "From incr In DataNodeMetrics.incrBytesRead "
    "Join cl In First(ClientProtocols) On cl -> incr "
    "GroupBy cl.procName Select cl.procName, SUM(incr.delta)",
    // Self-telemetry: baggage bytes per query (Fig 10, live).
    "From b In Baggage.Serialize GroupBy b.queryId Select b.queryId, SUM(b.bytes)",
};

}  // namespace

int main(int argc, char** argv) {
  // The cluster is here only for its tracepoint vocabulary; no workload ever
  // runs.
  HadoopCluster cluster(HadoopClusterConfig{});
  Frontend* frontend = cluster.world()->frontend();

  if (argc > 1 && std::string(argv[1]) == "topology") {
    const analysis::PropagationRegistry& graph = cluster.world()->propagation();
    printf("%s", graph.RenderText().c_str());
    analysis::Report audit = analysis::AuditTopology(graph);
    if (audit.empty()) {
      printf("audit: clean (every boundary declared, every component reachable)\n");
    } else {
      printf("%s", audit.ToString().c_str());
    }
    return audit.has_errors() ? 1 : 0;
  }

  if (argc > 1) {
    int failures = 0;
    if (std::string(argv[1]) == "-") {
      std::string line;
      while (std::getline(std::cin, line)) {
        if (line.empty() || line[0] == '#') {
          continue;
        }
        failures += LintText(frontend, line);
      }
    } else {
      for (int i = 1; i < argc; ++i) {
        failures += LintText(frontend, argv[i]);
      }
    }
    return failures > 0 ? 1 : 0;
  }

  printf("=== paper query corpus (all expected clean) ===\n\n");
  int failures = 0;
  for (const char* text : kPaperCorpus) {
    failures += LintText(frontend, text);
  }
  Gallery();
  // Demo mode fails only if the supposedly-clean corpus is not clean.
  return failures > 0 ? 1 : 0;
}
