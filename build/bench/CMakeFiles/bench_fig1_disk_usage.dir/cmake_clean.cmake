file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_disk_usage.dir/bench_fig1_disk_usage.cc.o"
  "CMakeFiles/bench_fig1_disk_usage.dir/bench_fig1_disk_usage.cc.o.d"
  "bench_fig1_disk_usage"
  "bench_fig1_disk_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_disk_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
