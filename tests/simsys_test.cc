#include <gtest/gtest.h>

#include "src/simsys/sim_env.h"
#include "src/simsys/sim_resource.h"
#include "src/simsys/sim_rpc.h"
#include "src/simsys/sim_world.h"

namespace pivot {
namespace {

TEST(SimEnvTest, RunsEventsInTimeOrder) {
  SimEnvironment env;
  std::vector<int> order;
  env.Schedule(30, [&] { order.push_back(3); });
  env.Schedule(10, [&] { order.push_back(1); });
  env.Schedule(20, [&] { order.push_back(2); });
  env.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(env.now_micros(), 30);
}

TEST(SimEnvTest, FifoTieBreakAtSameTime) {
  SimEnvironment env;
  std::vector<int> order;
  env.Schedule(10, [&] { order.push_back(1); });
  env.Schedule(10, [&] { order.push_back(2); });
  env.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimEnvTest, NestedScheduling) {
  SimEnvironment env;
  int64_t fired_at = -1;
  env.Schedule(5, [&] { env.Schedule(7, [&] { fired_at = env.now_micros(); }); });
  env.RunAll();
  EXPECT_EQ(fired_at, 12);
}

TEST(SimEnvTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  SimEnvironment env;
  int fired = 0;
  env.Schedule(10, [&] { ++fired; });
  env.Schedule(100, [&] { ++fired; });
  env.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(env.now_micros(), 50);
  EXPECT_EQ(env.pending_events(), 1u);
}

TEST(SimEnvTest, PastSchedulingClampsToNow) {
  SimEnvironment env;
  env.Schedule(10, [&] {
    env.ScheduleAt(3, [] {});  // In the past: runs "now".
  });
  env.RunAll();
  EXPECT_EQ(env.now_micros(), 10);
}

TEST(TimeSeriesTest, BucketsBySecond) {
  SimEnvironment env;
  TimeSeries ts(&env);
  ts.AddAt(0, 1.0);
  ts.AddAt(kMicrosPerSecond - 1, 2.0);
  ts.AddAt(kMicrosPerSecond, 5.0);
  EXPECT_EQ(ts.buckets().at(0), 3.0);
  EXPECT_EQ(ts.buckets().at(1), 5.0);
  EXPECT_EQ(ts.total(), 8.0);
  EXPECT_EQ(ts.SumRange(1, 2), 5.0);
}

TEST(SimResourceTest, TransferTimeMatchesRate) {
  SimEnvironment env;
  SimResource disk(&env, "disk", 100.0 * kMicrosPerSecond);  // 100 bytes/µs.
  int64_t done_at = -1;
  disk.Transfer(1000, [&] { done_at = env.now_micros(); });
  env.RunAll();
  EXPECT_EQ(done_at, 10);  // 1000 bytes / 100 per µs.
}

TEST(SimResourceTest, FifoQueueing) {
  SimEnvironment env;
  SimResource disk(&env, "disk", 100.0 * kMicrosPerSecond);
  int64_t first = -1;
  int64_t second = -1;
  int64_t queued_second = -1;
  disk.Transfer(1000, [&] { first = env.now_micros(); });
  disk.Transfer(1000, [&](int64_t queued, int64_t) {
    second = env.now_micros();
    queued_second = queued;
  });
  env.RunAll();
  EXPECT_EQ(first, 10);
  EXPECT_EQ(second, 20);  // Served after the first.
  EXPECT_EQ(queued_second, 10);
}

TEST(SimResourceTest, RateChangeAffectsNewTransfers) {
  SimEnvironment env;
  SimResource nic(&env, "nic", 1000.0);
  nic.set_rate(10.0);  // Limplock!
  int64_t done_at = -1;
  nic.Transfer(10, [&] { done_at = env.now_micros(); });
  env.RunAll();
  EXPECT_EQ(done_at, kMicrosPerSecond);  // 10 bytes at 10 B/s = 1 s.
}

TEST(SimResourceTest, ThroughputSeriesAccountsBytes) {
  SimEnvironment env;
  SimResource disk(&env, "disk", 1000.0);  // 1000 B/s.
  disk.Transfer(500, [] {});
  env.RunAll();
  EXPECT_EQ(disk.total_bytes(), 500u);
  EXPECT_NEAR(disk.throughput().total(), 500.0, 1e-6);
}

TEST(SimResourceTest, MultiSecondTransferSpreadsAcrossBuckets) {
  SimEnvironment env;
  SimResource disk(&env, "disk", 1000.0);
  disk.Transfer(3000, [] {});  // 3 seconds.
  env.RunAll();
  EXPECT_NEAR(disk.throughput().SumRange(0, 1), 1000.0, 1.0);
  EXPECT_NEAR(disk.throughput().SumRange(1, 2), 1000.0, 1.0);
  EXPECT_NEAR(disk.throughput().total(), 3000.0, 1e-6);
}

TEST(SimResourceTest, OccupySerializesCriticalSections) {
  SimEnvironment env;
  SimResource lock(&env, "lock", 1.0);  // Rate irrelevant for Occupy.
  std::vector<int64_t> done_at;
  std::vector<int64_t> queued;
  for (int i = 0; i < 3; ++i) {
    lock.Occupy(100, [&](int64_t q) {
      done_at.push_back(env.now_micros());
      queued.push_back(q);
    });
  }
  env.RunAll();
  EXPECT_EQ(done_at, (std::vector<int64_t>{100, 200, 300}));
  EXPECT_EQ(queued, (std::vector<int64_t>{0, 100, 200}));
}

TEST(SimResourceTest, OccupyInterleavesWithTransfers) {
  SimEnvironment env;
  SimResource disk(&env, "disk", 100.0 * kMicrosPerSecond);  // 100 B/µs.
  int64_t transfer_done = -1;
  int64_t occupy_done = -1;
  disk.Transfer(1000, [&] { transfer_done = env.now_micros(); });  // 10 µs.
  disk.Occupy(50, [&](int64_t) { occupy_done = env.now_micros(); });
  env.RunAll();
  EXPECT_EQ(transfer_done, 10);
  EXPECT_EQ(occupy_done, 60);  // Queued behind the transfer.
}

TEST(SimWorldTest, HostsAndProcesses) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimProcess* dn = world.AddProcess(a, "DataNode");
  EXPECT_EQ(dn->host(), a);
  EXPECT_EQ(dn->runtime()->info.host, "A");
  EXPECT_EQ(dn->runtime()->info.process_name, "DataNode");
  EXPECT_EQ(world.FindHost("A"), a);
  EXPECT_EQ(world.FindHost("Z"), nullptr);
}

TEST(SimWorldTest, ProcessClockTracksSimTime) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimProcess* p = world.AddProcess(a, "X");
  world.env()->Schedule(12345, [] {});
  world.env()->RunAll();
  EXPECT_EQ(p->runtime()->NowMicros(), 12345);
}

TEST(SimWorldTest, SchemaAggregatesTracepointDefs) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimProcess* p1 = world.AddProcess(a, "X");
  SimProcess* p2 = world.AddProcess(a, "Y");
  TracepointDef def;
  def.name = "T";
  def.exports = {"v"};
  p1->DefineTracepoint(def);
  p2->DefineTracepoint(def);  // Same def in another process: fine.
  EXPECT_NE(world.schema()->Find("T"), nullptr);
  EXPECT_NE(p1->registry()->Find("T"), nullptr);
  EXPECT_NE(p2->registry()->Find("T"), nullptr);
}

TEST(SimWorldTest, PauseDelaysObservable) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimProcess* p = world.AddProcess(a, "X");
  p->PauseUntil(500);
  EXPECT_EQ(p->PauseDelay(), 500);
  world.env()->Schedule(600, [] {});
  world.env()->RunAll();
  EXPECT_EQ(p->PauseDelay(), 0);
}

TEST(SimRpcTest, BaggageCrossesTheWire) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimHost* b = world.AddHost("B", 200e6, 125e6);
  SimProcess* client = world.AddProcess(a, "client");
  SimProcess* server = world.AddProcess(b, "server");

  RpcStats::Reset();
  CtxPtr ctx = world.NewRequest(client);
  ctx->baggage().Pack(1, BagSpec::First(1), Tuple{{"procName", Value("client")}});

  bool server_saw_baggage = false;
  bool client_resumed = false;
  SimRpcCall(
      client, server, ctx, 100,
      [&](CtxPtr sctx, RpcRespond respond) {
        auto tuples = sctx->baggage().Unpack(1);
        server_saw_baggage = tuples.size() == 1 &&
                             tuples[0].Get("procName").string_value() == "client";
        // Server adds its own tuple; the client must see it on return.
        sctx->baggage().Pack(2, BagSpec::All(), Tuple{{"server", Value("yes")}});
        respond(std::move(sctx), 200);
      },
      [&](CtxPtr back) {
        client_resumed = true;
        EXPECT_EQ(back->baggage().Unpack(2).size(), 1u);
        EXPECT_EQ(back->baggage().Unpack(1).size(), 1u);
      });
  world.env()->RunAll();
  EXPECT_TRUE(server_saw_baggage);
  EXPECT_TRUE(client_resumed);
  EXPECT_EQ(RpcStats::total_calls, 1u);
  EXPECT_GT(RpcStats::total_baggage_bytes, 0u);
}

TEST(SimRpcTest, StatsResetClearsBothCounters) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimHost* b = world.AddHost("B", 200e6, 125e6);
  SimProcess* client = world.AddProcess(a, "client");
  SimProcess* server = world.AddProcess(b, "server");

  RpcStats::Reset();
  CtxPtr ctx = world.NewRequest(client);
  ctx->baggage().Pack(1, BagSpec::First(1), Tuple{{"k", Value("v")}});
  SimRpcCall(
      client, server, ctx, 100,
      [](CtxPtr sctx, RpcRespond respond) { respond(std::move(sctx), 100); },
      [](CtxPtr) {});
  world.env()->RunAll();

  EXPECT_GT(RpcStats::total_calls, 0u);
  EXPECT_GT(RpcStats::total_baggage_bytes, 0u);
  RpcStats::Reset();
  EXPECT_EQ(RpcStats::total_calls, 0u);
  EXPECT_EQ(RpcStats::total_baggage_bytes, 0u);
}

TEST(SimRpcTest, RpcConsumesNetworkTime) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 1000.0);  // Tiny 1000 B/s links.
  SimHost* b = world.AddHost("B", 200e6, 1000.0);
  SimProcess* client = world.AddProcess(a, "client");
  SimProcess* server = world.AddProcess(b, "server");

  int64_t done_at = -1;
  CtxPtr ctx = world.NewRequest(client);
  SimRpcCall(
      client, server, ctx, 500,
      [](CtxPtr sctx, RpcRespond respond) { respond(std::move(sctx), 500); },
      [&](CtxPtr) { done_at = world.env()->now_micros(); });
  world.env()->RunAll();
  // 500 B over 2 links each way at 1000 B/s: >= 2 simulated seconds.
  EXPECT_GE(done_at, 2 * kMicrosPerSecond);
}

TEST(SimRpcTest, SameHostRpcSkipsNetwork) {
  SimWorld world;
  SimHost* a = world.AddHost("A", 200e6, 1000.0);
  SimProcess* client = world.AddProcess(a, "client");
  SimProcess* server = world.AddProcess(a, "server");

  int64_t done_at = -1;
  CtxPtr ctx = world.NewRequest(client);
  SimRpcCall(
      client, server, ctx, 100000,
      [](CtxPtr sctx, RpcRespond respond) { respond(std::move(sctx), 100000); },
      [&](CtxPtr) { done_at = world.env()->now_micros(); });
  world.env()->RunAll();
  EXPECT_EQ(done_at, 0);
  EXPECT_EQ(a->nic_out().total_bytes(), 0u);
}

TEST(SimRpcTest, TraceAttachmentSurvivesHop) {
  SimWorld world;
  world.EnableRecording();
  SimHost* a = world.AddHost("A", 200e6, 125e6);
  SimHost* b = world.AddHost("B", 200e6, 125e6);
  SimProcess* client = world.AddProcess(a, "client");
  SimProcess* server = world.AddProcess(b, "server");

  TracepointDef def;
  def.name = "S";
  server->DefineTracepoint(def);

  CtxPtr ctx = world.NewRequest(client);
  EventId client_event = ctx->AdvanceEvent();
  SimRpcCall(
      client, server, ctx, 100,
      [&](CtxPtr sctx, RpcRespond respond) {
        server->registry()->Find("S")->Invoke(sctx.get(), {});
        respond(std::move(sctx), 100);
      },
      [](CtxPtr) {});
  world.env()->RunAll();

  ASSERT_EQ(world.recorder()->observed().size(), 1u);
  const ObservedEvent& obs = world.recorder()->observed()[0];
  EXPECT_TRUE(world.recorder()->graph(obs.trace_id)->HappenedBefore(client_event, obs.event));
}

}  // namespace
}  // namespace pivot
