// Seedable PRNG used throughout the simulator and the property-based tests.
//
// Determinism matters here: every figure-reproducing bench seeds its own Rng so
// runs are exactly repeatable. xoshiro256** is small, fast and has no global
// state (std::mt19937 would also work but is much larger and slower to seed).

#ifndef PIVOT_SRC_COMMON_RAND_H_
#define PIVOT_SRC_COMMON_RAND_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pivot {

// xoshiro256** with splitmix64 seeding. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t NextUint64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Debiased modulo via rejection sampling.
    uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      uint64_t r = NextUint64();
      if (r >= threshold) {
        return r % bound;
      }
    }
  }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform in [0, 1).
  double NextDouble() { return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53; }

  bool NextBool(double p_true = 0.5) { return NextDouble() < p_true; }

  // Exponentially distributed with the given mean (for inter-arrival times).
  double NextExponential(double mean);

  // Picks an index in [0, weights.size()) with probability proportional to its
  // weight. Weights must be non-negative with a positive sum.
  size_t NextWeighted(const std::vector<double>& weights);

  // Forks an independent stream; child streams do not correlate with the
  // parent's subsequent output.
  Rng Fork() { return Rng(NextUint64() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace pivot

#endif  // PIVOT_SRC_COMMON_RAND_H_
