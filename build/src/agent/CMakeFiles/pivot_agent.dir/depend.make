# Empty dependencies file for pivot_agent.
# This may be replaced when dependencies are built.
