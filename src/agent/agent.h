// PTAgent: the per-process Pivot Tracing agent (§5 "Agent").
//
// "A Pivot Tracing agent thread runs in every Pivot Tracing-enabled process
// and awaits instruction via central pub/sub server to weave advice to
// tracepoints. Tuples emitted by advice are accumulated by the local Pivot
// Tracing agent, which performs partial aggregation of tuples according to
// their source query. Agents publish partial query results at a configurable
// interval — by default, one second."
//
// The agent implements EmitSink (wired into the process's ProcessRuntime), so
// advice Emit ops feed it directly in-process. Flush() publishes the interval
// report; the simulator calls it once per simulated second, a real deployment
// would drive it from a timer thread.

#ifndef PIVOT_SRC_AGENT_AGENT_H_
#define PIVOT_SRC_AGENT_AGENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/agent/protocol.h"
#include "src/bus/message_bus.h"
#include "src/core/aggregation.h"
#include "src/core/context.h"
#include "src/core/tracepoint.h"

namespace pivot {

class PTAgent : public EmitSink {
 public:
  // `registry` is the process's tracepoint registry the agent weaves into;
  // `info` identifies the process in reports. The agent subscribes to the
  // command topic immediately.
  PTAgent(MessageBus* bus, TracepointRegistry* registry, ProcessInfo info);
  ~PTAgent() override;

  PTAgent(const PTAgent&) = delete;
  PTAgent& operator=(const PTAgent&) = delete;

  // EmitSink: advice output lands here and is partially aggregated (or
  // buffered, for streaming queries) per source query.
  void EmitTuple(uint64_t query_id, const Tuple& t) override;

  // Publishes one report per active query covering the interval ending at
  // `now_micros`, then resets interval state. Queries with nothing to report
  // publish nothing (quiet processes stay quiet on the bus).
  void Flush(int64_t now_micros);

  // ---- Statistics (used by the overhead/traffic benches) ----

  // Tuples handed to the agent by advice since construction.
  uint64_t emitted_tuples() const;
  // Tuples shipped to the frontend in reports (post partial aggregation).
  uint64_t reported_tuples() const;
  uint64_t reports_published() const;

  const ProcessInfo& info() const { return info_; }

 private:
  void HandleCommand(const BusMessage& msg);

  struct QueryState {
    ResultPlan plan;
    Aggregator agg{{}, {}};        // Interval partial aggregation.
    std::vector<Tuple> buffered;   // Streaming rows for this interval.
    uint64_t emitted = 0;
  };

  MessageBus* bus_;
  TracepointRegistry* registry_;
  ProcessInfo info_;
  MessageBus::SubscriberId subscription_ = 0;

  mutable std::mutex mu_;
  std::map<uint64_t, QueryState> queries_;
  uint64_t emitted_total_ = 0;
  uint64_t reported_total_ = 0;
  uint64_t reports_published_ = 0;
};

}  // namespace pivot

#endif  // PIVOT_SRC_AGENT_AGENT_H_
