#include "src/telemetry/self_trace.h"

namespace pivot {
namespace telemetry {

TracepointDef BaggageSerializeDef() {
  TracepointDef def;
  def.name = kTpBaggageSerialize;
  def.exports = {"queryId", "bytes", "tuples", "instances"};
  def.class_name = "pivot::Baggage";
  def.method_name = "Serialize";
  def.site = TracepointSite::kExit;
  return def;
}

TracepointDef AgentFlushDef() {
  TracepointDef def;
  def.name = kTpAgentFlush;
  def.exports = {"queryId", "tuples", "bytes", "suppressed"};
  def.class_name = "pivot::PTAgent";
  def.method_name = "Flush";
  def.site = TracepointSite::kExit;
  return def;
}

std::vector<TracepointDef> SelfTracepointDefs() {
  return {BaggageSerializeDef(), AgentFlushDef()};
}

void DefineSelfTracepoints(TracepointRegistry* registry, MetaTracepoints* meta) {
  for (TracepointDef& def : SelfTracepointDefs()) {
    if (registry->Find(def.name) == nullptr) {
      Result<Tracepoint*> tp = registry->Define(std::move(def));
      (void)tp;
    }
  }
  BindMetaTracepoints(*registry, meta);
}

void BindMetaTracepoints(const TracepointRegistry& registry, MetaTracepoints* meta) {
  meta->baggage_serialize = registry.Find(kTpBaggageSerialize);
  meta->agent_flush = registry.Find(kTpAgentFlush);
}

void RegisterSelfTracepointDefs(TracepointRegistry* schema) {
  for (TracepointDef& def : SelfTracepointDefs()) {
    if (schema->Find(def.name) == nullptr) {
      Result<Tracepoint*> result = schema->Define(std::move(def));
      (void)result;
    }
  }
}

}  // namespace telemetry
}  // namespace pivot
