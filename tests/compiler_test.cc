#include <gtest/gtest.h>

#include "src/query/compiler.h"
#include "src/query/parser.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest() {
    for (const auto& [name, exports] :
         std::vector<std::pair<std::string, std::vector<std::string>>>{
             {"DataNodeMetrics.incrBytesRead", {"delta"}},
             {"ClientProtocols", {"procName", "system"}},
             {"DN.DataTransferProtocol", {"op", "src"}},
             {"NN.GetBlockLocations", {"src", "replicas"}},
             {"StressTest.DoNextOp", {"op"}},
             {"SendResponse", {}},
             {"ReceiveRequest", {}},
             {"JobComplete", {"id"}},
             {"A", {"x", "y"}},
             {"B", {"x", "y"}},
             {"C", {"x", "y"}}}) {
      EXPECT_TRUE(registry_.Define(Def(name, exports)).ok());
    }
  }

  Result<CompiledQuery> Compile(const std::string& text, uint64_t id = 1) {
    Result<Query> q = ParseQuery(text);
    if (!q.ok()) {
      return q.status();
    }
    QueryCompiler compiler(&registry_, &named_);
    return compiler.Compile(*q, id);
  }

  TracepointRegistry registry_;
  QueryRegistry named_;
};

// Finds the advice compiled for a tracepoint, or nullptr.
const Advice* AdviceAt(const CompiledQuery& cq, const std::string& tp) {
  for (const auto& [name, adv] : cq.advice) {
    if (name == tp) {
      return adv.get();
    }
  }
  return nullptr;
}

bool HasOp(const Advice& advice, Advice::OpKind kind) {
  for (const auto& op : advice.ops()) {
    if (op.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST_F(CompilerTest, Q1SingleStageAggregation) {
  auto cq = Compile(
      "From incr In DataNodeMetrics.incrBytesRead GroupBy incr.host "
      "Select incr.host, SUM(incr.delta)");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  ASSERT_EQ(cq->advice.size(), 1u);
  EXPECT_EQ(cq->advice[0].first, "DataNodeMetrics.incrBytesRead");
  const Advice& advice = *cq->advice[0].second;
  EXPECT_TRUE(HasOp(advice, Advice::OpKind::kObserve));
  EXPECT_TRUE(HasOp(advice, Advice::OpKind::kEmit));
  EXPECT_FALSE(HasOp(advice, Advice::OpKind::kPack));
  EXPECT_FALSE(HasOp(advice, Advice::OpKind::kUnpack));
  EXPECT_TRUE(cq->aggregated);
  EXPECT_EQ(cq->group_fields, (std::vector<std::string>{"incr.host"}));
  ASSERT_EQ(cq->aggs.size(), 1u);
  EXPECT_EQ(cq->aggs[0].fn, AggFn::kSum);
  EXPECT_EQ(cq->aggs[0].input, "incr.delta");
  EXPECT_EQ(cq->output_columns, (std::vector<std::string>{"incr.host", "SUM(incr.delta)"}));
}

TEST_F(CompilerTest, Q2PacksAtClientProtocolsAndUnpacksAtDataNode) {
  auto cq = Compile(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  ASSERT_EQ(cq->advice.size(), 2u);

  const Advice* pack_side = AdviceAt(*cq, "ClientProtocols");
  ASSERT_NE(pack_side, nullptr);
  EXPECT_TRUE(HasOp(*pack_side, Advice::OpKind::kPack));
  EXPECT_FALSE(HasOp(*pack_side, Advice::OpKind::kEmit));
  // Projection pushdown: only procName is packed, with FIRST semantics.
  for (const auto& op : pack_side->ops()) {
    if (op.kind == Advice::OpKind::kPack) {
      EXPECT_EQ(op.bag_spec.semantics, PackSemantics::kFirstN);
      EXPECT_EQ(op.bag_spec.limit, 1u);
      EXPECT_EQ(op.fields, (std::vector<std::string>{"cl.procName"}));
    }
  }

  const Advice* emit_side = AdviceAt(*cq, "DataNodeMetrics.incrBytesRead");
  ASSERT_NE(emit_side, nullptr);
  EXPECT_TRUE(HasOp(*emit_side, Advice::OpKind::kUnpack));
  EXPECT_TRUE(HasOp(*emit_side, Advice::OpKind::kEmit));
}

TEST_F(CompilerTest, Q7ChainsPackThroughIntermediateStage) {
  auto cq = Compile(
      "From DNop In DN.DataTransferProtocol "
      "Join getloc In NN.GetBlockLocations On getloc -> DNop "
      "Join st In StressTest.DoNextOp On st -> getloc "
      "Where st.host != DNop.host "
      "GroupBy DNop.host, getloc.replicas "
      "Select DNop.host, getloc.replicas, COUNT");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();

  // st packs; getloc unpacks st's bag and packs the combination; DNop unpacks
  // getloc's bag, filters, emits.
  const Advice* st = AdviceAt(*cq, "StressTest.DoNextOp");
  ASSERT_NE(st, nullptr);
  EXPECT_TRUE(HasOp(*st, Advice::OpKind::kPack));
  EXPECT_FALSE(HasOp(*st, Advice::OpKind::kUnpack));

  const Advice* getloc = AdviceAt(*cq, "NN.GetBlockLocations");
  ASSERT_NE(getloc, nullptr);
  EXPECT_TRUE(HasOp(*getloc, Advice::OpKind::kUnpack));
  EXPECT_TRUE(HasOp(*getloc, Advice::OpKind::kPack));

  const Advice* dnop = AdviceAt(*cq, "DN.DataTransferProtocol");
  ASSERT_NE(dnop, nullptr);
  EXPECT_TRUE(HasOp(*dnop, Advice::OpKind::kUnpack));
  EXPECT_TRUE(HasOp(*dnop, Advice::OpKind::kFilter));
  EXPECT_TRUE(HasOp(*dnop, Advice::OpKind::kEmit));

  // getloc packs st.host through (needed by the Where at DNop).
  for (const auto& op : getloc->ops()) {
    if (op.kind == Advice::OpKind::kPack) {
      EXPECT_NE(std::find(op.fields.begin(), op.fields.end(), "st.host"), op.fields.end());
      EXPECT_NE(std::find(op.fields.begin(), op.fields.end(), "getloc.replicas"),
                op.fields.end());
    }
  }
}

TEST_F(CompilerTest, SelectionPushdownRunsWhereAtEarliestStage) {
  auto cq = Compile(
      "From b In B Join a In A On a -> b Where a.x == 1 Select b.y");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  const Advice* a_side = AdviceAt(*cq, "A");
  ASSERT_NE(a_side, nullptr);
  EXPECT_TRUE(HasOp(*a_side, Advice::OpKind::kFilter));
  const Advice* b_side = AdviceAt(*cq, "B");
  ASSERT_NE(b_side, nullptr);
  EXPECT_FALSE(HasOp(*b_side, Advice::OpKind::kFilter));
}

TEST_F(CompilerTest, SelectionPushdownDisabledRunsWhereAtFinalStage) {
  Result<Query> q = ParseQuery("From b In B Join a In A On a -> b Where a.x == 1 Select b.y");
  ASSERT_TRUE(q.ok());
  QueryCompiler::Options options;
  options.push_selection = false;
  QueryCompiler compiler(&registry_, &named_, options);
  auto cq = compiler.Compile(*q, 1);
  ASSERT_TRUE(cq.ok());
  const Advice* a_side = AdviceAt(*cq, "A");
  EXPECT_FALSE(HasOp(*a_side, Advice::OpKind::kFilter));
  const Advice* b_side = AdviceAt(*cq, "B");
  EXPECT_TRUE(HasOp(*b_side, Advice::OpKind::kFilter));
}

TEST_F(CompilerTest, ProjectionPushdownDisabledPacksEverything) {
  std::string text =
      "From b In B Join a In A On a -> b GroupBy a.x Select a.x, SUM(b.y)";
  Result<Query> q = ParseQuery(text);
  ASSERT_TRUE(q.ok());

  QueryCompiler::Options narrow;
  QueryCompiler::Options wide;
  wide.push_projection = false;
  auto count_pack_fields = [&](const QueryCompiler::Options& opt) {
    QueryCompiler compiler(&registry_, &named_, opt);
    auto cq = compiler.Compile(*q, 1);
    EXPECT_TRUE(cq.ok());
    size_t n = 0;
    for (const auto& [tp, adv] : cq->advice) {
      for (const auto& op : adv->ops()) {
        if (op.kind == Advice::OpKind::kPack) {
          n += op.fields.size();
        }
      }
    }
    return n;
  };
  EXPECT_LT(count_pack_fields(narrow), count_pack_fields(wide));
}

TEST_F(CompilerTest, AggregationPushdownPacksState) {
  // SUM over the packed source's column: Table 3's A_p rule applies.
  auto cq = Compile("From b In B Join a In A On a -> b Select SUM(a.x)");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  const Advice* a_side = AdviceAt(*cq, "A");
  ASSERT_NE(a_side, nullptr);
  bool packed_aggregated = false;
  for (const auto& op : a_side->ops()) {
    if (op.kind == Advice::OpKind::kPack) {
      packed_aggregated = op.bag_spec.semantics == PackSemantics::kAggregate;
    }
  }
  EXPECT_TRUE(packed_aggregated);
  ASSERT_EQ(cq->aggs.size(), 1u);
  EXPECT_TRUE(cq->aggs[0].from_state);
}

TEST_F(CompilerTest, AggregationPushdownBlockedByCount) {
  // COUNT's multiplicity depends on the uncollapsed join; no pushdown.
  auto cq = Compile("From b In B Join a In A On a -> b Select SUM(a.x), COUNT");
  ASSERT_TRUE(cq.ok());
  const Advice* a_side = AdviceAt(*cq, "A");
  for (const auto& op : a_side->ops()) {
    if (op.kind == Advice::OpKind::kPack) {
      EXPECT_NE(op.bag_spec.semantics, PackSemantics::kAggregate);
    }
  }
  for (const auto& spec : cq->aggs) {
    EXPECT_FALSE(spec.from_state);
  }
}

TEST_F(CompilerTest, AggregationPushdownBlockedByNonGroupUse) {
  // a.y is needed raw by the Where at the final stage; a cannot collapse.
  auto cq = Compile(
      "From b In B Join a In A On a -> b Where a.y != b.y Select SUM(a.x)");
  ASSERT_TRUE(cq.ok());
  const Advice* a_side = AdviceAt(*cq, "A");
  for (const auto& op : a_side->ops()) {
    if (op.kind == Advice::OpKind::kPack) {
      EXPECT_NE(op.bag_spec.semantics, PackSemantics::kAggregate);
    }
  }
}

TEST_F(CompilerTest, Q8StreamingWithComputedColumn) {
  auto cq = Compile(
      "From response In SendResponse "
      "Join request In MostRecent(ReceiveRequest) On request -> response "
      "Select response.time - request.time");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_FALSE(cq->aggregated);
  const Advice* pack_side = AdviceAt(*cq, "ReceiveRequest");
  ASSERT_NE(pack_side, nullptr);
  for (const auto& op : pack_side->ops()) {
    if (op.kind == Advice::OpKind::kPack) {
      EXPECT_EQ(op.bag_spec.semantics, PackSemantics::kRecentN);
      EXPECT_EQ(op.bag_spec.limit, 1u);
    }
  }
  const Advice* emit_side = AdviceAt(*cq, "SendResponse");
  ASSERT_NE(emit_side, nullptr);
  EXPECT_TRUE(HasOp(*emit_side, Advice::OpKind::kLet));
}

TEST_F(CompilerTest, Q9SubqueryInlines) {
  ASSERT_TRUE(named_
                  .Register("Q8", *ParseQuery("From response In SendResponse "
                                              "Join request In MostRecent(ReceiveRequest) "
                                              "On request -> response "
                                              "Select response.time - request.time"))
                  .ok());
  auto cq = Compile(
      "From job In JobComplete "
      "Join latencyMeasurement In Q8 On latencyMeasurement -> job "
      "GroupBy job.id Select job.id, AVERAGE(latencyMeasurement)");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  // Three tracepoints are woven: ReceiveRequest, SendResponse, JobComplete.
  EXPECT_EQ(cq->advice.size(), 3u);
  EXPECT_NE(AdviceAt(*cq, "ReceiveRequest"), nullptr);
  EXPECT_NE(AdviceAt(*cq, "SendResponse"), nullptr);
  EXPECT_NE(AdviceAt(*cq, "JobComplete"), nullptr);
  ASSERT_EQ(cq->aggs.size(), 1u);
  EXPECT_EQ(cq->aggs[0].fn, AggFn::kAverage);
}

TEST_F(CompilerTest, UnionSourceWeavesAllTracepoints) {
  auto cq = Compile("From e In A, B GroupBy e.host Select e.host, COUNT");
  ASSERT_TRUE(cq.ok()) << cq.status().ToString();
  EXPECT_EQ(cq->advice.size(), 2u);
  EXPECT_NE(AdviceAt(*cq, "A"), nullptr);
  EXPECT_NE(AdviceAt(*cq, "B"), nullptr);
}

TEST_F(CompilerTest, ExplainListsAdvice) {
  auto cq = Compile(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(cq.ok());
  std::string explain = cq->Explain();
  EXPECT_NE(explain.find("ClientProtocols"), std::string::npos);
  EXPECT_NE(explain.find("PACK-FIRST"), std::string::npos);
  EXPECT_NE(explain.find("UNPACK"), std::string::npos);
  EXPECT_NE(explain.find("SUM(incr.delta)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Validation errors

TEST_F(CompilerTest, UnknownTracepointRejected) {
  auto cq = Compile("From e In NoSuchTracepoint Select e.host");
  ASSERT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kNotFound);
}

TEST_F(CompilerTest, UnknownExportRejected) {
  auto cq = Compile("From e In A Select e.nonexistent");
  ASSERT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CompilerTest, UnknownAliasInOnClauseRejected) {
  auto cq = Compile("From b In B Join a In A On zz -> b Select b.x");
  EXPECT_FALSE(cq.ok());
}

TEST_F(CompilerTest, CycleRejected) {
  auto cq = Compile("From c In C Join a In A On a -> b Join b In B On b -> a Select c.x");
  EXPECT_FALSE(cq.ok());
}

TEST_F(CompilerTest, FromMustBeLatest) {
  auto cq = Compile("From a In A Join b In B On a -> b Select a.x");
  ASSERT_FALSE(cq.ok());
}

TEST_F(CompilerTest, DisconnectedJoinRejected) {
  // b is joined but never ordered before anything.
  auto cq = Compile("From c In C Join a In A On a -> c Join b In B On a -> b Select c.x");
  EXPECT_FALSE(cq.ok());
}

TEST_F(CompilerTest, NonGroupedSelectFieldRejected) {
  auto cq = Compile("From e In A GroupBy e.x Select e.y, COUNT");
  ASSERT_FALSE(cq.ok());
  EXPECT_EQ(cq.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CompilerTest, DuplicateAliasRejected) {
  auto cq = Compile("From a In A Join a In B On a -> a Select a.x");
  EXPECT_FALSE(cq.ok());
}

TEST_F(CompilerTest, UnknownSubqueryRejected) {
  Result<Query> q = ParseQuery("From j In JobComplete Join m In QX On m -> j Select j.id");
  ASSERT_TRUE(q.ok());
  QueryCompiler compiler(&registry_, &named_);
  auto cq = compiler.Compile(*q, 1);
  // "QX" is neither a tracepoint nor a registered query.
  EXPECT_FALSE(cq.ok());
}

}  // namespace
}  // namespace pivot
