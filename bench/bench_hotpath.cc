// Hot-path micro-benchmarks for the interned-symbol / pre-resolved-plan /
// copy-on-write-baggage overhaul (docs/PERFORMANCE.md):
//
//   1. Tuple field access: Get/Project/HashFields by SymbolId vs by string.
//   2. Advice execution: compiled AdvicePlan::Execute vs the reference
//      interpreter Advice::Execute on a representative observe/let/filter/
//      pack/unpack/emit program.
//   3. Baggage serialization: dirty (active instance mutated since the last
//      serialize) vs clean (memoized encoding reused). check.sh gates the
//      clean path at --min-serialize-speedup (default 10x): serializing an
//      unchanged baggage — the response leg of every RPC — must be an order
//      of magnitude cheaper than a re-encode.
//
// Hand-rolled timing (interleaved passes, best-of-N) like
// bench_telemetry_overhead: no google-benchmark dependency, so the gate runs
// identically everywhere check.sh does.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/advice.h"
#include "src/core/baggage.h"
#include "src/core/context.h"
#include "src/core/plan.h"
#include "src/core/tuple.h"

namespace pivot {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-passes ns/op for `fn` run `iters` times per pass.
double MeasureNs(const std::function<void()>& fn, int iters, int passes = 8) {
  int64_t best = INT64_MAX;
  for (int p = 0; p < passes; ++p) {
    int64_t start = NowNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    int64_t elapsed = NowNanos() - start;
    if (elapsed < best) {
      best = elapsed;
    }
  }
  return static_cast<double>(best) / iters;
}

// Keeps results observable so the optimizer cannot delete the measured work.
uint64_t g_sink = 0;
inline void Keep(uint64_t v) { asm volatile("" : : "g"(v) : "memory"); }

class NullSink : public EmitSink {
 public:
  void EmitTuple(uint64_t, const Tuple& t) override { g_sink += t.size(); }
};

Tuple MakeWideTuple(int fields) {
  Tuple t;
  for (int i = 0; i < fields; ++i) {
    t.Append("col" + std::to_string(i), Value(static_cast<int64_t>(i)));
  }
  return t;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  using namespace pivot;

  double min_serialize_speedup = 0.0;  // 0 = report only, no gate.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--min-serialize-speedup=", 24) == 0) {
      min_serialize_speedup = std::atof(argv[i] + 24);
    }
  }

  BenchJson json("hotpath");
  printf("Hot-path micro-benchmarks (interned symbols / advice plans / COW baggage)\n\n");

  // ---- 1. Tuple field access ----
  {
    constexpr int kIters = 200'000;
    Tuple t = MakeWideTuple(16);
    SymbolId id8 = InternSymbol("col8");
    std::vector<SymbolId> proj_ids = InternSymbols({"col2", "col5", "col11"});
    std::vector<std::string> proj_names = {"col2", "col5", "col11"};

    double get_id = MeasureNs([&] { Keep(t.Get(id8).Hash()); }, kIters);
    double get_str = MeasureNs([&] { Keep(t.Get("col8").Hash()); }, kIters);
    double proj_id = MeasureNs([&] { Keep(t.Project(proj_ids).size()); }, kIters);
    double proj_str = MeasureNs([&] { Keep(t.Project(proj_names).size()); }, kIters);
    double hash_id = MeasureNs([&] { Keep(t.HashFields(proj_ids)); }, kIters);
    double hash_str = MeasureNs([&] { Keep(t.HashFields(proj_names)); }, kIters);

    printf("Tuple (16 fields):\n");
    printf("  Get         by id %7.1f ns   by string %7.1f ns\n", get_id, get_str);
    printf("  Project x3  by id %7.1f ns   by string %7.1f ns\n", proj_id, proj_str);
    printf("  HashFields  by id %7.1f ns   by string %7.1f ns\n", hash_id, hash_str);
    json.Report("tuple_get_by_id", get_id, "ns");
    json.Report("tuple_get_by_string", get_str, "ns");
    json.Report("tuple_project_by_id", proj_id, "ns");
    json.Report("tuple_project_by_string", proj_str, "ns");
    json.Report("tuple_hashfields_by_id", hash_id, "ns");
    json.Report("tuple_hashfields_by_string", hash_str, "ns");
  }

  // ---- 2. Compiled plan vs reference interpreter ----
  {
    constexpr int kIters = 20'000;
    constexpr BagKey kBag = 42;

    // A representative program: observe two exports, compute a Let, filter,
    // unpack an earlier stage's bag and join, then pack + emit projections.
    Advice::Ptr advice =
        AdviceBuilder()
            .Observe({{"delta", "incr.delta"}, {"host", "incr.host"}})
            .Let("dbl", Expr::Binary(ExprOp::kAdd, Expr::Field("incr.delta"),
                                     Expr::Field("incr.delta")))
            .Filter(Expr::Binary(ExprOp::kGe, Expr::Field("incr.delta"),
                                 Expr::Literal(Value(int64_t{0}))))
            .Unpack(kBag)
            .Emit(7, {"incr.host", "dbl", "cl.procName"})
            .Build();
    AdvicePlan::Ptr plan = AdvicePlan::Compile(advice);

    NullSink sink;
    ProcessRuntime runtime;
    runtime.info = {"host", "bench", 1};
    runtime.sink = &sink;
    ExecutionContext ctx(&runtime);
    // One joined-in tuple, as if packed by an earlier stage over an RPC.
    ctx.baggage().Pack(kBag, BagSpec::First(1),
                       Tuple{{"cl.procName", Value(std::string("client"))}});
    Tuple exports{{"delta", Value(int64_t{4096})},
                  {"host", Value(std::string("dn01"))}};

    double interp = MeasureNs([&] { advice->Execute(&ctx, exports); }, kIters);
    double planned = MeasureNs([&] { plan->Execute(&ctx, exports); }, kIters);
    printf("\nAdvice execution (observe+let+filter+unpack+emit):\n");
    printf("  reference interpreter %8.1f ns/op\n", interp);
    printf("  compiled plan         %8.1f ns/op   (%.2fx)\n", planned,
           interp / planned);
    json.Report("advice_interpreter", interp, "ns");
    json.Report("advice_plan", planned, "ns");
    json.Report("advice_plan_speedup", interp / planned, "x");
  }

  // ---- 3. Serialize: dirty vs clean (memoized encodings) ----
  double serialize_speedup = 0.0;
  {
    constexpr int kIters = 2'000;
    constexpr BagKey kBag = 900;

    // 32 tuples frozen in an inactive instance (as after a Split) plus 32 in
    // the active instance — the shape of baggage mid-request after one branch.
    Baggage baggage;
    for (int i = 0; i < 32; ++i) {
      baggage.Pack(kBag, BagSpec::All(),
                   Tuple{{"v" + std::to_string(i), Value(static_cast<int64_t>(i))}});
    }
    auto [left, right] = baggage.Split();
    Baggage bag = std::move(left);
    for (int i = 0; i < 32; ++i) {
      bag.Pack(kBag + 1, BagSpec::All(),
               Tuple{{"w" + std::to_string(i), Value(static_cast<int64_t>(i))}});
    }
    Tuple dirt{{"dirt", Value(int64_t{1})}};

    // Dirty: every iteration invalidates the active instance's cached
    // encoding (kRecentN keeps the size constant), so Serialize re-encodes
    // the active instance; the frozen inactive instance stays memoized. The
    // Pack that dirties the cache runs outside the timed window.
    double dirty;
    {
      int64_t best = INT64_MAX;
      for (int p = 0; p < 8; ++p) {
        int64_t total = 0;
        for (int i = 0; i < kIters; ++i) {
          bag.Pack(kBag + 2, BagSpec::Recent(1), dirt);
          int64_t t0 = NowNanos();
          g_sink += bag.Serialize().size();
          total += NowNanos() - t0;
        }
        if (total < best) {
          best = total;
        }
      }
      dirty = static_cast<double>(best) / kIters;
    }

    // Clean: nothing changed since the last Serialize — every instance's
    // encoding (active included) is served from cache.
    g_sink += bag.Serialize().size();  // Warm the cache.
    double clean = MeasureNs([&] { g_sink += bag.Serialize().size(); }, kIters);

    serialize_speedup = dirty / clean;
    printf("\nBaggage::Serialize (64 tuples, 1 frozen + 1 active instance):\n");
    printf("  dirty (active re-encoded) %8.1f ns\n", dirty);
    printf("  clean (fully memoized)    %8.1f ns   (%.1fx)\n", clean, serialize_speedup);
    json.Report("serialize_dirty", dirty, "ns");
    json.Report("serialize_clean", clean, "ns");
    json.Report("serialize_clean_speedup", serialize_speedup, "x");
  }

  json.Write();

  if (min_serialize_speedup > 0.0 && serialize_speedup < min_serialize_speedup) {
    printf("\nFAIL: clean serialize only %.1fx faster than dirty (need >= %.1fx)\n",
           serialize_speedup, min_serialize_speedup);
    return 1;
  }
  if (min_serialize_speedup > 0.0) {
    printf("\nPASS: clean serialize %.1fx faster than dirty (>= %.1fx required)\n",
           serialize_speedup, min_serialize_speedup);
  }
  return 0;
}
