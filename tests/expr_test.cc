#include <gtest/gtest.h>

#include "src/core/expr.h"

namespace pivot {
namespace {

Tuple Row() {
  return Tuple{{"a.x", Value(int64_t{10})},
               {"a.y", Value(int64_t{3})},
               {"b.host", Value("H")},
               {"b.f", Value(2.5)}};
}

TEST(ExprTest, LiteralEvaluatesToItself) {
  EXPECT_EQ(Expr::Literal(Value(int64_t{7}))->Eval(Tuple()).int_value(), 7);
  EXPECT_EQ(Expr::Literal(Value("s"))->Eval(Tuple()).string_value(), "s");
}

TEST(ExprTest, FieldLookup) {
  EXPECT_EQ(Expr::Field("a.x")->Eval(Row()).int_value(), 10);
  EXPECT_TRUE(Expr::Field("missing")->Eval(Row()).is_null());
}

TEST(ExprTest, Arithmetic) {
  auto e = Expr::Binary(ExprOp::kSub, Expr::Field("a.x"), Expr::Field("a.y"));
  EXPECT_EQ(e->Eval(Row()).int_value(), 7);
  auto m = Expr::Binary(ExprOp::kMul, Expr::Field("a.y"), Expr::Literal(Value(int64_t{4})));
  EXPECT_EQ(m->Eval(Row()).int_value(), 12);
  auto d = Expr::Binary(ExprOp::kDiv, Expr::Field("a.x"), Expr::Field("b.f"));
  EXPECT_EQ(d->Eval(Row()).double_value(), 4.0);
}

TEST(ExprTest, ComparisonsYieldIntBool) {
  auto lt = Expr::Binary(ExprOp::kLt, Expr::Field("a.y"), Expr::Field("a.x"));
  Value v = lt->Eval(Row());
  ASSERT_TRUE(v.is_int());
  EXPECT_EQ(v.int_value(), 1);
  auto ge = Expr::Binary(ExprOp::kGe, Expr::Field("a.y"), Expr::Field("a.x"));
  EXPECT_EQ(ge->Eval(Row()).int_value(), 0);
}

TEST(ExprTest, StringEquality) {
  auto eq = Expr::Binary(ExprOp::kEq, Expr::Field("b.host"), Expr::Literal(Value("H")));
  EXPECT_EQ(eq->Eval(Row()).int_value(), 1);
  auto ne = Expr::Binary(ExprOp::kNe, Expr::Field("b.host"), Expr::Literal(Value("H")));
  EXPECT_EQ(ne->Eval(Row()).int_value(), 0);
}

TEST(ExprTest, LogicalShortCircuit) {
  // (1 == 1) || (1/0 == 1) must not evaluate the division (null -> false
  // anyway, but short-circuit keeps semantics clean).
  auto lhs = Expr::Binary(ExprOp::kEq, Expr::Literal(Value(int64_t{1})),
                          Expr::Literal(Value(int64_t{1})));
  auto rhs = Expr::Binary(ExprOp::kEq,
                          Expr::Binary(ExprOp::kDiv, Expr::Literal(Value(int64_t{1})),
                                       Expr::Literal(Value(int64_t{0}))),
                          Expr::Literal(Value(int64_t{1})));
  EXPECT_EQ(Expr::Binary(ExprOp::kOr, lhs, rhs)->Eval(Tuple()).int_value(), 1);
  EXPECT_EQ(Expr::Binary(ExprOp::kAnd, lhs, rhs)->Eval(Tuple()).int_value(), 0);
}

TEST(ExprTest, NotAndNeg) {
  EXPECT_EQ(Expr::Unary(ExprOp::kNot, Expr::Literal(Value(int64_t{0})))->Eval(Tuple()).int_value(),
            1);
  EXPECT_EQ(Expr::Unary(ExprOp::kNeg, Expr::Field("a.x"))->Eval(Row()).int_value(), -10);
}

TEST(ExprTest, CollectFieldsDeduplicates) {
  auto e = Expr::Binary(ExprOp::kAdd, Expr::Field("a.x"),
                        Expr::Binary(ExprOp::kMul, Expr::Field("a.x"), Expr::Field("a.y")));
  std::vector<std::string> fields;
  e->CollectFields(&fields);
  EXPECT_EQ(fields, (std::vector<std::string>{"a.x", "a.y"}));
}

TEST(ExprTest, FieldsSubsetOf) {
  auto e = Expr::Binary(ExprOp::kAdd, Expr::Field("a.x"), Expr::Field("a.y"));
  EXPECT_TRUE(e->FieldsSubsetOf({"a.x", "a.y", "z"}));
  EXPECT_FALSE(e->FieldsSubsetOf({"a.x"}));
}

TEST(ExprTest, ToStringRendersTree) {
  auto e = Expr::Binary(ExprOp::kNe, Expr::Field("st.host"), Expr::Field("DNop.host"));
  EXPECT_EQ(e->ToString(), "(st.host != DNop.host)");
  auto lit = Expr::Literal(Value("x"));
  EXPECT_EQ(lit->ToString(), "\"x\"");
}

}  // namespace
}  // namespace pivot
