# Empty dependencies file for bench_fig8_replica_bug.
# This may be replaced when dependencies are built.
