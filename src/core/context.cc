#include "src/core/context.h"

#include <chrono>

#include "src/core/tracepoint.h"

namespace pivot {

int64_t ProcessRuntime::NowMicros() const {
  if (now_micros) {
    return now_micros();
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ExecutionContext::StartTrace(TraceRecorder* recorder) {
  recorder_ = recorder;
  trace_id_ = recorder->NewTrace();
  current_event_ = recorder->graph(trace_id_)->AddEvent({});
}

void ExecutionContext::AttachTrace(TraceRecorder* recorder, uint64_t trace_id, EventId current) {
  recorder_ = recorder;
  trace_id_ = trace_id;
  current_event_ = current;
}

EventId ExecutionContext::AdvanceEvent() {
  if (recorder_ == nullptr) {
    return kNoEvent;
  }
  current_event_ = recorder_->graph(trace_id_)->AddEvent({current_event_});
  return current_event_;
}

ExecutionContext ExecutionContext::Fork() {
  ExecutionContext other(runtime_);
  auto [mine, theirs] = baggage_.Split();
  baggage_ = std::move(mine);
  other.baggage_ = std::move(theirs);
  if (recorder_ != nullptr) {
    // Both branches start from distinct events caused by the branch point.
    TraceGraph* g = recorder_->graph(trace_id_);
    EventId branch_point = current_event_;
    current_event_ = g->AddEvent({branch_point});
    other.AttachTrace(recorder_, trace_id_, g->AddEvent({branch_point}));
  }
  return other;
}

void ExecutionContext::Join(ExecutionContext&& other) {
  baggage_ = Baggage::Join(baggage_, other.baggage_);
  if (recorder_ != nullptr && other.recorder_ == recorder_ && other.trace_id_ == trace_id_) {
    current_event_ =
        recorder_->graph(trace_id_)->AddEvent({current_event_, other.current_event_});
  }
  other.baggage_.Clear();
}

std::vector<uint8_t> SerializeBaggageWithMeta(ExecutionContext* ctx) {
  if (ctx == nullptr) {
    return {};
  }
  const Tracepoint* tp =
      ctx->runtime() != nullptr ? ctx->runtime()->meta.baggage_serialize : nullptr;
  // Fire only when someone is listening: the stats pass walks every bag, so
  // skip it unless advice is woven (or a ground-truth trace wants the event).
  bool fire = tp != nullptr && (tp->enabled() || ctx->recorder() != nullptr);
  if (!fire) {
    return ctx->baggage().Serialize();
  }
  Baggage::SerializeStats stats;
  std::vector<uint8_t> bytes = ctx->baggage().Serialize(&stats);
  if (stats.bytes == 0) {
    // Trivial baggage serializes to nothing; no event to report.
    return bytes;
  }
  uint64_t attributed = 0;
  for (const auto& [query_id, share] : stats.queries) {
    attributed += share.bytes;
    tp->Invoke(ctx, {{"queryId", Value(static_cast<int64_t>(query_id))},
                     {"bytes", Value(static_cast<int64_t>(share.bytes))},
                     {"tuples", Value(static_cast<int64_t>(share.tuples))},
                     {"instances", Value(static_cast<int64_t>(stats.instances))}});
  }
  // Framing bytes (instance ids, counts, generation numbers) under queryId 0,
  // so SUM(bytes) grouped or not equals the serialized size exactly.
  uint64_t framing = stats.bytes > attributed ? stats.bytes - attributed : 0;
  if (framing > 0) {
    tp->Invoke(ctx, {{"queryId", Value(int64_t{0})},
                     {"bytes", Value(static_cast<int64_t>(framing))},
                     {"tuples", Value(int64_t{0})},
                     {"instances", Value(static_cast<int64_t>(stats.instances))}});
  }
  return bytes;
}

namespace {

thread_local ExecutionContext* g_current_context = nullptr;

}  // namespace

ExecutionContext* CurrentContext() { return g_current_context; }

ScopedContext::ScopedContext(ExecutionContext* ctx) : previous_(g_current_context) {
  g_current_context = ctx;
}

ScopedContext::~ScopedContext() { g_current_context = previous_; }

void ThreadBaggage::Pack(BagKey key, const BagSpec& spec, const Tuple& t) {
  if (ExecutionContext* ctx = CurrentContext()) {
    ctx->baggage().Pack(key, spec, t);
  }
}

std::vector<Tuple> ThreadBaggage::Unpack(BagKey key) {
  if (ExecutionContext* ctx = CurrentContext()) {
    return ctx->baggage().Unpack(key);
  }
  return {};
}

std::vector<uint8_t> ThreadBaggage::Serialize() {
  if (ExecutionContext* ctx = CurrentContext()) {
    return SerializeBaggageWithMeta(ctx);
  }
  return {};
}

void ThreadBaggage::Deserialize(const std::vector<uint8_t>& bytes) {
  if (ExecutionContext* ctx = CurrentContext()) {
    Result<Baggage> b = Baggage::Deserialize(bytes);
    if (b.ok()) {
      ctx->set_baggage(std::move(b).value());
    }
  }
}

std::vector<uint8_t> ThreadBaggage::Split() {
  ExecutionContext* ctx = CurrentContext();
  if (ctx == nullptr) {
    return {};
  }
  auto [mine, theirs] = ctx->baggage().Split();
  ctx->set_baggage(std::move(mine));
  return theirs.Serialize();
}

void ThreadBaggage::Join(const std::vector<uint8_t>& branch_bytes) {
  ExecutionContext* ctx = CurrentContext();
  if (ctx == nullptr) {
    return;
  }
  Result<Baggage> branch = Baggage::Deserialize(branch_bytes);
  if (branch.ok()) {
    ctx->set_baggage(Baggage::Join(ctx->baggage(), *branch));
  }
}

}  // namespace pivot
