
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advice.cc" "src/core/CMakeFiles/pivot_core.dir/advice.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/advice.cc.o.d"
  "/root/repo/src/core/advice_io.cc" "src/core/CMakeFiles/pivot_core.dir/advice_io.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/advice_io.cc.o.d"
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/pivot_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/baggage.cc" "src/core/CMakeFiles/pivot_core.dir/baggage.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/baggage.cc.o.d"
  "/root/repo/src/core/context.cc" "src/core/CMakeFiles/pivot_core.dir/context.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/context.cc.o.d"
  "/root/repo/src/core/expr.cc" "src/core/CMakeFiles/pivot_core.dir/expr.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/expr.cc.o.d"
  "/root/repo/src/core/itc.cc" "src/core/CMakeFiles/pivot_core.dir/itc.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/itc.cc.o.d"
  "/root/repo/src/core/itc_stamp.cc" "src/core/CMakeFiles/pivot_core.dir/itc_stamp.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/itc_stamp.cc.o.d"
  "/root/repo/src/core/trace_graph.cc" "src/core/CMakeFiles/pivot_core.dir/trace_graph.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/trace_graph.cc.o.d"
  "/root/repo/src/core/tracepoint.cc" "src/core/CMakeFiles/pivot_core.dir/tracepoint.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/tracepoint.cc.o.d"
  "/root/repo/src/core/tuple.cc" "src/core/CMakeFiles/pivot_core.dir/tuple.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/tuple.cc.o.d"
  "/root/repo/src/core/value.cc" "src/core/CMakeFiles/pivot_core.dir/value.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/value.cc.o.d"
  "/root/repo/src/core/wire.cc" "src/core/CMakeFiles/pivot_core.dir/wire.cc.o" "gcc" "src/core/CMakeFiles/pivot_core.dir/wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pivot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
