// Small string helpers shared across modules (no dependency on absl).

#ifndef PIVOT_SRC_COMMON_STRINGS_H_
#define PIVOT_SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pivot {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

// ASCII case-insensitive equality (used by the query language keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

// ASCII lower-casing.
std::string ToLower(std::string_view s);

// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pivot

#endif  // PIVOT_SRC_COMMON_STRINGS_H_
