#!/bin/sh
# Tier-1 verification: configure, build, run the full test suite, then the
# telemetry probe-effect gate (unwoven tracepoint fast path must stay within
# MAX_OVERHEAD_PCT of the seed implementation; see docs/OBSERVABILITY.md).
#
# Usage: scripts/check.sh [build-dir]
#   MAX_OVERHEAD_PCT=10  overhead gate threshold (percent)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
max_overhead=${MAX_OVERHEAD_PCT:-10}

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)"

echo
echo "=== tier-1 tests ==="
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

echo
echo "=== telemetry overhead gate (<= ${max_overhead}%) ==="
"$build_dir/bench/bench_telemetry_overhead" --max-overhead-pct="$max_overhead"

echo
echo "All checks passed."
