# Empty compiler generated dependencies file for replica_selection_debugging.
# This may be replaced when dependencies are built.
