#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "src/common/rand.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/varint.h"

namespace pivot {
namespace {

// ---------------------------------------------------------------------------
// Status / Result

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad query");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad query");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad query");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kAlreadyExists), "ALREADY_EXISTS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnimplemented), "UNIMPLEMENTED");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NotFoundError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

// ---------------------------------------------------------------------------
// Varint

TEST(VarintTest, EncodesSmallValuesInOneByte) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 0);
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 2u);
}

class VarintRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VarintRoundTripTest, RoundTrips) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, GetParam());
  EXPECT_EQ(buf.size(), VarintLength(GetParam()));
  size_t pos = 0;
  uint64_t decoded = 0;
  ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_EQ(decoded, GetParam());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, VarintRoundTripTest,
                         ::testing::Values(0ull, 1ull, 127ull, 128ull, 300ull, 16383ull,
                                           16384ull, (1ull << 32) - 1, 1ull << 32,
                                           std::numeric_limits<uint64_t>::max()));

class SignedVarintRoundTripTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(SignedVarintRoundTripTest, RoundTrips) {
  std::vector<uint8_t> buf;
  PutVarintSigned64(&buf, GetParam());
  size_t pos = 0;
  int64_t decoded = 0;
  ASSERT_TRUE(GetVarintSigned64(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_EQ(decoded, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Boundaries, SignedVarintRoundTripTest,
                         ::testing::Values(int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-64},
                                           int64_t{64}, std::numeric_limits<int64_t>::min(),
                                           std::numeric_limits<int64_t>::max()));

TEST(VarintTest, ZigZagKeepsSmallNegativesSmall) {
  std::vector<uint8_t> buf;
  PutVarintSigned64(&buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(VarintTest, RejectsTruncatedInput) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1ull << 60);
  buf.pop_back();
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(buf.data(), buf.size(), &pos, &decoded));
}

TEST(VarintTest, RejectsEmptyInput) {
  size_t pos = 0;
  uint64_t decoded = 0;
  EXPECT_FALSE(GetVarint64(nullptr, 0, &pos, &decoded));
}

TEST(VarintTest, PropertyRandomRoundTrip) {
  Rng rng(7);
  std::vector<uint8_t> buf;
  for (int i = 0; i < 2000; ++i) {
    buf.clear();
    // Bias toward interesting bit-lengths.
    uint64_t v = rng.NextUint64() >> rng.NextBelow(64);
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(GetVarint64(buf.data(), buf.size(), &pos, &decoded));
    ASSERT_EQ(decoded, v);
  }
}

// ---------------------------------------------------------------------------
// Strings

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringsTest, JoinInvertsSplit) {
  std::vector<std::string> pieces = {"A", "B", "C"};
  EXPECT_EQ(StrJoin(pieces, ","), "A,B,C");
  EXPECT_EQ(StrSplit(StrJoin(pieces, ","), ','), pieces);
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("GroupBy", "groupby"));
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("Select", "Selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "b"));
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("DataNodeMetrics.incrBytesRead", "DataNode"));
  EXPECT_FALSE(StartsWith("DN", "DataNode"));
  EXPECT_TRUE(EndsWith("incrBytesRead", "Read"));
  EXPECT_FALSE(EndsWith("Read", "incrBytesRead"));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximate) {
  Rng rng(13);
  double sum = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / kSamples, 5.0, 0.2);
}

TEST(RngTest, WeightedRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0]);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.5);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.Fork();
  EXPECT_NE(a.NextUint64(), child.NextUint64());
}

}  // namespace
}  // namespace pivot
