#!/bin/sh
# Run the test suite under sanitizers. ASan+UBSan always; TSan too unless a
# mode is given. The fuzz tests (advice_fuzz_test, parser_fuzz_test) are the
# main beneficiaries: they push mutated wire bytes through DecodeAdvice and
# the static analyzer, so an out-of-bounds read in the decoder fails here even
# when it happens not to crash a plain build.
#
# Usage: scripts/sanitize.sh [address|thread]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
mode=${1:-}

if [ -n "$mode" ]; then
  exec "$repo_root/scripts/check.sh" --sanitize="$mode"
fi

"$repo_root/scripts/check.sh" --sanitize=address
"$repo_root/scripts/check.sh" --sanitize=thread
