# Empty dependencies file for pivot_bus.
# This may be replaced when dependencies are built.
