// Workload generator behaviors: closed-loop pacing, stop deadlines, stats.

#include <gtest/gtest.h>

#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

HadoopClusterConfig TinyConfig() {
  HadoopClusterConfig config;
  config.worker_hosts = 3;
  config.dataset_files = 32;
  config.deploy_hbase = true;
  config.deploy_mapreduce = false;
  return config;
}

TEST(WorkloadTest, ClosedLoopStopsAtDeadline) {
  HadoopCluster cluster(TinyConfig());
  SimProcess* proc = cluster.AddClient(cluster.worker(0), "FSread4m");
  HdfsReadWorkload workload(proc, cluster.namenode(), 1 << 20, 10 * kMicrosPerMilli, false, 1);
  workload.Start(2 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_GT(workload.stats().total_ops(), 10u);
  // No completion may start after the deadline (last op may finish shortly
  // after, bounded by one op duration).
  for (const auto& [at, latency] : workload.stats().latencies()) {
    EXPECT_LT(at, 3 * kMicrosPerSecond);
  }
}

TEST(WorkloadTest, ThinkTimeBoundsRate) {
  HadoopCluster cluster(TinyConfig());
  SimProcess* fast_proc = cluster.AddClient(cluster.worker(0), "fast");
  SimProcess* slow_proc = cluster.AddClient(cluster.worker(1), "slow");
  HdfsReadWorkload fast(fast_proc, cluster.namenode(), 8 << 10, kMicrosPerMilli, false, 2);
  HdfsReadWorkload slow(slow_proc, cluster.namenode(), 8 << 10, 50 * kMicrosPerMilli, false, 3);
  fast.Start(2 * kMicrosPerSecond);
  slow.Start(2 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  EXPECT_GT(fast.stats().total_ops(), 3 * slow.stats().total_ops());
  // 50 ms think time bounds the slow client at ~40 ops in 2 s.
  EXPECT_LE(slow.stats().total_ops(), 41u);
}

TEST(WorkloadTest, StatsBucketOpsPerSecond) {
  HadoopCluster cluster(TinyConfig());
  SimProcess* proc = cluster.AddClient(cluster.worker(2), "reader");
  HdfsReadWorkload workload(proc, cluster.namenode(), 8 << 10, 20 * kMicrosPerMilli, false, 4);
  workload.Start(3 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  double total_from_buckets = workload.stats().ops().total();
  EXPECT_EQ(static_cast<uint64_t>(total_from_buckets), workload.stats().total_ops());
  EXPECT_EQ(workload.stats().latencies().size(), workload.stats().total_ops());
}

TEST(WorkloadTest, MetadataWorkloadDrivesNameNodeOnly) {
  HadoopCluster cluster(TinyConfig());
  Result<uint64_t> q_nn = cluster.world()->frontend()->Install(
      "From n In NN.ClientProtocol GroupBy n.op Select n.op, COUNT");
  Result<uint64_t> q_dn = cluster.world()->frontend()->Install(
      "From d In DN.DataTransferProtocol Select COUNT");
  ASSERT_TRUE(q_nn.ok());
  ASSERT_TRUE(q_dn.ok());

  SimProcess* proc = cluster.AddClient(cluster.worker(0), "NNBench");
  MetadataWorkload workload(proc, cluster.namenode(), "rename", 5 * kMicrosPerMilli, 5);
  workload.Start(kMicrosPerSecond);
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  bool saw_rename = false;
  for (const Tuple& row : cluster.world()->frontend()->Results(*q_nn)) {
    if (row.Get("n.op").string_value() == "rename") {
      saw_rename = true;
      EXPECT_EQ(static_cast<uint64_t>(row.Get("COUNT").int_value()),
                workload.stats().total_ops());
    }
  }
  EXPECT_TRUE(saw_rename);
  EXPECT_TRUE(cluster.world()->frontend()->Results(*q_dn).empty());
}

TEST(WorkloadTest, PutWorkloadFlows) {
  HadoopCluster cluster(TinyConfig());
  SimProcess* proc = cluster.AddClient(cluster.worker(1), "Hput");
  HbaseWorkload workload(proc, cluster.hbase().servers(), HbaseWorkload::Op::kPut,
                         5 * kMicrosPerMilli, 6);
  workload.Start(kMicrosPerSecond);
  cluster.world()->env()->RunAll();
  EXPECT_GT(workload.stats().total_ops(), 20u);
  uint64_t memstore = 0;
  for (const auto& rs : cluster.hbase().region_servers) {
    memstore += rs->memstore_bytes() +
                static_cast<uint64_t>(rs->flushes()) * cluster.config().hbase.memstore_flush_bytes;
  }
  EXPECT_GE(memstore, workload.stats().total_ops() * cluster.config().hbase.put_bytes / 2);
}

TEST(ClusterTest, TopologyMatchesFig7) {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 16;
  HadoopCluster cluster(config);

  // Per worker host: DataNode, RegionServer, NodeManager, MRTask.
  std::map<std::string, std::vector<std::string>> by_host;
  for (const auto& proc : cluster.world()->processes()) {
    by_host[proc->host()->name()].push_back(proc->name());
  }
  for (int i = 0; i < 4; ++i) {
    std::string host(1, static_cast<char>('A' + i));
    const auto& names = by_host[host];
    for (const char* expected : {"DataNode", "RegionServer", "NodeManager", "MRTask"}) {
      EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
          << expected << " missing on " << host;
    }
  }
  // The master host runs the control processes.
  const auto& master = by_host["master"];
  for (const char* expected : {"NameNode", "HBaseMaster", "ResourceManager"}) {
    EXPECT_NE(std::find(master.begin(), master.end(), expected), master.end()) << expected;
  }
}

TEST(ClusterTest, SchemaCoversHadoopVocabulary) {
  HadoopClusterConfig config;
  config.worker_hosts = 3;
  config.dataset_files = 8;
  HadoopCluster cluster(config);
  for (const char* name :
       {"ClientProtocols", "NN.GetBlockLocations", "NN.ClientProtocol",
        "NN.ClientProtocol.done", "DN.DataTransferProtocol", "DN.DataTransferProtocol.done",
        "DataNodeMetrics.incrBytesRead", "DataNodeMetrics.incrBytesWritten",
        "FileInputStream.read", "FileOutputStream.write", "StressTest.DoNextOp",
        "HBase.ClientService", "RS.QueueDone", "RS.ProcessDone", "RS.MemstoreFlush",
        "HBase.RequestSent", "HBase.ResponseReceived", "MR.ApplicationClientProtocol",
        "MR.JobComplete", "YARN.ContainerStart", "MR.MapTaskDone", "MR.ReduceTaskDone"}) {
    EXPECT_NE(cluster.world()->schema()->Find(name), nullptr) << name;
  }
}

}  // namespace
}  // namespace pivot
