#include "src/agent/agent.h"

namespace pivot {

PTAgent::PTAgent(MessageBus* bus, TracepointRegistry* registry, ProcessInfo info)
    : bus_(bus), registry_(registry), info_(std::move(info)) {
  subscription_ =
      bus_->Subscribe(kCommandTopic, [this](const BusMessage& msg) { HandleCommand(msg); });
  // Announce ourselves so the frontend replays any already-active queries
  // (processes can start after queries are installed).
  bus_->Publish(BusMessage{kReportTopic, EncodeHello()});
}

PTAgent::~PTAgent() { bus_->Unsubscribe(subscription_); }

void PTAgent::HandleCommand(const BusMessage& msg) {
  Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
  if (!decoded.ok()) {
    return;  // Malformed commands are dropped; agents must not crash hosts.
  }
  switch (decoded->type) {
    case ControlMessageType::kWeave: {
      const WeaveCommand& cmd = decoded->weave;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queries_.count(cmd.query_id) != 0) {
          return;  // Duplicate weave; ignore.
        }
        QueryState state;
        state.plan = cmd.plan;
        state.agg = Aggregator(cmd.plan.group_fields, cmd.plan.aggs);
        queries_.emplace(cmd.query_id, std::move(state));
      }
      // Hand the registry the full advice list: tracepoints this process does
      // not define are woven lazily if/when they are defined (deferred
      // weaving), and foreign tracepoints simply never fire here.
      (void)registry_->WeaveQuery(cmd.query_id, cmd.advice);
      break;
    }
    case ControlMessageType::kUnweave: {
      registry_->UnweaveQuery(decoded->unweave_query_id);
      std::lock_guard<std::mutex> lock(mu_);
      queries_.erase(decoded->unweave_query_id);
      break;
    }
    case ControlMessageType::kReport:
    case ControlMessageType::kHello:
      break;  // Agents ignore other agents' traffic.
  }
}

void PTAgent::EmitTuple(uint64_t query_id, const Tuple& t) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return;  // Query was unwoven concurrently; drop.
  }
  QueryState& state = it->second;
  ++state.emitted;
  ++emitted_total_;
  if (state.plan.aggregated) {
    state.agg.AddInput(t);
  } else {
    state.buffered.push_back(t);
  }
}

void PTAgent::Flush(int64_t now_micros) {
  std::vector<AgentReport> reports;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [query_id, state] : queries_) {
      AgentReport report;
      report.query_id = query_id;
      report.host = info_.host;
      report.process_name = info_.process_name;
      report.timestamp_micros = now_micros;
      report.aggregated = state.plan.aggregated;
      if (state.plan.aggregated) {
        if (state.agg.empty()) {
          continue;
        }
        report.tuples = state.agg.StateTuples();
        state.agg.Clear();
      } else {
        if (state.buffered.empty()) {
          continue;
        }
        report.tuples = std::move(state.buffered);
        state.buffered.clear();
      }
      reported_total_ += report.tuples.size();
      ++reports_published_;
      reports.push_back(std::move(report));
    }
  }
  for (const auto& report : reports) {
    bus_->Publish(BusMessage{kReportTopic, EncodeReport(report)});
  }
}

uint64_t PTAgent::emitted_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_total_;
}

uint64_t PTAgent::reported_tuples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reported_total_;
}

uint64_t PTAgent::reports_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_published_;
}

}  // namespace pivot
