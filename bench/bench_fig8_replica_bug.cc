// Fig 8: the HDFS-6268 replica-selection-bug case study (§6.1).
//
// 96 stress-test clients (12 per worker host) perform closed-loop random 8 kB
// reads against 8 DataNodes with replication 3. The HDFS-6268 bug is injected
// exactly as the paper diagnosed it: the NameNode returns rack-local replicas
// in a deterministic order AND the client always selects the first returned
// location. The paper's diagnosis queries Q3-Q7 are installed verbatim and
// each sub-figure's data is printed:
//   8a  per-host client request throughput            (client-side stats)
//   8b  per-host network transfer                     (machine-level stats)
//   8c  per-DataNode request throughput               (Q3)
//   8d  file-read distribution per client             (Q4) - uniform
//   8e  replica-location frequency per client         (Q5) - uniform
//   8f  client -> selected DataNode frequency         (Q6) - skewed
//   8g  pairwise replica preference                   (Q7) - total order
// A second run with the fix applied shows the skew disappearing.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>

#include "bench/bench_util.h"
#include "src/common/strings.h"
#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

constexpr int64_t kRunSeconds = 20;
constexpr int kClientsPerHost = 12;

void PrintMatrix(const std::string& title, const std::vector<std::string>& rows,
                 const std::vector<std::string>& cols,
                 const std::map<std::pair<std::string, std::string>, double>& cells,
                 const char* fmt = "%12.0f") {
  printf("%s\n", title.c_str());
  printf("%10s", "");
  for (const auto& c : cols) {
    printf("%12.12s", c.c_str());
  }
  printf("\n");
  for (const auto& r : rows) {
    printf("%10.10s", r.c_str());
    for (const auto& c : cols) {
      auto it = cells.find({r, c});
      printf(fmt, it == cells.end() ? 0.0 : it->second);
    }
    printf("\n");
  }
  printf("\n");
}

struct RunResult {
  std::map<std::string, double> datanode_ops;  // Q3: ops per DataNode.
};

RunResult Run(bool buggy) {
  printf("=============================================================\n");
  printf("Replica selection: %s\n", buggy ? "HDFS-6268 BUG PRESENT" : "FIXED (randomized)");
  printf("=============================================================\n\n");

  HadoopClusterConfig config;
  config.worker_hosts = 8;
  config.dataset_files = 1000;  // Paper: 10,000 x 128 MB files; scaled.
  config.seed = 62680;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  config.hdfs.datanode_op_micros = 800;  // DN capacity 1250 ops/s: the hot DataNodes saturate.
  // The paper's topology order put hosts A and D first (Fig 8's hot hosts).
  config.hdfs.static_order_hosts = {"A", "D", "B", "C", "E", "F", "G", "H"};
  config.hdfs.namenode_static_replica_order = buggy;
  config.hdfs.client_selects_first_location = buggy;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  std::vector<std::string> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.emplace_back(1, static_cast<char>('A' + i));
  }

  // ---- The paper's queries ----
  Result<uint64_t> q3 = world->frontend()->Install(
      "From dnop In DN.DataTransferProtocol\n"
      "GroupBy dnop.host\n"
      "Select dnop.host, COUNT");
  Result<uint64_t> q4 = world->frontend()->Install(
      "From getloc In NN.GetBlockLocations\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "GroupBy st.host, getloc.src\n"
      "Select st.host, getloc.src, COUNT");
  Result<uint64_t> q5 = world->frontend()->Install(
      "From getloc In NN.GetBlockLocations\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "GroupBy st.host, getloc.replicas\n"
      "Select st.host, getloc.replicas, COUNT");
  Result<uint64_t> q6 = world->frontend()->Install(
      "From DNop In DN.DataTransferProtocol\n"
      "Join st In StressTest.DoNextOp On st -> DNop\n"
      "GroupBy st.host, DNop.host\n"
      "Select st.host, DNop.host, COUNT");
  Result<uint64_t> q7 = world->frontend()->Install(
      "From DNop In DN.DataTransferProtocol\n"
      "Join getloc In NN.GetBlockLocations On getloc -> DNop\n"
      "Join st In StressTest.DoNextOp On st -> getloc\n"
      "Where st.host != DNop.host\n"
      "GroupBy DNop.host, getloc.replicas\n"
      "Select DNop.host, getloc.replicas, COUNT");
  for (const auto* q : {&q3, &q4, &q5, &q6, &q7}) {
    if (!q->ok()) {
      fprintf(stderr, "install failed: %s\n", q->status().ToString().c_str());
      exit(1);
    }
  }

  // ---- 96 stress-test clients ----
  std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  uint64_t seed = 1;
  for (int h = 0; h < 8; ++h) {
    for (int c = 0; c < kClientsPerHost; ++c) {
      SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "StressTest");
      clients.push_back(std::make_unique<HdfsReadWorkload>(proc, cluster.namenode(), 8 << 10,
                                                           10 * kMicrosPerMilli,
                                                           /*stress_test=*/true, seed++));
      clients.back()->Start(kRunSeconds * kMicrosPerSecond);
    }
  }

  world->StartAgentFlushLoop((kRunSeconds + 2) * kMicrosPerSecond);
  world->env()->RunAll();

  // ---- 8a: client throughput per host ----
  printf("Fig 8a: aggregate StressTest client throughput per host [req/s]\n");
  for (int h = 0; h < 8; ++h) {
    uint64_t ops = 0;
    for (int c = 0; c < kClientsPerHost; ++c) {
      ops += clients[static_cast<size_t>(h * kClientsPerHost + c)]->stats().total_ops();
    }
    printf("  clients on %s: %6.1f\n", hosts[static_cast<size_t>(h)].c_str(),
           static_cast<double>(ops) / kRunSeconds);
  }
  printf("\n");

  // ---- 8b: network transfer per host ----
  printf("Fig 8b: per-host network transfer [MB/s]\n");
  for (const auto& host : hosts) {
    SimHost* sim_host = world->FindHost(host);
    double bytes = 0;
    for (int64_t s = 0; s < kRunSeconds; ++s) {
      bytes += sim_host->NetworkBytesInSecond(s);
    }
    printf("  %s: %8.2f\n", host.c_str(), bytes / kRunSeconds / (1 << 20));
  }
  printf("\n");

  // ---- 8c: DataNode throughput (Q3) ----
  RunResult result;
  printf("Fig 8c: HDFS DataNode request throughput (Q3) [ops/s]\n");
  for (const Tuple& row : world->frontend()->Results(*q3)) {
    double rate = row.Get("COUNT").AsDouble() / kRunSeconds;
    result.datanode_ops[row.Get("dnop.host").string_value()] = rate;
  }
  for (const auto& host : hosts) {
    printf("  %s: %7.1f\n", host.c_str(), result.datanode_ops[host]);
  }
  printf("\n");

  // ---- 8d: file-read distribution per client (Q4) ----
  printf("Fig 8d: observed file-read distribution per client host (Q4)\n");
  printf("  (reads per file: uniform random expected; mean ~ total/files)\n");
  {
    std::map<std::string, std::vector<double>> counts_by_host;
    for (const Tuple& row : world->frontend()->Results(*q4)) {
      counts_by_host[row.Get("st.host").string_value()].push_back(
          row.Get("COUNT").AsDouble());
    }
    printf("%10s%10s%10s%10s%10s\n", "client", "files", "mean", "max", "stddev");
    for (const auto& host : hosts) {
      const auto& counts = counts_by_host[host];
      double total = 0;
      double max_count = 0;
      for (double c : counts) {
        total += c;
        max_count = std::max(max_count, c);
      }
      double mean = counts.empty() ? 0 : total / static_cast<double>(counts.size());
      double var = 0;
      for (double c : counts) {
        var += (c - mean) * (c - mean);
      }
      double stddev = counts.empty() ? 0 : std::sqrt(var / static_cast<double>(counts.size()));
      printf("%10s%10zu%10.2f%10.0f%10.2f\n", host.c_str(), counts.size(), mean, max_count,
             stddev);
    }
    printf("\n");
  }

  // ---- 8e: replica-location frequency (Q5) ----
  {
    std::map<std::pair<std::string, std::string>, double> freq;
    for (const Tuple& row : world->frontend()->Results(*q5)) {
      std::string client = row.Get("st.host").string_value();
      double count = row.Get("COUNT").AsDouble();
      for (const auto& replica : StrSplit(row.Get("getloc.replicas").string_value(), ',')) {
        freq[{client, replica}] += count;
      }
    }
    PrintMatrix(
        "Fig 8e: frequency each client (row) sees each DataNode (col) as a replica "
        "location (Q5) - near-uniform",
        hosts, hosts, freq);
  }

  // ---- 8f: selection frequency (Q6) ----
  {
    std::map<std::pair<std::string, std::string>, double> freq;
    for (const Tuple& row : world->frontend()->Results(*q6)) {
      freq[{row.Get("st.host").string_value(), row.Get("DNop.host").string_value()}] =
          row.Get("COUNT").AsDouble();
    }
    PrintMatrix(
        "Fig 8f: frequency each client (row) selects each DataNode (col) for reading (Q6)",
        hosts, hosts, freq);
  }

  // ---- 8g: pairwise preference (Q7) ----
  {
    // wins[c][o]: times c was chosen while o also hosted a replica (non-local
    // reads only, per the Where clause).
    std::map<std::pair<std::string, std::string>, double> wins;
    std::map<std::pair<std::string, std::string>, double> appearances;
    for (const Tuple& row : world->frontend()->Results(*q7)) {
      std::string chosen = row.Get("DNop.host").string_value();
      double count = row.Get("COUNT").AsDouble();
      for (const auto& other : StrSplit(row.Get("getloc.replicas").string_value(), ',')) {
        if (other == chosen) {
          continue;
        }
        wins[{chosen, other}] += count;
        appearances[{chosen, other}] += count;
        appearances[{other, chosen}] += count;
      }
    }
    std::map<std::pair<std::string, std::string>, double> preference;
    for (const auto& [key, w] : wins) {
      double total = appearances[key];
      preference[key] = total > 0 ? w / total : 0;
    }
    PrintMatrix(
        "Fig 8g: probability of choosing replica host (row) over replica host (col) "
        "(Q7, non-local reads)",
        hosts, hosts, preference, "%12.2f");
  }

  return result;
}

int Main() {
  RunResult buggy = Run(true);
  RunResult fixed = Run(false);

  auto spread = [](const RunResult& r) {
    double max_rate = 0;
    double min_rate = 1e18;
    for (const auto& [host, rate] : r.datanode_ops) {
      max_rate = std::max(max_rate, rate);
      min_rate = std::min(min_rate, rate);
    }
    return std::pair<double, double>(max_rate, min_rate);
  };
  auto [bmax, bmin] = spread(buggy);
  auto [fmax, fmin] = spread(fixed);
  printf("Summary (Fig 8c skew): buggy max/min DataNode load = %.1f/%.1f ops/s (%.1fx);\n"
         "fixed = %.1f/%.1f ops/s (%.1fx).\n",
         bmax, bmin, bmax / std::max(1.0, bmin), fmax, fmin, fmax / std::max(1.0, fmin));
  printf("Paper reference: host A ~150 ops/s vs host H ~25 ops/s under the bug; the strong\n"
         "diagonal of Fig 8f is local-replica preference (~39%% of reads); Fig 8g shows the\n"
         "total order induced by the static replica ordering.\n");
  return 0;
}

}  // namespace
}  // namespace pivot

int main() { return pivot::Main(); }
