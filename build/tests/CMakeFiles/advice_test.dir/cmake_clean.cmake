file(REMOVE_RECURSE
  "CMakeFiles/advice_test.dir/advice_test.cc.o"
  "CMakeFiles/advice_test.dir/advice_test.cc.o.d"
  "advice_test"
  "advice_test.pdb"
  "advice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
