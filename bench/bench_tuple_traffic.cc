// Fig 6 + §4: the cost of evaluating happened-before joins.
//
// Compares three strategies for Q2 over the same workload:
//   1. Naive/global (Fig 6a): every tuple observed at any of the query's
//      tracepoints is shipped for a centralized θ-join over the recorded
//      execution DAGs (the Magpie-style temporal-join strategy).
//   2. Optimized inline (Fig 6b): baggage evaluates the join in situ; only
//      process-locally pre-aggregated results cross the network, once per
//      second ("Q2 is reduced from approximately 600 tuples per second to 6
//      tuples per second from each DataNode").
//   3. Ablation: the same inline strategy with the §4 rewrites disabled
//      (no projection/selection/aggregation pushdown) — baggage grows.
//
// Also verifies the two evaluation strategies agree on the query answer, and
// reports baggage bytes per request for Q2 and for Q7 (the paper's largest:
// ~137 bytes per request).

#include <cstdio>
#include <memory>

#include "src/hadoop/cluster.h"
#include "src/hadoop/tracepoints.h"
#include "src/query/naive_eval.h"
#include "src/query/parser.h"

namespace pivot {
namespace {

constexpr int64_t kRunSeconds = 5;
constexpr int kClientsPerHost = 4;
constexpr int kHosts = 4;

constexpr char kQ2[] =
    "From incr In DataNodeMetrics.incrBytesRead\n"
    "Join cl In First(ClientProtocols) On cl -> incr\n"
    "GroupBy cl.procName\n"
    "Select cl.procName, SUM(incr.delta)";

constexpr char kQ7[] =
    "From DNop In DN.DataTransferProtocol\n"
    "Join getloc In NN.GetBlockLocations On getloc -> DNop\n"
    "Join st In StressTest.DoNextOp On st -> getloc\n"
    "Where st.host != DNop.host\n"
    "GroupBy DNop.host, getloc.replicas\n"
    "Select DNop.host, getloc.replicas, COUNT";

struct RunStats {
  uint64_t requests = 0;
  uint64_t emitted = 0;           // Advice -> agent (in-process).
  uint64_t reported = 0;          // Agent -> frontend (crosses the network).
  uint64_t reports = 0;
  uint64_t baggage_bytes = 0;     // Total serialized baggage on the wire.
  uint64_t rpc_calls = 0;
  std::vector<Tuple> results;
  TraceRecorder* recorder = nullptr;
};

RunStats RunWorkload(const char* query_text, const QueryCompiler::Options& options, bool record,
                     bool explain = false) {
  // The cluster/clients are static so the returned recorder pointer stays
  // valid until the *next* RunWorkload call (callers consume it in between).
  static std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  static std::unique_ptr<HadoopCluster> cluster;
  clients.clear();
  HadoopClusterConfig config;
  config.worker_hosts = kHosts;
  config.dataset_files = 100;
  config.seed = 4242;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  cluster = std::make_unique<HadoopCluster>(config);
  SimWorld* world = cluster->world();
  if (record) {
    world->EnableRecording();
  }
  RpcStats::Reset();

  Result<uint64_t> q = explain ? world->frontend()->InstallExplain(query_text)
                               : world->frontend()->Install(query_text, options);
  if (!q.ok()) {
    fprintf(stderr, "install failed: %s\n", q.status().ToString().c_str());
    exit(1);
  }

  uint64_t seed = 99;
  for (int h = 0; h < kHosts; ++h) {
    for (int c = 0; c < kClientsPerHost; ++c) {
      SimProcess* proc =
          cluster->AddClient(cluster->worker(static_cast<size_t>(h)), "StressTest");
      clients.push_back(std::make_unique<HdfsReadWorkload>(proc, cluster->namenode(), 8 << 10,
                                                           5 * kMicrosPerMilli,
                                                           /*stress_test=*/true, seed++));
      clients.back()->Start(kRunSeconds * kMicrosPerSecond);
    }
  }
  world->StartAgentFlushLoop((kRunSeconds + 1) * kMicrosPerSecond);
  world->env()->RunAll();

  RunStats stats;
  for (const auto& c : clients) {
    stats.requests += c->stats().total_ops();
  }
  for (const auto& proc : world->processes()) {
    stats.emitted += proc->agent()->emitted_tuples();
    stats.reported += proc->agent()->reported_tuples();
    stats.reports += proc->agent()->reports_published();
  }
  stats.baggage_bytes = RpcStats::total_baggage_bytes;
  stats.rpc_calls = RpcStats::total_calls;
  stats.results = world->frontend()->Results(*q);
  stats.recorder = world->recorder();
  return stats;
}

std::vector<std::string> Canonical(const std::vector<Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& r : rows) {
    out.push_back(r.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

int Main() {
  printf("Tuple traffic for Q2 over a %lld s StressTest workload "
         "(%d clients, %d DataNodes)\n\n",
         static_cast<long long>(kRunSeconds), kHosts * kClientsPerHost, kHosts);

  // ---- Optimized inline evaluation, with ground-truth recording ----
  RunStats optimized = RunWorkload(kQ2, QueryCompiler::Options{}, /*record=*/true);

  // Naive/global evaluation over the same recorded execution.
  Result<Query> q2_ast = ParseQuery(kQ2);
  Result<NaiveResult> naive = EvaluateNaive(*q2_ast, *optimized.recorder, nullptr);
  if (!naive.ok()) {
    fprintf(stderr, "naive evaluation failed: %s\n", naive.status().ToString().c_str());
    return 1;
  }

  bool agree = Canonical(naive->rows) == Canonical(optimized.results);
  printf("Results (both strategies -> %s):\n", agree ? "IDENTICAL" : "MISMATCH!");
  for (const auto& row : optimized.results) {
    printf("  %s\n", row.ToString().c_str());
  }
  printf("\n");

  double secs = static_cast<double>(kRunSeconds);
  double per_dn = secs * kHosts;
  printf("%-52s %12s %14s\n", "strategy / stage", "tuples", "per DN per s");
  printf("%-52s %12llu %14.1f\n", "naive global join: tuples shipped to evaluator (Fig 6a)",
         static_cast<unsigned long long>(naive->tuples_shipped),
         static_cast<double>(naive->tuples_shipped) / per_dn);
  printf("%-52s %12llu %14.1f\n", "inline: tuples emitted by advice (stay in-process)",
         static_cast<unsigned long long>(optimized.emitted),
         static_cast<double>(optimized.emitted) / per_dn);
  printf("%-52s %12llu %14.1f\n", "inline: tuples reported after per-process aggregation",
         static_cast<unsigned long long>(optimized.reported),
         static_cast<double>(optimized.reported) / per_dn);
  printf("\nPaper (§4): \"Q2 is reduced from approximately 600 tuples per second to 6 tuples\n"
         "per second from each DataNode\" — the reported/emitted ratio above is the same\n"
         "two-orders-of-magnitude collapse.\n\n");

  // ---- Ablation: §4 rewrites disabled ----
  QueryCompiler::Options no_opt;
  no_opt.push_projection = false;
  no_opt.push_selection = false;
  no_opt.push_aggregation = false;
  RunStats unoptimized = RunWorkload(kQ2, no_opt, /*record=*/false);

  printf("Baggage on the wire for Q2 (%llu requests, %llu RPCs):\n",
         static_cast<unsigned long long>(optimized.requests),
         static_cast<unsigned long long>(optimized.rpc_calls));
  printf("  optimized (Π/σ/A pushdown):   %8.1f bytes per request\n",
         static_cast<double>(optimized.baggage_bytes) /
             static_cast<double>(optimized.requests));
  printf("  unoptimized (whole tuples):   %8.1f bytes per request\n",
         static_cast<double>(unoptimized.baggage_bytes) /
             static_cast<double>(unoptimized.requests));
  printf("  unoptimized requests completed: %llu (vs %llu optimized — heavier baggage\n"
         "  costs simulated bandwidth, so the closed-loop workload itself slows down;\n"
         "  semantic equivalence of the rewrites is property-tested in\n"
         "  tests/equivalence_test.cc)\n\n",
         static_cast<unsigned long long>(unoptimized.requests),
         static_cast<unsigned long long>(optimized.requests));

  // ---- Q7: the paper's largest baggage ----
  RunStats q7 = RunWorkload(kQ7, QueryCompiler::Options{}, /*record=*/false);
  printf("Baggage on the wire for Q7 (3-way chained join; paper: ~137 bytes/request):\n");
  printf("  %8.1f bytes per request over %llu requests\n\n",
         static_cast<double>(q7.baggage_bytes) / static_cast<double>(q7.requests),
         static_cast<unsigned long long>(q7.requests));

  // ---- §4 "explain": static pack-cost estimate + live tuple counting ----
  {
    printf("Static pack-cost estimate for Q7 (the query optimizer's preview):\n");
    TracepointRegistry schema;
    RegisterHadoopTracepointDefs(&schema);
    QueryRegistry named;
    QueryCompiler compiler(&schema, &named);
    Result<Query> ast = ParseQuery(kQ7);
    Result<CompiledQuery> cq = compiler.Compile(*ast, 1);
    for (const auto& cost : cq->EstimatePackCosts()) {
      printf("  pack at %-28s bag %-6llu bound: %-28s fields/tuple: %zu\n",
             cost.tracepoint.c_str(), static_cast<unsigned long long>(cost.bag),
             cost.bound.c_str(), cost.fields);
    }
    printf("\n");
  }

  RunStats explain =
      RunWorkload(kQ2, QueryCompiler::Options{}, /*record=*/false, /*explain=*/true);
  printf("Live explain for Q2 (counting shadow; \"execute a modified version of the\n"
         "query to count tuples rather than aggregate them\", §4):\n");
  for (const auto& row : explain.results) {
    printf("  %s\n", row.ToString().c_str());
  }
  printf("\n");

  // ---- §8: advice-level sampling ablation ----
  constexpr char kQ2Sampled[] =
      "From incr In DataNodeMetrics.incrBytesRead\n"
      "Join cl In Sample(10, First(ClientProtocols)) On cl -> incr\n"
      "GroupBy cl.procName\n"
      "Select cl.procName, SUM(incr.delta)";
  RunStats sampled = RunWorkload(kQ2Sampled, QueryCompiler::Options{}, /*record=*/false);
  printf("Sampling ablation (§8): Q2 with the ClientProtocols pack sampled at 10%%:\n");
  printf("  baggage bytes/request: %.1f (sampled) vs %.1f (full)\n",
         static_cast<double>(sampled.baggage_bytes) / static_cast<double>(sampled.requests),
         static_cast<double>(optimized.baggage_bytes) /
             static_cast<double>(optimized.requests));
  printf("  sampled results (counts ~10%% of requests, same grouping):\n");
  for (const auto& row : sampled.results) {
    printf("    %s\n", row.ToString().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace pivot

int main() { return pivot::Main(); }
