// Rate-limited FIFO resources and per-second time series.
//
// A SimResource models a device with a fixed service rate — a disk, a NIC
// link — as a single FIFO server: a transfer of B bytes arriving at time t
// begins when the device frees up and completes B/rate later. This produces
// realistic queueing (the mechanism behind the limplock experiment of Fig 9:
// downgrading one NIC's rate backs up every flow crossing it).

#ifndef PIVOT_SRC_SIMSYS_SIM_RESOURCE_H_
#define PIVOT_SRC_SIMSYS_SIM_RESOURCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "src/simsys/sim_env.h"

namespace pivot {

// Per-second scalar time series (the data behind every time-series figure).
class TimeSeries {
 public:
  explicit TimeSeries(const SimEnvironment* env) : env_(env) {}

  void Add(double value) { buckets_[env_->now_micros() / kMicrosPerSecond] += value; }
  void AddAt(int64_t time_micros, double value) {
    buckets_[time_micros / kMicrosPerSecond] += value;
  }

  // second index -> sum of added values in that second.
  const std::map<int64_t, double>& buckets() const { return buckets_; }

  double total() const;
  // Sum over [from_sec, to_sec).
  double SumRange(int64_t from_sec, int64_t to_sec) const;

 private:
  const SimEnvironment* env_;
  std::map<int64_t, double> buckets_;
};

class SimResource {
 public:
  // `bytes_per_sec` is the service rate.
  SimResource(SimEnvironment* env, std::string name, double bytes_per_sec);

  const std::string& name() const { return name_; }
  double rate() const { return bytes_per_sec_; }

  // Changes the service rate from now on (fault injection: the limplock
  // experiment downgrades a 1 Gbit NIC to 100 Mbit).
  void set_rate(double bytes_per_sec) { bytes_per_sec_ = bytes_per_sec; }

  // Enqueues a transfer of `bytes`; `done(queued_micros, service_micros)` runs
  // at completion with how long the transfer waited and how long it was
  // serviced. Bytes are attributed to the throughput series at completion.
  void Transfer(uint64_t bytes, std::function<void(int64_t, int64_t)> done);

  // Convenience overload ignoring the timing breakdown.
  void Transfer(uint64_t bytes, std::function<void()> done);

  // Occupies the resource exclusively for `service_micros` (rate-independent),
  // queueing FIFO behind pending work. Models critical sections — e.g. the
  // HDFS NameNode's exclusive namespace lock. `done(queued_micros)` runs at
  // release with the time spent waiting for the resource.
  void Occupy(int64_t service_micros, std::function<void(int64_t)> done);

  // Time at which the resource next becomes free (>= now when busy).
  int64_t free_at() const { return free_at_; }
  // Queue delay a transfer issued now would experience.
  int64_t QueueDelay() const;

  uint64_t total_bytes() const { return total_bytes_; }
  const TimeSeries& throughput() const { return throughput_; }

 private:
  SimEnvironment* env_;
  std::string name_;
  double bytes_per_sec_;
  int64_t free_at_ = 0;
  uint64_t total_bytes_ = 0;
  TimeSeries throughput_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_SIMSYS_SIM_RESOURCE_H_
