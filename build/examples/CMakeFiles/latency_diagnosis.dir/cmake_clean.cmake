file(REMOVE_RECURSE
  "CMakeFiles/latency_diagnosis.dir/latency_diagnosis.cpp.o"
  "CMakeFiles/latency_diagnosis.dir/latency_diagnosis.cpp.o.d"
  "latency_diagnosis"
  "latency_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latency_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
