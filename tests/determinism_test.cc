// Guards the "every figure bench is exactly reproducible" claim (DESIGN.md):
// two simulations with the same seed must produce byte-identical query
// results and statistics; a different seed must diverge.

#include <gtest/gtest.h>

#include <memory>

#include "src/hadoop/cluster.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

struct RunOutput {
  std::vector<std::string> q2_rows;
  std::vector<std::string> q6_rows;
  uint64_t total_ops = 0;
  uint64_t rpc_calls = 0;
  uint64_t baggage_bytes = 0;
  int64_t end_time = 0;
};

RunOutput RunSim(uint64_t seed) {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 64;
  config.seed = seed;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();
  RpcStats::Reset();

  uint64_t q2 = *world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy incr.host Select incr.host, SUM(incr.delta), COUNT");
  uint64_t q6 = *world->frontend()->Install(
      "From DNop In DN.DataTransferProtocol "
      "Join st In StressTest.DoNextOp On st -> DNop "
      "GroupBy st.host, DNop.host Select st.host, DNop.host, COUNT");

  std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  for (int h = 0; h < 4; ++h) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "StressTest");
    clients.push_back(std::make_unique<HdfsReadWorkload>(proc, cluster.namenode(), 8 << 10,
                                                         5 * kMicrosPerMilli, true,
                                                         seed * 7 + static_cast<uint64_t>(h)));
    clients.back()->Start(2 * kMicrosPerSecond);
  }
  world->StartAgentFlushLoop(3 * kMicrosPerSecond);
  world->env()->RunAll();

  RunOutput out;
  out.q2_rows = CanonicalTuples(world->frontend()->Results(q2));
  out.q6_rows = CanonicalTuples(world->frontend()->Results(q6));
  for (const auto& c : clients) {
    out.total_ops += c->stats().total_ops();
  }
  out.rpc_calls = RpcStats::total_calls;
  out.baggage_bytes = RpcStats::total_baggage_bytes;
  out.end_time = world->env()->now_micros();
  return out;
}

TEST(DeterminismTest, SameSeedIsByteIdentical) {
  RunOutput a = RunSim(42);
  RunOutput b = RunSim(42);
  EXPECT_EQ(a.q2_rows, b.q2_rows);
  EXPECT_EQ(a.q6_rows, b.q6_rows);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.rpc_calls, b.rpc_calls);
  EXPECT_EQ(a.baggage_bytes, b.baggage_bytes);
  EXPECT_EQ(a.end_time, b.end_time);
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  RunOutput a = RunSim(42);
  RunOutput b = RunSim(43);
  // Placement and selection differ, so the per-DataNode distribution must.
  EXPECT_NE(a.q6_rows, b.q6_rows);
}

}  // namespace
}  // namespace pivot
