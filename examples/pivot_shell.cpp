// pivot_shell: an interactive Pivot Tracing frontend against a live
// (simulated) Hadoop cluster — the "one-off queries for interactive
// debugging" usage mode of §1.
//
// A mixed workload (HDFS readers, HBase gets/scans, a looping MapReduce job)
// runs on an 8-host cluster. The shell advances simulated time between
// commands, so each `advance` gathers more data for your standing queries.
//
// Usage:  ./build/examples/pivot_shell            (interactive)
//         echo "..." | ./build/examples/pivot_shell   (scripted)
//
// Commands:
//   install <query on one line>   compile + weave a query, print its advice
//   explain <query on one line>   install the §4 counting shadow instead
//   advance <seconds>             run the workload forward
//   results <id>                  cumulative results of a query
//   series <id>                   per-second results of a query
//   uninstall <id>                remove a query
//   tracepoints                   list the cluster's tracepoint vocabulary
//   queries                       list installed queries
//   status [json]                 operational dump: query lifecycle, agent
//                                 health, bus traffic, telemetry registry
//   help / quit
//
// The vocabulary includes the self-telemetry meta-tracepoints, so the shell
// can monitor Pivot Tracing with Pivot Tracing:
//   install From b In Baggage.Serialize GroupBy b.queryId Select b.queryId, SUM(b.bytes)

#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/analysis/reachability.h"
#include "src/common/strings.h"
#include "src/hadoop/cluster.h"

using namespace pivot;

namespace {

struct Shell {
  HadoopCluster cluster;
  int64_t now_s = 0;
  std::vector<uint64_t> installed;

  std::vector<std::unique_ptr<HdfsReadWorkload>> hdfs_clients;
  std::vector<std::unique_ptr<HbaseWorkload>> hbase_clients;
  std::unique_ptr<MapReduceWorkload> mr;

  static HadoopClusterConfig Config() {
    HadoopClusterConfig config;
    config.worker_hosts = 8;
    config.dataset_files = 300;
    config.seed = 1015;
    return config;
  }

  Shell() : cluster(Config()) {
    constexpr int64_t kHorizon = 3600 * kMicrosPerSecond;
    SimWorld* world = cluster.world();
    // Background workload mix.
    for (int i = 0; i < 2; ++i) {
      SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(i)), "FSread4m");
      hdfs_clients.push_back(std::make_unique<HdfsReadWorkload>(
          proc, cluster.namenode(), 4 << 20, 20 * kMicrosPerMilli, false,
          11 + static_cast<uint64_t>(i)));
      hdfs_clients.back()->Start(kHorizon);
    }
    for (int i = 0; i < 2; ++i) {
      SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(2 + i)), "Hget");
      hbase_clients.push_back(std::make_unique<HbaseWorkload>(
          proc, cluster.hbase().servers(), false, 5 * kMicrosPerMilli,
          21 + static_cast<uint64_t>(i)));
      hbase_clients.back()->Start(kHorizon);
    }
    SimProcess* scan_proc = cluster.AddClient(cluster.worker(4), "Hscan");
    hbase_clients.push_back(std::make_unique<HbaseWorkload>(
        scan_proc, cluster.hbase().servers(), true, 50 * kMicrosPerMilli, 31));
    hbase_clients.back()->Start(kHorizon);

    SimProcess* job_client = cluster.AddClient(cluster.master_host(), "MRsort10g");
    mr = std::make_unique<MapReduceWorkload>(job_client, cluster.mapreduce(), "MRsort10g",
                                             128 << 20, cluster.config().mapreduce);
    mr->Start(kHorizon);
    world->StartAgentFlushLoop(kHorizon);
  }

  void Advance(int64_t seconds) {
    now_s += seconds;
    cluster.world()->RunUntil(now_s * kMicrosPerSecond);
    printf("[t=%llds] advanced %lld simulated second(s)\n",
           static_cast<long long>(now_s), static_cast<long long>(seconds));
  }

  void Install(const std::string& text, bool explain, bool force) {
    Frontend* frontend = cluster.world()->frontend();
    Frontend::InstallOptions options;
    options.force = force;
    Result<uint64_t> q =
        explain ? frontend->InstallExplain(text) : frontend->Install(text, options);
    if (!q.ok()) {
      printf("error: %s\n", q.status().ToString().c_str());
      return;
    }
    installed.push_back(*q);
    printf("installed query %llu%s\n", static_cast<unsigned long long>(*q),
           explain ? " (explain/counting mode)" : "");
    printf("%s", frontend->compiled(*q)->Explain().c_str());
    for (const auto& cost : frontend->compiled(*q)->EstimatePackCosts()) {
      printf("  baggage cost at %s: %s\n", cost.tracepoint.c_str(), cost.bound.c_str());
    }
  }

  void Lint(const std::string& text) {
    Result<analysis::QueryLintResult> lint = cluster.world()->frontend()->Lint(text);
    if (!lint.ok()) {
      printf("error: %s\n", lint.status().ToString().c_str());
      return;
    }
    if (lint->report.empty()) {
      printf("clean: no diagnostics\n");
    } else {
      printf("%s\n", lint->report.ToString().c_str());
    }
    printf("baggage cost: %s\n", analysis::BaggageCostName(lint->cost));
    if (lint->report.has_errors()) {
      printf("verdict: REJECT (install would fail)\n");
    } else if (lint->report.has_warnings()) {
      printf("verdict: warn (install needs --force)\n");
    } else {
      printf("verdict: ok\n");
    }
  }

  void Results(uint64_t id) {
    auto rows = cluster.world()->frontend()->Results(id);
    if (rows.empty()) {
      printf("(no results yet — try `advance 5`)\n");
      return;
    }
    for (const auto& row : rows) {
      printf("  %s\n", row.ToString().c_str());
    }
  }

  void Series(uint64_t id) {
    auto series = cluster.world()->frontend()->Series(id);
    if (series.empty()) {
      printf("(no results yet — try `advance 5`)\n");
      return;
    }
    for (const auto& [ts, rows] : series) {
      printf("  t=%llds:\n", static_cast<long long>(ts / kMicrosPerSecond));
      for (const auto& row : rows) {
        printf("    %s\n", row.ToString().c_str());
      }
    }
  }
};

constexpr char kHelp[] =
    "commands:\n"
    "  install <query>     e.g. install From incr In DataNodeMetrics.incrBytesRead"
    " GroupBy incr.host Select incr.host, SUM(incr.delta)\n"
    "  explain <query>     install the tuple-counting shadow of a query\n"
    "  lint <query>        static analysis only: diagnostics + baggage cost,\n"
    "                      nothing is installed (docs/ANALYSIS.md)\n"
    "                      (install --force overrides warning-level findings)\n"
    "  advance <seconds>   run the simulated workload forward\n"
    "  results <id>        cumulative results\n"
    "  series <id>         per-second results\n"
    "  uninstall <id>      remove a query\n"
    "  tracepoints         list the tracepoint vocabulary\n"
    "  topology            system propagation graph + audit (PT302/303/304)\n"
    "  queries             list installed query ids\n"
    "  status [json]       query lifecycle + agent health + bus + telemetry\n"
    "  help, quit\n";

}  // namespace

int main() {
  Shell shell;
  printf("Pivot Tracing shell — 8-host simulated Hadoop cluster with a live workload.\n%s",
         kHelp);

  std::string line;
  while (true) {
    printf("pivot> ");
    fflush(stdout);
    if (!std::getline(std::cin, line)) {
      break;
    }
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) {
      continue;
    }
    if (cmd == "quit" || cmd == "exit") {
      break;
    }
    if (cmd == "help") {
      printf("%s", kHelp);
    } else if (cmd == "advance") {
      int64_t seconds = 1;
      in >> seconds;
      shell.Advance(seconds > 0 ? seconds : 1);
    } else if (cmd == "install" || cmd == "explain" || cmd == "lint") {
      std::string rest;
      std::getline(in, rest);
      bool force = false;
      size_t start = rest.find_first_not_of(' ');
      if (start != std::string::npos && rest.compare(start, 8, "--force ") == 0) {
        force = true;
        rest = rest.substr(start + 8);
      }
      if (cmd == "lint") {
        shell.Lint(rest);
      } else {
        shell.Install(rest, cmd == "explain", force);
      }
    } else if (cmd == "results" || cmd == "series" || cmd == "uninstall") {
      uint64_t id = 0;
      in >> id;
      if (cmd == "results") {
        shell.Results(id);
      } else if (cmd == "series") {
        shell.Series(id);
      } else {
        Status s = shell.cluster.world()->frontend()->Uninstall(id);
        printf("%s\n", s.ok() ? "uninstalled" : s.ToString().c_str());
      }
    } else if (cmd == "tracepoints") {
      for (const auto& name : shell.cluster.world()->schema()->Names()) {
        const Tracepoint* tp = shell.cluster.world()->schema()->Find(name);
        printf("  %-36s exports: %s\n", name.c_str(), StrJoin(tp->def().exports, ", ").c_str());
      }
    } else if (cmd == "topology") {
      const analysis::PropagationRegistry& graph = shell.cluster.world()->propagation();
      printf("%s", graph.RenderText().c_str());
      analysis::Report audit = analysis::AuditTopology(graph);
      if (audit.empty()) {
        printf("audit: clean (every boundary declared, every component reachable)\n");
      } else {
        printf("%s", audit.ToString().c_str());
      }
    } else if (cmd == "queries") {
      for (uint64_t id : shell.installed) {
        printf("  %llu\n", static_cast<unsigned long long>(id));
      }
    } else if (cmd == "status") {
      std::string mode;
      in >> mode;
      Frontend* frontend = shell.cluster.world()->frontend();
      if (mode == "json") {
        printf("%s\n", frontend->StatusReportJson().c_str());
      } else {
        printf("%s", frontend->StatusReport().c_str());
      }
    } else {
      printf("unknown command '%s' — try `help`\n", cmd.c_str());
    }
  }
  printf("bye\n");
  return 0;
}
