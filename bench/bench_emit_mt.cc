// Multi-threaded emission-path benchmark (docs/PERFORMANCE.md, "Emission
// path"): PTAgent::EmitTuple intake cost, sharded vs global-lock.
//
//   1. Single-thread ns/tuple: an 8-shard agent vs a 1-shard agent (the
//      1-shard configuration is the old global-lock path: one mutex, one
//      aggregator). Sharding must not tax the sequential caller — gated by
//      --max-st-ratio (sharded/baseline, check.sh passes 1.25).
//   2. 1→8-thread scaling: aggregate tuples/s through both configurations.
//      On multi-core hardware the sharded intake must reach
//      --min-mt-speedup (3x, per ISSUE) over the global lock at 8 threads.
//      On boxes with < 4 hardware threads the contention being measured
//      physically cannot materialize (one core interleaves the "contending"
//      threads), so the MT gate self-skips with a SKIP line; CI's multi-core
//      runners enforce it.
//
// Hand-rolled timing (best-of-passes) like bench_hotpath: no benchmark
// library, so the gate runs identically everywhere check.sh does.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/agent/agent.h"
#include "src/bus/message_bus.h"

namespace pivot {
namespace {

constexpr uint64_t kQuery = 1;

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double MeasureNs(const std::function<void()>& fn, int iters, int passes = 8) {
  int64_t best = INT64_MAX;
  for (int p = 0; p < passes; ++p) {
    int64_t start = NowNanos();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    int64_t elapsed = NowNanos() - start;
    if (elapsed < best) {
      best = elapsed;
    }
  }
  return static_cast<double>(best) / iters;
}

// A woven grouped-COUNT query (8 groups), the common aggregated-intake shape.
WeaveCommand Command() {
  WeaveCommand cmd;
  cmd.query_id = kQuery;
  cmd.advice.emplace_back("X",
                          AdviceBuilder().Observe({{"v", "x.v"}}).Emit(kQuery, {}).Build());
  cmd.plan.aggregated = true;
  cmd.plan.group_fields = {"x.v"};
  cmd.plan.aggs = {{AggFn::kCount, "", "COUNT", false}};
  cmd.plan.output_columns = {"x.v", "COUNT"};
  return cmd;
}

// One agent + bus + registry, woven and ready to take emissions.
struct Harness {
  MessageBus bus;
  TracepointRegistry registry;
  std::unique_ptr<PTAgent> agent;

  explicit Harness(size_t shards) {
    agent = std::make_unique<PTAgent>(&bus, &registry, ProcessInfo{"bench", "proc", 1}, shards);
    bus.Publish(BusMessage{kCommandTopic, EncodeWeave(Command())});
  }
};

std::vector<Tuple> MakeRows() {
  std::vector<Tuple> rows;
  for (int64_t v = 0; v < 8; ++v) {
    rows.push_back(Tuple{{"x.v", Value(v)}});
  }
  return rows;
}

// Aggregate throughput (tuples/s) of `threads` emitters, best of `passes`.
double MeasureThroughput(PTAgent* agent, int threads, int per_thread, int passes = 3) {
  const std::vector<Tuple> rows = MakeRows();
  double best = 0.0;
  for (int p = 0; p < passes; ++p) {
    std::atomic<bool> go{false};
    std::atomic<int> ready{0};
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < per_thread; ++i) {
          agent->EmitTuple(kQuery, rows[i & 7]);
        }
      });
    }
    while (ready.load() != threads) {
    }
    int64_t start = NowNanos();
    go.store(true, std::memory_order_release);
    for (auto& w : workers) {
      w.join();
    }
    int64_t elapsed = NowNanos() - start;
    double rate = static_cast<double>(threads) * per_thread * 1e9 / elapsed;
    if (rate > best) {
      best = rate;
    }
    agent->Flush(p + 1);  // Reset interval state between passes.
  }
  return best;
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  using namespace pivot;

  double max_st_ratio = 0.0;    // 0 = report only.
  double min_mt_speedup = 0.0;  // 0 = report only.
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-st-ratio=", 15) == 0) {
      max_st_ratio = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--min-mt-speedup=", 17) == 0) {
      min_mt_speedup = std::atof(argv[i] + 17);
    }
  }

  const unsigned hw = std::thread::hardware_concurrency();
  BenchJson json("emit_mt");
  printf("Emission-path benchmark: sharded vs global-lock intake (hw threads: %u)\n\n", hw);

  Harness sharded(8);
  Harness single(1);
  printf("shard counts: sharded=%zu baseline=%zu\n\n", sharded.agent->shard_count(),
         single.agent->shard_count());

  // ---- 1. Single-thread ns/tuple ----
  double st_single;
  double st_sharded;
  {
    constexpr int kIters = 100'000;
    const std::vector<Tuple> rows = MakeRows();
    int i = 0;
    st_single = MeasureNs([&] { single.agent->EmitTuple(kQuery, rows[i++ & 7]); }, kIters);
    single.agent->Flush(1'000);
    i = 0;
    st_sharded = MeasureNs([&] { sharded.agent->EmitTuple(kQuery, rows[i++ & 7]); }, kIters);
    sharded.agent->Flush(1'000);
  }
  double st_ratio = st_sharded / st_single;
  printf("Single-thread EmitTuple:\n");
  printf("  global-lock (1 shard) %7.1f ns/tuple\n", st_single);
  printf("  sharded (8 shards)    %7.1f ns/tuple   (ratio %.2fx)\n\n", st_sharded, st_ratio);
  json.Report("st_ns_global_lock", st_single, "ns");
  json.Report("st_ns_sharded", st_sharded, "ns");
  json.Report("st_ratio", st_ratio, "x");

  // ---- 2. Multi-thread scaling ----
  constexpr int kPerThread = 200'000;
  double mt_single_8t = 0.0;
  double mt_sharded_8t = 0.0;
  printf("Aggregate intake throughput (M tuples/s):\n");
  printf("  threads   global-lock   sharded\n");
  for (int threads : {1, 2, 4, 8}) {
    double a = MeasureThroughput(single.agent.get(), threads, kPerThread);
    double b = MeasureThroughput(sharded.agent.get(), threads, kPerThread);
    printf("  %7d   %11.2f   %7.2f\n", threads, a / 1e6, b / 1e6);
    json.Report("mt_" + std::to_string(threads) + "t_global_lock", a / 1e6, "Mtuples/s");
    json.Report("mt_" + std::to_string(threads) + "t_sharded", b / 1e6, "Mtuples/s");
    if (threads == 8) {
      mt_single_8t = a;
      mt_sharded_8t = b;
    }
  }
  double mt_speedup = mt_sharded_8t / mt_single_8t;
  printf("\n8-thread sharded speedup over global lock: %.2fx\n", mt_speedup);
  printf("shard-lock collisions observed: %llu (sharded) %llu (global)\n",
         static_cast<unsigned long long>(sharded.agent->shard_contentions()),
         static_cast<unsigned long long>(single.agent->shard_contentions()));
  json.Report("mt_speedup_8t", mt_speedup, "x");
  json.Report("shard_contentions", static_cast<double>(sharded.agent->shard_contentions()),
              "count");

  // ---- Gates ----
  bool fail = false;
  if (max_st_ratio > 0.0) {
    if (st_ratio > max_st_ratio) {
      printf("\nFAIL: sharded single-thread intake %.2fx the global-lock cost (max %.2fx)\n",
             st_ratio, max_st_ratio);
      fail = true;
    } else {
      printf("\nPASS: sharded single-thread intake %.2fx the global-lock cost (<= %.2fx)\n",
             st_ratio, max_st_ratio);
    }
  }
  if (min_mt_speedup > 0.0) {
    if (hw < 4) {
      // One core interleaves all "concurrent" emitters, so the global lock is
      // never actually contended and sharding has nothing to win. The ratio is
      // unmeasurable here, not violated: skip rather than fail, and let the
      // multi-core CI runner enforce it.
      printf("SKIP: multi-thread scaling gate needs >= 4 hardware threads (have %u)\n", hw);
      json.Report("mt_gate_skipped", 1.0, "bool");
    } else if (mt_speedup < min_mt_speedup) {
      printf("FAIL: sharded intake only %.2fx global lock at 8 threads (need >= %.2fx)\n",
             mt_speedup, min_mt_speedup);
      fail = true;
    } else {
      printf("PASS: sharded intake %.2fx global lock at 8 threads (>= %.2fx required)\n",
             mt_speedup, min_mt_speedup);
    }
  }

  json.Write();
  return fail ? 1 : 0;
}
