#include "src/query/ast.h"

#include <cstdio>

namespace pivot {

namespace {

std::string SourceToString(const SourceRef& s) {
  std::string inner;
  if (s.is_subquery()) {
    inner = s.subquery;
  } else {
    for (size_t i = 0; i < s.tracepoints.size(); ++i) {
      if (i != 0) {
        inner += ", ";
      }
      inner += s.tracepoints[i];
    }
  }
  switch (s.temporal) {
    case TemporalFilter::kAll:
      break;
    case TemporalFilter::kFirst:
      inner = "First(" + inner + ")";
      break;
    case TemporalFilter::kFirstN:
      inner = "FirstN(" + std::to_string(s.n) + ", " + inner + ")";
      break;
    case TemporalFilter::kMostRecent:
      inner = "MostRecent(" + inner + ")";
      break;
    case TemporalFilter::kMostRecentN:
      inner = "MostRecentN(" + std::to_string(s.n) + ", " + inner + ")";
      break;
  }
  if (s.sample_rate < 1.0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", s.sample_rate);
    inner = "Sample(" + std::string(buf) + ", " + inner + ")";
  }
  return inner;
}

}  // namespace

std::string QueryToString(const Query& q) {
  std::string out = "From " + q.from.alias + " In " + SourceToString(q.from);
  for (const auto& j : q.joins) {
    out += "\nJoin " + j.source.alias + " In " + SourceToString(j.source) + " On " + j.left +
           " -> " + j.right;
  }
  for (const auto& w : q.where) {
    out += "\nWhere " + w->ToString();
  }
  if (!q.group_by.empty()) {
    out += "\nGroupBy ";
    for (size_t i = 0; i < q.group_by.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      out += q.group_by[i];
    }
  }
  if (!q.select.empty()) {
    out += "\nSelect ";
    for (size_t i = 0; i < q.select.size(); ++i) {
      if (i != 0) {
        out += ", ";
      }
      const SelectItem& item = q.select[i];
      if (item.is_aggregate) {
        if (item.fn == AggFn::kCount && item.expr == nullptr) {
          out += "COUNT";
        } else {
          out += std::string(AggFnName(item.fn)) + "(" + item.expr->ToString() + ")";
        }
      } else {
        out += item.expr->ToString();
      }
      if (item.has_explicit_alias) {
        out += " As " + item.display;
      }
    }
  }
  return out;
}

}  // namespace pivot
