
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/ast.cc" "src/query/CMakeFiles/pivot_query.dir/ast.cc.o" "gcc" "src/query/CMakeFiles/pivot_query.dir/ast.cc.o.d"
  "/root/repo/src/query/compiler.cc" "src/query/CMakeFiles/pivot_query.dir/compiler.cc.o" "gcc" "src/query/CMakeFiles/pivot_query.dir/compiler.cc.o.d"
  "/root/repo/src/query/flatten.cc" "src/query/CMakeFiles/pivot_query.dir/flatten.cc.o" "gcc" "src/query/CMakeFiles/pivot_query.dir/flatten.cc.o.d"
  "/root/repo/src/query/lexer.cc" "src/query/CMakeFiles/pivot_query.dir/lexer.cc.o" "gcc" "src/query/CMakeFiles/pivot_query.dir/lexer.cc.o.d"
  "/root/repo/src/query/naive_eval.cc" "src/query/CMakeFiles/pivot_query.dir/naive_eval.cc.o" "gcc" "src/query/CMakeFiles/pivot_query.dir/naive_eval.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/pivot_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/pivot_query.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pivot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pivot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
