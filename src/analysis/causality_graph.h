// The system propagation graph: a static model of causal boundaries.
//
// Pivot Tracing's happened-before join (`->`) only produces tuples if baggage
// actually flows from the packing tracepoint to the unpacking one. The paper
// hit this the hard way: §6 "manually extended the protocol definitions" is
// precisely the moment a boundary silently dropped baggage. This header
// models the deployment so the analysis layer can reason about it *before*
// anything weaves: nodes are components (NN, DN, RS, client, NM, MRTask, …),
// edges are declared causal boundaries (RPC, queue hand-off, continuation
// spawn), each flagged with whether it forwards baggage.
//
// Two kinds of facts live here:
//   - Declarations: the static model. Deployment constructors and protocol
//     clients declare every boundary they implement, once.
//   - Observations: the ground truth. Instrumented boundaries (SimRpcCall,
//     queue pops, continuation spawns) record the edges they actually cross
//     at runtime, so the audit pass can flag boundaries the model missed
//     (PT304 "unknown boundary").
//
// Ownership: one registry per SimWorld (not a process-global singleton —
// unrelated tests in one binary must not pollute each other's audit). The
// linter receives it through LintOptions::propagation; a null registry
// disables every reachability check, conservatively.

#ifndef PIVOT_SRC_ANALYSIS_CAUSALITY_GRAPH_H_
#define PIVOT_SRC_ANALYSIS_CAUSALITY_GRAPH_H_

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace pivot {
namespace analysis {

// A declared causal boundary between two components. `kind` is one of
// "rpc", "rpc-response", "queue", "continuation", "join" — informational
// except that the audit groups by it. `forwards_baggage` is the load-bearing
// bit: reachability for `->` joins only follows forwarding edges.
struct PropagationEdge {
  std::string from;
  std::string to;
  std::string kind;
  std::string label;  // Human-readable boundary name, e.g. "ClientProtocol".
  bool forwards_baggage = true;

  bool operator<(const PropagationEdge& o) const {
    if (from != o.from) return from < o.from;
    if (to != o.to) return to < o.to;
    if (kind != o.kind) return kind < o.kind;
    return label < o.label;
  }
};

// An edge actually crossed at runtime: (from, to, kind).
struct ObservedEdge {
  std::string from;
  std::string to;
  std::string kind;

  bool operator<(const ObservedEdge& o) const {
    if (from != o.from) return from < o.from;
    if (to != o.to) return to < o.to;
    return kind < o.kind;
  }
};

struct ComponentInfo {
  std::string name;
  bool client_entry = false;  // Requests originate here (workload clients).
};

class PropagationRegistry;

// Declares a request/response RPC boundary pair: `from -> to` (kind "rpc")
// and `to -> from` (kind "rpc-response"), both forwarding baggage — the
// simulated RPC layer serializes baggage in both directions (sim_rpc.h), so
// a bag packed at the callee rides the response back to the caller.
void DeclareRpcBoundary(PropagationRegistry* registry, const std::string& from,
                        const std::string& to, const std::string& label);

class PropagationRegistry {
 public:
  PropagationRegistry() = default;
  PropagationRegistry(const PropagationRegistry&) = delete;
  PropagationRegistry& operator=(const PropagationRegistry&) = delete;

  // Declares a component node. Idempotent; `client_entry` is sticky (once a
  // component is an entry point, it stays one).
  void DeclareComponent(const std::string& name, bool client_entry = false);

  // Declares a causal boundary. Idempotent (deduplicated by value); both
  // endpoint components are auto-declared.
  void DeclareEdge(PropagationEdge edge);

  // Records a boundary crossing actually observed at runtime. Cheap after
  // the first call per distinct (from, to, kind).
  void ObserveEdge(const std::string& from, const std::string& to, const std::string& kind);

  // Anchors a tracepoint name to the component whose code it fires in.
  // Empty component is ignored (multi-component tracepoints stay unanchored
  // and are skipped by every reachability check).
  void AnchorTracepoint(const std::string& tracepoint, const std::string& component);

  // Component a tracepoint is anchored to, or "" if unanchored/unknown.
  std::string ComponentOf(const std::string& tracepoint) const;

  // ---- Snapshots (copies; safe to use without holding anything) ----

  std::vector<ComponentInfo> Components() const;
  std::vector<PropagationEdge> Edges() const;
  std::vector<ObservedEdge> Observed() const;
  std::map<std::string, std::string> Anchors() const;

  // True when no boundary has been declared (the model is absent; the
  // reachability passes disable themselves).
  bool empty() const;

  // Human-readable topology report: components, edges (with baggage
  // disposition), tracepoint anchors, and observed-but-undeclared boundaries.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, ComponentInfo> components_;
  std::set<PropagationEdge> edges_;
  std::set<ObservedEdge> observed_;
  std::map<std::string, std::string> anchors_;  // tracepoint -> component.
};

}  // namespace analysis
}  // namespace pivot

#endif  // PIVOT_SRC_ANALYSIS_CAUSALITY_GRAPH_H_
