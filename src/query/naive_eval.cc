#include "src/query/naive_eval.h"

#include <algorithm>
#include <functional>
#include <map>

#include "src/core/aggregation.h"
#include "src/query/compiler.h"
#include "src/query/flatten.h"

namespace pivot {

namespace {

struct NStage {
  SourceRef source;
  std::vector<size_t> succs;           // Stage indices this one happens before.
  std::vector<LetBinding> lets;
};

// One candidate tuple of a stage within a trace.
struct Candidate {
  EventId event;
  Tuple tuple;  // Alias-qualified fields.
};

bool MatchesSource(const SourceRef& src, const std::string& tracepoint) {
  return std::find(src.tracepoints.begin(), src.tracepoints.end(), tracepoint) !=
         src.tracepoints.end();
}

}  // namespace

Result<NaiveResult> EvaluateNaive(const Query& q, const TraceRecorder& recorder,
                                  const QueryRegistry* named_queries) {
  FlatQuery flat;
  PIVOT_RETURN_IF_ERROR(FlattenQuery(q, named_queries, &flat));

  // Sampling is probabilistic at the advice level; there is no deterministic
  // global equivalent to compare against.
  auto check_sampled = [](const SourceRef& src) {
    return src.sample_rate < 1.0
               ? UnimplementedError("naive evaluation of sampled sources: " + src.alias)
               : Status::Ok();
  };
  PIVOT_RETURN_IF_ERROR(check_sampled(flat.from));
  for (const auto& j : flat.joins) {
    PIVOT_RETURN_IF_ERROR(check_sampled(j.source));
  }

  // ---- Stages and topological order (From last). ----
  std::vector<NStage> stages;
  std::map<std::string, size_t> alias_to_stage;
  for (const auto& j : flat.joins) {
    alias_to_stage[j.source.alias] = stages.size();
    stages.push_back(NStage{j.source, {}, {}});
  }
  size_t final_idx = stages.size();
  alias_to_stage[flat.from.alias] = final_idx;
  stages.push_back(NStage{flat.from, {}, {}});

  std::vector<std::pair<size_t, size_t>> edges;  // (earlier, later)
  for (const auto& j : flat.joins) {
    auto li = alias_to_stage.find(j.left);
    auto ri = alias_to_stage.find(j.right);
    if (li == alias_to_stage.end() || ri == alias_to_stage.end()) {
      return InvalidArgumentError("On clause references unknown alias");
    }
    edges.emplace_back(li->second, ri->second);
    stages[li->second].succs.push_back(ri->second);
  }
  for (const auto& let : flat.lets) {
    auto it = alias_to_stage.find(let.alias);
    if (it == alias_to_stage.end()) {
      return InternalError("let bound to unknown alias: " + let.alias);
    }
    stages[it->second].lets.push_back(let);
  }

  std::vector<size_t> topo;
  {
    std::vector<size_t> indeg(stages.size(), 0);
    for (const auto& [a, b] : edges) {
      (void)a;
      ++indeg[b];
    }
    std::vector<size_t> ready;
    for (size_t i = 0; i < stages.size(); ++i) {
      if (indeg[i] == 0) {
        ready.push_back(i);
      }
    }
    while (!ready.empty()) {
      size_t i = ready.back();
      ready.pop_back();
      topo.push_back(i);
      for (size_t s : stages[i].succs) {
        if (--indeg[s] == 0) {
          ready.push_back(s);
        }
      }
    }
    if (topo.size() != stages.size()) {
      return InvalidArgumentError("happened-before constraints form a cycle");
    }
    topo.erase(std::remove(topo.begin(), topo.end(), final_idx), topo.end());
    topo.push_back(final_idx);
  }
  std::vector<size_t> reverse_topo(topo.rbegin(), topo.rend());

  NaiveResult result;

  // ---- Per-trace candidate extraction. ----
  // candidates[trace][stage] in chronological (event id) order.
  std::map<uint64_t, std::vector<std::vector<Candidate>>> candidates;
  for (const auto& ev : recorder.observed()) {
    for (size_t i = 0; i < stages.size(); ++i) {
      if (!MatchesSource(stages[i].source, ev.tracepoint)) {
        continue;
      }
      auto it = candidates.find(ev.trace_id);
      if (it == candidates.end()) {
        it = candidates.emplace(ev.trace_id, std::vector<std::vector<Candidate>>(stages.size()))
                 .first;
      }
      Tuple qualified;
      for (const auto& f : ev.exports.fields()) {
        qualified.Append(stages[i].source.alias + "." + std::string(f.name()), f.value);
      }
      it->second[i].push_back(Candidate{ev.event, std::move(qualified)});
      ++result.tuples_shipped;
    }
  }

  // ---- Join enumeration per trace. ----
  std::vector<Tuple> joined_rows;
  for (const auto& [trace_id, per_stage] : candidates) {
    const TraceGraph& graph = recorder.graph(trace_id);
    bool any_empty = false;
    for (size_t i = 0; i < stages.size(); ++i) {
      if (per_stage[i].empty()) {
        any_empty = true;
        break;
      }
    }
    if (any_empty) {
      continue;
    }

    // assignment[stage] = index into per_stage[stage], or SIZE_MAX.
    std::vector<size_t> assignment(stages.size(), SIZE_MAX);

    std::function<void(size_t)> choose = [&](size_t rpos) {
      if (rpos == reverse_topo.size()) {
        // Complete: concatenate in topo order.
        Tuple row;
        for (size_t idx : topo) {
          row = row.Concat(per_stage[idx][assignment[idx]].tuple);
        }
        joined_rows.push_back(std::move(row));
        return;
      }
      size_t stage_idx = reverse_topo[rpos];
      const NStage& st = stages[stage_idx];
      const std::vector<Candidate>& cands = per_stage[stage_idx];

      // Candidates must happen before every already-assigned successor. All
      // successors are assigned because we process in reverse topo order.
      std::vector<size_t> allowed;
      for (size_t c = 0; c < cands.size(); ++c) {
        bool ok = true;
        for (size_t succ : st.succs) {
          EventId succ_ev = per_stage[succ][assignment[succ]].event;
          if (!graph.HappenedBefore(cands[c].event, succ_ev)) {
            ok = false;
            break;
          }
        }
        if (ok) {
          allowed.push_back(c);
        }
      }

      // Temporal filter relative to each successor: FIRST keeps the earliest
      // N preceding tuples, MOSTRECENT the latest N. `allowed` is already in
      // event order (candidates are chronological), so slicing suffices.
      if (stage_idx != final_idx) {
        switch (st.source.temporal) {
          case TemporalFilter::kAll:
            break;
          case TemporalFilter::kFirst:
          case TemporalFilter::kFirstN: {
            size_t n = st.source.temporal == TemporalFilter::kFirst ? 1 : st.source.n;
            if (allowed.size() > n) {
              allowed.resize(n);
            }
            break;
          }
          case TemporalFilter::kMostRecent:
          case TemporalFilter::kMostRecentN: {
            size_t n = st.source.temporal == TemporalFilter::kMostRecent ? 1 : st.source.n;
            if (allowed.size() > n) {
              allowed.erase(allowed.begin(), allowed.end() - static_cast<ptrdiff_t>(n));
            }
            break;
          }
        }
      }

      for (size_t c : allowed) {
        assignment[stage_idx] = c;
        choose(rpos + 1);
      }
      assignment[stage_idx] = SIZE_MAX;
    };
    choose(0);
  }

  // ---- Lets, Where, Select. ----
  // Lets evaluated in stage topo order then binding order (matches inline
  // evaluation, where a stage's lets run before downstream stages see them).
  std::vector<const LetBinding*> ordered_lets;
  for (size_t idx : topo) {
    for (const auto& let : stages[idx].lets) {
      ordered_lets.push_back(&let);
    }
  }
  for (auto& row : joined_rows) {
    for (const LetBinding* let : ordered_lets) {
      row.Append(let->name, let->expr->Eval(row));
    }
  }

  std::vector<Tuple> filtered;
  filtered.reserve(joined_rows.size());
  for (auto& row : joined_rows) {
    bool pass = true;
    for (const auto& w : flat.where) {
      if (!w->Eval(row).AsBool()) {
        pass = false;
        break;
      }
    }
    if (pass) {
      filtered.push_back(std::move(row));
    }
  }
  result.join_rows = filtered.size();

  const bool aggregated = !flat.group_by.empty() || [&] {
    for (const auto& s : flat.select) {
      if (s.is_aggregate) {
        return true;
      }
    }
    return false;
  }();

  if (!aggregated) {
    // Streaming: project per Select (everything when no Select given).
    for (auto& row : filtered) {
      if (flat.select.empty()) {
        result.rows.push_back(std::move(row));
        continue;
      }
      Tuple out;
      for (const auto& s : flat.select) {
        std::string name = s.expr->op() == ExprOp::kField && !s.has_explicit_alias
                               ? s.expr->field_name()
                               : s.display;
        out.Append(name, s.expr->Eval(row));
      }
      result.rows.push_back(std::move(out));
    }
    return result;
  }

  // Grouped aggregation, mirroring the compiled plan's agent-side shape.
  std::vector<AggSpec> specs;
  int temp_counter = 0;
  std::vector<std::pair<std::string, Expr::Ptr>> agg_exprs;  // Computed inputs.
  for (const auto& s : flat.select) {
    if (!s.is_aggregate) {
      continue;
    }
    if (s.fn == AggFn::kCount && s.expr == nullptr) {
      specs.push_back(AggSpec{AggFn::kCount, "", s.display, false});
    } else if (s.expr->op() == ExprOp::kField) {
      specs.push_back(AggSpec{s.fn, s.expr->field_name(), s.display, false});
    } else {
      std::string name = "$naive" + std::to_string(temp_counter++);
      agg_exprs.emplace_back(name, s.expr);
      specs.push_back(AggSpec{s.fn, name, s.display, false});
    }
  }
  Aggregator agg(flat.group_by, specs);
  for (auto& row : filtered) {
    for (const auto& [name, expr] : agg_exprs) {
      row.Append(name, expr->Eval(row));
    }
    agg.AddInput(row);
  }
  result.rows = agg.Finalize();
  return result;
}

}  // namespace pivot
