// Tokenizer for the Pivot Tracing query language.
//
// Keywords are case-insensitive (the paper renders them in mixed case: From,
// GroupBy, SUM, ...). Identifiers may be dotted ("DN.DataTransferProtocol",
// "st.host"); the lexer emits the pieces and the parser assembles qualified
// names, because whether a dotted name is a tracepoint or alias.field is
// contextual.

#ifndef PIVOT_SRC_QUERY_LEXER_H_
#define PIVOT_SRC_QUERY_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace pivot {

enum class TokenKind : uint8_t {
  kIdent,      // foo (keywords are classified by the parser)
  kInt,        // 42
  kDouble,     // 4.5
  kString,     // "..." or '...'
  kComma,
  kDot,
  kLParen,
  kRParen,
  kArrow,      // ->
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,         // ==
  kNe,         // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,        // &&
  kOr,         // ||
  kBang,       // !
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;     // Identifier / string contents.
  int64_t int_value = 0;
  double double_value = 0;
  size_t offset = 0;    // Byte offset in the query text (error messages).
};

// Tokenizes `text`. On error returns the offending position in the message.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace pivot

#endif  // PIVOT_SRC_QUERY_LEXER_H_
