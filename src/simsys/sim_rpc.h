// Simulated RPC with baggage on the wire.
//
// This is where the paper's "we manually extended the protocol definitions of
// the systems" (§6) materializes: every RPC serializes the caller's baggage,
// the bytes ride the request across both NICs (so baggage size costs real
// simulated bandwidth), the server deserializes it into a server-side
// execution context, and the response carries the (possibly grown) baggage
// back to the caller. Intra-host calls skip the network but still exercise
// the serialize/deserialize path, matching "serialization costs are only
// incurred ... at network or application boundaries".

#ifndef PIVOT_SRC_SIMSYS_SIM_RPC_H_
#define PIVOT_SRC_SIMSYS_SIM_RPC_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "src/simsys/sim_world.h"

namespace pivot {

// Server-side completion: the handler calls this with the (updated) context
// and the application-level response size.
using RpcRespond = std::function<void(CtxPtr, uint64_t response_bytes)>;

// Server-side handler: receives the request's context, must eventually call
// the RpcRespond exactly once (possibly after further async simulated work).
using RpcHandler = std::function<void(CtxPtr, RpcRespond)>;

// Client-side completion: receives the context carrying the callee's baggage.
using RpcDone = std::function<void(CtxPtr)>;

struct RpcStats {
  // Cumulative across all calls made through SimRpcCall. Relaxed atomics:
  // handlers on concurrent test threads mutate these, and a bare uint64_t
  // is a data race under PIVOT_SANITIZE=thread. Counters only — no ordering
  // is implied and none is needed.
  static std::atomic<uint64_t> total_calls;
  static std::atomic<uint64_t> total_baggage_bytes;
  static void Reset();
};

// Issues an RPC from `client` to `server`:
//   1. serializes ctx's baggage (bytes added to the request payload),
//   2. models request transfer over client nic_out then server nic_in,
//   3. runs `handler` with a server-side context (handlers honour their
//      process's GC-pause window themselves, so they can export it),
//   4. models response transfer (with re-serialized baggage) and resumes
//      `done` with a client-side context.
// `request_bytes` / response bytes are application payload sizes.
void SimRpcCall(SimProcess* client, SimProcess* server, CtxPtr ctx, uint64_t request_bytes,
                RpcHandler handler, RpcDone done);

}  // namespace pivot

#endif  // PIVOT_SRC_SIMSYS_SIM_RPC_H_
