# Empty compiler generated dependencies file for bench_tuple_traffic.
# This may be replaced when dependencies are built.
