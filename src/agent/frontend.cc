#include "src/agent/frontend.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <sstream>

#include "src/core/symbol.h"
#include "src/query/parser.h"
#include "src/telemetry/metrics.h"

namespace pivot {

Frontend::Frontend(MessageBus* bus, const TracepointRegistry* schema)
    : bus_(bus), schema_(schema) {
  subscription_ =
      bus_->Subscribe(kReportTopic, [this](const BusMessage& msg) { HandleReport(msg); });
}

Frontend::~Frontend() { bus_->Unsubscribe(subscription_); }

void Frontend::set_now_micros(std::function<int64_t()> now_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  now_micros_ = std::move(now_micros);
}

void Frontend::set_propagation(const analysis::PropagationRegistry* propagation) {
  std::lock_guard<std::mutex> lock(mu_);
  propagation_ = propagation;
}

const analysis::PropagationRegistry* Frontend::propagation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return propagation_;
}

std::map<BagKey, uint64_t> Frontend::InstalledBagsLocked() const {
  std::map<BagKey, uint64_t> bags;
  for (const auto& [id, q] : queries_) {
    if (!q.active) {
      continue;
    }
    for (const auto& [tp, adv] : q.compiled.advice) {
      for (const Advice::Op& op : adv->ops()) {
        if (op.kind == Advice::OpKind::kPack) {
          bags.emplace(op.bag, id);
        }
      }
    }
  }
  return bags;
}

int64_t Frontend::NowMicros() const {
  // Callers hold mu_.
  if (now_micros_) {
    return now_micros_();
  }
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

Status Frontend::RegisterNamedQuery(const std::string& name, std::string_view text) {
  Result<Query> q = ParseQuery(text);
  if (!q.ok()) {
    return q.status();
  }
  return named_queries_.Register(name, std::move(q).value());
}

Result<uint64_t> Frontend::Install(std::string_view text) {
  return Install(text, QueryCompiler::Options{});
}

Result<uint64_t> Frontend::Install(std::string_view text, const QueryCompiler::Options& options) {
  InstallOptions install_options;
  install_options.compiler = options;
  // Compiling without projection pushdown deliberately produces fat packs;
  // don't lint them as dead columns.
  install_options.lint_projection = options.push_projection;
  return Install(text, install_options);
}

Result<uint64_t> Frontend::Install(std::string_view text, const InstallOptions& options) {
  Result<Query> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  QueryCompiler compiler(schema_, &named_queries_, options.compiler);

  uint64_t query_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    query_id = next_query_id_++;
  }
  Result<CompiledQuery> compiled = compiler.Compile(parsed.value(), query_id);
  if (!compiled.ok()) {
    return compiled.status();
  }
  return InstallCompiled(std::move(compiled).value(), options);
}

Result<analysis::QueryLintResult> Frontend::Lint(std::string_view text) const {
  return Lint(text, QueryCompiler::Options{});
}

Result<analysis::QueryLintResult> Frontend::Lint(std::string_view text,
                                                 const QueryCompiler::Options& options) const {
  Result<Query> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  // Compile with the self-verification gate off: the point of Lint is the
  // full structured report, errors included.
  QueryCompiler::Options compile_options = options;
  compile_options.verify = false;
  QueryCompiler compiler(schema_, &named_queries_, compile_options);

  uint64_t prospective_id;
  std::map<BagKey, uint64_t> installed;
  const analysis::PropagationRegistry* propagation = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prospective_id = next_query_id_;  // Peek only: nothing is installed.
    installed = InstalledBagsLocked();
    propagation = propagation_;
  }
  Result<CompiledQuery> compiled = compiler.Compile(parsed.value(), prospective_id);
  if (!compiled.ok()) {
    return compiled.status();
  }
  analysis::LintOptions lint_options;
  lint_options.schema = schema_;
  lint_options.assume_projection_pushdown = options.push_projection;
  lint_options.installed_bags = &installed;
  lint_options.propagation = propagation;
  lint_options.baggage_budget = options.baggage_budget;
  return LintCompiledQuery(*compiled, lint_options);
}

Result<uint64_t> Frontend::InstallExplain(std::string_view text) {
  Result<Query> parsed = ParseQuery(text);
  if (!parsed.ok()) {
    return parsed.status();
  }
  QueryCompiler compiler(schema_, &named_queries_);
  uint64_t real_id;
  uint64_t shadow_id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    real_id = next_query_id_++;
    shadow_id = next_query_id_++;
  }
  Result<CompiledQuery> compiled = compiler.Compile(parsed.value(), real_id);
  if (!compiled.ok()) {
    return compiled.status();
  }
  // The counting shadow keeps the original packs but consumes only "$stage",
  // so skip the dead-packed-column heuristic.
  InstallOptions options;
  options.lint_projection = false;
  return InstallCompiled(MakeCountingQuery(*compiled, shadow_id), options);
}

Result<uint64_t> Frontend::InstallCompiled(CompiledQuery compiled) {
  return InstallCompiled(std::move(compiled), InstallOptions{});
}

Result<uint64_t> Frontend::InstallCompiled(CompiledQuery compiled, const InstallOptions& options) {
  // Take over the compiled query's id if it was minted by us; otherwise mint
  // a fresh one and require the caller to have used non-colliding bag keys.
  uint64_t query_id = compiled.query_id;
  std::map<BagKey, uint64_t> installed;
  const analysis::PropagationRegistry* propagation = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (query_id == 0 || queries_.count(query_id) != 0) {
      query_id = next_query_id_++;
      compiled.query_id = query_id;
    }
    installed = InstalledBagsLocked();
    propagation = propagation_;
  }

  // Install-time gate (second verification boundary): errors always reject,
  // warnings reject unless forced, infos never block.
  {
    analysis::LintOptions lint_options;
    lint_options.schema = schema_;
    lint_options.assume_projection_pushdown = options.lint_projection;
    lint_options.installed_bags = &installed;
    lint_options.propagation = propagation;
    lint_options.baggage_budget = options.baggage_budget;
    analysis::QueryLintResult lint = LintCompiledQuery(compiled, lint_options);
    if (lint.report.has_errors() || (lint.report.has_warnings() && !options.force)) {
      std::string message = "query rejected by static analysis:\n" + lint.report.ToString();
      if (!lint.report.has_errors()) {
        message += "\n(warnings only: install with force to override)";
      }
      return InvalidArgumentError(std::move(message));
    }
  }

  WeaveCommand cmd;
  cmd.query_id = query_id;
  cmd.advice = compiled.advice;
  cmd.plan.aggregated = compiled.aggregated;
  cmd.plan.group_fields = compiled.group_fields;
  cmd.plan.aggs = compiled.aggs;
  cmd.plan.output_columns = compiled.output_columns;

  {
    std::lock_guard<std::mutex> lock(mu_);
    QueryResults results;
    results.compiled = std::move(compiled);
    results.installed_micros = NowMicros();
    // The frontend's cumulative/interval aggregators combine *state tuples*
    // from agents, so every spec switches to the combiner path.
    std::vector<AggSpec> combine_specs = cmd.plan.aggs;
    for (auto& spec : combine_specs) {
      spec.input = spec.output;
      spec.from_state = true;
    }
    results.total = Aggregator(cmd.plan.group_fields, combine_specs);
    queries_.emplace(query_id, std::move(results));
  }

  bus_->Publish(BusMessage{kCommandTopic, EncodeWeave(cmd)});
  return query_id;
}

Status Frontend::Uninstall(uint64_t query_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(query_id);
    if (it == queries_.end()) {
      return NotFoundError("unknown query: " + std::to_string(query_id));
    }
    it->second.active = false;
    it->second.uninstalled_micros = NowMicros();
  }
  bus_->Publish(BusMessage{kCommandTopic, EncodeUnweave(query_id)});
  return Status::Ok();
}

const CompiledQuery* Frontend::compiled(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  return it == queries_.end() ? nullptr : &it->second.compiled;
}

void Frontend::HandleReport(const BusMessage& msg) {
  Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
  if (!decoded.ok()) {
    return;
  }
  if (decoded->type == ControlMessageType::kHello) {
    // A new agent came up: replay the weave commands of every active query so
    // late-starting processes participate in standing queries. Duplicate
    // weaves are ignored by agents that already have them.
    std::vector<std::vector<uint8_t>> replays;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [id, q] : queries_) {
        if (!q.active) {
          continue;
        }
        WeaveCommand cmd;
        cmd.query_id = id;
        cmd.advice = q.compiled.advice;
        cmd.plan.aggregated = q.compiled.aggregated;
        cmd.plan.group_fields = q.compiled.group_fields;
        cmd.plan.aggs = q.compiled.aggs;
        cmd.plan.output_columns = q.compiled.output_columns;
        replays.push_back(EncodeWeave(cmd));
      }
    }
    for (auto& payload : replays) {
      bus_->Publish(BusMessage{kCommandTopic, std::move(payload)});
    }
    return;
  }
  if (decoded->type == ControlMessageType::kWeaveAck) {
    const WeaveAck& ack = decoded->weave_ack;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(ack.query_id);
    if (it == queries_.end()) {
      return;
    }
    QueryResults& q = it->second;
    if (q.first_ack_micros < 0) {
      q.first_ack_micros = ack.timestamp_micros;
    }
    q.agents[ack.host + "/" + ack.process_name].ack_micros = ack.timestamp_micros;
    return;
  }
  if (decoded->type == ControlMessageType::kStats) {
    HandleStats(decoded->stats);
    return;
  }
  if (decoded->type == ControlMessageType::kBatch) {
    // One agent flush, one frame: unpack into the single-report paths.
    for (const AgentReport& report : decoded->batch.reports) {
      HandleSingleReport(report);
    }
    for (const AgentStats& stats : decoded->batch.heartbeats) {
      HandleStats(stats);
    }
    return;
  }
  if (decoded->type != ControlMessageType::kReport) {
    return;
  }
  HandleSingleReport(decoded->report);
}

void Frontend::HandleStats(const AgentStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(stats.query_id);
  if (it == queries_.end()) {
    return;
  }
  AgentQueryView& view = it->second.agents[stats.host + "/" + stats.process_name];
  view.last_heartbeat_micros = stats.timestamp_micros;
  view.reports_suppressed = stats.reports_suppressed;
}

void Frontend::HandleSingleReport(const AgentReport& report) {
  ResultListener listener;
  std::vector<Tuple> listener_rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queries_.find(report.query_id);
    if (it == queries_.end() || !it->second.active) {
      return;
    }
    QueryResults& q = it->second;
    ++reports_received_;
    tuples_received_ += report.tuples.size();
    if (!report.tuples.empty()) {
      if (q.first_tuple_micros < 0) {
        q.first_tuple_micros = report.timestamp_micros;
      }
      q.last_report_micros = std::max(q.last_report_micros, report.timestamp_micros);
    }
    AgentQueryView& view = q.agents[report.host + "/" + report.process_name];
    view.last_report_micros = std::max(view.last_report_micros, report.timestamp_micros);
    ++view.reports;
    view.tuples += report.tuples.size();

    if (q.compiled.aggregated) {
      auto [interval_it, inserted] = q.interval_aggs.try_emplace(
          report.timestamp_micros, q.total.group_fields(), q.total.specs());
      for (const auto& t : report.tuples) {
        q.total.AddState(t);
        interval_it->second.AddState(t);
      }
      if (q.listener) {
        // Finalize just this report's contribution for the listener.
        Aggregator just_this(q.total.group_fields(), q.total.specs());
        for (const auto& t : report.tuples) {
          just_this.AddState(t);
        }
        listener_rows = just_this.Finalize();
      }
    } else {
      auto& rows = q.interval_rows[report.timestamp_micros];
      for (const auto& t : report.tuples) {
        q.total_rows.push_back(t);
        rows.push_back(t);
      }
      listener_rows = report.tuples;
    }
    listener = q.listener;
  }
  // Invoke outside the lock so listeners may call back into the frontend.
  if (listener) {
    listener(report.timestamp_micros, listener_rows);
  }
}

Status Frontend::SetResultListener(uint64_t query_id, ResultListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return NotFoundError("unknown query: " + std::to_string(query_id));
  }
  it->second.listener = std::move(listener);
  return Status::Ok();
}

std::vector<Tuple> Frontend::Results(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return {};
  }
  if (it->second.compiled.aggregated) {
    return it->second.total.Finalize();
  }
  return it->second.total_rows;
}

std::map<int64_t, std::vector<Tuple>> Frontend::Series(uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = queries_.find(query_id);
  if (it == queries_.end()) {
    return {};
  }
  if (it->second.compiled.aggregated) {
    std::map<int64_t, std::vector<Tuple>> out;
    for (const auto& [ts, agg] : it->second.interval_aggs) {
      out.emplace(ts, agg.Finalize());
    }
    return out;
  }
  return it->second.interval_rows;
}

void Frontend::TrimSeriesBefore(uint64_t query_id, int64_t before_micros) {
  std::lock_guard<std::mutex> lock(mu_);
  auto trim = [before_micros](QueryResults& q) {
    q.interval_aggs.erase(q.interval_aggs.begin(),
                          q.interval_aggs.lower_bound(before_micros));
    q.interval_rows.erase(q.interval_rows.begin(),
                          q.interval_rows.lower_bound(before_micros));
  };
  if (query_id == 0) {
    for (auto& [id, q] : queries_) {
      trim(q);
    }
    return;
  }
  auto it = queries_.find(query_id);
  if (it != queries_.end()) {
    trim(it->second);
  }
}

uint64_t Frontend::reports_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_received_;
}

uint64_t Frontend::tuples_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tuples_received_;
}

std::vector<Frontend::QueryStatus> Frontend::QueryStatuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<QueryStatus> out;
  out.reserve(queries_.size());
  for (const auto& [id, q] : queries_) {
    QueryStatus s;
    s.query_id = id;
    s.active = q.active;
    s.aggregated = q.compiled.aggregated;
    std::set<std::string> tps;
    for (const auto& [tp, adv] : q.compiled.advice) {
      tps.insert(tp);
    }
    s.tracepoints.assign(tps.begin(), tps.end());
    s.installed_micros = q.installed_micros;
    s.first_ack_micros = q.first_ack_micros;
    s.first_tuple_micros = q.first_tuple_micros;
    s.last_report_micros = q.last_report_micros;
    s.uninstalled_micros = q.uninstalled_micros;
    for (const auto& [key, view] : q.agents) {
      s.reports += view.reports;
      s.tuples += view.tuples;
    }
    s.agents = q.agents;
    out.push_back(std::move(s));
  }
  return out;
}

namespace {

// "quiet" = no data but the agent proved liveness (ack/heartbeat/report);
// "no signal" = the frontend has heard nothing for this query from anybody.
std::string AgentHealth(const AgentQueryView& v) {
  if (v.last_report_micros >= 0 &&
      v.last_report_micros >= v.last_heartbeat_micros) {
    return "reporting";
  }
  if (v.last_heartbeat_micros >= 0) {
    return "quiet (heartbeating)";
  }
  if (v.ack_micros >= 0) {
    return "woven, no data yet";
  }
  return "no signal";
}

void AppendMicros(std::ostringstream* os, const char* label, int64_t micros) {
  *os << label << "=";
  if (micros < 0) {
    *os << "never";
  } else {
    *os << micros;
  }
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string Frontend::StatusReport() const {
  std::vector<QueryStatus> statuses = QueryStatuses();
  std::ostringstream os;
  os << "=== Pivot Tracing status ===\n";
  os << "queries: " << statuses.size() << "  reports: " << reports_received()
     << "  tuples: " << tuples_received()
     << "  symbols: " << SymbolTable::Global().size() << "\n";
  os << "emission: shard_contention=" << telemetry::Metrics().GetCounter("agent.emit_shard_contention").value()
     << " group_probes=" << telemetry::Metrics().GetCounter("agg.group_probe_count").value()
     << " batch_reports=" << telemetry::Metrics().GetCounter("bus.batch_reports").value() << "\n";
  for (const auto& s : statuses) {
    os << "\nquery " << s.query_id << " [" << (s.active ? "active" : "uninstalled") << ", "
       << (s.aggregated ? "aggregated" : "streaming") << "]\n";
    os << "  tracepoints:";
    for (const auto& tp : s.tracepoints) {
      os << " " << tp;
    }
    os << "\n  lifecycle: ";
    AppendMicros(&os, "installed", s.installed_micros);
    os << "  ";
    AppendMicros(&os, "first_ack", s.first_ack_micros);
    os << "  ";
    AppendMicros(&os, "first_tuple", s.first_tuple_micros);
    os << "  ";
    AppendMicros(&os, "last_report", s.last_report_micros);
    if (s.uninstalled_micros >= 0) {
      os << "  ";
      AppendMicros(&os, "uninstalled", s.uninstalled_micros);
    }
    os << "\n  totals: reports=" << s.reports << " tuples=" << s.tuples << "\n";
    for (const auto& [agent, view] : s.agents) {
      os << "  agent " << agent << ": " << AgentHealth(view) << "  reports=" << view.reports
         << " tuples=" << view.tuples << " suppressed=" << view.reports_suppressed << "  ";
      AppendMicros(&os, "last_report", view.last_report_micros);
      os << " ";
      AppendMicros(&os, "last_heartbeat", view.last_heartbeat_micros);
      os << "\n";
    }
  }
  os << "\n--- bus topics ---\n";
  for (const auto& t : bus_->TopicSnapshot()) {
    os << t.topic << ": published=" << t.published << " delivered=" << t.delivered
       << " bytes=" << t.bytes << " no_subscriber=" << t.no_subscriber
       << " subscribers=" << t.subscribers << "\n";
  }
  os << "\n--- telemetry ---\n" << telemetry::Metrics().RenderText();
  return os.str();
}

std::string Frontend::StatusReportJson() const {
  std::vector<QueryStatus> statuses = QueryStatuses();
  std::ostringstream os;
  os << "{\"queries\":[";
  bool first_q = true;
  for (const auto& s : statuses) {
    if (!first_q) os << ",";
    first_q = false;
    os << "{\"id\":" << s.query_id << ",\"active\":" << (s.active ? "true" : "false")
       << ",\"aggregated\":" << (s.aggregated ? "true" : "false") << ",\"tracepoints\":[";
    for (size_t i = 0; i < s.tracepoints.size(); ++i) {
      if (i > 0) os << ",";
      os << "\"" << JsonEscape(s.tracepoints[i]) << "\"";
    }
    os << "],\"installed_micros\":" << s.installed_micros
       << ",\"first_ack_micros\":" << s.first_ack_micros
       << ",\"first_tuple_micros\":" << s.first_tuple_micros
       << ",\"last_report_micros\":" << s.last_report_micros
       << ",\"uninstalled_micros\":" << s.uninstalled_micros << ",\"reports\":" << s.reports
       << ",\"tuples\":" << s.tuples << ",\"agents\":{";
    bool first_a = true;
    for (const auto& [agent, view] : s.agents) {
      if (!first_a) os << ",";
      first_a = false;
      os << "\"" << JsonEscape(agent) << "\":{\"health\":\"" << JsonEscape(AgentHealth(view))
         << "\",\"ack_micros\":" << view.ack_micros
         << ",\"last_report_micros\":" << view.last_report_micros
         << ",\"last_heartbeat_micros\":" << view.last_heartbeat_micros
         << ",\"reports\":" << view.reports << ",\"tuples\":" << view.tuples
         << ",\"reports_suppressed\":" << view.reports_suppressed << "}";
    }
    os << "}}";
  }
  os << "],\"bus\":[";
  bool first_t = true;
  for (const auto& t : bus_->TopicSnapshot()) {
    if (!first_t) os << ",";
    first_t = false;
    os << "{\"topic\":\"" << JsonEscape(t.topic) << "\",\"published\":" << t.published
       << ",\"delivered\":" << t.delivered << ",\"bytes\":" << t.bytes
       << ",\"no_subscriber\":" << t.no_subscriber << ",\"subscribers\":" << t.subscribers << "}";
  }
  os << "],\"symbols\":" << SymbolTable::Global().size()
     << ",\"emission\":{\"shard_contention\":"
     << telemetry::Metrics().GetCounter("agent.emit_shard_contention").value()
     << ",\"group_probes\":" << telemetry::Metrics().GetCounter("agg.group_probe_count").value()
     << ",\"batch_reports\":" << telemetry::Metrics().GetCounter("bus.batch_reports").value()
     << "},\"telemetry\":" << telemetry::Metrics().RenderJson() << "}";
  return os.str();
}

}  // namespace pivot
