#include <gtest/gtest.h>

#include "src/agent/protocol.h"
#include "src/common/rand.h"

namespace pivot {
namespace {

TEST(ProtocolTest, WeaveRoundTrip) {
  WeaveCommand cmd;
  cmd.query_id = 42;
  cmd.advice.emplace_back("ClientProtocols", AdviceBuilder()
                                                 .Observe({{"procName", "cl.procName"}})
                                                 .Pack(100, BagSpec::First(1), {"cl.procName"})
                                                 .Build());
  cmd.advice.emplace_back(
      "DataNodeMetrics.incrBytesRead",
      AdviceBuilder().Observe({{"delta", "incr.delta"}}).Unpack(100).Emit(42, {}).Build());
  cmd.plan.aggregated = true;
  cmd.plan.group_fields = {"cl.procName"};
  cmd.plan.aggs = {{AggFn::kSum, "incr.delta", "SUM(incr.delta)", false}};
  cmd.plan.output_columns = {"cl.procName", "SUM(incr.delta)"};

  Result<ControlMessage> decoded = DecodeControlMessage(EncodeWeave(cmd));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->type, ControlMessageType::kWeave);
  EXPECT_EQ(decoded->weave.query_id, 42u);
  ASSERT_EQ(decoded->weave.advice.size(), 2u);
  EXPECT_EQ(decoded->weave.advice[0].first, "ClientProtocols");
  EXPECT_EQ(decoded->weave.advice[0].second->ToString(), cmd.advice[0].second->ToString());
  EXPECT_TRUE(decoded->weave.plan.aggregated);
  EXPECT_EQ(decoded->weave.plan.aggs.size(), 1u);
  EXPECT_EQ(decoded->weave.plan.output_columns,
            (std::vector<std::string>{"cl.procName", "SUM(incr.delta)"}));
}

TEST(ProtocolTest, UnweaveRoundTrip) {
  Result<ControlMessage> decoded = DecodeControlMessage(EncodeUnweave(17));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, ControlMessageType::kUnweave);
  EXPECT_EQ(decoded->unweave_query_id, 17u);
}

TEST(ProtocolTest, ReportRoundTrip) {
  AgentReport report;
  report.query_id = 7;
  report.host = "C";
  report.process_name = "DataNode";
  report.timestamp_micros = 3'000'000;
  report.aggregated = true;
  report.tuples.push_back(Tuple{{"incr.host", Value("C")}, {"SUM(incr.delta)", Value(int64_t{12345})}});

  Result<ControlMessage> decoded = DecodeControlMessage(EncodeReport(report));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->type, ControlMessageType::kReport);
  EXPECT_EQ(decoded->report.query_id, 7u);
  EXPECT_EQ(decoded->report.host, "C");
  EXPECT_EQ(decoded->report.timestamp_micros, 3'000'000);
  ASSERT_EQ(decoded->report.tuples.size(), 1u);
  EXPECT_EQ(decoded->report.tuples[0].Get("SUM(incr.delta)").int_value(), 12345);
}

TEST(ProtocolTest, EmptyPayloadRejected) {
  EXPECT_FALSE(DecodeControlMessage({}).ok());
}

TEST(ProtocolTest, UnknownTypeRejected) {
  EXPECT_FALSE(DecodeControlMessage({99}).ok());
}

TEST(ProtocolTest, FuzzDecodeNeverCrashes) {
  Rng rng(2024);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(64));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    if (!junk.empty()) {
      junk[0] = static_cast<uint8_t>(1 + rng.NextBelow(3));  // Valid type byte.
    }
    DecodeControlMessage(junk);  // Must not crash.
  }
}

}  // namespace
}  // namespace pivot
