#include "src/analysis/advice_verifier.h"

#include <algorithm>
#include <cmath>

namespace pivot {
namespace analysis {

namespace {

// The exports every tracepoint appends at invocation time (tracepoint.cc
// InvokeSlow), with their statically-known types.
struct DefaultExport {
  const char* name;
  StaticType type;
};
constexpr DefaultExport kDefaultExports[] = {
    {"host", StaticType::kString},   {"procname", StaticType::kString},
    {"procid", StaticType::kInt},    {"timestamp", StaticType::kInt},
    {"time", StaticType::kInt},      {"tracepoint", StaticType::kString},
};

const DefaultExport* FindDefaultExport(const std::string& name) {
  for (const auto& d : kDefaultExports) {
    if (name == d.name) {
      return &d;
    }
  }
  return nullptr;
}

StaticType TypeOfValue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return StaticType::kNull;
    case ValueType::kInt:
      return StaticType::kInt;
    case ValueType::kDouble:
      return StaticType::kDouble;
    case ValueType::kString:
      return StaticType::kString;
  }
  return StaticType::kUnknown;
}

bool IsDefiniteNumeric(StaticType t) {
  return t == StaticType::kInt || t == StaticType::kDouble;
}

// Shared state for one expression-tree walk.
struct ExprCheck {
  const std::map<std::string, StaticType>* env;
  // When true, reads of columns absent from `env` are unverifiable (an
  // upstream bag had an open column set) and must not be blamed.
  bool open_env;
  Report* report;
  const std::string* tracepoint;
  int op_index;

  void Add(const char* code, Severity sev, std::string message) const {
    if (report != nullptr) {
      report->Add(code, sev, *tracepoint, op_index, std::move(message));
    }
  }
};

StaticType InferType(const Expr& e, const ExprCheck& c);

// Arithmetic/comparison operand check: definite strings feeding numeric
// operators are the silent string->0/null coercions PT103 exists for.
void CheckNumericOperand(const Expr& operand, StaticType t, const char* op_desc,
                         const ExprCheck& c) {
  if (t == StaticType::kString) {
    c.Add("PT103", Severity::kError,
          "string operand in " + std::string(op_desc) + ": " + operand.ToString() +
              " (strings never coerce to numbers; the evaluator yields null)");
  }
}

StaticType InferBinaryType(const Expr& e, const ExprCheck& c) {
  StaticType lt = InferType(*e.lhs(), c);
  StaticType rt = InferType(*e.rhs(), c);
  switch (e.op()) {
    case ExprOp::kAdd:
      if (lt == StaticType::kString && rt == StaticType::kString) {
        return StaticType::kString;  // Concatenation.
      }
      if ((lt == StaticType::kString && IsDefiniteNumeric(rt)) ||
          (rt == StaticType::kString && IsDefiniteNumeric(lt))) {
        c.Add("PT103", Severity::kError,
              "string/number addition is neither concatenation nor arithmetic: " + e.ToString());
        return StaticType::kNull;
      }
      if (lt == StaticType::kNull || rt == StaticType::kNull) {
        return StaticType::kNull;
      }
      if (lt == StaticType::kUnknown || rt == StaticType::kUnknown) {
        return StaticType::kUnknown;
      }
      return lt == StaticType::kInt && rt == StaticType::kInt ? StaticType::kInt
                                                              : StaticType::kDouble;
    case ExprOp::kSub:
    case ExprOp::kMul:
    case ExprOp::kDiv:
    case ExprOp::kMod: {
      CheckNumericOperand(*e.lhs(), lt, "numeric arithmetic", c);
      CheckNumericOperand(*e.rhs(), rt, "numeric arithmetic", c);
      if (e.op() == ExprOp::kDiv && e.rhs()->op() == ExprOp::kLiteral &&
          e.rhs()->literal().is_numeric() && e.rhs()->literal().AsDouble() == 0.0) {
        c.Add("PT110", Severity::kWarning,
              "division by literal zero always yields null: " + e.ToString());
        return StaticType::kNull;
      }
      if (lt == StaticType::kString || rt == StaticType::kString ||
          lt == StaticType::kNull || rt == StaticType::kNull) {
        return StaticType::kNull;
      }
      if (lt == StaticType::kUnknown || rt == StaticType::kUnknown) {
        return StaticType::kUnknown;
      }
      if (e.op() == ExprOp::kMod) {
        // Mod is integer-only; a definite double operand nulls out.
        return lt == StaticType::kInt && rt == StaticType::kInt ? StaticType::kInt
                                                                : StaticType::kNull;
      }
      return lt == StaticType::kInt && rt == StaticType::kInt ? StaticType::kInt
                                                              : StaticType::kDouble;
    }
    case ExprOp::kLt:
    case ExprOp::kLe:
    case ExprOp::kGt:
    case ExprOp::kGe:
      // Ordering a definite string against a definite number compares by type
      // rank, not value — almost always a typo'd column or literal.
      if ((lt == StaticType::kString && IsDefiniteNumeric(rt)) ||
          (IsDefiniteNumeric(lt) && rt == StaticType::kString)) {
        c.Add("PT103", Severity::kError,
              "ordering comparison between string and number: " + e.ToString());
      }
      return StaticType::kInt;
    case ExprOp::kEq:
    case ExprOp::kNe:
    case ExprOp::kAnd:
    case ExprOp::kOr:
      return StaticType::kInt;
    default:
      return StaticType::kUnknown;
  }
}

StaticType InferType(const Expr& e, const ExprCheck& c) {
  switch (e.op()) {
    case ExprOp::kLiteral:
      return TypeOfValue(e.literal());
    case ExprOp::kField: {
      auto it = c.env->find(e.field_name());
      if (it != c.env->end()) {
        return it->second;
      }
      if (!c.open_env) {
        c.Add("PT102", Severity::kError,
              "reads column '" + e.field_name() + "' which no op produces");
      }
      return StaticType::kUnknown;
    }
    case ExprOp::kNot:
      InferType(*e.lhs(), c);
      return StaticType::kInt;
    case ExprOp::kNeg: {
      StaticType t = InferType(*e.lhs(), c);
      CheckNumericOperand(*e.lhs(), t, "numeric negation", c);
      if (t == StaticType::kString || t == StaticType::kNull) {
        return StaticType::kNull;
      }
      return t;
    }
    default:
      return InferBinaryType(e, c);
  }
}

}  // namespace

const char* StaticTypeName(StaticType t) {
  switch (t) {
    case StaticType::kNull:
      return "null";
    case StaticType::kInt:
      return "int";
    case StaticType::kDouble:
      return "double";
    case StaticType::kString:
      return "string";
    case StaticType::kUnknown:
      return "unknown";
  }
  return "?";
}

StaticType JoinStaticTypes(StaticType a, StaticType b) {
  if (a == b) {
    return a;
  }
  if (a == StaticType::kNull) {
    return b;
  }
  if (b == StaticType::kNull) {
    return a;
  }
  if (IsDefiniteNumeric(a) && IsDefiniteNumeric(b)) {
    return StaticType::kDouble;
  }
  return StaticType::kUnknown;
}

StaticType InferExprType(const Expr& e, const std::map<std::string, StaticType>& env,
                         Report* report, const std::string& tracepoint, int op_index) {
  ExprCheck c{&env, /*open_env=*/false, report, &tracepoint, op_index};
  return InferType(e, c);
}

VerifyResult AdviceVerifier::Verify(const AdvicePlan& plan) const {
  // A plan is a lowered view of its source advice: every SymbolId it holds
  // was interned from the source's names, so verifying the source verifies
  // the plan. (Compile never drops or reorders ops.)
  if (plan.source() == nullptr) {
    VerifyResult result;
    result.report.Add("PT101", Severity::kError,
                      ctx_.tracepoint != nullptr ? ctx_.tracepoint->name : "", -1,
                      "plan has no source advice");
    return result;
  }
  return Verify(*plan.source());
}

VerifyResult AdviceVerifier::Verify(const Advice& advice) const {
  VerifyResult result;
  Report& report = result.report;
  const std::string tp_name = ctx_.tracepoint != nullptr ? ctx_.tracepoint->name : "";

  if (advice.ops().empty()) {
    report.Add("PT101", Severity::kError, tp_name, -1, "empty advice program");
    return result;
  }

  // The abstract working set: live columns with their static types. open_env
  // means an unpacked bag's column set is statically unknown, so reads of
  // unknown columns cannot be blamed.
  std::map<std::string, StaticType>& env = result.columns;
  bool env_open = false;
  bool has_effect = false;
  bool saw_sample = false;

  auto add = [&](const char* code, Severity sev, int op_index, std::string message) {
    report.Add(code, sev, tp_name, op_index, std::move(message));
  };

  const std::vector<Advice::Op>& ops = advice.ops();
  for (size_t i = 0; i < ops.size(); ++i) {
    const Advice::Op& op = ops[i];
    const int idx = static_cast<int>(i);
    ExprCheck check{&env, env_open, &report, &tp_name, idx};

    switch (op.kind) {
      case Advice::OpKind::kSample: {
        if (!(op.sample_rate > 0.0) || op.sample_rate > 1.0 || std::isnan(op.sample_rate)) {
          add("PT104", Severity::kError, idx,
              "sample rate " + std::to_string(op.sample_rate) + " outside (0, 1]");
        }
        if (i != 0) {
          add("PT112", Severity::kInfo, idx,
              saw_sample ? "repeated Sample op compounds the sampling rate"
                         : "Sample after other ops wastes the work they did on rejected "
                           "invocations");
        }
        saw_sample = true;
        break;
      }
      case Advice::OpKind::kObserve: {
        for (const auto& [from, to] : op.observe) {
          const DefaultExport* def = FindDefaultExport(from);
          StaticType t = def != nullptr ? def->type : StaticType::kUnknown;
          if (def == nullptr && ctx_.tracepoint != nullptr &&
              std::find(ctx_.tracepoint->exports.begin(), ctx_.tracepoint->exports.end(), from) ==
                  ctx_.tracepoint->exports.end()) {
            add("PT105", Severity::kError, idx,
                "tracepoint '" + tp_name + "' does not export '" + from +
                    "' (observed as " + to + "); it would always be null");
            t = StaticType::kNull;
          }
          if (env.count(to) != 0) {
            add("PT107", Severity::kWarning, idx,
                "duplicate column '" + to + "': the earlier binding shadows this one");
            continue;  // Reads keep the first binding.
          }
          env.emplace(to, t);
        }
        break;
      }
      case Advice::OpKind::kUnpack: {
        if (ctx_.bags == nullptr) {
          env_open = true;  // Unknown provenance: stop blaming unknown reads.
          break;
        }
        auto it = ctx_.bags->find(op.bag);
        if (it == ctx_.bags->end()) {
          add("PT106", Severity::kError, idx,
              "unpacks bag " + std::to_string(op.bag) +
                  ", which no causally-earlier advice of this query packs");
          env_open = true;
          break;
        }
        const BagColumns& bag = it->second;
        if (bag.open_columns) {
          env_open = true;
        }
        for (const auto& [name, type] : bag.columns) {
          auto [pos, inserted] = env.emplace(name, type);
          if (!inserted) {
            // Two upstream stages carried the same column; reads see the
            // earlier one, so join the types conservatively.
            pos->second = JoinStaticTypes(pos->second, type);
          }
        }
        break;
      }
      case Advice::OpKind::kLet: {
        if (op.expr == nullptr) {
          add("PT102", Severity::kError, idx, "Let '" + op.let_name + "' has no expression");
          break;
        }
        StaticType t = InferType(*op.expr, check);
        auto [pos, inserted] = env.emplace(op.let_name, t);
        if (!inserted) {
          add("PT111", Severity::kWarning, idx,
              "Let rebinds live column '" + op.let_name +
                  "'; reads keep the earlier value, so this binding is dead");
          (void)pos;
        }
        break;
      }
      case Advice::OpKind::kFilter: {
        if (op.expr == nullptr) {
          add("PT102", Severity::kError, idx, "Filter has no predicate");
          break;
        }
        InferType(*op.expr, check);
        std::vector<std::string> fields;
        op.expr->CollectFields(&fields);
        if (fields.empty()) {
          // Field-free predicates are compile-time constants; evaluate one.
          bool value = op.expr->Eval(Tuple()).AsBool();
          add("PT109", Severity::kWarning, idx,
              std::string("constant Filter predicate is always ") +
                  (value ? "true (it filters nothing)" : "false (it drops every tuple)") + ": " +
                  op.expr->ToString());
        }
        break;
      }
      case Advice::OpKind::kPack: {
        has_effect = true;
        BagColumns packed;
        packed.spec = op.bag_spec;
        if (op.bag_spec.semantics == PackSemantics::kAggregate) {
          // Aggregate bags retain group fields + aggregate state columns.
          for (const auto& g : op.bag_spec.group_fields) {
            auto it = env.find(g);
            if (it == env.end() && !env_open) {
              add("PT102", Severity::kError, idx,
                  "packs aggregate group field '" + g + "' which no op produces");
            }
            packed.columns[g] = it != env.end() ? it->second : StaticType::kUnknown;
          }
          for (const AggSpec& spec : op.bag_spec.aggs) {
            StaticType input_type = StaticType::kUnknown;
            if (!spec.input.empty()) {
              auto it = env.find(spec.input);
              if (it == env.end() && !env_open) {
                add("PT102", Severity::kError, idx,
                    "packs aggregate of column '" + spec.input + "' which no op produces");
              } else if (it != env.end()) {
                input_type = it->second;
              }
              if (input_type == StaticType::kString &&
                  (spec.fn == AggFn::kSum || spec.fn == AggFn::kAverage)) {
                add("PT103", Severity::kError, idx,
                    std::string(AggFnName(spec.fn)) + "(" + spec.input +
                        ") aggregates a string column");
              }
            }
            std::vector<std::string> state = spec.StateColumns();
            // First state column carries the running value; Average's second
            // ("#n") is the companion count.
            if (!state.empty()) {
              packed.columns[state[0]] =
                  spec.fn == AggFn::kCount ? StaticType::kInt : input_type;
            }
            for (size_t s = 1; s < state.size(); ++s) {
              packed.columns[state[s]] = StaticType::kInt;
            }
          }
        } else if (op.fields.empty()) {
          // Pack everything: the packed set is whatever is live here.
          packed.columns = env;
          packed.open_columns = env_open;
        } else {
          for (const auto& f : op.fields) {
            auto it = env.find(f);
            if (it == env.end() && !env_open) {
              add("PT102", Severity::kError, idx,
                  "packs column '" + f + "' which no op produces (it packs as null)");
            }
            packed.columns[f] = it != env.end() ? it->second : StaticType::kUnknown;
          }
        }
        auto pos = result.packed.find(op.bag);
        if (pos == result.packed.end()) {
          result.packed.emplace(op.bag, std::move(packed));
        } else {
          pos->second.open_columns |= packed.open_columns;
          for (const auto& [name, type] : packed.columns) {
            auto [cpos, cinserted] = pos->second.columns.emplace(name, type);
            if (!cinserted) {
              cpos->second = JoinStaticTypes(cpos->second, type);
            }
          }
        }
        break;
      }
      case Advice::OpKind::kEmit: {
        has_effect = true;
        if (ctx_.query_id != 0 && op.query_id != ctx_.query_id) {
          add("PT201", Severity::kError, idx,
              "emits to query " + std::to_string(op.query_id) + " but this advice belongs to query " +
                  std::to_string(ctx_.query_id));
        }
        if (op.fields.empty()) {
          result.emits_all = true;
        } else {
          for (const auto& f : op.fields) {
            if (env.count(f) == 0 && !env_open) {
              add("PT102", Severity::kError, idx,
                  "emits column '" + f + "' which no op produces (it emits as null)");
            }
            if (std::find(result.emitted_columns.begin(), result.emitted_columns.end(), f) ==
                result.emitted_columns.end()) {
              result.emitted_columns.push_back(f);
            }
          }
        }
        break;
      }
    }
  }

  if (!has_effect) {
    report.Add("PT108", Severity::kWarning, tp_name, -1,
               "advice has no effect: it neither packs nor emits");
  }
  return result;
}

}  // namespace analysis
}  // namespace pivot
