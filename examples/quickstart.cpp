// Quickstart: instrumenting a toy application with Pivot Tracing.
//
// This example uses only the core library (no simulator): it wires up the
// pieces a real deployment needs —
//   * a TracepointRegistry per process, with tracepoint definitions,
//   * a PTAgent per process (the EmitSink advice writes to),
//   * a MessageBus connecting agents to a Frontend,
//   * ExecutionContexts carrying baggage through requests,
// then installs two queries at runtime (one plain aggregation, one
// happened-before join) while "requests" run, and prints streaming results.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <memory>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "src/core/tracepoint.h"

using namespace pivot;

namespace {

// A toy two-tier system: a "web" tier that receives user requests and a
// "storage" tier it calls into. Each tier is one process with its own
// tracepoint registry and Pivot Tracing agent.
struct Process {
  TracepointRegistry registry;
  ProcessRuntime runtime;
  std::unique_ptr<PTAgent> agent;

  Process(MessageBus* bus, std::string host, std::string name) {
    runtime.info.host = std::move(host);
    runtime.info.process_name = std::move(name);
    agent = std::make_unique<PTAgent>(bus, &registry, runtime.info);
    runtime.sink = agent.get();
  }
};

TracepointDef Def(const char* name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  def.class_name = "quickstart";
  return def;
}

}  // namespace

int main() {
  MessageBus bus;

  // ---- 1. Set up the two processes and their tracepoints. ----
  Process web(&bus, "host-1", "webserver");
  Process storage(&bus, "host-2", "storage");

  Tracepoint* tp_request = *web.registry.Define(Def("Web.HandleRequest", {"user", "path"}));
  Tracepoint* tp_read = *storage.registry.Define(Def("Storage.Read", {"bytes"}));

  // A schema registry (the union of all definitions) lets the frontend
  // type-check queries. In a deployment this is distributed documentation;
  // here we just define the same tracepoints again.
  TracepointRegistry schema;
  (void)schema.Define(Def("Web.HandleRequest", {"user", "path"}));
  (void)schema.Define(Def("Storage.Read", {"bytes"}));

  Frontend frontend(&bus, &schema);

  // ---- 2. Install queries at runtime. ----
  // Plain aggregation, like the paper's Q1: total bytes read per host.
  uint64_t q_bytes = *frontend.Install(
      "From r In Storage.Read\n"
      "GroupBy r.host\n"
      "Select r.host, SUM(r.bytes)");

  // Happened-before join, like Q2: storage bytes *grouped by the user* who
  // caused them — the user is only known in the web tier; baggage carries it.
  uint64_t q_by_user = *frontend.Install(
      "From r In Storage.Read\n"
      "Join req In First(Web.HandleRequest) On req -> r\n"
      "GroupBy req.user\n"
      "Select req.user, SUM(r.bytes), COUNT");

  printf("Installed queries:\n%s\n", frontend.compiled(q_by_user)->Explain().c_str());

  // ---- 3. Run some requests. ----
  const char* users[] = {"alice", "bob", "alice", "carol", "alice", "bob"};
  int64_t sizes[] = {4096, 100, 8192, 512, 1024, 300};
  for (int i = 0; i < 6; ++i) {
    // Each request gets a context; tracepoints fire as execution passes them.
    ExecutionContext ctx(&web.runtime);
    tp_request->Invoke(&ctx, {{"user", Value(users[i])}, {"path", Value("/data")}});

    // The request crosses to the storage process: serialize the baggage into
    // the RPC, deserialize on the other side (what an instrumented RPC layer
    // does automatically).
    std::vector<uint8_t> wire = ctx.baggage().Serialize();
    ExecutionContext storage_ctx(&storage.runtime);
    storage_ctx.set_baggage(std::move(Baggage::Deserialize(wire)).value());

    tp_read->Invoke(&storage_ctx, {{"bytes", Value(sizes[i])}});
    // (Each storage read may fire the tracepoint many times; keep it simple.)
  }

  // ---- 4. Agents report once per interval; collect and print. ----
  web.agent->Flush(1'000'000);
  storage.agent->Flush(1'000'000);

  printf("Total bytes read per storage host:\n");
  for (const Tuple& row : frontend.Results(q_bytes)) {
    printf("  %s\n", row.ToString().c_str());
  }
  printf("\nStorage bytes attributed to the *web-tier user* (cross-process join):\n");
  for (const Tuple& row : frontend.Results(q_by_user)) {
    printf("  %s\n", row.ToString().c_str());
  }

  // ---- 5. Uninstall: tracepoints go back to zero overhead. ----
  (void)frontend.Uninstall(q_bytes);
  (void)frontend.Uninstall(q_by_user);
  printf("\nAfter uninstall, tracepoints enabled? web=%s storage=%s\n",
         tp_request->enabled() ? "yes" : "no", tp_read->enabled() ? "yes" : "no");
  return 0;
}
