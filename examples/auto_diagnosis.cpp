// Automated problem detection and drill-down — the §8 future-work idea
// ("We leave it to future work to explore the use of Pivot Tracing for
// automatic problem detection and exploration") built from the library's
// primitives: a watchdog keeps one cheap standing query running, and when its
// result listener sees an anomaly it *automatically* installs progressively
// deeper diagnosis queries, ending with a root-cause verdict.
//
// The injected fault is the §6.1 replica-selection bug; the watchdog
// rediscovers it without a human in the loop:
//   stage 1  standing Q3 (per-DataNode op counts) -> detects load skew
//   stage 2  drill-down Q6 (client x selected DataNode) -> selection bias
//   stage 3  drill-down Q7 (pairwise replica preference) -> strict total
//            order => "replica selection ignores randomization" verdict
//
// Build & run:  ./build/examples/auto_diagnosis

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>

#include "src/common/strings.h"
#include "src/hadoop/cluster.h"

using namespace pivot;

namespace {

class Watchdog {
 public:
  explicit Watchdog(HadoopCluster* cluster) : cluster_(cluster) {
    frontend_ = cluster_->world()->frontend();
  }

  void Start() {
    q3_ = *frontend_->Install(
        "From dnop In DN.DataTransferProtocol GroupBy dnop.host Select dnop.host, COUNT");
    (void)frontend_->SetResultListener(
        q3_, [this](int64_t ts, const std::vector<Tuple>&) { OnQ3Interval(ts); });
    printf("[watchdog] standing query installed: per-DataNode op counts (Q3)\n");
  }

  bool diagnosed() const { return diagnosed_; }

 private:
  // Stage 1: look for sustained load skew in the per-interval Q3 results.
  void OnQ3Interval(int64_t ts) {
    if (stage_ != 1) {
      return;
    }
    auto series = frontend_->Series(q3_);
    auto it = series.find(ts);
    if (it == series.end() || it->second.size() < 4) {
      return;
    }
    double max_count = 0;
    double min_count = 1e18;
    for (const Tuple& row : it->second) {
      double c = row.Get("COUNT").AsDouble();
      max_count = std::max(max_count, c);
      min_count = std::min(min_count, c);
    }
    if (min_count > 0 && max_count / min_count > 3.0) {
      ++skewed_intervals_;
    } else {
      skewed_intervals_ = 0;
    }
    if (skewed_intervals_ >= 2) {
      printf("[watchdog] t=%llds ANOMALY: DataNode load skew %.1fx for 2 intervals\n",
             static_cast<long long>(ts / kMicrosPerSecond), max_count / min_count);
      stage_ = 2;
      InstallQ6();
    }
  }

  // Stage 2: is the skew caused by *clients' selection* rather than load?
  void InstallQ6() {
    q6_ = *frontend_->Install(
        "From DNop In DN.DataTransferProtocol\n"
        "Join st In StressTest.DoNextOp On st -> DNop\n"
        "GroupBy st.host, DNop.host Select st.host, DNop.host, COUNT");
    (void)frontend_->SetResultListener(
        q6_, [this](int64_t ts, const std::vector<Tuple>&) { OnQ6Interval(ts); });
    printf("[watchdog] drill-down installed: client x selected DataNode (Q6)\n");
  }

  void OnQ6Interval(int64_t ts) {
    if (stage_ != 2) {
      return;
    }
    // Accumulate a couple of intervals, then test for column concentration
    // among non-local selections.
    if (++q6_intervals_ < 2) {
      return;
    }
    std::map<std::string, double> nonlocal_by_dn;
    double nonlocal_total = 0;
    for (const Tuple& row : frontend_->Results(q6_)) {
      if (row.Get("st.host").string_value() == row.Get("DNop.host").string_value()) {
        continue;
      }
      nonlocal_by_dn[row.Get("DNop.host").string_value()] += row.Get("COUNT").AsDouble();
      nonlocal_total += row.Get("COUNT").AsDouble();
    }
    if (nonlocal_total < 100) {
      return;
    }
    // Top-2 DataNodes' share of non-local selections.
    std::vector<double> shares;
    for (const auto& [dn, count] : nonlocal_by_dn) {
      shares.push_back(count / nonlocal_total);
    }
    std::sort(shares.rbegin(), shares.rend());
    double top2 = shares.size() >= 2 ? shares[0] + shares[1] : shares[0];
    if (top2 > 0.5) {
      printf("[watchdog] t=%llds clients concentrate %.0f%% of non-local reads on 2 "
             "DataNodes -> selection bias, not placement\n",
             static_cast<long long>(ts / kMicrosPerSecond), top2 * 100);
      stage_ = 3;
      InstallQ7();
    }
  }

  // Stage 3: given the offered replicas, which one wins?
  void InstallQ7() {
    q7_ = *frontend_->Install(
        "From DNop In DN.DataTransferProtocol\n"
        "Join getloc In NN.GetBlockLocations On getloc -> DNop\n"
        "Join st In StressTest.DoNextOp On st -> getloc\n"
        "Where st.host != DNop.host\n"
        "GroupBy DNop.host, getloc.replicas Select DNop.host, getloc.replicas, COUNT");
    (void)frontend_->SetResultListener(
        q7_, [this](int64_t ts, const std::vector<Tuple>&) { OnQ7Interval(ts); });
    printf("[watchdog] drill-down installed: chosen replica vs offered set (Q7)\n");
  }

  void OnQ7Interval(int64_t ts) {
    if (stage_ != 3 || ++q7_intervals_ < 2) {
      return;
    }
    // Pairwise win rates; a total order (all 0% or 100%) convicts a
    // deterministic selection policy.
    std::map<std::pair<std::string, std::string>, double> wins;
    std::map<std::pair<std::string, std::string>, double> meetings;
    for (const Tuple& row : frontend_->Results(q7_)) {
      std::string chosen = row.Get("DNop.host").string_value();
      double count = row.Get("COUNT").AsDouble();
      for (const auto& other : StrSplit(row.Get("getloc.replicas").string_value(), ',')) {
        if (other == chosen) {
          continue;
        }
        wins[{chosen, other}] += count;
        meetings[{chosen, other}] += count;
        meetings[{other, chosen}] += count;
      }
    }
    int decisive = 0;
    int pairs = 0;
    for (const auto& [pair, met] : meetings) {
      if (pair.first >= pair.second || met < 20) {
        continue;  // Count each unordered pair once, with enough samples.
      }
      ++pairs;
      double rate = wins[{pair.first, pair.second}] / met;
      if (rate < 0.02 || rate > 0.98) {
        ++decisive;
      }
    }
    if (pairs >= 5 && decisive == pairs) {
      printf("[watchdog] t=%llds VERDICT: every replica pair resolves deterministically "
             "(%d/%d pairs at 0%%/100%%).\n",
             static_cast<long long>(ts / kMicrosPerSecond), decisive, pairs);
      printf("[watchdog]   => replica selection is not randomized: the NameNode returns a "
             "fixed order and clients take the first entry (HDFS-6268).\n");
      diagnosed_ = true;
      stage_ = 4;
      for (uint64_t q : {q6_, q7_}) {
        (void)frontend_->Uninstall(q);
      }
      printf("[watchdog] drill-down queries uninstalled; standing Q3 remains.\n");
    }
  }

  HadoopCluster* cluster_;
  Frontend* frontend_ = nullptr;
  int stage_ = 1;
  int skewed_intervals_ = 0;
  int q6_intervals_ = 0;
  int q7_intervals_ = 0;
  uint64_t q3_ = 0;
  uint64_t q6_ = 0;
  uint64_t q7_ = 0;
  bool diagnosed_ = false;
};

}  // namespace

int main() {
  HadoopClusterConfig config;
  config.worker_hosts = 8;
  config.dataset_files = 500;
  config.seed = 2024;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  config.hdfs.datanode_op_micros = 800;
  config.hdfs.static_order_hosts = {"A", "D", "B", "C", "E", "F", "G", "H"};
  HadoopCluster cluster(config);

  Watchdog watchdog(&cluster);
  watchdog.Start();

  // The workload with the latent bug.
  std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  uint64_t seed = 1;
  for (int h = 0; h < 8; ++h) {
    for (int c = 0; c < 6; ++c) {
      SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "StressTest");
      clients.push_back(std::make_unique<HdfsReadWorkload>(
          proc, cluster.namenode(), 8 << 10, 10 * kMicrosPerMilli, true, seed++));
      clients.back()->Start(30 * kMicrosPerSecond);
    }
  }

  cluster.world()->StartAgentFlushLoop(30 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  if (!watchdog.diagnosed()) {
    printf("[watchdog] no verdict reached within the run\n");
    return 1;
  }
  printf("\nDiagnosis completed autonomously: three queries, installed on demand, zero\n"
         "human interaction and zero recompilation.\n");
  return 0;
}
