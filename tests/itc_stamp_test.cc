// Full interval-tree-clock stamps, property-tested against an exact
// causal-history oracle: each simulated stamp tracks the *set* of event
// occurrences in its past; ITC's Leq must equal subset inclusion.

#include <gtest/gtest.h>

#include <set>

#include "src/common/rand.h"
#include "src/core/itc_stamp.h"

namespace pivot {
namespace {

TEST(ItcEventTest, LeafBasics) {
  ItcEvent zero;
  EXPECT_TRUE(zero.IsZero());
  ItcEvent three = ItcEvent::Leaf(3);
  EXPECT_TRUE(ItcEvent::Leq(zero, three));
  EXPECT_FALSE(ItcEvent::Leq(three, zero));
  EXPECT_TRUE(ItcEvent::Leq(three, three));
  EXPECT_EQ(ItcEvent::Join(zero, three), three);
}

TEST(ItcStampTest, SeedAndFirstEvents) {
  ItcStamp seed = ItcStamp::Seed();
  ItcStamp e1 = seed.Event();
  ItcStamp e2 = e1.Event();
  EXPECT_TRUE(ItcStamp::HappenedBefore(seed, e1));
  EXPECT_TRUE(ItcStamp::HappenedBefore(e1, e2));
  EXPECT_TRUE(ItcStamp::HappenedBefore(seed, e2));
  EXPECT_FALSE(ItcStamp::HappenedBefore(e2, e1));
  EXPECT_EQ(e1.ToString(), "(1; 1)");
  EXPECT_EQ(e2.ToString(), "(1; 2)");
}

TEST(ItcStampTest, ForkedStampsAreConcurrentAfterLocalEvents) {
  auto [a, b] = ItcStamp::Seed().Fork();
  ItcStamp a1 = a.Event();
  ItcStamp b1 = b.Event();
  EXPECT_TRUE(ItcStamp::Concurrent(a1, b1));
  // Both dominate the pre-fork stamp.
  EXPECT_TRUE(ItcStamp::HappenedBefore(a, a1));
  EXPECT_TRUE(ItcStamp::HappenedBefore(b, b1));
}

TEST(ItcStampTest, JoinDominatesBothSides) {
  auto [a, b] = ItcStamp::Seed().Fork();
  ItcStamp a1 = a.Event().Event();
  ItcStamp b1 = b.Event();
  ItcStamp joined = ItcStamp::Join(a1, b1);
  EXPECT_TRUE(ItcStamp::Leq(a1, joined));
  EXPECT_TRUE(ItcStamp::Leq(b1, joined));
  EXPECT_EQ(joined.id(), ItcId::Seed());
}

TEST(ItcStampTest, PeekCarriesCausalityWithoutIdentity) {
  auto [a, b] = ItcStamp::Seed().Fork();
  ItcStamp a1 = a.Event();
  // "Message" from a to b: join with a's anonymous peek.
  ItcStamp b_recv = ItcStamp::Join(b, a1.Peek());
  EXPECT_TRUE(ItcStamp::Leq(a1, b_recv));
  // b's identity is unchanged (a1's id was not merged).
  EXPECT_EQ(b_recv.id(), b.id());
  // And b can still record events.
  ItcStamp b2 = b_recv.Event();
  EXPECT_TRUE(ItcStamp::HappenedBefore(a1, b2));
}

TEST(ItcStampTest, EncodeDecodeRoundTrip) {
  auto [a, b] = ItcStamp::Seed().Fork();
  ItcStamp stamp = ItcStamp::Join(a.Event().Event(), b.Event().Peek());
  std::vector<uint8_t> bytes;
  stamp.Encode(&bytes);
  size_t pos = 0;
  ItcStamp decoded = ItcStamp::Seed();
  ASSERT_TRUE(ItcStamp::Decode(bytes.data(), bytes.size(), &pos, &decoded));
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(decoded.ToString(), stamp.ToString());
  EXPECT_TRUE(ItcStamp::Leq(decoded, stamp));
  EXPECT_TRUE(ItcStamp::Leq(stamp, decoded));
}

TEST(ItcStampTest, DecodeRejectsGarbage) {
  std::vector<uint8_t> junk = {0x07, 0x01, 0x02};
  size_t pos = 0;
  ItcStamp out = ItcStamp::Seed();
  EXPECT_FALSE(ItcStamp::Decode(junk.data(), junk.size(), &pos, &out));
}

// ---------------------------------------------------------------------------
// Oracle-based property test

// A stamp paired with its exact causal history (set of event occurrence ids).
struct OracleStamp {
  ItcStamp stamp;
  std::set<int> history;
};

class ItcStampPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ItcStampPropertyTest, LeqMatchesCausalHistoryInclusion) {
  Rng rng(GetParam());
  std::vector<OracleStamp> live;
  live.push_back({ItcStamp::Seed(), {}});
  int next_event = 0;

  for (int step = 0; step < 120; ++step) {
    switch (rng.NextBelow(4)) {
      case 0: {  // Local event.
        OracleStamp& s = live[rng.NextBelow(live.size())];
        s.stamp = s.stamp.Event();
        s.history.insert(next_event++);
        break;
      }
      case 1: {  // Fork.
        if (live.size() >= 10) {
          break;
        }
        size_t i = rng.NextBelow(live.size());
        auto [s1, s2] = live[i].stamp.Fork();
        OracleStamp child{s2, live[i].history};
        live[i].stamp = s1;
        live.push_back(std::move(child));
        break;
      }
      case 2: {  // Join (retire one stamp into another).
        if (live.size() < 2) {
          break;
        }
        size_t i = rng.NextBelow(live.size());
        size_t j = rng.NextBelow(live.size());
        if (i == j) {
          break;
        }
        live[i].stamp = ItcStamp::Join(live[i].stamp, live[j].stamp);
        live[i].history.insert(live[j].history.begin(), live[j].history.end());
        live.erase(live.begin() + static_cast<ptrdiff_t>(j));
        break;
      }
      default: {  // Message: receiver joins the sender's peek.
        if (live.size() < 2) {
          break;
        }
        size_t from = rng.NextBelow(live.size());
        size_t to = rng.NextBelow(live.size());
        if (from == to) {
          break;
        }
        live[to].stamp = ItcStamp::Join(live[to].stamp, live[from].stamp.Peek());
        live[to].history.insert(live[from].history.begin(), live[from].history.end());
        break;
      }
    }

    // Invariant: Leq(a, b) == (history(a) ⊆ history(b)).
    for (const auto& a : live) {
      for (const auto& b : live) {
        bool subset = std::includes(b.history.begin(), b.history.end(), a.history.begin(),
                                    a.history.end());
        ASSERT_EQ(ItcStamp::Leq(a.stamp, b.stamp), subset)
            << "step " << step << "\n a=" << a.stamp.ToString()
            << "\n b=" << b.stamp.ToString();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItcStampPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace pivot
