#include <gtest/gtest.h>

#include "src/core/value.h"

namespace pivot {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), ValueType::kNull);
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, IntValue) {
  Value v(int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_numeric());
  EXPECT_EQ(v.int_value(), 42);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, DoubleValue) {
  Value v(2.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_EQ(v.double_value(), 2.5);
}

TEST(ValueTest, StringValue) {
  Value v("host-A");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.string_value(), "host-A");
  EXPECT_EQ(v.ToString(), "host-A");
}

TEST(ValueTest, AsDoubleCoercions) {
  EXPECT_EQ(Value(int64_t{3}).AsDouble(), 3.0);
  EXPECT_EQ(Value(1.5).AsDouble(), 1.5);
  EXPECT_EQ(Value().AsDouble(), 0.0);
  EXPECT_EQ(Value("xyz").AsDouble(), 0.0);
}

TEST(ValueTest, Truthiness) {
  EXPECT_FALSE(Value().AsBool());
  EXPECT_FALSE(Value(int64_t{0}).AsBool());
  EXPECT_TRUE(Value(int64_t{1}).AsBool());
  EXPECT_FALSE(Value(0.0).AsBool());
  EXPECT_TRUE(Value(0.1).AsBool());
  EXPECT_FALSE(Value("").AsBool());
  EXPECT_TRUE(Value("x").AsBool());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);
  EXPECT_LT(Value(int64_t{1}).Compare(Value(1.5)), 0);
  EXPECT_GT(Value(2.5).Compare(Value(int64_t{2})), 0);
}

TEST(ValueTest, TypeRankOrdering) {
  // null < numbers < strings.
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);
  EXPECT_LT(Value(int64_t{999}).Compare(Value("a")), 0);
  EXPECT_GT(Value("a").Compare(Value(999.0)), 0);
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value("A").Compare(Value("B")), 0);
  EXPECT_EQ(Value("A").Compare(Value("A")), 0);
}

TEST(ValueTest, EqualityOperators) {
  EXPECT_TRUE(Value(int64_t{5}) == Value(5.0));
  EXPECT_TRUE(Value("a") != Value("b"));
  EXPECT_TRUE(Value() == Value());
}

TEST(ValueTest, HashStableAcrossNumericPromotion) {
  // Group keys must not split when a value flows through a double.
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value("7").Hash());
  EXPECT_NE(Value(int64_t{7}).Hash(), Value(int64_t{8}).Hash());
}

TEST(ValueArithmeticTest, IntAddition) {
  Value r = ValueAdd(Value(int64_t{2}), Value(int64_t{3}));
  ASSERT_TRUE(r.is_int());
  EXPECT_EQ(r.int_value(), 5);
}

TEST(ValueArithmeticTest, MixedPromotesToDouble) {
  Value r = ValueAdd(Value(int64_t{2}), Value(0.5));
  ASSERT_TRUE(r.is_double());
  EXPECT_EQ(r.double_value(), 2.5);
}

TEST(ValueArithmeticTest, StringConcatenation) {
  Value r = ValueAdd(Value("a"), Value("b"));
  ASSERT_TRUE(r.is_string());
  EXPECT_EQ(r.string_value(), "ab");
}

TEST(ValueArithmeticTest, SubtractionAndNegatives) {
  EXPECT_EQ(ValueSub(Value(int64_t{3}), Value(int64_t{5})).int_value(), -2);
}

TEST(ValueArithmeticTest, Multiplication) {
  EXPECT_EQ(ValueMul(Value(int64_t{4}), Value(int64_t{6})).int_value(), 24);
  EXPECT_EQ(ValueMul(Value(2.0), Value(int64_t{3})).double_value(), 6.0);
}

TEST(ValueArithmeticTest, IntegerDivisionTruncates) {
  EXPECT_EQ(ValueDiv(Value(int64_t{7}), Value(int64_t{2})).int_value(), 3);
}

TEST(ValueArithmeticTest, DoubleDivision) {
  EXPECT_EQ(ValueDiv(Value(7.0), Value(int64_t{2})).double_value(), 3.5);
}

TEST(ValueArithmeticTest, DivisionByZeroYieldsNull) {
  EXPECT_TRUE(ValueDiv(Value(int64_t{1}), Value(int64_t{0})).is_null());
  EXPECT_TRUE(ValueDiv(Value(1.0), Value(0.0)).is_null());
  EXPECT_TRUE(ValueMod(Value(int64_t{1}), Value(int64_t{0})).is_null());
}

TEST(ValueArithmeticTest, TypeErrorsYieldNull) {
  EXPECT_TRUE(ValueAdd(Value("a"), Value(int64_t{1})).is_null());
  EXPECT_TRUE(ValueSub(Value("a"), Value("b")).is_null());
  EXPECT_TRUE(ValueMul(Value(), Value(int64_t{2})).is_null());
}

TEST(ValueArithmeticTest, Modulo) {
  EXPECT_EQ(ValueMod(Value(int64_t{7}), Value(int64_t{3})).int_value(), 1);
  EXPECT_TRUE(ValueMod(Value(7.0), Value(int64_t{3})).is_null());
}

}  // namespace
}  // namespace pivot
