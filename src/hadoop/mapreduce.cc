#include "src/hadoop/mapreduce.h"

#include <cassert>

#include "src/hadoop/tracepoints.h"

namespace pivot {

MrTaskRuntime::MrTaskRuntime(SimProcess* proc, HdfsNameNode* namenode, uint64_t seed)
    : proc_(proc), hdfs_(proc, namenode, seed) {
  tp_fis_ = GetOrDefineTracepoint(proc, FileInputStreamReadDef());
  tp_fos_ = GetOrDefineTracepoint(proc, FileOutputStreamWriteDef());
  tp_map_done_ = GetOrDefineTracepoint(proc, MapTaskDoneDef());
  tp_reduce_done_ = GetOrDefineTracepoint(proc, ReduceTaskDoneDef());
}

struct MapReduceRuntime::JobState {
  std::string name;
  MrConfig config;
  uint64_t input_bytes = 0;
  int map_tasks = 0;
  int maps_done = 0;
  int reduces_done = 0;
  bool reduce_started = false;
  uint64_t map_output_bytes = 0;  // Total intermediate data.
  SimProcess* client = nullptr;
  CtxPtr job_ctx;
  std::vector<CtxPtr> finished_task_ctxs;
  std::function<void(CtxPtr)> on_complete;
  // Hosts that ran map tasks (shuffle sources), with output byte counts.
  std::map<SimHost*, uint64_t> map_output_by_host;
};

MapReduceRuntime::MapReduceRuntime(SimWorld* world, YarnResourceManager* rm,
                                   HdfsNameNode* namenode, uint64_t seed)
    : world_(world), rm_(rm), namenode_(namenode), rng_(seed) {
  // Protocol-level boundaries for the job lifecycle: submission forks the job
  // context toward an NM queue, the container body runs in an MRTask process,
  // reducers shuffle map output between MRTask processes, and finished task
  // branches rejoin the client's job context.
  analysis::PropagationRegistry& graph = world->propagation();
  graph.DeclareComponent("client", /*client_entry=*/true);
  graph.DeclareEdge(analysis::PropagationEdge{"client", "NM", "continuation", "job submission",
                                              /*forwards_baggage=*/true});
  graph.DeclareEdge(analysis::PropagationEdge{"NM", "MRTask", "continuation",
                                              "container launch", /*forwards_baggage=*/true});
  graph.DeclareEdge(analysis::PropagationEdge{"MRTask", "MRTask", "continuation", "shuffle",
                                              /*forwards_baggage=*/true});
  graph.DeclareEdge(analysis::PropagationEdge{"MRTask", "client", "join", "task rejoin",
                                              /*forwards_baggage=*/true});
  for (YarnNodeManager* nm : rm->node_managers()) {
    SimProcess* proc = world->AddProcess(nm->process()->host(), "MRTask", "MRTask");
    task_runtimes_.push_back(std::make_unique<MrTaskRuntime>(proc, namenode, rng_.NextUint64()));
  }
}

MrTaskRuntime* MapReduceRuntime::RuntimeOn(SimHost* host) {
  for (const auto& rt : task_runtimes_) {
    if (rt->process()->host() == host) {
      return rt.get();
    }
  }
  assert(false && "no task runtime on host");
  return nullptr;
}

void MapReduceRuntime::SubmitJob(SimProcess* client, CtxPtr ctx, const std::string& name,
                                 uint64_t input_bytes, const MrConfig& config,
                                 std::function<void(CtxPtr)> on_complete) {
  // Client-side protocol entry: the pack site for Q2-style queries.
  Tracepoint* tp_client_protocols = GetOrDefineTracepoint(client, ClientProtocolsDef());
  Tracepoint* tp_acp = GetOrDefineTracepoint(client, MrAppClientProtocolDef());
  tp_client_protocols->Invoke(
      ctx.get(), {{"procName", Value(client->name())}, {"system", Value("MapReduce")}});
  tp_acp->Invoke(ctx.get(), {{"op", Value("submitJob")}, {"job", Value(name)}});

  auto job = std::make_shared<JobState>();
  job->name = name;
  job->config = config;
  job->input_bytes = input_bytes;
  job->map_tasks = static_cast<int>((input_bytes + config.split_bytes - 1) / config.split_bytes);
  job->client = client;
  job->on_complete = std::move(on_complete);

  // The job context stays with the client; each task runs on a forked branch
  // whose baggage carries the packed client identity.
  job->job_ctx = ctx;

  for (int i = 0; i < job->map_tasks; ++i) {
    YarnNodeManager* nm = rm_->NextNodeManager();
    MrTaskRuntime* rt = RuntimeOn(nm->process()->host());
    auto task_ctx = std::make_shared<ExecutionContext>(ctx->Fork());
    world_->MoveContext(task_ctx, rt->process());
    world_->propagation().ObserveEdge(client->component(), nm->process()->component(),
                                      "continuation");
    world_->propagation().ObserveEdge(nm->process()->component(), rt->process()->component(),
                                      "continuation");
    nm->LaunchContainer(name, task_ctx, [this, job, i, rt, task_ctx](std::function<void()> release) {
      RunMapTask(job, i, rt, task_ctx, std::move(release));
    });
  }
}

void MapReduceRuntime::RunMapTask(const std::shared_ptr<JobState>& job, int task_index,
                                  MrTaskRuntime* rt, CtxPtr ctx, std::function<void()> release) {
  // 1. Read the input split from HDFS.
  uint64_t file_id = rng_.NextBelow(namenode_->file_count());
  uint64_t split = job->config.split_bytes;
  rt->hdfs()->Read(
      ctx, file_id, split,
      [this, job, task_index, rt, split, release = std::move(release)](
          CtxPtr c, HdfsClient::ReadResult) mutable {
        // 2. Compute, then spill map output to local disk ("Map" category).
        auto out_bytes = static_cast<uint64_t>(static_cast<double>(split) *
                                               job->config.map_selectivity);
        int64_t cpu = job->config.cpu_micros_per_mb * static_cast<int64_t>(split >> 20);
        world_->env()->Schedule(cpu, [this, job, task_index, rt, out_bytes, c,
                                      release = std::move(release)]() mutable {
          rt->process()->host()->disk().Transfer(out_bytes, [this, job, task_index, rt, out_bytes,
                                                             c, release = std::move(release)]() mutable {
            rt->tp_fos()->Invoke(c.get(), {{"delta", Value(static_cast<int64_t>(out_bytes))},
                                           {"category", Value("Map")}});
            rt->tp_map_done()->Invoke(
                c.get(), {{"job", Value(job->name)}, {"task", Value(int64_t{task_index})}});
            job->map_output_bytes += out_bytes;
            job->map_output_by_host[rt->process()->host()] += out_bytes;
            job->finished_task_ctxs.push_back(c);
            ++job->maps_done;
            release();
            MaybeStartReduce(job);
          });
        });
      });
}

void MapReduceRuntime::MaybeStartReduce(const std::shared_ptr<JobState>& job) {
  if (job->reduce_started || job->maps_done < job->map_tasks) {
    return;
  }
  job->reduce_started = true;
  for (int r = 0; r < job->config.reducers; ++r) {
    YarnNodeManager* nm = rm_->NextNodeManager();
    MrTaskRuntime* rt = RuntimeOn(nm->process()->host());
    auto task_ctx = std::make_shared<ExecutionContext>(job->job_ctx->Fork());
    world_->MoveContext(task_ctx, rt->process());
    world_->propagation().ObserveEdge(job->client->component(), nm->process()->component(),
                                      "continuation");
    world_->propagation().ObserveEdge(nm->process()->component(), rt->process()->component(),
                                      "continuation");
    nm->LaunchContainer(job->name, task_ctx, [this, job, r, rt, task_ctx](std::function<void()> release) {
      RunReduceTask(job, r, rt, task_ctx, std::move(release));
    });
  }
}

void MapReduceRuntime::RunReduceTask(const std::shared_ptr<JobState>& job, int task_index,
                                     MrTaskRuntime* rt, CtxPtr ctx,
                                     std::function<void()> release) {
  // 1. Shuffle: fetch this reducer's share of every map host's output over
  // the network, writing it to local disk ("Shuffle" category).
  uint64_t shuffle_share =
      job->map_output_bytes / static_cast<uint64_t>(job->config.reducers);
  SimHost* reducer_host = rt->process()->host();

  auto pending = std::make_shared<int>(0);
  auto after_shuffle = std::make_shared<std::function<void()>>();

  *after_shuffle = [this, job, task_index, rt, ctx, shuffle_share,
                    release = std::move(release)]() mutable {
    // 2. Merge-read shuffled data ("Reduce" category), compute, and write the
    // output partition back to HDFS.
    rt->process()->host()->disk().Transfer(shuffle_share, [this, job, task_index, rt, ctx,
                                                           shuffle_share,
                                                           release = std::move(release)]() mutable {
      rt->tp_fis()->Invoke(ctx.get(), {{"delta", Value(static_cast<int64_t>(shuffle_share))},
                                       {"category", Value("Reduce")}});
      int64_t cpu = job->config.cpu_micros_per_mb * static_cast<int64_t>(shuffle_share >> 20);
      world_->env()->Schedule(cpu, [this, job, task_index, rt, ctx, shuffle_share,
                                    release = std::move(release)]() mutable {
        rt->hdfs()->Write(ctx, shuffle_share, [this, job, task_index, rt,
                                               release = std::move(release)](CtxPtr c) mutable {
          rt->tp_reduce_done()->Invoke(
              c.get(), {{"job", Value(job->name)}, {"task", Value(int64_t{task_index})}});
          job->finished_task_ctxs.push_back(c);
          ++job->reduces_done;
          release();
          MaybeComplete(job);
        });
      });
    });
  };

  if (job->map_output_by_host.empty()) {
    (*after_shuffle)();
    return;
  }
  for (const auto& [map_host, host_output] : job->map_output_by_host) {
    uint64_t fetch = host_output / static_cast<uint64_t>(job->config.reducers);
    if (fetch == 0) {
      continue;
    }
    ++*pending;
    // Read map output from the map host's disk ("Shuffle" source), cross the
    // network (skipped for local fetches), write to the reducer's disk.
    MrTaskRuntime* src_rt = RuntimeOn(map_host);
    world_->propagation().ObserveEdge(src_rt->process()->component(),
                                      rt->process()->component(), "continuation");
    auto finish_one = [this, pending, after_shuffle, rt, ctx, fetch]() {
      rt->process()->host()->disk().Transfer(fetch, [this, pending, after_shuffle, rt, ctx,
                                                     fetch]() {
        rt->tp_fos()->Invoke(ctx.get(), {{"delta", Value(static_cast<int64_t>(fetch))},
                                         {"category", Value("Shuffle")}});
        if (--*pending == 0) {
          (*after_shuffle)();
        }
      });
    };
    map_host->disk().Transfer(fetch, [this, src_rt, ctx, fetch, map_host, reducer_host,
                                      finish_one = std::move(finish_one)]() mutable {
      src_rt->tp_fis()->Invoke(ctx.get(), {{"delta", Value(static_cast<int64_t>(fetch))},
                                           {"category", Value("Shuffle")}});
      if (map_host == reducer_host) {
        finish_one();
        return;
      }
      map_host->nic_out().Transfer(fetch, [reducer_host, fetch,
                                           finish_one = std::move(finish_one)]() mutable {
        reducer_host->nic_in().Transfer(fetch, std::move(finish_one));
      });
    });
  }
  if (*pending == 0) {
    (*after_shuffle)();
  }
}

void MapReduceRuntime::MaybeComplete(const std::shared_ptr<JobState>& job) {
  if (job->reduces_done < job->config.reducers) {
    return;
  }
  // Rejoin every task branch into the job context, then fire JobComplete at
  // the client.
  world_->MoveContext(job->job_ctx, job->client);
  if (!task_runtimes_.empty()) {
    world_->propagation().ObserveEdge(task_runtimes_.front()->process()->component(),
                                      job->client->component(), "join");
  }
  for (auto& task_ctx : job->finished_task_ctxs) {
    job->job_ctx->Join(std::move(*task_ctx));
  }
  job->finished_task_ctxs.clear();
  Tracepoint* tp_done = GetOrDefineTracepoint(job->client, JobCompleteDef());
  tp_done->Invoke(job->job_ctx.get(), {{"id", Value(job->name)}});
  if (job->on_complete) {
    job->on_complete(job->job_ctx);
  }
}

}  // namespace pivot
