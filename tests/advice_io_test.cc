#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/core/advice_io.h"

namespace pivot {
namespace {

TEST(ExprIoTest, RoundTripsAllNodeKinds) {
  Expr::Ptr e = Expr::Binary(
      ExprOp::kAnd,
      Expr::Binary(ExprOp::kNe, Expr::Field("st.host"), Expr::Field("DNop.host")),
      Expr::Binary(ExprOp::kLt,
                   Expr::Binary(ExprOp::kSub, Expr::Field("r.time"),
                                Expr::Unary(ExprOp::kNeg, Expr::Literal(Value(int64_t{5})))),
                   Expr::Literal(Value(2.5))));
  std::vector<uint8_t> buf;
  EncodeExpr(&buf, e);
  size_t pos = 0;
  Expr::Ptr decoded;
  ASSERT_TRUE(DecodeExpr(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(decoded->ToString(), e->ToString());
}

TEST(ExprIoTest, StringLiteralRoundTrip) {
  Expr::Ptr e = Expr::Binary(ExprOp::kEq, Expr::Field("e.op"), Expr::Literal(Value("READ")));
  std::vector<uint8_t> buf;
  EncodeExpr(&buf, e);
  size_t pos = 0;
  Expr::Ptr decoded;
  ASSERT_TRUE(DecodeExpr(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_EQ(decoded->Eval(Tuple{{"e.op", Value("READ")}}).int_value(), 1);
}

TEST(ExprIoTest, RejectsTruncation) {
  Expr::Ptr e = Expr::Binary(ExprOp::kAdd, Expr::Field("a"), Expr::Field("b"));
  std::vector<uint8_t> buf;
  EncodeExpr(&buf, e);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    Expr::Ptr decoded;
    EXPECT_FALSE(DecodeExpr(buf.data(), cut, &pos, &decoded)) << "cut=" << cut;
  }
}

TEST(ExprIoTest, RejectsDeepNesting) {
  // A long chain of unary-NOT tags would recurse past the depth cap.
  std::vector<uint8_t> buf(200, static_cast<uint8_t>(ExprOp::kNot));
  size_t pos = 0;
  Expr::Ptr decoded;
  EXPECT_FALSE(DecodeExpr(buf.data(), buf.size(), &pos, &decoded));
}

TEST(AdviceIoTest, RoundTripsFullProgram) {
  Advice::Ptr advice =
      AdviceBuilder()
          .Observe({{"delta", "incr.delta"}, {"host", "incr.host"}})
          .Unpack(257)
          .Let("latency", Expr::Binary(ExprOp::kSub, Expr::Field("b"), Expr::Field("a")))
          .Filter(Expr::Binary(ExprOp::kGt, Expr::Field("latency"), Expr::Literal(Value(int64_t{0}))))
          .Pack(258,
                BagSpec::Aggregated({"incr.host"}, {{AggFn::kSum, "incr.delta", "S", false}}),
                {"incr.host"})
          .Emit(9, {"latency"})
          .Build();

  std::vector<uint8_t> buf;
  EncodeAdvice(&buf, *advice);
  size_t pos = 0;
  Advice::Ptr decoded;
  ASSERT_TRUE(DecodeAdvice(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(decoded->ToString(), advice->ToString());
  ASSERT_EQ(decoded->ops().size(), 6u);
  EXPECT_EQ(decoded->ops()[1].bag, 257u);
  EXPECT_EQ(decoded->ops()[4].bag_spec.semantics, PackSemantics::kAggregate);
  EXPECT_EQ(decoded->ops()[5].query_id, 9u);
}

TEST(AdviceIoTest, FuzzDecodeNeverCrashes) {
  Rng rng(777);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(48));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    size_t pos = 0;
    Advice::Ptr decoded;
    DecodeAdvice(junk.data(), junk.size(), &pos, &decoded);  // Result irrelevant; no crash.
  }
}

TEST(AdviceIoTest, DecodedAdviceExecutesIdentically) {
  Advice::Ptr original = AdviceBuilder()
                             .Observe({{"v", "p.v"}})
                             .Pack(11, BagSpec::First(1), {"p.v"})
                             .Build();
  std::vector<uint8_t> buf;
  EncodeAdvice(&buf, *original);
  size_t pos = 0;
  Advice::Ptr decoded;
  ASSERT_TRUE(DecodeAdvice(buf.data(), buf.size(), &pos, &decoded));

  ExecutionContext c1;
  ExecutionContext c2;
  original->Execute(&c1, Tuple{{"v", Value(int64_t{5})}});
  decoded->Execute(&c2, Tuple{{"v", Value(int64_t{5})}});
  EXPECT_EQ(c1.baggage().Serialize(), c2.baggage().Serialize());
}

}  // namespace
}  // namespace pivot
