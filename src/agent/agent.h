// PTAgent: the per-process Pivot Tracing agent (§5 "Agent").
//
// "A Pivot Tracing agent thread runs in every Pivot Tracing-enabled process
// and awaits instruction via central pub/sub server to weave advice to
// tracepoints. Tuples emitted by advice are accumulated by the local Pivot
// Tracing agent, which performs partial aggregation of tuples according to
// their source query. Agents publish partial query results at a configurable
// interval — by default, one second."
//
// The agent implements EmitSink (wired into the process's ProcessRuntime), so
// advice Emit ops feed it directly in-process. Flush() publishes the interval
// report; the simulator calls it once per simulated second, a real deployment
// would drive it from a timer thread.
//
// Intake is sharded: each emitting thread lands in one of N emission shards
// (own lock, own per-query partial Aggregator), so concurrent tracepoint
// fires on different threads never contend. Flush drains every shard and
// merges partials through Aggregator::AddState — sound because every
// aggregation function has a combiner (Table 3; "for Count, the combiner is
// Sum") — then ships the whole interval as one ReportBatch frame
// (docs/PERFORMANCE.md, "Emission path").

#ifndef PIVOT_SRC_AGENT_AGENT_H_
#define PIVOT_SRC_AGENT_AGENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/agent/protocol.h"
#include "src/bus/message_bus.h"
#include "src/core/aggregation.h"
#include "src/core/context.h"
#include "src/core/tracepoint.h"

namespace pivot {

namespace analysis {
class PropagationRegistry;
}  // namespace analysis

// After this many consecutive empty flushes for a query, the agent publishes
// a kStats heartbeat so the frontend can tell a quiet query from a dead
// agent, then restarts the count (docs/OBSERVABILITY.md).
inline constexpr uint64_t kFlushesPerSuppressedHeartbeat = 10;

// Per-query agent-side accounting row (PTAgent::QueryStats).
struct AgentQueryStats {
  uint64_t query_id = 0;
  uint64_t emitted = 0;             // Tuples advice handed the agent.
  int64_t last_report_micros = -1;  // Last non-empty report; -1 if never.
  uint64_t reports_suppressed = 0;  // Empty flushes since weave.
};

class PTAgent : public EmitSink {
 public:
  // `registry` is the process's tracepoint registry the agent weaves into;
  // `info` identifies the process in reports. The agent subscribes to the
  // command topic immediately. `shard_count` sizes the emission shard array
  // (0 = one shard per hardware thread); 1 reproduces the single-lock
  // intake and is the baseline the bench compares against.
  PTAgent(MessageBus* bus, TracepointRegistry* registry, ProcessInfo info, size_t shard_count = 0);
  ~PTAgent() override;

  PTAgent(const PTAgent&) = delete;
  PTAgent& operator=(const PTAgent&) = delete;

  // Optional: the process runtime this agent serves. Enables self-telemetry —
  // weave-ack/heartbeat timestamps from the runtime clock, and firing the
  // `PTAgent.Flush` meta-tracepoint after each flush (runtime->meta).
  void set_runtime(ProcessRuntime* runtime) { runtime_ = runtime; }

  // Optional: the deployment's propagation graph, consulted by weave
  // re-verification (PT301/PT305 — an agent refuses advice whose joins the
  // topology cannot satisfy). Null skips those passes. Not owned.
  void set_propagation(const analysis::PropagationRegistry* propagation) {
    propagation_ = propagation;
  }

  // EmitSink: advice output lands here and is partially aggregated (or
  // buffered, for streaming queries) per source query. Takes only the calling
  // thread's emission-shard lock — concurrent emitters on different threads
  // never contend with each other or with the control plane.
  void EmitTuple(uint64_t query_id, const Tuple& t) override;

  // Publishes one report per active query covering the interval ending at
  // `now_micros`, then resets interval state. Queries with nothing to report
  // publish nothing (quiet processes stay quiet on the bus) but count the
  // suppression and heartbeat every kFlushesPerSuppressedHeartbeat.
  void Flush(int64_t now_micros);

  // ---- Statistics (used by the overhead/traffic benches) ----

  // Tuples handed to the agent by advice since construction.
  uint64_t emitted_tuples() const;
  // Tuples shipped to the frontend in reports (post partial aggregation).
  uint64_t reported_tuples() const;
  uint64_t reports_published() const;
  // Tuples emitted for queries this agent does not (or no longer) track.
  uint64_t dropped_tuples() const;
  // Weave commands refused because the decoded advice failed re-verification
  // (the eBPF rule: never weave what you didn't verify). Tampered or
  // corrupted wire bytes land here instead of in the tracepoint registry.
  uint64_t weaves_refused() const;

  // Per-query accounting, sorted by query id. `emitted` includes tuples
  // still sitting in shards (not yet drained by Flush).
  std::vector<AgentQueryStats> QueryStats() const;

  // EmitTuple calls that found their shard lock held (try_lock failed and
  // had to block) — should stay ~0 when emitters outnumber shards only
  // transiently. Mirrored by the agent.emit_shard_contention counter.
  uint64_t shard_contentions() const;
  size_t shard_count() const { return shards_.size(); }

  const ProcessInfo& info() const { return info_; }

 private:
  void HandleCommand(const BusMessage& msg);

  // Control-plane view of one woven query, guarded by mu_. `agg`/`buffered`
  // hold the interval's *merged* state: Flush drains every shard's partial
  // aggregate into `agg` via AddState (the Table 3 combiner), so between
  // flushes they only hold what earlier drains deposited.
  struct QueryState {
    ResultPlan plan;
    Aggregator agg{{}, {}};        // Interval partial aggregation (merged).
    std::vector<Tuple> buffered;   // Streaming rows for this interval (merged).
    uint64_t emitted = 0;          // Drained from shards at flush.
    int64_t last_report_micros = -1;         // Last non-empty report.
    uint64_t reports_suppressed = 0;         // Empty flushes, total.
    uint64_t suppressed_since_heartbeat = 0; // Empty flushes since last kStats.
  };

  // Data-plane view of one woven query inside one shard, guarded only by the
  // owning shard's lock.
  struct ShardQueryState {
    bool aggregated = false;
    Aggregator agg{{}, {}};
    std::vector<Tuple> buffered;
    uint64_t emitted = 0;  // Since the last flush drained this shard.
  };

  // One emission shard: its own lock plus per-query partial state. Threads
  // map onto shards by a process-wide thread ordinal, so two threads only
  // share a shard when there are more emitting threads than shards.
  // Lock ordering: mu_ before shard.mu; EmitTuple takes only shard.mu.
  struct Shard {
    std::mutex mu;
    std::map<uint64_t, ShardQueryState> queries;
  };

  MessageBus* bus_;
  TracepointRegistry* registry_;
  ProcessInfo info_;
  ProcessRuntime* runtime_ = nullptr;
  const analysis::PropagationRegistry* propagation_ = nullptr;
  MessageBus::SubscriberId subscription_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::mutex mu_;
  std::map<uint64_t, QueryState> queries_;
  std::atomic<uint64_t> emitted_total_{0};
  std::atomic<uint64_t> reported_total_{0};
  std::atomic<uint64_t> reports_published_{0};
  std::atomic<uint64_t> dropped_total_{0};
  std::atomic<uint64_t> weaves_refused_{0};
  std::atomic<uint64_t> shard_contentions_{0};
};

}  // namespace pivot

#endif  // PIVOT_SRC_AGENT_AGENT_H_
