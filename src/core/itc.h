// Interval tree clock identifiers (Almeida, Baquero, Fonte — OPODIS 2008).
//
// Pivot Tracing versions baggage instances with the ID component of interval
// tree clocks (§5 "Branches and Versioning"): whenever an execution branches,
// the active instance's ID is split into two globally-unique, non-overlapping
// halves; when branches rejoin, the IDs are joined back. Only the ID half of
// ITC is needed (the event/causality half is carried by the baggage contents
// themselves), so that is what this module implements.
//
// An ID is a binary tree over the unit interval: leaf 0 (owns nothing), leaf 1
// (owns the whole subinterval), or an interior node splitting the interval in
// half. Trees are immutable and structurally shared; ItcId is a cheap value
// type.

#ifndef PIVOT_SRC_CORE_ITC_H_
#define PIVOT_SRC_CORE_ITC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace pivot {

class ItcId {
 public:
  // The zero ID (owns no part of the interval).
  ItcId();

  // The seed ID (owns the entire interval) — the root request starts here.
  static ItcId Seed();

  bool IsZero() const;
  bool IsOne() const;

  // Tree structure accessors (used by the event component's fill/grow).
  bool IsLeaf() const;
  ItcId Left() const;   // Requires !IsLeaf().
  ItcId Right() const;  // Requires !IsLeaf().

  // Splits this ID into two disjoint non-zero halves whose join equals this
  // ID. Splitting the zero ID yields (zero, zero) per the ITC paper; callers
  // in this library never split zero (the active instance always owns a
  // non-zero ID).
  std::pair<ItcId, ItcId> Split() const;

  // The join (interval union) of two IDs. IDs produced by Split are disjoint
  // and join losslessly; joining overlapping IDs is a protocol violation that
  // this implementation resolves by interval union (see Overlaps()).
  static ItcId Join(const ItcId& a, const ItcId& b);

  // True if the two IDs own any common subinterval. Correct baggage usage
  // never produces overlapping active IDs; tests assert this invariant.
  static bool Overlaps(const ItcId& a, const ItcId& b);

  // Structural equality after normalization (normal forms are canonical).
  bool operator==(const ItcId& other) const;
  bool operator!=(const ItcId& other) const { return !(*this == other); }

  // Total order for use as a map key / deduplication (lexicographic over the
  // canonical encoding).
  bool operator<(const ItcId& other) const;

  // Compact binary encoding appended to `out`; decoding consumes from
  // data[*pos..size). The encoding is canonical: equal IDs encode equally.
  void Encode(std::vector<uint8_t>* out) const;
  static bool Decode(const uint8_t* data, size_t size, size_t* pos, ItcId* out);

  // "(1, 0)"-style rendering matching the ITC literature.
  std::string ToString() const;

  // Number of nodes in the tree (diagnostics; grows with split depth).
  size_t TreeSize() const;

  // Implementation detail exposed for the .cc's free helper functions; not
  // part of the public API surface.
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

 private:
  explicit ItcId(NodePtr root) : root_(std::move(root)) {}

  NodePtr root_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_ITC_H_
