// Structured diagnostics for the static analysis layer (AdviceVerifier /
// QueryLinter, docs/ANALYSIS.md).
//
// Every finding carries a stable PTxxx code, a severity, and a location
// (tracepoint + op index into the advice program). Codes are part of the
// public surface: tests assert them, docs/ANALYSIS.md catalogues them, and
// install-time enforcement keys off the severity (errors always reject,
// warnings reject unless forced, infos never block).

#ifndef PIVOT_SRC_ANALYSIS_DIAGNOSTICS_H_
#define PIVOT_SRC_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pivot {
namespace analysis {

enum class Severity : uint8_t { kInfo = 0, kWarning = 1, kError = 2 };

// "info" / "warning" / "error".
const char* SeverityName(Severity s);

struct Diagnostic {
  std::string code;        // Stable identifier, e.g. "PT102".
  Severity severity = Severity::kError;
  std::string tracepoint;  // Advice location; empty for query-level findings.
  int op_index = -1;       // Index into the advice op list; -1 = whole program.
  std::string message;

  // "error PT102 [DN.incr op#3]: ..." rendering.
  std::string ToString() const;
};

// An ordered collection of diagnostics from one verify/lint pass.
class Report {
 public:
  void Add(Diagnostic d) { diags_.push_back(std::move(d)); }
  void Add(std::string code, Severity severity, std::string tracepoint, int op_index,
           std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  bool empty() const { return diags_.empty(); }

  size_t error_count() const;
  size_t warning_count() const;
  bool has_errors() const { return error_count() > 0; }
  bool has_warnings() const { return warning_count() > 0; }

  // True if any diagnostic carries `code` (test and tooling convenience).
  bool Has(std::string_view code) const;

  void MergeFrom(const Report& other);

  // One diagnostic per line; empty string for a clean report.
  std::string ToString() const;

 private:
  std::vector<Diagnostic> diags_;
};

}  // namespace analysis
}  // namespace pivot

#endif  // PIVOT_SRC_ANALYSIS_DIAGNOSTICS_H_
