// The causality-aware static analysis layer: the system propagation graph
// (src/analysis/causality_graph.h), the reachability primitives and topology
// audit (src/analysis/reachability.h), and the PT30x install/weave gates.
//
// The headline scenario is the one the paper hit in §6: a happened-before
// join whose baggage can never arrive. The seed behavior (no propagation
// model) installs such a query cleanly and silently returns zero tuples
// forever; with the model declared, the install is rejected with PT301 and a
// tampered weave carrying the same join is refused by every agent.

#include <gtest/gtest.h>

#include "src/agent/protocol.h"
#include "src/analysis/causality_graph.h"
#include "src/analysis/reachability.h"
#include "src/hadoop/cluster.h"
#include "src/hadoop/workloads.h"
#include "src/simsys/sim_world.h"
#include "src/telemetry/metrics.h"

namespace pivot {
namespace {

using analysis::AuditTopology;
using analysis::PropagationEdge;
using analysis::PropagationRegistry;

TEST(PropagationRegistryTest, DeclarationsObservationsAndAnchors) {
  PropagationRegistry g;
  EXPECT_TRUE(g.empty());
  g.DeclareComponent("client", /*client_entry=*/true);
  // Components alone are not a model: the reachability passes stay off.
  EXPECT_TRUE(g.empty());

  analysis::DeclareRpcBoundary(&g, "client", "NN", "ClientProtocol");
  EXPECT_FALSE(g.empty());
  EXPECT_EQ(g.Edges().size(), 2u);  // rpc + rpc-response, both forwarding.
  analysis::DeclareRpcBoundary(&g, "client", "NN", "ClientProtocol");
  EXPECT_EQ(g.Edges().size(), 2u);  // Deduplicated by value.
  for (const PropagationEdge& e : g.Edges()) {
    EXPECT_TRUE(e.forwards_baggage);
  }

  g.AnchorTracepoint("NN.GetBlockLocations", "NN");
  g.AnchorTracepoint("multi.tp", "");  // Empty component: ignored.
  EXPECT_EQ(g.ComponentOf("NN.GetBlockLocations"), "NN");
  EXPECT_EQ(g.ComponentOf("multi.tp"), "");
  EXPECT_EQ(g.ComponentOf("never.heard.of"), "");

  g.ObserveEdge("client", "NN", "rpc");
  g.ObserveEdge("client", "NN", "rpc");  // Set semantics.
  g.ObserveEdge("", "NN", "rpc");        // Unmodelled endpoint: ignored.
  EXPECT_EQ(g.Observed().size(), 1u);

  std::string text = g.RenderText();
  EXPECT_NE(text.find("client  [client entry]"), std::string::npos);
  EXPECT_NE(text.find("NN.GetBlockLocations @ NN"), std::string::npos);
}

TEST(ReachabilityTest, ForwardingVsAnyEdgeAndLongestPath) {
  PropagationRegistry g;
  g.DeclareComponent("client", /*client_entry=*/true);
  g.DeclareEdge({"client", "FE", "rpc", "front door", /*forwards_baggage=*/true});
  g.DeclareEdge({"FE", "BE", "queue", "thread pool", /*forwards_baggage=*/false});
  g.DeclareEdge({"BE", "DB", "rpc", "store", /*forwards_baggage=*/true});

  EXPECT_TRUE(analysis::ForwardingReachable(g, "client", "FE"));
  EXPECT_TRUE(analysis::ForwardingReachable(g, "BE", "BE"));  // Reflexive.
  EXPECT_FALSE(analysis::ForwardingReachable(g, "client", "BE"));  // Queue drops.
  EXPECT_FALSE(analysis::ForwardingReachable(g, "client", "DB"));
  EXPECT_TRUE(analysis::AnyReachable(g, "client", "DB"));

  EXPECT_TRUE(analysis::HasClientEntry(g));
  EXPECT_TRUE(analysis::ReachableFromEntry(g, "client"));
  EXPECT_TRUE(analysis::ReachableFromEntry(g, "DB"));  // Any-edge reachability.
  EXPECT_FALSE(analysis::ReachableFromEntry(g, "ISLAND"));

  EXPECT_EQ(analysis::LongestForwardingPathFrom(g, "client"), 1u);
  EXPECT_EQ(analysis::LongestForwardingPathFrom(g, "BE"), 1u);
  EXPECT_EQ(analysis::LongestForwardingPathFrom(g, "DB"), 0u);
}

TEST(ReachabilityTest, AuditFlagsDropsUnreachablesAndUndeclared) {
  PropagationRegistry g;
  g.DeclareComponent("client", /*client_entry=*/true);
  g.DeclareEdge({"client", "FE", "rpc", "front door", /*forwards_baggage=*/true});
  g.DeclareEdge({"FE", "BE", "queue", "thread pool", /*forwards_baggage=*/false});
  g.AnchorTracepoint("island.tp", "ISLAND");
  g.ObserveEdge("FE", "CACHE", "rpc");  // Crossed at runtime, never declared.

  analysis::Report audit = AuditTopology(g);
  EXPECT_TRUE(audit.Has("PT302")) << audit.ToString();  // Baggage-dropping queue.
  EXPECT_TRUE(audit.Has("PT303")) << audit.ToString();  // ISLAND unreachable.
  EXPECT_TRUE(audit.Has("PT304")) << audit.ToString();  // FE -> CACHE undeclared.
  EXPECT_FALSE(audit.has_errors());  // The audit warns; per-query passes error.
}

TEST(ReachabilityTest, AuditSkipsPt303WithoutDeclaredEntries) {
  PropagationRegistry g;
  g.DeclareEdge({"FE", "BE", "rpc", "", /*forwards_baggage=*/true});
  g.AnchorTracepoint("island.tp", "ISLAND");
  EXPECT_FALSE(AuditTopology(g).Has("PT303"));
}

// Two processes in different components with no baggage-forwarding path
// between them — the minimal deployment where a `->` join can never deliver.
struct TwoTierWorld {
  SimWorld world;
  SimProcess* a = nullptr;
  SimProcess* b = nullptr;
  Tracepoint* src = nullptr;
  Tracepoint* dst = nullptr;

  TwoTierWorld() {
    SimHost* ha = world.AddHost("HA", 200e6, 125e6);
    SimHost* hb = world.AddHost("HB", 200e6, 125e6);
    a = world.AddProcess(ha, "frontend", "A");
    b = world.AddProcess(hb, "backend", "B");
    TracepointDef s;
    s.name = "src.tp";
    s.exports = {"x"};
    s.component = "A";
    src = a->DefineTracepoint(s);
    TracepointDef d;
    d.name = "dst.tp";
    d.exports = {"y"};
    d.component = "B";
    dst = b->DefineTracepoint(d);
  }
};

constexpr const char* kUnsatisfiableJoin =
    "From d In dst.tp Join s In src.tp On s -> d GroupBy s.x Select s.x, COUNT";

// The seed behavior this PR exists to kill: with no propagation model the
// join installs cleanly, the workload runs, and the query returns nothing —
// silently, forever.
TEST(CausalityGateTest, WithoutModelUnsatisfiableJoinInstallsAndReturnsNothing) {
  TwoTierWorld t;
  ASSERT_TRUE(t.world.propagation().empty());  // No boundaries declared.

  Result<uint64_t> q = t.world.frontend()->Install(kUnsatisfiableJoin);
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  for (int i = 0; i < 10; ++i) {
    CtxPtr ca = t.world.NewRequest(t.a);
    t.src->Invoke(ca.get(), {{"x", Value(int64_t{i})}});
    // The "request" reaches the backend with no baggage (the boundary between
    // the tiers does not forward it): a fresh, causally-unrelated context.
    CtxPtr cb = t.world.NewRequest(t.b);
    t.dst->Invoke(cb.get(), {{"y", Value(int64_t{i})}});
  }
  t.world.StartAgentFlushLoop(3 * kMicrosPerSecond);
  t.world.RunUntil(3 * kMicrosPerSecond);
  EXPECT_TRUE(t.world.frontend()->Results(*q).empty());
}

TEST(CausalityGateTest, UnsatisfiableJoinRejectedAtInstallAndNotForceable) {
  TwoTierWorld t;
  PropagationRegistry& g = t.world.propagation();
  g.DeclareComponent("A", /*client_entry=*/true);
  // The only boundary between the tiers drops baggage: a causal path exists
  // (so PT302 names it) but the join is unsatisfiable (PT301).
  g.DeclareEdge({"A", "B", "queue", "tier handoff", /*forwards_baggage=*/false});

  Result<uint64_t> q = t.world.frontend()->Install(kUnsatisfiableJoin);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("PT301"), std::string::npos);
  EXPECT_NE(q.status().ToString().find("PT302"), std::string::npos);

  // force waives warnings, never errors: PT301 still rejects.
  Frontend::InstallOptions force;
  force.force = true;
  q = t.world.frontend()->Install(kUnsatisfiableJoin, force);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("PT301"), std::string::npos);
}

TEST(CausalityGateTest, EntryUnreachableWarningIsForceable) {
  TwoTierWorld t;
  PropagationRegistry& g = t.world.propagation();
  g.DeclareComponent("A", /*client_entry=*/true);
  // Model present, but nothing connects to B: a query over dst.tp draws
  // PT303 (warning severity — installable with force).
  g.DeclareEdge({"A", "C", "rpc", "elsewhere", /*forwards_baggage=*/true});

  const char* kLocal = "From d In dst.tp GroupBy d.y Select d.y, COUNT";
  Result<uint64_t> q = t.world.frontend()->Install(kLocal);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("PT303"), std::string::npos);

  Frontend::InstallOptions force;
  force.force = true;
  EXPECT_TRUE(t.world.frontend()->Install(kLocal, force).ok());
}

TEST(CausalityGateTest, BaggageBudgetExceededIsErrorAndNotForceable) {
  TwoTierWorld t;
  PropagationRegistry& g = t.world.propagation();
  g.DeclareComponent("A", /*client_entry=*/true);
  // Forwarding chain A -> B -> C: an All-semantics bag packed at A can cross
  // two boundaries, so its growth bound is 2 × width.
  g.DeclareEdge({"A", "B", "rpc", "hop1", /*forwards_baggage=*/true});
  g.DeclareEdge({"B", "C", "rpc", "hop2", /*forwards_baggage=*/true});

  // A plain (non-First) join packs with All semantics — the Fig 10 shape.
  Frontend::InstallOptions tight;
  tight.baggage_budget = 1;
  Result<uint64_t> q = t.world.frontend()->Install(kUnsatisfiableJoin, tight);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("PT305"), std::string::npos);

  tight.force = true;  // PT305 is an error: force does not help.
  q = t.world.frontend()->Install(kUnsatisfiableJoin, tight);
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("PT305"), std::string::npos);

  // Under the default budget the same query is fine (the join itself is
  // satisfiable here: A -> B forwards).
  EXPECT_TRUE(t.world.frontend()->Install(kUnsatisfiableJoin).ok());
}

TEST(CausalityGateTest, TamperedWeaveWithUnsatisfiableJoinRefusedByAgents) {
  TwoTierWorld t;
  PropagationRegistry& g = t.world.propagation();
  g.DeclareComponent("A", /*client_entry=*/true);
  g.DeclareEdge({"A", "B", "queue", "tier handoff", /*forwards_baggage=*/false});

  telemetry::Counter& refused = telemetry::Metrics().GetCounter("agent.weaves_refused");
  uint64_t before = refused.value();

  // Hand-built weave that skips the frontend gate entirely: published
  // straight onto the command topic, as a compromised frontend would.
  WeaveCommand cmd;
  cmd.query_id = 77;
  const BagKey bag = 77 * kBagKeysPerQuery;
  cmd.advice.emplace_back("src.tp", AdviceBuilder()
                                        .Observe({{"x", "s.x"}})
                                        .Pack(bag, BagSpec::First(), {"s.x"})
                                        .Build());
  cmd.advice.emplace_back("dst.tp", AdviceBuilder()
                                        .Unpack(bag)
                                        .Observe({{"y", "d.y"}})
                                        .Emit(77, {"s.x", "d.y"})
                                        .Build());
  t.world.bus()->Publish(BusMessage{kCommandTopic, EncodeWeave(cmd)});

  // Component resolution on the agent side is schema-less: it comes from the
  // registry anchors DefineTracepoint recorded. Both agents must refuse.
  EXPECT_TRUE(t.a->registry()->WovenQueries().empty());
  EXPECT_TRUE(t.b->registry()->WovenQueries().empty());
  EXPECT_EQ(t.a->agent()->weaves_refused(), 1u);
  EXPECT_EQ(t.b->agent()->weaves_refused(), 1u);
  EXPECT_EQ(refused.value() - before, 2u);
}

// Acceptance check for the stock deployment: every boundary the simulation
// actually crosses is declared (zero PT304), nothing drops baggage (zero
// PT302), and every anchored component serves client requests (zero PT303).
TEST(StockTopologyTest, FullClusterAuditIsCleanAfterMixedWorkload) {
  HadoopClusterConfig config;
  config.seed = 7;
  HadoopCluster cluster(config);
  constexpr int64_t kHorizon = 5 * kMicrosPerSecond;

  HdfsReadWorkload hdfs(cluster.AddClient(cluster.worker(0), "FSread4m"), cluster.namenode(),
                        4 << 20, 20 * kMicrosPerMilli, /*stress_test=*/true, 11);
  hdfs.Start(kHorizon);
  HbaseWorkload gets(cluster.AddClient(cluster.worker(1), "Hget"), cluster.hbase().servers(),
                     HbaseWorkload::Op::kGet, 5 * kMicrosPerMilli, 21);
  gets.Start(kHorizon);
  HbaseWorkload puts(cluster.AddClient(cluster.worker(2), "Hput"), cluster.hbase().servers(),
                     HbaseWorkload::Op::kPut, 2 * kMicrosPerMilli, 31);
  puts.Start(kHorizon);
  MapReduceWorkload mr(cluster.AddClient(cluster.master_host(), "MRsort10g"),
                       cluster.mapreduce(), "MRsort10g", 64 << 20,
                       cluster.config().mapreduce);
  mr.Start(kHorizon);

  cluster.world()->RunUntil(kHorizon);

  const PropagationRegistry& g = cluster.world()->propagation();
  EXPECT_FALSE(g.Observed().empty());
  analysis::Report audit = AuditTopology(g);
  EXPECT_FALSE(audit.Has("PT304")) << audit.ToString();
  EXPECT_FALSE(audit.Has("PT302")) << audit.ToString();
  EXPECT_FALSE(audit.Has("PT303")) << audit.ToString();
  EXPECT_TRUE(audit.empty()) << audit.ToString();
}

// Diagnostic formatting is public surface (docs/ANALYSIS.md, pivot_lint
// output, tests that grep for codes): pin the exact PT301 rendering.
TEST(DiagnosticFormatTest, Pt301RenderingPinned) {
  TwoTierWorld t;
  PropagationRegistry& g = t.world.propagation();
  g.DeclareEdge({"B", "A", "rpc", "wrong way", /*forwards_baggage=*/true});

  Result<analysis::QueryLintResult> lint = t.world.frontend()->Lint(kUnsatisfiableJoin);
  ASSERT_TRUE(lint.ok());
  const analysis::Diagnostic* pt301 = nullptr;
  for (const analysis::Diagnostic& d : lint->report.diagnostics()) {
    if (d.code == "PT301") {
      pt301 = &d;
    }
  }
  ASSERT_NE(pt301, nullptr) << lint->report.ToString();
  // Fresh frontend lints with prospective query id 1; the packer is stage 0.
  EXPECT_EQ(pt301->ToString(),
            "error PT301 [dst.tp]: unsatisfiable happened-before join: no "
            "baggage-forwarding path connects {A} to 'B', so bag " +
                std::to_string(1 * kBagKeysPerQuery) +
                " can never arrive here — the query would install cleanly and silently "
                "return nothing");
}

}  // namespace
}  // namespace pivot
