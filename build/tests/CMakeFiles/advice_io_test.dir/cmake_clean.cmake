file(REMOVE_RECURSE
  "CMakeFiles/advice_io_test.dir/advice_io_test.cc.o"
  "CMakeFiles/advice_io_test.dir/advice_io_test.cc.o.d"
  "advice_io_test"
  "advice_io_test.pdb"
  "advice_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advice_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
