// Direct PTAgent behaviors: weave/unweave via bus commands, partial
// aggregation semantics, interval flush bookkeeping, robustness to malformed
// and duplicate commands.

#include <gtest/gtest.h>

#include "src/agent/agent.h"
#include "src/bus/message_bus.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() {
    runtime_.info.host = "A";
    runtime_.info.process_name = "proc";
    runtime_.now_micros = [this] { return clock_.now; };
    agent_ = std::make_unique<PTAgent>(&bus_, &registry_, runtime_.info);
    runtime_.sink = agent_.get();
    tp_ = *registry_.Define(Def("X", {"v"}));
    // Flushes arrive as kBatch frames (one per flush); keep accepting bare
    // kReport frames too so the collector matches the decoder's full surface.
    reports_sub_ = bus_.Subscribe(kReportTopic, [this](const BusMessage& msg) {
      Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
      if (!decoded.ok()) {
        return;
      }
      if (decoded->type == ControlMessageType::kReport) {
        reports_.push_back(decoded->report);
      } else if (decoded->type == ControlMessageType::kBatch) {
        for (AgentReport& r : decoded->batch.reports) {
          reports_.push_back(std::move(r));
        }
      }
    });
  }

  ~AgentTest() override { bus_.Unsubscribe(reports_sub_); }

  WeaveCommand CountCommand(uint64_t id) {
    WeaveCommand cmd;
    cmd.query_id = id;
    cmd.advice.emplace_back(
        "X", AdviceBuilder().Observe({{"v", "x.v"}}).Emit(id, {}).Build());
    cmd.plan.aggregated = true;
    cmd.plan.aggs = {{AggFn::kCount, "", "COUNT", false}};
    cmd.plan.output_columns = {"COUNT"};
    return cmd;
  }

  void Fire(int64_t v) {
    ExecutionContext ctx(&runtime_);
    tp_->Invoke(&ctx, {{"v", Value(v)}});
  }

  ManualClock clock_;
  MessageBus bus_;
  TracepointRegistry registry_;
  ProcessRuntime runtime_;
  std::unique_ptr<PTAgent> agent_;
  Tracepoint* tp_;
  MessageBus::SubscriberId reports_sub_;
  std::vector<AgentReport> reports_;
};

TEST_F(AgentTest, AnnouncesItselfOnStartup) {
  // The constructor's hello is a report-topic message (consumed by the
  // frontend, which we stand in for here).
  MessageBus bus2;
  bool hello_seen = false;
  bus2.Subscribe(kReportTopic, [&](const BusMessage& msg) {
    Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
    hello_seen = decoded.ok() && decoded->type == ControlMessageType::kHello;
  });
  TracepointRegistry registry2;
  PTAgent agent2(&bus2, &registry2, ProcessInfo{"B", "p2", 3});
  EXPECT_TRUE(hello_seen);
}

TEST_F(AgentTest, WeaveCommandActivatesTracepoint) {
  EXPECT_FALSE(tp_->enabled());
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(CountCommand(1))});
  EXPECT_TRUE(tp_->enabled());
}

TEST_F(AgentTest, AggregatesPerIntervalAndResets) {
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(CountCommand(1))});
  Fire(1);
  Fire(2);
  agent_->Flush(1'000'000);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0].query_id, 1u);
  EXPECT_EQ(reports_[0].host, "A");
  EXPECT_EQ(reports_[0].timestamp_micros, 1'000'000);
  ASSERT_EQ(reports_[0].tuples.size(), 1u);
  EXPECT_EQ(reports_[0].tuples[0].Get("COUNT").int_value(), 2);

  // Interval state resets: a second flush with no activity reports nothing.
  agent_->Flush(2'000'000);
  EXPECT_EQ(reports_.size(), 1u);

  Fire(3);
  agent_->Flush(3'000'000);
  ASSERT_EQ(reports_.size(), 2u);
  EXPECT_EQ(reports_[1].tuples[0].Get("COUNT").int_value(), 1);
}

TEST_F(AgentTest, DuplicateWeaveIgnored) {
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(CountCommand(1))});
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(CountCommand(1))});
  Fire(1);
  agent_->Flush(1'000'000);
  // Were it woven twice, COUNT would be 2.
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_EQ(reports_[0].tuples[0].Get("COUNT").int_value(), 1);
}

TEST_F(AgentTest, UnweaveStopsEmissionAndReporting) {
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(CountCommand(1))});
  Fire(1);
  bus_.Publish(BusMessage{kCommandTopic, EncodeUnweave(1)});
  EXPECT_FALSE(tp_->enabled());
  Fire(2);
  agent_->Flush(1'000'000);
  // The pre-unweave tuple is dropped with the query state.
  EXPECT_TRUE(reports_.empty());
}

TEST_F(AgentTest, MalformedCommandIgnored) {
  bus_.Publish(BusMessage{kCommandTopic, {0xDE, 0xAD, 0xBE, 0xEF}});
  bus_.Publish(BusMessage{kCommandTopic, {}});
  EXPECT_FALSE(tp_->enabled());  // Still sane.
}

TEST_F(AgentTest, EmitForUnknownQueryDropped) {
  // Advice emitting to a query the agent does not know (e.g. unwoven race).
  agent_->EmitTuple(999, Tuple{{"v", Value(int64_t{1})}});
  agent_->Flush(1'000'000);
  EXPECT_TRUE(reports_.empty());
  EXPECT_EQ(agent_->emitted_tuples(), 0u);
}

TEST_F(AgentTest, StreamingQueryBuffersRawRows) {
  WeaveCommand cmd;
  cmd.query_id = 5;
  cmd.advice.emplace_back("X",
                          AdviceBuilder().Observe({{"v", "x.v"}}).Emit(5, {"x.v"}).Build());
  cmd.plan.aggregated = false;
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(cmd)});

  Fire(7);
  Fire(8);
  agent_->Flush(1'000'000);
  ASSERT_EQ(reports_.size(), 1u);
  EXPECT_FALSE(reports_[0].aggregated);
  ASSERT_EQ(reports_[0].tuples.size(), 2u);
  EXPECT_EQ(reports_[0].tuples[0].Get("x.v").int_value(), 7);
}

TEST_F(AgentTest, StatCountersTrackTraffic) {
  bus_.Publish(BusMessage{kCommandTopic, EncodeWeave(CountCommand(1))});
  for (int i = 0; i < 10; ++i) {
    Fire(i);
  }
  agent_->Flush(1'000'000);
  EXPECT_EQ(agent_->emitted_tuples(), 10u);
  EXPECT_EQ(agent_->reported_tuples(), 1u);
  EXPECT_EQ(agent_->reports_published(), 1u);
}

}  // namespace
}  // namespace pivot
