#include <gtest/gtest.h>

#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

HadoopClusterConfig MrConfig4() {
  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 64;
  config.deploy_hbase = false;
  config.deploy_mapreduce = true;
  config.mapreduce.split_bytes = 8 << 20;  // Small splits keep tests fast.
  config.mapreduce.reducers = 2;
  return config;
}

TEST(MapReduceTest, JobRunsToCompletion) {
  HadoopCluster cluster(MrConfig4());
  SimProcess* client = cluster.AddClient(cluster.master_host(), "MRsortTest");

  bool completed = false;
  CtxPtr ctx = cluster.world()->NewRequest(client);
  cluster.mapreduce()->SubmitJob(client, ctx, "MRsortTest", 32 << 20,
                                 cluster.config().mapreduce, [&](CtxPtr) { completed = true; });
  cluster.world()->env()->RunAll();
  EXPECT_TRUE(completed);
}

TEST(MapReduceTest, TaskCountsMatchInput) {
  HadoopCluster cluster(MrConfig4());
  Result<uint64_t> q_maps = cluster.world()->frontend()->Install(
      "From m In MR.MapTaskDone Select COUNT");
  Result<uint64_t> q_reds = cluster.world()->frontend()->Install(
      "From r In MR.ReduceTaskDone Select COUNT");
  ASSERT_TRUE(q_maps.ok());
  ASSERT_TRUE(q_reds.ok());

  SimProcess* client = cluster.AddClient(cluster.master_host(), "MRsortTest");
  CtxPtr ctx = cluster.world()->NewRequest(client);
  cluster.mapreduce()->SubmitJob(client, ctx, "MRsortTest", 32 << 20,
                                 cluster.config().mapreduce, nullptr);
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  // 32 MB / 8 MB splits = 4 map tasks; 2 reducers.
  EXPECT_EQ(cluster.world()->frontend()->Results(*q_maps)[0].Get("COUNT").int_value(), 4);
  EXPECT_EQ(cluster.world()->frontend()->Results(*q_reds)[0].Get("COUNT").int_value(), 2);
}

TEST(MapReduceTest, BaggageAttributesTaskIoToJobClient) {
  // The heart of Fig 1b: DataNode traffic grouped by the *top-level client*,
  // even though the reads are issued by MRTask processes on other machines.
  HadoopCluster cluster(MrConfig4());
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SimProcess* client = cluster.AddClient(cluster.master_host(), "MRsort10g");
  CtxPtr ctx = cluster.world()->NewRequest(client);
  cluster.mapreduce()->SubmitJob(client, ctx, "MRsort10g", 32 << 20,
                                 cluster.config().mapreduce, nullptr);
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  auto results = cluster.world()->frontend()->Results(*q);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].Get("cl.procName").string_value(), "MRsort10g");
  // All map input reads: 4 tasks x 8 MB.
  EXPECT_EQ(results[0].Get("SUM(incr.delta)").int_value(), 32 << 20);
}

TEST(MapReduceTest, DiskCategoriesCoverAllPhases) {
  HadoopCluster cluster(MrConfig4());
  Result<uint64_t> q = cluster.world()->frontend()->Install(
      "From w In FileOutputStream.write GroupBy w.category "
      "Select w.category, SUM(w.delta)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();

  SimProcess* client = cluster.AddClient(cluster.master_host(), "MRsortTest");
  CtxPtr ctx = cluster.world()->NewRequest(client);
  cluster.mapreduce()->SubmitJob(client, ctx, "MRsortTest", 32 << 20,
                                 cluster.config().mapreduce, nullptr);
  cluster.world()->env()->RunAll();
  cluster.world()->StartAgentFlushLoop(cluster.world()->env()->now_micros() + kMicrosPerSecond);
  cluster.world()->env()->RunAll();

  std::map<std::string, int64_t> by_category;
  for (const Tuple& row : cluster.world()->frontend()->Results(*q)) {
    by_category[row.Get("w.category").string_value()] = row.Get("SUM(w.delta)").int_value();
  }
  EXPECT_GT(by_category["Map"], 0);
  EXPECT_GT(by_category["Shuffle"], 0);
  EXPECT_GT(by_category["HDFS"], 0);  // Reduce output written through HDFS.
}

TEST(MapReduceTest, WorkloadLoopSubmitsJobsBackToBack) {
  HadoopCluster cluster(MrConfig4());
  SimProcess* client = cluster.AddClient(cluster.master_host(), "MRsortTest");
  MrConfig mr = cluster.config().mapreduce;
  MapReduceWorkload workload(client, cluster.mapreduce(), "MRsortTest", 16 << 20, mr);
  workload.Start(20 * kMicrosPerSecond);
  cluster.world()->env()->RunAll();
  EXPECT_GE(workload.jobs_completed(), 2);
}

TEST(YarnTest, ContainerCapacityBoundsParallelism) {
  SimWorld world;
  SimHost* host = world.AddHost("A", 200e6, 125e6);
  SimProcess* nm_proc = world.AddProcess(host, "NodeManager");
  YarnNodeManager nm(nm_proc, /*max_containers=*/2);

  int running_peak = 0;
  int running_now = 0;
  int finished = 0;
  for (int i = 0; i < 6; ++i) {
    nm.LaunchContainer("job", nullptr, [&](std::function<void()> release) {
      ++running_now;
      running_peak = std::max(running_peak, running_now);
      world.env()->Schedule(1000, [&, release = std::move(release)] {
        --running_now;
        ++finished;
        release();
      });
    });
  }
  world.env()->RunAll();
  EXPECT_EQ(finished, 6);
  EXPECT_LE(running_peak, 2);
}

}  // namespace
}  // namespace pivot
