# Empty dependencies file for bench_fig1_disk_usage.
# This may be replaced when dependencies are built.
