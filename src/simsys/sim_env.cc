#include "src/simsys/sim_env.h"

#include <cassert>
#include <utility>

namespace pivot {

void SimEnvironment::ScheduleAt(int64_t time_micros, std::function<void()> fn) {
  if (time_micros < now_) {
    time_micros = now_;
  }
  queue_.push(Event{time_micros, next_seq_++, std::move(fn)});
}

bool SimEnvironment::Step() {
  if (queue_.empty()) {
    return false;
  }
  // priority_queue::top is const; the function object must be moved out via
  // const_cast (standard idiom; the element is popped immediately after).
  Event& top = const_cast<Event&>(queue_.top());
  int64_t time = top.time;
  std::function<void()> fn = std::move(top.fn);
  queue_.pop();
  assert(time >= now_);
  now_ = time;
  ++executed_;
  fn();
  return true;
}

void SimEnvironment::RunUntil(int64_t time_micros) {
  while (!queue_.empty() && queue_.top().time <= time_micros) {
    Step();
  }
  if (now_ < time_micros) {
    now_ = time_micros;
  }
}

void SimEnvironment::RunAll() {
  while (Step()) {
  }
}

}  // namespace pivot
