file(REMOVE_RECURSE
  "CMakeFiles/simsys_test.dir/simsys_test.cc.o"
  "CMakeFiles/simsys_test.dir/simsys_test.cc.o.d"
  "simsys_test"
  "simsys_test.pdb"
  "simsys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simsys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
