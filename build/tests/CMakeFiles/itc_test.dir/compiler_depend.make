# Empty compiler generated dependencies file for itc_test.
# This may be replaced when dependencies are built.
