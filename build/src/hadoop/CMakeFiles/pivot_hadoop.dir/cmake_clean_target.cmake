file(REMOVE_RECURSE
  "libpivot_hadoop.a"
)
