#include "src/core/itc_stamp.h"

#include <algorithm>
#include <cassert>

#include "src/common/varint.h"

namespace pivot {

// Leaf: left == right == nullptr, counter n. Node: both children set, base
// counter n (children encode additional counts relative to n). Trees are
// normalized: an interior node's children are never both the same leaf, and
// min(left, right) == 0.
struct ItcEvent::Node {
  uint64_t n = 0;
  NodePtr left;
  NodePtr right;

  bool is_leaf() const { return left == nullptr; }
};

namespace {

using Node = ItcEvent::Node;
using NodePtr = ItcEvent::NodePtr;

NodePtr MakeLeaf(uint64_t n) {
  auto node = std::make_shared<Node>();
  node->n = n;
  return node;
}

// Adds m to the root counter.
NodePtr Lift(const NodePtr& e, uint64_t m) {
  if (m == 0) {
    return e;
  }
  auto node = std::make_shared<Node>(*e);
  node->n += m;
  return node;
}

// Subtracts m from the root counter (requires n >= m).
NodePtr Sink(const NodePtr& e, uint64_t m) {
  if (m == 0) {
    return e;
  }
  assert(e->n >= m);
  auto node = std::make_shared<Node>(*e);
  node->n -= m;
  return node;
}

uint64_t MinOf(const NodePtr& e) {
  if (e->is_leaf()) {
    return e->n;
  }
  return e->n + std::min(MinOf(e->left), MinOf(e->right));
}

uint64_t MaxOf(const NodePtr& e) {
  if (e->is_leaf()) {
    return e->n;
  }
  return e->n + std::max(MaxOf(e->left), MaxOf(e->right));
}

// norm: collapse equal leaf children, lift the common minimum into the base.
NodePtr Norm(uint64_t n, NodePtr l, NodePtr r) {
  if (l->is_leaf() && r->is_leaf() && l->n == r->n) {
    return MakeLeaf(n + l->n);
  }
  uint64_t m = std::min(MinOf(l), MinOf(r));
  auto node = std::make_shared<Node>();
  node->n = n + m;
  node->left = Sink(l, m);
  node->right = Sink(r, m);
  return node;
}

bool LeqNodes(const NodePtr& a, const NodePtr& b) {
  if (a->is_leaf()) {
    // Pointwise: leaf n1 <= e2 everywhere iff n1 <= min(e2).
    return a->n <= MinOf(b);
  }
  if (b->is_leaf()) {
    return MaxOf(a) <= b->n;
  }
  // Compare the base plus each half, lifting the bases into the children.
  return a->n <= b->n && LeqNodes(Lift(a->left, a->n), Lift(b->left, b->n)) &&
         LeqNodes(Lift(a->right, a->n), Lift(b->right, b->n));
}

NodePtr JoinNodes(const NodePtr& a, const NodePtr& b) {
  if (a->is_leaf() && b->is_leaf()) {
    return MakeLeaf(std::max(a->n, b->n));
  }
  if (a->is_leaf()) {
    auto expanded = std::make_shared<Node>();
    expanded->n = a->n;
    expanded->left = MakeLeaf(0);
    expanded->right = MakeLeaf(0);
    return JoinNodes(expanded, b);
  }
  if (b->is_leaf()) {
    auto expanded = std::make_shared<Node>();
    expanded->n = b->n;
    expanded->left = MakeLeaf(0);
    expanded->right = MakeLeaf(0);
    return JoinNodes(a, expanded);
  }
  if (a->n > b->n) {
    return JoinNodes(b, a);
  }
  uint64_t d = b->n - a->n;
  return Norm(a->n, JoinNodes(a->left, Lift(b->left, d)),
              JoinNodes(a->right, Lift(b->right, d)));
}

// ---- fill / grow (the `event` operation) ----

NodePtr Fill(const ItcId& id, const NodePtr& e) {
  if (id.IsZero()) {
    return e;
  }
  if (id.IsOne()) {
    return MakeLeaf(MaxOf(e));
  }
  if (e->is_leaf()) {
    return e;
  }
  ItcId il = id.Left();
  ItcId ir = id.Right();
  if (il.IsOne()) {
    NodePtr er = Fill(ir, e->right);
    NodePtr el = MakeLeaf(std::max(MaxOf(e->left), MinOf(er)));
    return Norm(e->n, std::move(el), std::move(er));
  }
  if (ir.IsOne()) {
    NodePtr el = Fill(il, e->left);
    NodePtr er = MakeLeaf(std::max(MaxOf(e->right), MinOf(el)));
    return Norm(e->n, std::move(el), std::move(er));
  }
  return Norm(e->n, Fill(il, e->left), Fill(ir, e->right));
}

// Cost constant making leaf expansion always more expensive than filling any
// realistic existing structure (the paper's "large constant").
constexpr uint64_t kExpandCost = 1000;

std::pair<NodePtr, uint64_t> Grow(const ItcId& id, const NodePtr& e) {
  if (e->is_leaf()) {
    if (id.IsOne()) {
      return {MakeLeaf(e->n + 1), 0};
    }
    auto expanded = std::make_shared<Node>();
    expanded->n = e->n;
    expanded->left = MakeLeaf(0);
    expanded->right = MakeLeaf(0);
    auto [grown, cost] = Grow(id, expanded);
    return {std::move(grown), cost + kExpandCost};
  }
  // Non-leaf event. The id cannot be zero (callers only grow where they own
  // interval); an id of one over a node event is handled by Fill first, but
  // tolerate it by growing the left half.
  ItcId il = id.IsLeaf() ? ItcId::Seed() : id.Left();
  ItcId ir = id.IsLeaf() ? ItcId::Seed() : id.Right();
  if (il.IsZero()) {
    auto [er, cost] = Grow(ir, e->right);
    return {Norm(e->n, e->left, std::move(er)), cost + 1};
  }
  if (ir.IsZero()) {
    auto [el, cost] = Grow(il, e->left);
    return {Norm(e->n, std::move(el), e->right), cost + 1};
  }
  auto [el, cl] = Grow(il, e->left);
  auto [er, cr] = Grow(ir, e->right);
  if (cl <= cr) {
    return {Norm(e->n, std::move(el), e->right), cl + 1};
  }
  return {Norm(e->n, e->left, std::move(er)), cr + 1};
}

std::string NodeToString(const NodePtr& e) {
  if (e->is_leaf()) {
    return std::to_string(e->n);
  }
  return "(" + std::to_string(e->n) + ", " + NodeToString(e->left) + ", " +
         NodeToString(e->right) + ")";
}

void EncodeNode(const NodePtr& e, std::vector<uint8_t>* out) {
  if (e->is_leaf()) {
    out->push_back(0x00);
    PutVarint64(out, e->n);
    return;
  }
  out->push_back(0x01);
  PutVarint64(out, e->n);
  EncodeNode(e->left, out);
  EncodeNode(e->right, out);
}

bool DecodeNode(const uint8_t* data, size_t size, size_t* pos, NodePtr* out, int depth) {
  constexpr int kMaxDepth = 512;
  if (depth > kMaxDepth || *pos >= size) {
    return false;
  }
  uint8_t tag = data[(*pos)++];
  uint64_t n = 0;
  if (!GetVarint64(data, size, pos, &n)) {
    return false;
  }
  if (tag == 0x00) {
    *out = MakeLeaf(n);
    return true;
  }
  if (tag != 0x01) {
    return false;
  }
  NodePtr l;
  NodePtr r;
  if (!DecodeNode(data, size, pos, &l, depth + 1) ||
      !DecodeNode(data, size, pos, &r, depth + 1)) {
    return false;
  }
  *out = Norm(n, std::move(l), std::move(r));
  return true;
}

bool NodesEqual(const NodePtr& a, const NodePtr& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a->is_leaf() != b->is_leaf() || a->n != b->n) {
    return false;
  }
  if (a->is_leaf()) {
    return true;
  }
  return NodesEqual(a->left, b->left) && NodesEqual(a->right, b->right);
}

}  // namespace

// ---------------------------------------------------------------------------
// ItcEvent

ItcEvent::ItcEvent() : root_(MakeLeaf(0)) {}

ItcEvent ItcEvent::Leaf(uint64_t n) { return ItcEvent(MakeLeaf(n)); }

bool ItcEvent::IsZero() const { return root_->is_leaf() && root_->n == 0; }

bool ItcEvent::Leq(const ItcEvent& a, const ItcEvent& b) { return LeqNodes(a.root_, b.root_); }

ItcEvent ItcEvent::Join(const ItcEvent& a, const ItcEvent& b) {
  return ItcEvent(JoinNodes(a.root_, b.root_));
}

bool ItcEvent::operator==(const ItcEvent& other) const {
  return NodesEqual(root_, other.root_);
}

std::string ItcEvent::ToString() const { return NodeToString(root_); }

void ItcEvent::Encode(std::vector<uint8_t>* out) const { EncodeNode(root_, out); }

bool ItcEvent::Decode(const uint8_t* data, size_t size, size_t* pos, ItcEvent* out) {
  NodePtr root;
  if (!DecodeNode(data, size, pos, &root, 0)) {
    return false;
  }
  *out = ItcEvent(std::move(root));
  return true;
}

// ---------------------------------------------------------------------------
// ItcStamp

ItcStamp ItcStamp::Seed() { return ItcStamp(ItcId::Seed(), ItcEvent()); }

std::pair<ItcStamp, ItcStamp> ItcStamp::Fork() const {
  auto [i1, i2] = id_.Split();
  return {ItcStamp(i1, event_), ItcStamp(i2, event_)};
}

ItcStamp ItcStamp::Event() const {
  assert(!id_.IsZero() && "anonymous stamps cannot record events");
  NodePtr filled = Fill(id_, event_.root());
  if (!NodesEqual(filled, event_.root())) {
    return ItcStamp(id_, ItcEvent(std::move(filled)));
  }
  auto [grown, cost] = Grow(id_, event_.root());
  (void)cost;
  return ItcStamp(id_, ItcEvent(std::move(grown)));
}

ItcStamp ItcStamp::Join(const ItcStamp& a, const ItcStamp& b) {
  return ItcStamp(ItcId::Join(a.id_, b.id_), ItcEvent::Join(a.event_, b.event_));
}

ItcStamp ItcStamp::Peek() const { return ItcStamp(ItcId(), event_); }

bool ItcStamp::Leq(const ItcStamp& a, const ItcStamp& b) {
  return ItcEvent::Leq(a.event_, b.event_);
}

std::string ItcStamp::ToString() const {
  return "(" + id_.ToString() + "; " + event_.ToString() + ")";
}

void ItcStamp::Encode(std::vector<uint8_t>* out) const {
  id_.Encode(out);
  event_.Encode(out);
}

bool ItcStamp::Decode(const uint8_t* data, size_t size, size_t* pos, ItcStamp* out) {
  ItcId id;
  ItcEvent event;
  if (!ItcId::Decode(data, size, pos, &id) || !ItcEvent::Decode(data, size, pos, &event)) {
    return false;
  }
  *out = ItcStamp(std::move(id), std::move(event));
  return true;
}

}  // namespace pivot
