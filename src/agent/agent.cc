#include "src/agent/agent.h"

#include <chrono>
#include <thread>

#include "src/analysis/query_linter.h"
#include "src/telemetry/metrics.h"

namespace pivot {

namespace {

telemetry::Counter& ReportsCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.reports");
  return c;
}

telemetry::Counter& ReportBytesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.report_bytes");
  return c;
}

telemetry::Counter& DroppedTuplesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.tuples_dropped");
  return c;
}

telemetry::Counter& EmittedTuplesCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.tuples_emitted");
  return c;
}

telemetry::Counter& WeavesRefusedCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.weaves_refused");
  return c;
}

telemetry::Histogram& FlushNanosHistogram() {
  static telemetry::Histogram& h = telemetry::Metrics().GetHistogram("agent.flush_nanos");
  return h;
}

telemetry::Counter& ShardContentionCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("agent.emit_shard_contention");
  return c;
}

telemetry::Counter& BatchReportsCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("bus.batch_reports");
  return c;
}

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide dense thread ordinal: thread K gets ordinal K in creation
// order, so `ordinal % shard_count` spreads emitters evenly across shards
// and a single-threaded process always lands in shard 0 (keeping the
// simulator and sequential tests byte-for-byte deterministic).
size_t ThreadOrdinal() {
  static std::atomic<size_t> next{0};
  thread_local size_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

size_t DefaultShardCount() {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) {
    hw = 1;
  }
  return hw > 64 ? 64 : hw;
}

}  // namespace

PTAgent::PTAgent(MessageBus* bus, TracepointRegistry* registry, ProcessInfo info,
                 size_t shard_count)
    : bus_(bus), registry_(registry), info_(std::move(info)) {
  if (shard_count == 0) {
    shard_count = DefaultShardCount();
  }
  shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  subscription_ =
      bus_->Subscribe(kCommandTopic, [this](const BusMessage& msg) { HandleCommand(msg); });
  // Announce ourselves so the frontend replays any already-active queries
  // (processes can start after queries are installed).
  bus_->Publish(BusMessage{kReportTopic, EncodeHello()});
}

PTAgent::~PTAgent() { bus_->Unsubscribe(subscription_); }

void PTAgent::HandleCommand(const BusMessage& msg) {
  Result<ControlMessage> decoded = DecodeControlMessage(msg.payload);
  if (!decoded.ok()) {
    return;  // Malformed commands are dropped; agents must not crash hosts.
  }
  switch (decoded->type) {
    case ControlMessageType::kWeave: {
      const WeaveCommand& cmd = decoded->weave;
      // Re-verify before anything touches the registry (third verification
      // boundary): the bytes came off the wire, and a frontend that linted
      // them is an assumption, not a guarantee. Like an eBPF verifier, the
      // agent refuses to weave programs it cannot prove well-formed. No
      // schema here — tracepoints may be defined later (deferred weaving) —
      // and no dead-column heuristics; only error-severity defects refuse.
      {
        analysis::LintOptions lint_options;
        lint_options.assume_projection_pushdown = false;
        // Reachability against the deployment model, when wired: component
        // resolution falls back to the graph's tracepoint anchors since
        // there is no schema here.
        lint_options.propagation = propagation_;
        analysis::LintPlan plan;
        plan.aggregated = cmd.plan.aggregated;
        plan.group_fields = cmd.plan.group_fields;
        plan.aggs = cmd.plan.aggs;
        plan.output_columns = cmd.plan.output_columns;
        analysis::QueryLintResult lint =
            analysis::QueryLinter(lint_options).Lint(cmd.query_id, cmd.advice, plan);
        if (lint.report.has_errors()) {
          WeavesRefusedCounter().Increment();
          weaves_refused_.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (queries_.count(cmd.query_id) != 0) {
          return;  // Duplicate weave; ignore (no re-ack either).
        }
        QueryState state;
        state.plan = cmd.plan;
        state.agg = Aggregator(cmd.plan.group_fields, cmd.plan.aggs);
        queries_.emplace(cmd.query_id, std::move(state));
        // Give every shard its own partial-aggregation slot before any advice
        // can fire (the registry weave below). Shard locks nest inside mu_.
        for (auto& shard : shards_) {
          std::lock_guard<std::mutex> shard_lock(shard->mu);
          ShardQueryState slot;
          slot.aggregated = cmd.plan.aggregated;
          slot.agg = Aggregator(cmd.plan.group_fields, cmd.plan.aggs);
          shard->queries.emplace(cmd.query_id, std::move(slot));
        }
      }
      // Hand the registry the full advice list: tracepoints this process does
      // not define are woven lazily if/when they are defined (deferred
      // weaving), and foreign tracepoints simply never fire here.
      (void)registry_->WeaveQuery(cmd.query_id, cmd.advice);
      WeaveAck ack;
      ack.query_id = cmd.query_id;
      ack.host = info_.host;
      ack.process_name = info_.process_name;
      ack.timestamp_micros = runtime_ != nullptr ? runtime_->NowMicros() : 0;
      bus_->Publish(BusMessage{kReportTopic, EncodeWeaveAck(ack)});
      break;
    }
    case ControlMessageType::kUnweave: {
      registry_->UnweaveQuery(decoded->unweave_query_id);
      std::lock_guard<std::mutex> lock(mu_);
      queries_.erase(decoded->unweave_query_id);
      for (auto& shard : shards_) {
        std::lock_guard<std::mutex> shard_lock(shard->mu);
        shard->queries.erase(decoded->unweave_query_id);
      }
      break;
    }
    case ControlMessageType::kReport:
    case ControlMessageType::kHello:
    case ControlMessageType::kWeaveAck:
    case ControlMessageType::kStats:
    case ControlMessageType::kBatch:
      break;  // Agents ignore other agents' traffic.
  }
}

void PTAgent::EmitTuple(uint64_t query_id, const Tuple& t) {
  Shard& shard = *shards_[ThreadOrdinal() % shards_.size()];
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Another thread shares this shard (or Flush is draining it) — count the
    // collision, then block. Stays ~0 when shards >= emitting threads.
    ShardContentionCounter().Increment();
    shard_contentions_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  auto it = shard.queries.find(query_id);
  if (it == shard.queries.end()) {
    dropped_total_.fetch_add(1, std::memory_order_relaxed);
    DroppedTuplesCounter().Increment();
    return;  // Query was unwoven concurrently; drop.
  }
  ShardQueryState& slot = it->second;
  ++slot.emitted;
  emitted_total_.fetch_add(1, std::memory_order_relaxed);
  EmittedTuplesCounter().Increment();
  if (slot.aggregated) {
    slot.agg.AddInput(t);
  } else {
    slot.buffered.push_back(t);
  }
}

void PTAgent::Flush(int64_t now_micros) {
  int64_t flush_start = MonotonicNanos();
  ReportBatch batch;
  batch.host = info_.host;
  batch.process_name = info_.process_name;
  batch.timestamp_micros = now_micros;
  // queryId -> suppressed count, for the meta-tracepoint rows below.
  std::vector<std::pair<uint64_t, uint64_t>> flushed_meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Drain every shard's partials into the per-query merge state. AddState
    // is the combiner of Table 3 ("for Count, the combiner is Sum"), so the
    // merged result is exactly what a single global aggregator would have
    // accumulated — only the association order differs, never the values.
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> shard_lock(shard->mu);
      for (auto& [query_id, slot] : shard->queries) {
        auto it = queries_.find(query_id);
        if (it == queries_.end()) {
          continue;  // Weave/unweave keep the maps in sync; belt and braces.
        }
        QueryState& state = it->second;
        state.emitted += slot.emitted;
        slot.emitted = 0;
        if (slot.aggregated) {
          if (!slot.agg.empty()) {
            for (const Tuple& st : slot.agg.StateTuples()) {
              state.agg.AddState(st);
            }
            slot.agg.Clear();
          }
        } else if (!slot.buffered.empty()) {
          for (Tuple& row : slot.buffered) {
            state.buffered.push_back(std::move(row));
          }
          slot.buffered.clear();
        }
      }
    }
    for (auto& [query_id, state] : queries_) {
      bool empty = state.plan.aggregated ? state.agg.empty() : state.buffered.empty();
      if (empty) {
        // Quiet interval: publish nothing, but count the suppression and
        // heartbeat periodically so the frontend knows we are alive.
        ++state.reports_suppressed;
        if (++state.suppressed_since_heartbeat >= kFlushesPerSuppressedHeartbeat) {
          state.suppressed_since_heartbeat = 0;
          AgentStats hb;
          hb.query_id = query_id;
          hb.host = info_.host;
          hb.process_name = info_.process_name;
          hb.timestamp_micros = now_micros;
          hb.last_report_micros = state.last_report_micros;
          hb.reports_suppressed = state.reports_suppressed;
          hb.tuples_emitted = state.emitted;
          batch.heartbeats.push_back(std::move(hb));
        }
        continue;
      }
      AgentReport report;
      report.query_id = query_id;
      report.host = info_.host;
      report.process_name = info_.process_name;
      report.timestamp_micros = now_micros;
      report.aggregated = state.plan.aggregated;
      if (state.plan.aggregated) {
        report.tuples = state.agg.StateTuples();
        state.agg.Clear();
      } else {
        report.tuples = std::move(state.buffered);
        state.buffered.clear();
      }
      state.last_report_micros = now_micros;
      state.suppressed_since_heartbeat = 0;
      reported_total_.fetch_add(report.tuples.size(), std::memory_order_relaxed);
      reports_published_.fetch_add(1, std::memory_order_relaxed);
      flushed_meta.emplace_back(query_id, state.reports_suppressed);
      batch.reports.push_back(std::move(report));
    }
  }
  if (batch.reports.empty() && batch.heartbeats.empty()) {
    FlushNanosHistogram().Observe(static_cast<uint64_t>(MonotonicNanos() - flush_start));
    return;  // Nothing to say: quiet processes stay quiet on the bus.
  }
  // Publish and meta-fire outside the locks: advice woven at PTAgent.Flush
  // calls back into EmitTuple, which takes a shard lock. Tuples it emits land
  // in the *next* interval, so self-observation converges instead of
  // recursing. The whole flush ships as one kBatch frame — one bus publish
  // per interval, however many queries reported.
  std::vector<size_t> report_bytes;
  std::vector<uint8_t> encoded = EncodeReportBatch(batch, &report_bytes);
  ReportsCounter().Increment(batch.reports.size());
  ReportBytesCounter().Increment(encoded.size());
  BatchReportsCounter().Increment();
  bus_->Publish(BusMessage{kReportTopic, std::move(encoded)});
  const Tracepoint* flush_tp = runtime_ != nullptr ? runtime_->meta.agent_flush : nullptr;
  if (flush_tp != nullptr && flush_tp->enabled()) {
    for (size_t i = 0; i < batch.reports.size(); ++i) {
      ExecutionContext ctx(runtime_);
      flush_tp->Invoke(&ctx,
                       {{"queryId", Value(static_cast<int64_t>(flushed_meta[i].first))},
                        {"tuples", Value(static_cast<int64_t>(batch.reports[i].tuples.size()))},
                        {"bytes", Value(static_cast<int64_t>(report_bytes[i]))},
                        {"suppressed", Value(static_cast<int64_t>(flushed_meta[i].second))}});
    }
  }
  FlushNanosHistogram().Observe(static_cast<uint64_t>(MonotonicNanos() - flush_start));
}

uint64_t PTAgent::emitted_tuples() const { return emitted_total_.load(std::memory_order_relaxed); }

uint64_t PTAgent::reported_tuples() const {
  return reported_total_.load(std::memory_order_relaxed);
}

uint64_t PTAgent::reports_published() const {
  return reports_published_.load(std::memory_order_relaxed);
}

uint64_t PTAgent::dropped_tuples() const { return dropped_total_.load(std::memory_order_relaxed); }

uint64_t PTAgent::weaves_refused() const { return weaves_refused_.load(std::memory_order_relaxed); }

uint64_t PTAgent::shard_contentions() const {
  return shard_contentions_.load(std::memory_order_relaxed);
}

std::vector<AgentQueryStats> PTAgent::QueryStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AgentQueryStats> out;
  out.reserve(queries_.size());
  for (const auto& [query_id, state] : queries_) {
    out.push_back({query_id, state.emitted, state.last_report_micros, state.reports_suppressed});
  }
  // Add what is still sitting in the shards (emitted since the last flush),
  // so `emitted` is live rather than flush-delayed. queries_ is sorted, and
  // every shard slot has a queries_ row, so binary search always lands.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    for (const auto& [query_id, slot] : shard->queries) {
      for (auto& row : out) {
        if (row.query_id == query_id) {
          row.emitted += slot.emitted;
          break;
        }
      }
    }
  }
  return out;
}

}  // namespace pivot
