file(REMOVE_RECURSE
  "CMakeFiles/pivot_shell.dir/pivot_shell.cpp.o"
  "CMakeFiles/pivot_shell.dir/pivot_shell.cpp.o.d"
  "pivot_shell"
  "pivot_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
