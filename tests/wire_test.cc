#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/core/wire.h"

namespace pivot {
namespace {

TEST(WireTest, StringRoundTrip) {
  std::vector<uint8_t> buf;
  PutString(&buf, "hello");
  PutString(&buf, "");
  size_t pos = 0;
  std::string a;
  std::string b;
  ASSERT_TRUE(GetString(buf.data(), buf.size(), &pos, &a));
  ASSERT_TRUE(GetString(buf.data(), buf.size(), &pos, &b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(pos, buf.size());
}

TEST(WireTest, StringRejectsLengthBeyondBuffer) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 100);  // Claims 100 bytes; none follow.
  size_t pos = 0;
  std::string s;
  EXPECT_FALSE(GetString(buf.data(), buf.size(), &pos, &s));
}

class ValueRoundTripTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueRoundTripTest, RoundTrips) {
  std::vector<uint8_t> buf;
  PutValue(&buf, GetParam());
  size_t pos = 0;
  Value v;
  ASSERT_TRUE(GetValue(buf.data(), buf.size(), &pos, &v));
  EXPECT_EQ(v, GetParam());
  EXPECT_EQ(v.type(), GetParam().type());
  EXPECT_EQ(pos, buf.size());
}

INSTANTIATE_TEST_SUITE_P(AllTypes, ValueRoundTripTest,
                         ::testing::Values(Value(), Value(int64_t{0}), Value(int64_t{-12345}),
                                           Value(int64_t{1} << 60), Value(0.0), Value(-2.75),
                                           Value(1e300), Value(""), Value("procName"),
                                           Value(std::string(1000, 'x'))));

TEST(WireTest, ValueRejectsUnknownTag) {
  std::vector<uint8_t> buf = {0x09};
  size_t pos = 0;
  Value v;
  EXPECT_FALSE(GetValue(buf.data(), buf.size(), &pos, &v));
}

TEST(WireTest, ValueRejectsTruncatedDouble) {
  std::vector<uint8_t> buf = {static_cast<uint8_t>(ValueType::kDouble), 1, 2, 3};
  size_t pos = 0;
  Value v;
  EXPECT_FALSE(GetValue(buf.data(), buf.size(), &pos, &v));
}

TEST(WireTest, TupleRoundTrip) {
  Tuple t{{"host", Value("A")}, {"delta", Value(int64_t{4096})}, {"f", Value(0.5)}};
  std::vector<uint8_t> buf;
  PutTuple(&buf, t);
  size_t pos = 0;
  Tuple decoded;
  ASSERT_TRUE(GetTuple(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_EQ(decoded, t);
}

TEST(WireTest, EmptyTupleRoundTrip) {
  std::vector<uint8_t> buf;
  PutTuple(&buf, Tuple());
  size_t pos = 0;
  Tuple decoded;
  ASSERT_TRUE(GetTuple(buf.data(), buf.size(), &pos, &decoded));
  EXPECT_TRUE(decoded.empty());
}

TEST(WireTest, TupleRejectsAbsurdFieldCount) {
  std::vector<uint8_t> buf;
  PutVarint64(&buf, 1ull << 40);
  size_t pos = 0;
  Tuple decoded;
  EXPECT_FALSE(GetTuple(buf.data(), buf.size(), &pos, &decoded));
}

TEST(WireTest, TupleFuzzRoundTrip) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    Tuple t;
    int fields = static_cast<int>(rng.NextBelow(8));
    for (int i = 0; i < fields; ++i) {
      std::string name = "f" + std::to_string(i);
      switch (rng.NextBelow(4)) {
        case 0:
          t.Append(name, Value());
          break;
        case 1:
          t.Append(name, Value(rng.NextInt(-1000000, 1000000)));
          break;
        case 2:
          t.Append(name, Value(rng.NextDouble()));
          break;
        default:
          t.Append(name, Value(std::string(rng.NextBelow(20), 's')));
          break;
      }
    }
    std::vector<uint8_t> buf;
    PutTuple(&buf, t);
    size_t pos = 0;
    Tuple decoded;
    ASSERT_TRUE(GetTuple(buf.data(), buf.size(), &pos, &decoded));
    ASSERT_EQ(decoded, t);
  }
}

}  // namespace
}  // namespace pivot
