#include "src/core/aggregation.h"

#include <cassert>

namespace pivot {

const char* AggFnName(AggFn fn) {
  switch (fn) {
    case AggFn::kCount:
      return "COUNT";
    case AggFn::kSum:
      return "SUM";
    case AggFn::kMin:
      return "MIN";
    case AggFn::kMax:
      return "MAX";
    case AggFn::kAverage:
      return "AVERAGE";
  }
  return "?";
}

std::vector<std::string> AggSpec::StateColumns() const {
  if (fn == AggFn::kAverage) {
    return {output, output + "#n"};
  }
  return {output};
}

Aggregator::Aggregator(std::vector<std::string> group_fields, std::vector<AggSpec> specs)
    : group_fields_(std::move(group_fields)), specs_(std::move(specs)) {
  group_ids_ = InternSymbols(group_fields_);
  spec_ids_.reserve(specs_.size());
  for (const AggSpec& spec : specs_) {
    SpecIds ids;
    ids.input = InternSymbol(spec.input);
    ids.input_n = InternSymbol(spec.input + "#n");
    ids.output = InternSymbol(spec.output);
    ids.output_n = InternSymbol(spec.output + "#n");
    spec_ids_.push_back(ids);
  }
}

namespace {

// Canonical string form of the group key: type-tagged so that e.g. int 1 and
// string "1" land in different groups.
std::string CanonicalKey(const Tuple& t, const std::vector<SymbolId>& fields) {
  std::string key;
  for (SymbolId f : fields) {
    Value v = t.Get(f);
    key += static_cast<char>('0' + static_cast<int>(v.type()));
    key += v.ToString();
    key += '\x1f';  // Unit separator: cannot appear in rendered numbers.
  }
  return key;
}

}  // namespace

Aggregator::Group& Aggregator::GroupFor(const Tuple& t) {
  std::string key = CanonicalKey(t, group_ids_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    return groups_[it->second];
  }
  Group g;
  g.key_tuple = t.Project(group_ids_);
  g.accums.resize(specs_.size());
  index_[std::move(key)] = groups_.size();
  groups_.push_back(std::move(g));
  return groups_.back();
}

namespace {

// Combine-style accumulation: `v` is a partial aggregate of `fn` and `n` its
// companion count (Average only). Shared by AddState and from_state inputs.
void CombineInto(Aggregator::AccumRef a, AggFn fn, const Value& v, int64_t n) {
  if (v.is_null()) {
    return;
  }
  switch (fn) {
    case AggFn::kCount:  // Combiner for Count is Sum (Table 3).
    case AggFn::kSum:
      a.value = a.has_value ? ValueAdd(a.value, v) : v;
      a.has_value = true;
      break;
    case AggFn::kMin:
      if (!a.has_value || v.Compare(a.value) < 0) {
        a.value = v;
      }
      a.has_value = true;
      break;
    case AggFn::kMax:
      if (!a.has_value || v.Compare(a.value) > 0) {
        a.value = v;
      }
      a.has_value = true;
      break;
    case AggFn::kAverage:
      a.value = a.has_value ? ValueAdd(a.value, v) : v;
      a.count += n;
      a.has_value = true;
      break;
  }
}

}  // namespace

void Aggregator::AddInput(const Tuple& t) {
  Group& g = GroupFor(t);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const AggSpec& spec = specs_[i];
    const SpecIds& ids = spec_ids_[i];
    Accum& a = g.accums[i];
    if (spec.from_state) {
      Value n = t.Get(ids.input_n);
      CombineInto(AccumRef{a.has_value, a.value, a.count}, spec.fn, t.Get(ids.input),
                  n.is_null() ? 0 : n.int_value());
      continue;
    }
    switch (spec.fn) {
      case AggFn::kCount:
        a.value = a.has_value ? ValueAdd(a.value, Value(int64_t{1})) : Value(int64_t{1});
        a.has_value = true;
        break;
      case AggFn::kSum: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;  // Nulls do not contribute to sums.
        }
        a.value = a.has_value ? ValueAdd(a.value, v) : v;
        a.has_value = true;
        break;
      }
      case AggFn::kMin: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;
        }
        if (!a.has_value || v.Compare(a.value) < 0) {
          a.value = v;
        }
        a.has_value = true;
        break;
      }
      case AggFn::kMax: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;
        }
        if (!a.has_value || v.Compare(a.value) > 0) {
          a.value = v;
        }
        a.has_value = true;
        break;
      }
      case AggFn::kAverage: {
        Value v = t.Get(ids.input);
        if (v.is_null()) {
          break;
        }
        a.value = a.has_value ? ValueAdd(a.value, v) : v;
        a.count += 1;
        a.has_value = true;
        break;
      }
    }
  }
}

void Aggregator::AddState(const Tuple& t) {
  Group& g = GroupFor(t);
  for (size_t i = 0; i < specs_.size(); ++i) {
    const AggSpec& spec = specs_[i];
    const SpecIds& ids = spec_ids_[i];
    Accum& a = g.accums[i];
    Value n = t.Get(ids.output_n);
    CombineInto(AccumRef{a.has_value, a.value, a.count}, spec.fn, t.Get(ids.output),
                n.is_null() ? 0 : n.int_value());
  }
}

std::vector<Tuple> Aggregator::StateTuples() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) {
    Tuple t = g.key_tuple;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AggSpec& spec = specs_[i];
      const SpecIds& ids = spec_ids_[i];
      const Accum& a = g.accums[i];
      t.Append(ids.output, a.has_value ? a.value : Value());
      if (spec.fn == AggFn::kAverage) {
        t.Append(ids.output_n, Value(a.count));
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<Tuple> Aggregator::Finalize() const {
  std::vector<Tuple> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) {
    Tuple t = g.key_tuple;
    for (size_t i = 0; i < specs_.size(); ++i) {
      const AggSpec& spec = specs_[i];
      const Accum& a = g.accums[i];
      if (!a.has_value) {
        // COUNT of an empty group is 0; other aggregates of nothing are null.
        t.Append(spec.output, spec.fn == AggFn::kCount ? Value(int64_t{0}) : Value());
        continue;
      }
      if (spec.fn == AggFn::kAverage) {
        t.Append(spec.output,
                 a.count == 0 ? Value() : Value(a.value.AsDouble() / static_cast<double>(a.count)));
      } else {
        t.Append(spec.output, a.value);
      }
    }
    out.push_back(std::move(t));
  }
  return out;
}

void Aggregator::Clear() {
  groups_.clear();
  index_.clear();
}

}  // namespace pivot
