// Naive (global) evaluation of Pivot Tracing queries — the unoptimized
// strategy of Fig 6a.
//
// Instead of evaluating `->⋈` inline via baggage, this evaluator takes the
// complete record of everything every tracepoint observed (TraceRecorder) and
// computes the happened-before join as a θ-join over the recorded execution
// DAGs. This is exactly the strategy the paper attributes to Magpie-style
// temporal joins: all tuples must be aggregated globally before the join.
//
// Uses:
//  * ground truth for the property-based equivalence tests (optimized inline
//    evaluation must produce identical results);
//  * the baseline side of the tuple-traffic ablation bench (how many tuples
//    would cross machine boundaries without baggage).

#ifndef PIVOT_SRC_QUERY_NAIVE_EVAL_H_
#define PIVOT_SRC_QUERY_NAIVE_EVAL_H_

#include <vector>

#include "src/common/status.h"
#include "src/core/trace_graph.h"
#include "src/core/tuple.h"
#include "src/query/ast.h"

namespace pivot {

class QueryRegistry;

struct NaiveResult {
  // Final result rows (grouped aggregates, or streaming select rows).
  std::vector<Tuple> rows;
  // Number of observed tuples that would have to be shipped for global
  // evaluation (every invocation of every tracepoint any stage listens to).
  size_t tuples_shipped = 0;
  // Number of joined rows produced before aggregation.
  size_t join_rows = 0;
};

// Evaluates `q` against everything `recorder` observed. `named_queries`
// resolves subquery joins (nullable when unused).
Result<NaiveResult> EvaluateNaive(const Query& q, const TraceRecorder& recorder,
                                  const QueryRegistry* named_queries);

}  // namespace pivot

#endif  // PIVOT_SRC_QUERY_NAIVE_EVAL_H_
