// Tests for the real-time pieces of a deployment: AgentFlusher (timer-driven
// agent reporting) and Frontend result listeners (streaming consumption).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "src/agent/flusher.h"
#include "src/agent/frontend.h"
#include "src/bus/message_bus.h"
#include "tests/test_util.h"

namespace pivot {
namespace {

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

struct RealTimeHarness {
  MessageBus bus;
  TracepointRegistry schema;
  TracepointRegistry registry;
  ProcessRuntime runtime;
  std::unique_ptr<PTAgent> agent;
  Frontend frontend;
  Tracepoint* tp;

  RealTimeHarness() : frontend(&bus, &schema) {
    EXPECT_TRUE(schema.Define(Def("X", {"v"})).ok());
    runtime.info = {"A", "proc", 1};
    agent = std::make_unique<PTAgent>(&bus, &registry, runtime.info);
    runtime.sink = agent.get();
    tp = *registry.Define(Def("X", {"v"}));
  }
};

TEST(AgentFlusherTest, FlushesPeriodicallyAndOnStop) {
  RealTimeHarness h;
  Result<uint64_t> q = h.frontend.Install("From e In X Select COUNT");
  ASSERT_TRUE(q.ok());

  {
    AgentFlusher flusher(h.agent.get(), std::chrono::milliseconds(5));
    ExecutionContext ctx(&h.runtime);
    for (int i = 0; i < 100; ++i) {
      h.tp->Invoke(&ctx, {{"v", Value(int64_t{i})}});
      if (i % 10 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // Destructor stops with a final flush: nothing may be lost.
  }

  auto rows = h.frontend.Results(*q);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].Get("COUNT").int_value(), 100);
}

TEST(AgentFlusherTest, StopIsIdempotent) {
  RealTimeHarness h;
  AgentFlusher flusher(h.agent.get(), std::chrono::milliseconds(5));
  flusher.Stop();
  flusher.Stop();
  EXPECT_GE(flusher.flushes(), 1u);
}

TEST(ResultListenerTest, StreamsIntervalRowsAsTheyArrive) {
  RealTimeHarness h;
  Result<uint64_t> q = h.frontend.Install("From e In X Select SUM(e.v)");
  ASSERT_TRUE(q.ok());

  std::vector<int64_t> sums;
  std::vector<int64_t> timestamps;
  ASSERT_TRUE(h.frontend
                  .SetResultListener(*q,
                                     [&](int64_t ts, const std::vector<Tuple>& rows) {
                                       timestamps.push_back(ts);
                                       for (const auto& row : rows) {
                                         sums.push_back(row.Get("SUM(e.v)").int_value());
                                       }
                                     })
                  .ok());

  ExecutionContext ctx(&h.runtime);
  h.tp->Invoke(&ctx, {{"v", Value(int64_t{10})}});
  h.agent->Flush(1'000'000);
  h.tp->Invoke(&ctx, {{"v", Value(int64_t{7})}});
  h.tp->Invoke(&ctx, {{"v", Value(int64_t{3})}});
  h.agent->Flush(2'000'000);

  EXPECT_EQ(timestamps, (std::vector<int64_t>{1'000'000, 2'000'000}));
  EXPECT_EQ(sums, (std::vector<int64_t>{10, 10}));
  // Cumulative results unaffected.
  EXPECT_EQ(h.frontend.Results(*q)[0].Get("SUM(e.v)").int_value(), 20);
}

TEST(ResultListenerTest, ListenerMayCallBackIntoFrontend) {
  RealTimeHarness h;
  Result<uint64_t> q = h.frontend.Install("From e In X Select COUNT");
  ASSERT_TRUE(q.ok());
  int64_t observed_total = 0;
  ASSERT_TRUE(h.frontend
                  .SetResultListener(*q,
                                     [&](int64_t, const std::vector<Tuple>&) {
                                       observed_total =
                                           h.frontend.Results(*q)[0].Get("COUNT").int_value();
                                     })
                  .ok());
  ExecutionContext ctx(&h.runtime);
  h.tp->Invoke(&ctx, {{"v", Value(int64_t{1})}});
  h.agent->Flush(1'000'000);
  EXPECT_EQ(observed_total, 1);
}

TEST(ResultListenerTest, UnknownQueryRejected) {
  RealTimeHarness h;
  EXPECT_FALSE(h.frontend.SetResultListener(12345, nullptr).ok());
}

}  // namespace
}  // namespace pivot
