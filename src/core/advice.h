// Advice: the intermediate representation Pivot Tracing queries compile to
// (§3, Table 2). Advice is woven into tracepoints and runs whenever the
// tracepoint fires.
//
// An advice program is a straight-line sequence of operations over a working
// set of tuples:
//
//   Sample   continue with probability p, else stop (advice-level sampling,
//            the §8 extension: "Sampling at the advice level is a further
//            method of reducing overhead")
//   Observe  construct a tuple from tracepoint-exported variables
//   Unpack   retrieve tuples packed by earlier advice and join them with the
//            working set (the inline evaluation of ->⋈, Fig 6b)
//   Let      append a computed column (lowered Select arithmetic, e.g. Q8's
//            `response.time - request.time`)
//   Filter   drop tuples failing a predicate (Where)
//   Pack     store (projected / pre-aggregated) tuples in the baggage for
//            later advice
//   Emit     forward tuples to the process-local agent for aggregation
//
// There are no jumps and no recursion, so advice is guaranteed to terminate;
// expressions are side-effect-free trees (expr.h).

#ifndef PIVOT_SRC_CORE_ADVICE_H_
#define PIVOT_SRC_CORE_ADVICE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/baggage.h"
#include "src/core/context.h"
#include "src/core/expr.h"
#include "src/core/tuple.h"

namespace pivot {

class Advice {
 public:
  enum class OpKind { kObserve, kUnpack, kLet, kFilter, kPack, kEmit, kSample };

  struct Op {
    OpKind kind;

    // kObserve: (exported variable, output column) pairs; e.g. ("delta",
    // "incr.delta"). Missing exports observe as null.
    std::vector<std::pair<std::string, std::string>> observe;

    // kUnpack / kPack: which bag.
    BagKey bag = 0;
    // kPack: the bag's retention/aggregation semantics.
    BagSpec bag_spec;
    // kPack: columns to project before packing (empty = pack everything —
    // only used for kAggregate bags, which bound size themselves).
    // kEmit: columns to project before emitting (empty = emit everything).
    std::vector<std::string> fields;

    // kLet: output column name.
    std::string let_name;
    // kLet: value expression; kFilter: predicate.
    Expr::Ptr expr;

    // kEmit: destination query.
    uint64_t query_id = 0;

    // kSample: probability in (0, 1] that this invocation proceeds. The
    // decision is made once per invocation with a deterministic counter-hash
    // sequence (reproducible in the simulator, uniform in the long run).
    double sample_rate = 1.0;
  };

  using Ptr = std::shared_ptr<const Advice>;

  explicit Advice(std::vector<Op> ops) : ops_(std::move(ops)) {}

  const std::vector<Op>& ops() const { return ops_; }

  // Runs the program against one tracepoint invocation. `exports` holds the
  // raw exported variables (unqualified names, defaults included). Uses the
  // context's baggage for Unpack/Pack and the context's process sink for
  // Emit.
  //
  // Safety: besides being loop-free, execution bounds the working set at
  // kMaxWorkingSet tuples — pathological multi-unpack cartesian joins
  // truncate (counted by truncation_count()) instead of exhausting memory,
  // keeping advice overhead bounded even for adversarial queries.
  void Execute(ExecutionContext* ctx, const Tuple& exports) const;

  // Upper bound on tuples materialized by one advice execution.
  static constexpr size_t kMaxWorkingSet = 65536;

  // Process-wide count of truncated executions (diagnostics).
  static uint64_t truncation_count();

  // Human-readable listing, e.g. "OBSERVE procName / PACK-FIRST[procName]".
  std::string ToString() const;

 private:
  std::vector<Op> ops_;
};

namespace advice_internal {

// Shared between the reference interpreter (Advice::Execute) and the compiled
// executor (AdvicePlan::Execute, src/core/plan.cc) so both draw from the same
// deterministic sampling sequence and truncation counter — a requirement for
// the fuzz equivalence suite that runs the same program down both paths.
bool SampleAccept(double rate);
void CountTruncation();

}  // namespace advice_internal

// Fluent construction of advice programs; used by the query compiler and by
// tests/examples building advice by hand.
class AdviceBuilder {
 public:
  AdviceBuilder& Sample(double rate);
  AdviceBuilder& Observe(std::vector<std::pair<std::string, std::string>> vars);
  AdviceBuilder& Unpack(BagKey bag);
  AdviceBuilder& Let(std::string name, Expr::Ptr expr);
  AdviceBuilder& Filter(Expr::Ptr predicate);
  AdviceBuilder& Pack(BagKey bag, BagSpec spec, std::vector<std::string> fields);
  AdviceBuilder& Emit(uint64_t query_id, std::vector<std::string> fields);

  Advice::Ptr Build();

 private:
  std::vector<Advice::Op> ops_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_ADVICE_H_
