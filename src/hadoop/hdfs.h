// Simulated HDFS: NameNode, DataNodes, and the client library (§6 "HDFS is a
// distributed file system that consists of several DataNodes that store
// replicated file blocks and a NameNode that manages the filesystem
// metadata").
//
// Instrumented with the tracepoints the paper's queries use:
//   ClientProtocols                  client-side protocol entry (exports
//                                    procName); the union tracepoint of Q2
//   NN.GetBlockLocations             exports src (file), replicas (ordered
//                                    location list, "B,D,F")
//   NN.ClientProtocol                NameNode op entry (op, src)
//   DN.DataTransferProtocol          DataNode op entry (op, src)
//   DN.DataTransferProtocol.done     exports transfer/blocked/gc micros
//                                    (Fig 9b's DN components)
//   DataNodeMetrics.incrBytesRead    exports delta (Q1/Q2)
//   DataNodeMetrics.incrBytesWritten exports delta
//   FileInputStream.read /           exports delta, category — any process's
//   FileOutputStream.write           direct disk IO (Fig 1c)
//
// Fault injection: the HDFS-6268 replica-selection bug (§6.1) is modelled
// exactly as diagnosed — the NameNode does not randomize rack-local replica
// order AND the client always takes the first returned location.

#ifndef PIVOT_SRC_HADOOP_HDFS_H_
#define PIVOT_SRC_HADOOP_HDFS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/simsys/sim_rpc.h"
#include "src/simsys/sim_world.h"

namespace pivot {

struct HdfsConfig {
  int replication = 3;
  uint64_t block_bytes = 128ull << 20;

  // HDFS-6268 (both halves of the bug; §6.1).
  bool namenode_static_replica_order = true;  // NN does not randomize.
  bool client_selects_first_location = true;  // Client does not randomize.
  // The deterministic ordering pseudoSortByDistance degenerates to. In the
  // paper's cluster the network-topology order happened to put hosts A and D
  // first (hence Fig 8's hot hosts); empty = DataNode registration order.
  std::vector<std::string> static_order_hosts;

  // Service costs.
  int64_t namenode_op_micros = 300;   // NN metadata op CPU time (read ops).
  // Mutating metadata ops (create/rename/delete/mkdir) hold the NameNode's
  // exclusive namespace lock this long — the §6.2 "overloaded HDFS NameNode
  // due to exclusive write locking" scenario scales with this.
  int64_t namenode_write_lock_micros = 2000;
  int64_t datanode_op_micros = 400;   // DN per-op overhead (setup, checksums).
  uint64_t rpc_request_bytes = 256;   // Application payload sizes.
  uint64_t rpc_response_bytes = 512;
};

class HdfsDataNode;

// One replicated block.
struct HdfsBlock {
  uint64_t id = 0;
  std::vector<HdfsDataNode*> replicas;
};

// A file decomposed into blocks ("HDFS provides file redundancy by
// decomposing files into blocks and replicating each block", §6.1).
struct HdfsFile {
  uint64_t id = 0;
  uint64_t bytes = 0;
  std::vector<HdfsBlock> blocks;
};

class HdfsDataNode {
 public:
  // The DataNode serves ops through a bounded "xceiver" FIFO (service time
  // datanode_op_micros per op): an overloaded DataNode queues, which is what
  // turns the replica-selection skew of Fig 8c into the reduced *client*
  // throughput of Fig 8a.
  HdfsDataNode(SimProcess* proc, const HdfsConfig* config);

  SimProcess* process() { return proc_; }
  const std::string& host_name() const { return proc_->host()->name(); }

  // Server side of DataTransferProtocol READ: disk transfer + metrics
  // tracepoints, then respond with the data payload. `requester_nic_rate` is
  // the requester's link rate (bytes/s), used to estimate the response
  // transfer time over the path bottleneck for the Fig 9b decomposition
  // (real DataNodes observe this as TCP send-buffer backpressure).
  void HandleRead(CtxPtr ctx, const std::string& src, uint64_t bytes,
                  double requester_nic_rate, RpcRespond respond);

  // Server side of WRITE: writes locally, then forwards down the replication
  // pipeline (`downstream`, possibly empty) before acking — the HDFS chain
  // write (client -> DN1 -> DN2 -> DN3), with baggage riding every hop.
  void HandleWrite(CtxPtr ctx, const std::string& src, uint64_t bytes,
                   std::vector<HdfsDataNode*> downstream, RpcRespond respond);

 private:
  SimProcess* proc_;
  const HdfsConfig* config_;
  SimResource xceiver_;
  Tracepoint* tp_dtp_;
  Tracepoint* tp_dtp_done_;
  Tracepoint* tp_incr_read_;
  Tracepoint* tp_incr_write_;
  Tracepoint* tp_fis_read_;
  Tracepoint* tp_fos_write_;
};

class HdfsNameNode {
 public:
  HdfsNameNode(SimProcess* proc, HdfsConfig config, uint64_t seed);

  SimProcess* process() { return proc_; }
  const HdfsConfig& config() const { return config_; }

  void RegisterDataNode(HdfsDataNode* dn) { datanodes_.push_back(dn); }
  const std::vector<HdfsDataNode*>& datanodes() const { return datanodes_; }

  // Creates `count` files of `file_bytes` each (0 = one block), decomposed
  // into block_bytes blocks whose `replication` replicas are placed uniformly
  // at random across registered DataNodes.
  void CreateFiles(size_t count, uint64_t file_bytes = 0);
  size_t file_count() const { return files_.size(); }
  const HdfsFile& file(uint64_t id) const { return files_[id]; }

  // Server-side GetBlockLocations: returns, per block, the replica locations
  // ordered by the (possibly buggy) selection policy relative to
  // `client_host`. The tracepoint fires once per call (like the real RPC),
  // exporting the first block's replica set.
  void HandleGetBlockLocations(
      CtxPtr ctx, uint64_t file_id, const std::string& client_host,
      std::function<void(CtxPtr, std::vector<std::vector<HdfsDataNode*>>)> respond);

  // Server-side metadata-only ops (NNBench-style Open/Create/Rename).
  void HandleMetadataOp(CtxPtr ctx, const std::string& op, const std::string& src,
                        RpcRespond respond);

  // Server-side block allocation for writes: picks `replication` pipeline
  // targets, preferring a DataNode local to `client_host` for the head.
  void HandleAllocateBlock(CtxPtr ctx, const std::string& client_host,
                           std::function<void(CtxPtr, std::vector<HdfsDataNode*>)> respond);

 private:
  // True for ops that take the namespace lock exclusively.
  static bool IsWriteOp(const std::string& op);

  SimProcess* proc_;
  HdfsConfig config_;
  Rng rng_;
  // The global namespace lock: every metadata op serializes through it;
  // write ops hold it for namenode_write_lock_micros.
  SimResource namespace_lock_;
  std::vector<HdfsDataNode*> datanodes_;
  std::vector<HdfsFile> files_;
  Tracepoint* tp_getloc_;
  Tracepoint* tp_client_protocol_;
  Tracepoint* tp_client_protocol_done_;
};

// The client library: lives in any process that talks to HDFS. Carries the
// per-request path client -> NameNode -> DataNode with baggage throughout.
class HdfsClient {
 public:
  // `proc` is the process embedding the client (a StressTest client, an HBase
  // RegionServer, a MapReduce task, ...).
  HdfsClient(SimProcess* proc, HdfsNameNode* namenode, uint64_t seed);

  SimProcess* process() { return proc_; }
  HdfsNameNode* namenode() { return namenode_; }

  struct ReadResult {
    int64_t latency_micros = 0;
    std::string datanode_host;
  };

  // Reads `bytes` of file `file_id`: GetBlockLocations, replica selection
  // (buggy or fixed per config), DataTransferProtocol read.
  void Read(CtxPtr ctx, uint64_t file_id, uint64_t bytes,
            std::function<void(CtxPtr, ReadResult)> done);

  // Writes `bytes` to a new file through a replication pipeline: the
  // NameNode allocates `replication` targets (local-first), the client
  // streams to the first DataNode, which chains to the rest.
  void Write(CtxPtr ctx, uint64_t bytes, std::function<void(CtxPtr)> done);

  // Metadata-only op (Open/Create/Rename).
  void MetadataOp(CtxPtr ctx, const std::string& op, std::function<void(CtxPtr)> done);

 private:
  // In-flight multi-block read: block targets/sizes and the completion.
  struct ReadState {
    std::vector<HdfsDataNode*> targets;
    std::vector<uint64_t> sizes;
    size_t next = 0;
    std::string src;
    double requester_rate = 0;
    int64_t start = 0;
    std::function<void(CtxPtr, ReadResult)> done;
  };

  // Fires the ClientProtocols union tracepoint (Q2's join source).
  void FireClientProtocols(const CtxPtr& ctx);

  // Issues the next block read of `state`, or completes it.
  void ContinueRead(std::shared_ptr<ReadState> state, CtxPtr ctx);

  SimProcess* proc_;
  HdfsNameNode* namenode_;
  Rng rng_;
  Tracepoint* tp_client_protocols_;
};

// Convenience: builds a NameNode process + one DataNode per listed host.
struct HdfsDeployment {
  HdfsNameNode* namenode = nullptr;
  std::vector<std::unique_ptr<HdfsDataNode>> datanodes;
  std::unique_ptr<HdfsNameNode> namenode_owned;

  static HdfsDeployment Create(SimWorld* world, SimHost* namenode_host,
                               const std::vector<SimHost*>& datanode_hosts, HdfsConfig config,
                               uint64_t seed);
};

}  // namespace pivot

#endif  // PIVOT_SRC_HADOOP_HDFS_H_
