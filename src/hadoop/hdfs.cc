#include "src/hadoop/hdfs.h"

#include <algorithm>
#include <cassert>

#include "src/common/strings.h"
#include "src/hadoop/tracepoints.h"

namespace pivot {

// ---------------------------------------------------------------------------
// HdfsDataNode

HdfsDataNode::HdfsDataNode(SimProcess* proc, const HdfsConfig* config)
    : proc_(proc),
      config_(config),
      // One "unit" per op at a rate of 1/datanode_op_micros ops per µs.
      xceiver_(proc->world()->env(), proc->host()->name() + "/xceiver",
               static_cast<double>(kMicrosPerSecond) /
                   static_cast<double>(config->datanode_op_micros)) {
  tp_dtp_ = GetOrDefineTracepoint(proc, DnDataTransferProtocolDef());
  tp_dtp_done_ = GetOrDefineTracepoint(proc, DnTransferDoneDef());
  tp_incr_read_ = GetOrDefineTracepoint(proc, IncrBytesReadDef());
  tp_incr_write_ = GetOrDefineTracepoint(proc, IncrBytesWrittenDef());
  tp_fis_read_ = GetOrDefineTracepoint(proc, FileInputStreamReadDef());
  tp_fos_write_ = GetOrDefineTracepoint(proc, FileOutputStreamWriteDef());
}

void HdfsDataNode::HandleRead(CtxPtr ctx, const std::string& src, uint64_t bytes,
                              double requester_nic_rate, RpcRespond respond) {
  SimEnvironment* env = proc_->world()->env();
  int64_t gc = proc_->PauseDelay();
  tp_dtp_->Invoke(ctx.get(), {{"op", Value("READ")}, {"src", Value(src)}});

  env->Schedule(gc, [this, ctx, src, bytes, gc, requester_nic_rate,
                     respond = std::move(respond)]() mutable {
    xceiver_.Transfer(1, [this, ctx, src, bytes, gc, requester_nic_rate,
                          respond = std::move(respond)]() mutable {
    proc_->host()->disk().Transfer(
        bytes, [this, ctx, bytes, gc, requester_nic_rate,
                respond = std::move(respond)](int64_t, int64_t) mutable {
          auto delta = static_cast<int64_t>(bytes);
          tp_fis_read_->Invoke(ctx.get(), {{"delta", Value(delta)}, {"category", Value("HDFS")}});
          tp_incr_read_->Invoke(ctx.get(), {{"delta", Value(delta)}});

          // Response-path timing estimates exported for latency decomposition
          // (Fig 9b): how long the response will sit in the NIC queue and how
          // long the data transfer takes over the path bottleneck.
          SimResource& nic = proc_->host()->nic_out();
          int64_t blocked = nic.QueueDelay();
          double path_rate = std::min(nic.rate(), requester_nic_rate > 0
                                                      ? requester_nic_rate
                                                      : nic.rate());
          auto transfer = static_cast<int64_t>(static_cast<double>(bytes) / path_rate *
                                               kMicrosPerSecond);
          tp_dtp_done_->Invoke(ctx.get(), {{"op", Value("READ")},
                                           {"transfer", Value(transfer)},
                                           {"blocked", Value(blocked)},
                                           {"gc", Value(gc)}});
          respond(std::move(ctx), bytes + config_->rpc_response_bytes);
        });
    });
  });
}

void HdfsDataNode::HandleWrite(CtxPtr ctx, const std::string& src, uint64_t bytes,
                               std::vector<HdfsDataNode*> downstream, RpcRespond respond) {
  SimEnvironment* env = proc_->world()->env();
  int64_t gc = proc_->PauseDelay();
  tp_dtp_->Invoke(ctx.get(), {{"op", Value("WRITE")}, {"src", Value(src)}});

  env->Schedule(gc, [this, ctx, src, bytes, gc, downstream = std::move(downstream),
                     respond = std::move(respond)]() mutable {
    xceiver_.Transfer(1, [this, ctx, src, bytes, gc, downstream = std::move(downstream),
                          respond = std::move(respond)]() mutable {
    proc_->host()->disk().Transfer(
        bytes, [this, ctx, src, bytes, gc, downstream = std::move(downstream),
                respond = std::move(respond)](int64_t, int64_t) mutable {
          auto delta = static_cast<int64_t>(bytes);
          tp_fos_write_->Invoke(ctx.get(), {{"delta", Value(delta)}, {"category", Value("HDFS")}});
          tp_incr_write_->Invoke(ctx.get(), {{"delta", Value(delta)}});
          tp_dtp_done_->Invoke(ctx.get(), {{"op", Value("WRITE")},
                                           {"transfer", Value(int64_t{0})},
                                           {"blocked", Value(int64_t{0})},
                                           {"gc", Value(gc)}});
          if (downstream.empty()) {
            respond(std::move(ctx), config_->rpc_response_bytes);
            return;
          }
          // Chain the block to the next replica; ack only after it acks.
          HdfsDataNode* next = downstream.front();
          std::vector<HdfsDataNode*> rest(downstream.begin() + 1, downstream.end());
          SimRpcCall(
              proc_, next->process(), std::move(ctx), config_->rpc_request_bytes + bytes,
              [next, src, bytes, rest = std::move(rest)](CtxPtr sctx,
                                                         RpcRespond inner) mutable {
                next->HandleWrite(std::move(sctx), src, bytes, std::move(rest),
                                  std::move(inner));
              },
              [this, respond = std::move(respond)](CtxPtr back) mutable {
                respond(std::move(back), config_->rpc_response_bytes);
              });
        });
    });
  });
}

// ---------------------------------------------------------------------------
// HdfsNameNode

HdfsNameNode::HdfsNameNode(SimProcess* proc, HdfsConfig config, uint64_t seed)
    : proc_(proc),
      config_(config),
      rng_(seed),
      namespace_lock_(proc->world()->env(), "NameNode/nslock", 1.0) {
  tp_getloc_ = GetOrDefineTracepoint(proc, NnGetBlockLocationsDef());
  tp_client_protocol_ = GetOrDefineTracepoint(proc, NnClientProtocolDef());
  tp_client_protocol_done_ = GetOrDefineTracepoint(proc, NnClientProtocolDoneDef());
}

bool HdfsNameNode::IsWriteOp(const std::string& op) {
  return op == "create" || op == "rename" || op == "delete" || op == "mkdir";
}

void HdfsNameNode::CreateFiles(size_t count, uint64_t file_bytes) {
  assert(datanodes_.size() >= static_cast<size_t>(config_.replication));
  files_.clear();
  files_.reserve(count);
  if (file_bytes == 0) {
    file_bytes = config_.block_bytes;
  }
  uint64_t next_block_id = 0;
  for (size_t i = 0; i < count; ++i) {
    HdfsFile file;
    file.id = i;
    file.bytes = file_bytes;
    size_t nblocks =
        static_cast<size_t>((file_bytes + config_.block_bytes - 1) / config_.block_bytes);
    for (size_t b = 0; b < nblocks; ++b) {
      HdfsBlock block;
      block.id = next_block_id++;
      // Choose `replication` distinct DataNodes uniformly at random.
      std::vector<size_t> indices(datanodes_.size());
      for (size_t j = 0; j < indices.size(); ++j) {
        indices[j] = j;
      }
      for (int r = 0; r < config_.replication; ++r) {
        size_t pick =
            static_cast<size_t>(r) + rng_.NextBelow(indices.size() - static_cast<size_t>(r));
        std::swap(indices[static_cast<size_t>(r)], indices[pick]);
        block.replicas.push_back(datanodes_[indices[static_cast<size_t>(r)]]);
      }
      file.blocks.push_back(std::move(block));
    }
    files_.push_back(std::move(file));
  }
}

void HdfsNameNode::HandleGetBlockLocations(
    CtxPtr ctx, uint64_t file_id, const std::string& client_host,
    std::function<void(CtxPtr, std::vector<std::vector<HdfsDataNode*>>)> respond) {
  SimEnvironment* env = proc_->world()->env();
  int64_t gc = proc_->PauseDelay();
  std::string src = "file-" + std::to_string(file_id);
  tp_client_protocol_->Invoke(ctx.get(),
                              {{"op", Value("getBlockLocations")}, {"src", Value(src)}});

  assert(file_id < files_.size());
  const HdfsFile& file = files_[file_id];

  // Orders one block's replicas: local replicas first, then the rest.
  // HDFS-6268: without the fix the NameNode leaves the non-local replicas in
  // a deterministic topology order instead of randomizing them.
  auto order_replicas = [&](const std::vector<HdfsDataNode*>& replicas) {
    std::vector<HdfsDataNode*> local;
    std::vector<HdfsDataNode*> rest;
    for (HdfsDataNode* dn : replicas) {
      if (dn->host_name() == client_host) {
        local.push_back(dn);
      } else {
        rest.push_back(dn);
      }
    }
    if (config_.namenode_static_replica_order) {
      // pseudoSortByDistance without randomization: a fixed topology order
      // (configurable), falling back to DataNode registration order.
      auto pos = [this](HdfsDataNode* dn) -> ptrdiff_t {
        if (!config_.static_order_hosts.empty()) {
          auto it = std::find(config_.static_order_hosts.begin(),
                              config_.static_order_hosts.end(), dn->host_name());
          if (it != config_.static_order_hosts.end()) {
            return it - config_.static_order_hosts.begin();
          }
        }
        return static_cast<ptrdiff_t>(config_.static_order_hosts.size()) +
               (std::find(datanodes_.begin(), datanodes_.end(), dn) - datanodes_.begin());
      };
      std::sort(rest.begin(), rest.end(),
                [&pos](HdfsDataNode* a, HdfsDataNode* b) { return pos(a) < pos(b); });
    } else {
      for (size_t i = rest.size(); i > 1; --i) {
        std::swap(rest[i - 1], rest[rng_.NextBelow(i)]);
      }
    }
    std::vector<HdfsDataNode*> ordered = std::move(local);
    ordered.insert(ordered.end(), rest.begin(), rest.end());
    return ordered;
  };

  std::vector<std::vector<HdfsDataNode*>> per_block;
  per_block.reserve(file.blocks.size());
  for (const HdfsBlock& block : file.blocks) {
    per_block.push_back(order_replicas(block.replicas));
  }

  // Export the first block's replica *set* in canonical (sorted) order so
  // queries grouping by `replicas` (Q5, Q7) see one group per set, and
  // clients receive the policy-ordered per-block lists separately.
  std::vector<std::string> sorted_hosts;
  for (HdfsDataNode* dn : per_block.front()) {
    sorted_hosts.push_back(dn->host_name());
  }
  std::sort(sorted_hosts.begin(), sorted_hosts.end());
  tp_getloc_->Invoke(ctx.get(),
                     {{"src", Value(src)}, {"replicas", Value(StrJoin(sorted_hosts, ","))}});

  // Lookups take the namespace lock *shared* (read path): they wait out any
  // exclusive writer but run concurrently with each other — so a NameNode
  // bogged down by write locking delays reads without reads serializing.
  int64_t lockwait = namespace_lock_.QueueDelay();
  env->Schedule(gc + lockwait + config_.namenode_op_micros,
                [this, ctx, lockwait, per_block = std::move(per_block),
                 respond = std::move(respond)]() mutable {
                  tp_client_protocol_done_->Invoke(
                      ctx.get(),
                      {{"op", Value("getBlockLocations")}, {"lockwait", Value(lockwait)}});
                  respond(std::move(ctx), std::move(per_block));
                });
}

void HdfsNameNode::HandleAllocateBlock(
    CtxPtr ctx, const std::string& client_host,
    std::function<void(CtxPtr, std::vector<HdfsDataNode*>)> respond) {
  SimEnvironment* env = proc_->world()->env();
  int64_t gc = proc_->PauseDelay();
  tp_client_protocol_->Invoke(ctx.get(), {{"op", Value("addBlock")}, {"src", Value("new-file")}});

  // Local-first placement, then random distinct remote targets.
  std::vector<HdfsDataNode*> targets;
  for (HdfsDataNode* dn : datanodes_) {
    if (dn->host_name() == client_host) {
      targets.push_back(dn);
      break;
    }
  }
  while (targets.size() < static_cast<size_t>(config_.replication) &&
         targets.size() < datanodes_.size()) {
    HdfsDataNode* pick = datanodes_[rng_.NextBelow(datanodes_.size())];
    if (std::find(targets.begin(), targets.end(), pick) == targets.end()) {
      targets.push_back(pick);
    }
  }

  // Block allocation mutates the namespace: exclusive lock.
  env->Schedule(gc, [this, ctx, targets = std::move(targets),
                     respond = std::move(respond)]() mutable {
    namespace_lock_.Occupy(
        config_.namenode_write_lock_micros,
        [this, ctx, targets = std::move(targets),
         respond = std::move(respond)](int64_t queued) mutable {
          tp_client_protocol_done_->Invoke(
              ctx.get(), {{"op", Value("addBlock")}, {"lockwait", Value(queued)}});
          respond(std::move(ctx), std::move(targets));
        });
  });
}

void HdfsNameNode::HandleMetadataOp(CtxPtr ctx, const std::string& op, const std::string& src,
                                    RpcRespond respond) {
  SimEnvironment* env = proc_->world()->env();
  int64_t gc = proc_->PauseDelay();
  tp_client_protocol_->Invoke(ctx.get(), {{"op", Value(op)}, {"src", Value(src)}});
  uint64_t response_bytes = config_.rpc_response_bytes;
  // Write ops hold the namespace lock exclusively (§6.2's NameNode-overload
  // scenario); read ops take it shared — they wait out writers but run
  // concurrently with each other.
  if (IsWriteOp(op)) {
    env->Schedule(gc, [this, ctx, op, response_bytes, respond = std::move(respond)]() mutable {
      namespace_lock_.Occupy(
          config_.namenode_write_lock_micros,
          [this, ctx, op, response_bytes, respond = std::move(respond)](int64_t queued) mutable {
            tp_client_protocol_done_->Invoke(ctx.get(),
                                             {{"op", Value(op)}, {"lockwait", Value(queued)}});
            respond(std::move(ctx), response_bytes);
          });
    });
    return;
  }
  int64_t lockwait = namespace_lock_.QueueDelay();
  env->Schedule(gc + lockwait + config_.namenode_op_micros,
                [this, ctx, op, lockwait, response_bytes,
                 respond = std::move(respond)]() mutable {
                  tp_client_protocol_done_->Invoke(
                      ctx.get(), {{"op", Value(op)}, {"lockwait", Value(lockwait)}});
                  respond(std::move(ctx), response_bytes);
                });
}

// ---------------------------------------------------------------------------
// HdfsClient

HdfsClient::HdfsClient(SimProcess* proc, HdfsNameNode* namenode, uint64_t seed)
    : proc_(proc), namenode_(namenode), rng_(seed) {
  tp_client_protocols_ = GetOrDefineTracepoint(proc, ClientProtocolsDef());
  // An HDFS client embedded in another component (RegionServer WALs, MRTask
  // I/O) adds that component's edges to the NameNode and DataNodes.
  const std::string& me = proc->component();
  if (!me.empty()) {
    analysis::PropagationRegistry& graph = proc->world()->propagation();
    analysis::DeclareRpcBoundary(&graph, me, "NN", "ClientProtocol");
    analysis::DeclareRpcBoundary(&graph, me, "DN", "DataTransferProtocol");
  }
}

void HdfsClient::FireClientProtocols(const CtxPtr& ctx) {
  tp_client_protocols_->Invoke(
      ctx.get(),
      {{"procName", Value(proc_->name())}, {"system", Value("HDFS")}});
}

void HdfsClient::Read(CtxPtr ctx, uint64_t file_id, uint64_t bytes,
                      std::function<void(CtxPtr, ReadResult)> done) {
  FireClientProtocols(ctx);
  const HdfsConfig& config = namenode_->config();
  int64_t start = proc_->world()->env()->now_micros();

  auto locations = std::make_shared<std::vector<std::vector<HdfsDataNode*>>>();
  HdfsNameNode* nn = namenode_;
  std::string client_host = proc_->host()->name();

  SimRpcCall(
      proc_, nn->process(), ctx, config.rpc_request_bytes,
      [nn, file_id, client_host, locations](CtxPtr sctx, RpcRespond respond) {
        nn->HandleGetBlockLocations(
            std::move(sctx), file_id, client_host,
            [nn, locations, respond = std::move(respond)](
                CtxPtr c, std::vector<std::vector<HdfsDataNode*>> locs) {
              *locations = std::move(locs);
              respond(std::move(c), nn->config().rpc_response_bytes);
            });
      },
      [this, locations, bytes, file_id, start, client_host,
       done = std::move(done)](CtxPtr c) mutable {
        assert(!locations->empty());
        const HdfsConfig& cfg = namenode_->config();

        // Replica selection per block. HDFS-6268 client half: always take
        // the first location. Fixed behaviour: local replica if offered,
        // otherwise pick uniformly at random.
        auto choose = [this, &cfg, client_host](const std::vector<HdfsDataNode*>& ordered) {
          if (cfg.client_selects_first_location) {
            return ordered[0];
          }
          if (ordered[0]->host_name() == client_host) {
            return ordered[0];
          }
          return ordered[rng_.NextBelow(ordered.size())];
        };

        // Sequential block reads, the way a positional HDFS read walks the
        // file: block i from its selected replica, then block i+1, ...
        auto state = std::make_shared<ReadState>();
        uint64_t remaining = bytes;
        for (size_t b = 0; b < locations->size() && remaining > 0; ++b) {
          uint64_t take = std::min<uint64_t>(remaining, cfg.block_bytes);
          state->targets.push_back(choose((*locations)[b]));
          state->sizes.push_back(take);
          remaining -= take;
        }
        if (remaining > 0 && !state->targets.empty()) {
          // Read request larger than the file: charge the tail to the last
          // block (the simulator does not track file contents).
          state->sizes.back() += remaining;
        }
        state->src = "file-" + std::to_string(file_id);
        state->requester_rate = proc_->host()->nic_in().rate();
        state->start = start;
        state->done = std::move(done);
        ContinueRead(std::move(state), std::move(c));
      });
}

void HdfsClient::ContinueRead(std::shared_ptr<ReadState> state, CtxPtr ctx) {
  if (state->next >= state->targets.size()) {
    ReadResult result;
    result.latency_micros = proc_->world()->env()->now_micros() - state->start;
    result.datanode_host = state->targets.empty() ? "" : state->targets.back()->host_name();
    state->done(std::move(ctx), result);
    return;
  }
  HdfsDataNode* chosen = state->targets[state->next];
  uint64_t take = state->sizes[state->next];
  ++state->next;
  std::string src = state->src;
  double requester_rate = state->requester_rate;
  SimRpcCall(
      proc_, chosen->process(), std::move(ctx), namenode_->config().rpc_request_bytes,
      [chosen, src, take, requester_rate](CtxPtr sctx, RpcRespond respond) {
        chosen->HandleRead(std::move(sctx), src, take, requester_rate, std::move(respond));
      },
      // The continuation owns the state; the state never owns a closure, so
      // abandoned in-flight reads (simulation end) free cleanly.
      [this, state = std::move(state)](CtxPtr c2) mutable {
        ContinueRead(std::move(state), std::move(c2));
      });
}

void HdfsClient::Write(CtxPtr ctx, uint64_t bytes, std::function<void(CtxPtr)> done) {
  FireClientProtocols(ctx);
  const HdfsConfig& config = namenode_->config();
  HdfsNameNode* nn = namenode_;
  std::string client_host = proc_->host()->name();

  // 1. Ask the NameNode for a replication pipeline.
  auto pipeline = std::make_shared<std::vector<HdfsDataNode*>>();
  SimRpcCall(
      proc_, nn->process(), std::move(ctx), config.rpc_request_bytes,
      [nn, client_host, pipeline](CtxPtr sctx, RpcRespond respond) {
        nn->HandleAllocateBlock(
            std::move(sctx), client_host,
            [nn, pipeline, respond = std::move(respond)](CtxPtr c,
                                                         std::vector<HdfsDataNode*> targets) {
              *pipeline = std::move(targets);
              respond(std::move(c), nn->config().rpc_response_bytes);
            });
      },
      [this, pipeline, bytes, done = std::move(done)](CtxPtr c) mutable {
        assert(!pipeline->empty());
        // 2. Stream to the pipeline head; it chains to the rest.
        HdfsDataNode* head = (*pipeline)[0];
        std::vector<HdfsDataNode*> rest(pipeline->begin() + 1, pipeline->end());
        const HdfsConfig& cfg = namenode_->config();
        SimRpcCall(
            proc_, head->process(), std::move(c), cfg.rpc_request_bytes + bytes,
            [head, bytes, rest = std::move(rest)](CtxPtr sctx, RpcRespond respond) mutable {
              head->HandleWrite(std::move(sctx), "new-file", bytes, std::move(rest),
                                std::move(respond));
            },
            [done = std::move(done)](CtxPtr back) mutable { done(std::move(back)); });
      });
}

void HdfsClient::MetadataOp(CtxPtr ctx, const std::string& op, std::function<void(CtxPtr)> done) {
  FireClientProtocols(ctx);
  const HdfsConfig& config = namenode_->config();
  HdfsNameNode* nn = namenode_;
  SimRpcCall(
      proc_, nn->process(), std::move(ctx), config.rpc_request_bytes,
      [nn, op](CtxPtr sctx, RpcRespond respond) {
        nn->HandleMetadataOp(std::move(sctx), op, "/bench/file", std::move(respond));
      },
      [done = std::move(done)](CtxPtr c) mutable { done(std::move(c)); });
}

// ---------------------------------------------------------------------------
// HdfsDeployment

HdfsDeployment HdfsDeployment::Create(SimWorld* world, SimHost* namenode_host,
                                      const std::vector<SimHost*>& datanode_hosts,
                                      HdfsConfig config, uint64_t seed) {
  HdfsDeployment deployment;
  // The protocol defines the causal boundaries, not the live processes:
  // declare them at deployment construction so install-time reachability is
  // stable before any client process exists.
  analysis::PropagationRegistry& graph = world->propagation();
  graph.DeclareComponent("client", /*client_entry=*/true);
  analysis::DeclareRpcBoundary(&graph, "client", "NN", "ClientProtocol");
  analysis::DeclareRpcBoundary(&graph, "client", "DN", "DataTransferProtocol");
  analysis::DeclareRpcBoundary(&graph, "DN", "DN", "DataTransferProtocol pipeline");
  SimProcess* nn_proc = world->AddProcess(namenode_host, "NameNode", "NN");
  deployment.namenode_owned = std::make_unique<HdfsNameNode>(nn_proc, config, seed);
  deployment.namenode = deployment.namenode_owned.get();
  for (SimHost* host : datanode_hosts) {
    SimProcess* dn_proc = world->AddProcess(host, "DataNode", "DN");
    deployment.datanodes.push_back(
        std::make_unique<HdfsDataNode>(dn_proc, &deployment.namenode->config()));
    deployment.namenode->RegisterDataNode(deployment.datanodes.back().get());
  }
  return deployment;
}

}  // namespace pivot
