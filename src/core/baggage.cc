#include "src/core/baggage.h"

#include <algorithm>
#include <cassert>

#include "src/core/wire.h"
#include "src/telemetry/metrics.h"

namespace pivot {

namespace {

// Process-wide baggage telemetry (docs/OBSERVABILITY.md). Function-local
// statics keep the hot paths at one relaxed RMW per event with no lookups.
telemetry::Counter& PackCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("baggage.pack.count");
  return c;
}
telemetry::Counter& SplitCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("baggage.split.count");
  return c;
}
telemetry::Counter& JoinCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("baggage.join.count");
  return c;
}
telemetry::Counter& SerializeCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("baggage.serialize.count");
  return c;
}
telemetry::Counter& DeserializeCounter() {
  static telemetry::Counter& c = telemetry::Metrics().GetCounter("baggage.deserialize.count");
  return c;
}
telemetry::Counter& DeserializeErrorCounter() {
  static telemetry::Counter& c =
      telemetry::Metrics().GetCounter("baggage.deserialize.errors");
  return c;
}
telemetry::Counter& SerializeCacheHitCounter() {
  static telemetry::Counter& c =
      telemetry::Metrics().GetCounter("baggage.serialize_cache_hit");
  return c;
}
telemetry::Counter& SerializeCacheMissCounter() {
  static telemetry::Counter& c =
      telemetry::Metrics().GetCounter("baggage.serialize_cache_miss");
  return c;
}
telemetry::Histogram& SerializeBytesHistogram() {
  static telemetry::Histogram& h =
      telemetry::Metrics().GetHistogram("baggage.serialize.bytes");
  return h;
}
telemetry::Histogram& SerializeTuplesHistogram() {
  static telemetry::Histogram& h =
      telemetry::Metrics().GetHistogram("baggage.serialize.tuples");
  return h;
}

}  // namespace

bool BagSpec::operator==(const BagSpec& other) const {
  return semantics == other.semantics && limit == other.limit &&
         group_fields == other.group_fields && aggs == other.aggs;
}

// ---------------------------------------------------------------------------
// TupleBag

Aggregator& TupleBag::Agg() {
  if (!agg_init_) {
    // Packed tuples are raw inputs; branch/instance merging uses AddState.
    agg_ = Aggregator(spec_.group_fields, spec_.aggs);
    agg_init_ = true;
  }
  return agg_;
}

void TupleBag::Add(const Tuple& t) {
  switch (spec_.semantics) {
    case PackSemantics::kAll:
      if (tuples_.size() >= kMaxBagTuples) {
        ++dropped_;
        break;
      }
      tuples_.push_back(t);
      break;
    case PackSemantics::kFirstN:
      if (tuples_.size() < spec_.limit) {
        tuples_.push_back(t);
      }
      break;
    case PackSemantics::kRecentN:
      tuples_.push_back(t);
      if (tuples_.size() > spec_.limit) {
        tuples_.erase(tuples_.begin());
      }
      break;
    case PackSemantics::kAggregate:
      Agg().AddInput(t);
      break;
  }
}

void TupleBag::MergeFrom(const TupleBag& other) {
  assert(spec_ == other.spec() && "merging bags with different specs");
  dropped_ += other.dropped_;
  switch (spec_.semantics) {
    case PackSemantics::kAll: {
      size_t room = tuples_.size() < kMaxBagTuples ? kMaxBagTuples - tuples_.size() : 0;
      size_t take = std::min(room, other.tuples_.size());
      tuples_.insert(tuples_.end(), other.tuples_.begin(),
                     other.tuples_.begin() + static_cast<ptrdiff_t>(take));
      dropped_ += other.tuples_.size() - take;
      break;
    }
    case PackSemantics::kFirstN:
      // This bag is older: its tuples keep priority.
      for (const auto& t : other.tuples_) {
        if (tuples_.size() >= spec_.limit) {
          break;
        }
        tuples_.push_back(t);
      }
      break;
    case PackSemantics::kRecentN:
      // The other bag is newer: its tuples displace ours.
      tuples_.insert(tuples_.end(), other.tuples_.begin(), other.tuples_.end());
      while (tuples_.size() > spec_.limit) {
        tuples_.erase(tuples_.begin());
      }
      break;
    case PackSemantics::kAggregate:
      for (const auto& st : other.Contents()) {
        Agg().AddState(st);
      }
      break;
  }
}

void TupleBag::AddState(const Tuple& state) {
  assert(spec_.semantics == PackSemantics::kAggregate);
  Agg().AddState(state);
}

std::vector<Tuple> TupleBag::Contents() const {
  if (spec_.semantics == PackSemantics::kAggregate) {
    return agg_init_ ? agg_.StateTuples() : std::vector<Tuple>{};
  }
  return tuples_;
}

size_t TupleBag::size() const {
  if (spec_.semantics == PackSemantics::kAggregate) {
    return agg_init_ ? agg_.group_count() : 0;
  }
  return tuples_.size();
}

// ---------------------------------------------------------------------------
// Baggage

bool Baggage::Instance::has_tuples() const {
  for (const auto& [key, bag] : bags) {
    if (!bag.empty()) {
      return true;
    }
  }
  return false;
}

void Baggage::Pack(BagKey key, const BagSpec& spec, const Tuple& t) {
  PackCounter().Increment();
  active_cache_valid_ = false;  // The only mutation of the active instance.
  auto it = active_bags_.find(key);
  if (it == active_bags_.end()) {
    it = active_bags_.emplace(key, TupleBag(spec)).first;
  }
  it->second.Add(t);
}

std::vector<Tuple> Baggage::Unpack(BagKey key) const {
  // Gather the bag from every instance, oldest first, then combine under the
  // bag's semantics ("tuples are unpacked from each instance then combined
  // according to query logic", §5).
  const TupleBag* first = nullptr;
  std::vector<const TupleBag*> rest;
  for (const auto& inst : inactive_) {
    auto it = inst->bags.find(key);
    if (it != inst->bags.end()) {
      if (first == nullptr) {
        first = &it->second;
      } else {
        rest.push_back(&it->second);
      }
    }
  }
  auto it = active_bags_.find(key);
  if (it != active_bags_.end()) {
    if (first == nullptr) {
      first = &it->second;
    } else {
      rest.push_back(&it->second);
    }
  }
  if (first == nullptr) {
    return {};
  }
  if (rest.empty()) {
    return first->Contents();
  }
  TupleBag combined = *first;
  for (const TupleBag* b : rest) {
    combined.MergeFrom(*b);
  }
  return combined.Contents();
}

Baggage::InstancePtr Baggage::FreezeActive() const {
  auto frozen = std::make_shared<Instance>();
  frozen->id = active_id_;
  frozen->gen = active_gen_;
  frozen->bags = active_bags_;
  if (active_cache_valid_) {
    // The frozen snapshot inherits the memoized encoding; it stays valid
    // forever because the instance is immutable from here on.
    frozen->cache = active_cache_;
    frozen->encoded.store(true, std::memory_order_release);
  }
  return frozen;
}

std::pair<Baggage, Baggage> Baggage::Split() const {
  SplitCounter().Increment();
  auto [id1, id2] = active_id_.Split();

  // Each side retains the current contents as an inactive instance and gets a
  // fresh empty active instance with its half of the ID. The snapshot is
  // frozen once and shared — neither side deep-copies retained tuples, and
  // the existing inactive list is shared by pointer.
  InstancePtr frozen = FreezeActive();

  Baggage side1;
  side1.inactive_ = inactive_;
  side1.inactive_.push_back(frozen);
  side1.active_id_ = id1;
  side1.active_gen_ = active_gen_ + 1;

  Baggage side2;
  side2.inactive_ = inactive_;
  side2.inactive_.push_back(std::move(frozen));
  side2.active_id_ = id2;
  side2.active_gen_ = active_gen_ + 1;

  return {std::move(side1), std::move(side2)};
}

Baggage Baggage::Join(const Baggage& a, const Baggage& b) {
  JoinCounter().Increment();
  Baggage out;
  out.active_id_ = ItcId::Join(a.active_id_, b.active_id_);
  out.active_gen_ = std::max(a.active_gen_, b.active_gen_) + 1;

  // Merge the two active instances' contents bag-wise.
  out.active_bags_ = a.active_bags_;
  for (const auto& [key, bag] : b.active_bags_) {
    auto it = out.active_bags_.find(key);
    if (it == out.active_bags_.end()) {
      out.active_bags_.emplace(key, bag);
    } else {
      it->second.MergeFrom(bag);
    }
  }

  // Union of inactive instances, deduplicated by identity ("the inactive
  // instances from each branch are copied, and duplicates are discarded",
  // §5). Identity is (id, gen) — see the Instance comment. Instances shared
  // by both branches (the common case after a split) dedupe on pointer
  // equality before the id comparison.
  out.inactive_ = a.inactive_;
  for (const auto& inst : b.inactive_) {
    bool duplicate = false;
    for (const auto& existing : out.inactive_) {
      if (existing == inst || (existing->gen == inst->gen && existing->id == inst->id)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) {
      out.inactive_.push_back(inst);
    }
  }
  return out;
}

uint64_t Baggage::DroppedTupleCount() const {
  uint64_t n = 0;
  for (const auto& [key, bag] : active_bags_) {
    n += bag.dropped();
  }
  for (const auto& inst : inactive_) {
    for (const auto& [key, bag] : inst->bags) {
      n += bag.dropped();
    }
  }
  return n;
}

size_t Baggage::TupleCount() const {
  size_t n = 0;
  for (const auto& [key, bag] : active_bags_) {
    n += bag.size();
  }
  for (const auto& inst : inactive_) {
    for (const auto& [key, bag] : inst->bags) {
      n += bag.size();
    }
  }
  return n;
}

bool Baggage::IsTrivial() const {
  if (!inactive_.empty() || active_gen_ != 0 || active_id_ != ItcId::Seed()) {
    return false;
  }
  for (const auto& [key, bag] : active_bags_) {
    if (!bag.empty()) {
      return false;
    }
  }
  return true;
}

void Baggage::Clear() {
  active_id_ = ItcId::Seed();
  active_gen_ = 0;
  active_bags_.clear();
  inactive_.clear();
  active_cache_ = InstanceCache{};
  active_cache_valid_ = false;
}

// ---------------------------------------------------------------------------
// Serialization
//
// Layout (all varints unless noted):
//   [instance count]
//   per instance (active instance first):
//     [itc id (canonical bytes)] [bag count]
//     per bag: [key] [spec] [tuple count] [tuples...]
//   spec: [semantics u8] [limit] [#groups][names...] [#aggs][fn u8, from_state
//         u8, input, output]...
// A pristine baggage serializes to zero bytes.

void PutBagSpec(std::vector<uint8_t>* out, const BagSpec& spec) {
  out->push_back(static_cast<uint8_t>(spec.semantics));
  PutVarint64(out, spec.limit);
  PutVarint64(out, spec.group_fields.size());
  for (const auto& g : spec.group_fields) {
    PutString(out, g);
  }
  PutVarint64(out, spec.aggs.size());
  for (const auto& a : spec.aggs) {
    out->push_back(static_cast<uint8_t>(a.fn));
    out->push_back(a.from_state ? 1 : 0);
    PutString(out, a.input);
    PutString(out, a.output);
  }
}

bool GetBagSpec(const uint8_t* data, size_t size, size_t* pos, BagSpec* spec) {
  if (*pos >= size) {
    return false;
  }
  uint8_t sem = data[(*pos)++];
  if (sem > static_cast<uint8_t>(PackSemantics::kAggregate)) {
    return false;
  }
  spec->semantics = static_cast<PackSemantics>(sem);
  uint64_t limit = 0;
  if (!GetVarint64(data, size, pos, &limit) || limit > UINT32_MAX) {
    return false;
  }
  spec->limit = static_cast<uint32_t>(limit);
  uint64_t ngroups = 0;
  if (!GetVarint64(data, size, pos, &ngroups) || ngroups > size) {
    return false;
  }
  spec->group_fields.clear();
  for (uint64_t i = 0; i < ngroups; ++i) {
    std::string g;
    if (!GetString(data, size, pos, &g)) {
      return false;
    }
    spec->group_fields.push_back(std::move(g));
  }
  uint64_t naggs = 0;
  if (!GetVarint64(data, size, pos, &naggs) || naggs > size) {
    return false;
  }
  spec->aggs.clear();
  for (uint64_t i = 0; i < naggs; ++i) {
    if (size - *pos < 2) {
      return false;
    }
    AggSpec a;
    uint8_t fn = data[(*pos)++];
    if (fn > static_cast<uint8_t>(AggFn::kAverage)) {
      return false;
    }
    a.fn = static_cast<AggFn>(fn);
    a.from_state = data[(*pos)++] != 0;
    if (!GetString(data, size, pos, &a.input) || !GetString(data, size, pos, &a.output)) {
      return false;
    }
    spec->aggs.push_back(std::move(a));
  }
  return true;
}

namespace {

void PutBags(std::vector<uint8_t>* out, const std::map<BagKey, TupleBag>& bags,
             std::map<uint64_t, Baggage::SerializeStats::QueryShare>* shares) {
  PutVarint64(out, bags.size());
  for (const auto& [key, bag] : bags) {
    size_t bag_start = out->size();
    PutVarint64(out, key);
    PutBagSpec(out, bag.spec());
    std::vector<Tuple> contents = bag.Contents();
    PutVarint64(out, contents.size());
    for (const auto& t : contents) {
      PutTuple(out, t);
    }
    PutVarint64(out, bag.dropped());
    if (shares != nullptr) {
      auto& share = (*shares)[BagKeyQuery(key)];
      share.bytes += out->size() - bag_start;
      share.tuples += bag.size();
    }
  }
}

bool GetBags(const uint8_t* data, size_t size, size_t* pos, std::map<BagKey, TupleBag>* bags) {
  uint64_t nbags = 0;
  if (!GetVarint64(data, size, pos, &nbags) || nbags > size) {
    return false;
  }
  for (uint64_t i = 0; i < nbags; ++i) {
    uint64_t key = 0;
    BagSpec spec;
    if (!GetVarint64(data, size, pos, &key) || !GetBagSpec(data, size, pos, &spec)) {
      return false;
    }
    TupleBag bag(spec);
    uint64_t ntuples = 0;
    if (!GetVarint64(data, size, pos, &ntuples) || ntuples > size) {
      return false;
    }
    for (uint64_t j = 0; j < ntuples; ++j) {
      Tuple t;
      if (!GetTuple(data, size, pos, &t)) {
        return false;
      }
      if (spec.semantics == PackSemantics::kAggregate) {
        // Wire contents of aggregate bags are state tuples; absorb them via
        // the combiner path so re-serialization is lossless.
        bag.AddState(t);
      } else {
        bag.Add(t);
      }
    }
    uint64_t dropped = 0;
    if (!GetVarint64(data, size, pos, &dropped)) {
      return false;
    }
    bag.RestoreDropped(dropped);
    bags->emplace(key, std::move(bag));
  }
  return true;
}

}  // namespace

// Encodes the `[gen][id][bags...]` segment of one instance into `cache`,
// computing per-query attribution as a side effect (the cost is one map walk
// already being paid; caching it lets the stats overload hit too).
void Baggage::EncodeInstance(uint64_t gen, const ItcId& id,
                             const std::map<BagKey, TupleBag>& bags, InstanceCache* cache) {
  cache->bytes.clear();
  cache->shares.clear();
  PutVarint64(&cache->bytes, gen);
  id.Encode(&cache->bytes);
  PutBags(&cache->bytes, bags, &cache->shares);
  cache->has_shares = true;
}

void Baggage::Instance::EnsureEncoded() const {
  std::call_once(encode_once, [this] {
    if (encoded.load(std::memory_order_relaxed)) {
      return;  // Seeded from the wire at decode time (or at FreezeActive).
    }
    EncodeInstance(gen, id, bags, &cache);
    encoded.store(true, std::memory_order_release);
  });
}

std::vector<uint8_t> Baggage::Serialize(SerializeStats* stats) const {
  SerializeCounter().Increment();
  if (IsTrivial()) {
    SerializeBytesHistogram().Observe(0);
    if (stats != nullptr) {
      *stats = SerializeStats{};
      stats->instances = instance_count();
    }
    return {};
  }
  const bool want_shares = stats != nullptr;
  if (stats != nullptr) {
    *stats = SerializeStats{};
  }

  // Active instance: re-encode only if dirty (Pack since the last encode) or
  // if the caller wants attribution a wire-seeded cache cannot provide.
  if (!active_cache_valid_ || (want_shares && !active_cache_.has_shares)) {
    EncodeInstance(active_gen_, active_id_, active_bags_, &active_cache_);
    active_cache_valid_ = true;
    SerializeCacheMissCounter().Increment();
  } else {
    SerializeCacheHitCounter().Increment();
  }

  size_t total = 0;
  for (const auto& inst : inactive_) {
    if (inst->encoded.load(std::memory_order_acquire)) {
      SerializeCacheHitCounter().Increment();
    } else {
      SerializeCacheMissCounter().Increment();
    }
    inst->EnsureEncoded();
    total += inst->cache.bytes.size();
  }

  std::vector<uint8_t> out;
  out.reserve(10 + active_cache_.bytes.size() + total);
  PutVarint64(&out, 1 + inactive_.size());
  out.insert(out.end(), active_cache_.bytes.begin(), active_cache_.bytes.end());
  if (want_shares) {
    for (const auto& [q, share] : active_cache_.shares) {
      auto& dst = stats->queries[q];
      dst.bytes += share.bytes;
      dst.tuples += share.tuples;
    }
  }
  for (const auto& inst : inactive_) {
    out.insert(out.end(), inst->cache.bytes.begin(), inst->cache.bytes.end());
    if (want_shares) {
      if (inst->cache.has_shares) {
        for (const auto& [q, share] : inst->cache.shares) {
          auto& dst = stats->queries[q];
          dst.bytes += share.bytes;
          dst.tuples += share.tuples;
        }
      } else {
        // Wire-seeded cache: attribution needs a throwaway re-encode. The
        // frozen instance itself is never mutated (it may be shared across
        // threads), so the upgrade is not persisted.
        InstanceCache tmp;
        EncodeInstance(inst->gen, inst->id, inst->bags, &tmp);
        for (const auto& [q, share] : tmp.shares) {
          auto& dst = stats->queries[q];
          dst.bytes += share.bytes;
          dst.tuples += share.tuples;
        }
      }
    }
  }
  SerializeBytesHistogram().Observe(out.size());
  SerializeTuplesHistogram().Observe(TupleCount());
  if (stats != nullptr) {
    stats->bytes = out.size();
    stats->tuples = TupleCount();
    stats->instances = instance_count();
  }
  return out;
}

Result<Baggage> Baggage::Deserialize(const uint8_t* data, size_t size) {
  DeserializeCounter().Increment();
  Baggage out;
  if (size == 0) {
    return out;  // Pristine baggage.
  }
  size_t pos = 0;
  uint64_t ninst = 0;
  if (!GetVarint64(data, size, &pos, &ninst) || ninst == 0 || ninst > size) {
    DeserializeErrorCounter().Increment();
    return DataLossError("baggage: bad instance count");
  }
  // Each instance's cache is seeded with the wire slice it was decoded from,
  // so re-serializing an unmodified baggage — the response leg of an RPC hop —
  // copies cached bytes instead of re-encoding every bag. Our encoder is
  // canonical (ordered maps, minimal varints), so for bytes we produced the
  // slice equals what a re-encode would emit.
  size_t active_start = pos;
  if (!GetVarint64(data, size, &pos, &out.active_gen_) ||
      !ItcId::Decode(data, size, &pos, &out.active_id_) ||
      !GetBags(data, size, &pos, &out.active_bags_)) {
    DeserializeErrorCounter().Increment();
    return DataLossError("baggage: bad active instance");
  }
  out.active_cache_.bytes.assign(data + active_start, data + pos);
  out.active_cache_.has_shares = false;
  out.active_cache_valid_ = true;
  for (uint64_t i = 1; i < ninst; ++i) {
    auto inst = std::make_shared<Instance>();
    size_t inst_start = pos;
    if (!GetVarint64(data, size, &pos, &inst->gen) ||
        !ItcId::Decode(data, size, &pos, &inst->id) ||
        !GetBags(data, size, &pos, &inst->bags)) {
      DeserializeErrorCounter().Increment();
      return DataLossError("baggage: bad inactive instance");
    }
    inst->cache.bytes.assign(data + inst_start, data + pos);
    inst->cache.has_shares = false;
    inst->encoded.store(true, std::memory_order_release);
    out.inactive_.push_back(std::move(inst));
  }
  if (pos != size) {
    DeserializeErrorCounter().Increment();
    return DataLossError("baggage: trailing bytes");
  }
  return out;
}

}  // namespace pivot
