# Empty compiler generated dependencies file for bench_table5_overhead.
# This may be replaced when dependencies are built.
