#include "src/hadoop/yarn.h"

#include "src/hadoop/tracepoints.h"

namespace pivot {

YarnNodeManager::YarnNodeManager(SimProcess* proc, int max_containers)
    : proc_(proc), max_containers_(max_containers) {
  tp_container_start_ = GetOrDefineTracepoint(proc, YarnContainerStartDef());
}

void YarnNodeManager::LaunchContainer(const std::string& job, CtxPtr ctx,
                                      std::function<void(std::function<void()>)> body) {
  queue_.push_back(PendingContainer{job, std::move(ctx), std::move(body)});
  MaybeStartNext();
}

void YarnNodeManager::MaybeStartNext() {
  if (running_ >= max_containers_ || queue_.empty()) {
    return;
  }
  PendingContainer next = std::move(queue_.front());
  queue_.pop_front();
  ++running_;
  // Queue hand-off boundary: the container request crossed the NM's launch
  // queue (the context — and its baggage — rides through).
  proc_->world()->propagation().ObserveEdge(proc_->component(), proc_->component(), "queue");
  int64_t container_id = next_container_id_++;
  // The container launch is part of the submitting job's causal history: the
  // tracepoint fires in the requester's context (fresh context if none).
  ExecutionContext fallback(proc_->runtime());
  ExecutionContext* ctx = next.ctx != nullptr ? next.ctx.get() : &fallback;
  tp_container_start_->Invoke(ctx,
                              {{"container", Value(container_id)}, {"job", Value(next.job)}});
  // Container startup cost.
  proc_->world()->env()->Schedule(50 * kMicrosPerMilli, [this, body = std::move(next.body)] {
    body([this] {
      --running_;
      MaybeStartNext();
    });
  });
}

YarnResourceManager::YarnResourceManager(SimProcess* proc) : proc_(proc) {}

YarnNodeManager* YarnResourceManager::NextNodeManager() {
  if (node_managers_.empty()) {
    return nullptr;
  }
  YarnNodeManager* nm = node_managers_[next_ % node_managers_.size()];
  ++next_;
  return nm;
}

YarnDeployment YarnDeployment::Create(SimWorld* world, SimHost* rm_host,
                                      const std::vector<SimHost*>& nm_hosts,
                                      int containers_per_node) {
  YarnDeployment deployment;
  // Protocol-level boundary: the NM's container launch queue.
  world->propagation().DeclareEdge(analysis::PropagationEdge{
      "NM", "NM", "queue", "container launch queue", /*forwards_baggage=*/true});
  SimProcess* rm_proc = world->AddProcess(rm_host, "ResourceManager", "RM");
  deployment.resource_manager = std::make_unique<YarnResourceManager>(rm_proc);
  for (SimHost* host : nm_hosts) {
    SimProcess* nm_proc = world->AddProcess(host, "NodeManager", "NM");
    deployment.node_managers.push_back(
        std::make_unique<YarnNodeManager>(nm_proc, containers_per_node));
    deployment.resource_manager->RegisterNodeManager(deployment.node_managers.back().get());
  }
  return deployment;
}

}  // namespace pivot
