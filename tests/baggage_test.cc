#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rand.h"
#include "src/core/baggage.h"
#include "src/core/wire.h"
#include "src/telemetry/metrics.h"

namespace pivot {
namespace {

Tuple T(const std::string& name, int64_t v) { return Tuple{{name, Value(v)}}; }

std::vector<std::string> Canonical(const std::vector<Tuple>& tuples) {
  std::vector<std::string> out;
  out.reserve(tuples.size());
  for (const auto& t : tuples) {
    out.push_back(t.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// TupleBag semantics

TEST(TupleBagTest, AllKeepsEverything) {
  TupleBag bag(BagSpec::All());
  for (int64_t i = 0; i < 5; ++i) {
    bag.Add(T("x", i));
  }
  EXPECT_EQ(bag.size(), 5u);
}

TEST(TupleBagTest, FirstKeepsFirst) {
  TupleBag bag(BagSpec::First(1));
  bag.Add(T("x", 1));
  bag.Add(T("x", 2));
  auto contents = bag.Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents[0].Get("x").int_value(), 1);
}

TEST(TupleBagTest, FirstNKeepsFirstN) {
  TupleBag bag(BagSpec::First(2));
  for (int64_t i = 1; i <= 4; ++i) {
    bag.Add(T("x", i));
  }
  auto contents = bag.Contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0].Get("x").int_value(), 1);
  EXPECT_EQ(contents[1].Get("x").int_value(), 2);
}

TEST(TupleBagTest, RecentKeepsMostRecent) {
  TupleBag bag(BagSpec::Recent(1));
  bag.Add(T("x", 1));
  bag.Add(T("x", 2));
  auto contents = bag.Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents[0].Get("x").int_value(), 2);
}

TEST(TupleBagTest, RecentNKeepsLastNInOrder) {
  TupleBag bag(BagSpec::Recent(2));
  for (int64_t i = 1; i <= 4; ++i) {
    bag.Add(T("x", i));
  }
  auto contents = bag.Contents();
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0].Get("x").int_value(), 3);
  EXPECT_EQ(contents[1].Get("x").int_value(), 4);
}

TEST(TupleBagTest, AggregateBagAccumulates) {
  TupleBag bag(BagSpec::Aggregated({}, {{AggFn::kSum, "x", "SUM(x)", false}}));
  bag.Add(T("x", 3));
  bag.Add(T("x", 4));
  auto contents = bag.Contents();
  ASSERT_EQ(contents.size(), 1u);
  EXPECT_EQ(contents[0].Get("SUM(x)").int_value(), 7);
}

TEST(TupleBagTest, MergeFirstPrefersThis) {
  TupleBag a(BagSpec::First(1));
  TupleBag b(BagSpec::First(1));
  a.Add(T("x", 1));
  b.Add(T("x", 2));
  a.MergeFrom(b);
  EXPECT_EQ(a.Contents()[0].Get("x").int_value(), 1);
}

TEST(TupleBagTest, MergeRecentPrefersOther) {
  TupleBag a(BagSpec::Recent(1));
  TupleBag b(BagSpec::Recent(1));
  a.Add(T("x", 1));
  b.Add(T("x", 2));
  a.MergeFrom(b);
  EXPECT_EQ(a.Contents()[0].Get("x").int_value(), 2);
}

TEST(TupleBagTest, MergeAggregateCombines) {
  BagSpec spec = BagSpec::Aggregated({}, {{AggFn::kCount, "", "COUNT", false}});
  TupleBag a(spec);
  TupleBag b(spec);
  a.Add(T("x", 1));
  b.Add(T("x", 2));
  b.Add(T("x", 3));
  a.MergeFrom(b);
  EXPECT_EQ(a.Contents()[0].Get("COUNT").int_value(), 3);
}

// ---------------------------------------------------------------------------
// Baggage pack / unpack

TEST(BaggageTest, PackUnpack) {
  Baggage bag;
  bag.Pack(1, BagSpec::All(), T("x", 1));
  bag.Pack(1, BagSpec::All(), T("x", 2));
  auto tuples = bag.Unpack(1);
  ASSERT_EQ(tuples.size(), 2u);
  EXPECT_TRUE(bag.Unpack(999).empty());
}

TEST(BaggageTest, DistinctBagsAreIsolated) {
  Baggage bag;
  bag.Pack(1, BagSpec::All(), T("x", 1));
  bag.Pack(2, BagSpec::All(), T("y", 9));
  EXPECT_EQ(bag.Unpack(1).size(), 1u);
  EXPECT_EQ(bag.Unpack(2).size(), 1u);
  EXPECT_EQ(bag.Unpack(2)[0].Get("y").int_value(), 9);
}

TEST(BaggageTest, TrivialBaggageSerializesToZeroBytes) {
  // "By default, Pivot Tracing propagates an empty baggage with a serialized
  // size of 0 bytes" (§6.3).
  Baggage bag;
  EXPECT_TRUE(bag.IsTrivial());
  EXPECT_TRUE(bag.Serialize().empty());
}

TEST(BaggageTest, DeserializeEmptyYieldsTrivial) {
  Result<Baggage> bag = Baggage::Deserialize(nullptr, 0);
  ASSERT_TRUE(bag.ok());
  EXPECT_TRUE(bag->IsTrivial());
}

TEST(BaggageTest, SerializeRoundTripPreservesTuples) {
  Baggage bag;
  bag.Pack(7, BagSpec::First(2), Tuple{{"cl.procName", Value("HGET")}});
  bag.Pack(9, BagSpec::Aggregated({"g"}, {{AggFn::kSum, "v", "S", false}}),
           Tuple{{"g", Value("a")}, {"v", Value(int64_t{5})}});
  std::vector<uint8_t> bytes = bag.Serialize();
  ASSERT_FALSE(bytes.empty());

  Result<Baggage> decoded = Baggage::Deserialize(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(Canonical(decoded->Unpack(7)), Canonical(bag.Unpack(7)));
  EXPECT_EQ(Canonical(decoded->Unpack(9)), Canonical(bag.Unpack(9)));
  // Re-serialization is stable.
  EXPECT_EQ(decoded->Serialize(), bytes);
}

TEST(BaggageTest, SerializedSizeGrowsLinearlyInTuples) {
  // Fig 10's premise: size is approximately linear in packed tuple count.
  auto size_with = [](int n) {
    Baggage bag;
    for (int i = 0; i < n; ++i) {
      bag.Pack(1, BagSpec::All(), T("x", i));
    }
    return bag.Serialize().size();
  };
  size_t s10 = size_with(10);
  size_t s20 = size_with(20);
  size_t s40 = size_with(40);
  EXPECT_NEAR(static_cast<double>(s40 - s20), static_cast<double>(s20 - s10) * 2.0,
              static_cast<double>(s10));
}

TEST(BaggageTest, DeserializeRejectsTrailingBytes) {
  Baggage bag;
  bag.Pack(1, BagSpec::All(), T("x", 1));
  std::vector<uint8_t> bytes = bag.Serialize();
  bytes.push_back(0xFF);
  EXPECT_FALSE(Baggage::Deserialize(bytes).ok());
}

TEST(BaggageTest, DeserializeFuzzDoesNotCrash) {
  Rng rng(404);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> junk(rng.NextBelow(64));
    for (auto& b : junk) {
      b = static_cast<uint8_t>(rng.NextBelow(256));
    }
    // Must either fail cleanly or produce a usable baggage; never crash.
    Result<Baggage> result = Baggage::Deserialize(junk);
    if (result.ok()) {
      result->TupleCount();
    }
  }
}

TEST(BaggageTest, TruncatedRealBaggageFailsCleanly) {
  Baggage bag;
  bag.Pack(1, BagSpec::All(), Tuple{{"name", Value("some-string-payload")}});
  std::vector<uint8_t> bytes = bag.Serialize();
  for (size_t cut = 1; cut < bytes.size(); ++cut) {
    Result<Baggage> result = Baggage::Deserialize(bytes.data(), cut);
    EXPECT_FALSE(result.ok()) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------------
// Branching (§5)

TEST(BaggageTest, SplitIsolatesBranches) {
  // "Tuples packed by one branch cannot be visible to any other branch until
  // the branches rejoin."
  Baggage parent;
  parent.Pack(1, BagSpec::All(), T("x", 1));
  auto [left, right] = parent.Split();

  left.Pack(1, BagSpec::All(), T("x", 100));
  right.Pack(1, BagSpec::All(), T("x", 200));

  // Both branches see the pre-split tuple plus their own only.
  EXPECT_EQ(Canonical(left.Unpack(1)), (std::vector<std::string>{"(x=1)", "(x=100)"}));
  EXPECT_EQ(Canonical(right.Unpack(1)), (std::vector<std::string>{"(x=1)", "(x=200)"}));
}

TEST(BaggageTest, JoinMergesBranchesAndDeduplicatesHistory) {
  Baggage parent;
  parent.Pack(1, BagSpec::All(), T("x", 1));
  auto [left, right] = parent.Split();
  left.Pack(1, BagSpec::All(), T("x", 100));
  right.Pack(1, BagSpec::All(), T("x", 200));

  Baggage joined = Baggage::Join(left, right);
  // The pre-split tuple appears once (duplicate inactive instances dropped).
  EXPECT_EQ(Canonical(joined.Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=100)", "(x=200)"}));
  // ID recovered: split then join restores the seed interval.
  EXPECT_EQ(joined.active_id(), ItcId::Seed());
}

TEST(BaggageTest, NestedSplitJoin) {
  Baggage root;
  auto [a, bc] = root.Split();
  auto [b, c] = bc.Split();
  a.Pack(1, BagSpec::All(), T("x", 1));
  b.Pack(1, BagSpec::All(), T("x", 2));
  c.Pack(1, BagSpec::All(), T("x", 3));
  Baggage joined = Baggage::Join(a, Baggage::Join(b, c));
  EXPECT_EQ(Canonical(joined.Unpack(1)),
            (std::vector<std::string>{"(x=1)", "(x=2)", "(x=3)"}));
  EXPECT_EQ(joined.active_id(), ItcId::Seed());
}

TEST(BaggageTest, SplitBranchesHaveDisjointIds) {
  Baggage root;
  auto [left, right] = root.Split();
  EXPECT_FALSE(ItcId::Overlaps(left.active_id(), right.active_id()));
}

TEST(BaggageTest, SplitSerializesAndSurvivesWire) {
  Baggage root;
  root.Pack(1, BagSpec::First(1), T("x", 7));
  auto [left, right] = root.Split();
  left.Pack(1, BagSpec::First(1), T("x", 8));

  // Ship the left branch across a (simulated) boundary.
  Result<Baggage> shipped = Baggage::Deserialize(left.Serialize());
  ASSERT_TRUE(shipped.ok());
  Baggage joined = Baggage::Join(*shipped, right);
  // FIRST semantics across instances: the pre-split tuple (oldest) wins.
  auto tuples = joined.Unpack(1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Get("x").int_value(), 7);
}

TEST(BaggageTest, FirstSemanticsAcrossSplitPrefersOldest) {
  Baggage root;
  root.Pack(1, BagSpec::First(1), T("x", 1));
  auto [left, right] = root.Split();
  left.Pack(1, BagSpec::First(1), T("x", 2));
  auto tuples = left.Unpack(1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Get("x").int_value(), 1);
}

TEST(BaggageTest, RecentSemanticsAcrossSplitPrefersNewest) {
  Baggage root;
  root.Pack(1, BagSpec::Recent(1), T("x", 1));
  auto [left, right] = root.Split();
  left.Pack(1, BagSpec::Recent(1), T("x", 2));
  auto tuples = left.Unpack(1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Get("x").int_value(), 2);
}

TEST(BaggageTest, AggregateAcrossSplitCombines) {
  BagSpec spec = BagSpec::Aggregated({}, {{AggFn::kSum, "x", "S", false}});
  Baggage root;
  root.Pack(1, spec, T("x", 1));
  auto [left, right] = root.Split();
  left.Pack(1, spec, T("x", 10));
  right.Pack(1, spec, T("x", 100));
  Baggage joined = Baggage::Join(left, right);
  auto tuples = joined.Unpack(1);
  ASSERT_EQ(tuples.size(), 1u);
  EXPECT_EQ(tuples[0].Get("S").int_value(), 111);
}

TEST(BaggageTest, TupleCountAndClear) {
  Baggage bag;
  bag.Pack(1, BagSpec::All(), T("x", 1));
  bag.Pack(2, BagSpec::All(), T("y", 2));
  auto [l, r] = bag.Split();
  l.Pack(1, BagSpec::All(), T("x", 3));
  EXPECT_EQ(l.TupleCount(), 3u);
  l.Clear();
  EXPECT_TRUE(l.IsTrivial());
  EXPECT_EQ(l.TupleCount(), 0u);
}

// The memoized-encoding contract (docs/PERFORMANCE.md): serializing a baggage
// that has not changed since its last Serialize — the response leg of every
// RPC — reuses cached bytes per instance instead of re-encoding, observable
// through the baggage.serialize_cache_hit/miss counters. Each non-trivial
// Serialize counts exactly one hit-or-miss for the active instance plus one
// per inactive instance.
TEST(BaggageCache, SerializeAfterRpcHopReusesCachedBytes) {
  telemetry::Counter& hits =
      telemetry::Metrics().GetCounter("baggage.serialize_cache_hit");
  telemetry::Counter& misses =
      telemetry::Metrics().GetCounter("baggage.serialize_cache_miss");

  // One frozen inactive instance (via Split) + tuples in the active instance.
  Baggage b;
  b.Pack(5, BagSpec::All(), T("a", 1));
  auto [left, right] = b.Split();
  Baggage sender = std::move(left);
  sender.Pack(6, BagSpec::All(), T("b", 2));

  // Request leg: first serialize encodes (misses allowed), and the result is
  // cached per instance.
  std::vector<uint8_t> wire = sender.Serialize();

  // Response leg: nothing changed — every instance must hit its cache.
  uint64_t h0 = hits.value(), m0 = misses.value();
  EXPECT_EQ(sender.Serialize(), wire);
  EXPECT_EQ(hits.value(), h0 + 2);  // active + 1 inactive
  EXPECT_EQ(misses.value(), m0);

  // Receiver side: Deserialize seeds each instance's cache from the wire
  // slice, so the hop's re-serialize is also all hits and byte-identical.
  Result<Baggage> received = Baggage::Deserialize(wire);
  ASSERT_TRUE(received.ok());
  h0 = hits.value();
  m0 = misses.value();
  EXPECT_EQ((*received).Serialize(), wire);
  EXPECT_EQ(hits.value(), h0 + 2);
  EXPECT_EQ(misses.value(), m0);

  // Packing dirties only the active instance: the next serialize re-encodes
  // it (one miss) while frozen instances still serve cached bytes.
  Baggage mutated = std::move(received).value();
  mutated.Pack(7, BagSpec::All(), T("c", 3));
  h0 = hits.value();
  m0 = misses.value();
  std::vector<uint8_t> wire2 = mutated.Serialize();
  EXPECT_NE(wire2, wire);
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(hits.value(), h0 + 1);
}

}  // namespace
}  // namespace pivot
