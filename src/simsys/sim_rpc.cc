#include "src/simsys/sim_rpc.h"

#include <cassert>

namespace pivot {

std::atomic<uint64_t> RpcStats::total_calls{0};
std::atomic<uint64_t> RpcStats::total_baggage_bytes{0};

void RpcStats::Reset() {
  total_calls.store(0, std::memory_order_relaxed);
  total_baggage_bytes.store(0, std::memory_order_relaxed);
}

void SimRpcCall(SimProcess* client, SimProcess* server, CtxPtr ctx, uint64_t request_bytes,
                RpcHandler handler, RpcDone done) {
  SimWorld* world = client->world();
  SimEnvironment* env = world->env();

  std::vector<uint8_t> baggage_bytes = SerializeBaggageWithMeta(ctx.get());
  RpcStats::total_calls.fetch_add(1, std::memory_order_relaxed);
  RpcStats::total_baggage_bytes.fetch_add(baggage_bytes.size(), std::memory_order_relaxed);
  uint64_t wire_bytes = request_bytes + baggage_bytes.size();

  // Ground truth for the propagation audit (PT304): record the boundary this
  // call actually crosses, so undeclared protocol edges surface.
  world->propagation().ObserveEdge(client->component(), server->component(), "rpc");

  // Trace attachment survives the hop.
  TraceRecorder* recorder = ctx->recorder();
  uint64_t trace_id = ctx->trace_id();
  EventId event = ctx->current_event();

  const bool same_host = client->host() == server->host();

  auto deliver = [server, handler = std::move(handler), done = std::move(done),
                  baggage_bytes = std::move(baggage_bytes), recorder, trace_id, event, client,
                  same_host]() mutable {
    // GC/pause windows are honoured by the server handlers themselves (they
    // need to observe the pause duration to export it, cf. Fig 9b's DN GC).
    auto run_handler = [server, handler = std::move(handler), done = std::move(done),
                        baggage_bytes = std::move(baggage_bytes), recorder, trace_id, event,
                        client, same_host]() mutable {
      auto server_ctx = std::make_shared<ExecutionContext>(server->runtime());
      Result<Baggage> baggage = Baggage::Deserialize(baggage_bytes);
      assert(baggage.ok() && "baggage corrupted in transit");
      if (baggage.ok()) {
        server_ctx->set_baggage(std::move(baggage).value());
      }
      if (recorder != nullptr) {
        server_ctx->AttachTrace(recorder, trace_id, event);
      }

      RpcRespond respond = [client, server, done = std::move(done), same_host](
                               CtxPtr response_ctx, uint64_t response_bytes) mutable {
        SimEnvironment* env2 = client->world()->env();
        std::vector<uint8_t> response_baggage = SerializeBaggageWithMeta(response_ctx.get());
        RpcStats::total_baggage_bytes.fetch_add(response_baggage.size(),
                                                std::memory_order_relaxed);
        uint64_t response_wire = response_bytes + response_baggage.size();
        client->world()->propagation().ObserveEdge(server->component(), client->component(),
                                                   "rpc-response");

        TraceRecorder* rec2 = response_ctx->recorder();
        uint64_t trace2 = response_ctx->trace_id();
        EventId event2 = response_ctx->current_event();

        auto resume = [client, done = std::move(done), response_baggage, rec2, trace2,
                       event2]() mutable {
          auto client_ctx = std::make_shared<ExecutionContext>(client->runtime());
          Result<Baggage> baggage2 = Baggage::Deserialize(response_baggage);
          assert(baggage2.ok() && "baggage corrupted in transit");
          if (baggage2.ok()) {
            client_ctx->set_baggage(std::move(baggage2).value());
          }
          if (rec2 != nullptr) {
            client_ctx->AttachTrace(rec2, trace2, event2);
          }
          done(std::move(client_ctx));
        };

        if (same_host) {
          env2->Schedule(0, std::move(resume));
        } else {
          server->host()->nic_out().Transfer(
              response_wire, [client, resume = std::move(resume), response_wire]() mutable {
                client->host()->nic_in().Transfer(response_wire, std::move(resume));
              });
        }
      };
      handler(std::move(server_ctx), std::move(respond));
    };
    run_handler();
  };

  if (same_host) {
    env->Schedule(0, std::move(deliver));
  } else {
    client->host()->nic_out().Transfer(
        wire_bytes, [server, deliver = std::move(deliver), wire_bytes]() mutable {
          server->host()->nic_in().Transfer(wire_bytes, std::move(deliver));
        });
  }
}

}  // namespace pivot
