// SimWorld: hosts, processes, and the Pivot Tracing control plane wiring for
// a simulated cluster.
//
// A SimHost owns the machine-level resources (disk, NIC links). A SimProcess
// models one OS process on a host: it has its own TracepointRegistry (each
// process weaves advice independently, like the paper's per-JVM agents), its
// own PT agent wired in as the process's EmitSink, and a ProcessRuntime that
// stamps default tracepoint exports (host, procname, ...) with simulated
// time. SimWorld owns everything, runs the agents' once-per-second report
// flushes, and hands out request contexts.

#ifndef PIVOT_SRC_SIMSYS_SIM_WORLD_H_
#define PIVOT_SRC_SIMSYS_SIM_WORLD_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/agent/agent.h"
#include "src/agent/frontend.h"
#include "src/analysis/causality_graph.h"
#include "src/bus/message_bus.h"
#include "src/core/context.h"
#include "src/core/tracepoint.h"
#include "src/simsys/sim_env.h"
#include "src/simsys/sim_resource.h"

namespace pivot {

// Shared context handle used throughout the simulator: simulated executions
// pass through continuation callbacks, which std::function requires to be
// copyable, so contexts live on the heap.
using CtxPtr = std::shared_ptr<ExecutionContext>;

class SimWorld;

class SimHost {
 public:
  SimHost(SimEnvironment* env, std::string name, double disk_bytes_per_sec,
          double nic_bytes_per_sec);

  const std::string& name() const { return name_; }
  SimResource& disk() { return disk_; }
  SimResource& nic_out() { return nic_out_; }
  SimResource& nic_in() { return nic_in_; }

  // Total NIC traffic (both directions) — Fig 8b / Fig 9c.
  double NetworkBytesInSecond(int64_t sec) const;

 private:
  std::string name_;
  SimResource disk_;
  SimResource nic_out_;
  SimResource nic_in_;
};

class SimProcess {
 public:
  SimProcess(SimWorld* world, SimHost* host, std::string process_name, int64_t pid,
             std::string component = "");

  SimHost* host() { return host_; }
  const std::string& name() const { return runtime_.info.process_name; }
  // Propagation-graph node this process belongs to ("NN", "DN", "client", …);
  // empty for processes outside the modelled topology. Used to tag observed
  // boundary crossings (SimRpcCall) and declare instance-level edges.
  const std::string& component() const { return component_; }
  TracepointRegistry* registry() { return &registry_; }
  PTAgent* agent() { return agent_.get(); }
  ProcessRuntime* runtime() { return &runtime_; }
  SimWorld* world() { return world_; }

  // Defines a tracepoint in this process (asserts on duplicate names —
  // process construction is programmer-controlled).
  Tracepoint* DefineTracepoint(TracepointDef def);

  // GC / pause injection (Fig 9b's DN GC component): work scheduled through
  // DelayUntilRunnable is postponed past the pause.
  void PauseUntil(int64_t time_micros);
  int64_t paused_until() const { return paused_until_; }
  // Extra delay a task starting now would incur from a pause.
  int64_t PauseDelay() const;

 private:
  SimWorld* world_;
  SimHost* host_;
  std::string component_;
  TracepointRegistry registry_;
  ProcessRuntime runtime_;
  std::unique_ptr<PTAgent> agent_;
  int64_t paused_until_ = 0;
};

class SimWorld {
 public:
  SimWorld();

  SimEnvironment* env() { return &env_; }
  MessageBus* bus() { return &bus_; }
  Frontend* frontend() { return frontend_.get(); }

  // The schema registry aggregates every process's tracepoint definitions so
  // the frontend can validate queries; SimProcess::DefineTracepoint keeps it
  // in sync automatically.
  TracepointRegistry* schema() { return &schema_; }

  // The propagation graph for this deployment: components, declared causal
  // boundaries, observed crossings, tracepoint anchors. Deployments populate
  // it at construction; the frontend's install gate and every agent's weave
  // re-verification consult it (PT300-series reachability passes). Owned per
  // world so unrelated tests never pollute each other's topology audit.
  analysis::PropagationRegistry& propagation() { return propagation_; }
  const analysis::PropagationRegistry& propagation() const { return propagation_; }

  SimHost* AddHost(std::string name, double disk_bytes_per_sec, double nic_bytes_per_sec);
  // `component` names the process's propagation-graph node; empty keeps the
  // process outside the modelled topology (reachability checks skip it).
  SimProcess* AddProcess(SimHost* host, std::string process_name, std::string component = "");

  SimHost* FindHost(std::string_view name);
  const std::vector<std::unique_ptr<SimHost>>& hosts() const { return hosts_; }
  const std::vector<std::unique_ptr<SimProcess>>& processes() const { return processes_; }

  // Creates a fresh request context executing in `proc`, attached to the
  // ground-truth recorder when one is installed.
  CtxPtr NewRequest(SimProcess* proc);

  // Switches a context to another process (thread handoff within a request).
  void MoveContext(const CtxPtr& ctx, SimProcess* to) { ctx->set_runtime(to->runtime()); }

  // Installs a TraceRecorder capturing every tracepoint invocation (ground
  // truth for naive evaluation; adds overhead, off by default).
  void EnableRecording();
  TraceRecorder* recorder() { return recording_ ? &recorder_ : nullptr; }

  // Starts the once-per-simulated-second agent flush loop; runs until
  // `until_micros`.
  void StartAgentFlushLoop(int64_t until_micros);

  // Runs the simulation until `time_micros`.
  void RunUntil(int64_t time_micros) { env_.RunUntil(time_micros); }

 private:
  SimEnvironment env_;
  MessageBus bus_;
  TracepointRegistry schema_;
  analysis::PropagationRegistry propagation_;
  std::unique_ptr<Frontend> frontend_;
  std::vector<std::unique_ptr<SimHost>> hosts_;
  std::vector<std::unique_ptr<SimProcess>> processes_;
  int64_t next_pid_ = 1000;
  bool recording_ = false;
  TraceRecorder recorder_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_SIMSYS_SIM_WORLD_H_
