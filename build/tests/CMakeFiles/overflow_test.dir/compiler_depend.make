# Empty compiler generated dependencies file for overflow_test.
# This may be replaced when dependencies are built.
