// Lightweight Status / Result<T> error-handling primitives.
//
// The library does not use exceptions (following the Google C++ style this
// repository adopts); fallible operations return Status or Result<T>. Result<T>
// is a minimal analogue of absl::StatusOr<T>.

#ifndef PIVOT_SRC_COMMON_STATUS_H_
#define PIVOT_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pivot {

// Coarse error taxonomy; mirrors the handful of failure classes the library
// actually produces (parse errors, lookup failures, malformed wire data, ...).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kDataLoss,
};

// Returns a stable human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

// Value-semantic success-or-error type. A default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status InvalidArgumentError(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFoundError(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status AlreadyExistsError(std::string msg) {
  return Status(StatusCode::kAlreadyExists, std::move(msg));
}
inline Status FailedPreconditionError(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status OutOfRangeError(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status UnimplementedError(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status InternalError(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status DataLossError(std::string msg) {
  return Status(StatusCode::kDataLoss, std::move(msg));
}

// Holds either a value of type T or a non-OK Status explaining why the value
// is absent. Accessing value() on an error Result is a programming error and
// asserts in debug builds.
template <typename T>
class Result {
 public:
  // Implicit conversions mirror absl::StatusOr ergonomics:
  //   Result<int> F() { if (bad) return InvalidArgumentError("..."); return 42; }
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace pivot

// Propagates a non-OK Status from an expression, absl-style.
#define PIVOT_RETURN_IF_ERROR(expr)     \
  do {                                  \
    ::pivot::Status _st = (expr);       \
    if (!_st.ok()) {                    \
      return _st;                       \
    }                                   \
  } while (0)

#endif  // PIVOT_SRC_COMMON_STATUS_H_
