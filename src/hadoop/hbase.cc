#include "src/hadoop/hbase.h"

#include <cassert>

#include "src/hadoop/tracepoints.h"

namespace pivot {

HbaseRegionServer::HbaseRegionServer(SimProcess* proc, HdfsNameNode* namenode,
                                     const HbaseConfig* config, uint64_t seed)
    : proc_(proc), hdfs_(proc, namenode, seed), config_(config), rng_(seed ^ 0x9E3779B9) {
  tp_client_service_ = GetOrDefineTracepoint(proc, HbaseClientServiceDef());
  tp_queue_done_ = GetOrDefineTracepoint(proc, RsQueueDoneDef());
  tp_process_done_ = GetOrDefineTracepoint(proc, RsProcessDoneDef());
  tp_memstore_flush_ = GetOrDefineTracepoint(proc, RsMemstoreFlushDef());
}

void HbaseRegionServer::HandleRequest(CtxPtr ctx, const std::string& op, uint64_t row,
                                      RpcRespond respond) {
  tp_client_service_->Invoke(ctx.get(),
                             {{"op", Value(op)}, {"row", Value(static_cast<int64_t>(row))}});
  queue_.push_back(PendingRequest{std::move(ctx), op, row, std::move(respond),
                                  proc_->world()->env()->now_micros()});
  MaybeStartNext();
}

void HbaseRegionServer::MaybeStartNext() {
  if (busy_handlers_ >= config_->handler_threads || queue_.empty()) {
    return;
  }
  PendingRequest req = std::move(queue_.front());
  queue_.pop_front();
  ++busy_handlers_;
  RunRequest(std::move(req));
}

void HbaseRegionServer::RunRequest(PendingRequest req) {
  SimEnvironment* env = proc_->world()->env();
  int64_t queue_micros = env->now_micros() - req.enqueued_at;
  // Queue hand-off boundary: the request context crossed the RPC-handler
  // queue into a handler thread (baggage rides the context).
  proc_->world()->propagation().ObserveEdge(proc_->component(), proc_->component(), "queue");
  tp_queue_done_->Invoke(req.ctx.get(), {{"queue", Value(queue_micros)}});

  if (req.op == "put") {
    RunPut(std::make_shared<PendingRequest>(std::move(req)), env->now_micros());
    return;
  }

  const bool is_scan = req.op == "scan";
  int64_t cpu = is_scan ? config_->scan_cpu_micros : config_->get_cpu_micros;
  uint64_t hdfs_bytes = is_scan ? config_->scan_hdfs_bytes : config_->get_hdfs_bytes;
  int64_t gc = proc_->PauseDelay();
  int64_t process_start = env->now_micros();

  env->Schedule(gc + cpu, [this, req = std::make_shared<PendingRequest>(std::move(req)),
                           hdfs_bytes, process_start]() mutable {
    // Read the row/scan data through HDFS (this RegionServer is the HDFS
    // client, so Q2-style queries see "RegionServer"; the *end-user* identity
    // arrives in the baggage packed at the HBase client's ClientProtocols).
    uint64_t file_id = rng_.NextBelow(
        hdfs_.namenode()->file_count() > 0 ? hdfs_.namenode()->file_count() : 1);
    hdfs_.Read(req->ctx, file_id, hdfs_bytes,
               [this, req, process_start](CtxPtr c, HdfsClient::ReadResult result) mutable {
                 SimEnvironment* env2 = proc_->world()->env();
                 // RS processing time excludes the HDFS fetch (reported by
                 // the DataNode's own tracepoints), so the Fig 9b components
                 // are roughly additive.
                 int64_t process_micros = (env2->now_micros() - process_start) -
                                          result.latency_micros;
                 tp_process_done_->Invoke(c.get(), {{"process", Value(process_micros)}});
                 uint64_t response_bytes = req->op == "scan" ? (4u << 20) : (10u << 10);
                 req->respond(std::move(c), response_bytes);
                 --busy_handlers_;
                 MaybeStartNext();
               });
  });
}

void HbaseRegionServer::RunPut(std::shared_ptr<PendingRequest> req, int64_t process_start) {
  SimEnvironment* env = proc_->world()->env();
  int64_t gc = proc_->PauseDelay();
  env->Schedule(gc + config_->put_cpu_micros, [this, req, process_start]() mutable {
    memstore_bytes_ += config_->put_bytes;
    if (memstore_bytes_ >= config_->memstore_flush_bytes) {
      // The put that crossed the threshold pays for (and is causally charged
      // with) the flush: the flush IO runs on a branch of its context.
      FlushMemstore(req->ctx);
    }
    int64_t process_micros = proc_->world()->env()->now_micros() - process_start;
    tp_process_done_->Invoke(req->ctx.get(), {{"process", Value(process_micros)}});
    req->respond(std::move(req->ctx), 128);
    --busy_handlers_;
    MaybeStartNext();
  });
}

void HbaseRegionServer::FlushMemstore(const CtxPtr& trigger) {
  uint64_t bytes = memstore_bytes_;
  memstore_bytes_ = 0;
  ++flushes_;
  auto flush_ctx = std::make_shared<ExecutionContext>(trigger->Fork());
  // Continuation spawn: the flush runs on a forked branch of the trigger.
  proc_->world()->propagation().ObserveEdge(proc_->component(), proc_->component(),
                                            "continuation");
  tp_memstore_flush_->Invoke(flush_ctx.get(), {{"bytes", Value(static_cast<int64_t>(bytes))}});
  // Write the store file through HDFS; the trigger's identity rides along.
  hdfs_.Write(flush_ctx, bytes, [](CtxPtr) {});
}

HbaseClient::HbaseClient(SimProcess* proc, std::vector<HbaseRegionServer*> region_servers,
                         uint64_t seed)
    : proc_(proc), region_servers_(std::move(region_servers)), rng_(seed) {
  tp_client_protocols_ = GetOrDefineTracepoint(proc, ClientProtocolsDef());
  tp_request_sent_ = GetOrDefineTracepoint(proc, HbaseRequestSentDef());
  tp_response_received_ = GetOrDefineTracepoint(proc, HbaseResponseReceivedDef());
  const std::string& me = proc->component();
  if (!me.empty()) {
    analysis::DeclareRpcBoundary(&proc->world()->propagation(), me, "RS", "ClientService");
  }
}

void HbaseClient::Get(CtxPtr ctx, std::function<void(CtxPtr, RequestResult)> done) {
  Request(std::move(ctx), "get", std::move(done));
}

void HbaseClient::Scan(CtxPtr ctx, std::function<void(CtxPtr, RequestResult)> done) {
  Request(std::move(ctx), "scan", std::move(done));
}

void HbaseClient::Put(CtxPtr ctx, std::function<void(CtxPtr, RequestResult)> done) {
  Request(std::move(ctx), "put", std::move(done));
}

void HbaseClient::Request(CtxPtr ctx, const std::string& op,
                          std::function<void(CtxPtr, RequestResult)> done) {
  assert(!region_servers_.empty());
  tp_client_protocols_->Invoke(
      ctx.get(), {{"procName", Value(proc_->name())}, {"system", Value("HBase")}});
  tp_request_sent_->Invoke(ctx.get(), {{"op", Value(op)}});

  // Rows are range-partitioned: a uniform row id picks a uniform server.
  uint64_t row = rng_.NextUint64() >> 1;
  HbaseRegionServer* rs = region_servers_[row % region_servers_.size()];
  int64_t start = proc_->world()->env()->now_micros();

  SimRpcCall(
      proc_, rs->process(), std::move(ctx), 256,
      [rs, op, row](CtxPtr sctx, RpcRespond respond) {
        rs->HandleRequest(std::move(sctx), op, row, std::move(respond));
      },
      [this, rs, op, start, done = std::move(done)](CtxPtr c) mutable {
        tp_response_received_->Invoke(c.get(), {{"op", Value(op)}});
        RequestResult result;
        result.latency_micros = proc_->world()->env()->now_micros() - start;
        result.region_server_host = rs->process()->host()->name();
        done(std::move(c), result);
      });
}

std::vector<HbaseRegionServer*> HbaseDeployment::servers() const {
  std::vector<HbaseRegionServer*> out;
  out.reserve(region_servers.size());
  for (const auto& rs : region_servers) {
    out.push_back(rs.get());
  }
  return out;
}

HbaseDeployment HbaseDeployment::Create(SimWorld* world, SimHost* master_host,
                                        const std::vector<SimHost*>& rs_hosts,
                                        HdfsNameNode* namenode, HbaseConfig config,
                                        uint64_t seed) {
  HbaseDeployment deployment;
  // Protocol-level boundaries, declared before any client process exists.
  analysis::PropagationRegistry& graph = world->propagation();
  graph.DeclareComponent("client", /*client_entry=*/true);
  analysis::DeclareRpcBoundary(&graph, "client", "RS", "ClientService");
  graph.DeclareEdge(analysis::PropagationEdge{"RS", "RS", "queue", "RpcExecutor",
                                              /*forwards_baggage=*/true});
  graph.DeclareEdge(analysis::PropagationEdge{"RS", "RS", "continuation", "memstore flush",
                                              /*forwards_baggage=*/true});
  deployment.master = world->AddProcess(master_host, "HBaseMaster", "HBaseMaster");
  deployment.config = std::make_unique<HbaseConfig>(config);
  Rng rng(seed);
  for (SimHost* host : rs_hosts) {
    SimProcess* proc = world->AddProcess(host, "RegionServer", "RS");
    deployment.region_servers.push_back(std::make_unique<HbaseRegionServer>(
        proc, namenode, deployment.config.get(), rng.NextUint64()));
  }
  return deployment;
}

}  // namespace pivot
