# Empty dependencies file for hbase_test.
# This may be replaced when dependencies are built.
