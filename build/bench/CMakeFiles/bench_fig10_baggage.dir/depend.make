# Empty dependencies file for bench_fig10_baggage.
# This may be replaced when dependencies are built.
