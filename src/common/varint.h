// LEB128-style variable-length integer codec.
//
// This is the primitive underneath the baggage wire format (src/core/wire.h).
// It is the same base-128 encoding protocol buffers use, which the paper's
// prototype relied on for baggage serialization; see DESIGN.md §1 for the
// substitution note.

#ifndef PIVOT_SRC_COMMON_VARINT_H_
#define PIVOT_SRC_COMMON_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pivot {

// Appends `value` to `out` as a base-128 varint (1..10 bytes).
void PutVarint64(std::vector<uint8_t>* out, uint64_t value);

// Zig-zag encodes `value` then varint-encodes it; small negative numbers stay
// small on the wire.
void PutVarintSigned64(std::vector<uint8_t>* out, int64_t value);

// Reads a varint from data[*pos..size). On success advances *pos and returns
// true; returns false on truncated or overlong (>10 byte) input, leaving *pos
// unspecified.
bool GetVarint64(const uint8_t* data, size_t size, size_t* pos, uint64_t* value);

// Zig-zag decoding counterpart of PutVarintSigned64.
bool GetVarintSigned64(const uint8_t* data, size_t size, size_t* pos, int64_t* value);

// Number of bytes PutVarint64 would append for `value`.
size_t VarintLength(uint64_t value);

inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace pivot

#endif  // PIVOT_SRC_COMMON_VARINT_H_
