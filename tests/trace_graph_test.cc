#include <gtest/gtest.h>

#include "src/common/rand.h"
#include "src/core/trace_graph.h"

namespace pivot {
namespace {

TEST(TraceGraphTest, LinearChain) {
  TraceGraph g;
  EventId a = g.AddEvent({});
  EventId b = g.AddEvent({a});
  EventId c = g.AddEvent({b});
  EXPECT_TRUE(g.HappenedBefore(a, b));
  EXPECT_TRUE(g.HappenedBefore(a, c));
  EXPECT_TRUE(g.HappenedBefore(b, c));
  EXPECT_FALSE(g.HappenedBefore(b, a));
  EXPECT_FALSE(g.HappenedBefore(c, a));
}

TEST(TraceGraphTest, IrreflexiveAndBoundsChecked) {
  TraceGraph g;
  EventId a = g.AddEvent({});
  EXPECT_FALSE(g.HappenedBefore(a, a));
  EXPECT_FALSE(g.HappenedBefore(a, 999));
  EXPECT_FALSE(g.HappenedBefore(999, a));
  EXPECT_FALSE(g.HappenedBefore(a, kNoEvent));
}

TEST(TraceGraphTest, ConcurrentBranches) {
  TraceGraph g;
  EventId root = g.AddEvent({});
  EventId left = g.AddEvent({root});
  EventId right = g.AddEvent({root});
  EXPECT_FALSE(g.HappenedBefore(left, right));
  EXPECT_FALSE(g.HappenedBefore(right, left));
  EventId join = g.AddEvent({left, right});
  EXPECT_TRUE(g.HappenedBefore(left, join));
  EXPECT_TRUE(g.HappenedBefore(right, join));
  EXPECT_TRUE(g.HappenedBefore(root, join));
}

TEST(TraceGraphTest, NoEventParentsIgnored) {
  TraceGraph g;
  EventId a = g.AddEvent({kNoEvent});
  EXPECT_EQ(g.parents(a).size(), 0u);
  EventId b = g.AddEvent({a, kNoEvent});
  EXPECT_EQ(g.parents(b).size(), 1u);
}

TEST(TraceGraphTest, DiamondReachability) {
  TraceGraph g;
  EventId a = g.AddEvent({});
  EventId b = g.AddEvent({a});
  EventId c = g.AddEvent({a});
  EventId d = g.AddEvent({b, c});
  EventId e = g.AddEvent({d});
  EXPECT_TRUE(g.HappenedBefore(a, e));
  EXPECT_TRUE(g.HappenedBefore(b, e));
  EXPECT_TRUE(g.HappenedBefore(c, e));
  EXPECT_FALSE(g.HappenedBefore(b, c));
}

// Property: HappenedBefore agrees with a brute-force transitive closure on
// random DAGs (ids are topologically ordered by construction).
class TraceGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TraceGraphPropertyTest, MatchesTransitiveClosure) {
  Rng rng(GetParam());
  TraceGraph g;
  constexpr int kEvents = 40;
  std::vector<std::vector<bool>> reach(kEvents, std::vector<bool>(kEvents, false));
  for (int i = 0; i < kEvents; ++i) {
    std::vector<EventId> parents;
    int nparents = i == 0 ? 0 : static_cast<int>(rng.NextBelow(3));
    for (int p = 0; p < nparents; ++p) {
      auto parent = static_cast<EventId>(rng.NextBelow(static_cast<uint64_t>(i)));
      parents.push_back(parent);
      reach[parent][i] = true;
      for (int k = 0; k < i; ++k) {
        if (reach[k][parent]) {
          reach[k][i] = true;
        }
      }
    }
    ASSERT_EQ(g.AddEvent(parents), static_cast<EventId>(i));
  }
  for (int a = 0; a < kEvents; ++a) {
    for (int b = 0; b < kEvents; ++b) {
      ASSERT_EQ(g.HappenedBefore(static_cast<EventId>(a), static_cast<EventId>(b)),
                reach[a][b])
          << a << " -> " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceGraphPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

TEST(TraceRecorderTest, TracksTracesAndObservations) {
  TraceRecorder recorder;
  uint64_t t0 = recorder.NewTrace();
  uint64_t t1 = recorder.NewTrace();
  EXPECT_EQ(t0, 0u);
  EXPECT_EQ(t1, 1u);
  EXPECT_EQ(recorder.trace_count(), 2u);

  EventId e = recorder.graph(t0)->AddEvent({});
  recorder.Record(ObservedEvent{t0, e, "X", Tuple{{"v", Value(int64_t{1})}}});
  ASSERT_EQ(recorder.observed().size(), 1u);
  EXPECT_EQ(recorder.observed()[0].tracepoint, "X");

  recorder.Clear();
  EXPECT_EQ(recorder.trace_count(), 0u);
  EXPECT_TRUE(recorder.observed().empty());
}

}  // namespace
}  // namespace pivot
