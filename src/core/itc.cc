#include "src/core/itc.h"

#include <cassert>

namespace pivot {

// Leaf nodes have left == right == nullptr and `value` 0 or 1. Interior nodes
// have both children non-null (value unused). All trees are kept in normal
// form: an interior node never has two identical leaf children.
struct ItcId::Node {
  uint8_t value = 0;
  NodePtr left;
  NodePtr right;

  bool is_leaf() const { return left == nullptr; }
};

namespace {

using Node = ItcId::Node;

}  // namespace

// Shared singleton leaves: every zero/one leaf in every tree aliases these.
static const std::shared_ptr<const Node>& ZeroLeaf() {
  static const std::shared_ptr<const Node> kZero = [] {
    auto n = std::make_shared<Node>();
    n->value = 0;
    return n;
  }();
  return kZero;
}

static const std::shared_ptr<const Node>& OneLeaf() {
  static const std::shared_ptr<const Node> kOne = [] {
    auto n = std::make_shared<Node>();
    n->value = 1;
    return n;
  }();
  return kOne;
}

// Builds an interior node, collapsing to a leaf when both children are equal
// leaves (the ITC `norm` function).
static std::shared_ptr<const Node> MakeNode(std::shared_ptr<const Node> l,
                                            std::shared_ptr<const Node> r) {
  if (l->is_leaf() && r->is_leaf() && l->value == r->value) {
    return l->value == 0 ? ZeroLeaf() : OneLeaf();
  }
  auto n = std::make_shared<Node>();
  n->left = std::move(l);
  n->right = std::move(r);
  return n;
}

ItcId::ItcId() : root_(ZeroLeaf()) {}

ItcId ItcId::Seed() { return ItcId(OneLeaf()); }

bool ItcId::IsZero() const { return root_->is_leaf() && root_->value == 0; }

bool ItcId::IsOne() const { return root_->is_leaf() && root_->value == 1; }

bool ItcId::IsLeaf() const { return root_->is_leaf(); }

ItcId ItcId::Left() const {
  assert(!IsLeaf());
  return ItcId(root_->left);
}

ItcId ItcId::Right() const {
  assert(!IsLeaf());
  return ItcId(root_->right);
}

namespace {

// split(i) from the ITC paper, figure "fork".
std::pair<ItcId::NodePtr, ItcId::NodePtr> SplitNode(const ItcId::NodePtr& n) {
  if (n->is_leaf()) {
    if (n->value == 0) {
      return {ZeroLeaf(), ZeroLeaf()};
    }
    // split(1) = ((1,0), (0,1))
    return {MakeNode(OneLeaf(), ZeroLeaf()), MakeNode(ZeroLeaf(), OneLeaf())};
  }
  const bool left_zero = n->left->is_leaf() && n->left->value == 0;
  const bool right_zero = n->right->is_leaf() && n->right->value == 0;
  if (left_zero) {
    // split((0, i)) = ((0, i1), (0, i2))
    auto [i1, i2] = SplitNode(n->right);
    return {MakeNode(ZeroLeaf(), i1), MakeNode(ZeroLeaf(), i2)};
  }
  if (right_zero) {
    // split((i, 0)) = ((i1, 0), (i2, 0))
    auto [i1, i2] = SplitNode(n->left);
    return {MakeNode(i1, ZeroLeaf()), MakeNode(i2, ZeroLeaf())};
  }
  // split((i1, i2)) = ((i1, 0), (0, i2))
  return {MakeNode(n->left, ZeroLeaf()), MakeNode(ZeroLeaf(), n->right)};
}

ItcId::NodePtr JoinNodes(const ItcId::NodePtr& a, const ItcId::NodePtr& b) {
  if (a->is_leaf()) {
    if (a->value == 1) {
      return OneLeaf();  // 1 already owns everything (tolerates overlap).
    }
    return b;  // sum(0, i) = i
  }
  if (b->is_leaf()) {
    if (b->value == 1) {
      return OneLeaf();
    }
    return a;
  }
  return MakeNode(JoinNodes(a->left, b->left), JoinNodes(a->right, b->right));
}

bool NodesOverlap(const ItcId::NodePtr& a, const ItcId::NodePtr& b) {
  if (a->is_leaf()) {
    if (a->value == 0) {
      return false;
    }
    // a owns the whole subinterval; overlap iff b is non-zero anywhere.
    return !(b->is_leaf() && b->value == 0);
  }
  if (b->is_leaf()) {
    return NodesOverlap(b, a);
  }
  return NodesOverlap(a->left, b->left) || NodesOverlap(a->right, b->right);
}

bool NodesEqual(const ItcId::NodePtr& a, const ItcId::NodePtr& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a->is_leaf() != b->is_leaf()) {
    return false;
  }
  if (a->is_leaf()) {
    return a->value == b->value;
  }
  return NodesEqual(a->left, b->left) && NodesEqual(a->right, b->right);
}

// Canonical byte encoding: 0x00 = leaf 0, 0x01 = leaf 1, 0x02 = interior
// followed by left then right encodings.
void EncodeNode(const ItcId::NodePtr& n, std::vector<uint8_t>* out) {
  if (n->is_leaf()) {
    out->push_back(n->value);
    return;
  }
  out->push_back(0x02);
  EncodeNode(n->left, out);
  EncodeNode(n->right, out);
}

bool DecodeNode(const uint8_t* data, size_t size, size_t* pos, ItcId::NodePtr* out,
                int depth) {
  // Depth bound guards against stack exhaustion on adversarial wire input.
  constexpr int kMaxDepth = 512;
  if (depth > kMaxDepth || *pos >= size) {
    return false;
  }
  uint8_t tag = data[(*pos)++];
  switch (tag) {
    case 0x00:
      *out = ZeroLeaf();
      return true;
    case 0x01:
      *out = OneLeaf();
      return true;
    case 0x02: {
      ItcId::NodePtr l;
      ItcId::NodePtr r;
      if (!DecodeNode(data, size, pos, &l, depth + 1) ||
          !DecodeNode(data, size, pos, &r, depth + 1)) {
        return false;
      }
      *out = MakeNode(std::move(l), std::move(r));
      return true;
    }
    default:
      return false;
  }
}

size_t NodeCount(const ItcId::NodePtr& n) {
  if (n->is_leaf()) {
    return 1;
  }
  return 1 + NodeCount(n->left) + NodeCount(n->right);
}

std::string NodeToString(const ItcId::NodePtr& n) {
  if (n->is_leaf()) {
    return n->value == 0 ? "0" : "1";
  }
  return "(" + NodeToString(n->left) + ", " + NodeToString(n->right) + ")";
}

}  // namespace

std::pair<ItcId, ItcId> ItcId::Split() const {
  auto [l, r] = SplitNode(root_);
  return {ItcId(std::move(l)), ItcId(std::move(r))};
}

ItcId ItcId::Join(const ItcId& a, const ItcId& b) { return ItcId(JoinNodes(a.root_, b.root_)); }

bool ItcId::Overlaps(const ItcId& a, const ItcId& b) { return NodesOverlap(a.root_, b.root_); }

bool ItcId::operator==(const ItcId& other) const { return NodesEqual(root_, other.root_); }

bool ItcId::operator<(const ItcId& other) const {
  std::vector<uint8_t> ea;
  std::vector<uint8_t> eb;
  Encode(&ea);
  other.Encode(&eb);
  return ea < eb;
}

void ItcId::Encode(std::vector<uint8_t>* out) const { EncodeNode(root_, out); }

bool ItcId::Decode(const uint8_t* data, size_t size, size_t* pos, ItcId* out) {
  NodePtr root;
  if (!DecodeNode(data, size, pos, &root, 0)) {
    return false;
  }
  *out = ItcId(std::move(root));
  return true;
}

std::string ItcId::ToString() const { return NodeToString(root_); }

size_t ItcId::TreeSize() const { return NodeCount(root_); }

}  // namespace pivot
