// AgentFlusher: drives PTAgent::Flush on a real timer thread.
//
// The simulator calls Flush at simulated-second boundaries; a real deployment
// instead runs this RAII helper per process — "Agents publish partial query
// results at a configurable interval – by default, one second" (§5).

#ifndef PIVOT_SRC_AGENT_FLUSHER_H_
#define PIVOT_SRC_AGENT_FLUSHER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/agent/agent.h"

namespace pivot {

class AgentFlusher {
 public:
  // Starts a thread flushing `agent` every `interval`. The agent must
  // outlive this object.
  explicit AgentFlusher(PTAgent* agent,
                        std::chrono::milliseconds interval = std::chrono::milliseconds(1000))
      : agent_(agent), interval_(interval), thread_([this] { Run(); }) {}

  ~AgentFlusher() { Stop(); }

  AgentFlusher(const AgentFlusher&) = delete;
  AgentFlusher& operator=(const AgentFlusher&) = delete;

  // Stops the flusher after one final flush (so shutdown loses no tuples).
  // Idempotent.
  void Stop();

  uint64_t flushes() const { return flushes_.load(std::memory_order_relaxed); }

 private:
  void Run();

  static int64_t NowMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  PTAgent* agent_;
  std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::atomic<uint64_t> flushes_{0};
  std::thread thread_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_AGENT_FLUSHER_H_
