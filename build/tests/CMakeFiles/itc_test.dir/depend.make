# Empty dependencies file for itc_test.
# This may be replaced when dependencies are built.
