#include <gtest/gtest.h>

#include "src/core/tuple.h"

namespace pivot {
namespace {

TEST(TupleTest, EmptyTuple) {
  Tuple t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.Get("missing").is_null());
  EXPECT_FALSE(t.Has("missing"));
}

TEST(TupleTest, AppendAndGet) {
  Tuple t;
  t.Append("host", Value("A"));
  t.Append("delta", Value(int64_t{100}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Get("host").string_value(), "A");
  EXPECT_EQ(t.Get("delta").int_value(), 100);
  EXPECT_TRUE(t.Has("host"));
}

TEST(TupleTest, SetReplacesExisting) {
  Tuple t{{"x", Value(int64_t{1})}};
  t.Set("x", Value(int64_t{2}));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Get("x").int_value(), 2);
  t.Set("y", Value(int64_t{3}));
  EXPECT_EQ(t.size(), 2u);
}

TEST(TupleTest, ConcatJoinsFieldsInOrder) {
  Tuple a{{"a.x", Value(int64_t{1})}};
  Tuple b{{"b.y", Value(int64_t{2})}};
  Tuple joined = a.Concat(b);
  EXPECT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined.field(0).name(), "a.x");
  EXPECT_EQ(joined.field(1).name(), "b.y");
}

TEST(TupleTest, GetReturnsFirstOnDuplicates) {
  Tuple a{{"x", Value(int64_t{1})}};
  Tuple b{{"x", Value(int64_t{2})}};
  EXPECT_EQ(a.Concat(b).Get("x").int_value(), 1);
}

TEST(TupleTest, ProjectPreservesRequestedOrder) {
  Tuple t{{"a", Value(int64_t{1})}, {"b", Value(int64_t{2})}, {"c", Value(int64_t{3})}};
  Tuple p = t.Project({"c", "a"});
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.field(0).name(), "c");
  EXPECT_EQ(p.field(1).name(), "a");
}

TEST(TupleTest, ProjectMissingYieldsNull) {
  Tuple t{{"a", Value(int64_t{1})}};
  Tuple p = t.Project({"zzz"});
  ASSERT_EQ(p.size(), 1u);
  EXPECT_TRUE(p.Get("zzz").is_null());
}

TEST(TupleTest, HashFieldsSensitiveToValuesNotExtras) {
  Tuple a{{"g", Value("x")}, {"v", Value(int64_t{1})}};
  Tuple b{{"g", Value("x")}, {"v", Value(int64_t{999})}};
  Tuple c{{"g", Value("y")}, {"v", Value(int64_t{1})}};
  EXPECT_EQ(a.HashFields({"g"}), b.HashFields({"g"}));
  EXPECT_NE(a.HashFields({"g"}), c.HashFields({"g"}));
}

TEST(TupleTest, ToString) {
  Tuple t{{"host", Value("A")}, {"n", Value(int64_t{3})}};
  EXPECT_EQ(t.ToString(), "(host=A, n=3)");
}

TEST(TupleTest, Equality) {
  Tuple a{{"x", Value(int64_t{1})}};
  Tuple b{{"x", Value(int64_t{1})}};
  Tuple c{{"x", Value(int64_t{2})}};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace pivot
