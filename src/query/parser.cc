#include "src/query/parser.h"

#include <optional>

#include "src/common/strings.h"
#include "src/query/lexer.h"

namespace pivot {

namespace {

// Local analogue of absl's ASSIGN_OR_RETURN: evaluates `call`, propagates a
// non-OK status, otherwise assigns (or declares) `lhs` in the enclosing scope.
#define PIVOT_CONCAT_INNER(a, b) a##b
#define PIVOT_CONCAT(a, b) PIVOT_CONCAT_INNER(a, b)
#define PIVOT_ASSIGN_IMPL(tmp, lhs, call) \
  auto tmp = (call);                      \
  if (!tmp.ok()) {                        \
    return tmp.status();                  \
  }                                       \
  lhs = std::move(tmp).value()
#define PIVOT_ASSIGN(lhs, call) PIVOT_ASSIGN_IMPL(PIVOT_CONCAT(_result_, __LINE__), lhs, call)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    if (!ConsumeKeyword("from")) {
      return Error("query must start with From");
    }
    PIVOT_ASSIGN(q.from, ParseSource(/*allow_union=*/true));
    while (!AtEnd()) {
      if (ConsumeKeyword("join")) {
        JoinClause j;
        PIVOT_ASSIGN(j.source, ParseSource(/*allow_union=*/false));
        if (!ConsumeKeyword("on")) {
          return Error("expected On after Join source");
        }
        PIVOT_ASSIGN(j.left, ParseIdent("join left alias"));
        if (!Consume(TokenKind::kArrow)) {
          return Error("expected -> in On clause");
        }
        PIVOT_ASSIGN(j.right, ParseIdent("join right alias"));
        q.joins.push_back(std::move(j));
        continue;
      }
      if (ConsumeKeyword("where")) {
        PIVOT_ASSIGN(Expr::Ptr w, ParseExpr());
        q.where.push_back(std::move(w));
        continue;
      }
      if (ConsumeKeyword("groupby")) {
        do {
          PIVOT_ASSIGN(std::string f, ParseDotted("group-by field"));
          q.group_by.push_back(std::move(f));
        } while (Consume(TokenKind::kComma));
        continue;
      }
      if (ConsumeKeyword("select")) {
        do {
          PIVOT_ASSIGN(SelectItem item, ParseSelectItem());
          q.select.push_back(std::move(item));
        } while (Consume(TokenKind::kComma));
        continue;
      }
      return Error("unexpected token '" + Peek().text + "'");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }

  bool AtEnd() const { return Peek().kind == TokenKind::kEnd; }

  bool Consume(TokenKind kind) {
    if (Peek().kind == kind) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool PeekKeyword(std::string_view kw, size_t ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && EqualsIgnoreCase(t.text, kw);
  }

  bool ConsumeKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  // True when the next identifier begins a clause keyword, ending the current
  // comma-separated list.
  bool AtClauseKeyword() const {
    return PeekKeyword("join") || PeekKeyword("where") || PeekKeyword("groupby") ||
           PeekKeyword("select") || PeekKeyword("on");
  }

  Status Error(const std::string& msg) const {
    return InvalidArgumentError(msg + " (at offset " + std::to_string(Peek().offset) + ")");
  }

  Result<std::string> ParseIdent(const std::string& what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Error("expected " + what);
    }
    std::string s = Peek().text;
    ++pos_;
    return s;
  }

  // Tracepoint name with optional glob segments: piece ('.' piece)* where a
  // piece is an identifier or '*' (e.g. "DN.*", "*.incrBytesRead", "*").
  Result<std::string> ParseTracepointName() {
    std::string name;
    auto piece = [&]() -> bool {
      if (Peek().kind == TokenKind::kIdent) {
        name += Peek().text;
        ++pos_;
        return true;
      }
      if (Peek().kind == TokenKind::kStar) {
        name += "*";
        ++pos_;
        return true;
      }
      return false;
    };
    if (!piece()) {
      return Error("expected tracepoint name");
    }
    while (Peek().kind == TokenKind::kDot) {
      ++pos_;
      name += ".";
      if (!piece()) {
        return Error("expected tracepoint name component");
      }
    }
    return name;
  }

  // ident ('.' ident)* joined with '.'.
  Result<std::string> ParseDotted(const std::string& what) {
    PIVOT_ASSIGN(std::string name, ParseIdent(what));
    while (Peek().kind == TokenKind::kDot) {
      ++pos_;
      PIVOT_ASSIGN(std::string part, ParseIdent(what + " component"));
      name += ".";
      name += part;
    }
    return name;
  }

  // Parses "<alias> In <source-or-union>"; the alias was not yet consumed for
  // From (ParseSource reads it).
  Result<SourceRef> ParseSource(bool allow_union) {
    SourceRef src;
    PIVOT_ASSIGN(src.alias, ParseIdent("source alias"));
    if (!ConsumeKeyword("in")) {
      return Error("expected In after alias '" + src.alias + "'");
    }
    PIVOT_ASSIGN(src, ParseSourceBody(std::move(src.alias)));
    if (!allow_union && src.tracepoints.size() > 1) {
      return Error("Union sources are only allowed in the From clause");
    }
    return src;
  }

  // One or more comma-separated tracepoint names (a union list); wrappers
  // (First/Sample/...) apply to the whole list.
  Status ParseNameList(SourceRef* src) {
    for (;;) {
      auto name = ParseTracepointName();
      if (!name.ok()) {
        return name.status();
      }
      src->tracepoints.push_back(std::move(name).value());
      if (Peek().kind != TokenKind::kComma ||
          (Peek(1).kind != TokenKind::kIdent && Peek(1).kind != TokenKind::kStar) ||
          PeekKeyword("join", 1)) {
        return Status::Ok();
      }
      ++pos_;  // Consume the union comma.
    }
  }

  Result<SourceRef> ParseSourceBody(std::string alias) {
    SourceRef src;
    src.alias = std::move(alias);

    // Sampling wrapper: Sample(rate, <inner>) — integer rate = percent,
    // double rate = fraction. Composable around a temporal wrapper.
    auto parse_sample_prefix = [&]() -> Status {
      if (!(PeekKeyword("sample") && Peek(1).kind == TokenKind::kLParen)) {
        return Status::Ok();
      }
      if (src.sample_rate < 1.0) {
        return Error("nested Sample wrappers");
      }
      pos_ += 2;  // keyword + '('
      double rate;
      if (Peek().kind == TokenKind::kDouble) {
        rate = Peek().double_value;
      } else if (Peek().kind == TokenKind::kInt) {
        rate = static_cast<double>(Peek().int_value) / 100.0;
      } else {
        return Error("Sample expects a rate");
      }
      ++pos_;
      if (rate <= 0.0 || rate > 1.0) {
        return Error("Sample rate must be in (0, 1] (or 1..100 as a percent)");
      }
      if (!Consume(TokenKind::kComma)) {
        return Error("expected ',' after Sample rate");
      }
      src.sample_rate = rate;
      return Status::Ok();
    };

    auto parse_one = [&]() -> Status {
      bool had_sample = false;
      if (PeekKeyword("sample") && Peek(1).kind == TokenKind::kLParen) {
        PIVOT_RETURN_IF_ERROR(parse_sample_prefix());
        had_sample = true;
      }
      // Temporal wrapper?
      static constexpr struct {
        const char* kw;
        TemporalFilter filter;
        bool takes_n;
      } kTemporal[] = {
          {"first", TemporalFilter::kFirst, false},
          {"mostrecent", TemporalFilter::kMostRecent, false},
          {"firstn", TemporalFilter::kFirstN, true},
          {"mostrecentn", TemporalFilter::kMostRecentN, true},
      };
      for (const auto& t : kTemporal) {
        if (PeekKeyword(t.kw) && Peek(1).kind == TokenKind::kLParen) {
          if (src.temporal != TemporalFilter::kAll) {
            return Error("nested temporal filters");
          }
          pos_ += 2;  // keyword + '('
          src.temporal = t.filter;
          if (t.takes_n) {
            if (Peek().kind != TokenKind::kInt || Peek().int_value <= 0) {
              return Error(std::string(t.kw) + " expects a positive count");
            }
            src.n = static_cast<uint32_t>(Peek().int_value);
            ++pos_;
            if (!Consume(TokenKind::kComma)) {
              return Error("expected ',' after count in " + std::string(t.kw));
            }
          } else {
            src.n = 1;
          }
          PIVOT_RETURN_IF_ERROR(ParseNameList(&src));
          if (!Consume(TokenKind::kRParen)) {
            return Error("expected ')' closing " + std::string(t.kw));
          }
          if (had_sample && !Consume(TokenKind::kRParen)) {
            return Error("expected ')' closing Sample");
          }
          return Status::Ok();
        }
      }
      PIVOT_RETURN_IF_ERROR(ParseNameList(&src));
      if (had_sample && !Consume(TokenKind::kRParen)) {
        return Error("expected ')' closing Sample");
      }
      return Status::Ok();
    };

    PIVOT_RETURN_IF_ERROR(parse_one());
    while (Peek().kind == TokenKind::kComma && !PeekKeyword("join", 1)) {
      ++pos_;
      PIVOT_RETURN_IF_ERROR(parse_one());
    }
    return src;
  }

  std::optional<AggFn> PeekAggFn() const {
    const Token& t = Peek();
    if (t.kind != TokenKind::kIdent) {
      return std::nullopt;
    }
    if (EqualsIgnoreCase(t.text, "count")) {
      return AggFn::kCount;
    }
    if (EqualsIgnoreCase(t.text, "sum")) {
      return AggFn::kSum;
    }
    if (EqualsIgnoreCase(t.text, "min")) {
      return AggFn::kMin;
    }
    if (EqualsIgnoreCase(t.text, "max")) {
      return AggFn::kMax;
    }
    if (EqualsIgnoreCase(t.text, "average") || EqualsIgnoreCase(t.text, "avg")) {
      return AggFn::kAverage;
    }
    return std::nullopt;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    std::optional<AggFn> fn = PeekAggFn();
    if (fn.has_value() &&
        (Peek(1).kind == TokenKind::kLParen || *fn == AggFn::kCount)) {
      item.is_aggregate = true;
      item.fn = *fn;
      ++pos_;
      if (Consume(TokenKind::kLParen)) {
        if (*fn == AggFn::kCount && Peek().kind == TokenKind::kRParen) {
          // COUNT() — argument-free.
          ++pos_;
          item.display = "COUNT";
        } else {
          PIVOT_ASSIGN(item.expr, ParseExpr());
          if (!Consume(TokenKind::kRParen)) {
            return Error("expected ')' closing aggregate");
          }
          item.display = std::string(AggFnName(*fn)) + "(" + StripOuterParens(item.expr->ToString()) + ")";
        }
      } else {
        // Bare COUNT (Q3 in the paper).
        item.display = "COUNT";
      }
    } else {
      PIVOT_ASSIGN(item.expr, ParseExpr());
      item.display = StripOuterParens(item.expr->ToString());
    }
    if (ConsumeKeyword("as")) {
      PIVOT_ASSIGN(item.display, ParseIdent("As alias"));
      item.has_explicit_alias = true;
    }
    return item;
  }

  static std::string StripOuterParens(std::string s) {
    // Expr::ToString wraps binaries in parens; strip one balanced outer pair
    // for friendlier display names.
    if (s.size() >= 2 && s.front() == '(' && s.back() == ')') {
      int depth = 0;
      for (size_t i = 0; i + 1 < s.size(); ++i) {
        if (s[i] == '(') {
          ++depth;
        } else if (s[i] == ')') {
          --depth;
        }
        if (depth == 0) {
          return s;  // Outer parens close early: not a single wrapping pair.
        }
      }
      return s.substr(1, s.size() - 2);
    }
    return s;
  }

  // ---- Expressions ----

  Result<Expr::Ptr> ParseExpr() { return ParseOr(); }

  Result<Expr::Ptr> ParseOr() {
    PIVOT_ASSIGN(Expr::Ptr lhs, ParseAnd());
    while (Consume(TokenKind::kOr)) {
      PIVOT_ASSIGN(Expr::Ptr rhs, ParseAnd());
      lhs = Expr::Binary(ExprOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr::Ptr> ParseAnd() {
    PIVOT_ASSIGN(Expr::Ptr lhs, ParseEquality());
    while (Consume(TokenKind::kAnd)) {
      PIVOT_ASSIGN(Expr::Ptr rhs, ParseEquality());
      lhs = Expr::Binary(ExprOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<Expr::Ptr> ParseEquality() {
    PIVOT_ASSIGN(Expr::Ptr lhs, ParseComparison());
    for (;;) {
      if (Consume(TokenKind::kEq)) {
        PIVOT_ASSIGN(Expr::Ptr rhs, ParseComparison());
        lhs = Expr::Binary(ExprOp::kEq, std::move(lhs), std::move(rhs));
      } else if (Consume(TokenKind::kNe)) {
        PIVOT_ASSIGN(Expr::Ptr rhs, ParseComparison());
        lhs = Expr::Binary(ExprOp::kNe, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<Expr::Ptr> ParseComparison() {
    PIVOT_ASSIGN(Expr::Ptr lhs, ParseAdditive());
    for (;;) {
      ExprOp op;
      if (Peek().kind == TokenKind::kLt) {
        op = ExprOp::kLt;
      } else if (Peek().kind == TokenKind::kLe) {
        op = ExprOp::kLe;
      } else if (Peek().kind == TokenKind::kGt) {
        op = ExprOp::kGt;
      } else if (Peek().kind == TokenKind::kGe) {
        op = ExprOp::kGe;
      } else {
        return lhs;
      }
      ++pos_;
      PIVOT_ASSIGN(Expr::Ptr rhs, ParseAdditive());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<Expr::Ptr> ParseAdditive() {
    PIVOT_ASSIGN(Expr::Ptr lhs, ParseMultiplicative());
    for (;;) {
      if (Consume(TokenKind::kPlus)) {
        PIVOT_ASSIGN(Expr::Ptr rhs, ParseMultiplicative());
        lhs = Expr::Binary(ExprOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (Consume(TokenKind::kMinus)) {
        PIVOT_ASSIGN(Expr::Ptr rhs, ParseMultiplicative());
        lhs = Expr::Binary(ExprOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        return lhs;
      }
    }
  }

  Result<Expr::Ptr> ParseMultiplicative() {
    PIVOT_ASSIGN(Expr::Ptr lhs, ParseUnary());
    for (;;) {
      ExprOp op;
      if (Peek().kind == TokenKind::kStar) {
        op = ExprOp::kMul;
      } else if (Peek().kind == TokenKind::kSlash) {
        op = ExprOp::kDiv;
      } else if (Peek().kind == TokenKind::kPercent) {
        op = ExprOp::kMod;
      } else {
        return lhs;
      }
      ++pos_;
      PIVOT_ASSIGN(Expr::Ptr rhs, ParseUnary());
      lhs = Expr::Binary(op, std::move(lhs), std::move(rhs));
    }
  }

  Result<Expr::Ptr> ParseUnary() {
    if (Consume(TokenKind::kBang)) {
      PIVOT_ASSIGN(Expr::Ptr operand, ParseUnary());
      return Expr::Unary(ExprOp::kNot, std::move(operand));
    }
    if (Consume(TokenKind::kMinus)) {
      PIVOT_ASSIGN(Expr::Ptr operand, ParseUnary());
      // Fold "-<numeric literal>" into a negative literal so rendering is
      // idempotent and downstream evaluation cheaper.
      if (operand->op() == ExprOp::kLiteral && operand->literal().is_int()) {
        return Expr::Literal(Value(-operand->literal().int_value()));
      }
      if (operand->op() == ExprOp::kLiteral && operand->literal().is_double()) {
        return Expr::Literal(Value(-operand->literal().double_value()));
      }
      return Expr::Unary(ExprOp::kNeg, std::move(operand));
    }
    return ParsePrimary();
  }

  Result<Expr::Ptr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kInt: {
        ++pos_;
        return Expr::Literal(Value(t.int_value));
      }
      case TokenKind::kDouble: {
        ++pos_;
        return Expr::Literal(Value(t.double_value));
      }
      case TokenKind::kString: {
        ++pos_;
        return Expr::Literal(Value(t.text));
      }
      case TokenKind::kIdent: {
        PIVOT_ASSIGN(std::string name, ParseDotted("field reference"));
        return Expr::Field(std::move(name));
      }
      case TokenKind::kLParen: {
        ++pos_;
        PIVOT_ASSIGN(Expr::Ptr inner, ParseExpr());
        if (!Consume(TokenKind::kRParen)) {
          return Error("expected ')'");
        }
        return inner;
      }
      default:
        return Error("expected expression");
    }
  }

#undef PIVOT_ASSIGN

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Tokenize(text);
  if (!tokens.ok()) {
    return tokens.status();
  }
  Parser parser(std::move(tokens).value());
  Result<Query> q = parser.Parse();
  if (q.ok()) {
    q.value().text = std::string(text);
  }
  return q;
}

}  // namespace pivot
