#include <gtest/gtest.h>

#include <thread>

#include "src/bus/message_bus.h"

namespace pivot {
namespace {

TEST(MessageBusTest, DeliversToSubscribers) {
  MessageBus bus;
  int received = 0;
  bus.Subscribe("t", [&](const BusMessage& msg) {
    ++received;
    EXPECT_EQ(msg.payload, (std::vector<uint8_t>{1, 2, 3}));
  });
  bus.Publish(BusMessage{"t", {1, 2, 3}});
  EXPECT_EQ(received, 1);
  EXPECT_EQ(bus.published_count(), 1u);
  EXPECT_EQ(bus.delivered_count(), 1u);
}

TEST(MessageBusTest, TopicIsolation) {
  MessageBus bus;
  int a = 0;
  int b = 0;
  bus.Subscribe("a", [&](const BusMessage&) { ++a; });
  bus.Subscribe("b", [&](const BusMessage&) { ++b; });
  bus.Publish(BusMessage{"a", {}});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
}

TEST(MessageBusTest, MultipleSubscribersInOrder) {
  MessageBus bus;
  std::vector<int> order;
  bus.Subscribe("t", [&](const BusMessage&) { order.push_back(1); });
  bus.Subscribe("t", [&](const BusMessage&) { order.push_back(2); });
  bus.Publish(BusMessage{"t", {}});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MessageBusTest, UnsubscribeStopsDelivery) {
  MessageBus bus;
  int received = 0;
  auto id = bus.Subscribe("t", [&](const BusMessage&) { ++received; });
  bus.Publish(BusMessage{"t", {}});
  bus.Unsubscribe(id);
  bus.Publish(BusMessage{"t", {}});
  EXPECT_EQ(received, 1);
}

TEST(MessageBusTest, UnsubscribeTargetsOnlyItsOwnTopicAndId) {
  // Unsubscribe resolves id -> topic directly; with many topics alive it must
  // remove exactly the cancelled subscription, leave siblings on the same
  // topic intact, and tolerate double-unsubscribe and unknown ids.
  MessageBus bus;
  int a = 0, b = 0, c = 0;
  bus.Subscribe("t1", [&](const BusMessage&) { ++a; });
  auto id_b = bus.Subscribe("t2", [&](const BusMessage&) { ++b; });
  bus.Subscribe("t2", [&](const BusMessage&) { ++c; });

  bus.Unsubscribe(id_b);
  bus.Unsubscribe(id_b);    // Double-unsubscribe: no-op.
  bus.Unsubscribe(999999);  // Never-issued id: no-op.

  bus.Publish(BusMessage{"t1", {}});
  bus.Publish(BusMessage{"t2", {}});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 0);
  EXPECT_EQ(c, 1);
}

TEST(MessageBusTest, PublishWithNoSubscribersIsFine) {
  MessageBus bus;
  bus.Publish(BusMessage{"nobody", {9}});
  EXPECT_EQ(bus.published_count(), 1u);
  EXPECT_EQ(bus.delivered_count(), 0u);
  EXPECT_EQ(bus.dropped_publishes(), 1u);
}

TEST(MessageBusTest, TopicSnapshotCountsPerTopicTraffic) {
  MessageBus bus;
  bus.Subscribe("sub", [](const BusMessage&) {});
  bus.Subscribe("sub", [](const BusMessage&) {});
  bus.Publish(BusMessage{"sub", {1, 2, 3}});
  bus.Publish(BusMessage{"sub", {4}});
  bus.Publish(BusMessage{"void", {5, 6}});

  auto topics = bus.TopicSnapshot();
  ASSERT_EQ(topics.size(), 2u);  // Sorted by topic name.
  EXPECT_EQ(topics[0].topic, "sub");
  EXPECT_EQ(topics[0].published, 2u);
  EXPECT_EQ(topics[0].delivered, 4u);  // Two messages x two subscribers.
  EXPECT_EQ(topics[0].bytes, 4u);
  EXPECT_EQ(topics[0].no_subscriber, 0u);
  EXPECT_EQ(topics[0].subscribers, 2u);
  EXPECT_EQ(topics[1].topic, "void");
  EXPECT_EQ(topics[1].published, 1u);
  EXPECT_EQ(topics[1].delivered, 0u);
  EXPECT_EQ(topics[1].no_subscriber, 1u);
  EXPECT_EQ(topics[1].subscribers, 0u);
  EXPECT_EQ(bus.dropped_publishes(), 1u);
}

TEST(MessageBusTest, ReentrantPublishFromCallback) {
  MessageBus bus;
  int second = 0;
  bus.Subscribe("first", [&](const BusMessage&) { bus.Publish(BusMessage{"second", {}}); });
  bus.Subscribe("second", [&](const BusMessage&) { ++second; });
  bus.Publish(BusMessage{"first", {}});
  EXPECT_EQ(second, 1);
}

TEST(MessageBusTest, ReentrantSubscribeFromCallback) {
  MessageBus bus;
  int late = 0;
  bus.Subscribe("t", [&](const BusMessage&) {
    if (late == 0) {
      bus.Subscribe("t", [&](const BusMessage&) { ++late; });
    }
  });
  bus.Publish(BusMessage{"t", {}});  // New subscriber not called for this one.
  EXPECT_EQ(late, 0);
  bus.Publish(BusMessage{"t", {}});
  EXPECT_EQ(late, 1);
}

TEST(MessageBusTest, ConcurrentPublishersAreSafe) {
  MessageBus bus;
  std::atomic<int> received{0};
  bus.Subscribe("t", [&](const BusMessage&) { received.fetch_add(1); });
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&bus] {
      for (int j = 0; j < 100; ++j) {
        bus.Publish(BusMessage{"t", {}});
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(received.load(), 400);
}

}  // namespace
}  // namespace pivot
