file(REMOVE_RECURSE
  "CMakeFiles/pivot_hadoop.dir/cluster.cc.o"
  "CMakeFiles/pivot_hadoop.dir/cluster.cc.o.d"
  "CMakeFiles/pivot_hadoop.dir/hbase.cc.o"
  "CMakeFiles/pivot_hadoop.dir/hbase.cc.o.d"
  "CMakeFiles/pivot_hadoop.dir/hdfs.cc.o"
  "CMakeFiles/pivot_hadoop.dir/hdfs.cc.o.d"
  "CMakeFiles/pivot_hadoop.dir/mapreduce.cc.o"
  "CMakeFiles/pivot_hadoop.dir/mapreduce.cc.o.d"
  "CMakeFiles/pivot_hadoop.dir/tracepoints.cc.o"
  "CMakeFiles/pivot_hadoop.dir/tracepoints.cc.o.d"
  "CMakeFiles/pivot_hadoop.dir/workloads.cc.o"
  "CMakeFiles/pivot_hadoop.dir/workloads.cc.o.d"
  "CMakeFiles/pivot_hadoop.dir/yarn.cc.o"
  "CMakeFiles/pivot_hadoop.dir/yarn.cc.o.d"
  "libpivot_hadoop.a"
  "libpivot_hadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pivot_hadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
