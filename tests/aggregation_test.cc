#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/rand.h"
#include "src/core/aggregation.h"

namespace pivot {
namespace {

Tuple Row(std::string g, int64_t v) {
  return Tuple{{"g", Value(std::move(g))}, {"v", Value(v)}};
}

TEST(AggregatorTest, CountGrouped) {
  Aggregator agg({"g"}, {{AggFn::kCount, "", "COUNT", false}});
  agg.AddInput(Row("a", 1));
  agg.AddInput(Row("a", 2));
  agg.AddInput(Row("b", 3));
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].Get("g").string_value(), "a");
  EXPECT_EQ(out[0].Get("COUNT").int_value(), 2);
  EXPECT_EQ(out[1].Get("COUNT").int_value(), 1);
}

TEST(AggregatorTest, SumSkipsNulls) {
  Aggregator agg({}, {{AggFn::kSum, "v", "SUM(v)", false}});
  agg.AddInput(Row("a", 5));
  agg.AddInput(Tuple{{"g", Value("a")}});  // v missing -> null
  agg.AddInput(Row("a", 7));
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("SUM(v)").int_value(), 12);
}

TEST(AggregatorTest, MinMax) {
  Aggregator agg({}, {{AggFn::kMin, "v", "MIN(v)", false}, {AggFn::kMax, "v", "MAX(v)", false}});
  for (int64_t v : {5, -2, 9, 0}) {
    agg.AddInput(Row("x", v));
  }
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("MIN(v)").int_value(), -2);
  EXPECT_EQ(out[0].Get("MAX(v)").int_value(), 9);
}

TEST(AggregatorTest, AverageFinalizesAsDouble) {
  Aggregator agg({}, {{AggFn::kAverage, "v", "AVERAGE(v)", false}});
  agg.AddInput(Row("x", 1));
  agg.AddInput(Row("x", 2));
  agg.AddInput(Row("x", 4));
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_NEAR(out[0].Get("AVERAGE(v)").AsDouble(), 7.0 / 3.0, 1e-9);
}

TEST(AggregatorTest, EmptyGroupFinalizesCountZero) {
  Aggregator agg({}, {{AggFn::kCount, "", "COUNT", false}});
  EXPECT_TRUE(agg.Finalize().empty());
  EXPECT_TRUE(agg.empty());
}

TEST(AggregatorTest, GroupKeysDistinguishTypes) {
  Aggregator agg({"g"}, {{AggFn::kCount, "", "COUNT", false}});
  agg.AddInput(Tuple{{"g", Value(int64_t{1})}});
  agg.AddInput(Tuple{{"g", Value("1")}});
  EXPECT_EQ(agg.group_count(), 2u);
}

TEST(AggregatorTest, GroupOutputInInsertionOrder) {
  Aggregator agg({"g"}, {{AggFn::kCount, "", "COUNT", false}});
  agg.AddInput(Row("z", 1));
  agg.AddInput(Row("a", 1));
  agg.AddInput(Row("z", 1));
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].Get("g").string_value(), "z");
  EXPECT_EQ(out[1].Get("g").string_value(), "a");
}

TEST(AggregatorTest, InsertionOrderSurvivesIndexGrowth) {
  // Hundreds of distinct keys force the hashed index through several
  // rehashes; output order must remain first-seen order throughout.
  Aggregator agg({"g"}, {{AggFn::kCount, "", "COUNT", false}});
  constexpr int kGroups = 300;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < kGroups; ++i) {
      agg.AddInput(Row("k" + std::to_string(i), i));
    }
  }
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), static_cast<size_t>(kGroups));
  for (int i = 0; i < kGroups; ++i) {
    EXPECT_EQ(out[i].Get("g").string_value(), "k" + std::to_string(i));
    EXPECT_EQ(out[i].Get("COUNT").int_value(), 3);
  }
}

TEST(AggregatorTest, NumericallyEqualKeysOfDifferentTypesStaySeparate) {
  // The hashed index must keep the canonical-key semantics: int 1,
  // double 1.0 and string "1" are three groups even though Value::Compare
  // calls the numerics equal.
  Aggregator agg({"g"}, {{AggFn::kCount, "", "COUNT", false}});
  agg.AddInput(Tuple{{"g", Value(int64_t{1})}});
  agg.AddInput(Tuple{{"g", Value(1.0)}});
  agg.AddInput(Tuple{{"g", Value("1")}});
  agg.AddInput(Tuple{{"g", Value(int64_t{1})}});
  EXPECT_EQ(agg.group_count(), 3u);
  auto out = agg.Finalize();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].Get("COUNT").int_value(), 2);  // The two int 1s coalesced.
}

TEST(AggregatorTest, CollisionHeavyKeysStayDistinct) {
  // Multi-field keys sharing long prefixes and numeric twins stress probe
  // chains: every distinct (a, b) pair must remain its own group, and
  // re-adding each key must find the existing group, not insert a twin.
  Aggregator agg({"a", "b"}, {{AggFn::kCount, "", "COUNT", false}});
  std::vector<Tuple> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back(Tuple{{"a", Value(std::string(100, 'x') + std::to_string(i))},
                         {"b", Value(static_cast<int64_t>(i % 4))}});
    keys.push_back(Tuple{{"a", Value(std::string(100, 'x') + std::to_string(i))},
                         {"b", Value(static_cast<double>(i % 4))}});
  }
  for (int round = 0; round < 2; ++round) {
    for (const auto& k : keys) {
      agg.AddInput(k);
    }
  }
  EXPECT_EQ(agg.group_count(), keys.size());
  for (const auto& t : agg.Finalize()) {
    EXPECT_EQ(t.Get("COUNT").int_value(), 2);
  }
}

TEST(AggregatorTest, MissingGroupFieldProjectsToNullGroup) {
  // Rows missing the group field coalesce into one null-keyed group — same
  // as the canonical-string index did.
  Aggregator agg({"g"}, {{AggFn::kCount, "", "COUNT", false}});
  agg.AddInput(Tuple{{"v", Value(int64_t{1})}});
  agg.AddInput(Tuple{{"v", Value(int64_t{2})}});
  agg.AddInput(Row("a", 3));
  EXPECT_EQ(agg.group_count(), 2u);
  auto out = agg.Finalize();
  EXPECT_EQ(out[0].Get("COUNT").int_value(), 2);
  EXPECT_TRUE(out[0].Get("g").is_null());
}

TEST(AggregatorTest, StateRoundTripThroughAddState) {
  Aggregator a({"g"}, {{AggFn::kAverage, "v", "AVG", false}, {AggFn::kCount, "", "C", false}});
  a.AddInput(Row("x", 10));
  a.AddInput(Row("x", 20));
  a.AddInput(Row("y", 5));

  Aggregator b(a.group_fields(), a.specs());
  for (const auto& st : a.StateTuples()) {
    b.AddState(st);
  }
  auto fa = a.Finalize();
  auto fb = b.Finalize();
  ASSERT_EQ(fa.size(), fb.size());
  for (size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].ToString(), fb[i].ToString());
  }
}

TEST(AggregatorTest, FromStateInputCombines) {
  // Pack-side aggregator produced partial sums named "SUM(v)"; the emit-side
  // spec with from_state combines them instead of re-summing raw values.
  Aggregator packed({"g"}, {{AggFn::kSum, "v", "SUM(v)", false}});
  packed.AddInput(Row("a", 3));
  packed.AddInput(Row("a", 4));

  Aggregator emit({"g"}, {{AggFn::kSum, "SUM(v)", "SUM(v)", true}});
  for (const auto& st : packed.StateTuples()) {
    emit.AddInput(st);
  }
  auto out = emit.Finalize();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].Get("SUM(v)").int_value(), 7);
}

TEST(AggregatorTest, AverageStateCarriesCount) {
  AggSpec avg{AggFn::kAverage, "v", "A", false};
  EXPECT_EQ(avg.StateColumns(), (std::vector<std::string>{"A", "A#n"}));
  Aggregator a({}, {avg});
  a.AddInput(Row("x", 2));
  a.AddInput(Row("x", 4));
  auto st = a.StateTuples();
  ASSERT_EQ(st.size(), 1u);
  EXPECT_EQ(st[0].Get("A").int_value(), 6);
  EXPECT_EQ(st[0].Get("A#n").int_value(), 2);
}

TEST(AggregatorTest, ClearResets) {
  Aggregator agg({}, {{AggFn::kCount, "", "COUNT", false}});
  agg.AddInput(Row("x", 1));
  agg.Clear();
  EXPECT_TRUE(agg.empty());
  EXPECT_TRUE(agg.Finalize().empty());
}

// Property: partial aggregation + combining equals direct aggregation, for
// every aggregate function, over random inputs and random partitionings —
// the correctness condition behind Table 3's Combine and the agent/frontend
// two-level aggregation.
class CombinePropertyTest : public ::testing::TestWithParam<AggFn> {};

TEST_P(CombinePropertyTest, PartitionedEqualsDirect) {
  AggFn fn = GetParam();
  AggSpec spec{fn, fn == AggFn::kCount ? "" : "v", "out", false};
  Rng rng(static_cast<uint64_t>(fn) * 7919 + 1);

  for (int trial = 0; trial < 30; ++trial) {
    std::vector<Tuple> rows;
    int n = static_cast<int>(rng.NextBelow(60));
    for (int i = 0; i < n; ++i) {
      rows.push_back(Row(std::string(1, static_cast<char>('a' + rng.NextBelow(4))),
                         rng.NextInt(-50, 50)));
    }

    Aggregator direct({"g"}, {spec});
    for (const auto& r : rows) {
      direct.AddInput(r);
    }

    // Random partition into up to 5 partial aggregators, combined at the end.
    std::vector<Aggregator> parts;
    for (int p = 0; p < 5; ++p) {
      parts.emplace_back(std::vector<std::string>{"g"}, std::vector<AggSpec>{spec});
    }
    for (const auto& r : rows) {
      parts[rng.NextBelow(parts.size())].AddInput(r);
    }
    Aggregator combined({"g"}, {spec});
    for (auto& part : parts) {
      for (const auto& st : part.StateTuples()) {
        combined.AddState(st);
      }
    }

    auto canonical = [](std::vector<Tuple> rows_in) {
      std::vector<std::string> strs;
      strs.reserve(rows_in.size());
      for (const auto& r : rows_in) {
        strs.push_back(r.ToString());
      }
      std::sort(strs.begin(), strs.end());
      return strs;
    };
    ASSERT_EQ(canonical(direct.Finalize()), canonical(combined.Finalize()))
        << "fn=" << AggFnName(fn) << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFns, CombinePropertyTest,
                         ::testing::Values(AggFn::kCount, AggFn::kSum, AggFn::kMin, AggFn::kMax,
                                           AggFn::kAverage),
                         [](const ::testing::TestParamInfo<AggFn>& info) {
                           return AggFnName(info.param);
                         });

}  // namespace
}  // namespace pivot
