// TraceGraph: records the happened-before DAG of one request's execution.
//
// This is *not* part of Pivot Tracing's fast path — baggage makes runtime
// queries independent of any recorded graph. The graph exists as ground truth:
// the naive global evaluation strategy (Fig 6a) computes `->⋈` by reachability
// over this DAG, and the property-based test suite checks the two strategies
// agree. It also powers the tuple-traffic ablation bench.

#ifndef PIVOT_SRC_CORE_TRACE_GRAPH_H_
#define PIVOT_SRC_CORE_TRACE_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/tuple.h"

namespace pivot {

using EventId = uint32_t;
inline constexpr EventId kNoEvent = 0xFFFFFFFF;

// The happened-before DAG of a single request. Events are appended in
// topological order (parents always precede children), which the recording
// discipline guarantees: an event's parents are the current events of the
// branches being extended or joined.
class TraceGraph {
 public:
  // Adds an event with the given parents (kNoEvent entries are ignored) and
  // returns its id. Sequence order doubles as a topological order.
  EventId AddEvent(std::vector<EventId> parents);

  // Strict happened-before: true iff `a` is a proper ancestor of `b`.
  bool HappenedBefore(EventId a, EventId b) const;

  size_t size() const { return parents_.size(); }
  const std::vector<EventId>& parents(EventId e) const { return parents_[e]; }

 private:
  std::vector<std::vector<EventId>> parents_;
};

// One observed tuple: which tracepoint fired, in which trace, at which event,
// with which exported values (unqualified field names). Recorded only when a
// TraceRecorder is attached to the execution context.
struct ObservedEvent {
  uint64_t trace_id = 0;
  EventId event = kNoEvent;
  std::string tracepoint;
  Tuple exports;
};

// Collects observed events and owns the per-request graphs. Single-threaded
// (the simulator) by design; concurrent real-thread use would wrap this in a
// mutex, which the fast path never touches.
class TraceRecorder {
 public:
  // Starts a new request trace; returns its id.
  uint64_t NewTrace();

  TraceGraph* graph(uint64_t trace_id) { return &graphs_[trace_id]; }
  const TraceGraph& graph(uint64_t trace_id) const { return graphs_[trace_id]; }
  size_t trace_count() const { return graphs_.size(); }

  void Record(ObservedEvent ev) { observed_.push_back(std::move(ev)); }
  const std::vector<ObservedEvent>& observed() const { return observed_; }

  void Clear();

 private:
  std::vector<TraceGraph> graphs_;
  std::vector<ObservedEvent> observed_;
};

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_TRACE_GRAPH_H_
