#include "src/hadoop/workloads.h"

#include "src/hadoop/tracepoints.h"

namespace pivot {

// ---------------------------------------------------------------------------
// HdfsReadWorkload

HdfsReadWorkload::HdfsReadWorkload(SimProcess* proc, HdfsNameNode* namenode, uint64_t read_bytes,
                                   int64_t think_micros, bool stress_test, uint64_t seed)
    : proc_(proc),
      client_(proc, namenode, seed),
      read_bytes_(read_bytes),
      think_micros_(think_micros),
      rng_(seed ^ 0xD1B54A32D192ED03ULL),
      stats_(proc->world()->env()) {
  if (stress_test) {
    tp_do_next_op_ = GetOrDefineTracepoint(proc, StressTestDoNextOpDef());
  }
}

void HdfsReadWorkload::Start(int64_t stop_at_micros) {
  stop_at_ = stop_at_micros;
  // Random start offset desynchronizes the closed loops.
  proc_->world()->env()->Schedule(rng_.NextInt(0, 10 * kMicrosPerMilli), [this] { DoOp(); });
}

void HdfsReadWorkload::DoOp() {
  SimWorld* world = proc_->world();
  if (world->env()->now_micros() >= stop_at_) {
    return;
  }
  CtxPtr ctx = world->NewRequest(proc_);
  if (tp_do_next_op_ != nullptr) {
    tp_do_next_op_->Invoke(ctx.get(), {{"op", Value("read")}});
  }
  uint64_t file_id = rng_.NextBelow(client_.namenode()->file_count());
  client_.Read(ctx, file_id, read_bytes_, [this](CtxPtr, HdfsClient::ReadResult result) {
    SimEnvironment* env = proc_->world()->env();
    stats_.Record(env->now_micros(), result.latency_micros);
    env->Schedule(think_micros_, [this] { DoOp(); });
  });
}

// ---------------------------------------------------------------------------
// HbaseWorkload

HbaseWorkload::HbaseWorkload(SimProcess* proc, std::vector<HbaseRegionServer*> servers, Op op,
                             int64_t think_micros, uint64_t seed)
    : proc_(proc),
      client_(proc, std::move(servers), seed),
      op_(op),
      think_micros_(think_micros),
      rng_(seed ^ 0xA24BAED4963EE407ULL),
      stats_(proc->world()->env()) {}

void HbaseWorkload::Start(int64_t stop_at_micros) {
  stop_at_ = stop_at_micros;
  proc_->world()->env()->Schedule(rng_.NextInt(0, 10 * kMicrosPerMilli), [this] { DoOp(); });
}

void HbaseWorkload::DoOp() {
  SimWorld* world = proc_->world();
  if (world->env()->now_micros() >= stop_at_) {
    return;
  }
  CtxPtr ctx = world->NewRequest(proc_);
  auto done = [this](CtxPtr, HbaseClient::RequestResult result) {
    SimEnvironment* env = proc_->world()->env();
    stats_.Record(env->now_micros(), result.latency_micros);
    env->Schedule(think_micros_, [this] { DoOp(); });
  };
  switch (op_) {
    case Op::kScan:
      client_.Scan(std::move(ctx), std::move(done));
      break;
    case Op::kPut:
      client_.Put(std::move(ctx), std::move(done));
      break;
    case Op::kGet:
      client_.Get(std::move(ctx), std::move(done));
      break;
  }
}

// ---------------------------------------------------------------------------
// MapReduceWorkload

MapReduceWorkload::MapReduceWorkload(SimProcess* client, MapReduceRuntime* runtime,
                                     std::string job_name, uint64_t input_bytes, MrConfig config)
    : client_(client),
      runtime_(runtime),
      job_name_(std::move(job_name)),
      input_bytes_(input_bytes),
      config_(config),
      stats_(client->world()->env()) {}

void MapReduceWorkload::Start(int64_t stop_at_micros) {
  stop_at_ = stop_at_micros;
  // Defer through the event queue so jobs submitted "now" still run after
  // anything else scheduled at the current instant (e.g. query installs).
  client_->world()->env()->Schedule(0, [this] { SubmitNext(); });
}

void MapReduceWorkload::SubmitNext() {
  SimWorld* world = client_->world();
  if (world->env()->now_micros() >= stop_at_) {
    return;
  }
  CtxPtr ctx = world->NewRequest(client_);
  int64_t start = world->env()->now_micros();
  runtime_->SubmitJob(client_, ctx, job_name_, input_bytes_, config_, [this, start](CtxPtr) {
    SimEnvironment* env = client_->world()->env();
    stats_.Record(env->now_micros(), env->now_micros() - start);
    ++jobs_completed_;
    env->Schedule(kMicrosPerSecond, [this] { SubmitNext(); });
  });
}

// ---------------------------------------------------------------------------
// MetadataWorkload

MetadataWorkload::MetadataWorkload(SimProcess* proc, HdfsNameNode* namenode, std::string op,
                                   int64_t think_micros, uint64_t seed)
    : proc_(proc),
      client_(proc, namenode, seed),
      op_(std::move(op)),
      think_micros_(think_micros),
      stats_(proc->world()->env()) {}

void MetadataWorkload::Start(int64_t stop_at_micros) {
  stop_at_ = stop_at_micros;
  proc_->world()->env()->Schedule(0, [this] { DoOp(); });
}

void MetadataWorkload::DoOp() {
  SimWorld* world = proc_->world();
  if (world->env()->now_micros() >= stop_at_) {
    return;
  }
  CtxPtr ctx = world->NewRequest(proc_);
  int64_t start = world->env()->now_micros();
  client_.MetadataOp(std::move(ctx), op_, [this, start](CtxPtr) {
    SimEnvironment* env = proc_->world()->env();
    stats_.Record(env->now_micros(), env->now_micros() - start);
    env->Schedule(think_micros_, [this] { DoOp(); });
  });
}

}  // namespace pivot
