// Probe-effect regression gate for the self-telemetry layer.
//
// The seed implementation's key property (Table 5, DESIGN.md §1) is that an
// *unwoven* tracepoint costs one relaxed atomic load plus a branch. The
// telemetry subsystem adds a fire counter to that fast path — deliberately a
// relaxed load+add+store (plain increment, no lock-prefixed RMW) so the
// property survives. This bench proves it: a local replica of the *seed*
// Invoke (advice load + branch only, no counter) is measured against the real
// Tracepoint::Invoke, interleaved best-of-passes, and the run fails if the
// realistic-exports case exceeds --max-overhead-pct (default 10).
//
// Two cases:
//   exports=1 field   what instrumented call sites actually do — building the
//                     exports vector (one small allocation) dominates, so the
//                     counter hides in the noise. This is the gated number.
//   exports=empty     the pure fast path, no allocation. Informational: it
//                     isolates the counter's cost (a handful of cycles) but
//                     no real call site looks like this.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/tracepoint.h"

namespace pivot {
namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Replica of the seed Tracepoint fast path: acquire-load the advice pointer,
// branch, hand off to an out-of-line slow path. No fire counter — this is
// what the telemetry change is measured against. The cold InvokeSlow call is
// kept (never taken here) so the exports vector's lifetime constrains codegen
// exactly as in the seed; dropping it lets the compiler shortcut the vector
// and makes the baseline unrealistically fast.
struct SeedTracepoint {
  std::atomic<const AdviceSet*> advice{nullptr};

  void Invoke(ExecutionContext* ctx, std::vector<Tuple::Field> exports) const {
    const AdviceSet* set = advice.load(std::memory_order_acquire);
    if (set == nullptr && (ctx == nullptr || ctx->recorder() == nullptr)) {
      return;
    }
    InvokeSlow(ctx, set, std::move(exports));
  }

  __attribute__((noinline)) void InvokeSlow(ExecutionContext* ctx, const AdviceSet* set,
                                            std::vector<Tuple::Field> exports) const {
    // Unreachable (never woven); mirrors the real out-of-line slow path.
    (void)ctx;
    (void)set;
    (void)exports;
  }
};

// Interleaved best-of-passes (same idiom as bench_table5_overhead): frequency
// scaling and scheduler noise hit both sides equally.
std::pair<double, double> MeasureInterleaved(const std::function<void()>& base,
                                             const std::function<void()>& variant,
                                             int iterations_per_pass, int passes) {
  for (int i = 0; i < iterations_per_pass; ++i) {
    base();
    variant();
  }
  int64_t best_base = INT64_MAX;
  int64_t best_variant = INT64_MAX;
  for (int pass = 0; pass < passes; ++pass) {
    int64_t start = NowNanos();
    for (int i = 0; i < iterations_per_pass; ++i) {
      base();
    }
    best_base = std::min(best_base, NowNanos() - start);
    start = NowNanos();
    for (int i = 0; i < iterations_per_pass; ++i) {
      variant();
    }
    best_variant = std::min(best_variant, NowNanos() - start);
  }
  return {static_cast<double>(best_base) / iterations_per_pass,
          static_cast<double>(best_variant) / iterations_per_pass};
}

}  // namespace
}  // namespace pivot

int main(int argc, char** argv) {
  using namespace pivot;

  double max_overhead_pct = 10.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-overhead-pct=", 19) == 0) {
      max_overhead_pct = std::atof(argv[i] + 19);
    }
  }

  TracepointRegistry registry;
  TracepointDef def;
  def.name = "Bench.Unwoven";
  def.exports = {"v"};
  Result<Tracepoint*> defined = registry.Define(std::move(def));
  const Tracepoint* real_tp = *defined;

  SeedTracepoint seed_tp;

  constexpr int kIters = 2'000'000;
  constexpr int kPasses = 12;

  printf("Telemetry probe-effect gate: unwoven Invoke, seed replica vs instrumented\n");
  printf("  %d iterations/pass, best of %d interleaved passes\n\n", kIters, kPasses);

  // Gated case: realistic call site — one exported field per invocation.
  int64_t v = 0;
  auto [seed_ns, real_ns] = MeasureInterleaved(
      [&] { seed_tp.Invoke(nullptr, {{"v", Value(v++)}}); },
      [&] { real_tp->Invoke(nullptr, {{"v", Value(v++)}}); }, kIters, kPasses);
  double overhead = (real_ns - seed_ns) / seed_ns * 100.0;
  printf("exports=1 field:   seed %.2f ns/op, instrumented %.2f ns/op, overhead %+.1f%%\n",
         seed_ns, real_ns, overhead);

  // Informational: the bare fast path (no exports vector to build).
  auto [seed_empty, real_empty] = MeasureInterleaved(
      [&] { seed_tp.Invoke(nullptr, {}); }, [&] { real_tp->Invoke(nullptr, {}); }, kIters,
      kPasses);
  printf("exports=empty:     seed %.2f ns/op, instrumented %.2f ns/op, overhead %+.1f%%\n",
         seed_empty, real_empty, (real_empty - seed_empty) / seed_empty * 100.0);

  // Sanity: the fire counter actually counted (lossy only under contention;
  // this bench is single-threaded, so counts are exact).
  uint64_t expected = static_cast<uint64_t>(kIters) * (kPasses + 1) * 2;
  printf("\nfire counter: %llu (expected %llu across both cases)\n",
         static_cast<unsigned long long>(real_tp->fires()),
         static_cast<unsigned long long>(expected));

  BenchJson json("telemetry_overhead");
  json.Report("invoke_1field_seed", seed_ns, "ns");
  json.Report("invoke_1field_instrumented", real_ns, "ns");
  json.Report("invoke_1field_overhead", overhead, "pct");
  json.Report("invoke_empty_overhead", (real_empty - seed_empty) / seed_empty * 100.0,
              "pct");
  json.Write();

  if (overhead > max_overhead_pct) {
    printf("\nFAIL: %.1f%% > %.1f%% allowed on the realistic-exports fast path\n", overhead,
           max_overhead_pct);
    return 1;
  }
  printf("\nPASS: within %.1f%% of the seed fast path\n", max_overhead_pct);
  return 0;
}
