file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_replica_bug.dir/bench_fig8_replica_bug.cc.o"
  "CMakeFiles/bench_fig8_replica_bug.dir/bench_fig8_replica_bug.cc.o.d"
  "bench_fig8_replica_bug"
  "bench_fig8_replica_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_replica_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
