// Shared output helpers for the figure-reproducing benches: time-series
// tables, pivot tables, and simple histograms, all plain text.

#ifndef PIVOT_BENCH_BENCH_UTIL_H_
#define PIVOT_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "src/core/tuple.h"

namespace pivot {

// Machine-readable bench results. Each bench binary collects
// (metric, value, unit) entries and writes them as
// "$PIVOT_BENCH_JSON_DIR/BENCH_<name>.json" so CI can archive and diff runs.
// The git sha is taken from $PIVOT_GIT_SHA (check.sh exports it); absent env
// vars degrade gracefully (no file / "unknown" sha) so local runs stay quiet.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;
  ~BenchJson() { Write(); }

  void Report(const std::string& metric, double value, const std::string& unit) {
    entries_.push_back(Entry{metric, value, unit});
  }

  // Writes the collected entries; idempotent (second call is a no-op).
  // Returns true if a file was written.
  bool Write() {
    if (written_) {
      return false;
    }
    written_ = true;
    const char* dir = std::getenv("PIVOT_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') {
      return false;
    }
    std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "could not write %s\n", path.c_str());
      return false;
    }
    const char* sha = std::getenv("PIVOT_GIT_SHA");
    fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_sha\": \"%s\",\n  \"metrics\": [\n",
            Escaped(name_).c_str(), Escaped(sha != nullptr ? sha : "unknown").c_str());
    for (size_t i = 0; i < entries_.size(); ++i) {
      fprintf(f, "    {\"metric\": \"%s\", \"value\": %.6g, \"unit\": \"%s\"}%s\n",
              Escaped(entries_[i].metric).c_str(), entries_[i].value,
              Escaped(entries_[i].unit).c_str(), i + 1 == entries_.size() ? "" : ",");
    }
    fprintf(f, "  ]\n}\n");
    std::fclose(f);
    printf("(wrote %s)\n", path.c_str());
    return true;
  }

 private:
  struct Entry {
    std::string metric;
    double value;
    std::string unit;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        out += ' ';
      } else {
        out += c;
      }
    }
    return out;
  }

  std::string name_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

// When the PIVOT_CSV_DIR environment variable is set, writes `rows` (with a
// leading `header` row) to "$PIVOT_CSV_DIR/<name>.csv" for external plotting;
// otherwise does nothing. Returns true if a file was written.
inline bool MaybeWriteCsv(const std::string& name, const std::vector<std::string>& header,
                          const std::vector<std::vector<std::string>>& rows) {
  const char* dir = std::getenv("PIVOT_CSV_DIR");
  if (dir == nullptr || *dir == '\0') {
    return false;
  }
  std::string path = std::string(dir) + "/" + name + ".csv";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "could not write %s\n", path.c_str());
    return false;
  }
  auto write_row = [f](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      fprintf(f, "%s%s", i == 0 ? "" : ",", row[i].c_str());
    }
    fprintf(f, "\n");
  };
  write_row(header);
  for (const auto& row : rows) {
    write_row(row);
  }
  std::fclose(f);
  printf("(wrote %s)\n", path.c_str());
  return true;
}

// Prints a time series table: one row per sample second, one column per key.
// `series[key][second] = value`. When `csv_name` is non-empty and
// PIVOT_CSV_DIR is set, a per-second CSV is written too.
inline void PrintSeriesTable(const std::string& title, const std::string& unit,
                             const std::vector<std::string>& keys,
                             const std::map<std::string, std::map<int64_t, double>>& series,
                             int64_t from_sec, int64_t to_sec, int64_t step_sec,
                             double scale = 1.0, const std::string& csv_name = "") {
  if (!csv_name.empty()) {
    std::vector<std::string> header = {"t_sec"};
    header.insert(header.end(), keys.begin(), keys.end());
    std::vector<std::vector<std::string>> rows;
    for (int64_t sec = from_sec; sec < to_sec; ++sec) {
      std::vector<std::string> row = {std::to_string(sec)};
      for (const auto& key : keys) {
        double v = 0;
        auto it = series.find(key);
        if (it != series.end()) {
          auto bucket = it->second.find(sec);
          if (bucket != it->second.end()) {
            v = bucket->second;
          }
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.3f", v * scale);
        row.emplace_back(buf);
      }
      rows.push_back(std::move(row));
    }
    MaybeWriteCsv(csv_name, header, rows);
  }
  printf("%s [%s]\n", title.c_str(), unit.c_str());
  printf("%6s", "t[s]");
  for (const auto& key : keys) {
    printf("%12.12s", key.c_str());
  }
  printf("\n");
  for (int64_t sec = from_sec; sec < to_sec; sec += step_sec) {
    printf("%6lld", static_cast<long long>(sec));
    for (const auto& key : keys) {
      double sum = 0;
      auto series_it = series.find(key);
      if (series_it != series.end()) {
        for (int64_t s = sec; s < sec + step_sec; ++s) {
          auto it = series_it->second.find(s);
          if (it != series_it->second.end()) {
            sum += it->second;
          }
        }
      }
      printf("%12.1f", sum / static_cast<double>(step_sec) * scale);
    }
    printf("\n");
  }
  printf("\n");
}

// Prints a pivot table (rows x cols) with per-row, per-column and grand
// totals — the shape of Fig 1c.
inline void PrintPivotTable(const std::string& title, const std::string& unit,
                            const std::vector<std::string>& rows,
                            const std::vector<std::string>& cols,
                            const std::map<std::pair<std::string, std::string>, double>& cells,
                            double scale = 1.0) {
  printf("%s [%s]\n", title.c_str(), unit.c_str());
  printf("%10s", "");
  for (const auto& c : cols) {
    printf("%12.12s", c.c_str());
  }
  printf("%12s\n", "TOTAL");
  std::map<std::string, double> col_totals;
  double grand = 0;
  for (const auto& r : rows) {
    printf("%10.10s", r.c_str());
    double row_total = 0;
    for (const auto& c : cols) {
      double v = 0;
      auto it = cells.find({r, c});
      if (it != cells.end()) {
        v = it->second;
      }
      row_total += v;
      col_totals[c] += v;
      printf("%12.1f", v * scale);
    }
    grand += row_total;
    printf("%12.1f\n", row_total * scale);
  }
  printf("%10s", "TOTAL");
  for (const auto& c : cols) {
    printf("%12.1f", col_totals[c] * scale);
  }
  printf("%12.1f\n\n", grand * scale);
}

// Turns a query's per-interval results into per-key series:
// result rows keyed by `key_field`, value taken from `value_field`.
inline std::map<std::string, std::map<int64_t, double>> SeriesByKey(
    const std::map<int64_t, std::vector<Tuple>>& intervals, const std::string& key_field,
    const std::string& value_field) {
  std::map<std::string, std::map<int64_t, double>> out;
  for (const auto& [ts, rows] : intervals) {
    int64_t sec = ts / 1'000'000 - 1;  // Report at T covers [T-1s, T).
    for (const Tuple& row : rows) {
      out[row.Get(key_field).ToString()][sec] += row.Get(value_field).AsDouble();
    }
  }
  return out;
}

// Simple text histogram of values (used for latency distributions).
inline void PrintHistogram(const std::string& title, const std::vector<double>& values,
                           const std::vector<double>& bucket_edges, const std::string& unit) {
  printf("%s\n", title.c_str());
  std::vector<int> counts(bucket_edges.size() + 1, 0);
  for (double v : values) {
    size_t b = 0;
    while (b < bucket_edges.size() && v >= bucket_edges[b]) {
      ++b;
    }
    ++counts[b];
  }
  for (size_t b = 0; b < counts.size(); ++b) {
    std::string label;
    if (b == 0) {
      label = "< " + std::to_string(static_cast<long long>(bucket_edges[0]));
    } else if (b == bucket_edges.size()) {
      label = ">= " + std::to_string(static_cast<long long>(bucket_edges.back()));
    } else {
      label = std::to_string(static_cast<long long>(bucket_edges[b - 1])) + " - " +
              std::to_string(static_cast<long long>(bucket_edges[b]));
    }
    printf("  %16s %s: %d\n", (label + " " + unit).c_str(),
           std::string(static_cast<size_t>(counts[b] > 60 ? 60 : counts[b]), '#').c_str(),
           counts[b]);
  }
  printf("\n");
}

}  // namespace pivot

#endif  // PIVOT_BENCH_BENCH_UTIL_H_
