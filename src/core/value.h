// Value: the dynamically-typed scalar carried in Pivot Tracing tuples.
//
// Tracepoints export named variables (§3 of the paper); queries manipulate them
// as relational columns. Values are null, 64-bit integers, doubles, or strings.
// Booleans produced by predicates are represented as int64 0/1.

#ifndef PIVOT_SRC_CORE_VALUE_H_
#define PIVOT_SRC_CORE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace pivot {

enum class ValueType : uint8_t {
  kNull = 0,
  kInt = 1,
  kDouble = 2,
  kString = 3,
};

class Value {
 public:
  Value() : v_(std::monostate{}) {}
  Value(int64_t v) : v_(v) {}             // NOLINT(google-explicit-constructor)
  Value(int v) : v_(int64_t{v}) {}        // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}              // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)
  Value(std::string_view v) : v_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  ValueType type() const { return static_cast<ValueType>(v_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_int() const { return type() == ValueType::kInt; }
  bool is_double() const { return type() == ValueType::kDouble; }
  bool is_string() const { return type() == ValueType::kString; }
  bool is_numeric() const { return is_int() || is_double(); }

  // Accessors assert the type in debug builds; callers check type() first or
  // use the As* coercions below.
  int64_t int_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }

  // Numeric coercion: ints widen to double, null coerces to 0. Strings coerce
  // to 0 (queries comparing strings numerically are a user error the static
  // analyzer flags as PT103, see src/analysis/advice_verifier.h; this keeps
  // the evaluator total).
  double AsDouble() const;
  // Truthiness: null/0/0.0/"" are false, everything else true.
  bool AsBool() const;

  // Rendering for result tables and debugging.
  std::string ToString() const;

  // Ordering: null < numbers < strings; int/double compare numerically.
  // Returns <0, 0, >0.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  // Stable 64-bit hash (used for group-by keys).
  uint64_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

// Arithmetic used by query Select/Where expressions. Numeric promotion:
// int op int -> int, otherwise double. `Add` concatenates strings. Division by
// zero and type mismatches yield null (the evaluator is total; the static
// analyzer in src/analysis/ rejects statically-detectable type errors before
// install — PT103 for string/numeric confusion, PT110 for literal-zero
// division — so nulls here mean data-dependent surprises, not typos).
Value ValueAdd(const Value& a, const Value& b);
Value ValueSub(const Value& a, const Value& b);
Value ValueMul(const Value& a, const Value& b);
Value ValueDiv(const Value& a, const Value& b);
Value ValueMod(const Value& a, const Value& b);

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_VALUE_H_
