// §8 scalability check: "initial runs of the instrumented systems on a
// 200-node cluster with constant-size baggage being propagated showed
// negligible performance impact". This test stands in for that run: a
// 200-worker simulated cluster propagating Q2's constant-size baggage
// (one FIRST tuple) through every request, verified to complete and produce
// correct global aggregates.

#include <gtest/gtest.h>

#include <memory>

#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

TEST(ScaleTest, TwoHundredNodeClusterRunsQ2) {
  HadoopClusterConfig config;
  config.worker_hosts = 200;
  config.dataset_files = 2000;
  config.seed = 200200;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  // The fixed replica-selection policy keeps load uniform at this scale.
  config.hdfs.namenode_static_replica_order = false;
  config.hdfs.client_selects_first_location = false;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  Result<uint64_t> q2 = world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta), COUNT");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();

  RpcStats::Reset();

  // One client per 10 hosts keeps the test fast while exercising the full
  // breadth of the cluster.
  constexpr int kClients = 20;
  constexpr uint64_t kReadBytes = 64 << 10;
  std::vector<std::unique_ptr<HdfsReadWorkload>> clients;
  for (int i = 0; i < kClients; ++i) {
    SimProcess* proc =
        cluster.AddClient(cluster.worker(static_cast<size_t>(i * 10)), "ScaleClient");
    clients.push_back(std::make_unique<HdfsReadWorkload>(proc, cluster.namenode(), kReadBytes,
                                                         5 * kMicrosPerMilli,
                                                         /*stress_test=*/false,
                                                         7000 + static_cast<uint64_t>(i)));
    clients.back()->Start(2 * kMicrosPerSecond);
  }

  world->StartAgentFlushLoop(3 * kMicrosPerSecond);
  world->env()->RunAll();

  uint64_t total_ops = 0;
  for (const auto& c : clients) {
    total_ops += c->stats().total_ops();
  }
  EXPECT_GT(total_ops, 100u);

  // The query's COUNT must equal the number of completed reads and the SUM
  // the exact bytes moved — across 200 DataNode processes and one NameNode.
  auto results = world->frontend()->Results(*q2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].Get("cl.procName").string_value(), "ScaleClient");
  EXPECT_EQ(static_cast<uint64_t>(results[0].Get("COUNT").int_value()), total_ops);
  EXPECT_EQ(static_cast<uint64_t>(results[0].Get("SUM(incr.delta)").int_value()),
            total_ops * kReadBytes);

  // Constant-size baggage: Q2 packs exactly one FIRST tuple, so per-RPC
  // baggage bytes must not grow with cluster size or request count.
  double avg_baggage =
      static_cast<double>(RpcStats::total_baggage_bytes) / RpcStats::total_calls;
  EXPECT_LT(avg_baggage, 256.0);
}

TEST(ScaleTest, AgentReportTrafficStaysBounded) {
  // 200 DataNode agents each report at most one state tuple per interval for
  // an aggregated query — the §4 traffic bound at scale.
  HadoopClusterConfig config;
  config.worker_hosts = 200;
  config.dataset_files = 1000;
  config.seed = 31;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  Result<uint64_t> q = world->frontend()->Install(
      "From incr In DataNodeMetrics.incrBytesRead Select SUM(incr.delta)");
  ASSERT_TRUE(q.ok());

  std::vector<std::unique_ptr<HdfsReadWorkload>> workloads;
  for (int i = 0; i < 10; ++i) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(i)), "client");
    workloads.push_back(std::make_unique<HdfsReadWorkload>(
        proc, cluster.namenode(), 8 << 10, 500, /*stress_test=*/false,
        9 + static_cast<uint64_t>(i)));
    workloads.back()->Start(2 * kMicrosPerSecond);
  }
  world->StartAgentFlushLoop(3 * kMicrosPerSecond);
  world->env()->RunAll();

  // Reported tuples <= one per (reporting DataNode, interval); far below the
  // per-request emission count.
  uint64_t emitted = 0;
  uint64_t reported = 0;
  for (const auto& p : world->processes()) {
    emitted += p->agent()->emitted_tuples();
    reported += p->agent()->reported_tuples();
  }
  EXPECT_GT(emitted, 100u);
  EXPECT_LT(reported, 200u * 3u);
  EXPECT_LT(reported * 10, emitted);
}

}  // namespace
}  // namespace pivot
