// Symbol interning for tuple field and export names.
//
// Pivot Tracing tuples carry qualified column names ("incr.delta",
// "cl.procName") and the advice hot path — Observe/Let/Filter/Pack/Emit on
// every tracepoint fire — used to resolve each of them by std::string
// comparison. The interner maps every distinct name to a dense SymbolId once,
// so Tuple::Get/Set/Project/HashFields and bound expression evaluation become
// integer compares with no allocation.
//
// Concurrency contract:
//  * Intern() takes a mutex and may allocate — call it at compile/weave time
//    (or on first use) and keep the id.
//  * NameOf() / Find() / size() are safe concurrently with Intern(): names
//    live in fixed-size chunks whose pointer slots are published with
//    release/acquire, so readers never observe a moving string.
//  * Ids are process-local and never cross the wire; the wire codec writes
//    names and re-interns on decode (symbol tables on two hosts need not
//    agree).

#ifndef PIVOT_SRC_CORE_SYMBOL_H_
#define PIVOT_SRC_CORE_SYMBOL_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace pivot {

// Dense process-local identifier of an interned name. Equal ids <=> equal
// names (within one process, one SymbolTable).
using SymbolId = uint32_t;

// "No such symbol". Never returned by Intern.
inline constexpr SymbolId kInvalidSymbol = UINT32_MAX;

class SymbolTable {
 public:
  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  // Returns the id of `name`, interning it on first sight. O(1) amortized;
  // takes the table mutex.
  SymbolId Intern(std::string_view name);

  // Returns the id of `name` if already interned, else kInvalidSymbol.
  // Takes the table mutex (lookups share the map with writers).
  SymbolId Find(std::string_view name) const;

  // The name behind `id`; empty view for kInvalidSymbol / out-of-range.
  // Lock-free: safe on hot paths (serialization, rendering).
  std::string_view NameOf(SymbolId id) const;

  // Number of interned symbols.
  size_t size() const { return count_.load(std::memory_order_acquire); }

  // The process-wide table every Tuple/Expr/plan shares.
  static SymbolTable& Global();

 private:
  static constexpr size_t kChunkBits = 10;
  static constexpr size_t kChunkSize = size_t{1} << kChunkBits;  // 1024 names.
  static constexpr size_t kMaxChunks = 4096;  // 4M symbols; far beyond any workload.

  using Chunk = std::array<std::string, kChunkSize>;

  mutable std::mutex mu_;
  std::unordered_map<std::string_view, SymbolId> ids_;  // Views into chunks.
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_{};
  std::atomic<uint32_t> count_{0};
};

// Shorthands over SymbolTable::Global().
inline SymbolId InternSymbol(std::string_view name) {
  return SymbolTable::Global().Intern(name);
}
inline SymbolId FindSymbol(std::string_view name) {
  return SymbolTable::Global().Find(name);
}
inline std::string_view SymbolName(SymbolId id) {
  return SymbolTable::Global().NameOf(id);
}

}  // namespace pivot

#endif  // PIVOT_SRC_CORE_SYMBOL_H_
