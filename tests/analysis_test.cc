// AdviceVerifier + QueryLinter: the static-analysis gate (docs/ANALYSIS.md).
//
// The heart of this file is a table-driven corpus of minimal bad programs,
// one (or more) per diagnostic code, each asserting exactly the code it is
// built to trigger — plus a good corpus proving every paper-style query lints
// clean (the gate must not reject the workloads the repo exists to run).

#include <gtest/gtest.h>

#include <functional>

#include "src/analysis/advice_verifier.h"
#include "src/analysis/query_linter.h"
#include "src/core/advice.h"
#include "src/query/compiler.h"
#include "src/query/parser.h"

namespace pivot {
namespace {

using analysis::AdviceVerifier;
using analysis::BagColumns;
using analysis::BaggageCost;
using analysis::JoinStaticTypes;
using analysis::LintOptions;
using analysis::LintPlan;
using analysis::QueryLinter;
using analysis::QueryLintResult;
using analysis::Report;
using analysis::Severity;
using analysis::StaticType;
using analysis::VerifyContext;
using analysis::VerifyResult;

TracepointDef Def(const std::string& name, std::vector<std::string> exports) {
  TracepointDef def;
  def.name = name;
  def.exports = std::move(exports);
  return def;
}

Expr::Ptr Lit(int64_t v) { return Expr::Literal(Value(v)); }
Expr::Ptr Field(const std::string& name) { return Expr::Field(name); }
Expr::Ptr Bin(ExprOp op, Expr::Ptr l, Expr::Ptr r) {
  return Expr::Binary(op, std::move(l), std::move(r));
}

// ---------------------------------------------------------------------------
// Type lattice

TEST(StaticTypeTest, JoinIsLeastUpperBound) {
  EXPECT_EQ(JoinStaticTypes(StaticType::kInt, StaticType::kInt), StaticType::kInt);
  EXPECT_EQ(JoinStaticTypes(StaticType::kInt, StaticType::kDouble), StaticType::kDouble);
  EXPECT_EQ(JoinStaticTypes(StaticType::kDouble, StaticType::kInt), StaticType::kDouble);
  EXPECT_EQ(JoinStaticTypes(StaticType::kNull, StaticType::kString), StaticType::kString);
  EXPECT_EQ(JoinStaticTypes(StaticType::kString, StaticType::kNull), StaticType::kString);
  EXPECT_EQ(JoinStaticTypes(StaticType::kInt, StaticType::kString), StaticType::kUnknown);
  EXPECT_EQ(JoinStaticTypes(StaticType::kUnknown, StaticType::kInt), StaticType::kUnknown);
}

TEST(StaticTypeTest, InferExprTypeFollowsRuntimePromotion) {
  std::map<std::string, StaticType> env{{"i", StaticType::kInt},
                                        {"d", StaticType::kDouble},
                                        {"s", StaticType::kString}};
  Report report;
  auto infer = [&](Expr::Ptr e) {
    return analysis::InferExprType(*e, env, &report, "tp", 0);
  };
  EXPECT_EQ(infer(Bin(ExprOp::kAdd, Field("i"), Lit(1))), StaticType::kInt);
  EXPECT_EQ(infer(Bin(ExprOp::kAdd, Field("i"), Field("d"))), StaticType::kDouble);
  EXPECT_EQ(infer(Bin(ExprOp::kAdd, Field("s"), Field("s"))), StaticType::kString);
  EXPECT_EQ(infer(Bin(ExprOp::kDiv, Field("i"), Lit(2))), StaticType::kInt);
  EXPECT_EQ(infer(Bin(ExprOp::kLt, Field("i"), Field("d"))), StaticType::kInt);
  EXPECT_TRUE(report.empty()) << report.ToString();
  // The runtime evaluator agrees on int/int division.
  EXPECT_EQ(ValueDiv(Value(int64_t{7}), Value(int64_t{2})).type(), ValueType::kInt);
}

// ---------------------------------------------------------------------------
// Table-driven bad-program corpus

struct BadProgram {
  const char* name;
  const char* expect_code;
  Severity expect_severity;
  // Builds the full query handed to the linter.
  std::function<CompiledQuery()> build;
};

constexpr uint64_t kQid = 3;
constexpr BagKey kBag = kQid * kBagKeysPerQuery;

CompiledQuery Single(Advice::Ptr advice) {
  CompiledQuery cq;
  cq.query_id = kQid;
  cq.advice.emplace_back("tp", std::move(advice));
  return cq;
}

class BadProgramTest : public ::testing::Test {
 protected:
  BadProgramTest() {
    EXPECT_TRUE(schema_.Define(Def("tp", {"x", "s"})).ok());
    EXPECT_TRUE(schema_.Define(Def("tp2", {"y"})).ok());
  }

  QueryLintResult Lint(const CompiledQuery& cq) {
    LintOptions options;
    options.schema = &schema_;
    return LintCompiledQuery(cq, options);
  }

  TracepointRegistry schema_;
};

TEST_F(BadProgramTest, CorpusTriggersExpectedDiagnostics) {
  std::vector<BadProgram> corpus;

  corpus.push_back({"empty program", "PT101", Severity::kError,
                    [] { return Single(AdviceBuilder().Build()); }});

  corpus.push_back({"expression reads unknown column", "PT102", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Let("y", Bin(ExprOp::kAdd, Field("t.missing"), Lit(1)))
                                        .Emit(kQid, {"y"})
                                        .Build());
                    }});

  corpus.push_back({"emit of unknown column", "PT102", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Emit(kQid, {"t.x", "t.ghost"})
                                        .Build());
                    }});

  corpus.push_back({"string arithmetic", "PT103", Severity::kError, [] {
                      // procname is a default export with definite string type.
                      return Single(AdviceBuilder()
                                        .Observe({{"procname", "t.p"}})
                                        .Let("n", Bin(ExprOp::kSub, Field("t.p"), Lit(1)))
                                        .Emit(kQid, {"n"})
                                        .Build());
                    }});

  corpus.push_back({"string/number ordering comparison", "PT103", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"host", "t.h"}})
                                        .Filter(Bin(ExprOp::kGt, Field("t.h"), Lit(10)))
                                        .Emit(kQid, {"t.h"})
                                        .Build());
                    }});

  corpus.push_back({"zero sample rate", "PT104", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Sample(0.0)
                                        .Observe({{"x", "t.x"}})
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"sample rate above one", "PT104", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Sample(2.0)
                                        .Observe({{"x", "t.x"}})
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"observe of undeclared export", "PT105", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"no_such_export", "t.n"}})
                                        .Emit(kQid, {"t.n"})
                                        .Build());
                    }});

  corpus.push_back({"unpack of never-packed bag", "PT106", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Unpack(kBag + 5)
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"duplicate observe output", "PT107", Severity::kWarning, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}, {"s", "t.x"}})
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"no pack and no emit", "PT108", Severity::kWarning, [] {
                      return Single(AdviceBuilder().Observe({{"x", "t.x"}}).Build());
                    }});

  corpus.push_back({"constant filter predicate", "PT109", Severity::kWarning, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Filter(Bin(ExprOp::kEq, Lit(1), Lit(1)))
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"division by literal zero", "PT110", Severity::kWarning, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Let("y", Bin(ExprOp::kDiv, Field("t.x"), Lit(0)))
                                        .Emit(kQid, {"y"})
                                        .Build());
                    }});

  corpus.push_back({"let rebinds live column", "PT111", Severity::kWarning, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Let("t.x", Bin(ExprOp::kAdd, Field("t.x"), Lit(1)))
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"sample after other ops", "PT112", Severity::kInfo, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Sample(0.5)
                                        .Emit(kQid, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"emit to foreign query", "PT201", Severity::kError, [] {
                      return Single(AdviceBuilder()
                                        .Observe({{"x", "t.x"}})
                                        .Emit(kQid + 1, {"t.x"})
                                        .Build());
                    }});

  corpus.push_back({"pack/unpack cycle", "PT202", Severity::kError, [] {
                      CompiledQuery cq;
                      cq.query_id = kQid;
                      cq.advice.emplace_back("tp", AdviceBuilder()
                                                       .Unpack(kBag + 1)
                                                       .Pack(kBag, BagSpec::First(), {})
                                                       .Build());
                      cq.advice.emplace_back("tp2", AdviceBuilder()
                                                        .Unpack(kBag)
                                                        .Pack(kBag + 1, BagSpec::First(), {})
                                                        .Build());
                      return cq;
                    }});

  corpus.push_back({"bag outside owner's key range", "PT204", Severity::kWarning, [] {
                      CompiledQuery cq;
                      cq.query_id = kQid;
                      BagKey foreign = (kQid + 2) * kBagKeysPerQuery;
                      cq.advice.emplace_back(
                          "tp", AdviceBuilder()
                                    .Observe({{"x", "a.x"}})
                                    .Pack(foreign, BagSpec::First(), {"a.x"})
                                    .Build());
                      cq.advice.emplace_back("tp2", AdviceBuilder()
                                                        .Unpack(foreign)
                                                        .Observe({{"y", "b.y"}})
                                                        .Emit(kQid, {"a.x", "b.y"})
                                                        .Build());
                      return cq;
                    }});

  corpus.push_back({"conflicting bag specs", "PT205", Severity::kError, [] {
                      CompiledQuery cq;
                      cq.query_id = kQid;
                      cq.advice.emplace_back("tp", AdviceBuilder()
                                                       .Observe({{"x", "a.x"}})
                                                       .Pack(kBag, BagSpec::First(), {"a.x"})
                                                       .Build());
                      cq.advice.emplace_back("tp2", AdviceBuilder()
                                                        .Observe({{"y", "b.y"}})
                                                        .Pack(kBag, BagSpec::Recent(3), {"b.y"})
                                                        .Build());
                      cq.advice.emplace_back("tp", AdviceBuilder()
                                                       .Unpack(kBag)
                                                       .Observe({{"x", "c.x"}})
                                                       .Emit(kQid, {"c.x"})
                                                       .Build());
                      return cq;
                    }});

  corpus.push_back({"plan consumes never-emitted column", "PT206", Severity::kError, [] {
                      CompiledQuery cq = Single(AdviceBuilder()
                                                    .Observe({{"x", "t.x"}})
                                                    .Emit(kQid, {"t.x"})
                                                    .Build());
                      cq.aggregated = true;
                      cq.group_fields = {"t.ghost"};
                      cq.aggs.push_back(AggSpec{AggFn::kCount, "", "COUNT", false});
                      return cq;
                    }});

  corpus.push_back({"dead packed column", "PT207", Severity::kWarning, [] {
                      CompiledQuery cq;
                      cq.query_id = kQid;
                      cq.advice.emplace_back(
                          "tp", AdviceBuilder()
                                    .Observe({{"x", "a.x"}, {"s", "a.s"}})
                                    .Pack(kBag, BagSpec::First(), {"a.x", "a.s"})
                                    .Build());
                      cq.advice.emplace_back("tp2", AdviceBuilder()
                                                        .Unpack(kBag)
                                                        .Observe({{"y", "b.y"}})
                                                        .Emit(kQid, {"a.x", "b.y"})
                                                        .Build());
                      return cq;  // a.s is packed but nobody reads it.
                    }});

  corpus.push_back({"unbounded pack", "PT208", Severity::kInfo, [] {
                      CompiledQuery cq;
                      cq.query_id = kQid;
                      cq.advice.emplace_back("tp", AdviceBuilder()
                                                       .Observe({{"x", "a.x"}})
                                                       .Pack(kBag, BagSpec::All(), {"a.x"})
                                                       .Build());
                      cq.advice.emplace_back("tp2", AdviceBuilder()
                                                        .Unpack(kBag)
                                                        .Emit(kQid, {"a.x"})
                                                        .Build());
                      return cq;
                    }});

  corpus.push_back({"cartesian unpack of unbounded bags", "PT209", Severity::kInfo, [] {
                      CompiledQuery cq;
                      cq.query_id = kQid;
                      cq.advice.emplace_back("tp", AdviceBuilder()
                                                       .Observe({{"x", "a.x"}})
                                                       .Pack(kBag, BagSpec::All(), {"a.x"})
                                                       .Build());
                      cq.advice.emplace_back("tp", AdviceBuilder()
                                                       .Observe({{"x", "b.x"}})
                                                       .Pack(kBag + 1, BagSpec::All(), {"b.x"})
                                                       .Build());
                      cq.advice.emplace_back("tp2", AdviceBuilder()
                                                        .Unpack(kBag)
                                                        .Unpack(kBag + 1)
                                                        .Emit(kQid, {"a.x", "b.x"})
                                                        .Build());
                      return cq;
                    }});

  ASSERT_GE(corpus.size(), 12u);
  std::set<std::string> distinct_codes;
  for (const auto& bad : corpus) {
    QueryLintResult lint = Lint(bad.build());
    ASSERT_TRUE(lint.report.Has(bad.expect_code))
        << bad.name << ": expected " << bad.expect_code << ", got:\n"
        << lint.report.ToString();
    bool severity_matches = false;
    for (const auto& d : lint.report.diagnostics()) {
      if (d.code == bad.expect_code && d.severity == bad.expect_severity) {
        severity_matches = true;
      }
    }
    EXPECT_TRUE(severity_matches)
        << bad.name << ": " << bad.expect_code << " has wrong severity:\n"
        << lint.report.ToString();
    distinct_codes.insert(bad.expect_code);
  }
  // The corpus spans at least 12 distinct diagnostic codes.
  EXPECT_GE(distinct_codes.size(), 12u) << "codes covered: " << distinct_codes.size();
}

TEST_F(BadProgramTest, BagCollisionAcrossInstalledQueries) {
  CompiledQuery cq;
  cq.query_id = kQid;
  cq.advice.emplace_back("tp", AdviceBuilder()
                                   .Observe({{"x", "a.x"}})
                                   .Pack(kBag, BagSpec::First(), {"a.x"})
                                   .Build());
  cq.advice.emplace_back("tp2", AdviceBuilder()
                                    .Unpack(kBag)
                                    .Observe({{"y", "b.y"}})
                                    .Emit(kQid, {"a.x", "b.y"})
                                    .Build());

  std::map<BagKey, uint64_t> installed{{kBag, kQid + 10}};
  LintOptions options;
  options.schema = &schema_;
  options.installed_bags = &installed;
  QueryLintResult lint = LintCompiledQuery(cq, options);
  EXPECT_TRUE(lint.report.Has("PT203")) << lint.report.ToString();

  // Same bag owned by the same query (a re-lint of an installed query) is fine.
  installed[kBag] = kQid;
  QueryLintResult relint = LintCompiledQuery(cq, options);
  EXPECT_FALSE(relint.report.Has("PT203")) << relint.report.ToString();
}

// ---------------------------------------------------------------------------
// Cross-stage propagation details

TEST_F(BadProgramTest, UnpackedColumnsCarryPackingStageTypes) {
  // Stage 1 packs a definitely-string column; stage 2 does arithmetic on it
  // after the unpack — the type error crosses the bag.
  CompiledQuery cq;
  cq.query_id = kQid;
  cq.advice.emplace_back("tp", AdviceBuilder()
                                   .Observe({{"procname", "a.p"}})
                                   .Pack(kBag, BagSpec::First(), {"a.p"})
                                   .Build());
  cq.advice.emplace_back("tp2", AdviceBuilder()
                                    .Unpack(kBag)
                                    .Let("n", Bin(ExprOp::kMul, Field("a.p"), Lit(2)))
                                    .Emit(kQid, {"n"})
                                    .Build());
  QueryLintResult lint = Lint(cq);
  EXPECT_TRUE(lint.report.Has("PT103")) << lint.report.ToString();
}

TEST_F(BadProgramTest, AggregateBagExposesStateColumns) {
  // An aggregate pack exposes group fields + state columns to the unpacker;
  // reading them is legal, reading anything else is PT102.
  BagSpec agg = BagSpec::Aggregated(
      {"a.host"}, {AggSpec{AggFn::kSum, "a.x", "SUM(a.x)", false}});
  CompiledQuery cq;
  cq.query_id = kQid;
  cq.advice.emplace_back("tp", AdviceBuilder()
                                   .Observe({{"x", "a.x"}, {"host", "a.host"}})
                                   .Pack(kBag, agg, {})
                                   .Build());
  cq.advice.emplace_back("tp2", AdviceBuilder()
                                    .Unpack(kBag)
                                    .Emit(kQid, {"a.host", "SUM(a.x)"})
                                    .Build());
  QueryLintResult ok = Lint(cq);
  EXPECT_FALSE(ok.report.has_errors()) << ok.report.ToString();

  // Reading the raw input column after an aggregate pack is an error: only
  // the state column survives the bag.
  cq.advice.back().second = AdviceBuilder()
                                .Unpack(kBag)
                                .Emit(kQid, {"a.host", "a.x"})
                                .Build();
  QueryLintResult bad = Lint(cq);
  EXPECT_TRUE(bad.report.Has("PT102")) << bad.report.ToString();
}

TEST_F(BadProgramTest, SampledUnboundedPackClassifiesAsUnboundedSampled) {
  auto make = [](double rate) {
    CompiledQuery cq;
    cq.query_id = kQid;
    AdviceBuilder packer;
    if (rate < 1.0) {
      packer.Sample(rate);
    }
    cq.advice.emplace_back("tp", packer.Observe({{"x", "a.x"}})
                                     .Pack(kBag, BagSpec::All(), {"a.x"})
                                     .Build());
    cq.advice.emplace_back("tp2",
                           AdviceBuilder().Unpack(kBag).Emit(kQid, {"a.x"}).Build());
    return cq;
  };
  EXPECT_EQ(Lint(make(1.0)).cost, BaggageCost::kUnbounded);
  EXPECT_EQ(Lint(make(0.1)).cost, BaggageCost::kUnboundedSampled);

  CompiledQuery bounded;
  bounded.query_id = kQid;
  bounded.advice.emplace_back("tp", AdviceBuilder()
                                        .Observe({{"x", "a.x"}})
                                        .Pack(kBag, BagSpec::First(), {"a.x"})
                                        .Build());
  bounded.advice.emplace_back("tp2",
                              AdviceBuilder().Unpack(kBag).Emit(kQid, {"a.x"}).Build());
  EXPECT_EQ(Lint(bounded).cost, BaggageCost::kBounded);
}

// ---------------------------------------------------------------------------
// Good corpus: paper-style queries lint clean end to end

class GoodCorpusTest : public ::testing::Test {
 protected:
  GoodCorpusTest() {
    EXPECT_TRUE(schema_.Define(Def("ClientProtocols", {"procName"})).ok());
    EXPECT_TRUE(schema_.Define(Def("DataNodeMetrics.incrBytesRead", {"delta"})).ok());
    EXPECT_TRUE(schema_.Define(Def("DN.DataTransferProtocol.readBlock", {"blockId"})).ok());
  }

  QueryLintResult LintText(const std::string& text) {
    Result<Query> q = ParseQuery(text);
    EXPECT_TRUE(q.ok()) << text;
    QueryCompiler::Options options;
    options.verify = false;  // Lint explicitly below.
    QueryCompiler compiler(&schema_, nullptr, options);
    Result<CompiledQuery> compiled = compiler.Compile(*q, 9);
    EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
    LintOptions lint_options;
    lint_options.schema = &schema_;
    return LintCompiledQuery(*compiled, lint_options);
  }

  TracepointRegistry schema_;
};

TEST_F(GoodCorpusTest, PaperQueriesLintClean) {
  const char* corpus[] = {
      // Q1: per-host aggregation, no join.
      "From incr In DataNodeMetrics.incrBytesRead GroupBy incr.host "
      "Select incr.host, SUM(incr.delta)",
      // Q2: happened-before join.
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)",
      // Streaming select with arithmetic.
      "From incr In DataNodeMetrics.incrBytesRead Select incr.delta * 2",
      // Where clause + sampling.
      "From incr In Sample(0.5, DataNodeMetrics.incrBytesRead) "
      "Where incr.delta > 100 Select COUNT",
      // Two-hop join chain.
      "From rb In DN.DataTransferProtocol.readBlock "
      "Join incr In First(DataNodeMetrics.incrBytesRead) On incr -> rb "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, COUNT",
  };
  for (const char* text : corpus) {
    QueryLintResult lint = LintText(text);
    EXPECT_EQ(lint.report.error_count(), 0u) << text << "\n" << lint.report.ToString();
    EXPECT_EQ(lint.report.warning_count(), 0u) << text << "\n" << lint.report.ToString();
  }
}

TEST_F(GoodCorpusTest, CompilerRejectsItsOwnOutputOnlyWhenBroken) {
  // With verify on (the default), a clean query compiles...
  QueryCompiler compiler(&schema_, nullptr);
  Result<Query> q = ParseQuery(
      "From incr In DataNodeMetrics.incrBytesRead Select SUM(incr.delta)");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(compiler.Compile(*q, 4).ok());
}

TEST_F(GoodCorpusTest, CountingShadowLintsWithoutDeadColumnNoise) {
  Result<Query> q = ParseQuery(
      "From incr In DataNodeMetrics.incrBytesRead "
      "Join cl In First(ClientProtocols) On cl -> incr "
      "GroupBy cl.procName Select cl.procName, SUM(incr.delta)");
  ASSERT_TRUE(q.ok());
  QueryCompiler compiler(&schema_, nullptr);
  Result<CompiledQuery> compiled = compiler.Compile(*q, 5);
  ASSERT_TRUE(compiled.ok());
  CompiledQuery shadow = MakeCountingQuery(*compiled, 6);

  LintOptions options;
  options.schema = &schema_;
  options.assume_projection_pushdown = false;  // Shadows keep fat packs.
  QueryLintResult lint = LintCompiledQuery(shadow, options);
  EXPECT_EQ(lint.report.error_count(), 0u) << lint.report.ToString();
  EXPECT_EQ(lint.report.warning_count(), 0u) << lint.report.ToString();
}

// ---------------------------------------------------------------------------
// Verifier unit details

TEST(AdviceVerifierTest, VerifyWithoutContextSkipsContextChecks) {
  // No tracepoint, no bags, no query id: observe/unpack/emit checks that need
  // context are skipped, structural checks still run.
  Advice::Ptr advice = AdviceBuilder()
                           .Observe({{"whatever", "t.w"}})
                           .Unpack(123)
                           .Emit(77, {"t.w"})
                           .Build();
  VerifyResult r = AdviceVerifier().Verify(*advice);
  EXPECT_FALSE(r.report.has_errors()) << r.report.ToString();
}

TEST(AdviceVerifierTest, EnvironmentDegradesGracefullyAfterOpenUnpack) {
  // An unpack with unknown provenance opens the environment: reads of unknown
  // columns are no longer blamed (no PT102 cascade).
  Advice::Ptr advice = AdviceBuilder()
                           .Unpack(123)
                           .Let("y", Bin(ExprOp::kAdd, Field("from.bag"), Lit(1)))
                           .Emit(0, {"y", "from.bag"})
                           .Build();
  VerifyResult r = AdviceVerifier().Verify(*advice);
  EXPECT_FALSE(r.report.Has("PT102")) << r.report.ToString();
}

TEST(AdviceVerifierTest, ResultCarriesColumnsAndPackedBags) {
  VerifyContext ctx;
  ctx.query_id = 2;
  Advice::Ptr advice = AdviceBuilder()
                           .Observe({{"procid", "t.pid"}, {"host", "t.host"}})
                           .Let("double_pid", Bin(ExprOp::kMul, Field("t.pid"), Lit(2)))
                           .Pack(2 * kBagKeysPerQuery, BagSpec::First(),
                                 {"t.host", "double_pid"})
                           .Build();
  VerifyResult r = AdviceVerifier(ctx).Verify(*advice);
  EXPECT_FALSE(r.report.has_errors()) << r.report.ToString();
  EXPECT_EQ(r.columns.at("t.pid"), StaticType::kInt);
  EXPECT_EQ(r.columns.at("t.host"), StaticType::kString);
  EXPECT_EQ(r.columns.at("double_pid"), StaticType::kInt);
  const BagColumns& bag = r.packed.at(2 * kBagKeysPerQuery);
  EXPECT_EQ(bag.columns.size(), 2u);
  EXPECT_EQ(bag.columns.at("double_pid"), StaticType::kInt);
}

}  // namespace
}  // namespace pivot
