// Fig 9: diagnosing end-to-end latency — network limplock (§6.2).
//
// "A faulty network cable caused a network link downgrade from 1Gbit to
// 100Mbit. One HBase workload in particular would experience latency spikes
// in the requests hitting this bottleneck link."
//
//   9a  HBase request latencies over time: occasional large spikes.
//   9b  Per-component latency decomposition (RS Queue / RS Process /
//       DN Transfer / DN Blocked / DN GC), average vs slow requests — the
//       slow requests are dominated by time blocked on the DataNode network.
//   9c  Per-machine network throughput: host B's link is capped, and overall
//       cluster throughput suffers.
//
// The decomposition query packs component timings at each tier and unpacks
// them at the client, Q8-style ("Advice can pack the timestamp of any event
// then unpack it at a subsequent event"). GC pauses are injected on one
// DataNode so the DN GC component is non-trivial, replicating the §6.2
// rogue-GC analysis.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/hadoop/cluster.h"

namespace pivot {
namespace {

constexpr int64_t kRunSeconds = 30;

int Main() {
  HadoopClusterConfig config;
  config.worker_hosts = 8;
  config.dataset_files = 300;
  config.seed = 909;
  config.deploy_mapreduce = false;
  config.hbase.handler_threads = 12;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  // ---- Fault injection ----
  // Host B's NIC: 1 Gbit -> 100 Mbit (125 MB/s -> 12.5 MB/s).
  cluster.DowngradeNic(cluster.worker(1), 12.5e6);
  // Rogue GC on host C's DataNode: 150 ms pause every 4 s.
  for (const auto& proc : world->processes()) {
    if (proc->host() == cluster.worker(2) && proc->name() == "DataNode") {
      cluster.InjectGcPauses(proc.get(), 4 * kMicrosPerSecond, 150 * kMicrosPerMilli,
                             kRunSeconds * kMicrosPerSecond);
    }
  }

  // ---- Decomposition query (installed before the workload starts) ----
  Result<uint64_t> q_decomp = world->frontend()->Install(
      "From done In HBase.ResponseReceived\n"
      "Join sent In MostRecent(HBase.RequestSent) On sent -> done\n"
      "Join rsq In MostRecent(RS.QueueDone) On rsq -> done\n"
      "Join rsp In MostRecent(RS.ProcessDone) On rsp -> done\n"
      "Join dn In MostRecent(DN.DataTransferProtocol.done) On dn -> done\n"
      "Select done.time - sent.time As latency, rsq.queue, rsp.process, dn.transfer, "
      "dn.blocked, dn.gc");
  if (!q_decomp.ok()) {
    fprintf(stderr, "install failed: %s\n", q_decomp.status().ToString().c_str());
    return 1;
  }

  // ---- Workload: Hget + Hscan clients across the cluster ----
  std::vector<std::unique_ptr<HbaseWorkload>> clients;
  uint64_t seed = 40;
  for (int h = 0; h < 8; ++h) {
    SimProcess* get_proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "Hget");
    clients.push_back(std::make_unique<HbaseWorkload>(get_proc, cluster.hbase().servers(),
                                                      /*scan=*/false, 10 * kMicrosPerMilli,
                                                      seed++));
    SimProcess* scan_proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "Hscan");
    clients.push_back(std::make_unique<HbaseWorkload>(scan_proc, cluster.hbase().servers(),
                                                      /*scan=*/true, 10 * kMicrosPerMilli,
                                                      seed++));
  }
  for (auto& c : clients) {
    c->Start(kRunSeconds * kMicrosPerSecond);
  }

  world->StartAgentFlushLoop((kRunSeconds + 2) * kMicrosPerSecond);
  world->env()->RunAll();

  // ---- 9a: request latencies over time ----
  printf("Fig 9a: HBase request latencies over time [ms] (median vs max per second)\n");
  {
    std::map<int64_t, std::vector<double>> by_second;
    for (const auto& c : clients) {
      for (const auto& [at, latency] : c->stats().latencies()) {
        by_second[at / kMicrosPerSecond].push_back(static_cast<double>(latency) /
                                                   kMicrosPerMilli);
      }
    }
    printf("  %4s %10s %10s  (bar = max)\n", "t[s]", "median", "max");
    for (int64_t s = 0; s < kRunSeconds; ++s) {
      auto& v = by_second[s];
      std::sort(v.begin(), v.end());
      double median = v.empty() ? 0 : v[v.size() / 2];
      double max_latency = v.empty() ? 0 : v.back();
      int bar = static_cast<int>(std::min(50.0, max_latency / 50.0));
      printf("  %4lld %10.1f %10.1f %s\n", static_cast<long long>(s), median, max_latency,
             std::string(static_cast<size_t>(bar), '#').c_str());
    }
    printf("\n");
  }

  // ---- 9b: latency decomposition, average vs slow ----
  {
    std::vector<Tuple> rows = world->frontend()->Results(*q_decomp);
    std::vector<double> latencies;
    latencies.reserve(rows.size());
    for (const Tuple& row : rows) {
      latencies.push_back(row.Get("latency").AsDouble());
    }
    std::vector<double> sorted = latencies;
    std::sort(sorted.begin(), sorted.end());
    double p95 = sorted.empty() ? 0 : sorted[sorted.size() * 95 / 100];

    struct Breakdown {
      double queue = 0, process = 0, transfer = 0, blocked = 0, gc = 0, latency = 0;
      int n = 0;
      void Add(const Tuple& row) {
        queue += row.Get("rsq.queue").AsDouble();
        process += row.Get("rsp.process").AsDouble();
        transfer += row.Get("dn.transfer").AsDouble();
        blocked += row.Get("dn.blocked").AsDouble();
        gc += row.Get("dn.gc").AsDouble();
        latency += row.Get("latency").AsDouble();
        ++n;
      }
      void Print(const char* label) const {
        double inv = n > 0 ? 1.0 / (n * kMicrosPerMilli) : 0;
        double other = latency - queue - process - transfer - blocked - gc;
        printf("  %-16s n=%6d  e2e=%8.1f | RS queue %7.1f  RS process %7.1f  "
               "DN transfer %7.1f  DN blocked %7.1f  DN GC %5.1f  client hop %7.1f  [ms avg]\n",
               label, n, latency * inv, queue * inv, process * inv, transfer * inv,
               blocked * inv, gc * inv, other * inv);
      }
    };
    Breakdown all;
    Breakdown slow;
    for (const Tuple& row : rows) {
      all.Add(row);
      if (row.Get("latency").AsDouble() >= p95) {
        slow.Add(row);
      }
    }
    printf("Fig 9b: per-component latency decomposition (slow = slowest 5%%)\n");
    all.Print("average request");
    slow.Print("slow request");
    printf("  -> slow requests are dominated by network time around the limplocked host:\n"
           "     DN transfer/blocked plus the (unattributed) RS->client response hop, the\n"
           "     paper's Fig 9b signature. RS CPU time is unchanged.\n\n");
  }

  // ---- 9c: per-machine network throughput ----
  {
    std::vector<std::string> hosts;
    std::map<std::string, std::map<int64_t, double>> series;
    for (int i = 0; i < 8; ++i) {
      std::string name(1, static_cast<char>('A' + i));
      hosts.push_back(name);
      SimHost* host = world->FindHost(name);
      for (int64_t s = 0; s < kRunSeconds; ++s) {
        series[name][s] = host->NetworkBytesInSecond(s) * 8 / 1e6;  // Mbit/s.
      }
    }
    PrintSeriesTable("Fig 9c: per-machine network throughput", "Mbit/s", hosts, series, 0,
                     kRunSeconds, 5, 1.0, "fig9c");
    printf("Host B is pinned at ~100 Mbit while every other host has 1 Gbit headroom;\n"
           "cluster-wide throughput is dragged down by the limplocked link (cf. Fig 9c).\n\n");
  }
  return 0;
}

// §6.2 replication: rogue garbage collection in an HBase RegionServer (as
// described in the VScope paper's scenario). No limplock here — instead one
// RegionServer suffers long GC pauses, and the same decomposition query
// attributes the slow requests to RS processing rather than the network.
int RogueGcScenario() {
  printf("=============================================================\n");
  printf("§6.2 replication: rogue GC in an HBase RegionServer\n");
  printf("=============================================================\n\n");

  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 200;
  config.seed = 777;
  config.deploy_mapreduce = false;
  config.hbase.handler_threads = 12;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  // 400 ms GC pause every 2 s on host C's RegionServer.
  for (const auto& proc : world->processes()) {
    if (proc->host() == cluster.worker(2) && proc->name() == "RegionServer") {
      cluster.InjectGcPauses(proc.get(), 2 * kMicrosPerSecond, 400 * kMicrosPerMilli,
                             10 * kMicrosPerSecond);
    }
  }

  Result<uint64_t> q = world->frontend()->Install(
      "From done In HBase.ResponseReceived\n"
      "Join sent In MostRecent(HBase.RequestSent) On sent -> done\n"
      "Join rsp In MostRecent(RS.ProcessDone) On rsp -> done\n"
      "Select done.time - sent.time As latency, rsp.process, rsp.host");
  if (!q.ok()) {
    fprintf(stderr, "install failed: %s\n", q.status().ToString().c_str());
    return 1;
  }

  std::vector<std::unique_ptr<HbaseWorkload>> clients;
  for (int h = 0; h < 4; ++h) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(h)), "Hget");
    clients.push_back(std::make_unique<HbaseWorkload>(proc, cluster.hbase().servers(), false,
                                                      5 * kMicrosPerMilli,
                                                      900 + static_cast<uint64_t>(h)));
    clients.back()->Start(10 * kMicrosPerSecond);
  }
  world->StartAgentFlushLoop(12 * kMicrosPerSecond);
  world->env()->RunAll();

  std::map<std::string, std::pair<double, int>> process_by_host;  // (sum ms, n)
  for (const Tuple& row : world->frontend()->Results(*q)) {
    auto& [sum, n] = process_by_host[row.Get("rsp.host").string_value()];
    sum += row.Get("rsp.process").AsDouble() / kMicrosPerMilli;
    ++n;
  }
  printf("Average RS processing time per RegionServer host [ms]:\n");
  for (const auto& [host, acc] : process_by_host) {
    printf("  %s: %8.2f  (n=%d)%s\n", host.c_str(), acc.first / std::max(1, acc.second),
           acc.second, host == "C" ? "   <-- rogue GC" : "");
  }
  printf("\nThe same query vocabulary that diagnosed the network fault pins this one on\n"
         "RegionServer processing time at host C (its GC pauses), cf. §6.2's claim that\n"
         "Pivot Tracing replicates the VScope rogue-GC diagnosis.\n");
  return 0;
}

// §6.2 replication: an HDFS NameNode overloaded by exclusive write locking
// (the Retro scenario the paper cites). A burst of create/rename traffic
// serializes through the namespace lock; read-path ops queue behind it, and
// the lockwait export pins the cause.
int NamenodeLockScenario() {
  printf("=============================================================\n");
  printf("§6.2 replication: NameNode overloaded by exclusive write locking\n");
  printf("=============================================================\n\n");

  HadoopClusterConfig config;
  config.worker_hosts = 4;
  config.dataset_files = 100;
  config.seed = 555;
  config.deploy_hbase = false;
  config.deploy_mapreduce = false;
  config.hdfs.namenode_write_lock_micros = 5000;
  HadoopCluster cluster(config);
  SimWorld* world = cluster.world();

  Result<uint64_t> q = world->frontend()->Install(
      "From d In NN.ClientProtocol.done\n"
      "GroupBy d.op\n"
      "Select d.op, AVERAGE(d.lockwait), MAX(d.lockwait), COUNT");
  if (!q.ok()) {
    fprintf(stderr, "install failed: %s\n", q.status().ToString().c_str());
    return 1;
  }

  // A well-behaved read workload...
  std::vector<std::unique_ptr<MetadataWorkload>> readers;
  for (int i = 0; i < 4; ++i) {
    SimProcess* proc = cluster.AddClient(cluster.worker(static_cast<size_t>(i)), "reader");
    readers.push_back(std::make_unique<MetadataWorkload>(proc, cluster.namenode(), "open",
                                                         2 * kMicrosPerMilli,
                                                         10 + static_cast<uint64_t>(i)));
    readers.back()->Start(10 * kMicrosPerSecond);
  }
  // ...plus an aggressive tenant hammering create/rename from t=3s.
  std::vector<std::unique_ptr<MetadataWorkload>> writers;
  for (int i = 0; i < 6; ++i) {
    SimProcess* proc = cluster.AddClient(cluster.worker(0), "bulk-loader");
    writers.push_back(std::make_unique<MetadataWorkload>(proc, cluster.namenode(),
                                                         i % 2 == 0 ? "create" : "rename",
                                                         kMicrosPerMilli,
                                                         50 + static_cast<uint64_t>(i)));
    MetadataWorkload* w = writers.back().get();
    world->env()->ScheduleAt(3 * kMicrosPerSecond, [w] { w->Start(10 * kMicrosPerSecond); });
  }

  world->StartAgentFlushLoop(12 * kMicrosPerSecond);
  world->env()->RunAll();

  printf("Namespace-lock wait per op type (query on NN.ClientProtocol.done):\n");
  printf("  %-18s %12s %12s %8s\n", "op", "avg wait[ms]", "max wait[ms]", "n");
  for (const Tuple& row : world->frontend()->Results(*q)) {
    printf("  %-18s %12.2f %12.2f %8lld\n", row.Get("d.op").ToString().c_str(),
           row.Get("AVERAGE(d.lockwait)").AsDouble() / kMicrosPerMilli,
           row.Get("MAX(d.lockwait)").AsDouble() / kMicrosPerMilli,
           static_cast<long long>(row.Get("COUNT").int_value()));
  }

  double before = 0;
  double after = 0;
  int nb = 0;
  int na = 0;
  for (const auto& r : readers) {
    for (const auto& [at, latency] : r->stats().latencies()) {
      if (at < 3 * kMicrosPerSecond) {
        before += static_cast<double>(latency);
        ++nb;
      } else {
        after += static_cast<double>(latency);
        ++na;
      }
    }
  }
  printf("\nReader 'open' latency: %.2f ms before the write burst, %.2f ms during it —\n"
         "the lockwait column shows every op class queueing behind exclusive writers,\n"
         "replicating the §6.2 NameNode-overload diagnosis.\n",
         nb > 0 ? before / nb / kMicrosPerMilli : 0, na > 0 ? after / na / kMicrosPerMilli : 0);
  return 0;
}

}  // namespace
}  // namespace pivot

int main() {
  int rc = pivot::Main();
  if (rc != 0) {
    return rc;
  }
  rc = pivot::RogueGcScenario();
  if (rc != 0) {
    return rc;
  }
  return pivot::NamenodeLockScenario();
}
